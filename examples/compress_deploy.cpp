// The Section 2.1 deployment pipeline: train a large teacher, distill it
// into a small student, prune the student, quantize the result, and
// compare the accuracy/size/latency profile of every stage.

#include <cstdio>

#include "src/compress/distill.h"
#include "src/compress/pruning.h"
#include "src/compress/quantization.h"
#include "src/core/metrics.h"
#include "src/data/synthetic.h"
#include "src/nn/train.h"
#include "src/optim/optimizer.h"

namespace {

struct Stage {
  const char* name;
  double accuracy;
  long long bytes;
  double infer_ms;
};

double MeasureInferMs(dlsys::Sequential* net, const dlsys::Dataset& data) {
  dlsys::Stopwatch watch;
  net->Forward(data.x, dlsys::CacheMode::kNoCache);
  return watch.Seconds() * 1e3;
}

}  // namespace

int main() {
  using namespace dlsys;
  Rng rng(7);
  Dataset data = MakeGaussianBlobs(5000, 16, 6, 3.0, &rng);
  TrainTestSplit split = Split(data, 0.8);
  std::vector<Stage> stages;

  // Teacher.
  Sequential teacher = MakeMlp(16, {128, 128}, 6);
  teacher.Init(&rng);
  Sgd teacher_opt(0.05, 0.9);
  TrainConfig tc;
  tc.epochs = 25;
  Train(&teacher, &teacher_opt, split.train, tc);
  stages.push_back({"teacher (128x128)",
                    Evaluate(&teacher, split.test).accuracy,
                    static_cast<long long>(teacher.ModelBytes()),
                    MeasureInferMs(&teacher, split.test)});

  // Distilled student.
  Sequential student = MakeMlp(16, {24}, 6);
  student.Init(&rng);
  Sgd student_opt(0.05, 0.9);
  DistillConfig dc;
  dc.epochs = 30;
  auto distill_report =
      Distill(&teacher, &student, &student_opt, split.train, dc);
  if (!distill_report.ok()) {
    std::fprintf(stderr, "distill failed: %s\n",
                 distill_report.status().ToString().c_str());
    return 1;
  }
  stages.push_back({"distilled student (24)",
                    Evaluate(&student, split.test).accuracy,
                    static_cast<long long>(student.ModelBytes()),
                    MeasureInferMs(&student, split.test)});

  // Pruned student (magnitude, 60%, brief masked finetune).
  auto mask = BuildPruneMask(&student, PruneCriterion::kMagnitude, 0.6,
                             nullptr, nullptr);
  if (!mask.ok()) {
    std::fprintf(stderr, "prune failed: %s\n",
                 mask.status().ToString().c_str());
    return 1;
  }
  mask->Apply(&student);
  Sgd finetune_opt(0.02, 0.9);
  TrainConfig finetune;
  finetune.epochs = 5;
  finetune.on_step = [&](int64_t, int64_t, double) { mask->Apply(&student); };
  Train(&student, &finetune_opt, split.train, finetune);
  stages.push_back({"+ pruned 60% (sparse)",
                    Evaluate(&student, split.test).accuracy,
                    static_cast<long long>(SparseModelBytes(&student, *mask)),
                    MeasureInferMs(&student, split.test)});

  // Quantized student (8-bit k-means).
  auto nq = QuantizeNetwork(&student, QuantizerKind::kKMeans, 8);
  if (!nq.ok()) {
    std::fprintf(stderr, "quantize failed: %s\n",
                 nq.status().ToString().c_str());
    return 1;
  }
  stages.push_back({"+ quantized 8-bit",
                    Evaluate(&student, split.test).accuracy,
                    static_cast<long long>(nq->huffman_bytes),
                    MeasureInferMs(&student, split.test)});

  std::printf("=== compress-and-deploy pipeline (Section 2.1) ===\n");
  std::printf("%-26s %10s %12s %10s\n", "stage", "accuracy", "bytes",
              "infer_ms");
  for (const auto& s : stages) {
    std::printf("%-26s %10.3f %12lld %10.3f\n", s.name, s.accuracy, s.bytes,
                s.infer_ms);
  }
  const double compression =
      static_cast<double>(stages.front().bytes) /
      static_cast<double>(stages.back().bytes);
  std::printf("\ntotal size reduction: %.0fx, accuracy change: %+.3f\n",
              compression, stages.back().accuracy - stages.front().accuracy);
  return 0;
}
