// The Section 4.2 interpretability workbench: train a model, embed its
// data with t-SNE, generate a datasheet, capture activations into a
// Mistique-style store, run DeepBase-style hypothesis queries, and
// synthesize class prototypes with activation maximization.

#include <cstdio>

#include "src/data/synthetic.h"
#include "src/fairness/datasheet.h"
#include "src/fairness/loan_data.h"
#include "src/interpret/inspector.h"
#include "src/interpret/model_store.h"
#include "src/interpret/saliency.h"
#include "src/interpret/tsne.h"
#include "src/nn/train.h"
#include "src/optim/optimizer.h"

int main() {
  using namespace dlsys;

  // 1. Data + datasheet (know what you are training on).
  LoanDataConfig data_config;
  data_config.n = 1500;
  data_config.bias_strength = 0.5;
  LoanData loans = MakeLoanData(data_config);
  auto sheet = GenerateDatasheet(loans.data, loans.group);
  if (sheet.ok()) {
    std::printf("=== datasheet ===\n%s\n", sheet->ToString().c_str());
  }

  // 2. Train the model under inspection.
  Sequential net = MakeMlp(5, {16, 16}, 2);
  Rng rng(3);
  net.Init(&rng);
  Sgd opt(0.05, 0.9);
  TrainConfig tc;
  tc.epochs = 20;
  Train(&net, &opt, loans.data, tc);
  std::printf("model accuracy on observed labels: %.3f\n\n",
              Evaluate(&net, loans.data).accuracy);

  // 3. t-SNE of a data sample, scored by label purity.
  Dataset sample = Batch(loans.data, 0, 300);
  TsneConfig tsne_config;
  tsne_config.perplexity = 20.0;
  tsne_config.iterations = 250;
  auto embedding = Tsne(sample.x, tsne_config);
  if (embedding.ok()) {
    std::printf("=== t-SNE ===\nembedded 300 x 5 -> 300 x 2, label "
                "purity@10 = %.3f\n\n",
                EmbeddingPurity(*embedding, sample.y, 10));
  }

  // 4. Activation store: capture all intermediates, compare storage.
  auto exact = ModelStore::Capture(&net, sample.x, StorageMode::kExact);
  auto compact =
      ModelStore::Capture(&net, sample.x, StorageMode::kQuantizedDedup);
  if (exact.ok() && compact.ok()) {
    std::printf("=== activation store ===\nexact: %lld B, "
                "8-bit+dedup: %lld B\n",
                static_cast<long long>(exact->StoredBytes()),
                static_cast<long long>(compact->StoredBytes()));
    auto top = compact->TopUnits(1, 0, 3);
    if (top.ok()) {
      std::printf("top-3 hidden units for example 0: %lld %lld %lld\n\n",
                  static_cast<long long>((*top)[0]),
                  static_cast<long long>((*top)[1]),
                  static_cast<long long>((*top)[2]));
    }
  }

  // 5. DeepBase-style hypothesis: which units encode the label? the
  //    protected group?
  ModelInspector inspector(&net, loans.data.x);
  std::vector<double> label_prop, group_prop;
  for (size_t i = 0; i < loans.data.y.size(); ++i) {
    label_prop.push_back(static_cast<double>(loans.data.y[i]));
    group_prop.push_back(static_cast<double>(loans.group[i]));
  }
  auto label_profile = inspector.LayerProfile(label_prop);
  auto group_profile = inspector.LayerProfile(group_prop);
  if (label_profile.ok() && group_profile.ok()) {
    std::printf("=== hypothesis queries (per-layer affinity) ===\n");
    std::printf("%-8s %-28s %10s %10s\n", "layer", "name", "label",
                "group");
    for (int64_t l = 0; l < net.size(); ++l) {
      std::printf("%-8lld %-28s %10.3f %10.3f\n", static_cast<long long>(l),
                  net.layer(l)->name().c_str(),
                  (*label_profile)[static_cast<size_t>(l)],
                  (*group_profile)[static_cast<size_t>(l)]);
    }
    std::printf("\n");
  }

  // 6. Class prototypes via activation maximization + saliency.
  const char* feature_names[5] = {"income", "credit_hist", "debt_ratio",
                                  "savings", "recent_defaults"};
  for (int64_t target : {0, 1}) {
    ActMaxConfig am_config;
    auto prototype = ActivationMaximization(&net, {1, 5}, target, am_config);
    if (!prototype.ok()) continue;
    std::printf("=== prototype for class %lld (%s) ===\n",
                static_cast<long long>(target),
                target == 1 ? "approve" : "deny");
    for (int64_t f = 0; f < 5; ++f) {
      std::printf("  %-16s %+.3f\n", feature_names[f], (*prototype)[f]);
    }
  }
  return 0;
}
