// The Part 2 pipeline: build classic database components (B+-tree, Bloom
// filter, histograms) over synthetic data, then swap in their learned
// counterparts and compare size, speed, and estimation error.

#include <cmath>
#include <cstdio>
#include <set>

#include "src/core/metrics.h"
#include "src/db/bloom.h"
#include "src/db/btree.h"
#include "src/db/histogram.h"
#include "src/db/table.h"
#include "src/learned/cardinality.h"
#include "src/learned/learned_bloom.h"
#include "src/learned/learned_index.h"

int main() {
  using namespace dlsys;
  Rng rng(11);

  // ---------------------------------------------------------------
  // 1. Learned index vs B+-tree on 200k lognormal keys.
  // ---------------------------------------------------------------
  std::printf("=== learned index vs B+-tree ===\n");
  std::set<int64_t> key_set;
  while (key_set.size() < 200000) {
    key_set.insert(
        static_cast<int64_t>(std::exp(rng.Gaussian() * 1.5 + 12.0)));
  }
  std::vector<int64_t> keys(key_set.begin(), key_set.end());

  BTree btree(128);
  for (size_t i = 0; i < keys.size(); ++i) {
    btree.Insert(keys[i], static_cast<int64_t>(i));
  }
  auto rmi = LearnedIndex::Build(keys, 2048);
  if (!rmi.ok()) {
    std::fprintf(stderr, "%s\n", rmi.status().ToString().c_str());
    return 1;
  }
  Stopwatch bt_watch;
  int64_t checksum = 0;
  for (size_t i = 0; i < keys.size(); i += 7) {
    checksum += *btree.Find(keys[i]);
  }
  const double bt_ms = bt_watch.Seconds() * 1e3;
  Stopwatch rmi_watch;
  for (size_t i = 0; i < keys.size(); i += 7) {
    checksum -= *rmi->Find(keys[i]);
  }
  const double rmi_ms = rmi_watch.Seconds() * 1e3;
  std::printf("  b+tree: %8.2f ms lookups, %9lld bytes\n", bt_ms,
              static_cast<long long>(btree.MemoryBytes()));
  std::printf("  rmi:    %8.2f ms lookups, %9lld bytes "
              "(mean search window %.1f)  [checksum %lld]\n",
              rmi_ms, static_cast<long long>(rmi->MemoryBytes()),
              rmi->MeanSearchWindow(), static_cast<long long>(checksum));

  // ---------------------------------------------------------------
  // 2. Learned Bloom filter vs classic at matched memory.
  // ---------------------------------------------------------------
  std::printf("\n=== learned bloom filter vs classic ===\n");
  MembershipData membership =
      MakeClusteredMembership(4000, 8000, 1 << 22, 4, &rng);
  std::vector<int64_t> train_nm(membership.non_members.begin(),
                                membership.non_members.begin() + 4000);
  std::vector<int64_t> test_nm(membership.non_members.begin() + 4000,
                               membership.non_members.end());
  LearnedBloomConfig lb_config;
  lb_config.epochs = 30;
  lb_config.member_recall = 0.7;
  auto learned_bloom = LearnedBloomFilter::Train(
      membership.members, train_nm, 0, 1 << 22, lb_config);
  if (!learned_bloom.ok()) {
    std::fprintf(stderr, "%s\n", learned_bloom.status().ToString().c_str());
    return 1;
  }
  const double matched_bits_per_key =
      static_cast<double>(learned_bloom->MemoryBytes() * 8) /
      static_cast<double>(membership.members.size());
  BloomFilter classic = BloomFilter::ForKeys(
      static_cast<int64_t>(membership.members.size()), matched_bits_per_key);
  for (int64_t k : membership.members) classic.Insert(k);
  std::printf("  classic: %6lld bytes, fpr %.4f\n",
              static_cast<long long>(classic.MemoryBytes()),
              classic.MeasureFpr(test_nm));
  std::printf("  learned: %6lld bytes, fpr %.4f (%lld keys in backup)\n",
              static_cast<long long>(learned_bloom->MemoryBytes()),
              learned_bloom->MeasureFpr(test_nm),
              static_cast<long long>(learned_bloom->backup_keys()));

  // ---------------------------------------------------------------
  // 3. Learned cardinality vs histogram AVI on correlated attributes.
  // ---------------------------------------------------------------
  std::printf("\n=== learned cardinality vs histogram AVI ===\n");
  Table table = MakeCorrelatedTable(10000, 4, 0.9, &rng);
  auto train_queries = MakeWorkload(table, 500, &rng);
  auto test_queries = MakeWorkload(table, 100, &rng);
  CardinalityConfig card_config;
  card_config.epochs = 80;
  auto learned_card =
      LearnedCardinality::Train(table, train_queries, card_config);
  if (!learned_card.ok()) {
    std::fprintf(stderr, "%s\n", learned_card.status().ToString().c_str());
    return 1;
  }
  AviEstimator avi(table, 64);
  double avi_qerr = 0.0, learned_qerr = 0.0;
  for (const auto& q : test_queries) {
    const double truth = TrueSelectivity(table, q);
    avi_qerr += QError(avi.Estimate(q), truth);
    learned_qerr += QError(learned_card->Estimate(q), truth);
  }
  avi_qerr /= static_cast<double>(test_queries.size());
  learned_qerr /= static_cast<double>(test_queries.size());
  std::printf("  histogram AVI: mean q-error %6.2f  (%lld bytes)\n",
              avi_qerr, static_cast<long long>(avi.MemoryBytes()));
  std::printf("  learned MLP:   mean q-error %6.2f  (%lld bytes)\n",
              learned_qerr,
              static_cast<long long>(learned_card->MemoryBytes()));
  return 0;
}
