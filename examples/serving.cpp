// The serving layer end to end: train a weak v1 and a strong v2 of the
// same classifier, stand up a Server, hot-swap v1 -> v2 in the middle of
// a Poisson request stream without losing a request, and watch accuracy
// jump at the version boundary while tail latency stays flat. A second,
// deliberately overloaded run shows deadline-aware admission shedding
// excess load instead of letting the queue (and everyone's latency) grow
// without bound.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>

#include "src/core/rng.h"
#include "src/data/synthetic.h"
#include "src/nn/train.h"
#include "src/optim/optimizer.h"
#include "src/runtime/runtime.h"
#include "src/serve/admission.h"
#include "src/serve/loadgen.h"
#include "src/serve/registry.h"
#include "src/serve/server.h"

namespace {

dlsys::Sequential TrainModel(const dlsys::Dataset& train, int epochs,
                             double lr, uint64_t seed) {
  dlsys::Sequential net = dlsys::MakeMlp(16, {48}, 6);
  dlsys::Rng rng(seed);
  net.Init(&rng);
  dlsys::Sgd opt(lr, 0.9);
  dlsys::TrainConfig config;
  config.epochs = epochs;
  config.batch_size = 32;
  dlsys::Train(&net, &opt, train, config);
  return net;
}

int64_t ArgMax(const dlsys::Tensor& row) {
  int64_t best = 0;
  for (int64_t j = 1; j < row.size(); ++j) {
    if (row.data()[j] > row.data()[best]) best = j;
  }
  return best;
}

}  // namespace

int main() {
  using namespace dlsys;
  // Intra-op kernels stay single-threaded; the server's worker pool is
  // the source of parallelism here (DESIGN.md §2e).
  RuntimeConfig::SetThreads(1);

  Rng rng(11);
  Dataset data = MakeGaussianBlobs(5000, 16, 6, 0.7, &rng);
  TrainTestSplit split = Split(data, 0.8);

  // v1 is undertrained on purpose; v2 is the model we want live.
  Sequential v1 = TrainModel(split.train, 1, 0.002, 21);
  Sequential v2 = TrainModel(split.train, 25, 0.05, 22);
  std::printf("offline accuracy  v1 %.3f | v2 %.3f\n",
              Evaluate(&v1, split.test).accuracy,
              Evaluate(&v2, split.test).accuracy);

  // ---------------------------------------------- hot swap under load
  ModelRegistry registry;
  ServerConfig config;
  config.workers = 2;
  config.batch.max_batch = 8;
  config.batch.max_delay_ms = 0.2;
  config.queue_capacity = 64;
  config.default_deadline_ms = 50.0;
  auto created = Server::Create(&registry, config);
  if (!created.ok()) {
    std::fprintf(stderr, "%s\n", created.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<Server> server = std::move(created).value();
  if (!server->Publish("classifier", v1, {16}).ok()) return 1;

  // Poisson arrivals over the test set; swap to v2 halfway through.
  const int64_t requests = split.test.size();
  Rng arrivals(12);
  Tensor example({16});
  double t = 0.0;
  for (int64_t i = 0; i < requests; ++i) {
    t += -std::log(1.0 - arrivals.Uniform()) / 50000.0 * 1000.0;  // 50k r/s
    if (i == requests / 2) {
      if (!server->Publish("classifier", v2, {16}).ok()) return 1;
      std::printf("hot swap to v2 at t=%.2f ms (request %lld)\n", t,
                  static_cast<long long>(i));
    }
    const float* row = split.test.x.data() + i * 16;
    std::copy(row, row + 16, example.data());
    server->Submit("classifier", example, t);
  }
  server->Drain();

  // Every admitted request completed, on the version it was admitted
  // under; accuracy per served version shows the swap taking effect.
  int64_t hits[3] = {0, 0, 0}, counts[3] = {0, 0, 0};
  for (const Server::Completion& c : server->completions()) {
    const size_t v = static_cast<size_t>(c.version);
    ++counts[v];
    if (ArgMax(c.output) == split.test.y[static_cast<size_t>(c.id)]) {
      ++hits[v];
    }
  }
  const MetricsReport m = server->metrics();
  std::printf("served            v1 %lld requests (acc %.3f) | v2 %lld "
              "requests (acc %.3f)\n",
              static_cast<long long>(counts[1]),
              counts[1] ? static_cast<double>(hits[1]) / counts[1] : 0.0,
              static_cast<long long>(counts[2]),
              counts[2] ? static_cast<double>(hits[2]) / counts[2] : 0.0);
  std::printf("admitted %lld, completed %lld, lost %lld\n",
              static_cast<long long>(m.Get("serve.admitted")),
              static_cast<long long>(server->completions().size()),
              static_cast<long long>(m.Get("serve.admitted")) -
                  static_cast<long long>(server->completions().size()));
  std::printf("latency           p50 %.3f ms | p99 %.3f ms | max %.3f ms\n",
              server->latency_histogram().Quantile(0.5),
              server->latency_histogram().Quantile(0.99),
              server->latency_histogram().max_ms());

  // ------------------------------------------------- overload behavior
  // Same server shape, but offered load at 3x the cost model's capacity
  // and a tight 5 ms deadline: admission sheds the excess at the door.
  ModelRegistry registry2;
  ServerConfig tight = config;
  tight.queue_capacity = 32;
  tight.default_deadline_ms = 5.0;
  auto created2 = Server::Create(&registry2, tight);
  if (!created2.ok()) return 1;
  std::unique_ptr<Server> server2 = std::move(created2).value();
  if (!server2->Publish("classifier", v2, {16}).ok()) return 1;

  const double capacity =
      tight.workers * tight.batch.max_batch * 1000.0 /
      EstimateServiceMs(tight.cost, tight.batch.max_batch);
  OpenLoopConfig load;
  load.seed = 13;
  load.requests = 3000;
  load.rate_rps = 3.0 * capacity;
  load.model = "classifier";
  const LoadReport overload = RunOpenLoop(server2.get(), load);
  std::printf(
      "overload at 3.0x  offered %lld | admitted %lld | shed %lld "
      "(%.1f%%) | deadline misses %lld | p99 %.3f ms\n",
      static_cast<long long>(overload.offered),
      static_cast<long long>(overload.admitted),
      static_cast<long long>(overload.shed),
      100.0 * static_cast<double>(overload.shed) /
          static_cast<double>(overload.offered),
      static_cast<long long>(overload.deadline_missed),
      overload.latency.Quantile(0.99));
  return 0;
}
