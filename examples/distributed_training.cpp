// Section 2.1 in action: simulate an 8-worker cluster and sweep the
// communication-efficiency techniques — Local SGD averaging periods and
// gradient compression — printing the accuracy/communication table.

#include <cstdio>
#include <string>

#include "src/core/metrics.h"
#include "src/data/synthetic.h"
#include "src/distributed/cluster.h"
#include "src/distributed/compressor.h"
#include "src/nn/train.h"

namespace {

void Report(const char* name, dlsys::Result<dlsys::ClusterResult>* result,
            const dlsys::Dataset& test) {
  using namespace dlsys;
  if (!result->ok()) {
    std::fprintf(stderr, "%s failed: %s\n", name,
                 result->status().ToString().c_str());
    return;
  }
  Sequential model = (*result)->model.Clone();
  const double acc = Evaluate(&model, test).accuracy;
  std::printf("%-28s acc=%.3f  comm=%8.2f MB  sim_time=%7.3f s\n", name,
              acc,
              (*result)->report.Get(metric::kCommBytes) / 1e6,
              (*result)->report.Get(metric::kTrainSeconds));
}

}  // namespace

int main() {
  using namespace dlsys;
  Rng rng(5);
  Dataset data = MakeGaussianBlobs(6000, 16, 6, 3.0, &rng);
  TrainTestSplit split = Split(data, 0.85);

  Sequential arch = MakeMlp(16, {64}, 6);
  arch.Init(&rng);

  ClusterConfig base;
  base.workers = 8;
  base.rounds = 400;
  base.network.bandwidth_bytes_per_s = 1.25e8;  // constrained 1 Gbps link

  std::printf("=== 8-worker simulated cluster, 400 rounds ===\n");

  // Baseline: synchronous SGD, dense gradients.
  {
    auto result = TrainOnCluster(arch, split.train, base, nullptr);
    Report("sync SGD (dense)", &result, split.test);
  }
  // Local SGD at increasing averaging periods.
  for (int64_t h : {2, 8, 32}) {
    ClusterConfig config = base;
    config.strategy = SyncStrategy::kLocalSgd;
    config.local_steps = h;
    auto result = TrainOnCluster(arch, split.train, config, nullptr);
    char name[64];
    std::snprintf(name, sizeof(name), "local SGD (H=%lld)",
                  static_cast<long long>(h));
    Report(name, &result, split.test);
  }
  // Gradient compression.
  {
    TopKCompressor topk(0.05);
    auto result = TrainOnCluster(arch, split.train, base, &topk);
    Report("sync SGD + top-5%", &result, split.test);
  }
  {
    QuantizingCompressor q4(4);
    auto result = TrainOnCluster(arch, split.train, base, &q4);
    Report("sync SGD + 4-bit grads", &result, split.test);
  }

  // Fault tolerance: the same schedule of worker crashes handled by two
  // recovery policies. Restart replays from the last checkpoint and ends
  // bitwise-identical to the fault-free run; drop-and-continue re-shards
  // the dead workers' data and finishes with a smaller cluster.
  std::printf("\n=== same cluster, workers 3 and 6 crash mid-run ===\n");
  for (const char* policy : {"restart (ckpt every 50)", "drop-and-continue"}) {
    ClusterConfig config = base;
    config.faults.crashes = {{120, 3}, {260, 6}};
    if (policy[0] == 'r') {
      config.recovery = RecoveryPolicy::kRestartFromCheckpoint;
      config.checkpoint_interval = 50;
      config.checkpoint_dir = std::string(".");
    } else {
      config.recovery = RecoveryPolicy::kDropAndContinue;
    }
    auto result = TrainOnCluster(arch, split.train, config, nullptr);
    Report(policy, &result, split.test);
    if (result.ok()) {
      std::printf("%-28s   live=%.0f wasted_rounds=%.0f recovery=%.3f s\n",
                  "", result->report.Get(fault_metric::kLiveWorkers),
                  result->report.Get(fault_metric::kWastedRounds),
                  result->report.Get(fault_metric::kRecoverySeconds));
    }
  }
  return 0;
}
