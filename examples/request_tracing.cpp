// Fleet-wide request tracing, end to end: run a gray failure (one
// replica silently serving at 8x its declared compute cost) through the
// serving fleet with request-scoped tracing on, then answer the three
// questions an on-call engineer actually asks:
//
//  1. *Where did the time go?* Every delivered request carries a
//     critical-path record whose component decomposition — route hop,
//     admission, quota delay, slot wait, execute, return hop — sums
//     bitwise to its client-observed latency (DESIGN.md §2k).
//  2. *Is the SLO burning, and which stage is burning it?* A
//     multi-window burn-rate alerter watches the same records per
//     tenant and fleet-wide; its alert names the dominant component, so
//     the gray failure is classified execute-dominant at detection time.
//  3. *Show me the slow ones.* Each attribution window keeps the k
//     slowest rids as exemplars; the rids link to causally-parented
//     span trees in the exported Perfetto trace (dlsys_request_trace
//     .json — open in https://ui.perfetto.dev, pid 2 is the sim clock).
//
// Everything runs on the simulated clock: the report, the alerts, and
// the trace slice replay bit-for-bit at any DLSYS_THREADS.

#include <cstdio>

#include "src/core/rng.h"
#include "src/fleet/chaos.h"
#include "src/fleet/fleet.h"
#include "src/nn/train.h"
#include "src/obs/attribution.h"
#include "src/obs/slo.h"
#include "src/obs/trace.h"
#include "src/runtime/runtime.h"
#include "src/serve/loadgen.h"

namespace {

constexpr int64_t kInElems = 16;

dlsys::Sequential MakeModel() {
  dlsys::Sequential net = dlsys::MakeMlp(kInElems, {32}, 8);
  dlsys::Rng rng(42);
  net.Init(&rng);
  return net;
}

dlsys::FleetConfig MakeFleetConfig() {
  dlsys::FleetConfig config;
  config.replica_slots = 4;
  config.initial_replicas = 4;
  config.server.workers = 2;
  config.server.queue_capacity = 64;
  config.server.batch.max_batch = 8;
  config.server.batch.max_delay_ms = 1.0;
  config.server.cost = {1.0, 0.25};
  config.server.default_deadline_ms = 50.0;
  config.window_ms = 500.0;
  // Healthy client latency is ~2-4 ms; a request slower than 8 ms burns
  // SLO budget even when it still beats its 50 ms deadline.
  config.slo.slo_latency_ms = 8.0;
  return config;
}

void PrintWindowDecomposition(const dlsys::obs::AttributionReport& attr,
                              size_t w) {
  if (w >= attr.fleet.size()) return;
  const dlsys::obs::AttributionWindow& win = attr.fleet[w];
  if (win.count == 0) {
    std::printf("  [%5.0f ms] empty\n", static_cast<double>(w) *
                                            attr.window_ms);
    return;
  }
  std::printf("  [%5.0f ms] %4lld req, %3lld missed |",
              static_cast<double>(w) * attr.window_ms,
              static_cast<long long>(win.count),
              static_cast<long long>(win.violations));
  for (int c = 0; c < dlsys::obs::kPathComponents; ++c) {
    std::printf(
        " %s %.2f", dlsys::obs::PathComponentName(
                        static_cast<dlsys::obs::PathComponent>(c)),
        static_cast<double>(win.sums.ns[c]) / 1e6 /
            static_cast<double>(win.count));
  }
  std::printf(" ms/req\n");
}

}  // namespace

int main() {
  using namespace dlsys;
  RuntimeConfig::SetThreads(1);

  // One replica of four silently serves at 8x compute cost from t=4 s:
  // no crash, no probe failure — the classic gray failure.
  auto scenario = MakeScenario("gray_failure", 0.5);
  DLSYS_CHECK(scenario.ok(), "scenario must exist");

  TraceLoadConfig load;
  load.seed = 7;
  load.duration_ms = 12'000.0;
  load.base_rps = 600.0;
  load.deadline_ms = 50.0;
  load.model = "digits";

  obs::ResetTrace();
  obs::SetTracingEnabled(true);
  auto fleet = Fleet::Create(MakeFleetConfig());
  DLSYS_CHECK(fleet.ok(), "fleet config must validate");
  DLSYS_CHECK(fleet.value()->Deploy("digits", MakeModel(), {kInElems}).ok(),
              "deploy must succeed");
  auto run = fleet.value()->Run(scenario.value(), load);
  obs::SetTracingEnabled(false);
  DLSYS_CHECK(run.ok(), "fleet run must succeed");
  const FleetReport& report = run.value();

  // 1. The per-component time series around the fault: execute blows up
  // at 4 s while every other component stays flat.
  std::printf("== critical-path decomposition (fleet windows) ==\n");
  const size_t fault_window = static_cast<size_t>(
      report.fault_start_ms / report.attribution.window_ms);
  for (size_t w = fault_window >= 2 ? fault_window - 2 : 0;
       w < fault_window + 3 && w < report.attribution.fleet.size(); ++w) {
    PrintWindowDecomposition(report.attribution, w);
  }

  // 2. The burn-rate alerts, each naming the component that burns the
  // budget: execute-dominant here, route-hop-dominant for a slow
  // partition — same alerter, different verdicts.
  std::printf("\n== SLO burn-rate alerts ==\n");
  for (const obs::BurnAlert& a : report.alerts) {
    std::printf(
        "  t=%6.0f ms  %-16s fast %5.1fx slow %5.1fx  dominant %s "
        "(%.0f%% of violator time)\n",
        a.t_ms, a.scope.c_str(), a.fast_burn, a.slow_burn,
        obs::PathComponentName(a.dominant), 100.0 * a.dominant_share);
  }
  DLSYS_CHECK(!report.alerts.empty(), "the gray failure must alert");

  // 3. Exemplars: the slowest rids of the first alerting window — these
  // are the spans to click on in the Perfetto export.
  std::printf("\n== slowest exemplars in the fault window ==\n");
  if (fault_window + 1 < report.attribution.fleet.size()) {
    for (const obs::PathExemplar& e :
         report.attribution.fleet[fault_window + 1].exemplars) {
      std::printf("  rid %lld  total %.2f ms  (execute %.2f ms)\n",
                  static_cast<long long>(e.rid),
                  static_cast<double>(e.total_ns) / 1e6,
                  static_cast<double>(
                      e.components[obs::PathComponent::kExecute]) /
                      1e6);
    }
  }

  const obs::TraceBuffer sim = obs::SimTrackOnly(obs::DrainTrace());
  DLSYS_CHECK(
      obs::WriteChromeTrace("dlsys_request_trace.json", sim).ok(),
      "trace export must succeed");
  obs::ResetTrace();
  std::printf(
      "\nWrote %zu causally-linked request spans to "
      "dlsys_request_trace.json\n(load in https://ui.perfetto.dev; search "
      "an exemplar rid to jump to its\nspan tree). Overhead bar and "
      "traced-vs-untraced bitwise check:\nbuild/bench/bench_obs (E38).\n",
      sim.events.size());
  return 0;
}
