// The serving fleet under fire, end to end: stand up four replica
// groups of the serving stack behind a health-checked router, drive a
// diurnal request trace through them, and stage two chaos scenarios
// from the taxonomy grammar (DESIGN.md §2h):
//
//  1. A correlated crash storm kills half the fleet at t=4s. Queued
//     work dies with the replicas, requests routed into the
//     crash-to-detection gap fail on the network timeout, and the
//     checkpointed-restart policy brings the victims back — the report
//     shows the dip and the measured time-to-recover.
//  2. A bad model version (40x the declared service cost) is canaried
//     onto one replica at t=4s. The canary metric watches its degraded
//     fraction during the bake window, fails the bake, and rolls the
//     replica back through the registry's hot-swap path — no fleet-wide
//     rollout of a lemon.
//
// Every decision runs on the simulated clock, so both runs replay
// bit-for-bit for a fixed seed at any DLSYS_THREADS.

#include <cstdio>
#include <memory>

#include "src/core/rng.h"
#include "src/fleet/chaos.h"
#include "src/fleet/fleet.h"
#include "src/nn/train.h"
#include "src/runtime/runtime.h"
#include "src/serve/loadgen.h"

namespace {

constexpr int64_t kInElems = 16;

dlsys::Sequential MakeModel() {
  dlsys::Sequential net = dlsys::MakeMlp(kInElems, {32}, 8);
  dlsys::Rng rng(42);
  net.Init(&rng);
  return net;
}

dlsys::FleetConfig MakeFleetConfig() {
  dlsys::FleetConfig config;
  config.replica_slots = 4;
  config.initial_replicas = 4;
  config.server.workers = 2;
  config.server.queue_capacity = 64;
  config.server.batch.max_batch = 8;
  config.server.batch.max_delay_ms = 1.0;
  config.server.cost = {1.0, 0.25};
  config.server.default_deadline_ms = 50.0;
  config.restart_ms = 1000.0;     // checkpointed restart downtime
  config.canary.bake_ms = 1500.0; // watch a rollout this long
  config.window_ms = 500.0;
  return config;
}

dlsys::TraceLoadConfig MakeLoad() {
  dlsys::TraceLoadConfig load;
  load.seed = 7;
  load.duration_ms = 12'000.0;
  load.base_rps = 600.0;
  load.diurnal_amplitude = 0.3;
  load.diurnal_period_ms = load.duration_ms;
  load.deadline_ms = 50.0;
  load.model = "digits";
  return load;
}

void PrintReport(const dlsys::FleetReport& r) {
  std::printf("  offered %lld  completed_ok %lld  missed %lld  shed %lld\n",
              static_cast<long long>(r.offered),
              static_cast<long long>(r.completed_ok),
              static_cast<long long>(r.missed),
              static_cast<long long>(r.shed_queue_full + r.shed_deadline +
                                     r.shed_draining + r.shed_unhealthy));
  std::printf("  goodput %.0f r/s  p99 %.2f ms  miss %.2f%%\n",
              r.goodput_rps(), r.p99_ms, 100.0 * r.miss_fraction());
  std::printf(
      "  crashes %lld  restarts %lld  rollouts %lld  rollbacks %lld\n",
      static_cast<long long>(r.crashes), static_cast<long long>(r.restarts),
      static_cast<long long>(r.rollouts),
      static_cast<long long>(r.rollbacks));
  if (r.fault_start_ms >= 0.0) {
    std::printf("  fault at %.0f ms, time-to-recover %.0f ms\n",
                r.fault_start_ms, r.time_to_recover_ms);
  }
  std::printf("  windows (start_ms: goodput r/s, active replicas):\n   ");
  for (const dlsys::FleetWindow& w : r.windows) {
    std::printf(" %5.0f:%4.0f/%d", w.start_ms, w.goodput_rps,
                w.active_replicas);
  }
  std::printf("\n");
}

dlsys::FleetReport RunScenario(const dlsys::ChaosScenario& scenario) {
  auto fleet = dlsys::Fleet::Create(MakeFleetConfig());
  DLSYS_CHECK(fleet.ok(), "fleet config must validate");
  DLSYS_CHECK(fleet.value()->Deploy("digits", MakeModel(), {kInElems}).ok(),
              "deploy must succeed");
  auto report = fleet.value()->Run(scenario, MakeLoad());
  DLSYS_CHECK(report.ok(), "fleet run must succeed");
  return std::move(report).value();
}

}  // namespace

int main() {
  using namespace dlsys;
  // Intra-op kernels stay single-threaded; each replica's worker pool is
  // the source of parallelism here (DESIGN.md §2e).
  RuntimeConfig::SetThreads(1);

  // --- Act 1: correlated crash storm + checkpointed restart ----------
  ChaosScenario storm;
  storm.name = "crash_storm";
  storm.seed = 3;
  storm.events.push_back({FaultKind::kCrashStorm, /*start_ms=*/4000.0,
                          /*duration_ms=*/0.0, /*fraction=*/0.5,
                          /*severity=*/1.0});
  std::printf("== crash storm: half the fleet dies at t=4s ==\n");
  FleetReport storm_report = RunScenario(storm);
  PrintReport(storm_report);

  // --- Act 2: bad-version rollout caught by the canary ---------------
  ChaosScenario rollout;
  rollout.name = "bad_version";
  rollout.seed = 3;
  rollout.events.push_back({FaultKind::kBadVersionRollout,
                            /*start_ms=*/4000.0, /*duration_ms=*/0.0,
                            /*fraction=*/0.25, /*severity=*/40.0});
  std::printf("\n== bad version: 40x-cost model canaried at t=4s ==\n");
  FleetReport rollout_report = RunScenario(rollout);
  PrintReport(rollout_report);

  std::printf(
      "\nThe canary bake failed and rolled the replica back through the\n"
      "hot-swap path: %lld rollout, %lld rollback, fleet-wide goodput\n"
      "recovered without operator action. Full scenario x policy grid:\n"
      "build/bench/bench_fleet (E35).\n",
      static_cast<long long>(rollout_report.rollouts),
      static_cast<long long>(rollout_report.rollbacks));
  return 0;
}
