// Quickstart: train an MLP on synthetic data and print the full metric
// vocabulary of the tutorial — quality metrics AND resource metrics
// (time, memory, FLOPs, energy) in one report.

#include <cstdio>

#include "src/core/metrics.h"
#include "src/data/synthetic.h"
#include "src/green/energy.h"
#include "src/nn/train.h"
#include "src/optim/optimizer.h"

int main() {
  using namespace dlsys;

  // 1. A seeded synthetic classification task: 8 Gaussian blobs in 16-D.
  Rng rng(42);
  Dataset data = MakeGaussianBlobs(/*n=*/4000, /*dims=*/16, /*classes=*/8,
                                   /*separation=*/3.0, &rng);
  TrainTestSplit split = Split(data, 0.8);

  // 2. A model and an optimizer.
  Sequential net = MakeMlp(16, {64, 32}, 8);
  net.Init(&rng);
  Sgd opt(/*lr=*/0.05, /*momentum=*/0.9);

  // 3. Train.
  TrainConfig config;
  config.epochs = 20;
  MetricsReport report = Train(&net, &opt, split.train, config);

  // 4. Evaluate quality and attach resource metrics.
  EvalResult eval = Evaluate(&net, split.test);
  report.Set(metric::kAccuracy, eval.accuracy);

  // 5. Energy/carbon estimate for this training run on a mid-range GPU
  //    in a mixed grid (tutorial Part 3.3).
  TrainingJob job = TrainingJob::ForNetwork(net, split.train.size(),
                                            config.epochs);
  auto footprint =
      EstimateFootprint(job, StandardHardware()[1], StandardRegions()[0]);
  if (footprint.ok()) {
    report.Set(metric::kEnergyJoules, footprint->energy_joules);
    report.Set("green.co2_grams", footprint->co2_grams);
  }

  std::printf("=== dlsys quickstart ===\n%s\n", net.Summary().c_str());
  std::printf("%s\n", report.ToString().c_str());
  std::printf("test accuracy: %.3f\n", eval.accuracy);
  return eval.accuracy > 0.8 ? 0 : 1;
}
