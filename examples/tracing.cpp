// Tracing walkthrough: run a small train-then-serve workload with the
// observability layer switched on, then
//   1. write the span rings out as trace.json (open it in Perfetto or
//      chrome://tracing — wall-clock kernels on pid 1, the simulated
//      serving lifecycle on pid 2, request ids in the args),
//   2. print the top-5 spans by self-time,
//   3. print the counter registry and the per-phase energy estimate the
//      cost-accounting layer feeds into src/green.

#include <cstdio>

#include "src/data/synthetic.h"
#include "src/green/energy.h"
#include "src/nn/train.h"
#include "src/obs/cost.h"
#include "src/obs/counters.h"
#include "src/obs/trace.h"
#include "src/optim/optimizer.h"
#include "src/serve/registry.h"
#include "src/serve/server.h"

int main() {
  using namespace dlsys;

  // Tracing is compiled in but off by default; flip it on for the whole
  // run. Sampling 1 records every span — crank this up (e.g. 64) on hot
  // workloads to trade trace completeness for volume.
  obs::SetTracingEnabled(true);
  obs::SetTraceSampling(1);
  obs::ResetPhaseTotals();

  // ---- Train: the loop tags data/forward/backward phases itself.
  Rng rng(42);
  Dataset data = MakeGaussianBlobs(/*n=*/1500, /*dims=*/16, /*classes=*/8,
                                   /*separation=*/3.0, &rng);
  Sequential net = MakeMlp(16, {48, 32}, 8);
  net.Init(&rng);
  Sgd opt(/*lr=*/0.05, /*momentum=*/0.9);
  TrainConfig config;
  config.epochs = 4;
  Train(&net, &opt, data, config);

  // ---- Serve: the server emits each request's admit → queue → execute
  // → respond lifecycle on the simulated-clock track, keyed by rid.
  ModelRegistry registry;
  ServerConfig serve_config;
  serve_config.workers = 2;
  serve_config.queue_capacity = 64;
  serve_config.batch.max_batch = 8;
  serve_config.batch.max_delay_ms = 0.3;
  serve_config.default_deadline_ms = 1e6;
  auto server = Server::Create(&registry, serve_config);
  DLSYS_CHECK(server.ok(), "server config invalid");
  DLSYS_CHECK((*server)->Publish("blobs", net, {16}).ok(), "publish failed");

  Tensor example({16});
  for (int i = 0; i < 200; ++i) {
    example.FillGaussian(&rng, 1.0f);
    (*server)->Submit("blobs", example, static_cast<double>(i) * 0.05);
  }
  (*server)->Drain();
  obs::SetTracingEnabled(false);

  // ---- 1. Export the trace.
  const obs::TraceBuffer trace = obs::DrainTrace();
  DLSYS_CHECK(obs::WriteChromeTrace("trace.json", trace).ok(),
              "trace write failed");
  std::printf("wrote trace.json: %zu events (%lld dropped)\n",
              trace.events.size(), static_cast<long long>(trace.dropped));

  // ---- 2. Top-5 spans by self-time (duration minus nested children).
  std::printf("\ntop spans by self-time:\n");
  const auto stats = obs::SelfTimeByName(trace);
  for (size_t i = 0; i < stats.size() && i < 5; ++i) {
    std::printf("  %-24s x%-6lld self %8.3f ms  total %8.3f ms\n",
                stats[i].name.c_str(), static_cast<long long>(stats[i].count),
                stats[i].self_ms, stats[i].total_ms);
  }

  // ---- 3. Counters and per-phase energy.
  std::printf("\ncounter registry:\n%s",
              obs::CounterRegistry::Global().ExportText().c_str());

  const obs::PhaseCost cost = obs::PhaseTotals();
  auto rows = EstimatePhaseFootprint(cost, StandardHardware()[1],
                                     StandardRegions()[0]);
  DLSYS_CHECK(rows.ok(), "footprint estimate failed");
  std::printf("\nper-phase energy (gpu-mid, mixed-grid):\n");
  for (const PhaseEnergyRow& row : *rows) {
    std::printf("  %-9s %12.3e flops  %10.6f J  %10.3e g CO2\n",
                row.phase.c_str(), row.flops, row.energy_joules,
                row.co2_grams);
  }

#if !DLSYS_OBS
  std::printf("\n(built with -DDLSYS_OBS=0: instrumentation compiled out, "
              "so the trace and tallies above are empty)\n");
#endif
  return 0;
}
