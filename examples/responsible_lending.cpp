// The Part 3 pipeline: biased loan data -> train -> audit fairness ->
// mitigate -> explain individual decisions with LIME -> carbon report.

#include <cstdio>

#include "src/fairness/loan_data.h"
#include "src/fairness/metrics.h"
#include "src/fairness/mitigation.h"
#include "src/green/energy.h"
#include "src/interpret/lime.h"
#include "src/nn/train.h"
#include "src/optim/optimizer.h"
#include "src/tensor/ops.h"

namespace {
const char* kFeatureNames[5] = {"income", "credit_history", "debt_ratio",
                                "savings", "recent_defaults"};
}

int main() {
  using namespace dlsys;

  // 1. Historically biased loan data (bias strength 0.6 against group 1).
  LoanDataConfig data_config;
  data_config.n = 6000;
  data_config.bias_strength = 0.6;
  LoanData loans = MakeLoanData(data_config);
  LoanDataConfig test_config = data_config;
  test_config.n = 2000;
  test_config.seed = 99;
  LoanData holdout = MakeLoanData(test_config);

  // 2. Train naively on the biased labels.
  Sequential biased_model = MakeMlp(5, {16}, 2);
  Rng rng(3);
  biased_model.Init(&rng);
  Sgd opt(0.05, 0.9);
  TrainConfig tc;
  tc.epochs = 25;
  Train(&biased_model, &opt, loans.data, tc);

  // 3. Audit against the bias-free ground truth.
  auto audit = AuditFairness(Predict(&biased_model, holdout.data.x),
                             holdout.fair_label, holdout.group);
  std::printf("=== naive model audit ===\n%s\n\n",
              audit.ok() ? audit->ToString().c_str()
                         : audit.status().ToString().c_str());

  // 4. Mitigate: reweigh the training data and retrain.
  auto reweighed = ReweighDataset(loans.data, loans.group, 17);
  if (!reweighed.ok()) {
    std::fprintf(stderr, "%s\n", reweighed.status().ToString().c_str());
    return 1;
  }
  Sequential fair_model = MakeMlp(5, {16}, 2);
  fair_model.Init(&rng);
  Sgd opt2(0.05, 0.9);
  Train(&fair_model, &opt2, reweighed->data, tc);
  auto fair_audit = AuditFairness(Predict(&fair_model, holdout.data.x),
                                  holdout.fair_label, holdout.group);
  std::printf("=== reweighed model audit ===\n%s\n\n",
              fair_audit.ok() ? fair_audit->ToString().c_str()
                              : fair_audit.status().ToString().c_str());

  // 5. Explain one denial with LIME (tutorial: loan decisions must come
  //    with reasons).
  int64_t denied = -1;
  std::vector<int64_t> preds = Predict(&fair_model, holdout.data.x);
  for (size_t i = 0; i < preds.size(); ++i) {
    if (preds[i] == 0) {
      denied = static_cast<int64_t>(i);
      break;
    }
  }
  if (denied >= 0) {
    Tensor x = SliceRows(holdout.data.x, denied, denied + 1);
    LimeConfig lime_config;
    auto explanation = ExplainWithLime(&fair_model, x, /*target=*/0,
                                       lime_config);
    if (explanation.ok()) {
      std::printf("=== LIME explanation of denial #%lld "
                  "(fidelity R^2 = %.3f) ===\n",
                  static_cast<long long>(denied), explanation->fidelity_r2);
      for (int j = 0; j < 5; ++j) {
        std::printf("  %-16s %+.4f\n", kFeatureNames[j],
                    explanation->weights[static_cast<size_t>(j)]);
      }
      std::printf("\n");
    }
  }

  // 6. Carbon report for the two training runs.
  TrainingJob job = TrainingJob::ForNetwork(fair_model, loans.data.size(),
                                            2 * tc.epochs);
  auto footprint =
      EstimateFootprint(job, StandardHardware()[1], StandardRegions()[0]);
  if (footprint.ok()) {
    std::printf("=== carbon report ===\n"
                "total training FLOPs: %.3g\n"
                "energy: %.3g J, facility: %.3g kWh, CO2: %.3g g\n",
                job.total_flops, footprint->energy_joules,
                footprint->facility_kwh, footprint->co2_grams);
  }
  return 0;
}
