
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compress/distill.cc" "src/CMakeFiles/dlsys.dir/compress/distill.cc.o" "gcc" "src/CMakeFiles/dlsys.dir/compress/distill.cc.o.d"
  "/root/repo/src/compress/pruning.cc" "src/CMakeFiles/dlsys.dir/compress/pruning.cc.o" "gcc" "src/CMakeFiles/dlsys.dir/compress/pruning.cc.o.d"
  "/root/repo/src/compress/quantization.cc" "src/CMakeFiles/dlsys.dir/compress/quantization.cc.o" "gcc" "src/CMakeFiles/dlsys.dir/compress/quantization.cc.o.d"
  "/root/repo/src/core/metrics.cc" "src/CMakeFiles/dlsys.dir/core/metrics.cc.o" "gcc" "src/CMakeFiles/dlsys.dir/core/metrics.cc.o.d"
  "/root/repo/src/core/status.cc" "src/CMakeFiles/dlsys.dir/core/status.cc.o" "gcc" "src/CMakeFiles/dlsys.dir/core/status.cc.o.d"
  "/root/repo/src/core/tradeoff.cc" "src/CMakeFiles/dlsys.dir/core/tradeoff.cc.o" "gcc" "src/CMakeFiles/dlsys.dir/core/tradeoff.cc.o.d"
  "/root/repo/src/data/dataset.cc" "src/CMakeFiles/dlsys.dir/data/dataset.cc.o" "gcc" "src/CMakeFiles/dlsys.dir/data/dataset.cc.o.d"
  "/root/repo/src/data/synthetic.cc" "src/CMakeFiles/dlsys.dir/data/synthetic.cc.o" "gcc" "src/CMakeFiles/dlsys.dir/data/synthetic.cc.o.d"
  "/root/repo/src/db/bloom.cc" "src/CMakeFiles/dlsys.dir/db/bloom.cc.o" "gcc" "src/CMakeFiles/dlsys.dir/db/bloom.cc.o.d"
  "/root/repo/src/db/btree.cc" "src/CMakeFiles/dlsys.dir/db/btree.cc.o" "gcc" "src/CMakeFiles/dlsys.dir/db/btree.cc.o.d"
  "/root/repo/src/db/histogram.cc" "src/CMakeFiles/dlsys.dir/db/histogram.cc.o" "gcc" "src/CMakeFiles/dlsys.dir/db/histogram.cc.o.d"
  "/root/repo/src/db/join.cc" "src/CMakeFiles/dlsys.dir/db/join.cc.o" "gcc" "src/CMakeFiles/dlsys.dir/db/join.cc.o.d"
  "/root/repo/src/db/stats_cache.cc" "src/CMakeFiles/dlsys.dir/db/stats_cache.cc.o" "gcc" "src/CMakeFiles/dlsys.dir/db/stats_cache.cc.o.d"
  "/root/repo/src/db/table.cc" "src/CMakeFiles/dlsys.dir/db/table.cc.o" "gcc" "src/CMakeFiles/dlsys.dir/db/table.cc.o.d"
  "/root/repo/src/db/tunable_db.cc" "src/CMakeFiles/dlsys.dir/db/tunable_db.cc.o" "gcc" "src/CMakeFiles/dlsys.dir/db/tunable_db.cc.o.d"
  "/root/repo/src/distributed/cluster.cc" "src/CMakeFiles/dlsys.dir/distributed/cluster.cc.o" "gcc" "src/CMakeFiles/dlsys.dir/distributed/cluster.cc.o.d"
  "/root/repo/src/distributed/compressor.cc" "src/CMakeFiles/dlsys.dir/distributed/compressor.cc.o" "gcc" "src/CMakeFiles/dlsys.dir/distributed/compressor.cc.o.d"
  "/root/repo/src/distributed/priority.cc" "src/CMakeFiles/dlsys.dir/distributed/priority.cc.o" "gcc" "src/CMakeFiles/dlsys.dir/distributed/priority.cc.o.d"
  "/root/repo/src/ensemble/ensemble.cc" "src/CMakeFiles/dlsys.dir/ensemble/ensemble.cc.o" "gcc" "src/CMakeFiles/dlsys.dir/ensemble/ensemble.cc.o.d"
  "/root/repo/src/ensemble/treenet.cc" "src/CMakeFiles/dlsys.dir/ensemble/treenet.cc.o" "gcc" "src/CMakeFiles/dlsys.dir/ensemble/treenet.cc.o.d"
  "/root/repo/src/fairness/datasheet.cc" "src/CMakeFiles/dlsys.dir/fairness/datasheet.cc.o" "gcc" "src/CMakeFiles/dlsys.dir/fairness/datasheet.cc.o.d"
  "/root/repo/src/fairness/embedding_bias.cc" "src/CMakeFiles/dlsys.dir/fairness/embedding_bias.cc.o" "gcc" "src/CMakeFiles/dlsys.dir/fairness/embedding_bias.cc.o.d"
  "/root/repo/src/fairness/loan_data.cc" "src/CMakeFiles/dlsys.dir/fairness/loan_data.cc.o" "gcc" "src/CMakeFiles/dlsys.dir/fairness/loan_data.cc.o.d"
  "/root/repo/src/fairness/metrics.cc" "src/CMakeFiles/dlsys.dir/fairness/metrics.cc.o" "gcc" "src/CMakeFiles/dlsys.dir/fairness/metrics.cc.o.d"
  "/root/repo/src/fairness/mitigation.cc" "src/CMakeFiles/dlsys.dir/fairness/mitigation.cc.o" "gcc" "src/CMakeFiles/dlsys.dir/fairness/mitigation.cc.o.d"
  "/root/repo/src/green/energy.cc" "src/CMakeFiles/dlsys.dir/green/energy.cc.o" "gcc" "src/CMakeFiles/dlsys.dir/green/energy.cc.o.d"
  "/root/repo/src/interpret/inspector.cc" "src/CMakeFiles/dlsys.dir/interpret/inspector.cc.o" "gcc" "src/CMakeFiles/dlsys.dir/interpret/inspector.cc.o.d"
  "/root/repo/src/interpret/lime.cc" "src/CMakeFiles/dlsys.dir/interpret/lime.cc.o" "gcc" "src/CMakeFiles/dlsys.dir/interpret/lime.cc.o.d"
  "/root/repo/src/interpret/model_store.cc" "src/CMakeFiles/dlsys.dir/interpret/model_store.cc.o" "gcc" "src/CMakeFiles/dlsys.dir/interpret/model_store.cc.o.d"
  "/root/repo/src/interpret/saliency.cc" "src/CMakeFiles/dlsys.dir/interpret/saliency.cc.o" "gcc" "src/CMakeFiles/dlsys.dir/interpret/saliency.cc.o.d"
  "/root/repo/src/interpret/tsne.cc" "src/CMakeFiles/dlsys.dir/interpret/tsne.cc.o" "gcc" "src/CMakeFiles/dlsys.dir/interpret/tsne.cc.o.d"
  "/root/repo/src/learned/cardinality.cc" "src/CMakeFiles/dlsys.dir/learned/cardinality.cc.o" "gcc" "src/CMakeFiles/dlsys.dir/learned/cardinality.cc.o.d"
  "/root/repo/src/learned/join_order.cc" "src/CMakeFiles/dlsys.dir/learned/join_order.cc.o" "gcc" "src/CMakeFiles/dlsys.dir/learned/join_order.cc.o.d"
  "/root/repo/src/learned/knob_tuning.cc" "src/CMakeFiles/dlsys.dir/learned/knob_tuning.cc.o" "gcc" "src/CMakeFiles/dlsys.dir/learned/knob_tuning.cc.o.d"
  "/root/repo/src/learned/learned_bloom.cc" "src/CMakeFiles/dlsys.dir/learned/learned_bloom.cc.o" "gcc" "src/CMakeFiles/dlsys.dir/learned/learned_bloom.cc.o.d"
  "/root/repo/src/learned/learned_index.cc" "src/CMakeFiles/dlsys.dir/learned/learned_index.cc.o" "gcc" "src/CMakeFiles/dlsys.dir/learned/learned_index.cc.o.d"
  "/root/repo/src/learned/semantic_compression.cc" "src/CMakeFiles/dlsys.dir/learned/semantic_compression.cc.o" "gcc" "src/CMakeFiles/dlsys.dir/learned/semantic_compression.cc.o.d"
  "/root/repo/src/memsched/checkpoint.cc" "src/CMakeFiles/dlsys.dir/memsched/checkpoint.cc.o" "gcc" "src/CMakeFiles/dlsys.dir/memsched/checkpoint.cc.o.d"
  "/root/repo/src/memsched/offload.cc" "src/CMakeFiles/dlsys.dir/memsched/offload.cc.o" "gcc" "src/CMakeFiles/dlsys.dir/memsched/offload.cc.o.d"
  "/root/repo/src/nlq/query_language.cc" "src/CMakeFiles/dlsys.dir/nlq/query_language.cc.o" "gcc" "src/CMakeFiles/dlsys.dir/nlq/query_language.cc.o.d"
  "/root/repo/src/nlq/rnn.cc" "src/CMakeFiles/dlsys.dir/nlq/rnn.cc.o" "gcc" "src/CMakeFiles/dlsys.dir/nlq/rnn.cc.o.d"
  "/root/repo/src/nn/conv.cc" "src/CMakeFiles/dlsys.dir/nn/conv.cc.o" "gcc" "src/CMakeFiles/dlsys.dir/nn/conv.cc.o.d"
  "/root/repo/src/nn/layers.cc" "src/CMakeFiles/dlsys.dir/nn/layers.cc.o" "gcc" "src/CMakeFiles/dlsys.dir/nn/layers.cc.o.d"
  "/root/repo/src/nn/loss.cc" "src/CMakeFiles/dlsys.dir/nn/loss.cc.o" "gcc" "src/CMakeFiles/dlsys.dir/nn/loss.cc.o.d"
  "/root/repo/src/nn/sequential.cc" "src/CMakeFiles/dlsys.dir/nn/sequential.cc.o" "gcc" "src/CMakeFiles/dlsys.dir/nn/sequential.cc.o.d"
  "/root/repo/src/nn/serialize.cc" "src/CMakeFiles/dlsys.dir/nn/serialize.cc.o" "gcc" "src/CMakeFiles/dlsys.dir/nn/serialize.cc.o.d"
  "/root/repo/src/nn/train.cc" "src/CMakeFiles/dlsys.dir/nn/train.cc.o" "gcc" "src/CMakeFiles/dlsys.dir/nn/train.cc.o.d"
  "/root/repo/src/nnopt/morphnet.cc" "src/CMakeFiles/dlsys.dir/nnopt/morphnet.cc.o" "gcc" "src/CMakeFiles/dlsys.dir/nnopt/morphnet.cc.o.d"
  "/root/repo/src/optim/optimizer.cc" "src/CMakeFiles/dlsys.dir/optim/optimizer.cc.o" "gcc" "src/CMakeFiles/dlsys.dir/optim/optimizer.cc.o.d"
  "/root/repo/src/parallel/strategy.cc" "src/CMakeFiles/dlsys.dir/parallel/strategy.cc.o" "gcc" "src/CMakeFiles/dlsys.dir/parallel/strategy.cc.o.d"
  "/root/repo/src/tensor/ops.cc" "src/CMakeFiles/dlsys.dir/tensor/ops.cc.o" "gcc" "src/CMakeFiles/dlsys.dir/tensor/ops.cc.o.d"
  "/root/repo/src/tensor/tensor.cc" "src/CMakeFiles/dlsys.dir/tensor/tensor.cc.o" "gcc" "src/CMakeFiles/dlsys.dir/tensor/tensor.cc.o.d"
  "/root/repo/src/vecsearch/knn.cc" "src/CMakeFiles/dlsys.dir/vecsearch/knn.cc.o" "gcc" "src/CMakeFiles/dlsys.dir/vecsearch/knn.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
