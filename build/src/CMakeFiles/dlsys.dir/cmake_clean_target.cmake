file(REMOVE_RECURSE
  "libdlsys.a"
)
