# Empty dependencies file for dlsys.
# This may be replaced when dependencies are built.
