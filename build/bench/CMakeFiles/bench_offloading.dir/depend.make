# Empty dependencies file for bench_offloading.
# This may be replaced when dependencies are built.
