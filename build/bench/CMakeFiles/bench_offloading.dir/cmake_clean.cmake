file(REMOVE_RECURSE
  "CMakeFiles/bench_offloading.dir/bench_offloading.cc.o"
  "CMakeFiles/bench_offloading.dir/bench_offloading.cc.o.d"
  "bench_offloading"
  "bench_offloading.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_offloading.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
