# Empty compiler generated dependencies file for bench_stats_cache.
# This may be replaced when dependencies are built.
