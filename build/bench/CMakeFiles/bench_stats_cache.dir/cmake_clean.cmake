file(REMOVE_RECURSE
  "CMakeFiles/bench_stats_cache.dir/bench_stats_cache.cc.o"
  "CMakeFiles/bench_stats_cache.dir/bench_stats_cache.cc.o.d"
  "bench_stats_cache"
  "bench_stats_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stats_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
