# Empty compiler generated dependencies file for bench_nl_query.
# This may be replaced when dependencies are built.
