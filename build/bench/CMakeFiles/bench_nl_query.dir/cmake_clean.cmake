file(REMOVE_RECURSE
  "CMakeFiles/bench_nl_query.dir/bench_nl_query.cc.o"
  "CMakeFiles/bench_nl_query.dir/bench_nl_query.cc.o.d"
  "bench_nl_query"
  "bench_nl_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_nl_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
