file(REMOVE_RECURSE
  "CMakeFiles/bench_morphnet.dir/bench_morphnet.cc.o"
  "CMakeFiles/bench_morphnet.dir/bench_morphnet.cc.o.d"
  "bench_morphnet"
  "bench_morphnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_morphnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
