# Empty dependencies file for bench_morphnet.
# This may be replaced when dependencies are built.
