file(REMOVE_RECURSE
  "CMakeFiles/bench_tsne.dir/bench_tsne.cc.o"
  "CMakeFiles/bench_tsne.dir/bench_tsne.cc.o.d"
  "bench_tsne"
  "bench_tsne.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tsne.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
