# Empty compiler generated dependencies file for bench_tsne.
# This may be replaced when dependencies are built.
