file(REMOVE_RECURSE
  "CMakeFiles/bench_grad_compression.dir/bench_grad_compression.cc.o"
  "CMakeFiles/bench_grad_compression.dir/bench_grad_compression.cc.o.d"
  "bench_grad_compression"
  "bench_grad_compression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_grad_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
