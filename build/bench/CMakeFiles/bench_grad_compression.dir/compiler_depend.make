# Empty compiler generated dependencies file for bench_grad_compression.
# This may be replaced when dependencies are built.
