# Empty dependencies file for bench_model_store.
# This may be replaced when dependencies are built.
