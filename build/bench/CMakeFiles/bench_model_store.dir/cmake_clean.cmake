file(REMOVE_RECURSE
  "CMakeFiles/bench_model_store.dir/bench_model_store.cc.o"
  "CMakeFiles/bench_model_store.dir/bench_model_store.cc.o.d"
  "bench_model_store"
  "bench_model_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_model_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
