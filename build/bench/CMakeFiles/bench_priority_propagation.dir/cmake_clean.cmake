file(REMOVE_RECURSE
  "CMakeFiles/bench_priority_propagation.dir/bench_priority_propagation.cc.o"
  "CMakeFiles/bench_priority_propagation.dir/bench_priority_propagation.cc.o.d"
  "bench_priority_propagation"
  "bench_priority_propagation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_priority_propagation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
