# Empty dependencies file for bench_priority_propagation.
# This may be replaced when dependencies are built.
