# Empty dependencies file for bench_vector_search.
# This may be replaced when dependencies are built.
