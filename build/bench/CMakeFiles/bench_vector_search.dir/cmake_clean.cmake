file(REMOVE_RECURSE
  "CMakeFiles/bench_vector_search.dir/bench_vector_search.cc.o"
  "CMakeFiles/bench_vector_search.dir/bench_vector_search.cc.o.d"
  "bench_vector_search"
  "bench_vector_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vector_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
