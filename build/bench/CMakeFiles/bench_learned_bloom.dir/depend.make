# Empty dependencies file for bench_learned_bloom.
# This may be replaced when dependencies are built.
