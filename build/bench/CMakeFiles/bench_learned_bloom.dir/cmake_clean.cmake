file(REMOVE_RECURSE
  "CMakeFiles/bench_learned_bloom.dir/bench_learned_bloom.cc.o"
  "CMakeFiles/bench_learned_bloom.dir/bench_learned_bloom.cc.o.d"
  "bench_learned_bloom"
  "bench_learned_bloom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_learned_bloom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
