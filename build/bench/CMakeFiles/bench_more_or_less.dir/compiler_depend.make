# Empty compiler generated dependencies file for bench_more_or_less.
# This may be replaced when dependencies are built.
