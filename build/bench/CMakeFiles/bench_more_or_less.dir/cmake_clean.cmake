file(REMOVE_RECURSE
  "CMakeFiles/bench_more_or_less.dir/bench_more_or_less.cc.o"
  "CMakeFiles/bench_more_or_less.dir/bench_more_or_less.cc.o.d"
  "bench_more_or_less"
  "bench_more_or_less.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_more_or_less.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
