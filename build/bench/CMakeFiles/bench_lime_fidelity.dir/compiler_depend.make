# Empty compiler generated dependencies file for bench_lime_fidelity.
# This may be replaced when dependencies are built.
