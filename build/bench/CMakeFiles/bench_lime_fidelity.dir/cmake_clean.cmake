file(REMOVE_RECURSE
  "CMakeFiles/bench_lime_fidelity.dir/bench_lime_fidelity.cc.o"
  "CMakeFiles/bench_lime_fidelity.dir/bench_lime_fidelity.cc.o.d"
  "bench_lime_fidelity"
  "bench_lime_fidelity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lime_fidelity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
