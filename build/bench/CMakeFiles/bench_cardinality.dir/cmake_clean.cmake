file(REMOVE_RECURSE
  "CMakeFiles/bench_cardinality.dir/bench_cardinality.cc.o"
  "CMakeFiles/bench_cardinality.dir/bench_cardinality.cc.o.d"
  "bench_cardinality"
  "bench_cardinality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cardinality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
