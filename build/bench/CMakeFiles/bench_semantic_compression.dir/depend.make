# Empty dependencies file for bench_semantic_compression.
# This may be replaced when dependencies are built.
