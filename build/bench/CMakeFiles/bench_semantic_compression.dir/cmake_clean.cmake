file(REMOVE_RECURSE
  "CMakeFiles/bench_semantic_compression.dir/bench_semantic_compression.cc.o"
  "CMakeFiles/bench_semantic_compression.dir/bench_semantic_compression.cc.o.d"
  "bench_semantic_compression"
  "bench_semantic_compression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_semantic_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
