# Empty compiler generated dependencies file for bench_local_sgd.
# This may be replaced when dependencies are built.
