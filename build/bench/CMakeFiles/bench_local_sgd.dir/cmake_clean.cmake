file(REMOVE_RECURSE
  "CMakeFiles/bench_local_sgd.dir/bench_local_sgd.cc.o"
  "CMakeFiles/bench_local_sgd.dir/bench_local_sgd.cc.o.d"
  "bench_local_sgd"
  "bench_local_sgd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_local_sgd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
