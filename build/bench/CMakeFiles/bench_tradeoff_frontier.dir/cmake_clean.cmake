file(REMOVE_RECURSE
  "CMakeFiles/bench_tradeoff_frontier.dir/bench_tradeoff_frontier.cc.o"
  "CMakeFiles/bench_tradeoff_frontier.dir/bench_tradeoff_frontier.cc.o.d"
  "bench_tradeoff_frontier"
  "bench_tradeoff_frontier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tradeoff_frontier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
