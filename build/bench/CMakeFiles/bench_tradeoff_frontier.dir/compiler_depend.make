# Empty compiler generated dependencies file for bench_tradeoff_frontier.
# This may be replaced when dependencies are built.
