# Empty dependencies file for bench_ensembles.
# This may be replaced when dependencies are built.
