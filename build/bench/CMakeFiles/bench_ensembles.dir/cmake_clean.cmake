file(REMOVE_RECURSE
  "CMakeFiles/bench_ensembles.dir/bench_ensembles.cc.o"
  "CMakeFiles/bench_ensembles.dir/bench_ensembles.cc.o.d"
  "bench_ensembles"
  "bench_ensembles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ensembles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
