# Empty compiler generated dependencies file for bench_carbon.
# This may be replaced when dependencies are built.
