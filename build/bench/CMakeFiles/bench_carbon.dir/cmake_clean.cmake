file(REMOVE_RECURSE
  "CMakeFiles/bench_carbon.dir/bench_carbon.cc.o"
  "CMakeFiles/bench_carbon.dir/bench_carbon.cc.o.d"
  "bench_carbon"
  "bench_carbon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_carbon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
