file(REMOVE_RECURSE
  "CMakeFiles/bench_embedding_bias.dir/bench_embedding_bias.cc.o"
  "CMakeFiles/bench_embedding_bias.dir/bench_embedding_bias.cc.o.d"
  "bench_embedding_bias"
  "bench_embedding_bias.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_embedding_bias.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
