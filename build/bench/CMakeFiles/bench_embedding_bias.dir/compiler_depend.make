# Empty compiler generated dependencies file for bench_embedding_bias.
# This may be replaced when dependencies are built.
