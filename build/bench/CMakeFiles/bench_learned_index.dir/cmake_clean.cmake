file(REMOVE_RECURSE
  "CMakeFiles/bench_learned_index.dir/bench_learned_index.cc.o"
  "CMakeFiles/bench_learned_index.dir/bench_learned_index.cc.o.d"
  "bench_learned_index"
  "bench_learned_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_learned_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
