# Empty dependencies file for test_cnn_paths.
# This may be replaced when dependencies are built.
