file(REMOVE_RECURSE
  "CMakeFiles/test_cnn_paths.dir/test_cnn_paths.cc.o"
  "CMakeFiles/test_cnn_paths.dir/test_cnn_paths.cc.o.d"
  "test_cnn_paths"
  "test_cnn_paths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cnn_paths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
