# Empty dependencies file for test_nnopt.
# This may be replaced when dependencies are built.
