file(REMOVE_RECURSE
  "CMakeFiles/test_nnopt.dir/test_nnopt.cc.o"
  "CMakeFiles/test_nnopt.dir/test_nnopt.cc.o.d"
  "test_nnopt"
  "test_nnopt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nnopt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
