file(REMOVE_RECURSE
  "CMakeFiles/test_inspect_datasheet.dir/test_inspect_datasheet.cc.o"
  "CMakeFiles/test_inspect_datasheet.dir/test_inspect_datasheet.cc.o.d"
  "test_inspect_datasheet"
  "test_inspect_datasheet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_inspect_datasheet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
