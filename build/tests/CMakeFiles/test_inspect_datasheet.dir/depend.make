# Empty dependencies file for test_inspect_datasheet.
# This may be replaced when dependencies are built.
