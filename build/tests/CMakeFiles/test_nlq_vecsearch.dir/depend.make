# Empty dependencies file for test_nlq_vecsearch.
# This may be replaced when dependencies are built.
