file(REMOVE_RECURSE
  "CMakeFiles/test_nlq_vecsearch.dir/test_nlq_vecsearch.cc.o"
  "CMakeFiles/test_nlq_vecsearch.dir/test_nlq_vecsearch.cc.o.d"
  "test_nlq_vecsearch"
  "test_nlq_vecsearch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nlq_vecsearch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
