file(REMOVE_RECURSE
  "CMakeFiles/test_memsched.dir/test_memsched.cc.o"
  "CMakeFiles/test_memsched.dir/test_memsched.cc.o.d"
  "test_memsched"
  "test_memsched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_memsched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
