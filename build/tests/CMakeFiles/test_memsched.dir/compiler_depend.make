# Empty compiler generated dependencies file for test_memsched.
# This may be replaced when dependencies are built.
