file(REMOVE_RECURSE
  "CMakeFiles/test_interpret.dir/test_interpret.cc.o"
  "CMakeFiles/test_interpret.dir/test_interpret.cc.o.d"
  "test_interpret"
  "test_interpret.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_interpret.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
