# Empty compiler generated dependencies file for test_interpret.
# This may be replaced when dependencies are built.
