file(REMOVE_RECURSE
  "CMakeFiles/test_join.dir/test_join.cc.o"
  "CMakeFiles/test_join.dir/test_join.cc.o.d"
  "test_join"
  "test_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
