file(REMOVE_RECURSE
  "CMakeFiles/test_learned.dir/test_learned.cc.o"
  "CMakeFiles/test_learned.dir/test_learned.cc.o.d"
  "test_learned"
  "test_learned.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_learned.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
