# Empty compiler generated dependencies file for test_green.
# This may be replaced when dependencies are built.
