file(REMOVE_RECURSE
  "CMakeFiles/test_green.dir/test_green.cc.o"
  "CMakeFiles/test_green.dir/test_green.cc.o.d"
  "test_green"
  "test_green.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_green.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
