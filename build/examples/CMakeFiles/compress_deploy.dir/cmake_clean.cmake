file(REMOVE_RECURSE
  "CMakeFiles/compress_deploy.dir/compress_deploy.cpp.o"
  "CMakeFiles/compress_deploy.dir/compress_deploy.cpp.o.d"
  "compress_deploy"
  "compress_deploy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compress_deploy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
