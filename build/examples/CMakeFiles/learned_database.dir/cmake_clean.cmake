file(REMOVE_RECURSE
  "CMakeFiles/learned_database.dir/learned_database.cpp.o"
  "CMakeFiles/learned_database.dir/learned_database.cpp.o.d"
  "learned_database"
  "learned_database.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/learned_database.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
