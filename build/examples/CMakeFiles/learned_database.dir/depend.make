# Empty dependencies file for learned_database.
# This may be replaced when dependencies are built.
