# Empty compiler generated dependencies file for model_debugging.
# This may be replaced when dependencies are built.
