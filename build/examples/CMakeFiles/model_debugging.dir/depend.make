# Empty dependencies file for model_debugging.
# This may be replaced when dependencies are built.
