file(REMOVE_RECURSE
  "CMakeFiles/model_debugging.dir/model_debugging.cpp.o"
  "CMakeFiles/model_debugging.dir/model_debugging.cpp.o.d"
  "model_debugging"
  "model_debugging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_debugging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
