# Empty dependencies file for responsible_lending.
# This may be replaced when dependencies are built.
