file(REMOVE_RECURSE
  "CMakeFiles/responsible_lending.dir/responsible_lending.cpp.o"
  "CMakeFiles/responsible_lending.dir/responsible_lending.cpp.o.d"
  "responsible_lending"
  "responsible_lending.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/responsible_lending.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
