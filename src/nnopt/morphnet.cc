#include "src/nnopt/morphnet.h"

#include <algorithm>
#include <cmath>

#include "src/nn/layers.h"
#include "src/nn/train.h"
#include "src/optim/optimizer.h"

namespace dlsys {

int64_t MlpFlops(int64_t in, const std::vector<int64_t>& widths,
                 int64_t out) {
  int64_t flops = 0;
  int64_t prev = in;
  for (int64_t w : widths) {
    flops += 2 * prev * w;
    prev = w;
  }
  flops += 2 * prev * out;
  return flops;
}

namespace {

// Per-hidden-unit importance for layer l of a trained MLP: the L2 norm
// of the unit's incoming weight column times the L2 norm of its outgoing
// row (the unit is useless if either side is weak).
std::vector<double> UnitImportance(Sequential* net, int64_t dense_index) {
  auto* dense = dynamic_cast<Dense*>(net->layer(dense_index));
  auto* next = dynamic_cast<Dense*>(net->layer(dense_index + 2));
  DLSYS_CHECK(dense != nullptr && next != nullptr,
              "expected Dense-ReLU-Dense structure");
  const int64_t units = dense->out_features();
  std::vector<double> importance(static_cast<size_t>(units));
  const int64_t in = dense->in_features();
  const int64_t next_out = next->out_features();
  for (int64_t u = 0; u < units; ++u) {
    double in_norm = 0.0;
    for (int64_t r = 0; r < in; ++r) {
      const float w = dense->weight()[r * units + u];
      in_norm += static_cast<double>(w) * w;
    }
    double out_norm = 0.0;
    for (int64_t c = 0; c < next_out; ++c) {
      const float w = next->weight()[u * next_out + c];
      out_norm += static_cast<double>(w) * w;
    }
    importance[static_cast<size_t>(u)] =
        std::sqrt(in_norm) * std::sqrt(out_norm);
  }
  return importance;
}

Sequential BuildAndTrain(int64_t in, int64_t out,
                         const std::vector<int64_t>& widths,
                         const Dataset& train, const MorphConfig& config,
                         uint64_t seed, double* valid_acc,
                         const Dataset& valid) {
  Sequential net = MakeMlp(in, widths, out);
  Rng rng(seed);
  net.Init(&rng);
  Sgd opt(config.lr, 0.9);
  TrainConfig tc;
  tc.epochs = config.train_epochs;
  tc.batch_size = config.batch_size;
  tc.shuffle_seed = seed;
  Train(&net, &opt, train, tc);
  *valid_acc = Evaluate(&net, valid).accuracy;
  return net;
}

// Scales widths uniformly so MlpFlops(in, widths, out) ~ budget.
std::vector<int64_t> ScaleToBudget(int64_t in,
                                   std::vector<int64_t> widths, int64_t out,
                                   double budget) {
  double lo = 0.01, hi = 100.0;
  for (int iter = 0; iter < 60; ++iter) {
    const double mid = 0.5 * (lo + hi);
    std::vector<int64_t> scaled;
    for (int64_t w : widths) {
      scaled.push_back(std::max<int64_t>(
          1, static_cast<int64_t>(std::llround(w * mid))));
    }
    if (static_cast<double>(MlpFlops(in, scaled, out)) > budget) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  std::vector<int64_t> scaled;
  for (int64_t w : widths) {
    scaled.push_back(std::max<int64_t>(
        1, static_cast<int64_t>(std::llround(w * lo))));
  }
  return scaled;
}

Status ValidateInputs(const std::vector<int64_t>& widths,
                      const Dataset& train, const MorphConfig& config) {
  if (widths.empty()) {
    return Status::InvalidArgument("need at least one hidden layer");
  }
  for (int64_t w : widths) {
    if (w <= 0) return Status::InvalidArgument("widths must be positive");
  }
  if (train.size() == 0) {
    return Status::InvalidArgument("empty training set");
  }
  if (config.flop_budget <= 0.0) {
    return Status::InvalidArgument("flop_budget must be positive");
  }
  if (config.shrink_fraction <= 0.0 || config.shrink_fraction >= 1.0) {
    return Status::InvalidArgument("shrink_fraction must be in (0, 1)");
  }
  return Status::OK();
}

}  // namespace

Result<MorphResult> MorphNetOptimize(
    int64_t in, int64_t out, const std::vector<int64_t>& initial_widths,
    const Dataset& train, const Dataset& valid, const MorphConfig& config) {
  DLSYS_RETURN_NOT_OK(ValidateInputs(initial_widths, train, config));
  Stopwatch watch;
  MorphResult result;
  result.widths = ScaleToBudget(in, initial_widths, out, config.flop_budget);

  for (int64_t round = 0; round < config.iterations; ++round) {
    // 1. Train at the current widths.
    double acc = 0.0;
    Sequential net =
        BuildAndTrain(in, out, result.widths, train, config,
                      config.seed + static_cast<uint64_t>(round), &acc,
                      valid);
    result.trajectory.push_back(acc);

    if (round + 1 == config.iterations) {
      result.net = std::move(net);
      break;
    }

    // 2. Shrink: drop the globally weakest units (MorphNet's sparsifying
    // regularizer distilled to its effect: weak units leave).
    struct Unit {
      size_t layer;
      double importance;
    };
    std::vector<Unit> units;
    std::vector<int64_t> shrunk = result.widths;
    for (size_t l = 0; l < result.widths.size(); ++l) {
      auto importance = UnitImportance(&net, static_cast<int64_t>(2 * l));
      for (double imp : importance) units.push_back({l, imp});
    }
    std::sort(units.begin(), units.end(),
              [](const Unit& a, const Unit& b) {
                return a.importance < b.importance;
              });
    const int64_t drop = static_cast<int64_t>(
        std::llround(config.shrink_fraction *
                     static_cast<double>(units.size())));
    for (int64_t i = 0; i < drop; ++i) {
      int64_t& w = shrunk[units[static_cast<size_t>(i)].layer];
      if (w > 1) --w;  // never empty a layer
    }

    // 3. Expand: uniformly re-widen to the budget. Capacity has now
    // migrated toward the layers that kept their units.
    result.widths = ScaleToBudget(in, shrunk, out, config.flop_budget);
  }

  result.report.Set("optimize_seconds", watch.Seconds());
  result.report.Set(metric::kFlops,
                    static_cast<double>(MlpFlops(in, result.widths, out)));
  result.report.Set(metric::kAccuracy, result.trajectory.back());
  return result;
}

Result<MorphResult> UniformScaleBaseline(
    int64_t in, int64_t out, const std::vector<int64_t>& initial_widths,
    const Dataset& train, const Dataset& valid, const MorphConfig& config) {
  DLSYS_RETURN_NOT_OK(ValidateInputs(initial_widths, train, config));
  Stopwatch watch;
  MorphResult result;
  result.widths = ScaleToBudget(in, initial_widths, out, config.flop_budget);
  double acc = 0.0;
  // Equal total training budget: iterations x train_epochs.
  MorphConfig one_shot = config;
  one_shot.train_epochs = config.train_epochs * config.iterations;
  result.net = BuildAndTrain(in, out, result.widths, train, one_shot,
                             config.seed, &acc, valid);
  result.trajectory.push_back(acc);
  result.report.Set("optimize_seconds", watch.Seconds());
  result.report.Set(metric::kFlops,
                    static_cast<double>(MlpFlops(in, result.widths, out)));
  result.report.Set(metric::kAccuracy, acc);
  return result;
}

}  // namespace dlsys
