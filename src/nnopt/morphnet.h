#ifndef DLSYS_NNOPT_MORPHNET_H_
#define DLSYS_NNOPT_MORPHNET_H_

#include <cstdint>
#include <vector>

#include "src/core/metrics.h"
#include "src/core/status.h"
#include "src/data/dataset.h"
#include "src/nn/sequential.h"

/// \file morphnet.h
/// \brief MorphNet-style structure optimization for inference
/// (tutorial Section 2.2, Gordon et al.): iteratively shrink a network
/// by dropping weak units and uniformly re-widen it back to a resource
/// budget, so capacity migrates to the layers that earn it.
///
/// Restricted to MLPs (alternating Dense/ReLU), which is where our
/// substrate's structured pruning already operates.

namespace dlsys {

/// \brief Optimizer configuration.
struct MorphConfig {
  int64_t iterations = 3;      ///< shrink/expand rounds
  double flop_budget = 0.0;    ///< target forward FLOPs per example
  double shrink_fraction = 0.3;  ///< weakest-unit fraction dropped/round
  int64_t train_epochs = 10;   ///< training per round
  int64_t batch_size = 32;
  double lr = 0.05;
  uint64_t seed = 13;
};

/// \brief Result: the optimized widths and the trained network.
struct MorphResult {
  Sequential net;
  std::vector<int64_t> widths;     ///< hidden widths per layer
  std::vector<double> trajectory;  ///< accuracy after each round
  MetricsReport report;            ///< optimize time, final flops
};

/// \brief Forward FLOPs per example of an MLP with the given widths.
int64_t MlpFlops(int64_t in, const std::vector<int64_t>& widths, int64_t out);

/// \brief Runs MorphNet-style optimization starting from
/// \p initial_widths, training on \p train and validating on \p valid.
Result<MorphResult> MorphNetOptimize(int64_t in, int64_t out,
                                     const std::vector<int64_t>& initial_widths,
                                     const Dataset& train,
                                     const Dataset& valid,
                                     const MorphConfig& config);

/// \brief Baseline: uniformly scales \p initial_widths to the FLOP
/// budget (no structure learning) and trains once with the same total
/// epoch budget.
Result<MorphResult> UniformScaleBaseline(
    int64_t in, int64_t out, const std::vector<int64_t>& initial_widths,
    const Dataset& train, const Dataset& valid, const MorphConfig& config);

}  // namespace dlsys

#endif  // DLSYS_NNOPT_MORPHNET_H_
