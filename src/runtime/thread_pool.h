#ifndef DLSYS_RUNTIME_THREAD_POOL_H_
#define DLSYS_RUNTIME_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "src/runtime/runtime.h"

/// \file thread_pool.h
/// \brief A fixed-size fork-join worker pool for the CPU execution runtime.
///
/// The pool owns N long-lived worker threads that execute one parallel
/// region at a time. A region is published as (body, begin, base, rem,
/// chunks) under a generation counter; worker i derives its chunk [lo, hi)
/// from its own index with the same closed-form partition ParallelFor has
/// always used, so no task objects are built and no queue is touched —
/// launching a region performs **zero heap allocations**. This matters
/// twice: dispatch latency on small kernels, and the inference engine's
/// zero-steady-state-allocation contract (src/infer), which must hold at
/// every DLSYS_THREADS. The determinism contract of the runtime (see
/// runtime.h) still lives entirely in how work is partitioned; the pool
/// only decides which core runs a chunk, never what the chunk contains.

namespace dlsys {

/// \brief Fixed-size fork-join pool executing one parallel region at a time.
///
/// Thread-safe: concurrent RunParallel calls from different threads
/// serialize on an internal mutex. Destruction joins all workers; it must
/// not race with an active RunParallel (RunParallel blocks until its
/// region completes, so this holds whenever the caller owns the pool).
class ThreadPool {
 public:
  /// Spawns \p num_workers worker threads (>= 0).
  explicit ThreadPool(int num_workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// \brief Executes \p body over the static partition of
  /// [begin, begin + total) into \p chunks contiguous ranges.
  ///
  /// Chunk c covers [begin + c*base + min(c, rem), ...) with the first
  /// `rem = total % chunks` chunks one element longer — the partition is a
  /// pure function of (begin, total, chunks). Chunk 0 runs inline on the
  /// caller; chunk c >= 1 runs on worker c-1. Blocks until every chunk has
  /// finished. Requires 1 <= chunks <= num_workers() + 1. Allocation-free.
  void RunParallel(const ParallelBody& body, int64_t begin, int64_t total,
                   int64_t chunks);

  /// \brief Number of worker threads owned by the pool.
  int num_workers() const { return static_cast<int>(workers_.size()); }

 private:
  /// One published parallel region.
  struct Region {
    const ParallelBody* body = nullptr;
    int64_t begin = 0;
    int64_t base = 0;    ///< total / chunks
    int64_t rem = 0;     ///< total % chunks
    int64_t chunks = 0;  ///< ranges including the caller's chunk 0
  };

  void WorkerLoop(int worker_index);

  std::mutex run_mu_;  ///< serializes concurrent RunParallel callers

  std::mutex mu_;                     ///< guards all fields below
  std::condition_variable work_cv_;   ///< workers wait for a new generation
  std::condition_variable done_cv_;   ///< caller waits for remaining_ == 0
  uint64_t generation_ = 0;
  Region region_;
  int64_t remaining_ = 0;  ///< participating workers not yet finished
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace dlsys

#endif  // DLSYS_RUNTIME_THREAD_POOL_H_
