#ifndef DLSYS_RUNTIME_THREAD_POOL_H_
#define DLSYS_RUNTIME_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

/// \file thread_pool.h
/// \brief A minimal fixed-size worker pool for the CPU execution runtime.
///
/// The pool owns N long-lived worker threads pulling from a single locked
/// queue. It is intentionally simple: the determinism contract of the
/// runtime (see runtime.h) lives entirely in *how work is partitioned*,
/// not in the pool — the pool only provides cheap reusable threads so
/// ParallelFor does not pay a thread-spawn per kernel launch.

namespace dlsys {

/// \brief Fixed-size thread pool executing submitted closures FIFO.
///
/// Thread-safe. Destruction drains the queue: already-submitted tasks
/// finish before workers join.
class ThreadPool {
 public:
  /// Spawns \p num_workers worker threads (may be 0, making Submit run
  /// nothing until tasks are drained by nobody — callers guard this).
  explicit ThreadPool(int num_workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// \brief Enqueues \p task for execution on some worker.
  void Submit(std::function<void()> task);

  /// \brief Number of worker threads owned by the pool.
  int num_workers() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace dlsys

#endif  // DLSYS_RUNTIME_THREAD_POOL_H_
