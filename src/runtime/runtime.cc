#include "src/runtime/runtime.h"

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>

#include "src/obs/trace.h"
#include "src/runtime/thread_pool.h"

namespace dlsys {
namespace {

/// True while the current thread is executing a ParallelFor range; nested
/// parallel calls then run inline instead of deadlocking on the pool.
thread_local bool t_in_parallel_region = false;

int ReadEnvThreads() {
  const char* env = std::getenv("DLSYS_THREADS");
  if (env != nullptr) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 1) return static_cast<int>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? static_cast<int>(hw) : 1;
}

/// Pool state guarded by a mutex; the pool is rebuilt on SetThreads.
struct Runtime {
  std::mutex mu;
  int threads = 0;                  // 0 = not yet resolved
  int default_threads = 0;
  std::unique_ptr<ThreadPool> pool;

  static Runtime& Get() {
    static Runtime* r = new Runtime;  // leaked: workers may outlive main
    return *r;
  }

  /// Resolves the env/hardware default on first use.
  void EnsureResolved() {
    if (threads == 0) {
      default_threads = ReadEnvThreads();
      threads = default_threads;
    }
  }

  ThreadPool* EnsurePool() {
    EnsureResolved();
    if (!pool && threads > 1) {
      pool = std::make_unique<ThreadPool>(threads - 1);
    }
    return pool.get();
  }
};

}  // namespace

int RuntimeConfig::Threads() {
  Runtime& rt = Runtime::Get();
  std::lock_guard<std::mutex> lock(rt.mu);
  rt.EnsureResolved();
  return rt.threads;
}

void RuntimeConfig::SetThreads(int n) {
  Runtime& rt = Runtime::Get();
  std::lock_guard<std::mutex> lock(rt.mu);
  rt.EnsureResolved();
  const int clamped = std::max(1, n);
  if (clamped == rt.threads) return;
  rt.pool.reset();  // join existing workers before resizing
  rt.threads = clamped;
}

int RuntimeConfig::DefaultThreads() {
  Runtime& rt = Runtime::Get();
  std::lock_guard<std::mutex> lock(rt.mu);
  rt.EnsureResolved();
  return rt.default_threads;
}

void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 ParallelBody body) {
  const int64_t total = end - begin;
  if (total <= 0) return;
  if (grain < 1) grain = 1;

  ThreadPool* pool = nullptr;
  int threads = 1;
  {
    Runtime& rt = Runtime::Get();
    std::lock_guard<std::mutex> lock(rt.mu);
    rt.EnsureResolved();
    threads = rt.threads;
    if (threads > 1 && total > grain && !t_in_parallel_region) {
      pool = rt.EnsurePool();
    }
  }

  if (pool == nullptr || threads == 1 || total <= grain ||
      t_in_parallel_region) {
    body(begin, end);  // exact legacy single-threaded path
    return;
  }

  // Static contiguous partition: chunk c covers [begin + c*base + min(c,rem),
  // ...) with the first `rem` chunks one element longer. The partition is a
  // pure function of (total, chunks); chunk contents never migrate or split.
  // The pool derives each worker's chunk from the same closed form, so
  // dispatch builds no task objects and performs no heap allocation.
  const int64_t chunks =
      std::min<int64_t>(threads, (total + grain - 1) / grain);
  // The extent rides in the bytes slot (there is no dedicated arg).
  DLSYS_TRACE_SPAN_COST("runtime.parallel_for", "runtime", 0, total);
  const auto guarded = [&body](int64_t lo, int64_t hi) {
    t_in_parallel_region = true;
    // One span per partition: the range extent rides in the bytes slot so
    // load imbalance across workers is visible in the trace.
    DLSYS_TRACE_SPAN_COST("runtime.range", "runtime", 0, hi - lo);
    body(lo, hi);
    t_in_parallel_region = false;
  };
  const ParallelBody guarded_body(guarded);
  pool->RunParallel(guarded_body, begin, total, chunks);
}

}  // namespace dlsys
