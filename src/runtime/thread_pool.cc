#include "src/runtime/thread_pool.h"

#include "src/core/status.h"

namespace dlsys {

ThreadPool::ThreadPool(int num_workers) {
  workers_.reserve(num_workers > 0 ? static_cast<size_t>(num_workers) : 0);
  for (int i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::RunParallel(const ParallelBody& body, int64_t begin,
                             int64_t total, int64_t chunks) {
  DLSYS_CHECK(chunks >= 1 && chunks <= num_workers() + 1,
              "RunParallel chunk count out of range");
  if (chunks == 1) {
    body(begin, begin + total);
    return;
  }
  const int64_t base = total / chunks;
  const int64_t rem = total % chunks;
  std::lock_guard<std::mutex> run_lock(run_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    region_.body = &body;
    region_.begin = begin;
    region_.base = base;
    region_.rem = rem;
    region_.chunks = chunks;
    remaining_ = chunks - 1;
    ++generation_;
  }
  work_cv_.notify_all();

  // Chunk 0 runs on the caller: [begin, begin + base + (rem ? 1 : 0)).
  body(begin, begin + base + (rem > 0 ? 1 : 0));

  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return remaining_ == 0; });
}

void ThreadPool::WorkerLoop(int worker_index) {
  uint64_t seen = 0;
  for (;;) {
    Region region;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      region = region_;
    }
    // Worker i owns chunk i + 1; workers beyond the chunk count sit this
    // region out and are not counted in remaining_.
    const int64_t c = worker_index + 1;
    if (c >= region.chunks) continue;
    const int64_t lo =
        region.begin + c * region.base + (c < region.rem ? c : region.rem);
    const int64_t hi = lo + region.base + (c < region.rem ? 1 : 0);
    (*region.body)(lo, hi);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--remaining_ == 0) done_cv_.notify_one();
    }
  }
}

}  // namespace dlsys
