#include "src/runtime/thread_pool.h"

#include <utility>

namespace dlsys {

ThreadPool::ThreadPool(int num_workers) {
  workers_.reserve(num_workers > 0 ? static_cast<size_t>(num_workers) : 0);
  for (int i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace dlsys
