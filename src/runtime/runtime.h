#ifndef DLSYS_RUNTIME_RUNTIME_H_
#define DLSYS_RUNTIME_RUNTIME_H_

#include <cstdint>

/// \file runtime.h
/// \brief The CPU execution runtime: process-wide thread configuration and
/// the deterministic ParallelFor primitive every hot kernel dispatches
/// through.
///
/// ## Determinism contract
///
/// ParallelFor splits [begin, end) into *contiguous, disjoint* index
/// ranges and hands each range to exactly one worker. Kernels built on it
/// obey one rule: the computation of any single output element happens
/// entirely inside one range, with a loop order that does not depend on
/// the partition. Because no accumulation ever crosses a range boundary,
/// the floating-point operation sequence per output element is identical
/// for every thread count — outputs are *bitwise identical* whether
/// DLSYS_THREADS is 1, 2, or 64. Parallelism changes only which core runs
/// a range, never the arithmetic inside it.
///
/// ## Configuration
///
/// The worker count comes from, in priority order: RuntimeConfig::SetThreads
/// (API), the DLSYS_THREADS environment variable read at first use, and
/// std::thread::hardware_concurrency() as the default. A value of 1
/// disables the pool entirely: ParallelFor then invokes the body inline on
/// the calling thread, byte-for-byte the legacy single-threaded path.

namespace dlsys {

/// \brief Process-wide runtime configuration (thread count).
///
/// Thread-safe. Changing the thread count tears down and rebuilds the
/// worker pool; call it between kernels, not inside a ParallelFor body.
class RuntimeConfig {
 public:
  /// \brief Current worker count (>= 1). First call resolves the
  /// DLSYS_THREADS environment variable, else hardware_concurrency().
  static int Threads();

  /// \brief Sets the worker count (clamped to >= 1) and resizes the pool.
  static void SetThreads(int n);

  /// \brief The default the process started with (env or hardware).
  static int DefaultThreads();
};

/// \brief Non-owning reference to a `void(int64_t, int64_t)` callable.
///
/// ParallelFor takes its body by ParallelBody instead of std::function so
/// that dispatching a kernel never heap-allocates: a lambda with captures
/// larger than std::function's small-buffer would otherwise cost one
/// allocation per kernel launch, which both slows the hot path and breaks
/// the inference engine's zero-steady-state-allocation contract. The
/// referenced callable must outlive the ParallelFor call (always true for
/// a lambda argument, which lives to the end of the full expression).
class ParallelBody {
 public:
  template <typename F>
  ParallelBody(const F& f)  // NOLINT(runtime/explicit): adapter by design
      : obj_(&f), invoke_([](const void* o, int64_t lo, int64_t hi) {
          (*static_cast<const F*>(o))(lo, hi);
        }) {}

  void operator()(int64_t lo, int64_t hi) const { invoke_(obj_, lo, hi); }

 private:
  const void* obj_;
  void (*invoke_)(const void*, int64_t, int64_t);
};

/// \brief Runs \p body over [begin, end) with static contiguous
/// partitioning across the configured workers.
///
/// \p body receives half-open sub-ranges [lo, hi) that together cover
/// [begin, end) exactly once, with no overlap. \p grain is the minimum
/// range size worth shipping to a worker: when (end - begin) <= grain, or
/// the configured thread count is 1, the body runs inline on the caller —
/// the exact legacy code path. Nested calls from inside a worker also run
/// inline, so kernels may compose without deadlock.
///
/// The partition is static: ranges are computed up front from the total
/// extent alone and never stolen or re-split, which is what makes every
/// kernel built on this primitive bitwise deterministic across thread
/// counts (see file comment). Dispatch is allocation-free: the body is
/// passed by reference and the worker pool hands out ranges through a
/// generation-stamped fork-join protocol rather than a task queue.
void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 ParallelBody body);

}  // namespace dlsys

#endif  // DLSYS_RUNTIME_RUNTIME_H_
