#include "src/nlq/query_language.h"

#include "src/core/status.h"

namespace dlsys {

namespace {
constexpr int32_t kBelow = 4;
constexpr int32_t kAbove = 5;
constexpr int32_t kShow = 6;
constexpr int32_t kRows = 7;
constexpr int32_t kWhere = 8;
constexpr int32_t kPlease = 9;
constexpr int32_t kThe = 10;
constexpr int32_t kPad = 11;
constexpr int64_t kSeqLen = 9;

const char* kTokenNames[kNlqVocabSize] = {
    "c0", "c1", "c2", "c3", "below", "above", "show", "rows", "where",
    "please", "the", "<pad>"};
}  // namespace

SequenceDataset MakeNlqData(int64_t n, Rng* rng) {
  DLSYS_CHECK(n > 0, "need at least one sentence");
  SequenceDataset out;
  out.seq_len = kSeqLen;
  out.tokens.reserve(static_cast<size_t>(n * kSeqLen));
  out.labels.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    const int32_t left = static_cast<int32_t>(rng->Index(kNlqNumColumns));
    int32_t right = static_cast<int32_t>(rng->Index(kNlqNumColumns));
    if (right == left) right = (right + 1) % kNlqNumColumns;
    const bool above = rng->Bernoulli(0.5);
    std::vector<int32_t> sentence;
    // Optional preamble variants keep lengths/padding varied.
    if (rng->Bernoulli(0.7)) sentence.push_back(kShow);
    if (rng->Bernoulli(0.7)) sentence.push_back(kRows);
    sentence.push_back(kWhere);
    if (rng->Bernoulli(0.3)) sentence.push_back(kThe);
    sentence.push_back(left);
    sentence.push_back(above ? kAbove : kBelow);
    if (rng->Bernoulli(0.3)) sentence.push_back(kThe);
    sentence.push_back(right);
    if (rng->Bernoulli(0.4)) sentence.push_back(kPlease);
    while (static_cast<int64_t>(sentence.size()) < kSeqLen) {
      sentence.push_back(kPad);
    }
    out.tokens.insert(out.tokens.end(), sentence.begin(),
                      sentence.begin() + kSeqLen);
    out.labels.push_back(static_cast<int64_t>(left) * kNlqNumOps +
                         (above ? 1 : 0));
  }
  return out;
}

std::string NlqToString(const SequenceDataset& data, int64_t index) {
  std::string out;
  for (int64_t t = 0; t < data.seq_len; ++t) {
    const int32_t token =
        data.tokens[static_cast<size_t>(index * data.seq_len + t)];
    if (token == kPad) continue;
    if (!out.empty()) out += " ";
    out += kTokenNames[token];
  }
  return out;
}

Tensor NlqBagOfWords(const SequenceDataset& data) {
  const int64_t n = data.size();
  Tensor bow({n, kNlqVocabSize});
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t t = 0; t < data.seq_len; ++t) {
      bow[i * kNlqVocabSize +
          data.tokens[static_cast<size_t>(i * data.seq_len + t)]] += 1.0f;
    }
  }
  return bow;
}

}  // namespace dlsys
