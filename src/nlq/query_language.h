#ifndef DLSYS_NLQ_QUERY_LANGUAGE_H_
#define DLSYS_NLQ_QUERY_LANGUAGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/rng.h"
#include "src/nlq/rnn.h"

/// \file query_language.h
/// \brief A micro natural-language-to-predicate task (tutorial Part 2:
/// natural language querying of databases).
///
/// Sentences like "show rows where c2 below c0 please" must be mapped to
/// the predicate (left column, comparator). Crucially the label depends
/// on WORD ORDER — "c2 below c0" and "c0 below c2" contain the same
/// bag of tokens with opposite meanings — so order-aware models (RNNs)
/// can solve it and bag-of-words baselines provably cannot exceed
/// chance on the column slot.

namespace dlsys {

/// \brief The fixed micro-language vocabulary.
/// Tokens: 0..3 column names c0..c3; 4 "below"; 5 "above"; 6 "show";
/// 7 "rows"; 8 "where"; 9 "please"; 10 "the"; 11 <pad>.
inline constexpr int64_t kNlqVocabSize = 12;
inline constexpr int64_t kNlqNumColumns = 4;
inline constexpr int64_t kNlqNumOps = 2;
/// Labels: left_column * kNlqNumOps + (0 = below, 1 = above).
inline constexpr int64_t kNlqNumClasses = kNlqNumColumns * kNlqNumOps;

/// \brief Generates \p n sentences with random filler, padded to a
/// fixed length, labeled with (left column, comparator).
SequenceDataset MakeNlqData(int64_t n, Rng* rng);

/// \brief Renders a sequence back to text (debugging aid).
std::string NlqToString(const SequenceDataset& data, int64_t index);

/// \brief Bag-of-words representation: token-count vectors (n x vocab),
/// the baseline featurization that discards order.
Tensor NlqBagOfWords(const SequenceDataset& data);

}  // namespace dlsys

#endif  // DLSYS_NLQ_QUERY_LANGUAGE_H_
