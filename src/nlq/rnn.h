#ifndef DLSYS_NLQ_RNN_H_
#define DLSYS_NLQ_RNN_H_

#include <cstdint>
#include <vector>

#include "src/core/metrics.h"
#include "src/core/rng.h"
#include "src/core/status.h"
#include "src/tensor/tensor.h"

/// \file rnn.h
/// \brief An Elman recurrent classifier over token sequences with full
/// backpropagation through time (tutorial Part 2: "recurrent neural
/// networks are also used to enable natural language querying of
/// databases").
///
/// Self-contained (embedding table + recurrent cell + output head)
/// because sequences don't fit the batch-tensor Layer interface; the
/// BPTT gradients are finite-difference-tested like every other module.

namespace dlsys {

/// \brief A batch of fixed-length token sequences with labels.
struct SequenceDataset {
  std::vector<int32_t> tokens;   ///< n * seq_len token ids, row-major
  std::vector<int64_t> labels;   ///< n labels
  int64_t seq_len = 0;

  int64_t size() const {
    return seq_len == 0
               ? 0
               : static_cast<int64_t>(tokens.size()) / seq_len;
  }
};

/// \brief Elman RNN: h_t = tanh(E[x_t] Wx + h_{t-1} Wh + b),
/// logits = h_T Wo + bo.
class RnnClassifier {
 public:
  RnnClassifier(int64_t vocab, int64_t embed_dim, int64_t hidden,
                int64_t classes);

  /// \brief Initializes all parameters.
  void Init(Rng* rng);

  /// \brief Logits (n x classes) for a batch of sequences.
  Tensor Forward(const SequenceDataset& batch) const;

  /// \brief One SGD step on a batch (cross-entropy via BPTT);
  /// returns the loss.
  double TrainStep(const SequenceDataset& batch, double lr);

  /// \brief Accuracy over a dataset.
  double Accuracy(const SequenceDataset& data) const;

  /// \brief Trains for \p epochs with shuffled mini-batches.
  MetricsReport Train(const SequenceDataset& data, int64_t epochs,
                      int64_t batch_size, double lr, uint64_t seed);

  /// \brief Total parameter count.
  int64_t NumParams() const;

  /// \brief Gradient of the mean cross-entropy w.r.t. a single
  /// parameter coordinate, by index into the flattened parameter vector
  /// (exposed so tests can finite-difference the BPTT gradients).
  std::vector<Tensor*> Params();
  std::vector<Tensor*> Grads();

 private:
  // Runs the forward pass storing per-step hidden states into \p hs
  // (n x (T+1) x hidden, step 0 = zeros); returns logits.
  Tensor ForwardStoring(const SequenceDataset& batch,
                        std::vector<float>* hs) const;

  int64_t vocab_, embed_, hidden_, classes_;
  Tensor e_;   ///< (vocab, embed)
  Tensor wx_;  ///< (embed, hidden)
  Tensor wh_;  ///< (hidden, hidden)
  Tensor bh_;  ///< (hidden)
  Tensor wo_;  ///< (hidden, classes)
  Tensor bo_;  ///< (classes)
  Tensor de_, dwx_, dwh_, dbh_, dwo_, dbo_;
};

}  // namespace dlsys

#endif  // DLSYS_NLQ_RNN_H_
