#include "src/nlq/rnn.h"

#include <algorithm>
#include <cmath>

#include "src/nn/loss.h"
#include "src/tensor/ops.h"

namespace dlsys {

RnnClassifier::RnnClassifier(int64_t vocab, int64_t embed_dim,
                             int64_t hidden, int64_t classes)
    : vocab_(vocab),
      embed_(embed_dim),
      hidden_(hidden),
      classes_(classes),
      e_({vocab, embed_dim}),
      wx_({embed_dim, hidden}),
      wh_({hidden, hidden}),
      bh_({hidden}),
      wo_({hidden, classes}),
      bo_({classes}),
      de_({vocab, embed_dim}),
      dwx_({embed_dim, hidden}),
      dwh_({hidden, hidden}),
      dbh_({hidden}),
      dwo_({hidden, classes}),
      dbo_({classes}) {
  DLSYS_CHECK(vocab > 0 && embed_dim > 0 && hidden > 0 && classes > 1,
              "invalid RNN dimensions");
}

void RnnClassifier::Init(Rng* rng) {
  e_.FillGaussian(rng, 0.3f);
  const float bx = std::sqrt(6.0f / static_cast<float>(embed_));
  wx_.FillUniform(rng, -bx, bx);
  // Orthogonal-ish small recurrent init keeps gradients stable.
  const float bm = std::sqrt(3.0f / static_cast<float>(hidden_));
  wh_.FillUniform(rng, -bm, bm);
  bh_.Fill(0.0f);
  const float bo = std::sqrt(6.0f / static_cast<float>(hidden_));
  wo_.FillUniform(rng, -bo, bo);
  bo_.Fill(0.0f);
}

std::vector<Tensor*> RnnClassifier::Params() {
  return {&e_, &wx_, &wh_, &bh_, &wo_, &bo_};
}

std::vector<Tensor*> RnnClassifier::Grads() {
  return {&de_, &dwx_, &dwh_, &dbh_, &dwo_, &dbo_};
}

int64_t RnnClassifier::NumParams() const {
  return e_.size() + wx_.size() + wh_.size() + bh_.size() + wo_.size() +
         bo_.size();
}

Tensor RnnClassifier::ForwardStoring(const SequenceDataset& batch,
                                     std::vector<float>* hs) const {
  const int64_t n = batch.size();
  const int64_t t_len = batch.seq_len;
  DLSYS_CHECK(n > 0, "empty batch");
  if (hs != nullptr) {
    hs->assign(static_cast<size_t>(n * (t_len + 1) * hidden_), 0.0f);
  }
  std::vector<float> h(static_cast<size_t>(n * hidden_), 0.0f);
  std::vector<float> next(static_cast<size_t>(n * hidden_), 0.0f);
  for (int64_t t = 0; t < t_len; ++t) {
    for (int64_t i = 0; i < n; ++i) {
      const int32_t token = batch.tokens[static_cast<size_t>(
          i * t_len + t)];
      DLSYS_CHECK(token >= 0 && token < vocab_, "token id out of range");
      for (int64_t u = 0; u < hidden_; ++u) {
        double a = bh_[u];
        for (int64_t d = 0; d < embed_; ++d) {
          a += e_[token * embed_ + d] * wx_[d * hidden_ + u];
        }
        for (int64_t v = 0; v < hidden_; ++v) {
          a += h[static_cast<size_t>(i * hidden_ + v)] *
               wh_[v * hidden_ + u];
        }
        next[static_cast<size_t>(i * hidden_ + u)] =
            std::tanh(static_cast<float>(a));
      }
    }
    std::swap(h, next);
    if (hs != nullptr) {
      std::copy(h.begin(), h.end(),
                hs->begin() + static_cast<int64_t>((t + 1)) * n * hidden_);
    }
  }
  Tensor logits({n, classes_});
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t c = 0; c < classes_; ++c) {
      double a = bo_[c];
      for (int64_t u = 0; u < hidden_; ++u) {
        a += h[static_cast<size_t>(i * hidden_ + u)] *
             wo_[u * classes_ + c];
      }
      logits[i * classes_ + c] = static_cast<float>(a);
    }
  }
  return logits;
}

Tensor RnnClassifier::Forward(const SequenceDataset& batch) const {
  return ForwardStoring(batch, nullptr);
}

double RnnClassifier::TrainStep(const SequenceDataset& batch, double lr) {
  const int64_t n = batch.size();
  const int64_t t_len = batch.seq_len;
  for (Tensor* g : Grads()) g->Fill(0.0f);
  std::vector<float> hs;
  Tensor logits = ForwardStoring(batch, &hs);
  LossGrad lg = SoftmaxCrossEntropy(logits, batch.labels);

  // Output head gradients and the gradient flowing into h_T.
  std::vector<float> dh(static_cast<size_t>(n * hidden_), 0.0f);
  auto h_at = [&](int64_t t, int64_t i, int64_t u) -> float {
    return hs[static_cast<size_t>(t * n * hidden_ + i * hidden_ + u)];
  };
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t c = 0; c < classes_; ++c) {
      const float g = lg.grad[i * classes_ + c];
      dbo_[c] += g;
      for (int64_t u = 0; u < hidden_; ++u) {
        dwo_[u * classes_ + c] += h_at(t_len, i, u) * g;
        dh[static_cast<size_t>(i * hidden_ + u)] +=
            g * wo_[u * classes_ + c];
      }
    }
  }
  // BPTT.
  std::vector<float> dh_prev(static_cast<size_t>(n * hidden_), 0.0f);
  for (int64_t t = t_len - 1; t >= 0; --t) {
    std::fill(dh_prev.begin(), dh_prev.end(), 0.0f);
    for (int64_t i = 0; i < n; ++i) {
      const int32_t token =
          batch.tokens[static_cast<size_t>(i * t_len + t)];
      for (int64_t u = 0; u < hidden_; ++u) {
        const float hv = h_at(t + 1, i, u);
        const float da =
            dh[static_cast<size_t>(i * hidden_ + u)] * (1.0f - hv * hv);
        if (da == 0.0f) continue;
        dbh_[u] += da;
        for (int64_t d = 0; d < embed_; ++d) {
          dwx_[d * hidden_ + u] += e_[token * embed_ + d] * da;
          de_[token * embed_ + d] += wx_[d * hidden_ + u] * da;
        }
        for (int64_t v = 0; v < hidden_; ++v) {
          dwh_[v * hidden_ + u] += h_at(t, i, v) * da;
          dh_prev[static_cast<size_t>(i * hidden_ + v)] +=
              wh_[v * hidden_ + u] * da;
        }
      }
    }
    std::swap(dh, dh_prev);
  }
  // SGD step with gradient clipping (BPTT can spike).
  const auto params = Params();
  const auto grads = Grads();
  double norm_sq = 0.0;
  for (Tensor* g : grads) {
    for (int64_t i = 0; i < g->size(); ++i) {
      norm_sq += static_cast<double>((*g)[i]) * (*g)[i];
    }
  }
  const double clip = 5.0;
  const double scale =
      norm_sq > clip * clip ? clip / std::sqrt(norm_sq) : 1.0;
  for (size_t p = 0; p < params.size(); ++p) {
    Tensor& param = *params[p];
    const Tensor& g = *grads[p];
    for (int64_t i = 0; i < param.size(); ++i) {
      param[i] -= static_cast<float>(lr * scale) * g[i];
    }
  }
  return lg.loss;
}

double RnnClassifier::Accuracy(const SequenceDataset& data) const {
  if (data.size() == 0) return 0.0;
  Tensor logits = Forward(data);
  std::vector<int64_t> pred = ArgMaxRows(logits);
  int64_t hits = 0;
  for (size_t i = 0; i < data.labels.size(); ++i) {
    if (pred[i] == data.labels[i]) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(data.size());
}

MetricsReport RnnClassifier::Train(const SequenceDataset& data,
                                   int64_t epochs, int64_t batch_size,
                                   double lr, uint64_t seed) {
  MetricsReport report;
  Stopwatch watch;
  Rng rng(seed);
  const int64_t n = data.size();
  std::vector<int64_t> order(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) order[static_cast<size_t>(i)] = i;
  double last_loss = 0.0;
  for (int64_t epoch = 0; epoch < epochs; ++epoch) {
    rng.Shuffle(&order);
    for (int64_t b = 0; b < n; b += batch_size) {
      const int64_t end = std::min(b + batch_size, n);
      SequenceDataset batch;
      batch.seq_len = data.seq_len;
      for (int64_t i = b; i < end; ++i) {
        const int64_t src = order[static_cast<size_t>(i)];
        batch.tokens.insert(
            batch.tokens.end(),
            data.tokens.begin() + src * data.seq_len,
            data.tokens.begin() + (src + 1) * data.seq_len);
        batch.labels.push_back(data.labels[static_cast<size_t>(src)]);
      }
      last_loss = TrainStep(batch, lr);
    }
  }
  report.Set(metric::kTrainSeconds, watch.Seconds());
  report.Set(metric::kLoss, last_loss);
  return report;
}

}  // namespace dlsys
