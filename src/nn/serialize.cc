#include "src/nn/serialize.h"

#include <cstdint>
#include <cstring>
#include <cstdio>
#include <memory>
#include <vector>

namespace dlsys {

namespace {
constexpr char kMagic[4] = {'D', 'L', 'S', 'Y'};
constexpr uint32_t kVersion = 1;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;
}  // namespace

Status SaveParameters(const Sequential& net, const std::string& path) {
  FilePtr file(std::fopen(path.c_str(), "wb"));
  if (file == nullptr) {
    return Status::IOError("cannot open for writing: " + path);
  }
  std::vector<float> flat = net.GetParameterVector();
  const uint64_t count = flat.size();
  if (std::fwrite(kMagic, 1, 4, file.get()) != 4 ||
      std::fwrite(&kVersion, sizeof(kVersion), 1, file.get()) != 1 ||
      std::fwrite(&count, sizeof(count), 1, file.get()) != 1) {
    return Status::IOError("short write of header: " + path);
  }
  if (count > 0 &&
      std::fwrite(flat.data(), sizeof(float), flat.size(), file.get()) !=
          flat.size()) {
    return Status::IOError("short write of parameters: " + path);
  }
  return Status::OK();
}

Status LoadParameters(Sequential* net, const std::string& path) {
  FilePtr file(std::fopen(path.c_str(), "rb"));
  if (file == nullptr) {
    return Status::IOError("cannot open for reading: " + path);
  }
  char magic[4];
  uint32_t version = 0;
  uint64_t count = 0;
  if (std::fread(magic, 1, 4, file.get()) != 4 ||
      std::fread(&version, sizeof(version), 1, file.get()) != 1 ||
      std::fread(&count, sizeof(count), 1, file.get()) != 1) {
    return Status::IOError("short read of header: " + path);
  }
  if (std::memcmp(magic, kMagic, 4) != 0) {
    return Status::IOError("not a dlsys parameter file: " + path);
  }
  if (version != kVersion) {
    return Status::IOError("unsupported version " + std::to_string(version));
  }
  if (count != static_cast<uint64_t>(net->NumParams())) {
    return Status::InvalidArgument(
        "parameter count mismatch: file has " + std::to_string(count) +
        ", architecture expects " + std::to_string(net->NumParams()));
  }
  std::vector<float> flat(static_cast<size_t>(count));
  if (count > 0 &&
      std::fread(flat.data(), sizeof(float), flat.size(), file.get()) !=
          flat.size()) {
    return Status::IOError("short read of parameters: " + path);
  }
  net->SetParameterVector(flat);
  return Status::OK();
}

}  // namespace dlsys
