#include "src/nn/serialize.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

namespace dlsys {

namespace {
constexpr char kMagic[4] = {'D', 'L', 'S', 'Y'};
constexpr uint32_t kVersion = 2;  // v2 appends a CRC32 of the payload
// magic (4) + version (4) + count (8).
constexpr int64_t kHeaderBytes = 16;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

/// CRC-32 (IEEE 802.3, reflected 0xEDB88320) of \p len bytes at \p data.
uint32_t Crc32(const void* data, size_t len) {
  static const auto table = [] {
    std::vector<uint32_t> t(256);
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < len; ++i) {
    crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace

Status SaveParameters(const Sequential& net, const std::string& path) {
  // Write to a sibling temp file and rename into place: a crash mid-write
  // leaves the previous checkpoint intact, never a torn file.
  const std::string tmp = path + ".tmp";
  FilePtr file(std::fopen(tmp.c_str(), "wb"));
  if (file == nullptr) {
    return Status::IOError("cannot open for writing: " + tmp);
  }
  std::vector<float> flat = net.GetParameterVector();
  const uint64_t count = flat.size();
  const uint32_t crc = Crc32(flat.data(), flat.size() * sizeof(float));
  bool ok =
      std::fwrite(kMagic, 1, 4, file.get()) == 4 &&
      std::fwrite(&kVersion, sizeof(kVersion), 1, file.get()) == 1 &&
      std::fwrite(&count, sizeof(count), 1, file.get()) == 1;
  if (ok && count > 0) {
    ok = std::fwrite(flat.data(), sizeof(float), flat.size(), file.get()) ==
         flat.size();
  }
  ok = ok && std::fwrite(&crc, sizeof(crc), 1, file.get()) == 1;
  ok = ok && std::fflush(file.get()) == 0;
  if (ok) {
    std::FILE* raw = file.release();
    ok = std::fclose(raw) == 0;
  }
  if (!ok) {
    std::remove(tmp.c_str());
    return Status::IOError("short write of checkpoint: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError("cannot rename " + tmp + " -> " + path);
  }
  return Status::OK();
}

Status LoadParameters(Sequential* net, const std::string& path) {
  FilePtr file(std::fopen(path.c_str(), "rb"));
  if (file == nullptr) {
    return Status::IOError("cannot open for reading: " + path);
  }
  char magic[4];
  uint32_t version = 0;
  uint64_t count = 0;
  if (std::fread(magic, 1, 4, file.get()) != 4 ||
      std::fread(&version, sizeof(version), 1, file.get()) != 1 ||
      std::fread(&count, sizeof(count), 1, file.get()) != 1) {
    return Status::IOError("short read of header: " + path);
  }
  if (std::memcmp(magic, kMagic, 4) != 0) {
    return Status::IOError("not a dlsys parameter file: " + path);
  }
  if (version != kVersion) {
    return Status::IOError("unsupported version " + std::to_string(version));
  }
  // Bound-check the declared count against the actual file size BEFORE
  // allocating, so a corrupt header cannot trigger a multi-GB allocation.
  if (std::fseek(file.get(), 0, SEEK_END) != 0) {
    return Status::IOError("cannot seek: " + path);
  }
  const long file_bytes = std::ftell(file.get());
  if (file_bytes < 0) {
    return Status::IOError("cannot tell: " + path);
  }
  const int64_t min_bytes = kHeaderBytes + sizeof(uint32_t);
  const uint64_t payload_bytes =
      file_bytes >= min_bytes
          ? static_cast<uint64_t>(file_bytes - min_bytes)
          : 0;
  if (file_bytes < min_bytes || count != payload_bytes / sizeof(float) ||
      payload_bytes % sizeof(float) != 0) {
    return Status::IOError(
        "declared parameter count " + std::to_string(count) +
        " does not match file size " + std::to_string(file_bytes) + ": " +
        path);
  }
  if (std::fseek(file.get(), kHeaderBytes, SEEK_SET) != 0) {
    return Status::IOError("cannot seek: " + path);
  }
  if (count != static_cast<uint64_t>(net->NumParams())) {
    return Status::InvalidArgument(
        "parameter count mismatch: file has " + std::to_string(count) +
        ", architecture expects " + std::to_string(net->NumParams()));
  }
  std::vector<float> flat(static_cast<size_t>(count));
  if (count > 0 &&
      std::fread(flat.data(), sizeof(float), flat.size(), file.get()) !=
          flat.size()) {
    return Status::IOError("short read of parameters: " + path);
  }
  uint32_t stored_crc = 0;
  if (std::fread(&stored_crc, sizeof(stored_crc), 1, file.get()) != 1) {
    return Status::IOError("short read of checksum: " + path);
  }
  const uint32_t actual_crc =
      Crc32(flat.data(), flat.size() * sizeof(float));
  if (stored_crc != actual_crc) {
    return Status::IOError("checksum mismatch (corrupt payload): " + path);
  }
  net->SetParameterVector(flat);
  return Status::OK();
}

}  // namespace dlsys
