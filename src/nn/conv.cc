#include "src/nn/conv.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/obs/cost.h"
#include "src/obs/trace.h"
#include "src/runtime/runtime.h"

namespace dlsys {

Conv2D::Conv2D(int64_t in_channels, int64_t out_channels, int64_t kernel,
               int64_t stride, int64_t pad)
    : in_ch_(in_channels),
      out_ch_(out_channels),
      kernel_(kernel),
      stride_(stride),
      pad_(pad),
      w_({out_channels, in_channels, kernel, kernel}),
      b_({out_channels}),
      dw_({out_channels, in_channels, kernel, kernel}),
      db_({out_channels}) {
  DLSYS_CHECK(in_channels > 0 && out_channels > 0 && kernel > 0 && stride > 0,
              "Conv2D config must be positive");
  DLSYS_CHECK(pad >= 0, "Conv2D pad must be non-negative");
}

std::string Conv2D::name() const {
  return "conv2d(" + std::to_string(in_ch_) + "->" + std::to_string(out_ch_) +
         ", k=" + std::to_string(kernel_) + ", s=" + std::to_string(stride_) +
         ", p=" + std::to_string(pad_) + ")";
}

void Conv2D::Init(Rng* rng) {
  const float fan_in = static_cast<float>(in_ch_ * kernel_ * kernel_);
  const float bound = std::sqrt(6.0f / fan_in);
  w_.FillUniform(rng, -bound, bound);
  b_.Fill(0.0f);
}

Tensor Conv2D::Forward(const Tensor& x, CacheMode mode) {
  DLSYS_CHECK(x.rank() == 4 && x.dim(1) == in_ch_,
              "Conv2D input must be [N, in_ch, H, W]");
  const int64_t n = x.dim(0), h = x.dim(2), w = x.dim(3);
  const int64_t ho = OutExtent(h), wo = OutExtent(w);
  DLSYS_CHECK(ho > 0 && wo > 0, "Conv2D output extent must be positive");
  last_h_ = h;
  last_w_ = w;
  Tensor y({n, out_ch_, ho, wo});
  DLSYS_TRACE_SPAN_COST(
      "conv.forward", "kernel",
      2 * n * out_ch_ * ho * wo * in_ch_ * kernel_ * kernel_,
      4 * (x.size() + y.size() + w_.size()));
  DLSYS_COST_FLOPS(2 * n * out_ch_ * ho * wo * in_ch_ * kernel_ * kernel_);
  const float* px = x.data();
  const float* pw = w_.data();
  const float* pbias = b_.data();
  float* py = y.data();
  // Row-parallel dispatch: each (image, out-channel) plane is owned by
  // exactly one worker and computed with the fixed loop order below, so
  // the output is bitwise identical for every thread count.
  const int64_t in_ch = in_ch_, out_ch = out_ch_;
  const int64_t kernel = kernel_, stride = stride_, pad = pad_;
  ParallelFor(0, n * out_ch_, 1, [=](int64_t t0, int64_t t1) {
    for (int64_t t = t0; t < t1; ++t) {
      const int64_t img = t / out_ch;
      const int64_t oc = t % out_ch;
      const float* wbase = pw + oc * in_ch * kernel * kernel;
      float* yrow_base = py + (img * out_ch + oc) * ho * wo;
      for (int64_t oy = 0; oy < ho; ++oy) {
        const int64_t iy0 = oy * stride - pad;
        // Clip the kernel window to the input once per row/column instead
        // of branching per tap; the surviving terms are accumulated in the
        // same (ic, ky, kx) order as the naive loops, so the result is
        // bitwise unchanged.
        const int64_t ky_lo = iy0 < 0 ? -iy0 : 0;
        const int64_t ky_hi = std::min<int64_t>(kernel, h - iy0);
        float* yrow = yrow_base + oy * wo;
        // Output columns whose kernel window needs no x-clipping.
        const int64_t ox_lo = std::min<int64_t>(wo, (pad + stride - 1) / stride);
        const int64_t ox_hi =
            std::max(ox_lo, std::min<int64_t>(wo, (w - kernel + pad) / stride + 1));
        const auto clipped_at = [&](int64_t ox) {
          const int64_t ix0 = ox * stride - pad;
          const int64_t kx_lo = ix0 < 0 ? -ix0 : 0;
          const int64_t kx_hi = std::min<int64_t>(kernel, w - ix0);
          double acc = pbias[oc];
          for (int64_t ic = 0; ic < in_ch; ++ic) {
            const float* xplane = px + (img * in_ch + ic) * h * w;
            const float* wplane = wbase + ic * kernel * kernel;
            for (int64_t ky = ky_lo; ky < ky_hi; ++ky) {
              const float* xrow = xplane + (iy0 + ky) * w + ix0;
              const float* wrow = wplane + ky * kernel;
              for (int64_t kx = kx_lo; kx < kx_hi; ++kx) {
                acc += xrow[kx] * wrow[kx];
              }
            }
          }
          yrow[ox] = static_cast<float>(acc);
        };
        for (int64_t ox = 0; ox < ox_lo; ++ox) clipped_at(ox);
        // Interior fast path: four output columns share each weight tap,
        // giving four independent accumulation chains (the double adds
        // are latency-bound). Each chain still sums its terms in the
        // naive (ic, ky, kx) order, so results stay bitwise identical.
        int64_t ox = ox_lo;
        for (; ox + 4 <= ox_hi; ox += 4) {
          const int64_t ix0 = ox * stride - pad;
          double a0 = pbias[oc], a1 = pbias[oc], a2 = pbias[oc],
                 a3 = pbias[oc];
          for (int64_t ic = 0; ic < in_ch; ++ic) {
            const float* xplane = px + (img * in_ch + ic) * h * w;
            const float* wplane = wbase + ic * kernel * kernel;
            for (int64_t ky = ky_lo; ky < ky_hi; ++ky) {
              const float* xrow = xplane + (iy0 + ky) * w + ix0;
              const float* wrow = wplane + ky * kernel;
              for (int64_t kx = 0; kx < kernel; ++kx) {
                const float wv = wrow[kx];
                a0 += xrow[kx] * wv;
                a1 += xrow[stride + kx] * wv;
                a2 += xrow[2 * stride + kx] * wv;
                a3 += xrow[3 * stride + kx] * wv;
              }
            }
          }
          yrow[ox + 0] = static_cast<float>(a0);
          yrow[ox + 1] = static_cast<float>(a1);
          yrow[ox + 2] = static_cast<float>(a2);
          yrow[ox + 3] = static_cast<float>(a3);
        }
        for (; ox < wo; ++ox) clipped_at(ox);
      }
    }
  });
  if (mode == CacheMode::kCache) {
    x_cache_ = x;
  } else {
    x_cache_.Clear();
  }
  return y;
}

Tensor Conv2D::Backward(const Tensor& grad_output) {
  DLSYS_CHECK(!x_cache_.empty(), "Conv2D::Backward without cached forward");
  const Tensor& x = x_cache_;
  const int64_t n = x.dim(0), h = x.dim(2), w = x.dim(3);
  const int64_t ho = grad_output.dim(2), wo = grad_output.dim(3);
  Tensor dx(x.shape());
  DLSYS_TRACE_SPAN_COST(
      "conv.backward", "kernel",
      6 * n * out_ch_ * ho * wo * in_ch_ * kernel_ * kernel_,
      4 * (x.size() + 2 * grad_output.size() + 2 * w_.size()));
  DLSYS_COST_FLOPS(6 * n * out_ch_ * ho * wo * in_ch_ * kernel_ * kernel_);
  const float* px = x.data();
  const float* pg = grad_output.data();
  const float* pw = w_.data();
  float* pdx = dx.data();
  float* pdw = dw_.data();
  float* pdb = db_.data();
  const int64_t in_ch = in_ch_, out_ch = out_ch_;
  const int64_t kernel = kernel_, stride = stride_, pad = pad_;
  // Three disjoint-output passes replace the serial fused loop. Each pass
  // partitions its own accumulator — dx by (image, in-channel) plane, dw
  // and db by out-channel — so no two workers ever touch the same element,
  // and each element receives its contributions in exactly the serial
  // nest's order (dx: ascending (oc, oy, ox, ky, kx); dw and db: ascending
  // (img, oy, ox)). The `g == 0` skip is kept in every pass: ReLU upstream
  // makes roughly half the gradient zeros, and skipping preserves the
  // serial path's operation sequence term for term.
  ParallelFor(0, n * in_ch, 1, [=](int64_t t0, int64_t t1) {
    for (int64_t t = t0; t < t1; ++t) {
      const int64_t img = t / in_ch;
      const int64_t ic = t % in_ch;
      float* dxplane = pdx + (img * in_ch + ic) * h * w;
      for (int64_t oc = 0; oc < out_ch; ++oc) {
        const float* wplane = pw + (oc * in_ch + ic) * kernel * kernel;
        const float* gplane = pg + (img * out_ch + oc) * ho * wo;
        for (int64_t oy = 0; oy < ho; ++oy) {
          const int64_t iy0 = oy * stride - pad;
          for (int64_t ox = 0; ox < wo; ++ox) {
            const float g = gplane[oy * wo + ox];
            if (g == 0.0f) continue;
            const int64_t ix0 = ox * stride - pad;
            for (int64_t ky = 0; ky < kernel; ++ky) {
              const int64_t iy = iy0 + ky;
              if (iy < 0 || iy >= h) continue;
              for (int64_t kx = 0; kx < kernel; ++kx) {
                const int64_t ix = ix0 + kx;
                if (ix < 0 || ix >= w) continue;
                dxplane[iy * w + ix] += g * wplane[ky * kernel + kx];
              }
            }
          }
        }
      }
    }
  });
  ParallelFor(0, out_ch, 1, [=](int64_t c0, int64_t c1) {
    for (int64_t oc = c0; oc < c1; ++oc) {
      float* dwbase = pdw + oc * in_ch * kernel * kernel;
      for (int64_t img = 0; img < n; ++img) {
        const float* gplane = pg + (img * out_ch + oc) * ho * wo;
        for (int64_t oy = 0; oy < ho; ++oy) {
          const int64_t iy0 = oy * stride - pad;
          for (int64_t ox = 0; ox < wo; ++ox) {
            const float g = gplane[oy * wo + ox];
            if (g == 0.0f) continue;
            const int64_t ix0 = ox * stride - pad;
            for (int64_t ic = 0; ic < in_ch; ++ic) {
              const float* xplane = px + (img * in_ch + ic) * h * w;
              float* dwplane = dwbase + ic * kernel * kernel;
              for (int64_t ky = 0; ky < kernel; ++ky) {
                const int64_t iy = iy0 + ky;
                if (iy < 0 || iy >= h) continue;
                for (int64_t kx = 0; kx < kernel; ++kx) {
                  const int64_t ix = ix0 + kx;
                  if (ix < 0 || ix >= w) continue;
                  dwplane[ky * kernel + kx] += g * xplane[iy * w + ix];
                }
              }
            }
          }
        }
      }
    }
  });
  ParallelFor(0, out_ch, 1, [=](int64_t c0, int64_t c1) {
    for (int64_t oc = c0; oc < c1; ++oc) {
      for (int64_t img = 0; img < n; ++img) {
        const float* gplane = pg + (img * out_ch + oc) * ho * wo;
        for (int64_t i = 0; i < ho * wo; ++i) {
          const float g = gplane[i];
          if (g == 0.0f) continue;
          pdb[oc] += g;
        }
      }
    }
  });
  return dx;
}

int64_t Conv2D::FlopsPerExample() const {
  // 2 * out_positions * per-position multiply-adds; uses the extents of
  // the most recent forward (0 before any forward).
  if (last_h_ == 0) return 0;
  const int64_t ho = OutExtent(last_h_), wo = OutExtent(last_w_);
  return 2 * out_ch_ * ho * wo * in_ch_ * kernel_ * kernel_;
}

std::unique_ptr<Layer> Conv2D::Clone() const {
  auto copy = std::make_unique<Conv2D>(in_ch_, out_ch_, kernel_, stride_, pad_);
  copy->w_ = w_;
  copy->b_ = b_;
  return copy;
}

// ------------------------------------------------------------ MaxPool2D

MaxPool2D::MaxPool2D(int64_t window) : window_(window) {
  DLSYS_CHECK(window > 0, "MaxPool2D window must be positive");
}

std::string MaxPool2D::name() const {
  return "maxpool2d(" + std::to_string(window_) + ")";
}

Tensor MaxPool2D::Forward(const Tensor& x, CacheMode mode) {
  DLSYS_CHECK(x.rank() == 4, "MaxPool2D input must be [N, C, H, W]");
  const int64_t n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const int64_t ho = h / window_, wo = w / window_;
  DLSYS_CHECK(ho > 0 && wo > 0, "MaxPool2D window larger than input");
  Tensor y({n, c, ho, wo});
  std::vector<int64_t> argmax(static_cast<size_t>(n * c * ho * wo));
  const float* px = x.data();
  float* py = y.data();
  int64_t oi = 0;
  for (int64_t img = 0; img < n; ++img) {
    for (int64_t ch = 0; ch < c; ++ch) {
      for (int64_t oy = 0; oy < ho; ++oy) {
        for (int64_t ox = 0; ox < wo; ++ox, ++oi) {
          float best = -std::numeric_limits<float>::infinity();
          int64_t best_idx = -1;
          for (int64_t ky = 0; ky < window_; ++ky) {
            for (int64_t kx = 0; kx < window_; ++kx) {
              const int64_t iy = oy * window_ + ky;
              const int64_t ix = ox * window_ + kx;
              const int64_t xi = ((img * c + ch) * h + iy) * w + ix;
              if (px[xi] > best) {
                best = px[xi];
                best_idx = xi;
              }
            }
          }
          py[oi] = best;
          argmax[static_cast<size_t>(oi)] = best_idx;
        }
      }
    }
  }
  if (mode == CacheMode::kCache) {
    in_shape_ = x.shape();
    argmax_ = std::move(argmax);
  } else {
    DropCache();
  }
  return y;
}

Tensor MaxPool2D::Backward(const Tensor& grad_output) {
  DLSYS_CHECK(!argmax_.empty(), "MaxPool2D::Backward without cached forward");
  Tensor dx(in_shape_);
  const float* pg = grad_output.data();
  const int64_t* pam = argmax_.data();
  float* pdx = dx.data();
  // Each argmax index stays inside its own (image, channel) plane, so
  // scattering plane by plane keeps workers on disjoint dx ranges; within
  // a plane the flat ascending-i order matches the serial loop.
  const int64_t plane = grad_output.dim(2) * grad_output.dim(3);
  ParallelFor(0, grad_output.dim(0) * grad_output.dim(1), 1,
              [=](int64_t t0, int64_t t1) {
                for (int64_t i = t0 * plane; i < t1 * plane; ++i) {
                  pdx[pam[i]] += pg[i];
                }
              });
  return dx;
}

}  // namespace dlsys
