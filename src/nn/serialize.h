#ifndef DLSYS_NN_SERIALIZE_H_
#define DLSYS_NN_SERIALIZE_H_

#include <string>

#include "src/core/status.h"
#include "src/nn/sequential.h"

/// \file serialize.h
/// \brief Model checkpointing to disk: save/load of a Sequential's
/// parameters (deployment and the train/deploy split of the tutorial's
/// pipeline view).
///
/// Format: a small header ("DLSY", version, param count) followed by
/// raw little-endian float32 parameters in layer order. Architecture is
/// NOT serialized — loading validates the parameter count against the
/// provided architecture and fails loudly on mismatch.

namespace dlsys {

/// \brief Writes \p net's parameters to \p path. Overwrites.
Status SaveParameters(const Sequential& net, const std::string& path);

/// \brief Loads parameters saved by SaveParameters into \p net.
/// Fails with IOError (unreadable/corrupt) or InvalidArgument
/// (parameter-count mismatch with the architecture).
Status LoadParameters(Sequential* net, const std::string& path);

}  // namespace dlsys

#endif  // DLSYS_NN_SERIALIZE_H_
