#ifndef DLSYS_NN_SERIALIZE_H_
#define DLSYS_NN_SERIALIZE_H_

#include <string>

#include "src/core/status.h"
#include "src/nn/sequential.h"

/// \file serialize.h
/// \brief Model checkpointing to disk: save/load of a Sequential's
/// parameters (deployment and the train/deploy split of the tutorial's
/// pipeline view).
///
/// Format (v2): a small header ("DLSY", version, param count) followed by
/// raw little-endian float32 parameters in layer order and a CRC32 of the
/// payload. Architecture is NOT serialized — loading validates the
/// parameter count against the provided architecture and fails loudly on
/// mismatch. Writes go to a temp file renamed into place, so a crash
/// mid-write never leaves a torn checkpoint behind.

namespace dlsys {

/// \brief Writes \p net's parameters to \p path. Overwrites atomically
/// (temp file + rename) and appends a CRC32 of the payload.
Status SaveParameters(const Sequential& net, const std::string& path);

/// \brief Loads parameters saved by SaveParameters into \p net.
/// Fails with IOError (unreadable, truncated, checksum mismatch, or a
/// declared count inconsistent with the file size — checked before any
/// allocation) or InvalidArgument (parameter-count mismatch with the
/// architecture). On any failure \p net is left unmodified.
Status LoadParameters(Sequential* net, const std::string& path);

}  // namespace dlsys

#endif  // DLSYS_NN_SERIALIZE_H_
