#ifndef DLSYS_NN_LAYER_H_
#define DLSYS_NN_LAYER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/rng.h"
#include "src/tensor/tensor.h"

/// \file layer.h
/// \brief The layer abstraction: the "operators" of the tutorial's
/// query-processing analogy.
///
/// The paper describes a neural network as a pipeline of semantic filters,
/// each with logic and weights, trained by alternating forward and
/// backward passes. Layer is that operator interface. Each layer caches
/// what its backward pass needs (the activation state whose footprint
/// Section 2.3's checkpointing techniques manage); CacheMode and
/// DropCache() expose that state to the memory scheduler.

namespace dlsys {

/// \brief Whether a forward pass retains activations for backward.
enum class CacheMode {
  kCache,    ///< retain inputs/activations needed by Backward()
  kNoCache,  ///< inference or recomputation probing: retain nothing
};

/// \brief One differentiable pipeline stage.
///
/// Contract: Backward(grad) may only be called after a Forward(x, kCache)
/// whose cache is still present; it accumulates parameter gradients (call
/// ZeroGrads() between steps) and returns the gradient w.r.t. the input.
class Layer {
 public:
  virtual ~Layer() = default;

  /// \brief Human-readable layer type/config, e.g. "dense(64->32)".
  virtual std::string name() const = 0;

  /// \brief Initializes parameters (no-op for parameter-free layers).
  virtual void Init(Rng* rng) { (void)rng; }

  /// \brief Computes the layer output for a batch \p x.
  virtual Tensor Forward(const Tensor& x, CacheMode mode) = 0;

  /// \brief Propagates \p grad_output back; returns grad w.r.t. input.
  virtual Tensor Backward(const Tensor& grad_output) = 0;

  /// \brief Mutable views of the layer's parameter tensors.
  virtual std::vector<Tensor*> Params() { return {}; }
  /// \brief Mutable views of the matching gradient tensors.
  virtual std::vector<Tensor*> Grads() { return {}; }

  /// \brief Zeroes accumulated parameter gradients.
  void ZeroGrads() {
    for (Tensor* g : Grads()) g->Fill(0.0f);
  }

  /// \brief Total number of scalar parameters.
  int64_t NumParams() {
    int64_t n = 0;
    for (Tensor* p : Params()) n += p->size();
    return n;
  }

  /// \brief Forward FLOPs for a single example (multiply-adds count as 2).
  virtual int64_t FlopsPerExample() const { return 0; }

  /// \brief Bytes currently held in the backward cache.
  virtual int64_t CachedBytes() const { return 0; }

  /// \brief Releases the backward cache (checkpointing drops it and
  /// recomputes later via a fresh Forward(x, kCache)).
  virtual void DropCache() {}

  /// \brief Deep copy with identical parameters and config.
  virtual std::unique_ptr<Layer> Clone() const = 0;
};

}  // namespace dlsys

#endif  // DLSYS_NN_LAYER_H_
