#ifndef DLSYS_NN_TRAIN_H_
#define DLSYS_NN_TRAIN_H_

#include <functional>
#include <vector>

#include "src/core/metrics.h"
#include "src/data/dataset.h"
#include "src/nn/sequential.h"
#include "src/optim/optimizer.h"
#include "src/optim/schedule.h"

/// \file train.h
/// \brief The iterative training procedure: alternating forward and
/// backward passes until the metric converges (tutorial Part 1), with the
/// measurement hooks the tradeoff framework needs.

namespace dlsys {

/// \brief Training-loop configuration.
struct TrainConfig {
  int64_t epochs = 10;
  int64_t batch_size = 32;
  uint64_t shuffle_seed = 7;
  /// Optional schedule; when set, optimizer->set_lr(schedule->Lr(step)) is
  /// applied before every step.
  const LrSchedule* schedule = nullptr;
  /// Invoked after every optimizer step with (global_step, epoch, loss);
  /// snapshot ensembles and debuggers hook in here.
  std::function<void(int64_t step, int64_t epoch, double loss)> on_step;
};

/// \brief Result of an evaluation pass.
struct EvalResult {
  double accuracy = 0.0;
  double loss = 0.0;
};

/// \brief Trains \p net on \p data with cross-entropy; returns a
/// MetricsReport with train time, peak memory, final loss, and FLOPs.
MetricsReport Train(Sequential* net, Optimizer* opt, const Dataset& data,
                    const TrainConfig& config);

/// \brief Computes accuracy and mean cross-entropy on \p data without
/// caching activations.
EvalResult Evaluate(Sequential* net, const Dataset& data);

/// \brief Builds an MLP: in -> hidden[0] -> ... -> out with ReLU between
/// affine layers (logits output, no terminal activation).
Sequential MakeMlp(int64_t in, const std::vector<int64_t>& hidden,
                   int64_t out);

/// \brief Builds a small CNN for [N, 1, img, img] inputs:
/// conv(1->c1) - relu - pool2 - conv(c1->c2) - relu - pool2 - flatten -
/// dense(out). Kernel 3, padding 1.
Sequential MakeCnn(int64_t img, int64_t c1, int64_t c2, int64_t out);

}  // namespace dlsys

#endif  // DLSYS_NN_TRAIN_H_
