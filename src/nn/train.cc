#include "src/nn/train.h"

#include "src/nn/conv.h"
#include "src/nn/layers.h"
#include "src/nn/loss.h"
#include "src/obs/cost.h"
#include "src/obs/trace.h"
#include "src/tensor/ops.h"

namespace dlsys {

MetricsReport Train(Sequential* net, Optimizer* opt, const Dataset& data,
                    const TrainConfig& config) {
  DLSYS_CHECK(data.size() > 0, "training on empty dataset");
  MetricsReport report;
  MemoryTracker::Global().ResetPeak();
  Stopwatch watch;
  Rng shuffle_rng(config.shuffle_seed);
  Dataset shuffled = data;
  int64_t step = 0;
  double last_loss = 0.0;
  int64_t examples_seen = 0;
  const auto params = net->Params();
  const auto grads = net->Grads();
  for (int64_t epoch = 0; epoch < config.epochs; ++epoch) {
    {
      DLSYS_PHASE_SCOPE(obs::Phase::kData);
      DLSYS_TRACE_SPAN("train.shuffle", "train");
      ShuffleDataset(&shuffled, &shuffle_rng);
    }
    for (BatchIterator it(shuffled, config.batch_size); !it.Done();
         it.Next()) {
      DLSYS_TRACE_SPAN("train.step", "train");
      Dataset batch = [&] {
        DLSYS_PHASE_SCOPE(obs::Phase::kData);
        DLSYS_TRACE_SPAN("train.batch_assemble", "train");
        return it.Get();
      }();
      if (config.schedule != nullptr) {
        opt->set_lr(config.schedule->Lr(step));
      }
      net->ZeroGrads();
      Tensor logits = [&] {
        DLSYS_PHASE_SCOPE(obs::Phase::kForward);
        DLSYS_TRACE_SPAN("train.forward", "train");
        return net->Forward(batch.x, CacheMode::kCache);
      }();
      LossGrad lg = [&] {
        DLSYS_PHASE_SCOPE(obs::Phase::kForward);
        DLSYS_TRACE_SPAN("train.loss", "train");
        return SoftmaxCrossEntropy(logits, batch.y);
      }();
      {
        DLSYS_PHASE_SCOPE(obs::Phase::kBackward);
        DLSYS_TRACE_SPAN("train.backward", "train");
        net->Backward(lg.grad);
        opt->Step(params, grads);
      }
      last_loss = lg.loss;
      examples_seen += batch.size();
      if (config.on_step) config.on_step(step, epoch, lg.loss);
      ++step;
    }
  }
  report.Set(metric::kTrainSeconds, watch.Seconds());
  report.Set(metric::kLoss, last_loss);
  report.Set(metric::kPeakBytes,
             static_cast<double>(MemoryTracker::Global().peak_bytes()));
  report.Set(metric::kModelBytes, static_cast<double>(net->ModelBytes()));
  // Forward + backward is ~3x forward FLOPs, the standard estimate.
  report.Set(metric::kFlops, 3.0 * static_cast<double>(net->FlopsPerExample()) *
                                 static_cast<double>(examples_seen));
  return report;
}

EvalResult Evaluate(Sequential* net, const Dataset& data) {
  if (data.size() == 0) return {0.0, 0.0};
  EvalResult out;
  double loss_sum = 0.0;
  int64_t hits = 0;
  for (BatchIterator it(data, 256); !it.Done(); it.Next()) {
    Dataset batch = it.Get();
    Tensor logits = net->Forward(batch.x, CacheMode::kNoCache);
    LossGrad lg = SoftmaxCrossEntropy(logits, batch.y);
    loss_sum += lg.loss * static_cast<double>(batch.size());
    std::vector<int64_t> pred = ArgMaxRows(logits);
    for (size_t i = 0; i < batch.y.size(); ++i) {
      if (pred[i] == batch.y[i]) ++hits;
    }
  }
  out.loss = loss_sum / static_cast<double>(data.size());
  out.accuracy = static_cast<double>(hits) / static_cast<double>(data.size());
  return out;
}

Sequential MakeMlp(int64_t in, const std::vector<int64_t>& hidden,
                   int64_t out) {
  Sequential net;
  int64_t prev = in;
  for (int64_t h : hidden) {
    net.Emplace<Dense>(prev, h);
    net.Emplace<ReLU>();
    prev = h;
  }
  net.Emplace<Dense>(prev, out);
  return net;
}

Sequential MakeCnn(int64_t img, int64_t c1, int64_t c2, int64_t out) {
  Sequential net;
  net.Emplace<Conv2D>(1, c1, 3, 1, 1);
  net.Emplace<ReLU>();
  net.Emplace<MaxPool2D>(2);
  net.Emplace<Conv2D>(c1, c2, 3, 1, 1);
  net.Emplace<ReLU>();
  net.Emplace<MaxPool2D>(2);
  net.Emplace<Flatten>();
  const int64_t spatial = img / 4;
  net.Emplace<Dense>(c2 * spatial * spatial, out);
  return net;
}

}  // namespace dlsys
