#include "src/nn/loss.h"

#include <cmath>

#include "src/core/status.h"
#include "src/tensor/ops.h"

namespace dlsys {

LossGrad SoftmaxCrossEntropy(const Tensor& logits,
                             const std::vector<int64_t>& labels) {
  DLSYS_CHECK(logits.rank() == 2, "SoftmaxCrossEntropy requires rank 2");
  const int64_t n = logits.dim(0), c = logits.dim(1);
  DLSYS_CHECK(n == static_cast<int64_t>(labels.size()),
              "label count mismatch");
  Tensor probs = RowSoftmax(logits);
  double loss = 0.0;
  Tensor grad = probs;
  const float inv_n = 1.0f / static_cast<float>(n);
  for (int64_t i = 0; i < n; ++i) {
    const int64_t y = labels[static_cast<size_t>(i)];
    DLSYS_CHECK(y >= 0 && y < c, "label out of range");
    const float p = probs[i * c + y];
    loss -= std::log(std::max(p, 1e-12f));
    grad[i * c + y] -= 1.0f;
  }
  Scale(inv_n, &grad);
  return {loss / static_cast<double>(n), std::move(grad)};
}

LossGrad SoftCrossEntropy(const Tensor& logits, const Tensor& targets) {
  DLSYS_CHECK(logits.shape() == targets.shape(),
              "SoftCrossEntropy shape mismatch");
  const int64_t n = logits.dim(0), c = logits.dim(1);
  Tensor probs = RowSoftmax(logits);
  double loss = 0.0;
  Tensor grad = probs;
  const float inv_n = 1.0f / static_cast<float>(n);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < c; ++j) {
      const float t = targets[i * c + j];
      if (t > 0.0f) {
        loss -= t * std::log(std::max(probs[i * c + j], 1e-12f));
      }
      grad[i * c + j] -= t;
    }
  }
  Scale(inv_n, &grad);
  return {loss / static_cast<double>(n), std::move(grad)};
}

LossGrad MeanSquaredError(const Tensor& pred, const Tensor& target) {
  DLSYS_CHECK(pred.shape() == target.shape(), "MSE shape mismatch");
  const int64_t n = pred.dim(0);
  DLSYS_CHECK(n > 0, "MSE on empty batch");
  Tensor grad = Sub(pred, target);
  double loss = 0.0;
  for (int64_t i = 0; i < grad.size(); ++i) {
    loss += 0.5 * static_cast<double>(grad[i]) * grad[i];
  }
  Scale(1.0f / static_cast<float>(n), &grad);
  return {loss / static_cast<double>(n), std::move(grad)};
}

LossGrad BinaryCrossEntropy(const Tensor& pred,
                            const std::vector<int64_t>& labels) {
  DLSYS_CHECK(pred.rank() == 2 && pred.dim(1) == 1,
              "BinaryCrossEntropy expects an Nx1 probability column");
  const int64_t n = pred.dim(0);
  DLSYS_CHECK(n == static_cast<int64_t>(labels.size()),
              "label count mismatch");
  double loss = 0.0;
  Tensor grad({n, 1});
  const float inv_n = 1.0f / static_cast<float>(n);
  for (int64_t i = 0; i < n; ++i) {
    const float p = std::min(std::max(pred[i], 1e-7f), 1.0f - 1e-7f);
    const float y = labels[static_cast<size_t>(i)] ? 1.0f : 0.0f;
    loss -= y * std::log(p) + (1.0f - y) * std::log(1.0f - p);
    grad[i] = inv_n * (p - y) / (p * (1.0f - p));
  }
  return {loss / static_cast<double>(n), std::move(grad)};
}

}  // namespace dlsys
