#ifndef DLSYS_NN_CONV_H_
#define DLSYS_NN_CONV_H_

#include <memory>
#include <string>
#include <vector>

#include "src/nn/layer.h"

/// \file conv.h
/// \brief Convolutional layers over NCHW inputs.
///
/// The tutorial draws its running examples from convolutional networks;
/// these direct-loop kernels keep the library self-contained (no BLAS).

namespace dlsys {

/// \brief 2-D convolution with square kernels, stride, and zero padding.
///
/// Input: rank-4 [N, in_channels, H, W]. Output: [N, out_channels, Ho, Wo]
/// with Ho = (H + 2*pad - k)/stride + 1.
class Conv2D : public Layer {
 public:
  Conv2D(int64_t in_channels, int64_t out_channels, int64_t kernel,
         int64_t stride = 1, int64_t pad = 0);

  std::string name() const override;
  void Init(Rng* rng) override;
  Tensor Forward(const Tensor& x, CacheMode mode) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::vector<Tensor*> Params() override { return {&w_, &b_}; }
  std::vector<Tensor*> Grads() override { return {&dw_, &db_}; }
  int64_t FlopsPerExample() const override;
  int64_t CachedBytes() const override { return x_cache_.bytes(); }
  void DropCache() override { x_cache_.Clear(); }
  std::unique_ptr<Layer> Clone() const override;

  /// \brief Output spatial extent for an input extent \p in.
  int64_t OutExtent(int64_t in) const {
    return (in + 2 * pad_ - kernel_) / stride_ + 1;
  }

  /// Configuration and parameter views for graph compilers (src/infer).
  int64_t in_channels() const { return in_ch_; }
  int64_t out_channels() const { return out_ch_; }
  int64_t kernel() const { return kernel_; }
  int64_t stride() const { return stride_; }
  int64_t pad() const { return pad_; }
  const Tensor& weight() const { return w_; }
  const Tensor& bias() const { return b_; }

 private:
  int64_t in_ch_, out_ch_, kernel_, stride_, pad_;
  Tensor w_;  ///< (out_ch, in_ch, k, k)
  Tensor b_;  ///< (out_ch)
  Tensor dw_, db_;
  Tensor x_cache_;
  // Spatial extents seen by the last cached forward (for FLOP reporting).
  mutable int64_t last_h_ = 0, last_w_ = 0;
};

/// \brief 2x2-style max pooling with a square window and equal stride.
class MaxPool2D : public Layer {
 public:
  explicit MaxPool2D(int64_t window);

  std::string name() const override;
  Tensor Forward(const Tensor& x, CacheMode mode) override;
  Tensor Backward(const Tensor& grad_output) override;
  int64_t CachedBytes() const override {
    return static_cast<int64_t>(argmax_.size() * sizeof(int64_t));
  }
  void DropCache() override {
    argmax_.clear();
    argmax_.shrink_to_fit();
  }
  std::unique_ptr<Layer> Clone() const override {
    return std::make_unique<MaxPool2D>(window_);
  }

  /// \brief Pooling window extent (equal to the stride).
  int64_t window() const { return window_; }

 private:
  int64_t window_;
  Shape in_shape_;
  std::vector<int64_t> argmax_;  ///< flat input index of each output max
};

}  // namespace dlsys

#endif  // DLSYS_NN_CONV_H_
