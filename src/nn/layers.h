#ifndef DLSYS_NN_LAYERS_H_
#define DLSYS_NN_LAYERS_H_

#include <memory>
#include <string>
#include <vector>

#include "src/nn/layer.h"

/// \file layers.h
/// \brief Fully-connected and elementwise layers.

namespace dlsys {

/// \brief Affine layer: y = x W + b, with He-uniform initialization.
class Dense : public Layer {
 public:
  /// Constructs an uninitialized layer mapping \p in features to \p out.
  Dense(int64_t in, int64_t out);

  std::string name() const override;
  void Init(Rng* rng) override;
  Tensor Forward(const Tensor& x, CacheMode mode) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::vector<Tensor*> Params() override { return {&w_, &b_}; }
  std::vector<Tensor*> Grads() override { return {&dw_, &db_}; }
  int64_t FlopsPerExample() const override { return 2 * in_ * out_; }
  int64_t CachedBytes() const override { return x_cache_.bytes(); }
  void DropCache() override { x_cache_.Clear(); }
  std::unique_ptr<Layer> Clone() const override;

  /// \brief Input feature count.
  int64_t in_features() const { return in_; }
  /// \brief Output feature count.
  int64_t out_features() const { return out_; }
  /// \brief Weight matrix (in x out).
  Tensor& weight() { return w_; }
  const Tensor& weight() const { return w_; }
  /// \brief Bias vector (out).
  Tensor& bias() { return b_; }
  const Tensor& bias() const { return b_; }

 private:
  int64_t in_;
  int64_t out_;
  Tensor w_;   ///< (in, out)
  Tensor b_;   ///< (out)
  Tensor dw_;
  Tensor db_;
  Tensor x_cache_;
};

/// \brief Rectified linear unit, elementwise max(0, x).
class ReLU : public Layer {
 public:
  std::string name() const override { return "relu"; }
  Tensor Forward(const Tensor& x, CacheMode mode) override;
  Tensor Backward(const Tensor& grad_output) override;
  int64_t CachedBytes() const override { return mask_.bytes(); }
  void DropCache() override { mask_.Clear(); }
  std::unique_ptr<Layer> Clone() const override {
    return std::make_unique<ReLU>();
  }

 private:
  Tensor mask_;
};

/// \brief Logistic sigmoid, elementwise 1 / (1 + e^-x).
class Sigmoid : public Layer {
 public:
  std::string name() const override { return "sigmoid"; }
  Tensor Forward(const Tensor& x, CacheMode mode) override;
  Tensor Backward(const Tensor& grad_output) override;
  int64_t CachedBytes() const override { return y_cache_.bytes(); }
  void DropCache() override { y_cache_.Clear(); }
  std::unique_ptr<Layer> Clone() const override {
    return std::make_unique<Sigmoid>();
  }

 private:
  Tensor y_cache_;
};

/// \brief Hyperbolic tangent activation.
class Tanh : public Layer {
 public:
  std::string name() const override { return "tanh"; }
  Tensor Forward(const Tensor& x, CacheMode mode) override;
  Tensor Backward(const Tensor& grad_output) override;
  int64_t CachedBytes() const override { return y_cache_.bytes(); }
  void DropCache() override { y_cache_.Clear(); }
  std::unique_ptr<Layer> Clone() const override {
    return std::make_unique<Tanh>();
  }

 private:
  Tensor y_cache_;
};

/// \brief Inverted dropout: zeroes activations with probability p during
/// training and rescales survivors by 1/(1-p). Identity at inference.
class Dropout : public Layer {
 public:
  /// Constructs with drop probability \p p in [0, 1) and a seed.
  explicit Dropout(float p, uint64_t seed = 1234);

  std::string name() const override;
  Tensor Forward(const Tensor& x, CacheMode mode) override;
  Tensor Backward(const Tensor& grad_output) override;
  int64_t CachedBytes() const override { return mask_.bytes(); }
  void DropCache() override { mask_.Clear(); }
  std::unique_ptr<Layer> Clone() const override;

 private:
  float p_;
  Rng rng_;
  uint64_t seed_;
  Tensor mask_;
};

/// \brief Reshapes [N, d1, d2, ...] to [N, d1*d2*...].
class Flatten : public Layer {
 public:
  std::string name() const override { return "flatten"; }
  Tensor Forward(const Tensor& x, CacheMode mode) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::unique_ptr<Layer> Clone() const override {
    return std::make_unique<Flatten>();
  }

 private:
  Shape in_shape_;
};

/// \brief Batch normalization over features of a rank-2 input, with
/// learnable scale/shift and running statistics for inference.
class BatchNorm1d : public Layer {
 public:
  /// Constructs over \p features channels with smoothing \p momentum.
  explicit BatchNorm1d(int64_t features, float momentum = 0.9f,
                       float epsilon = 1e-5f);

  std::string name() const override;
  void Init(Rng* rng) override;
  Tensor Forward(const Tensor& x, CacheMode mode) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::vector<Tensor*> Params() override { return {&gamma_, &beta_}; }
  std::vector<Tensor*> Grads() override { return {&dgamma_, &dbeta_}; }
  int64_t CachedBytes() const override {
    return xhat_.bytes() + inv_std_.bytes();
  }
  void DropCache() override {
    xhat_.Clear();
    inv_std_.Clear();
  }
  std::unique_ptr<Layer> Clone() const override;

  /// Inference-time views for graph compilers (src/infer).
  int64_t features() const { return features_; }
  float epsilon() const { return epsilon_; }
  const Tensor& gamma() const { return gamma_; }
  const Tensor& beta() const { return beta_; }
  const Tensor& running_mean() const { return running_mean_; }
  const Tensor& running_var() const { return running_var_; }

 private:
  int64_t features_;
  float momentum_;
  float epsilon_;
  Tensor gamma_, beta_, dgamma_, dbeta_;
  Tensor running_mean_, running_var_;
  Tensor xhat_;     ///< normalized input cache
  Tensor inv_std_;  ///< per-feature 1/sqrt(var+eps) cache
};

}  // namespace dlsys

#endif  // DLSYS_NN_LAYERS_H_
