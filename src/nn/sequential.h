#ifndef DLSYS_NN_SEQUENTIAL_H_
#define DLSYS_NN_SEQUENTIAL_H_

#include <memory>
#include <string>
#include <vector>

#include "src/nn/layer.h"

/// \file sequential.h
/// \brief The layer pipeline: the tutorial's query-plan analogue.
///
/// Sequential chains layers the way a query plan chains operators; training
/// "sets up the pipeline" (tunes weights) and deployment streams batches
/// through it. It also exposes the whole-pipeline views other modules
/// need: a flat parameter vector (distributed averaging, quantization),
/// per-layer activation byte counts (checkpointing), and FLOP totals
/// (energy accounting).

namespace dlsys {

/// \brief An ordered pipeline of layers with joint forward/backward.
class Sequential {
 public:
  Sequential() = default;
  Sequential(Sequential&&) = default;
  Sequential& operator=(Sequential&&) = default;

  /// \brief Appends a layer; returns *this for chaining.
  Sequential& Add(std::unique_ptr<Layer> layer);

  /// \brief Constructs and appends a layer in place.
  template <typename L, typename... Args>
  Sequential& Emplace(Args&&... args) {
    return Add(std::make_unique<L>(std::forward<Args>(args)...));
  }

  /// \brief Initializes every layer's parameters from \p rng.
  void Init(Rng* rng);

  /// \brief Runs the pipeline end to end.
  Tensor Forward(const Tensor& x, CacheMode mode = CacheMode::kCache);

  /// \brief Back-propagates \p grad_output through all layers (reverse
  /// order); accumulates parameter gradients, returns grad w.r.t. input.
  Tensor Backward(const Tensor& grad_output);

  /// \brief All parameter tensors, in layer order.
  std::vector<Tensor*> Params();
  /// \brief All gradient tensors, matching Params().
  std::vector<Tensor*> Grads();
  /// \brief Zeroes all parameter gradients.
  void ZeroGrads();

  /// \brief Number of layers.
  int64_t size() const { return static_cast<int64_t>(layers_.size()); }
  /// \brief Layer \p i (borrowed).
  Layer* layer(int64_t i) { return layers_[i].get(); }
  const Layer* layer(int64_t i) const { return layers_[i].get(); }

  /// \brief Total scalar parameter count.
  int64_t NumParams() const;
  /// \brief Bytes of parameter storage at float32.
  int64_t ModelBytes() const { return NumParams() * 4; }
  /// \brief Forward FLOPs per example, summed over layers.
  int64_t FlopsPerExample() const;
  /// \brief Bytes currently held in backward caches, summed over layers.
  int64_t CachedBytes() const;
  /// \brief Drops every layer's backward cache.
  void DropCaches();

  /// \brief Copies all parameters into one flat vector (layer order).
  std::vector<float> GetParameterVector() const;
  /// \brief Restores parameters from a flat vector (sizes must match).
  void SetParameterVector(const std::vector<float>& flat);

  /// \brief Deep copy with identical parameters.
  Sequential Clone() const;

  /// \brief One line per layer: name, params, flops.
  std::string Summary() const;

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace dlsys

#endif  // DLSYS_NN_SEQUENTIAL_H_
