#ifndef DLSYS_NN_LOSS_H_
#define DLSYS_NN_LOSS_H_

#include <cstdint>
#include <vector>

#include "src/tensor/tensor.h"

/// \file loss.h
/// \brief Loss functions: value plus gradient w.r.t. the network output.

namespace dlsys {

/// \brief Loss value and its gradient w.r.t. the model output.
struct LossGrad {
  double loss = 0.0;
  Tensor grad;
};

/// \brief Mean softmax cross-entropy from raw logits against int labels.
///
/// Gradient is (softmax - onehot) / N, the standard fused form.
LossGrad SoftmaxCrossEntropy(const Tensor& logits,
                             const std::vector<int64_t>& labels);

/// \brief Mean softmax cross-entropy against a full target distribution
/// (rows of \p targets sum to 1). Used for distillation and label
/// smoothing.
LossGrad SoftCrossEntropy(const Tensor& logits, const Tensor& targets);

/// \brief Mean squared error, 1/(2N) * sum (pred - target)^2.
LossGrad MeanSquaredError(const Tensor& pred, const Tensor& target);

/// \brief Mean binary cross-entropy from a single sigmoid output column
/// against 0/1 labels. \p pred holds probabilities in (0, 1).
LossGrad BinaryCrossEntropy(const Tensor& pred,
                            const std::vector<int64_t>& labels);

}  // namespace dlsys

#endif  // DLSYS_NN_LOSS_H_
