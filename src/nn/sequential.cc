#include "src/nn/sequential.h"

#include <cstdio>

namespace dlsys {

Sequential& Sequential::Add(std::unique_ptr<Layer> layer) {
  DLSYS_CHECK(layer != nullptr, "null layer");
  layers_.push_back(std::move(layer));
  return *this;
}

void Sequential::Init(Rng* rng) {
  for (auto& l : layers_) l->Init(rng);
}

Tensor Sequential::Forward(const Tensor& x, CacheMode mode) {
  Tensor h = x;
  for (auto& l : layers_) h = l->Forward(h, mode);
  return h;
}

Tensor Sequential::Backward(const Tensor& grad_output) {
  Tensor g = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->Backward(g);
  }
  return g;
}

std::vector<Tensor*> Sequential::Params() {
  std::vector<Tensor*> out;
  for (auto& l : layers_) {
    for (Tensor* p : l->Params()) out.push_back(p);
  }
  return out;
}

std::vector<Tensor*> Sequential::Grads() {
  std::vector<Tensor*> out;
  for (auto& l : layers_) {
    for (Tensor* g : l->Grads()) out.push_back(g);
  }
  return out;
}

void Sequential::ZeroGrads() {
  for (auto& l : layers_) l->ZeroGrads();
}

int64_t Sequential::NumParams() const {
  int64_t n = 0;
  for (const auto& l : layers_) {
    n += const_cast<Layer*>(l.get())->NumParams();
  }
  return n;
}

int64_t Sequential::FlopsPerExample() const {
  int64_t n = 0;
  for (const auto& l : layers_) n += l->FlopsPerExample();
  return n;
}

int64_t Sequential::CachedBytes() const {
  int64_t n = 0;
  for (const auto& l : layers_) n += l->CachedBytes();
  return n;
}

void Sequential::DropCaches() {
  for (auto& l : layers_) l->DropCache();
}

std::vector<float> Sequential::GetParameterVector() const {
  std::vector<float> flat;
  for (const auto& l : layers_) {
    for (Tensor* p : const_cast<Layer*>(l.get())->Params()) {
      flat.insert(flat.end(), p->data(), p->data() + p->size());
    }
  }
  return flat;
}

void Sequential::SetParameterVector(const std::vector<float>& flat) {
  size_t offset = 0;
  for (auto& l : layers_) {
    for (Tensor* p : l->Params()) {
      DLSYS_CHECK(offset + static_cast<size_t>(p->size()) <= flat.size(),
                  "parameter vector too short");
      std::copy(flat.begin() + offset, flat.begin() + offset + p->size(),
                p->data());
      offset += static_cast<size_t>(p->size());
    }
  }
  DLSYS_CHECK(offset == flat.size(), "parameter vector too long");
}

Sequential Sequential::Clone() const {
  Sequential copy;
  for (const auto& l : layers_) copy.Add(l->Clone());
  return copy;
}

std::string Sequential::Summary() const {
  std::string out;
  char line[160];
  for (const auto& l : layers_) {
    std::snprintf(line, sizeof(line), "%-32s params=%-10lld flops=%lld\n",
                  l->name().c_str(),
                  static_cast<long long>(const_cast<Layer*>(l.get())->NumParams()),
                  static_cast<long long>(l->FlopsPerExample()));
    out += line;
  }
  return out;
}

}  // namespace dlsys
