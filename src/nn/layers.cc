#include "src/nn/layers.h"

#include <cmath>

#include "src/tensor/ops.h"

namespace dlsys {

// ---------------------------------------------------------------- Dense

Dense::Dense(int64_t in, int64_t out)
    : in_(in),
      out_(out),
      w_({in, out}),
      b_({out}),
      dw_({in, out}),
      db_({out}) {
  DLSYS_CHECK(in > 0 && out > 0, "Dense dimensions must be positive");
}

std::string Dense::name() const {
  return "dense(" + std::to_string(in_) + "->" + std::to_string(out_) + ")";
}

void Dense::Init(Rng* rng) {
  // He-uniform: U[-sqrt(6/in), sqrt(6/in)], a good default for ReLU nets.
  const float bound = std::sqrt(6.0f / static_cast<float>(in_));
  w_.FillUniform(rng, -bound, bound);
  b_.Fill(0.0f);
}

Tensor Dense::Forward(const Tensor& x, CacheMode mode) {
  DLSYS_CHECK(x.rank() == 2 && x.dim(1) == in_, "Dense input shape mismatch");
  Tensor y = MatMul(x, w_);
  const int64_t n = y.dim(0);
  for (int64_t i = 0; i < n; ++i) {
    float* row = y.data() + i * out_;
    for (int64_t j = 0; j < out_; ++j) row[j] += b_[j];
  }
  if (mode == CacheMode::kCache) {
    x_cache_ = x;
  } else {
    x_cache_.Clear();
  }
  return y;
}

Tensor Dense::Backward(const Tensor& grad_output) {
  DLSYS_CHECK(!x_cache_.empty(), "Dense::Backward without cached forward");
  // dW += X^T G ; db += column sums of G ; dX = G W^T.
  Tensor dw = MatMulTransA(x_cache_, grad_output);
  Axpy(1.0f, dw, &dw_);
  const int64_t n = grad_output.dim(0);
  for (int64_t i = 0; i < n; ++i) {
    const float* row = grad_output.data() + i * out_;
    for (int64_t j = 0; j < out_; ++j) db_[j] += row[j];
  }
  return MatMulTransB(grad_output, w_);
}

std::unique_ptr<Layer> Dense::Clone() const {
  auto copy = std::make_unique<Dense>(in_, out_);
  copy->w_ = w_;
  copy->b_ = b_;
  return copy;
}

// ----------------------------------------------------------------- ReLU

Tensor ReLU::Forward(const Tensor& x, CacheMode mode) {
  Tensor y = x;
  Tensor mask(x.shape());
  for (int64_t i = 0; i < y.size(); ++i) {
    if (y[i] > 0.0f) {
      mask[i] = 1.0f;
    } else {
      y[i] = 0.0f;
    }
  }
  if (mode == CacheMode::kCache) {
    mask_ = std::move(mask);
  } else {
    mask_.Clear();
  }
  return y;
}

Tensor ReLU::Backward(const Tensor& grad_output) {
  DLSYS_CHECK(!mask_.empty(), "ReLU::Backward without cached forward");
  return Mul(grad_output, mask_);
}

// -------------------------------------------------------------- Sigmoid

Tensor Sigmoid::Forward(const Tensor& x, CacheMode mode) {
  Tensor y = x;
  for (int64_t i = 0; i < y.size(); ++i) {
    y[i] = 1.0f / (1.0f + std::exp(-y[i]));
  }
  if (mode == CacheMode::kCache) {
    y_cache_ = y;
  } else {
    y_cache_.Clear();
  }
  return y;
}

Tensor Sigmoid::Backward(const Tensor& grad_output) {
  DLSYS_CHECK(!y_cache_.empty(), "Sigmoid::Backward without cached forward");
  Tensor dx = grad_output;
  for (int64_t i = 0; i < dx.size(); ++i) {
    const float y = y_cache_[i];
    dx[i] *= y * (1.0f - y);
  }
  return dx;
}

// ----------------------------------------------------------------- Tanh

Tensor Tanh::Forward(const Tensor& x, CacheMode mode) {
  Tensor y = x;
  for (int64_t i = 0; i < y.size(); ++i) y[i] = std::tanh(y[i]);
  if (mode == CacheMode::kCache) {
    y_cache_ = y;
  } else {
    y_cache_.Clear();
  }
  return y;
}

Tensor Tanh::Backward(const Tensor& grad_output) {
  DLSYS_CHECK(!y_cache_.empty(), "Tanh::Backward without cached forward");
  Tensor dx = grad_output;
  for (int64_t i = 0; i < dx.size(); ++i) {
    const float y = y_cache_[i];
    dx[i] *= 1.0f - y * y;
  }
  return dx;
}

// -------------------------------------------------------------- Dropout

Dropout::Dropout(float p, uint64_t seed) : p_(p), rng_(seed), seed_(seed) {
  DLSYS_CHECK(p >= 0.0f && p < 1.0f, "Dropout p must be in [0, 1)");
}

std::string Dropout::name() const {
  return "dropout(" + std::to_string(p_) + ")";
}

Tensor Dropout::Forward(const Tensor& x, CacheMode mode) {
  if (mode != CacheMode::kCache || p_ == 0.0f) {
    // Inference (or cache-free probing): identity, nothing retained.
    mask_.Clear();
    return x;
  }
  const float keep = 1.0f - p_;
  Tensor mask(x.shape());
  for (int64_t i = 0; i < mask.size(); ++i) {
    mask[i] = rng_.Bernoulli(keep) ? 1.0f / keep : 0.0f;
  }
  Tensor y = Mul(x, mask);
  mask_ = std::move(mask);
  return y;
}

Tensor Dropout::Backward(const Tensor& grad_output) {
  DLSYS_CHECK(!mask_.empty(), "Dropout::Backward without cached forward");
  return Mul(grad_output, mask_);
}

std::unique_ptr<Layer> Dropout::Clone() const {
  return std::make_unique<Dropout>(p_, seed_);
}

// -------------------------------------------------------------- Flatten

Tensor Flatten::Forward(const Tensor& x, CacheMode mode) {
  DLSYS_CHECK(x.rank() >= 2, "Flatten requires rank >= 2");
  if (mode == CacheMode::kCache) in_shape_ = x.shape();
  int64_t rest = 1;
  for (int64_t d = 1; d < x.rank(); ++d) rest *= x.dim(d);
  return x.Reshaped({x.dim(0), rest});
}

Tensor Flatten::Backward(const Tensor& grad_output) {
  DLSYS_CHECK(!in_shape_.empty(), "Flatten::Backward without cached forward");
  return grad_output.Reshaped(in_shape_);
}

// ---------------------------------------------------------- BatchNorm1d

BatchNorm1d::BatchNorm1d(int64_t features, float momentum, float epsilon)
    : features_(features),
      momentum_(momentum),
      epsilon_(epsilon),
      gamma_({features}, 1.0f),
      beta_({features}),
      dgamma_({features}),
      dbeta_({features}),
      running_mean_({features}),
      running_var_({features}, 1.0f) {}

std::string BatchNorm1d::name() const {
  return "batchnorm1d(" + std::to_string(features_) + ")";
}

void BatchNorm1d::Init(Rng* rng) {
  (void)rng;
  gamma_.Fill(1.0f);
  beta_.Fill(0.0f);
  running_mean_.Fill(0.0f);
  running_var_.Fill(1.0f);
}

Tensor BatchNorm1d::Forward(const Tensor& x, CacheMode mode) {
  DLSYS_CHECK(x.rank() == 2 && x.dim(1) == features_,
              "BatchNorm1d input shape mismatch");
  const int64_t n = x.dim(0);
  Tensor y(x.shape());
  if (mode == CacheMode::kCache) {
    Tensor mean({features_});
    Tensor var({features_});
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = 0; j < features_; ++j) mean[j] += x[i * features_ + j];
    }
    Scale(1.0f / static_cast<float>(n), &mean);
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = 0; j < features_; ++j) {
        const float d = x[i * features_ + j] - mean[j];
        var[j] += d * d;
      }
    }
    Scale(1.0f / static_cast<float>(n), &var);
    Tensor inv_std({features_});
    for (int64_t j = 0; j < features_; ++j) {
      inv_std[j] = 1.0f / std::sqrt(var[j] + epsilon_);
      running_mean_[j] =
          momentum_ * running_mean_[j] + (1.0f - momentum_) * mean[j];
      running_var_[j] =
          momentum_ * running_var_[j] + (1.0f - momentum_) * var[j];
    }
    Tensor xhat(x.shape());
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = 0; j < features_; ++j) {
        const float xh = (x[i * features_ + j] - mean[j]) * inv_std[j];
        xhat[i * features_ + j] = xh;
        y[i * features_ + j] = gamma_[j] * xh + beta_[j];
      }
    }
    xhat_ = std::move(xhat);
    inv_std_ = std::move(inv_std);
  } else {
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = 0; j < features_; ++j) {
        const float inv = 1.0f / std::sqrt(running_var_[j] + epsilon_);
        y[i * features_ + j] =
            gamma_[j] * (x[i * features_ + j] - running_mean_[j]) * inv +
            beta_[j];
      }
    }
  }
  return y;
}

Tensor BatchNorm1d::Backward(const Tensor& grad_output) {
  DLSYS_CHECK(!xhat_.empty(), "BatchNorm1d::Backward without cached forward");
  const int64_t n = grad_output.dim(0);
  const float inv_n = 1.0f / static_cast<float>(n);
  Tensor dx(grad_output.shape());
  // Per-feature sums of dy and dy * xhat.
  Tensor sum_dy({features_});
  Tensor sum_dy_xhat({features_});
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < features_; ++j) {
      const float dy = grad_output[i * features_ + j];
      sum_dy[j] += dy;
      sum_dy_xhat[j] += dy * xhat_[i * features_ + j];
    }
  }
  for (int64_t j = 0; j < features_; ++j) {
    dgamma_[j] += sum_dy_xhat[j];
    dbeta_[j] += sum_dy[j];
  }
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < features_; ++j) {
      const float dy = grad_output[i * features_ + j];
      const float xh = xhat_[i * features_ + j];
      dx[i * features_ + j] =
          gamma_[j] * inv_std_[j] *
          (dy - inv_n * sum_dy[j] - inv_n * xh * sum_dy_xhat[j]);
    }
  }
  return dx;
}

std::unique_ptr<Layer> BatchNorm1d::Clone() const {
  auto copy = std::make_unique<BatchNorm1d>(features_, momentum_, epsilon_);
  copy->gamma_ = gamma_;
  copy->beta_ = beta_;
  copy->running_mean_ = running_mean_;
  copy->running_var_ = running_var_;
  return copy;
}

}  // namespace dlsys
