#ifndef DLSYS_MEMSCHED_CHECKPOINT_H_
#define DLSYS_MEMSCHED_CHECKPOINT_H_

#include <cstdint>
#include <vector>

#include "src/core/status.h"
#include "src/data/dataset.h"
#include "src/nn/loss.h"
#include "src/nn/sequential.h"
#include "src/optim/optimizer.h"

/// \file checkpoint.h
/// \brief Activation checkpointing (tutorial Section 2.3: Chen et al.'s
/// sublinear-memory training, generalized Checkmate-style planning).
///
/// Instead of caching every layer's activations for backward, the network
/// is cut into segments; only segment-boundary inputs are stored during
/// forward, and each segment's internal activations are *recomputed* (one
/// extra forward over that segment) when backward reaches it. Memory
/// falls from sum-of-all-activations to boundary-inputs + one segment's
/// activations, at the price of up to one extra forward pass.

namespace dlsys {

/// \brief Per-layer costs gathered by probing one cached forward pass.
struct LayerMemCost {
  int64_t cached_bytes = 0;  ///< backward-cache bytes of this layer
  int64_t input_bytes = 0;   ///< bytes of this layer's input activation
  int64_t flops = 0;         ///< forward FLOPs (recompute cost proxy)
};

/// \brief A segmentation of the layer pipeline.
///
/// segment_starts is strictly increasing and begins with 0; segment j
/// spans [segment_starts[j], segment_starts[j+1]).
struct CheckpointPlan {
  std::vector<int64_t> segment_starts;

  /// \brief Number of segments.
  int64_t NumSegments() const {
    return static_cast<int64_t>(segment_starts.size());
  }
  /// \brief Predicted peak of (boundary inputs + largest segment cache).
  int64_t PredictedPeakBytes(const std::vector<LayerMemCost>& costs) const;
  /// \brief FLOPs recomputed during backward (all but the last segment
  /// rerun their forward).
  int64_t RecomputeFlops(const std::vector<LayerMemCost>& costs) const;
};

/// \brief Probes \p net with batch \p x to measure per-layer costs.
/// Leaves no caches behind.
std::vector<LayerMemCost> ProbeLayerCosts(Sequential* net, const Tensor& x);

/// \brief Plain training: one segment per layer — caches everything,
/// recomputes nothing (the no-checkpoint baseline).
CheckpointPlan PlanNone(int64_t num_layers);

/// \brief Equidistant checkpoints: ceil(sqrt(L)) segments of near-equal
/// length (Chen et al.'s sqrt(n) scheme).
CheckpointPlan PlanSqrtN(int64_t num_layers);

/// \brief Budget-constrained plan: the fewest segments (least recompute)
/// whose predicted peak fits \p memory_budget_bytes, found by sweeping
/// the per-segment cache cap and greedily packing (optimal for the
/// fewest-segments objective at each cap).
///
/// Returns ResourceExhausted if even per-layer segmentation exceeds the
/// budget.
Result<CheckpointPlan> PlanForBudget(const std::vector<LayerMemCost>& costs,
                                     int64_t memory_budget_bytes);

/// \brief One training step with checkpointed backward.
///
/// Runs forward storing only segment-boundary inputs, then walks segments
/// in reverse, recomputing each segment's cached forward before
/// backpropagating through it. Gradients and the optimizer step are
/// identical (bit-for-bit) to plain training. Returns the loss.
Result<double> CheckpointedStep(Sequential* net, Optimizer* opt,
                                const Dataset& batch,
                                const CheckpointPlan& plan);

}  // namespace dlsys

#endif  // DLSYS_MEMSCHED_CHECKPOINT_H_
