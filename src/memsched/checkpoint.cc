#include "src/memsched/checkpoint.h"

#include <algorithm>
#include <cmath>
#include <set>

namespace dlsys {

int64_t CheckpointPlan::PredictedPeakBytes(
    const std::vector<LayerMemCost>& costs) const {
  const int64_t n = static_cast<int64_t>(costs.size());
  int64_t boundary_bytes = 0;
  for (int64_t s : segment_starts) {
    boundary_bytes += costs[static_cast<size_t>(s)].input_bytes;
  }
  int64_t max_segment = 0;
  for (size_t j = 0; j < segment_starts.size(); ++j) {
    const int64_t begin = segment_starts[j];
    const int64_t end = j + 1 < segment_starts.size()
                            ? segment_starts[j + 1]
                            : n;
    int64_t seg = 0;
    for (int64_t i = begin; i < end; ++i) {
      seg += costs[static_cast<size_t>(i)].cached_bytes;
    }
    max_segment = std::max(max_segment, seg);
  }
  return boundary_bytes + max_segment;
}

int64_t CheckpointPlan::RecomputeFlops(
    const std::vector<LayerMemCost>& costs) const {
  // Every segment except the last reruns its forward during backward.
  const int64_t n = static_cast<int64_t>(costs.size());
  int64_t flops = 0;
  for (size_t j = 0; j + 1 < segment_starts.size(); ++j) {
    const int64_t begin = segment_starts[j];
    const int64_t end = segment_starts[j + 1];
    for (int64_t i = begin; i < end; ++i) {
      flops += costs[static_cast<size_t>(i)].flops;
    }
  }
  (void)n;
  return flops;
}

std::vector<LayerMemCost> ProbeLayerCosts(Sequential* net, const Tensor& x) {
  std::vector<LayerMemCost> costs(static_cast<size_t>(net->size()));
  Tensor h = x;
  for (int64_t i = 0; i < net->size(); ++i) {
    LayerMemCost& c = costs[static_cast<size_t>(i)];
    c.input_bytes = h.bytes();
    c.flops = net->layer(i)->FlopsPerExample() * x.dim(0);
    h = net->layer(i)->Forward(h, CacheMode::kCache);
    c.cached_bytes = net->layer(i)->CachedBytes();
  }
  net->DropCaches();
  return costs;
}

CheckpointPlan PlanNone(int64_t num_layers) {
  // One segment spanning everything: CheckpointedStep special-cases a
  // single segment by caching during the initial forward, so the
  // baseline is truly recompute-free.
  (void)num_layers;
  CheckpointPlan plan;
  plan.segment_starts.push_back(0);
  return plan;
}

CheckpointPlan PlanSqrtN(int64_t num_layers) {
  CheckpointPlan plan;
  const int64_t k = std::max<int64_t>(
      1, static_cast<int64_t>(std::llround(std::sqrt(
             static_cast<double>(num_layers)))));
  const int64_t seg = (num_layers + k - 1) / k;
  for (int64_t s = 0; s < num_layers; s += seg) {
    plan.segment_starts.push_back(s);
  }
  return plan;
}

Result<CheckpointPlan> PlanForBudget(const std::vector<LayerMemCost>& costs,
                                     int64_t memory_budget_bytes) {
  const int64_t n = static_cast<int64_t>(costs.size());
  if (n == 0) return Status::InvalidArgument("no layers");

  // Candidate per-segment cache caps: every contiguous-run cache total.
  std::set<int64_t> caps;
  for (int64_t i = 0; i < n; ++i) {
    int64_t run = 0;
    for (int64_t j = i; j < n; ++j) {
      run += costs[static_cast<size_t>(j)].cached_bytes;
      caps.insert(run);
    }
  }

  Result<CheckpointPlan> best = Status::ResourceExhausted(
      "memory budget below the minimum achievable peak");
  int64_t best_segments = n + 1;
  for (int64_t cap : caps) {
    // Greedy packing: start a new segment when the cache total would
    // exceed the cap. Minimizes segment count for this cap.
    CheckpointPlan plan;
    plan.segment_starts.push_back(0);
    int64_t seg = 0;
    bool feasible = true;
    for (int64_t i = 0; i < n; ++i) {
      const int64_t c = costs[static_cast<size_t>(i)].cached_bytes;
      if (c > cap) {
        feasible = false;
        break;
      }
      if (seg + c > cap) {
        plan.segment_starts.push_back(i);
        seg = 0;
      }
      seg += c;
    }
    if (!feasible) continue;
    if (plan.PredictedPeakBytes(costs) <= memory_budget_bytes &&
        plan.NumSegments() < best_segments) {
      best_segments = plan.NumSegments();
      best = plan;
    }
  }
  return best;
}

Result<double> CheckpointedStep(Sequential* net, Optimizer* opt,
                                const Dataset& batch,
                                const CheckpointPlan& plan) {
  const int64_t n = net->size();
  if (plan.segment_starts.empty() || plan.segment_starts[0] != 0) {
    return Status::InvalidArgument("plan must start a segment at layer 0");
  }
  for (size_t j = 1; j < plan.segment_starts.size(); ++j) {
    if (plan.segment_starts[j] <= plan.segment_starts[j - 1] ||
        plan.segment_starts[j] >= n) {
      return Status::InvalidArgument("segment starts must be increasing "
                                     "and in range");
    }
  }
  const int64_t k = plan.NumSegments();
  net->ZeroGrads();

  // Forward: keep only boundary inputs. A single segment degenerates to
  // plain cached training (no recompute).
  const bool plain = (k == 1);
  std::vector<Tensor> boundary_inputs(static_cast<size_t>(k));
  Tensor h = batch.x;
  int64_t seg = 0;
  for (int64_t i = 0; i < n; ++i) {
    if (seg < k && plan.segment_starts[static_cast<size_t>(seg)] == i) {
      boundary_inputs[static_cast<size_t>(seg)] = h;
      ++seg;
    }
    h = net->layer(i)->Forward(
        h, plain ? CacheMode::kCache : CacheMode::kNoCache);
  }

  LossGrad lg = SoftmaxCrossEntropy(h, batch.y);
  Tensor grad = std::move(lg.grad);

  // Backward over segments in reverse; recompute each segment's cached
  // forward first (skip recompute when plain).
  for (int64_t j = k - 1; j >= 0; --j) {
    const int64_t begin = plan.segment_starts[static_cast<size_t>(j)];
    const int64_t end =
        j + 1 < k ? plan.segment_starts[static_cast<size_t>(j + 1)] : n;
    if (!plain) {
      Tensor r = boundary_inputs[static_cast<size_t>(j)];
      for (int64_t i = begin; i < end; ++i) {
        r = net->layer(i)->Forward(r, CacheMode::kCache);
      }
    }
    for (int64_t i = end - 1; i >= begin; --i) {
      grad = net->layer(i)->Backward(grad);
    }
    for (int64_t i = begin; i < end; ++i) {
      net->layer(i)->DropCache();
    }
    boundary_inputs[static_cast<size_t>(j)].Clear();
  }

  opt->Step(net->Params(), net->Grads());
  return lg.loss;
}

}  // namespace dlsys
