#ifndef DLSYS_MEMSCHED_OFFLOAD_H_
#define DLSYS_MEMSCHED_OFFLOAD_H_

#include <cstdint>
#include <vector>

#include "src/core/status.h"
#include "src/memsched/checkpoint.h"

/// \file offload.h
/// \brief Activation offloading to a slower memory tier (tutorial
/// Section 2.3, vDNN-style).
///
/// Substitution note (DESIGN.md): we model the GPU-to-host transfer with
/// a bandwidth cost model over the byte-accurate per-layer cache sizes
/// measured by ProbeLayerCosts. Offloading is a pure
/// capacity-for-transfer-time trade; the model computes both sides
/// exactly for any offload set.

namespace dlsys {

/// \brief The slower tier activations can be parked in.
struct SlowTier {
  double bandwidth_bytes_per_s = 12e9;  ///< e.g. PCIe 3.0 x16
  double latency_seconds = 5e-6;        ///< per-transfer setup
};

/// \brief Predicted effect of offloading a set of layers' caches.
struct OffloadEstimate {
  int64_t device_peak_bytes = 0;   ///< resident caches + staging buffer
  int64_t transferred_bytes = 0;   ///< out during forward + back during bwd
  double transfer_seconds = 0.0;   ///< total transfer time (no overlap)
  double overhead_seconds = 0.0;   ///< extra wall-clock after overlapping
                                   ///< transfers with compute
};

/// \brief Evaluates offloading the caches of \p offloaded layers.
///
/// \p compute_seconds is the measured compute time of one training step,
/// used for the overlap estimate: overhead = max(0, transfer - compute).
/// Device peak counts every resident (non-offloaded) cache plus a staging
/// buffer the size of the largest offloaded cache (the transfer must pass
/// through device memory).
OffloadEstimate EstimateOffload(const std::vector<LayerMemCost>& costs,
                                const std::vector<bool>& offloaded,
                                const SlowTier& tier,
                                double compute_seconds);

/// \brief Chooses which layer caches to offload to fit
/// \p device_budget_bytes: largest caches first (they buy the most
/// capacity per transfer). Returns ResourceExhausted when even full
/// offloading cannot fit (the staging buffer floor).
Result<std::vector<bool>> ChooseOffloadSet(
    const std::vector<LayerMemCost>& costs, int64_t device_budget_bytes);

}  // namespace dlsys

#endif  // DLSYS_MEMSCHED_OFFLOAD_H_
