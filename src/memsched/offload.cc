#include "src/memsched/offload.h"

#include <algorithm>
#include <numeric>

namespace dlsys {

OffloadEstimate EstimateOffload(const std::vector<LayerMemCost>& costs,
                                const std::vector<bool>& offloaded,
                                const SlowTier& tier,
                                double compute_seconds) {
  DLSYS_CHECK(costs.size() == offloaded.size(),
              "costs/offloaded size mismatch");
  OffloadEstimate out;
  int64_t resident = 0;
  int64_t largest_offloaded = 0;
  int64_t offloaded_bytes = 0;
  int64_t transfers = 0;
  for (size_t i = 0; i < costs.size(); ++i) {
    if (offloaded[i]) {
      offloaded_bytes += costs[i].cached_bytes;
      largest_offloaded = std::max(largest_offloaded, costs[i].cached_bytes);
      transfers += 2;  // out (forward) and back (backward)
    } else {
      resident += costs[i].cached_bytes;
    }
  }
  out.device_peak_bytes = resident + largest_offloaded;
  out.transferred_bytes = 2 * offloaded_bytes;
  out.transfer_seconds =
      static_cast<double>(out.transferred_bytes) / tier.bandwidth_bytes_per_s +
      static_cast<double>(transfers) * tier.latency_seconds;
  out.overhead_seconds = std::max(0.0, out.transfer_seconds - compute_seconds);
  return out;
}

Result<std::vector<bool>> ChooseOffloadSet(
    const std::vector<LayerMemCost>& costs, int64_t device_budget_bytes) {
  const size_t n = costs.size();
  std::vector<bool> offloaded(n, false);
  // Order layers by cache size descending.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return costs[a].cached_bytes > costs[b].cached_bytes;
  });
  int64_t resident = 0;
  for (const auto& c : costs) resident += c.cached_bytes;
  int64_t largest_offloaded = 0;
  for (size_t idx : order) {
    if (resident + largest_offloaded <= device_budget_bytes) break;
    offloaded[idx] = true;
    resident -= costs[idx].cached_bytes;
    largest_offloaded = std::max(largest_offloaded, costs[idx].cached_bytes);
  }
  if (resident + largest_offloaded > device_budget_bytes) {
    return Status::ResourceExhausted(
        "even full offloading cannot fit the device budget (staging "
        "buffer floor)");
  }
  return offloaded;
}

}  // namespace dlsys
