#include "src/infer/passes.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "src/obs/counters.h"
#include "src/obs/trace.h"
#include "src/tensor/ops.h"

namespace dlsys {
namespace infer {
namespace {

/// Must match TensorArena's slot alignment (src/infer/arena.cc).
constexpr int64_t kPackAlign = 64;

int64_t AlignUp(int64_t v) {
  return (v + kPackAlign - 1) / kPackAlign * kPackAlign;
}

bool IsQuantDense(OpKind kind) {
  return kind == OpKind::kDenseInt8 || kind == OpKind::kDenseInt4;
}

bool IsDense(OpKind kind) {
  return kind == OpKind::kDense || IsQuantDense(kind);
}

/// Returns the index of the sole live consumer of \p tensor_id, or -1.
int SoleConsumer(const OpGraph& g, int tensor_id) {
  const TensorDef& t = g.tensors[static_cast<size_t>(tensor_id)];
  return t.consumers.size() == 1 ? t.consumers[0] : -1;
}

int64_t FusePass(OpGraph* g) {
  int64_t fused = 0;
  for (size_t i = 0; i < g->nodes.size(); ++i) {
    OpNode& node = g->nodes[i];
    if (node.dead) continue;
    if (IsDense(node.kind)) {
      // The bias add (and any absorbed ReLU) runs as the GEMM's epilogue:
      // one output pass instead of two or three.
      node.epilogue_fused = true;
    }
    if (!IsDense(node.kind) && node.kind != OpKind::kConv) continue;
    const int c = SoleConsumer(*g, node.output);
    if (c < 0) continue;
    OpNode& relu = g->nodes[static_cast<size_t>(c)];
    if (relu.dead || relu.kind != OpKind::kRelu) continue;
    // Absorb the ReLU: this node now produces the ReLU's output tensor
    // and applies max(x, 0) in its epilogue — the same float op on the
    // same value, minus a full store/reload pass over the activation.
    node.relu_fused = true;
    node.output = relu.output;
    relu.dead = true;
  }
  g->RebuildEdges();
  for (const OpNode& node : g->nodes) {
    if (!node.dead && (node.epilogue_fused || node.relu_fused)) ++fused;
  }
  return fused;
}

int64_t QuantElimPass(OpGraph* g) {
  int64_t elided = 0;
  for (size_t i = 0; i < g->nodes.size(); ++i) {
    OpNode& node = g->nodes[i];
    if (node.dead || !IsQuantDense(node.kind)) continue;
    const int c = SoleConsumer(*g, node.output);
    if (c < 0) continue;
    OpNode& next = g->nodes[static_cast<size_t>(c)];
    if (next.dead || !IsQuantDense(next.kind) || next.quant_in) continue;
    // Adjacent quantized layers: the producer's epilogue quantizes each
    // finished row once (q8 codes + per-block scales), and the consumer
    // reads those directly instead of re-quantizing the fp32 activation.
    // Activations are q8 in both the int8 and int4 modes, so the boundary
    // format matches for any q8/q4 weight combination.
    node.quant_out = true;
    next.quant_in = true;
    ++elided;
  }
  return elided;
}

int64_t FoldPass(OpGraph* g) {
  int64_t folded = 0;
  for (OpNode& node : g->nodes) {
    if (node.dead) continue;
    switch (node.kind) {
      case OpKind::kDenseInt8:
        // Weight-only subexpression: transpose + block-quantize moves to
        // compile time. With folding off the emitted step re-derives the
        // same codes from the fp32 weight on every call.
        node.qweight8 = Q8BlockQuantizeRows(Transpose(node.weight));
        node.weight = Tensor();
        node.folded = true;
        ++folded;
        break;
      case OpKind::kDenseInt4:
        node.qweight4 = Q4BlockQuantizeRows(Transpose(node.weight));
        node.weight = Tensor();
        node.folded = true;
        ++folded;
        break;
      case OpKind::kBatchNorm: {
        // Precompute the exact float the training path (and the unfolded
        // step) recomputes per element. Folding BN into a*x+b would change
        // the float op sequence and break the bitwise contract, so only
        // the rsqrt is lifted.
        const size_t f = node.bn_var.size();
        node.bn_inv.resize(f);
        for (size_t j = 0; j < f; ++j) {
          node.bn_inv[j] = 1.0f / std::sqrt(node.bn_var[j] + node.bn_eps);
        }
        node.folded = true;
        ++folded;
        break;
      }
      default:
        break;  // fp32 dense/conv weights are already in executable form
    }
  }
  return folded;
}

}  // namespace

Status ParsePassList(const std::string& spec, PassConfig* out) {
  if (spec == "all" || spec == "default") {
    *out = PassConfig{};
    return Status::OK();
  }
  if (spec == "none") {
    *out = PassConfig{false, false, false, false};
    return Status::OK();
  }
  PassConfig config{false, false, false, false};
  size_t start = 0;
  while (start <= spec.size()) {
    size_t comma = spec.find(',', start);
    if (comma == std::string::npos) comma = spec.size();
    const std::string token = spec.substr(start, comma - start);
    if (token == "fuse") {
      config.fuse = true;
    } else if (token == "quant_elim") {
      config.quant_elim = true;
    } else if (token == "fold") {
      config.fold = true;
    } else if (token == "pack") {
      config.pack = true;
    } else {
      return Status::InvalidArgument(
          "DLSYS_PASSES: unknown pass '" + token +
          "' (want all|none|default or a comma list of "
          "fuse|quant_elim|fold|pack)");
    }
    start = comma + 1;
  }
  *out = config;
  return Status::OK();
}

PassConfig ResolvePassConfig(const PassConfig& base) {
  const char* env = std::getenv("DLSYS_PASSES");
  if (env == nullptr || env[0] == '\0') return base;
  const std::string spec(env);
  if (spec == "default") return base;
  PassConfig config;
  const Status parsed = ParsePassList(spec, &config);
  // A forced pass list that silently fell back would invalidate any
  // parity or perf conclusion drawn from the run — same policy as
  // DLSYS_ISA.
  DLSYS_CHECK(parsed.ok(), parsed.message().c_str());
  return config;
}

PassStats RunPasses(OpGraph* graph, const PassConfig& config) {
  PassStats stats;
  if (config.fuse) {
    DLSYS_TRACE_SPAN("infer.pass.fuse", "compile");
    stats.fused = FusePass(graph);
    DLSYS_COUNTER_ADD("infer.pass.fuse.rewrites", stats.fused);
  }
  if (config.quant_elim) {
    DLSYS_TRACE_SPAN("infer.pass.quant_elim", "compile");
    stats.quant_elided = QuantElimPass(graph);
    DLSYS_COUNTER_ADD("infer.pass.quant_elim.elided", stats.quant_elided);
  }
  if (config.fold) {
    DLSYS_TRACE_SPAN("infer.pass.fold", "compile");
    stats.folded = FoldPass(graph);
    DLSYS_COUNTER_ADD("infer.pass.fold.folded", stats.folded);
  }
  return stats;
}

int64_t PackLiveRanges(const std::vector<LiveBuffer>& buffers,
                       std::vector<int64_t>* offsets) {
  struct Placed {
    int64_t offset;
    int64_t bytes;
    int begin;
    int end;
  };
  std::vector<Placed> placed;
  offsets->assign(buffers.size(), 0);
  int64_t total = 0;
  for (size_t b = 0; b < buffers.size(); ++b) {
    const int64_t bytes = AlignUp(std::max<int64_t>(buffers[b].bytes, 1));
    // Obstacles: already-placed buffers whose live interval overlaps.
    std::vector<Placed> obstacles;
    for (const Placed& p : placed) {
      if (p.begin <= buffers[b].end && buffers[b].begin <= p.end) {
        obstacles.push_back(p);
      }
    }
    std::sort(obstacles.begin(), obstacles.end(),
              [](const Placed& x, const Placed& y) {
                return x.offset < y.offset;
              });
    // First fit: slide past each obstacle until a gap fits.
    int64_t offset = 0;
    for (const Placed& p : obstacles) {
      if (offset + bytes <= p.offset) break;
      offset = std::max(offset, AlignUp(p.offset + p.bytes));
    }
    (*offsets)[b] = offset;
    placed.push_back(Placed{offset, bytes, buffers[b].begin, buffers[b].end});
    total = std::max(total, offset + bytes);
  }
  return AlignUp(std::max<int64_t>(total, 1));
}

}  // namespace infer
}  // namespace dlsys
