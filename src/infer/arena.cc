#include "src/infer/arena.h"

#include <algorithm>
#include <new>
#include <utility>

#include "src/core/status.h"
#include "src/tensor/tensor.h"

namespace dlsys {
namespace {

constexpr int64_t kAlign = 64;  // cache line; also serves any SIMD width

int64_t AlignUp(int64_t v) { return (v + kAlign - 1) / kAlign * kAlign; }

}  // namespace

TensorArena::~TensorArena() { FreeStorage(); }

TensorArena::TensorArena(TensorArena&& other) noexcept
    : slots_(std::move(other.slots_)),
      total_bytes_(other.total_bytes_),
      base_(other.base_) {
  other.slots_.clear();
  other.total_bytes_ = 0;
  other.base_ = nullptr;
}

TensorArena& TensorArena::operator=(TensorArena&& other) noexcept {
  if (this == &other) return *this;
  FreeStorage();
  slots_ = std::move(other.slots_);
  total_bytes_ = other.total_bytes_;
  base_ = other.base_;
  other.slots_.clear();
  other.total_bytes_ = 0;
  other.base_ = nullptr;
  return *this;
}

void TensorArena::FreeStorage() {
  if (base_ != nullptr) {
    MemoryTracker::Global().Release(total_bytes_);
    ::operator delete(base_, std::align_val_t{kAlign});
    base_ = nullptr;
  }
}

TensorArena::BufferId TensorArena::Reserve(int64_t count, int64_t elem_bytes,
                                           ElemType type) {
  DLSYS_CHECK(!committed(),
              "TensorArena::Reserve after Commit — the plan is frozen; "
              "inference-time buffer growth is a planning bug");
  DLSYS_CHECK(count >= 0, "TensorArena::Reserve negative count");
  Slot slot;
  slot.offset = total_bytes_;
  slot.count = count;
  slot.type = type;
  slots_.push_back(slot);
  total_bytes_ += AlignUp(count * elem_bytes);
  return static_cast<BufferId>(slots_.size()) - 1;
}

TensorArena::BufferId TensorArena::Place(int64_t offset_bytes, int64_t count,
                                         int64_t elem_bytes, ElemType type,
                                         int live_begin, int live_end) {
  DLSYS_CHECK(!committed(),
              "TensorArena::Place after Commit — the plan is frozen; "
              "inference-time buffer growth is a planning bug");
  DLSYS_CHECK(count >= 0, "TensorArena::Place negative count");
  DLSYS_CHECK(offset_bytes >= 0 && offset_bytes % kAlign == 0,
              "TensorArena::Place offset must be 64-byte aligned");
  DLSYS_CHECK(live_begin <= live_end,
              "TensorArena::Place inverted live interval");
  Slot slot;
  slot.offset = offset_bytes;
  slot.count = count;
  slot.type = type;
  slot.placed = true;
  slot.live_begin = live_begin;
  slot.live_end = live_end;
  slots_.push_back(slot);
  total_bytes_ = std::max(total_bytes_,
                          offset_bytes + AlignUp(count * elem_bytes));
  return static_cast<BufferId>(slots_.size()) - 1;
}

TensorArena::BufferId TensorArena::PlaceFloats(int64_t offset_bytes,
                                               int64_t count, int live_begin,
                                               int live_end) {
  return Place(offset_bytes, count, static_cast<int64_t>(sizeof(float)),
               ElemType::kFloat, live_begin, live_end);
}

TensorArena::BufferId TensorArena::PlaceInt8s(int64_t offset_bytes,
                                              int64_t count, int live_begin,
                                              int live_end) {
  return Place(offset_bytes, count, 1, ElemType::kInt8, live_begin,
               live_end);
}

TensorArena::BufferId TensorArena::ReserveFloats(int64_t count) {
  return Reserve(count, static_cast<int64_t>(sizeof(float)),
                 ElemType::kFloat);
}

TensorArena::BufferId TensorArena::ReserveInt8s(int64_t count) {
  return Reserve(count, 1, ElemType::kInt8);
}

TensorArena::BufferId TensorArena::ReserveInt32s(int64_t count) {
  return Reserve(count, static_cast<int64_t>(sizeof(int32_t)),
                 ElemType::kInt32);
}

void TensorArena::Commit() {
  DLSYS_CHECK(!committed(), "TensorArena::Commit called twice");
  // Liveness cross-check for packed layouts: two placed buffers whose
  // live intervals overlap must occupy disjoint byte ranges. O(slots^2),
  // run once at plan time.
  auto elem_bytes = [](ElemType type) -> int64_t {
    switch (type) {
      case ElemType::kInt8:
        return 1;
      case ElemType::kInt32:
        return static_cast<int64_t>(sizeof(int32_t));
      case ElemType::kFloat:
        break;
    }
    return static_cast<int64_t>(sizeof(float));
  };
  for (size_t a = 0; a < slots_.size(); ++a) {
    if (!slots_[a].placed) continue;
    const int64_t a_end =
        slots_[a].offset + AlignUp(slots_[a].count * elem_bytes(slots_[a].type));
    for (size_t b = a + 1; b < slots_.size(); ++b) {
      if (!slots_[b].placed) continue;
      const bool lifetimes_overlap =
          slots_[a].live_begin <= slots_[b].live_end &&
          slots_[b].live_begin <= slots_[a].live_end;
      if (!lifetimes_overlap) continue;
      const int64_t b_end =
          slots_[b].offset +
          AlignUp(slots_[b].count * elem_bytes(slots_[b].type));
      DLSYS_CHECK(
          a_end <= slots_[b].offset || b_end <= slots_[a].offset,
          "TensorArena::Commit: overlapping-lifetime buffers assigned to "
          "overlapping offsets — liveness packing bug");
    }
  }
  const int64_t bytes = total_bytes_ > 0 ? total_bytes_ : kAlign;
  total_bytes_ = bytes;
  base_ = static_cast<uint8_t*>(
      ::operator new(static_cast<size_t>(bytes), std::align_val_t{kAlign}));
  // The workspace counts as live tensor memory: checkpointing/offloading
  // experiments that read the tracker should see serving buffers too.
  MemoryTracker::Global().Allocate(bytes);
}

void* TensorArena::Resolve(BufferId id, ElemType type) const {
  DLSYS_CHECK(committed(), "TensorArena buffer access before Commit");
  DLSYS_CHECK(id >= 0 && id < buffer_count(), "TensorArena bad buffer id");
  DLSYS_CHECK(slots_[static_cast<size_t>(id)].type == type,
              "TensorArena buffer accessed as the wrong element type");
  return base_ + slots_[static_cast<size_t>(id)].offset;
}

float* TensorArena::Floats(BufferId id) const {
  return static_cast<float*>(Resolve(id, ElemType::kFloat));
}

int8_t* TensorArena::Int8s(BufferId id) const {
  return static_cast<int8_t*>(Resolve(id, ElemType::kInt8));
}

int32_t* TensorArena::Int32s(BufferId id) const {
  return static_cast<int32_t*>(Resolve(id, ElemType::kInt32));
}

int64_t TensorArena::ElementCount(BufferId id) const {
  DLSYS_CHECK(id >= 0 && id < buffer_count(), "TensorArena bad buffer id");
  return slots_[static_cast<size_t>(id)].count;
}

}  // namespace dlsys
