#include "src/infer/arena.h"

#include <new>
#include <utility>

#include "src/core/status.h"
#include "src/tensor/tensor.h"

namespace dlsys {
namespace {

constexpr int64_t kAlign = 64;  // cache line; also serves any SIMD width

int64_t AlignUp(int64_t v) { return (v + kAlign - 1) / kAlign * kAlign; }

}  // namespace

TensorArena::~TensorArena() { FreeStorage(); }

TensorArena::TensorArena(TensorArena&& other) noexcept
    : slots_(std::move(other.slots_)),
      total_bytes_(other.total_bytes_),
      base_(other.base_) {
  other.slots_.clear();
  other.total_bytes_ = 0;
  other.base_ = nullptr;
}

TensorArena& TensorArena::operator=(TensorArena&& other) noexcept {
  if (this == &other) return *this;
  FreeStorage();
  slots_ = std::move(other.slots_);
  total_bytes_ = other.total_bytes_;
  base_ = other.base_;
  other.slots_.clear();
  other.total_bytes_ = 0;
  other.base_ = nullptr;
  return *this;
}

void TensorArena::FreeStorage() {
  if (base_ != nullptr) {
    MemoryTracker::Global().Release(total_bytes_);
    ::operator delete(base_, std::align_val_t{kAlign});
    base_ = nullptr;
  }
}

TensorArena::BufferId TensorArena::Reserve(int64_t count, int64_t elem_bytes,
                                           ElemType type) {
  DLSYS_CHECK(!committed(),
              "TensorArena::Reserve after Commit — the plan is frozen; "
              "inference-time buffer growth is a planning bug");
  DLSYS_CHECK(count >= 0, "TensorArena::Reserve negative count");
  Slot slot;
  slot.offset = total_bytes_;
  slot.count = count;
  slot.type = type;
  slots_.push_back(slot);
  total_bytes_ += AlignUp(count * elem_bytes);
  return static_cast<BufferId>(slots_.size()) - 1;
}

TensorArena::BufferId TensorArena::ReserveFloats(int64_t count) {
  return Reserve(count, static_cast<int64_t>(sizeof(float)),
                 ElemType::kFloat);
}

TensorArena::BufferId TensorArena::ReserveInt8s(int64_t count) {
  return Reserve(count, 1, ElemType::kInt8);
}

TensorArena::BufferId TensorArena::ReserveInt32s(int64_t count) {
  return Reserve(count, static_cast<int64_t>(sizeof(int32_t)),
                 ElemType::kInt32);
}

void TensorArena::Commit() {
  DLSYS_CHECK(!committed(), "TensorArena::Commit called twice");
  const int64_t bytes = total_bytes_ > 0 ? total_bytes_ : kAlign;
  total_bytes_ = bytes;
  base_ = static_cast<uint8_t*>(
      ::operator new(static_cast<size_t>(bytes), std::align_val_t{kAlign}));
  // The workspace counts as live tensor memory: checkpointing/offloading
  // experiments that read the tracker should see serving buffers too.
  MemoryTracker::Global().Allocate(bytes);
}

void* TensorArena::Resolve(BufferId id, ElemType type) const {
  DLSYS_CHECK(committed(), "TensorArena buffer access before Commit");
  DLSYS_CHECK(id >= 0 && id < buffer_count(), "TensorArena bad buffer id");
  DLSYS_CHECK(slots_[static_cast<size_t>(id)].type == type,
              "TensorArena buffer accessed as the wrong element type");
  return base_ + slots_[static_cast<size_t>(id)].offset;
}

float* TensorArena::Floats(BufferId id) const {
  return static_cast<float*>(Resolve(id, ElemType::kFloat));
}

int8_t* TensorArena::Int8s(BufferId id) const {
  return static_cast<int8_t*>(Resolve(id, ElemType::kInt8));
}

int32_t* TensorArena::Int32s(BufferId id) const {
  return static_cast<int32_t*>(Resolve(id, ElemType::kInt32));
}

int64_t TensorArena::ElementCount(BufferId id) const {
  DLSYS_CHECK(id >= 0 && id < buffer_count(), "TensorArena bad buffer id");
  return slots_[static_cast<size_t>(id)].count;
}

}  // namespace dlsys
