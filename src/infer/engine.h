#ifndef DLSYS_INFER_ENGINE_H_
#define DLSYS_INFER_ENGINE_H_

#include <cstdint>
#include <vector>

#include "src/compress/quantization.h"
#include "src/core/status.h"
#include "src/infer/arena.h"
#include "src/nn/sequential.h"
#include "src/tensor/tensor.h"

/// \file engine.h
/// \brief Batched inference engine: a trained Sequential compiled into a
/// preplanned, allocation-free execution schedule.
///
/// Training optimizes for flexibility (any batch size, caches for the
/// backward pass); serving optimizes for steady-state latency. Compile()
/// walks the layer pipeline once, recognizes each layer, fixes every
/// intermediate shape for a declared batch ceiling, and reserves all
/// workspace in a TensorArena. After compilation the hot path
/// (PredictInto) performs **zero heap allocations** for any batch size up
/// to the ceiling and any DLSYS_THREADS setting.
///
/// ## Numerics contract
///
/// In fp32 mode the engine's output is **bitwise identical** to
/// `Sequential::Forward(x, CacheMode::kNoCache)` for both conv algorithms:
/// every kernel reproduces the training path's per-element operation
/// sequence (see DESIGN.md §"inference engine"). The im2col algorithm
/// rewrites convolution as patch-matrix GEMM with zero-filled padding
/// taps; a zero product leaves a finite accumulator unchanged, so the
/// result matches the direct path's clipped loops bit for bit.
///
/// In int8 mode Dense layers run as ggml-style block-quantized integer
/// GEMM (src/compress/quantization.h): weights quantize at compile time to
/// q8 codes with one scale per 32-element block of each output feature's
/// row, activations quantize per block at run time, and dequantization is
/// fused into the GEMM inner loop — per block an exact int32 dot scaled by
/// float(dot) * scale_x * scale_w accumulates in ascending block order,
/// then the bias adds at the layer boundary. int4 mode is identical except
/// weights store 4-bit codes (scale = max|block|/7), halving weight bytes
/// again; activations stay q8. Non-Dense layers keep fp32 arithmetic in
/// both modes. The per-element operation sequence is fixed (int32 dots are
/// associative; the float chain is sequential per element), so both
/// quantized paths are bitwise deterministic across thread counts AND
/// across SIMD ISAs — divergence from fp32 is pure quantization error.

namespace dlsys {

/// \brief Convolution execution strategy.
enum class ConvAlgo {
  kIm2col,  ///< patch-matrix GEMM through ConvGemmBiasInto (default)
  kDirect,  ///< reference loop nest; retained for bit-comparison and bench
};

/// \brief Arithmetic used for Dense layers.
enum class EngineNumeric {
  kFp32,  ///< full float pipeline, bitwise equal to training forward
  kInt8,  ///< q8-block weights x q8-block activations, fused dequant GEMM
  kInt4,  ///< q4-block weights x q8-block activations, fused dequant GEMM
};

/// \brief Compile-time engine options.
struct EngineConfig {
  int64_t max_batch = 64;  ///< largest batch PredictInto will accept
  ConvAlgo conv_algo = ConvAlgo::kIm2col;
  EngineNumeric numeric = EngineNumeric::kFp32;
};

/// \brief A compiled, arena-backed forward pipeline for one model.
///
/// Thread-compatible: one engine serves one request at a time (the
/// workspace is shared across calls); wrap with MicroBatcher or external
/// queuing for concurrent producers. Holds its own copies of all
/// parameters — the source network may be freed or mutated afterwards.
class InferenceEngine {
 public:
  /// \brief Compiles \p net for inputs of per-example shape
  /// \p example_shape (no batch dimension).
  ///
  /// Returns InvalidArgument when shapes do not thread through the
  /// pipeline or the config is malformed, and Unimplemented for layer
  /// types the engine does not recognize. Dropout layers compile to
  /// identity, matching inference-mode training semantics.
  static Result<InferenceEngine> Compile(const Sequential& net,
                                         const Shape& example_shape,
                                         const EngineConfig& config = {});

  InferenceEngine(InferenceEngine&&) = default;
  InferenceEngine& operator=(InferenceEngine&&) = default;

  /// \brief Runs a batch (rank 1 + example rank, leading dim <= max_batch)
  /// and returns a freshly allocated output tensor.
  Result<Tensor> Predict(const Tensor& batch);

  /// \brief Allocation-free forward: \p batch points at \p batch_size
  /// row-major examples of input_elems_per_example() floats; \p out
  /// receives batch_size * output_elems_per_example() floats.
  Status PredictInto(const float* batch, int64_t batch_size, float* out);

  /// \brief Per-example input shape the engine was compiled for.
  const Shape& example_input_shape() const { return in_shape_; }
  /// \brief Per-example output shape.
  const Shape& example_output_shape() const { return out_shape_; }
  /// \brief Flat input element count per example.
  int64_t input_elems_per_example() const { return in_elems_; }
  /// \brief Flat output element count per example.
  int64_t output_elems_per_example() const { return out_elems_; }
  /// \brief Batch ceiling declared at compile time.
  int64_t max_batch() const { return config_.max_batch; }
  /// \brief The compile-time configuration.
  const EngineConfig& config() const { return config_; }
  /// \brief Committed workspace bytes (activations + scratch).
  int64_t workspace_bytes() const { return arena_.total_bytes(); }
  /// \brief Number of executable steps in the compiled schedule.
  int64_t step_count() const { return static_cast<int64_t>(steps_.size()); }

 private:
  struct Step {
    enum class Kind {
      kDense,
      kDenseInt8,
      kDenseInt4,
      kConv,
      kPool,
      kRelu,
      kSigmoid,
      kTanh,
      kBatchNorm,
    };

    Kind kind = Kind::kRelu;
    int in_buf = 0;   ///< index into act_ (ping-pong pair)
    int out_buf = 0;  ///< == in_buf for in-place steps
    int64_t in_elems = 0;   ///< per-example input elements
    int64_t out_elems = 0;  ///< per-example output elements

    /// Trace/cost plan, fixed at compile time: span name plus
    /// per-example FLOPs and bytes moved (activations + parameters),
    /// scaled by the batch at run time.
    const char* trace_name = "engine.step";
    int64_t flops_per_example = 0;
    int64_t bytes_per_example = 0;

    Tensor weight;  ///< dense: (in, out); conv: (oc, ic, k, k)
    Tensor bias;
    Q8BlockMatrix qweight8;  ///< int8 dense: (out_features, in_features)
    Q4BlockMatrix qweight4;  ///< int4 dense: (out_features, in_features)

    int64_t in_ch = 0, out_ch = 0, kernel = 0, stride = 0, pad = 0;
    int64_t h = 0, w = 0, ho = 0, wo = 0;  ///< spatial extents
    int64_t window = 0;                    ///< pooling

    /// BatchNorm inference constants; inv[j] = 1/sqrt(running_var+eps),
    /// the exact value the training path recomputes per element.
    std::vector<float> bn_gamma, bn_beta, bn_mean, bn_inv;
  };

  InferenceEngine() = default;

  void RunStep(const Step& step, int64_t batch, const float* in,
               float* out) const;

  EngineConfig config_;
  Shape in_shape_, out_shape_;
  int64_t in_elems_ = 0, out_elems_ = 0;
  std::vector<Step> steps_;
  TensorArena arena_;
  TensorArena::BufferId act_[2] = {-1, -1};  ///< ping-pong activations
  TensorArena::BufferId im2col_ = -1;        ///< per-image patch scratch
  TensorArena::BufferId q_vals_ = -1;    ///< q8 activation codes (32-padded)
  TensorArena::BufferId q_scales_ = -1;  ///< per-block activation scales
  int final_buf_ = 0;  ///< act_ index holding the last step's output
};

}  // namespace dlsys

#endif  // DLSYS_INFER_ENGINE_H_
