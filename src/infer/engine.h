#ifndef DLSYS_INFER_ENGINE_H_
#define DLSYS_INFER_ENGINE_H_

#include <cstdint>
#include <vector>

#include "src/compress/quantization.h"
#include "src/core/status.h"
#include "src/infer/arena.h"
#include "src/infer/graph.h"
#include "src/infer/passes.h"
#include "src/nn/sequential.h"
#include "src/tensor/tensor.h"

/// \file engine.h
/// \brief Batched inference engine: a trained Sequential compiled through a
/// graph pass pipeline into a preplanned, allocation-free schedule.
///
/// Training optimizes for flexibility (any batch size, caches for the
/// backward pass); serving optimizes for steady-state latency. Compile()
/// lowers the layer pipeline into an explicit op graph (src/infer/graph.h),
/// runs the rewrite passes (src/infer/passes.h) — operator fusion,
/// quant/dequant elimination, constant folding, liveness-packed arena
/// layout — and emits an executable schedule whose workspace is reserved
/// once in a TensorArena. After compilation the hot path (PredictInto)
/// performs **zero heap allocations** for any batch size up to the declared
/// ceiling and any DLSYS_THREADS setting.
///
/// ## Numerics contract
///
/// In fp32 mode the engine's output is **bitwise identical** to
/// `Sequential::Forward(x, CacheMode::kNoCache)` for both conv algorithms
/// AND for every pass combination: every kernel reproduces the training
/// path's per-element operation sequence, and every rewrite pass is
/// bitwise-neutral (fusion removes stores/reloads and kernel launches,
/// folding moves where identical float expressions evaluate, packing moves
/// where buffers live — see src/infer/passes.h). The im2col algorithm
/// rewrites convolution as patch-matrix GEMM with zero-filled padding
/// taps; a zero product leaves a finite accumulator unchanged, so the
/// result matches the direct path's clipped loops bit for bit.
///
/// In int8 mode Dense layers run as ggml-style block-quantized integer
/// GEMM (src/compress/quantization.h): weights quantize to q8 codes with
/// one scale per 32-element block of each output feature's row (at compile
/// time under the fold pass, per call without it — same bits either way),
/// activations quantize per block at run time unless the quant-elimination
/// pass lets the producing layer hand codes through directly, and
/// dequantization is fused into the GEMM inner loop. int4 mode is
/// identical except weights store 4-bit codes (scale = max|block|/7),
/// halving weight bytes again; activations stay q8. Non-Dense layers keep
/// fp32 arithmetic in both modes. The per-element operation sequence is
/// fixed, so both quantized paths are bitwise deterministic across thread
/// counts, SIMD ISAs, and pass combinations — divergence from fp32 is pure
/// quantization error.

namespace dlsys {

/// \brief Compile-time engine options. (ConvAlgo and EngineNumeric live in
/// src/infer/graph.h with the IR; PassConfig in src/infer/passes.h.)
struct EngineConfig {
  EngineConfig() = default;
  /// Convenience: every default except the batch bound.
  explicit EngineConfig(int64_t batch) : max_batch(batch) {}

  int64_t max_batch = 64;  ///< largest batch PredictInto will accept
  ConvAlgo conv_algo = ConvAlgo::kIm2col;
  EngineNumeric numeric = EngineNumeric::kFp32;
  /// Which rewrite passes Compile runs (all on by default). The
  /// DLSYS_PASSES environment variable overrides this field — see
  /// src/infer/passes.h for the accepted spellings.
  PassConfig passes;
};

/// \brief A compiled, arena-backed forward pipeline for one model.
///
/// Thread-compatible: one engine serves one request at a time (the
/// workspace is shared across calls); wrap with MicroBatcher or external
/// queuing for concurrent producers. Holds its own copies of all
/// parameters — the source network may be freed or mutated afterwards.
class InferenceEngine {
 public:
  /// \brief Compiles \p net for inputs of per-example shape
  /// \p example_shape (no batch dimension).
  ///
  /// Returns InvalidArgument when shapes do not thread through the
  /// pipeline or the config is malformed, and Unimplemented for layer
  /// types the engine does not recognize. Dropout layers compile to
  /// identity, matching inference-mode training semantics.
  static Result<InferenceEngine> Compile(const Sequential& net,
                                         const Shape& example_shape,
                                         const EngineConfig& config = {});

  InferenceEngine(InferenceEngine&&) = default;
  InferenceEngine& operator=(InferenceEngine&&) = default;

  /// \brief Runs a batch (rank 1 + example rank, leading dim <= max_batch)
  /// and returns a freshly allocated output tensor.
  Result<Tensor> Predict(const Tensor& batch);

  /// \brief Allocation-free forward: \p batch points at \p batch_size
  /// row-major examples of input_elems_per_example() floats; \p out
  /// receives batch_size * output_elems_per_example() floats.
  Status PredictInto(const float* batch, int64_t batch_size, float* out);

  /// \brief Per-example input shape the engine was compiled for.
  const Shape& example_input_shape() const { return in_shape_; }
  /// \brief Per-example output shape.
  const Shape& example_output_shape() const { return out_shape_; }
  /// \brief Flat input element count per example.
  int64_t input_elems_per_example() const { return in_elems_; }
  /// \brief Flat output element count per example.
  int64_t output_elems_per_example() const { return out_elems_; }
  /// \brief Batch ceiling declared at compile time.
  int64_t max_batch() const { return config_.max_batch; }
  /// \brief The compile-time configuration (as passed; see pass_config()
  /// for the effective pass set after the DLSYS_PASSES override).
  const EngineConfig& config() const { return config_; }
  /// \brief Committed workspace bytes (activations + scratch) under the
  /// emitted layout — liveness-packed when the pack pass ran.
  int64_t workspace_bytes() const { return arena_.total_bytes(); }
  /// \brief Workspace bytes the ping-pong (pack-off) layout of the same
  /// schedule would commit; with packing on, the before/after pair
  /// (unpacked_workspace_bytes(), workspace_bytes()) quantifies the win.
  int64_t unpacked_workspace_bytes() const { return unpacked_bytes_; }
  /// \brief Number of executable steps in the compiled schedule.
  int64_t step_count() const { return static_cast<int64_t>(steps_.size()); }
  /// \brief Live op-graph nodes after the rewrite passes (== step count).
  int64_t graph_node_count() const { return graph_.live_nodes(); }
  /// \brief What the rewrite passes did at compile time.
  const infer::PassStats& pass_stats() const { return stats_; }
  /// \brief The effective pass set (config after DLSYS_PASSES override).
  const PassConfig& pass_config() const { return passes_; }

 private:
  /// One executable schedule entry: a live graph node plus the arena
  /// buffers the emitter assigned it. Constants and rewrite flags stay on
  /// the OpNode; the step only binds storage and the fixed trace/cost
  /// plan.
  struct Step {
    int node = -1;  ///< index into graph_.nodes (never a dead node)
    TensorArena::BufferId in = -1;   ///< input activations (floats)
    TensorArena::BufferId out = -1;  ///< output activations (== in when
                                     ///< the node runs in place)
    TensorArena::BufferId im2col = -1;  ///< conv patch scratch (per image)
    /// Quantized dense: q8 codes + per-block scales of the input batch.
    /// With quant_in these alias the producer step's qout buffers.
    TensorArena::BufferId qin_vals = -1;
    TensorArena::BufferId qin_scales = -1;
    /// quant_out: codes + scales this step's epilogue writes for the
    /// consumer (live from this step through the consumer's step).
    TensorArena::BufferId qout_vals = -1;
    TensorArena::BufferId qout_scales = -1;
    /// Fold-off scratch: transposed fp32 weight and the block codes +
    /// scales re-derived from it on every call.
    TensorArena::BufferId wt = -1;
    TensorArena::BufferId wvals = -1;
    TensorArena::BufferId wscales = -1;

    /// Trace/cost plan, fixed at compile time: span name plus per-example
    /// FLOPs and bytes moved, scaled by the batch at run time.
    const char* trace_name = "engine.step";
    int64_t flops_per_example = 0;
    int64_t bytes_per_example = 0;
  };

  InferenceEngine() = default;

  /// Assigns schedule positions, computes tensor live intervals, places
  /// every buffer (packed first-fit or ping-pong), and commits the arena.
  void PlanAndEmit();

  void RunStep(const Step& step, int64_t batch) const;

  EngineConfig config_;
  PassConfig passes_;        ///< effective passes (after DLSYS_PASSES)
  infer::PassStats stats_;   ///< what the passes did
  infer::OpGraph graph_;     ///< rewritten IR; owns all constants
  Shape in_shape_, out_shape_;
  int64_t in_elems_ = 0, out_elems_ = 0;
  std::vector<Step> steps_;
  TensorArena arena_;
  TensorArena::BufferId input_buf_ = -1;   ///< where PredictInto copies in
  TensorArena::BufferId output_buf_ = -1;  ///< where the result lands
  int64_t unpacked_bytes_ = 0;  ///< ping-pong layout size of this schedule
};

}  // namespace dlsys

#endif  // DLSYS_INFER_ENGINE_H_
