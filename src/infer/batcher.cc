#include "src/infer/batcher.h"

#include <algorithm>
#include <chrono>

#include "src/core/status.h"
#include "src/obs/counters.h"

namespace dlsys {

MicroBatcher::MicroBatcher(InferenceEngine* engine,
                           const MicroBatcherConfig& config)
    : engine_(engine), config_(config) {
  DLSYS_CHECK(engine != nullptr, "MicroBatcher requires an engine");
  DLSYS_CHECK(config.max_batch >= 1, "MicroBatcher max_batch must be >= 1");
  DLSYS_CHECK(config.max_batch <= engine->max_batch(),
              "MicroBatcher max_batch exceeds the engine's compiled ceiling");
  DLSYS_CHECK(config.max_delay_ms >= 0.0,
              "MicroBatcher max_delay_ms must be non-negative");
  in_staging_ =
      Tensor({config.max_batch, engine->input_elems_per_example()});
  out_staging_ =
      Tensor({config.max_batch, engine->output_elems_per_example()});
  pending_ids_.resize(static_cast<size_t>(config.max_batch));
  pending_arrivals_.resize(static_cast<size_t>(config.max_batch));
}

int64_t MicroBatcher::Submit(const Tensor& example, double arrival_ms) {
  DLSYS_CHECK(example.size() == engine_->input_elems_per_example(),
              "MicroBatcher::Submit example size mismatch");
  DLSYS_CHECK(arrival_ms >= clock_ms_,
              "MicroBatcher clock must be monotone");
  // A pending batch whose delay budget expired *strictly before* this
  // arrival dispatches first; one expiring exactly at arrival_ms instead
  // coalesces this example, so simultaneous arrivals at one tick always
  // land in the same batch (until it fills) regardless of max_delay_ms.
  if (pending_count_ > 0 &&
      pending_arrivals_[0] + config_.max_delay_ms < arrival_ms) {
    Dispatch(pending_arrivals_[0] + config_.max_delay_ms);
  }
  clock_ms_ = arrival_ms;
  const int64_t slot = pending_count_;
  std::copy(example.data(), example.data() + example.size(),
            in_staging_.data() + slot * engine_->input_elems_per_example());
  pending_ids_[static_cast<size_t>(slot)] = next_id_;
  pending_arrivals_[static_cast<size_t>(slot)] = arrival_ms;
  ++pending_count_;
  if (pending_count_ == config_.max_batch) Dispatch(arrival_ms);
  return next_id_++;
}

void MicroBatcher::AdvanceTo(double now_ms) {
  DLSYS_CHECK(now_ms >= clock_ms_, "MicroBatcher clock must be monotone");
  clock_ms_ = now_ms;
  if (pending_count_ > 0 &&
      pending_arrivals_[0] + config_.max_delay_ms <= now_ms) {
    Dispatch(pending_arrivals_[0] + config_.max_delay_ms);
  }
}

void MicroBatcher::Flush() {
  if (pending_count_ > 0) Dispatch(clock_ms_);
}

void MicroBatcher::Dispatch(double start_ms) {
  const int64_t b = pending_count_;
  const auto t0 = std::chrono::steady_clock::now();
  const Status st =
      engine_->PredictInto(in_staging_.data(), b, out_staging_.data());
  const auto t1 = std::chrono::steady_clock::now();
  DLSYS_CHECK(st.ok(), "MicroBatcher dispatch failed");
  const double service_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  const int64_t out_elems = engine_->output_elems_per_example();
  for (int64_t i = 0; i < b; ++i) {
    Completion done;
    done.id = pending_ids_[static_cast<size_t>(i)];
    done.arrival_ms = pending_arrivals_[static_cast<size_t>(i)];
    done.start_ms = start_ms;
    done.finish_ms = start_ms + service_ms;
    done.batch_size = b;
    done.output = Tensor(engine_->example_output_shape());
    std::copy(out_staging_.data() + i * out_elems,
              out_staging_.data() + (i + 1) * out_elems, done.output.data());
    // Request latency lands in the process-wide registry so benches and
    // exporters read quantiles from one place instead of rebuilding
    // local histograms from completions.
    DLSYS_HISTOGRAM_RECORD("infer.microbatch_latency_ms",
                           done.finish_ms - done.arrival_ms);
    completions_.push_back(std::move(done));
  }
  DLSYS_COUNTER_ADD("infer.batches", 1);
  DLSYS_COUNTER_ADD("infer.requests", b);
  pending_count_ = 0;
  ++batches_run_;
  clock_ms_ = std::max(clock_ms_, start_ms);
}

}  // namespace dlsys
