#ifndef DLSYS_INFER_PASSES_H_
#define DLSYS_INFER_PASSES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/status.h"
#include "src/infer/graph.h"

/// \file passes.h
/// \brief Rewrite passes over the inference op-graph IR (src/infer/graph.h).
///
/// The pipeline runs in a fixed order at Compile time:
///
///   1. **fuse** — operator fusion. dense+bias(+relu) and conv+bias+relu
///      collapse into single fused steps dispatched through the fused
///      epilogue kernels in the src/simd tables; quantized dense epilogues
///      (bias+relu) become one pass.
///   2. **quant_elim** — quant/dequant elimination. At int8->int8 and
///      q4/q8 block boundaries the producer's epilogue quantizes its rows
///      once and the consumer reads codes+scales directly, skipping the
///      activation re-quantization pass.
///   3. **fold** — constant folding of weight-only subexpressions:
///      transpose+block-quantize of Dense weights and the BatchNorm
///      1/sqrt(var+eps) vector move from run time to compile time.
///   4. **pack** — liveness-analysis-driven arena packing. Per-tensor live
///      intervals replace the ping-pong activation pair with first-fit
///      offset assignment, so non-overlapping intermediates share storage
///      (the emitter consumes the intervals; PackLiveRanges does the
///      placement).
///
/// **Determinism contract:** every pass is bitwise-neutral in fp32 — the
/// per-element float operation sequence of the unfused schedule is
/// preserved exactly (fusion only removes intermediate stores/reloads and
/// kernel launches, folding only moves *where* identical float expressions
/// are evaluated, packing only moves *where* buffers live). Output with
/// all passes on equals output with all passes off bit for bit, at any
/// DLSYS_THREADS and under every forced ISA; tests enforce this.
///
/// Each pass is individually toggleable via EngineConfig::passes, and the
/// `DLSYS_PASSES` environment variable overrides the config (values:
/// `all`, `none`, `default`, or a comma list like `fuse,pack` naming the
/// passes to enable). An unknown spelling aborts — a forced pass list that
/// silently fell back would invalidate any conclusion drawn from the run.

namespace dlsys {

/// \brief Which rewrite passes Compile runs. Defaults to all on.
struct PassConfig {
  bool fuse = true;        ///< operator/epilogue fusion
  bool quant_elim = true;  ///< block-code pass-through at quantized edges
  bool fold = true;        ///< compile-time constant folding
  bool pack = true;        ///< liveness-packed arena layout
};

namespace infer {

/// \brief What the passes did, for counters/gauges and tests.
struct PassStats {
  int64_t fused = 0;        ///< nodes absorbed or rewritten by fusion
  int64_t quant_elided = 0; ///< activation quantize passes eliminated
  int64_t folded = 0;       ///< nodes whose weight expressions folded
};

/// \brief Parses a DLSYS_PASSES spelling into \p out. Accepts "all",
/// "none", "default", or a comma-separated subset of
/// {fuse,quant_elim,fold,pack} (named passes on, the rest off). Returns
/// InvalidArgument on an unknown token.
Status ParsePassList(const std::string& spec, PassConfig* out);

/// \brief Applies the DLSYS_PASSES environment override (if set) to
/// \p base and returns the effective config. Aborts on a malformed
/// override, mirroring DLSYS_ISA.
PassConfig ResolvePassConfig(const PassConfig& base);

/// \brief Runs the enabled rewrite passes over \p graph in pipeline
/// order, tracing one span per pass and bumping infer.pass.* counters.
/// (The pack pass only emits liveness decisions at schedule emission —
/// see PackLiveRanges — so it has no graph rewrite here.)
PassStats RunPasses(OpGraph* graph, const PassConfig& config);

/// \brief One buffer the liveness packer places: a byte size plus the
/// inclusive interval of schedule steps during which it is live.
struct LiveBuffer {
  int64_t bytes = 0;
  int begin = 0;
  int end = 0;
};

/// \brief First-fit offset assignment over live intervals: each buffer
/// (in order) lands at the lowest 64-byte-aligned offset that does not
/// collide with any already-placed buffer whose live interval overlaps
/// its own. Buffers with disjoint intervals may share bytes. Returns the
/// packed arena size; \p offsets receives one offset per buffer.
int64_t PackLiveRanges(const std::vector<LiveBuffer>& buffers,
                       std::vector<int64_t>* offsets);

}  // namespace infer
}  // namespace dlsys

#endif  // DLSYS_INFER_PASSES_H_
