#include "src/infer/graph.h"

#include <string>

#include "src/nn/conv.h"
#include "src/nn/layers.h"

namespace dlsys {
namespace infer {
namespace {

Status ShapeError(const std::string& layer, const Shape& got,
                  const std::string& want) {
  return Status::InvalidArgument("inference compile: layer '" + layer +
                                 "' cannot consume activations of shape " +
                                 ShapeToString(got) + " (expected " + want +
                                 ")");
}

}  // namespace

bool IsElementwise(OpKind kind) {
  switch (kind) {
    case OpKind::kRelu:
    case OpKind::kSigmoid:
    case OpKind::kTanh:
    case OpKind::kBatchNorm:
      return true;
    default:
      return false;
  }
}

Result<OpGraph> OpGraph::Lower(const Sequential& net,
                               const Shape& example_shape,
                               EngineNumeric numeric) {
  OpGraph g;
  g.in_shape = example_shape;
  TensorDef in_def;
  in_def.shape = example_shape;
  in_def.elems = NumElements(example_shape);
  g.tensors.push_back(in_def);
  g.input = 0;

  Shape cur = example_shape;
  int cur_tensor = g.input;

  auto new_tensor = [&](const Shape& shape) -> int {
    TensorDef def;
    def.shape = shape;
    def.elems = NumElements(shape);
    g.tensors.push_back(def);
    return static_cast<int>(g.tensors.size()) - 1;
  };

  for (int64_t li = 0; li < net.size(); ++li) {
    const Layer* layer = net.layer(li);
    OpNode node;
    node.name = layer->name();

    if (const auto* dense = dynamic_cast<const Dense*>(layer)) {
      if (cur.size() != 1 || cur[0] != dense->in_features()) {
        return ShapeError(layer->name(), cur,
                          "[" + std::to_string(dense->in_features()) + "]");
      }
      node.in_elems = dense->in_features();
      node.out_elems = dense->out_features();
      node.bias = dense->bias();
      // The fp32 weight is carried in all three numerics; constant folding
      // (or the emitted prep pass when folding is off) derives the block
      // codes for the quantized kinds.
      node.weight = dense->weight();
      node.kind = numeric == EngineNumeric::kInt8   ? OpKind::kDenseInt8
                  : numeric == EngineNumeric::kInt4 ? OpKind::kDenseInt4
                                                    : OpKind::kDense;
      cur = {node.out_elems};
    } else if (const auto* conv = dynamic_cast<const Conv2D*>(layer)) {
      if (cur.size() != 3 || cur[0] != conv->in_channels()) {
        return ShapeError(layer->name(), cur,
                          "[" + std::to_string(conv->in_channels()) +
                              ", H, W]");
      }
      node.kind = OpKind::kConv;
      node.in_ch = conv->in_channels();
      node.out_ch = conv->out_channels();
      node.kernel = conv->kernel();
      node.stride = conv->stride();
      node.pad = conv->pad();
      node.h = cur[1];
      node.w = cur[2];
      node.ho = conv->OutExtent(node.h);
      node.wo = conv->OutExtent(node.w);
      if (node.ho <= 0 || node.wo <= 0) {
        return ShapeError(layer->name(), cur,
                          "extents yielding a positive output plane");
      }
      node.weight = conv->weight();
      node.bias = conv->bias();
      node.in_elems = NumElements(cur);
      node.out_elems = node.out_ch * node.ho * node.wo;
      cur = {node.out_ch, node.ho, node.wo};
    } else if (const auto* pool = dynamic_cast<const MaxPool2D*>(layer)) {
      if (cur.size() != 3) {
        return ShapeError(layer->name(), cur, "[C, H, W]");
      }
      node.kind = OpKind::kPool;
      node.window = pool->window();
      node.in_ch = cur[0];
      node.h = cur[1];
      node.w = cur[2];
      node.ho = node.h / node.window;
      node.wo = node.w / node.window;
      if (node.ho <= 0 || node.wo <= 0) {
        return ShapeError(layer->name(), cur,
                          "extents at least one pooling window wide");
      }
      node.in_elems = NumElements(cur);
      node.out_elems = node.in_ch * node.ho * node.wo;
      cur = {node.in_ch, node.ho, node.wo};
    } else if (const auto* bn = dynamic_cast<const BatchNorm1d*>(layer)) {
      if (cur.size() != 1 || cur[0] != bn->features()) {
        return ShapeError(layer->name(), cur,
                          "[" + std::to_string(bn->features()) + "]");
      }
      node.kind = OpKind::kBatchNorm;
      node.in_elems = node.out_elems = bn->features();
      node.bn_eps = bn->epsilon();
      const int64_t f = bn->features();
      node.bn_gamma.resize(static_cast<size_t>(f));
      node.bn_beta.resize(static_cast<size_t>(f));
      node.bn_mean.resize(static_cast<size_t>(f));
      node.bn_var.resize(static_cast<size_t>(f));
      for (int64_t j = 0; j < f; ++j) {
        node.bn_gamma[static_cast<size_t>(j)] = bn->gamma()[j];
        node.bn_beta[static_cast<size_t>(j)] = bn->beta()[j];
        node.bn_mean[static_cast<size_t>(j)] = bn->running_mean()[j];
        node.bn_var[static_cast<size_t>(j)] = bn->running_var()[j];
      }
    } else if (dynamic_cast<const ReLU*>(layer) != nullptr) {
      node.kind = OpKind::kRelu;
      node.in_elems = node.out_elems = NumElements(cur);
    } else if (dynamic_cast<const Sigmoid*>(layer) != nullptr) {
      node.kind = OpKind::kSigmoid;
      node.in_elems = node.out_elems = NumElements(cur);
    } else if (dynamic_cast<const Tanh*>(layer) != nullptr) {
      node.kind = OpKind::kTanh;
      node.in_elems = node.out_elems = NumElements(cur);
    } else if (dynamic_cast<const Flatten*>(layer) != nullptr) {
      // Row-major reshape: metadata only, no node. The current tensor's
      // logical shape changes but its storage does not.
      cur = {NumElements(cur)};
      g.tensors[static_cast<size_t>(cur_tensor)].shape = cur;
      continue;
    } else if (dynamic_cast<const Dropout*>(layer) != nullptr) {
      continue;  // identity at inference
    } else {
      return Status::Unimplemented(
          "inference compile: unsupported layer '" + layer->name() + "'");
    }

    node.in_place = IsElementwise(node.kind);
    node.input = cur_tensor;
    node.output = new_tensor(cur);
    cur_tensor = node.output;
    g.nodes.push_back(std::move(node));
  }

  g.output = cur_tensor;
  g.out_shape = cur;
  g.RebuildEdges();
  return g;
}

void OpGraph::RebuildEdges() {
  for (TensorDef& t : tensors) {
    t.producer = -1;
    t.consumers.clear();
  }
  for (size_t i = 0; i < nodes.size(); ++i) {
    const OpNode& node = nodes[i];
    if (node.dead) continue;
    tensors[static_cast<size_t>(node.output)].producer = static_cast<int>(i);
    tensors[static_cast<size_t>(node.input)].consumers.push_back(
        static_cast<int>(i));
  }
}

int64_t OpGraph::live_nodes() const {
  int64_t n = 0;
  for (const OpNode& node : nodes) {
    if (!node.dead) ++n;
  }
  return n;
}

}  // namespace infer
}  // namespace dlsys
