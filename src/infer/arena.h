#ifndef DLSYS_INFER_ARENA_H_
#define DLSYS_INFER_ARENA_H_

#include <cstdint>
#include <vector>

/// \file arena.h
/// \brief Plan-once workspace allocator for the inference engine.
///
/// The tutorial's deployment section (Part 1, Section 2) treats inference
/// as a steady-state streaming workload: the model and the batch ceiling
/// are fixed at deployment time, so every intermediate buffer size is
/// known before the first request arrives. TensorArena exploits that: the
/// engine *reserves* every buffer it will ever need during compilation,
/// the arena *commits* one backing allocation, and the serving hot loop
/// then runs with zero heap traffic — no allocator locks, no fragmentation
/// drift, and stable tail latency. The Reserve/Commit split is enforced:
/// reserving after Commit is a programmer error and aborts.

namespace dlsys {

/// \brief A fixed workspace carved into buffers reserved before Commit().
///
/// Lifecycle: Reserve*() any number of times, then Commit() exactly once,
/// then resolve ids to pointers with Floats()/Int8s()/Int32s(). The
/// committed allocation is 64-byte aligned (as is every buffer within it)
/// and registered with the process-wide MemoryTracker. Not thread-safe
/// during planning; pointer resolution after Commit is const and safe to
/// share.
class TensorArena {
 public:
  /// Opaque handle to a reserved buffer.
  using BufferId = int64_t;

  TensorArena() = default;
  ~TensorArena();

  TensorArena(const TensorArena&) = delete;
  TensorArena& operator=(const TensorArena&) = delete;
  TensorArena(TensorArena&& other) noexcept;
  TensorArena& operator=(TensorArena&& other) noexcept;

  /// \brief Reserves \p count float32 elements. Aborts after Commit().
  BufferId ReserveFloats(int64_t count);
  /// \brief Reserves \p count int8 elements. Aborts after Commit().
  BufferId ReserveInt8s(int64_t count);
  /// \brief Reserves \p count int32 elements. Aborts after Commit().
  BufferId ReserveInt32s(int64_t count);

  /// \brief Places \p count floats at an explicit 64-byte-aligned byte
  /// offset with an inclusive live interval [live_begin, live_end] of
  /// schedule steps — the liveness-packed layout the pass pipeline's
  /// packer computes. Commit() cross-checks every placed pair: two
  /// buffers whose live intervals overlap must not overlap in bytes
  /// (DLSYS_CHECK abort otherwise), so a packer bug dies loudly at plan
  /// time instead of corrupting activations at serve time.
  BufferId PlaceFloats(int64_t offset_bytes, int64_t count, int live_begin,
                       int live_end);
  /// \brief Int8 variant of PlaceFloats().
  BufferId PlaceInt8s(int64_t offset_bytes, int64_t count, int live_begin,
                      int live_end);

  /// \brief Performs the single backing allocation. Call exactly once.
  void Commit();

  /// \brief True once Commit() has run.
  bool committed() const { return base_ != nullptr; }

  /// \brief Resolves a float buffer id. Aborts before Commit() or if the
  /// id was reserved with a different element type.
  float* Floats(BufferId id) const;
  /// \brief Resolves an int8 buffer id (see Floats()).
  int8_t* Int8s(BufferId id) const;
  /// \brief Resolves an int32 buffer id (see Floats()).
  int32_t* Int32s(BufferId id) const;

  /// \brief Element count of buffer \p id.
  int64_t ElementCount(BufferId id) const;
  /// \brief Total committed workspace size (0 before Commit()).
  int64_t total_bytes() const { return committed() ? total_bytes_ : 0; }
  /// \brief Number of reserved buffers.
  int64_t buffer_count() const { return static_cast<int64_t>(slots_.size()); }

 private:
  enum class ElemType { kFloat, kInt8, kInt32 };

  struct Slot {
    int64_t offset = 0;  ///< bytes from base, 64-byte aligned
    int64_t count = 0;   ///< elements
    ElemType type = ElemType::kFloat;
    bool placed = false;    ///< true for PlaceFloats/PlaceInt8s slots
    int live_begin = 0;     ///< inclusive live interval (placed slots)
    int live_end = 0;
  };

  BufferId Reserve(int64_t count, int64_t elem_bytes, ElemType type);
  BufferId Place(int64_t offset_bytes, int64_t count, int64_t elem_bytes,
                 ElemType type, int live_begin, int live_end);
  void* Resolve(BufferId id, ElemType type) const;
  void FreeStorage();

  std::vector<Slot> slots_;
  int64_t total_bytes_ = 0;  ///< running high-water mark while planning
  uint8_t* base_ = nullptr;  ///< non-null exactly when committed
};

}  // namespace dlsys

#endif  // DLSYS_INFER_ARENA_H_
