#ifndef DLSYS_INFER_GRAPH_H_
#define DLSYS_INFER_GRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/compress/quantization.h"
#include "src/core/status.h"
#include "src/nn/sequential.h"
#include "src/tensor/tensor.h"

/// \file graph.h
/// \brief Op-graph IR the inference compiler lowers a Sequential into.
///
/// Nodes are ops (with their shapes, constants, and dtype choice), edges
/// are activation tensors. `InferenceEngine::Compile` lowers the layer
/// pipeline into this IR, runs the rewrite passes in src/infer/passes.h
/// over it, and only then emits the executable schedule and the arena
/// plan. The IR is deliberately explicit rather than implicit in the
/// schedule: passes talk about producers, consumers, and tensor lifetimes,
/// none of which the old flat step list could express.
///
/// Rewrites never erase nodes in place (that would invalidate every
/// recorded node index); they mark nodes `dead` and re-route tensor
/// edges, and `RebuildEdges()` recomputes producer/consumer links over the
/// surviving nodes. The emitter simply skips dead nodes.

namespace dlsys {

/// \brief Convolution execution strategy.
enum class ConvAlgo {
  kIm2col,  ///< patch-matrix GEMM through ConvGemmBiasInto (default)
  kDirect,  ///< reference loop nest; retained for bit-comparison and bench
};

/// \brief Arithmetic used for Dense layers.
enum class EngineNumeric {
  kFp32,  ///< full float pipeline, bitwise equal to training forward
  kInt8,  ///< q8-block weights x q8-block activations, fused dequant GEMM
  kInt4,  ///< q4-block weights x q8-block activations, fused dequant GEMM
};

namespace infer {

/// \brief Operation kinds the IR distinguishes. Fusion does not add new
/// kinds; it sets rewrite flags on the surviving node, and the emitter
/// turns a flagged node into a single fused step.
enum class OpKind {
  kDense,
  kDenseInt8,
  kDenseInt4,
  kConv,
  kPool,
  kRelu,
  kSigmoid,
  kTanh,
  kBatchNorm,
};

/// \brief True for elementwise ops that may run in place on their input
/// buffer (output aliases input in the emitted plan).
bool IsElementwise(OpKind kind);

/// \brief One activation edge: per-example shape plus producer/consumer
/// links (node indices; producer -1 means the graph input).
struct TensorDef {
  Shape shape;
  int64_t elems = 0;
  int producer = -1;
  std::vector<int> consumers;
};

/// \brief One op node: kind, activation edges, constants, and the rewrite
/// flags the passes set.
struct OpNode {
  OpKind kind = OpKind::kRelu;
  std::string name;  ///< source layer name, for diagnostics
  int input = -1;    ///< tensor id
  int output = -1;   ///< tensor id
  bool in_place = false;  ///< elementwise: emitted output aliases input
  bool dead = false;      ///< removed by a rewrite; emitter skips it

  int64_t in_elems = 0;   ///< per-example input elements
  int64_t out_elems = 0;  ///< per-example output elements

  /// Constants. Quantized Dense nodes carry the fp32 weight out of
  /// lowering; the constant-folding pass turns it into qweight8/qweight4
  /// at compile time (with folding off, the emitted step re-derives the
  /// codes from `weight` on every call — bitwise the same, just slower).
  Tensor weight;  ///< dense: (in, out); conv: (oc, ic, k, k)
  Tensor bias;
  Q8BlockMatrix qweight8;
  Q4BlockMatrix qweight4;

  int64_t in_ch = 0, out_ch = 0, kernel = 0, stride = 0, pad = 0;
  int64_t h = 0, w = 0, ho = 0, wo = 0;  ///< spatial extents
  int64_t window = 0;                    ///< pooling

  /// BatchNorm inference constants. Lowering stores the raw statistics;
  /// folding precomputes bn_inv[j] = 1/sqrt(running_var+eps) — the exact
  /// float the training path (and the unfolded step) recomputes per
  /// element.
  std::vector<float> bn_gamma, bn_beta, bn_mean, bn_var, bn_inv;
  float bn_eps = 0.0f;

  // ---- rewrite flags (set by src/infer/passes.cc) ----
  bool epilogue_fused = false;  ///< bias (+relu) fused into the kernel pass
  bool relu_fused = false;      ///< a trailing ReLU folded into this node
  bool folded = false;          ///< weight-only subexpressions precomputed
  bool quant_in = false;   ///< consumes q8 codes the producer already wrote
  bool quant_out = false;  ///< epilogue emits q8 codes for the consumer
};

/// \brief The lowered op graph: a node list in execution order plus the
/// tensor table. Linear today (Sequential has one data path), but edges
/// are explicit so passes reason about adjacency rather than list order.
struct OpGraph {
  std::vector<OpNode> nodes;
  std::vector<TensorDef> tensors;
  int input = -1;   ///< graph input tensor id
  int output = -1;  ///< graph output tensor id
  Shape in_shape, out_shape;  ///< per-example shapes

  /// \brief Lowers \p net for per-example inputs of \p example_shape.
  /// Dense layers lower to the kind \p numeric selects; Flatten becomes a
  /// metadata-only reshape and Dropout disappears (inference identity).
  /// Returns InvalidArgument when shapes do not thread through, and
  /// Unimplemented for unrecognized layer types.
  static Result<OpGraph> Lower(const Sequential& net,
                               const Shape& example_shape,
                               EngineNumeric numeric);

  /// \brief Recomputes every tensor's producer/consumers from the live
  /// nodes. Call after marking nodes dead or re-routing edges.
  void RebuildEdges();

  /// \brief Number of live (non-dead) nodes.
  int64_t live_nodes() const;
};

}  // namespace infer
}  // namespace dlsys

#endif  // DLSYS_INFER_GRAPH_H_
