#include "src/infer/engine.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "src/infer/graph.h"
#include "src/infer/passes.h"
#include "src/obs/cost.h"
#include "src/obs/counters.h"
#include "src/obs/trace.h"
#include "src/runtime/runtime.h"
#include "src/tensor/int8_gemm.h"
#include "src/tensor/ops.h"

namespace dlsys {
namespace {

using infer::LiveBuffer;
using infer::OpGraph;
using infer::OpKind;
using infer::OpNode;

constexpr int64_t kEwGrain = 1 << 15;  ///< elementwise elements per range

/// Must match TensorArena's slot alignment (src/infer/arena.cc): the
/// unpacked-size accounting below mirrors what Reserve would commit.
constexpr int64_t kArenaAlign = 64;

int64_t AlignUp(int64_t v) {
  return (v + kArenaAlign - 1) / kArenaAlign * kArenaAlign;
}

bool IsQuantDense(OpKind kind) {
  return kind == OpKind::kDenseInt8 || kind == OpKind::kDenseInt4;
}

}  // namespace

Result<InferenceEngine> InferenceEngine::Compile(const Sequential& net,
                                                 const Shape& example_shape,
                                                 const EngineConfig& config) {
  if (config.max_batch < 1) {
    return Status::InvalidArgument("inference compile: max_batch must be >= 1, got " +
                                   std::to_string(config.max_batch));
  }
  if (example_shape.empty() || NumElements(example_shape) <= 0) {
    return Status::InvalidArgument(
        "inference compile: example shape must be non-empty with positive "
        "extents, got " +
        ShapeToString(example_shape));
  }

  InferenceEngine eng;
  eng.config_ = config;
  eng.passes_ = infer::ResolvePassConfig(config.passes);

  DLSYS_TRACE_SPAN("engine.compile", "compile");
  auto lowered = OpGraph::Lower(net, example_shape, config.numeric);
  if (!lowered.ok()) return lowered.status();
  eng.graph_ = std::move(lowered).value();
  eng.stats_ = infer::RunPasses(&eng.graph_, eng.passes_);
  eng.PlanAndEmit();

  DLSYS_GAUGE_SET("infer.workspace_bytes", eng.arena_.total_bytes());
  DLSYS_GAUGE_SET("infer.graph.nodes", eng.graph_.live_nodes());
  DLSYS_GAUGE_SET("infer.graph.fused", eng.stats_.fused);
  return eng;
}

void InferenceEngine::PlanAndEmit() {
  const OpGraph& g = graph_;
  const int64_t kMaxB = config_.max_batch;
  in_shape_ = g.in_shape;
  out_shape_ = g.out_shape;
  in_elems_ = NumElements(g.in_shape);
  out_elems_ = NumElements(g.out_shape);

  // ---- schedule order (live nodes, lowering order) --------------------
  std::vector<int> order;
  std::vector<int> node_step(g.nodes.size(), -1);
  for (size_t i = 0; i < g.nodes.size(); ++i) {
    if (g.nodes[i].dead) continue;
    node_step[i] = static_cast<int>(order.size());
    order.push_back(static_cast<int>(i));
  }
  const int num_steps = static_cast<int>(order.size());

  // ---- activation alias groups + ping-pong slots ----------------------
  //
  // In-place (elementwise) nodes write into their input's storage, so
  // their input and output tensors share one buffer: an alias group. The
  // group is also what carries a ping-pong slot (0/1) for the pack-off
  // layout, and a live interval [first def, last use] for the packed one.
  const size_t num_tensors = g.tensors.size();
  std::vector<int> group(num_tensors, -1);
  std::vector<int> slot(num_tensors, -1);
  int num_groups = 0;
  group[static_cast<size_t>(g.input)] = num_groups++;
  slot[static_cast<size_t>(g.input)] = 0;
  for (const int ni : order) {
    const OpNode& node = g.nodes[static_cast<size_t>(ni)];
    const size_t tin = static_cast<size_t>(node.input);
    const size_t tout = static_cast<size_t>(node.output);
    if (node.in_place) {
      group[tout] = group[tin];
      slot[tout] = slot[tin];
    } else {
      group[tout] = num_groups++;
      slot[tout] = 1 - slot[tin];
    }
  }

  std::vector<int64_t> group_elems(static_cast<size_t>(num_groups), 0);
  std::vector<int> group_begin(static_cast<size_t>(num_groups), num_steps);
  std::vector<int> group_end(static_cast<size_t>(num_groups), 0);
  for (size_t t = 0; t < num_tensors; ++t) {
    if (group[t] < 0) continue;  // orphaned by a rewrite
    const size_t gi = static_cast<size_t>(group[t]);
    group_elems[gi] = std::max(group_elems[gi], g.tensors[t].elems);
  }
  group_begin[static_cast<size_t>(group[static_cast<size_t>(g.input)])] = 0;
  for (int p = 0; p < num_steps; ++p) {
    const OpNode& node = g.nodes[static_cast<size_t>(order[static_cast<size_t>(p)])];
    const size_t gin = static_cast<size_t>(group[static_cast<size_t>(node.input)]);
    const size_t gout = static_cast<size_t>(group[static_cast<size_t>(node.output)]);
    group_begin[gout] = std::min(group_begin[gout], p);
    group_end[gin] = std::max(group_end[gin], p);
    group_end[gout] = std::max(group_end[gout], p);
  }
  // The output group survives past the last step for the copy-out.
  const size_t out_group =
      static_cast<size_t>(group[static_cast<size_t>(g.output)]);
  group_end[out_group] = num_steps;
  group_begin[out_group] = std::min(group_begin[out_group], num_steps);

  // ---- steps + scratch requests ---------------------------------------
  //
  // Scratch buffers (im2col patches, activation codes, fold-off weight
  // prep) are requested with live intervals; how they are satisfied
  // depends on the pack pass. Fields name the Step member to bind.
  enum ScratchField {
    kIm2col,
    kQinVals,
    kQinScales,
    kQoutVals,
    kQoutScales,
    kWt,
    kWVals,
    kWScales,
  };
  struct ScratchReq {
    size_t step;
    ScratchField field;
    bool floats;
    int64_t count;
    int begin;
    int end;
  };
  std::vector<ScratchReq> scratch;

  steps_.clear();
  steps_.reserve(static_cast<size_t>(num_steps));
  for (int p = 0; p < num_steps; ++p) {
    const int ni = order[static_cast<size_t>(p)];
    const OpNode& node = g.nodes[static_cast<size_t>(ni)];
    Step step;
    step.node = ni;

    if (node.kind == OpKind::kConv && config_.conv_algo == ConvAlgo::kIm2col) {
      const int64_t patch =
          node.ho * node.wo * node.in_ch * node.kernel * node.kernel;
      scratch.push_back(
          {static_cast<size_t>(p), kIm2col, true, patch, p, p});
    }
    if (IsQuantDense(node.kind)) {
      const int64_t kp_in = PadToQuantBlock(node.in_elems);
      if (!node.quant_in) {
        scratch.push_back({static_cast<size_t>(p), kQinVals, false,
                           kp_in * kMaxB, p, p});
        scratch.push_back({static_cast<size_t>(p), kQinScales, true,
                           (kp_in / kQuantBlock) * kMaxB, p, p});
      }
      if (node.quant_out) {
        // Live until the (sole) consumer's step reads the codes.
        const int consumer =
            g.tensors[static_cast<size_t>(node.output)].consumers[0];
        const int cpos = node_step[static_cast<size_t>(consumer)];
        const int64_t kp_out = PadToQuantBlock(node.out_elems);
        scratch.push_back({static_cast<size_t>(p), kQoutVals, false,
                           kp_out * kMaxB, p, cpos});
        scratch.push_back({static_cast<size_t>(p), kQoutScales, true,
                           (kp_out / kQuantBlock) * kMaxB, p, cpos});
      }
      if (!node.folded) {
        // Constant folding off: the step re-derives transposed block
        // codes from the fp32 weight on every call, allocation-free.
        scratch.push_back({static_cast<size_t>(p), kWt, true,
                           node.in_elems * node.out_elems, p, p});
        const int64_t code_bytes =
            node.kind == OpKind::kDenseInt8
                ? node.out_elems * kp_in
                : node.out_elems * (kp_in / 2);  // nibble-packed q4
        scratch.push_back({static_cast<size_t>(p), kWVals, false, code_bytes,
                           p, p});
        scratch.push_back({static_cast<size_t>(p), kWScales, true,
                           node.out_elems * (kp_in / kQuantBlock), p, p});
      }
    }

    // Fixed trace/cost plan: FLOPs from the node's arithmetic, bytes from
    // the activations it reads/writes plus resident parameters, scaled by
    // the batch at run time.
    int64_t param_elems =
        node.weight.size() + node.bias.size() +
        (node.qweight8.PackedBytes() + node.qweight4.PackedBytes() + 3) / 4;
    switch (node.kind) {
      case OpKind::kDense:
        step.trace_name =
            node.relu_fused ? "engine.dense_relu" : "engine.dense";
        step.flops_per_example = 2 * node.in_elems * node.out_elems;
        break;
      case OpKind::kDenseInt8:
        step.trace_name =
            node.relu_fused ? "engine.dense_int8_relu" : "engine.dense_int8";
        step.flops_per_example = 2 * node.in_elems * node.out_elems;
        break;
      case OpKind::kDenseInt4:
        step.trace_name =
            node.relu_fused ? "engine.dense_int4_relu" : "engine.dense_int4";
        step.flops_per_example = 2 * node.in_elems * node.out_elems;
        break;
      case OpKind::kConv:
        step.trace_name =
            node.relu_fused ? "engine.conv_relu" : "engine.conv";
        step.flops_per_example =
            2 * node.out_elems * node.in_ch * node.kernel * node.kernel;
        break;
      case OpKind::kPool:
        step.trace_name = "engine.pool";
        step.flops_per_example = node.out_elems * node.window * node.window;
        break;
      case OpKind::kRelu:
        step.trace_name = "engine.relu";
        step.flops_per_example = node.in_elems;
        break;
      case OpKind::kSigmoid:
        step.trace_name = "engine.sigmoid";
        step.flops_per_example = 4 * node.in_elems;
        break;
      case OpKind::kTanh:
        step.trace_name = "engine.tanh";
        step.flops_per_example = 4 * node.in_elems;
        break;
      case OpKind::kBatchNorm:
        step.trace_name = "engine.batchnorm";
        step.flops_per_example = 4 * node.in_elems;
        param_elems += 4 * node.in_elems;
        break;
    }
    if (node.relu_fused) step.flops_per_example += node.out_elems;
    step.bytes_per_example =
        4 * (node.in_elems + node.out_elems + param_elems);
    steps_.push_back(step);
  }

  // ---- shared (ping-pong) sizing --------------------------------------
  //
  // The pack-off layout of this exact schedule: two max-sized activation
  // buffers plus one shared buffer per scratch family. Computed always so
  // unpacked_workspace_bytes() reports the before/after pair.
  int64_t max_act = in_elems_;
  for (int gi = 0; gi < num_groups; ++gi) {
    max_act = std::max(max_act, group_elems[static_cast<size_t>(gi)]);
  }
  int64_t shared_max[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  for (const ScratchReq& req : scratch) {
    // qout shares the activation-code buffer with qin in the ping-pong
    // layout (the ParallelFor barrier between a GEMM and its epilogue
    // makes the overwrite safe).
    const int fam = req.field == kQoutVals     ? kQinVals
                    : req.field == kQoutScales ? kQinScales
                                               : req.field;
    shared_max[fam] = std::max(shared_max[fam], req.count);
  }
  unpacked_bytes_ = 2 * AlignUp(4 * max_act * kMaxB);
  for (int fam = 0; fam < 8; ++fam) {
    if (shared_max[fam] == 0) continue;
    const bool floats = fam == kIm2col || fam == kQinScales ||
                        fam == kQoutScales || fam == kWt || fam == kWScales;
    unpacked_bytes_ += AlignUp(shared_max[fam] * (floats ? 4 : 1));
  }
  unpacked_bytes_ = std::max<int64_t>(unpacked_bytes_, kArenaAlign);

  auto bind = [&](Step* step, ScratchField field, TensorArena::BufferId id) {
    switch (field) {
      case kIm2col:
        step->im2col = id;
        return;
      case kQinVals:
        step->qin_vals = id;
        return;
      case kQinScales:
        step->qin_scales = id;
        return;
      case kQoutVals:
        step->qout_vals = id;
        return;
      case kQoutScales:
        step->qout_scales = id;
        return;
      case kWt:
        step->wt = id;
        return;
      case kWVals:
        step->wvals = id;
        return;
      case kWScales:
        step->wscales = id;
    }
  };

  std::vector<TensorArena::BufferId> group_buf(
      static_cast<size_t>(num_groups), -1);
  if (passes_.pack) {
    // Liveness-packed layout: first-fit offsets over per-buffer live
    // intervals; disjoint lifetimes share bytes. Commit() cross-checks
    // every placed pair, so a packer bug aborts at plan time.
    DLSYS_TRACE_SPAN("infer.pass.pack", "compile");
    std::vector<LiveBuffer> buffers;
    buffers.reserve(static_cast<size_t>(num_groups) + scratch.size());
    for (int gi = 0; gi < num_groups; ++gi) {
      buffers.push_back(
          LiveBuffer{4 * group_elems[static_cast<size_t>(gi)] * kMaxB,
                     group_begin[static_cast<size_t>(gi)],
                     group_end[static_cast<size_t>(gi)]});
    }
    for (const ScratchReq& req : scratch) {
      buffers.push_back(LiveBuffer{req.count * (req.floats ? 4 : 1),
                                   req.begin, req.end});
    }
    std::vector<int64_t> offsets;
    const int64_t packed_bytes = infer::PackLiveRanges(buffers, &offsets);
    DLSYS_COUNTER_ADD("infer.pass.pack.buffers",
                      static_cast<int64_t>(buffers.size()));
    (void)packed_bytes;  // the arena recomputes the same total from places
    for (int gi = 0; gi < num_groups; ++gi) {
      group_buf[static_cast<size_t>(gi)] = arena_.PlaceFloats(
          offsets[static_cast<size_t>(gi)],
          group_elems[static_cast<size_t>(gi)] * kMaxB,
          group_begin[static_cast<size_t>(gi)],
          group_end[static_cast<size_t>(gi)]);
    }
    for (size_t s = 0; s < scratch.size(); ++s) {
      const ScratchReq& req = scratch[s];
      const int64_t off = offsets[static_cast<size_t>(num_groups) + s];
      const TensorArena::BufferId id =
          req.floats
              ? arena_.PlaceFloats(off, req.count, req.begin, req.end)
              : arena_.PlaceInt8s(off, req.count, req.begin, req.end);
      bind(&steps_[req.step], req.field, id);
    }
  } else {
    // Ping-pong layout: the pre-pass-pipeline plan. Non-in-place steps
    // flip between two max-sized activation buffers; scratch families
    // share one max-sized buffer each.
    const TensorArena::BufferId act0 = arena_.ReserveFloats(max_act * kMaxB);
    const TensorArena::BufferId act1 = arena_.ReserveFloats(max_act * kMaxB);
    for (size_t t = 0; t < num_tensors; ++t) {
      if (group[t] < 0) continue;
      group_buf[static_cast<size_t>(group[t])] = slot[t] == 0 ? act0 : act1;
    }
    TensorArena::BufferId shared[8] = {-1, -1, -1, -1, -1, -1, -1, -1};
    for (int fam = 0; fam < 8; ++fam) {
      if (shared_max[fam] == 0) continue;
      const bool floats = fam == kIm2col || fam == kQinScales ||
                          fam == kQoutScales || fam == kWt || fam == kWScales;
      shared[fam] = floats ? arena_.ReserveFloats(shared_max[fam])
                           : arena_.ReserveInt8s(shared_max[fam]);
    }
    for (const ScratchReq& req : scratch) {
      const int fam = req.field == kQoutVals     ? kQinVals
                      : req.field == kQoutScales ? kQinScales
                                                 : req.field;
      bind(&steps_[req.step], req.field, shared[fam]);
    }
  }

  // Bind activation buffers, then wire quant_in steps to their producer's
  // qout codes (identical ids in the ping-pong layout; distinct placed
  // buffers in the packed one).
  for (size_t s = 0; s < steps_.size(); ++s) {
    const OpNode& node = g.nodes[static_cast<size_t>(steps_[s].node)];
    steps_[s].in =
        group_buf[static_cast<size_t>(group[static_cast<size_t>(node.input)])];
    steps_[s].out = group_buf[static_cast<size_t>(
        group[static_cast<size_t>(node.output)])];
    if (node.quant_in) {
      const int producer =
          g.tensors[static_cast<size_t>(node.input)].producer;
      const Step& src = steps_[static_cast<size_t>(
          node_step[static_cast<size_t>(producer)])];
      steps_[s].qin_vals = src.qout_vals;
      steps_[s].qin_scales = src.qout_scales;
    }
  }

  input_buf_ =
      group_buf[static_cast<size_t>(group[static_cast<size_t>(g.input)])];
  output_buf_ = group_buf[out_group];
  arena_.Commit();
}

Result<Tensor> InferenceEngine::Predict(const Tensor& batch) {
  if (batch.rank() != static_cast<int64_t>(in_shape_.size()) + 1) {
    return Status::InvalidArgument(
        "Predict: batch rank " + std::to_string(batch.rank()) +
        " does not match compiled example shape " + ShapeToString(in_shape_));
  }
  for (size_t d = 0; d < in_shape_.size(); ++d) {
    if (batch.dim(static_cast<int64_t>(d) + 1) != in_shape_[d]) {
      return Status::InvalidArgument(
          "Predict: batch shape " + ShapeToString(batch.shape()) +
          " does not match compiled example shape " +
          ShapeToString(in_shape_));
    }
  }
  const int64_t b = batch.dim(0);
  Shape out_shape;
  out_shape.reserve(out_shape_.size() + 1);
  out_shape.push_back(b);
  out_shape.insert(out_shape.end(), out_shape_.begin(), out_shape_.end());
  Tensor out(std::move(out_shape));
  DLSYS_RETURN_NOT_OK(PredictInto(batch.data(), b, out.data()));
  return out;
}

Status InferenceEngine::PredictInto(const float* batch, int64_t batch_size,
                                    float* out) {
  if (batch == nullptr || out == nullptr) {
    return Status::InvalidArgument("PredictInto: null buffer");
  }
  if (batch_size < 1 || batch_size > config_.max_batch) {
    return Status::InvalidArgument(
        "PredictInto: batch size " + std::to_string(batch_size) +
        " outside [1, " + std::to_string(config_.max_batch) +
        "] declared at compile time");
  }
  DLSYS_PHASE_SCOPE(obs::Phase::kServe);
  DLSYS_TRACE_SPAN_COST("engine.predict", "serve", 0,
                        4 * batch_size * (in_elems_ + out_elems_));
  std::copy(batch, batch + batch_size * in_elems_, arena_.Floats(input_buf_));
  for (const Step& step : steps_) {
    DLSYS_TRACE_SPAN_COST(step.trace_name, "serve",
                          batch_size * step.flops_per_example,
                          batch_size * step.bytes_per_example);
    RunStep(step, batch_size);
  }
  const float* result = arena_.Floats(output_buf_);
  std::copy(result, result + batch_size * out_elems_, out);
  return Status::OK();
}

void InferenceEngine::RunStep(const Step& step, int64_t batch) const {
  const OpNode& node = graph_.nodes[static_cast<size_t>(step.node)];
  const float* in = arena_.Floats(step.in);
  float* out = arena_.Floats(step.out);
  switch (node.kind) {
    case OpKind::kDense: {
      const int64_t in_f = node.in_elems, out_f = node.out_elems;
      const float* pb = node.bias.data();
      if (node.epilogue_fused) {
        // Fusion pass on: bias (+ absorbed relu) runs in the GEMM range
        // kernel's epilogue — same float ops, fewer output passes.
        MatMulBiasActInto(in, node.weight.data(), pb, out, batch, in_f,
                          out_f, node.relu_fused);
        return;
      }
      MatMulInto(in, node.weight.data(), out, batch, in_f, out_f);
      ParallelFor(0, batch, 8, [=](int64_t r0, int64_t r1) {
        for (int64_t i = r0; i < r1; ++i) {
          float* row = out + i * out_f;
          for (int64_t j = 0; j < out_f; ++j) row[j] += pb[j];
        }
      });
      return;
    }
    case OpKind::kDenseInt8:
    case OpKind::kDenseInt4: {
      const int64_t in_f = node.in_elems, out_f = node.out_elems;
      const int64_t kp = PadToQuantBlock(in_f);
      // Weight codes: folded at compile time, or re-derived here from the
      // fp32 weight (transpose + block-quantize into arena scratch —
      // identical codes, recomputed every call).
      const int8_t* wv8 = nullptr;
      const uint8_t* wv4 = nullptr;
      const float* ws = nullptr;
      if (node.folded) {
        if (node.kind == OpKind::kDenseInt8) {
          wv8 = node.qweight8.values.data();
          ws = node.qweight8.scales.data();
        } else {
          wv4 = node.qweight4.values.data();
          ws = node.qweight4.scales.data();
        }
      } else {
        const float* w = node.weight.data();
        float* wt = arena_.Floats(step.wt);
        ParallelFor(0, out_f, 8, [=](int64_t o0, int64_t o1) {
          for (int64_t o = o0; o < o1; ++o) {
            float* trow = wt + o * in_f;
            for (int64_t i = 0; i < in_f; ++i) trow[i] = w[i * out_f + o];
          }
        });
        float* wscales = arena_.Floats(step.wscales);
        if (node.kind == OpKind::kDenseInt8) {
          int8_t* wvals = arena_.Int8s(step.wvals);
          Q8BlockQuantizeRowsInto(wt, out_f, in_f, wvals, wscales);
          wv8 = wvals;
        } else {
          uint8_t* wvals = reinterpret_cast<uint8_t*>(arena_.Int8s(step.wvals));
          Q4BlockQuantizeRowsInto(wt, out_f, in_f, wvals, wscales);
          wv4 = wvals;
        }
        ws = wscales;
      }
      // Input codes: the quant-elimination pass hands the producer's q8
      // codes straight through; otherwise quantize the fp32 batch here.
      const int8_t* qv;
      const float* qs;
      if (node.quant_in) {
        qv = arena_.Int8s(step.qin_vals);
        qs = arena_.Floats(step.qin_scales);
      } else {
        int8_t* qv_mut = arena_.Int8s(step.qin_vals);
        float* qs_mut = arena_.Floats(step.qin_scales);
        Q8BlockQuantizeRowsInto(in, batch, in_f, qv_mut, qs_mut);
        qv = qv_mut;
        qs = qs_mut;
      }
      if (node.kind == OpKind::kDenseInt8) {
        Q8BlockGemmTransBInto(qv, qs, wv8, ws, out, batch, kp, out_f);
      } else {
        Q4BlockGemmTransBInto(qv, qs, wv4, ws, out, batch, kp, out_f);
      }
      // Epilogue: bias, absorbed relu, and (under quant elimination) the
      // row quantization the consumer would otherwise redo. The GEMM's
      // ParallelFor join above guarantees the input codes are fully
      // consumed before a shared code buffer is overwritten.
      const float* pb = node.bias.data();
      const bool relu = node.relu_fused;
      int8_t* oqv =
          node.quant_out ? arena_.Int8s(step.qout_vals) : nullptr;
      float* oqs =
          node.quant_out ? arena_.Floats(step.qout_scales) : nullptr;
      const int64_t kp_out = PadToQuantBlock(out_f);
      if (node.epilogue_fused) {
        ParallelFor(0, batch, 8, [=](int64_t r0, int64_t r1) {
          for (int64_t i = r0; i < r1; ++i) {
            float* row = out + i * out_f;
            for (int64_t j = 0; j < out_f; ++j) {
              const float v = row[j] + pb[j];
              row[j] = relu ? (v > 0.0f ? v : 0.0f) : v;
            }
            if (oqv != nullptr) {
              Q8BlockQuantizeRowInto(row, out_f, oqv + i * kp_out,
                                     oqs + i * (kp_out / kQuantBlock));
            }
          }
        });
        return;
      }
      ParallelFor(0, batch, 8, [=](int64_t r0, int64_t r1) {
        for (int64_t i = r0; i < r1; ++i) {
          float* row = out + i * out_f;
          for (int64_t j = 0; j < out_f; ++j) row[j] += pb[j];
        }
      });
      if (oqv != nullptr) {
        ParallelFor(0, batch, 8, [=](int64_t r0, int64_t r1) {
          for (int64_t i = r0; i < r1; ++i) {
            Q8BlockQuantizeRowInto(out + i * out_f, out_f, oqv + i * kp_out,
                                   oqs + i * (kp_out / kQuantBlock));
          }
        });
      }
      return;
    }
    case OpKind::kRelu: {
      ParallelFor(0, batch * node.in_elems, kEwGrain,
                  [=](int64_t lo, int64_t hi) {
                    for (int64_t i = lo; i < hi; ++i) {
                      out[i] = in[i] > 0.0f ? in[i] : 0.0f;
                    }
                  });
      return;
    }
    case OpKind::kSigmoid: {
      ParallelFor(0, batch * node.in_elems, kEwGrain,
                  [=](int64_t lo, int64_t hi) {
                    for (int64_t i = lo; i < hi; ++i) {
                      out[i] = 1.0f / (1.0f + std::exp(-in[i]));
                    }
                  });
      return;
    }
    case OpKind::kTanh: {
      ParallelFor(0, batch * node.in_elems, kEwGrain,
                  [=](int64_t lo, int64_t hi) {
                    for (int64_t i = lo; i < hi; ++i) {
                      out[i] = std::tanh(in[i]);
                    }
                  });
      return;
    }
    case OpKind::kBatchNorm: {
      const int64_t f = node.in_elems;
      const float* gamma = node.bn_gamma.data();
      const float* bt = node.bn_beta.data();
      const float* mu = node.bn_mean.data();
      if (node.folded) {
        const float* inv = node.bn_inv.data();
        ParallelFor(0, batch, 8, [=](int64_t r0, int64_t r1) {
          for (int64_t i = r0; i < r1; ++i) {
            const float* xrow = in + i * f;
            float* yrow = out + i * f;
            for (int64_t j = 0; j < f; ++j) {
              yrow[j] = gamma[j] * (xrow[j] - mu[j]) * inv[j] + bt[j];
            }
          }
        });
        return;
      }
      // Folding off: recompute 1/sqrt(var+eps) per element — the exact
      // float the folded path precomputed, so results are identical.
      const float* var = node.bn_var.data();
      const float eps = node.bn_eps;
      ParallelFor(0, batch, 8, [=](int64_t r0, int64_t r1) {
        for (int64_t i = r0; i < r1; ++i) {
          const float* xrow = in + i * f;
          float* yrow = out + i * f;
          for (int64_t j = 0; j < f; ++j) {
            yrow[j] = gamma[j] * (xrow[j] - mu[j]) *
                          (1.0f / std::sqrt(var[j] + eps)) +
                      bt[j];
          }
        }
      });
      return;
    }
    case OpKind::kPool: {
      const int64_t c = node.in_ch, h = node.h, w = node.w;
      const int64_t ho = node.ho, wo = node.wo, window = node.window;
      ParallelFor(0, batch * c, 1, [=](int64_t t0, int64_t t1) {
        for (int64_t t = t0; t < t1; ++t) {
          const float* xplane = in + t * h * w;
          float* yplane = out + t * ho * wo;
          for (int64_t oy = 0; oy < ho; ++oy) {
            for (int64_t ox = 0; ox < wo; ++ox) {
              float best = -std::numeric_limits<float>::infinity();
              for (int64_t ky = 0; ky < window; ++ky) {
                const float* xrow =
                    xplane + (oy * window + ky) * w + ox * window;
                for (int64_t kx = 0; kx < window; ++kx) {
                  if (xrow[kx] > best) best = xrow[kx];
                }
              }
              yplane[oy * wo + ox] = best;
            }
          }
        }
      });
      return;
    }
    case OpKind::kConv: {
      const int64_t ic = node.in_ch, oc = node.out_ch;
      const int64_t kernel = node.kernel, stride = node.stride,
                    pad = node.pad;
      const int64_t h = node.h, w = node.w, ho = node.ho, wo = node.wo;
      const float* pw = node.weight.data();
      const float* pb = node.bias.data();
      const bool relu = node.relu_fused;
      if (config_.conv_algo == ConvAlgo::kIm2col) {
        const int64_t kk = ic * kernel * kernel;  // patch width
        const int64_t positions = ho * wo;
        float* patches = arena_.Floats(step.im2col);
        for (int64_t img = 0; img < batch; ++img) {
          const float* xin = in + img * ic * h * w;
          // Patch layout: row = output position, columns in (ic, ky, kx)
          // order — the direct nest's term order — with out-of-image taps
          // zero-filled.
          ParallelFor(0, positions, 16, [=](int64_t p0, int64_t p1) {
            for (int64_t pos = p0; pos < p1; ++pos) {
              const int64_t oy = pos / wo, ox = pos % wo;
              const int64_t iy0 = oy * stride - pad;
              const int64_t ix0 = ox * stride - pad;
              float* prow = patches + pos * kk;
              int64_t q = 0;
              for (int64_t cc = 0; cc < ic; ++cc) {
                const float* xplane = xin + cc * h * w;
                for (int64_t ky = 0; ky < kernel; ++ky) {
                  const int64_t iy = iy0 + ky;
                  for (int64_t kx = 0; kx < kernel; ++kx, ++q) {
                    const int64_t ix = ix0 + kx;
                    prow[q] = (iy >= 0 && iy < h && ix >= 0 && ix < w)
                                  ? xplane[iy * w + ix]
                                  : 0.0f;
                  }
                }
              }
            }
          });
          if (relu) {
            // Fusion pass on: the absorbed ReLU runs in the conv GEMM's
            // column epilogue instead of as a separate output pass.
            ConvGemmBiasActInto(pw, patches, pb, out + img * oc * positions,
                                oc, kk, positions, true);
          } else {
            ConvGemmBiasInto(pw, patches, pb, out + img * oc * positions,
                             oc, kk, positions);
          }
        }
      } else {
        // Direct reference: the plain clipped loop nest, one worker per
        // (image, out-channel) plane. The GEMM path's FLOPs are counted
        // inside ConvGemmBiasInto; the direct nest counts its own here.
        DLSYS_COST_FLOPS(batch * step.flops_per_example);
        ParallelFor(0, batch * oc, 1, [=](int64_t t0, int64_t t1) {
          for (int64_t t = t0; t < t1; ++t) {
            const int64_t img = t / oc;
            const int64_t o = t % oc;
            const float* xin = in + img * ic * h * w;
            const float* wbase = pw + o * ic * kernel * kernel;
            float* yplane = out + (img * oc + o) * ho * wo;
            for (int64_t oy = 0; oy < ho; ++oy) {
              const int64_t iy0 = oy * stride - pad;
              for (int64_t ox = 0; ox < wo; ++ox) {
                const int64_t ix0 = ox * stride - pad;
                double acc = pb[o];
                for (int64_t cc = 0; cc < ic; ++cc) {
                  const float* xplane = xin + cc * h * w;
                  const float* wplane = wbase + cc * kernel * kernel;
                  for (int64_t ky = 0; ky < kernel; ++ky) {
                    const int64_t iy = iy0 + ky;
                    if (iy < 0 || iy >= h) continue;
                    for (int64_t kx = 0; kx < kernel; ++kx) {
                      const int64_t ix = ix0 + kx;
                      if (ix < 0 || ix >= w) continue;
                      acc += xplane[iy * w + ix] * wplane[ky * kernel + kx];
                    }
                  }
                }
                const float v = static_cast<float>(acc);
                yplane[oy * wo + ox] = relu ? (v > 0.0f ? v : 0.0f) : v;
              }
            }
          }
        });
      }
      return;
    }
  }
}

}  // namespace dlsys
