#include "src/infer/engine.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "src/nn/conv.h"
#include "src/obs/cost.h"
#include "src/obs/trace.h"
#include "src/nn/layers.h"
#include "src/runtime/runtime.h"
#include "src/tensor/int8_gemm.h"
#include "src/tensor/ops.h"

namespace dlsys {
namespace {

constexpr int64_t kEwGrain = 1 << 15;  ///< elementwise elements per range

Status ShapeError(const std::string& layer, const Shape& got,
                  const std::string& want) {
  return Status::InvalidArgument("inference compile: layer '" + layer +
                                 "' cannot consume activations of shape " +
                                 ShapeToString(got) + " (expected " + want +
                                 ")");
}

}  // namespace

Result<InferenceEngine> InferenceEngine::Compile(const Sequential& net,
                                                 const Shape& example_shape,
                                                 const EngineConfig& config) {
  if (config.max_batch < 1) {
    return Status::InvalidArgument("inference compile: max_batch must be >= 1, got " +
                                   std::to_string(config.max_batch));
  }
  if (example_shape.empty() || NumElements(example_shape) <= 0) {
    return Status::InvalidArgument(
        "inference compile: example shape must be non-empty with positive "
        "extents, got " +
        ShapeToString(example_shape));
  }

  InferenceEngine eng;
  eng.config_ = config;
  eng.in_shape_ = example_shape;
  eng.in_elems_ = NumElements(example_shape);

  Shape cur = example_shape;
  int cur_buf = 0;
  int64_t max_act = eng.in_elems_;
  int64_t max_patch = 0;  // im2col scratch floats (per image)
  int64_t max_qin = 0;    // widest 32-padded quantized Dense input

  for (int64_t li = 0; li < net.size(); ++li) {
    const Layer* layer = net.layer(li);
    Step step;

    if (const auto* dense = dynamic_cast<const Dense*>(layer)) {
      if (cur.size() != 1 || cur[0] != dense->in_features()) {
        return ShapeError(layer->name(), cur,
                          "[" + std::to_string(dense->in_features()) + "]");
      }
      step.in_elems = dense->in_features();
      step.out_elems = dense->out_features();
      step.bias = dense->bias();
      if (config.numeric == EngineNumeric::kInt8) {
        step.kind = Step::Kind::kDenseInt8;
        // Weights quantize once here, per 32-element block of each output
        // feature's row: rows of W^T, q8 codes.
        step.qweight8 = Q8BlockQuantizeRows(Transpose(dense->weight()));
        max_qin = std::max(max_qin, PadToQuantBlock(step.in_elems));
      } else if (config.numeric == EngineNumeric::kInt4) {
        step.kind = Step::Kind::kDenseInt4;
        step.qweight4 = Q4BlockQuantizeRows(Transpose(dense->weight()));
        max_qin = std::max(max_qin, PadToQuantBlock(step.in_elems));
      } else {
        step.kind = Step::Kind::kDense;
        step.weight = dense->weight();
      }
      step.in_buf = cur_buf;
      step.out_buf = 1 - cur_buf;
      cur_buf = step.out_buf;
      cur = {step.out_elems};
    } else if (const auto* conv = dynamic_cast<const Conv2D*>(layer)) {
      if (cur.size() != 3 || cur[0] != conv->in_channels()) {
        return ShapeError(layer->name(), cur,
                          "[" + std::to_string(conv->in_channels()) +
                              ", H, W]");
      }
      step.kind = Step::Kind::kConv;
      step.in_ch = conv->in_channels();
      step.out_ch = conv->out_channels();
      step.kernel = conv->kernel();
      step.stride = conv->stride();
      step.pad = conv->pad();
      step.h = cur[1];
      step.w = cur[2];
      step.ho = conv->OutExtent(step.h);
      step.wo = conv->OutExtent(step.w);
      if (step.ho <= 0 || step.wo <= 0) {
        return ShapeError(layer->name(), cur,
                          "extents yielding a positive output plane");
      }
      step.weight = conv->weight();
      step.bias = conv->bias();
      step.in_elems = NumElements(cur);
      step.out_elems = step.out_ch * step.ho * step.wo;
      if (config.conv_algo == ConvAlgo::kIm2col) {
        max_patch = std::max(max_patch, step.ho * step.wo * step.in_ch *
                                            step.kernel * step.kernel);
      }
      step.in_buf = cur_buf;
      step.out_buf = 1 - cur_buf;
      cur_buf = step.out_buf;
      cur = {step.out_ch, step.ho, step.wo};
    } else if (const auto* pool = dynamic_cast<const MaxPool2D*>(layer)) {
      if (cur.size() != 3) {
        return ShapeError(layer->name(), cur, "[C, H, W]");
      }
      step.kind = Step::Kind::kPool;
      step.window = pool->window();
      step.in_ch = cur[0];
      step.h = cur[1];
      step.w = cur[2];
      step.ho = step.h / step.window;
      step.wo = step.w / step.window;
      if (step.ho <= 0 || step.wo <= 0) {
        return ShapeError(layer->name(), cur,
                          "extents at least one pooling window wide");
      }
      step.in_elems = NumElements(cur);
      step.out_elems = step.in_ch * step.ho * step.wo;
      step.in_buf = cur_buf;
      step.out_buf = 1 - cur_buf;
      cur_buf = step.out_buf;
      cur = {step.in_ch, step.ho, step.wo};
    } else if (const auto* bn = dynamic_cast<const BatchNorm1d*>(layer)) {
      if (cur.size() != 1 || cur[0] != bn->features()) {
        return ShapeError(layer->name(), cur,
                          "[" + std::to_string(bn->features()) + "]");
      }
      step.kind = Step::Kind::kBatchNorm;
      step.in_elems = step.out_elems = bn->features();
      const int64_t f = bn->features();
      step.bn_gamma.resize(static_cast<size_t>(f));
      step.bn_beta.resize(static_cast<size_t>(f));
      step.bn_mean.resize(static_cast<size_t>(f));
      step.bn_inv.resize(static_cast<size_t>(f));
      for (int64_t j = 0; j < f; ++j) {
        step.bn_gamma[static_cast<size_t>(j)] = bn->gamma()[j];
        step.bn_beta[static_cast<size_t>(j)] = bn->beta()[j];
        step.bn_mean[static_cast<size_t>(j)] = bn->running_mean()[j];
        // The exact float value the training path recomputes per element.
        step.bn_inv[static_cast<size_t>(j)] =
            1.0f / std::sqrt(bn->running_var()[j] + bn->epsilon());
      }
      step.in_buf = step.out_buf = cur_buf;
    } else if (dynamic_cast<const ReLU*>(layer) != nullptr) {
      step.kind = Step::Kind::kRelu;
      step.in_elems = step.out_elems = NumElements(cur);
      step.in_buf = step.out_buf = cur_buf;
    } else if (dynamic_cast<const Sigmoid*>(layer) != nullptr) {
      step.kind = Step::Kind::kSigmoid;
      step.in_elems = step.out_elems = NumElements(cur);
      step.in_buf = step.out_buf = cur_buf;
    } else if (dynamic_cast<const Tanh*>(layer) != nullptr) {
      step.kind = Step::Kind::kTanh;
      step.in_elems = step.out_elems = NumElements(cur);
      step.in_buf = step.out_buf = cur_buf;
    } else if (dynamic_cast<const Flatten*>(layer) != nullptr) {
      cur = {NumElements(cur)};  // row-major reshape: metadata only
      continue;
    } else if (dynamic_cast<const Dropout*>(layer) != nullptr) {
      continue;  // identity at inference
    } else {
      return Status::Unimplemented(
          "inference compile: unsupported layer '" + layer->name() + "'");
    }

    // Fix the step's trace/cost plan now so the hot path only scales by
    // the batch: FLOPs from the layer's arithmetic, bytes from the
    // activations it reads and writes plus its resident parameters.
    int64_t param_elems =
        step.weight.size() + step.bias.size() +
        (step.qweight8.PackedBytes() + step.qweight4.PackedBytes() + 3) / 4;
    switch (step.kind) {
      case Step::Kind::kDense:
        step.trace_name = "engine.dense";
        step.flops_per_example = 2 * step.in_elems * step.out_elems;
        break;
      case Step::Kind::kDenseInt8:
        step.trace_name = "engine.dense_int8";
        step.flops_per_example = 2 * step.in_elems * step.out_elems;
        break;
      case Step::Kind::kDenseInt4:
        step.trace_name = "engine.dense_int4";
        step.flops_per_example = 2 * step.in_elems * step.out_elems;
        break;
      case Step::Kind::kConv:
        step.trace_name = "engine.conv";
        step.flops_per_example =
            2 * step.out_elems * step.in_ch * step.kernel * step.kernel;
        break;
      case Step::Kind::kPool:
        step.trace_name = "engine.pool";
        step.flops_per_example = step.out_elems * step.window * step.window;
        break;
      case Step::Kind::kRelu:
        step.trace_name = "engine.relu";
        step.flops_per_example = step.in_elems;
        break;
      case Step::Kind::kSigmoid:
        step.trace_name = "engine.sigmoid";
        step.flops_per_example = 4 * step.in_elems;
        break;
      case Step::Kind::kTanh:
        step.trace_name = "engine.tanh";
        step.flops_per_example = 4 * step.in_elems;
        break;
      case Step::Kind::kBatchNorm:
        step.trace_name = "engine.batchnorm";
        step.flops_per_example = 4 * step.in_elems;
        param_elems += 4 * step.in_elems;
        break;
    }
    step.bytes_per_example =
        4 * (step.in_elems + step.out_elems + param_elems);
    max_act = std::max(max_act, std::max(step.in_elems, step.out_elems));
    eng.steps_.push_back(std::move(step));
  }

  eng.out_shape_ = cur;
  eng.out_elems_ = NumElements(cur);
  eng.final_buf_ = cur_buf;

  // All workspace is reserved here, once, and never grows afterwards: the
  // arena aborts on any later Reserve, which is the in-place reuse
  // guarantee tests exercise deliberately.
  eng.act_[0] = eng.arena_.ReserveFloats(max_act * config.max_batch);
  eng.act_[1] = eng.arena_.ReserveFloats(max_act * config.max_batch);
  if (max_patch > 0) {
    eng.im2col_ = eng.arena_.ReserveFloats(max_patch);
  }
  if (max_qin > 0) {
    // max_qin is already 32-padded; one scale per block per example row.
    eng.q_vals_ = eng.arena_.ReserveInt8s(max_qin * config.max_batch);
    eng.q_scales_ = eng.arena_.ReserveFloats((max_qin / kQuantBlock) *
                                             config.max_batch);
  }
  eng.arena_.Commit();
  return eng;
}

Result<Tensor> InferenceEngine::Predict(const Tensor& batch) {
  if (batch.rank() != static_cast<int64_t>(in_shape_.size()) + 1) {
    return Status::InvalidArgument(
        "Predict: batch rank " + std::to_string(batch.rank()) +
        " does not match compiled example shape " + ShapeToString(in_shape_));
  }
  for (size_t d = 0; d < in_shape_.size(); ++d) {
    if (batch.dim(static_cast<int64_t>(d) + 1) != in_shape_[d]) {
      return Status::InvalidArgument(
          "Predict: batch shape " + ShapeToString(batch.shape()) +
          " does not match compiled example shape " +
          ShapeToString(in_shape_));
    }
  }
  const int64_t b = batch.dim(0);
  Shape out_shape;
  out_shape.reserve(out_shape_.size() + 1);
  out_shape.push_back(b);
  out_shape.insert(out_shape.end(), out_shape_.begin(), out_shape_.end());
  Tensor out(std::move(out_shape));
  DLSYS_RETURN_NOT_OK(PredictInto(batch.data(), b, out.data()));
  return out;
}

Status InferenceEngine::PredictInto(const float* batch, int64_t batch_size,
                                    float* out) {
  if (batch == nullptr || out == nullptr) {
    return Status::InvalidArgument("PredictInto: null buffer");
  }
  if (batch_size < 1 || batch_size > config_.max_batch) {
    return Status::InvalidArgument(
        "PredictInto: batch size " + std::to_string(batch_size) +
        " outside [1, " + std::to_string(config_.max_batch) +
        "] declared at compile time");
  }
  DLSYS_PHASE_SCOPE(obs::Phase::kServe);
  DLSYS_TRACE_SPAN_COST("engine.predict", "serve", 0,
                        4 * batch_size * (in_elems_ + out_elems_));
  std::copy(batch, batch + batch_size * in_elems_, arena_.Floats(act_[0]));
  for (const Step& step : steps_) {
    DLSYS_TRACE_SPAN_COST(step.trace_name, "serve",
                          batch_size * step.flops_per_example,
                          batch_size * step.bytes_per_example);
    RunStep(step, batch_size, arena_.Floats(act_[step.in_buf]),
            arena_.Floats(act_[step.out_buf]));
  }
  const float* result = arena_.Floats(act_[final_buf_]);
  std::copy(result, result + batch_size * out_elems_, out);
  return Status::OK();
}

void InferenceEngine::RunStep(const Step& step, int64_t batch,
                              const float* in, float* out) const {
  switch (step.kind) {
    case Step::Kind::kDense: {
      const int64_t in_f = step.in_elems, out_f = step.out_elems;
      MatMulInto(in, step.weight.data(), out, batch, in_f, out_f);
      const float* pb = step.bias.data();
      ParallelFor(0, batch, 8, [=](int64_t r0, int64_t r1) {
        for (int64_t i = r0; i < r1; ++i) {
          float* row = out + i * out_f;
          for (int64_t j = 0; j < out_f; ++j) row[j] += pb[j];
        }
      });
      return;
    }
    case Step::Kind::kDenseInt8: {
      const int64_t in_f = step.in_elems, out_f = step.out_elems;
      const int64_t kp = step.qweight8.padded_cols;
      int8_t* qv = arena_.Int8s(q_vals_);
      float* qs = arena_.Floats(q_scales_);
      Q8BlockQuantizeRowsInto(in, batch, in_f, qv, qs);
      // Dequantization is fused into the GEMM (fp32 out); only the bias
      // remains for the epilogue.
      Q8BlockGemmTransBInto(qv, qs, step.qweight8.values.data(),
                            step.qweight8.scales.data(), out, batch, kp,
                            out_f);
      const float* pb = step.bias.data();
      ParallelFor(0, batch, 8, [=](int64_t r0, int64_t r1) {
        for (int64_t i = r0; i < r1; ++i) {
          float* row = out + i * out_f;
          for (int64_t j = 0; j < out_f; ++j) row[j] += pb[j];
        }
      });
      return;
    }
    case Step::Kind::kDenseInt4: {
      const int64_t in_f = step.in_elems, out_f = step.out_elems;
      const int64_t kp = step.qweight4.padded_cols;
      int8_t* qv = arena_.Int8s(q_vals_);
      float* qs = arena_.Floats(q_scales_);
      Q8BlockQuantizeRowsInto(in, batch, in_f, qv, qs);
      Q4BlockGemmTransBInto(qv, qs, step.qweight4.values.data(),
                            step.qweight4.scales.data(), out, batch, kp,
                            out_f);
      const float* pb = step.bias.data();
      ParallelFor(0, batch, 8, [=](int64_t r0, int64_t r1) {
        for (int64_t i = r0; i < r1; ++i) {
          float* row = out + i * out_f;
          for (int64_t j = 0; j < out_f; ++j) row[j] += pb[j];
        }
      });
      return;
    }
    case Step::Kind::kRelu: {
      ParallelFor(0, batch * step.in_elems, kEwGrain,
                  [=](int64_t lo, int64_t hi) {
                    for (int64_t i = lo; i < hi; ++i) {
                      out[i] = in[i] > 0.0f ? in[i] : 0.0f;
                    }
                  });
      return;
    }
    case Step::Kind::kSigmoid: {
      ParallelFor(0, batch * step.in_elems, kEwGrain,
                  [=](int64_t lo, int64_t hi) {
                    for (int64_t i = lo; i < hi; ++i) {
                      out[i] = 1.0f / (1.0f + std::exp(-in[i]));
                    }
                  });
      return;
    }
    case Step::Kind::kTanh: {
      ParallelFor(0, batch * step.in_elems, kEwGrain,
                  [=](int64_t lo, int64_t hi) {
                    for (int64_t i = lo; i < hi; ++i) {
                      out[i] = std::tanh(in[i]);
                    }
                  });
      return;
    }
    case Step::Kind::kBatchNorm: {
      const int64_t f = step.in_elems;
      const float* g = step.bn_gamma.data();
      const float* bt = step.bn_beta.data();
      const float* mu = step.bn_mean.data();
      const float* inv = step.bn_inv.data();
      ParallelFor(0, batch, 8, [=](int64_t r0, int64_t r1) {
        for (int64_t i = r0; i < r1; ++i) {
          const float* xrow = in + i * f;
          float* yrow = out + i * f;
          for (int64_t j = 0; j < f; ++j) {
            yrow[j] = g[j] * (xrow[j] - mu[j]) * inv[j] + bt[j];
          }
        }
      });
      return;
    }
    case Step::Kind::kPool: {
      const int64_t c = step.in_ch, h = step.h, w = step.w;
      const int64_t ho = step.ho, wo = step.wo, window = step.window;
      ParallelFor(0, batch * c, 1, [=](int64_t t0, int64_t t1) {
        for (int64_t t = t0; t < t1; ++t) {
          const float* xplane = in + t * h * w;
          float* yplane = out + t * ho * wo;
          for (int64_t oy = 0; oy < ho; ++oy) {
            for (int64_t ox = 0; ox < wo; ++ox) {
              float best = -std::numeric_limits<float>::infinity();
              for (int64_t ky = 0; ky < window; ++ky) {
                const float* xrow =
                    xplane + (oy * window + ky) * w + ox * window;
                for (int64_t kx = 0; kx < window; ++kx) {
                  if (xrow[kx] > best) best = xrow[kx];
                }
              }
              yplane[oy * wo + ox] = best;
            }
          }
        }
      });
      return;
    }
    case Step::Kind::kConv: {
      const int64_t ic = step.in_ch, oc = step.out_ch;
      const int64_t kernel = step.kernel, stride = step.stride,
                    pad = step.pad;
      const int64_t h = step.h, w = step.w, ho = step.ho, wo = step.wo;
      const float* pw = step.weight.data();
      const float* pb = step.bias.data();
      if (config_.conv_algo == ConvAlgo::kIm2col) {
        const int64_t kk = ic * kernel * kernel;  // patch width
        const int64_t positions = ho * wo;
        float* patches = arena_.Floats(im2col_);
        for (int64_t img = 0; img < batch; ++img) {
          const float* xin = in + img * ic * h * w;
          // Patch layout: row = output position, columns in (ic, ky, kx)
          // order — the direct nest's term order — with out-of-image taps
          // zero-filled.
          ParallelFor(0, positions, 16, [=](int64_t p0, int64_t p1) {
            for (int64_t pos = p0; pos < p1; ++pos) {
              const int64_t oy = pos / wo, ox = pos % wo;
              const int64_t iy0 = oy * stride - pad;
              const int64_t ix0 = ox * stride - pad;
              float* prow = patches + pos * kk;
              int64_t q = 0;
              for (int64_t cc = 0; cc < ic; ++cc) {
                const float* xplane = xin + cc * h * w;
                for (int64_t ky = 0; ky < kernel; ++ky) {
                  const int64_t iy = iy0 + ky;
                  for (int64_t kx = 0; kx < kernel; ++kx, ++q) {
                    const int64_t ix = ix0 + kx;
                    prow[q] = (iy >= 0 && iy < h && ix >= 0 && ix < w)
                                  ? xplane[iy * w + ix]
                                  : 0.0f;
                  }
                }
              }
            }
          });
          ConvGemmBiasInto(pw, patches, pb, out + img * oc * positions, oc,
                           kk, positions);
        }
      } else {
        // Direct reference: the plain clipped loop nest, one worker per
        // (image, out-channel) plane. The GEMM path's FLOPs are counted
        // inside ConvGemmBiasInto; the direct nest counts its own here.
        DLSYS_COST_FLOPS(batch * step.flops_per_example);
        ParallelFor(0, batch * oc, 1, [=](int64_t t0, int64_t t1) {
          for (int64_t t = t0; t < t1; ++t) {
            const int64_t img = t / oc;
            const int64_t o = t % oc;
            const float* xin = in + img * ic * h * w;
            const float* wbase = pw + o * ic * kernel * kernel;
            float* yplane = out + (img * oc + o) * ho * wo;
            for (int64_t oy = 0; oy < ho; ++oy) {
              const int64_t iy0 = oy * stride - pad;
              for (int64_t ox = 0; ox < wo; ++ox) {
                const int64_t ix0 = ox * stride - pad;
                double acc = pb[o];
                for (int64_t cc = 0; cc < ic; ++cc) {
                  const float* xplane = xin + cc * h * w;
                  const float* wplane = wbase + cc * kernel * kernel;
                  for (int64_t ky = 0; ky < kernel; ++ky) {
                    const int64_t iy = iy0 + ky;
                    if (iy < 0 || iy >= h) continue;
                    for (int64_t kx = 0; kx < kernel; ++kx) {
                      const int64_t ix = ix0 + kx;
                      if (ix < 0 || ix >= w) continue;
                      acc += xplane[iy * w + ix] * wplane[ky * kernel + kx];
                    }
                  }
                }
                yplane[oy * wo + ox] = static_cast<float>(acc);
              }
            }
          }
        });
      }
      return;
    }
  }
}

}  // namespace dlsys
