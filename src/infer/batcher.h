#ifndef DLSYS_INFER_BATCHER_H_
#define DLSYS_INFER_BATCHER_H_

#include <cstdint>
#include <vector>

#include "src/infer/engine.h"
#include "src/tensor/tensor.h"

/// \file batcher.h
/// \brief Micro-batching front door for the inference engine.
///
/// Serving systems trade latency for throughput by coalescing single
/// requests into small batches (the tutorial's deployment discussion; cf.
/// Clipper-style adaptive batching). MicroBatcher implements the standard
/// max-batch / max-delay policy over a simulated arrival clock: a batch is
/// dispatched when it reaches `max_batch` examples, or when the oldest
/// pending example has waited `max_delay_ms`. The simulated clock makes
/// arrival patterns reproducible in tests and benchmarks; only the
/// measured engine service time is real. Staging buffers are preallocated
/// at construction, so Submit/dispatch perform no per-request heap
/// allocation (completions retain per-request outputs, which do allocate —
/// the zero-allocation contract belongs to InferenceEngine::PredictInto).

namespace dlsys {

/// \brief Batching policy knobs.
struct MicroBatcherConfig {
  int64_t max_batch = 16;     ///< dispatch when this many are pending
  double max_delay_ms = 1.0;  ///< dispatch when the oldest waited this long
};

/// \brief Coalesces single-example requests into engine batches.
///
/// Drive it with a monotone simulated clock: Submit(example, arrival_ms)
/// enqueues, AdvanceTo(now_ms) fires any delay-expired batch, Flush()
/// drains whatever is pending. Completions accumulate in submission order
/// of dispatch.
class MicroBatcher {
 public:
  /// \brief One finished request.
  struct Completion {
    int64_t id = 0;          ///< value returned by Submit
    double arrival_ms = 0;   ///< simulated arrival time
    double start_ms = 0;     ///< simulated dispatch time of its batch
    double finish_ms = 0;    ///< start + measured engine service time
    int64_t batch_size = 0;  ///< how many requests shared the dispatch
    Tensor output;           ///< per-example engine output
  };

  /// \brief Wraps \p engine (borrowed; must outlive the batcher).
  /// The policy's max_batch must not exceed the engine's compiled ceiling.
  MicroBatcher(InferenceEngine* engine, const MicroBatcherConfig& config);

  /// \brief Enqueues one example (engine's per-example input shape) at
  /// simulated time \p arrival_ms (monotone; checked). May dispatch: first
  /// any pending batch whose delay budget expired *strictly before*
  /// arrival_ms (a budget expiring exactly at arrival_ms coalesces this
  /// example instead, so same-tick arrivals dispatch together
  /// deterministically), then a full batch including this example. With
  /// max_batch == 1 every Submit degenerates to an immediate
  /// single-example dispatch. Returns the request id.
  int64_t Submit(const Tensor& example, double arrival_ms);

  /// \brief Advances the simulated clock, dispatching if the oldest
  /// pending example's delay budget expires at or before \p now_ms.
  void AdvanceTo(double now_ms);

  /// \brief Dispatches all pending examples immediately; a no-op when
  /// nothing is pending.
  void Flush();

  /// \brief All completions so far, in dispatch order.
  const std::vector<Completion>& completions() const { return completions_; }
  /// \brief Requests submitted but not yet dispatched.
  int64_t pending() const { return pending_count_; }
  /// \brief Number of engine batches dispatched.
  int64_t batches_run() const { return batches_run_; }

 private:
  void Dispatch(double start_ms);

  InferenceEngine* engine_;
  MicroBatcherConfig config_;
  Tensor in_staging_;   ///< (max_batch, in_elems) request rows
  Tensor out_staging_;  ///< (max_batch, out_elems)
  std::vector<int64_t> pending_ids_;
  std::vector<double> pending_arrivals_;
  int64_t pending_count_ = 0;
  int64_t next_id_ = 0;
  int64_t batches_run_ = 0;
  double clock_ms_ = 0.0;
  std::vector<Completion> completions_;
};

}  // namespace dlsys

#endif  // DLSYS_INFER_BATCHER_H_
