#ifndef DLSYS_INTERPRET_TSNE_H_
#define DLSYS_INTERPRET_TSNE_H_

#include <cstdint>

#include "src/core/status.h"
#include "src/tensor/tensor.h"

/// \file tsne.h
/// \brief Exact t-distributed Stochastic Neighbor Embedding (tutorial
/// Section 4.2, van der Maaten & Hinton): the dimensionality-reduction
/// workhorse for understanding high-dimensional training data and
/// network internals.
///
/// Exact O(n^2) affinities — the reproduction operates at laptop scale
/// where Barnes-Hut approximation is unnecessary.

namespace dlsys {

/// \brief t-SNE hyperparameters.
struct TsneConfig {
  int64_t output_dims = 2;
  double perplexity = 30.0;
  int64_t iterations = 400;
  double learning_rate = 100.0;
  double momentum = 0.8;
  double early_exaggeration = 4.0;   ///< P scaling for the first phase
  int64_t exaggeration_iters = 100;
  uint64_t seed = 3;
};

/// \brief Embeds the rows of \p x (N x D) into N x output_dims.
///
/// Per-point bandwidths are calibrated by binary search to match the
/// requested perplexity; the embedding minimizes KL(P || Q) by gradient
/// descent with momentum. Fails if N <= 3 * perplexity.
Result<Tensor> Tsne(const Tensor& x, const TsneConfig& config);

/// \brief Quality score for an embedding of labeled data: fraction of
/// each point's k nearest embedded neighbours sharing its label
/// (neighbourhood purity). 1.0 = perfectly clustered.
double EmbeddingPurity(const Tensor& embedding,
                       const std::vector<int64_t>& labels, int64_t k);

}  // namespace dlsys

#endif  // DLSYS_INTERPRET_TSNE_H_
