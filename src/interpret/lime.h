#ifndef DLSYS_INTERPRET_LIME_H_
#define DLSYS_INTERPRET_LIME_H_

#include <cstdint>
#include <vector>

#include "src/core/rng.h"
#include "src/core/status.h"
#include "src/nn/sequential.h"

/// \file lime.h
/// \brief Local Interpretable Model-agnostic Explanations (tutorial
/// Section 4.2, Ribeiro et al.).
///
/// LIME explains one prediction: it samples perturbations around the
/// input, weights them by proximity, and fits a weighted linear surrogate
/// whose coefficients are the per-feature contributions to the model's
/// output for the explained class.

namespace dlsys {

/// \brief LIME configuration.
struct LimeConfig {
  int64_t num_samples = 500;
  double kernel_width = 0.75;   ///< proximity kernel width (feature units)
  double perturb_std = 0.5;     ///< stddev of Gaussian perturbations
  double ridge = 1e-3;          ///< L2 regularization of the surrogate
  uint64_t seed = 51;
};

/// \brief A local explanation: linear surrogate around one input.
struct Explanation {
  std::vector<double> weights;  ///< per-feature contribution
  double intercept = 0.0;
  double fidelity_r2 = 0.0;     ///< weighted R^2 of the surrogate on the
                                ///< perturbation sample
};

/// \brief Explains \p model's probability of \p target_class at \p x
/// (a single row tensor, 1 x D).
Result<Explanation> ExplainWithLime(Sequential* model, const Tensor& x,
                                    int64_t target_class,
                                    const LimeConfig& config);

/// \brief Solves the ridge-regularized weighted least squares
/// (X' W X + ridge I) b = X' W y by Gaussian elimination with partial
/// pivoting. Exposed for testing. X is n x d (row-major), w length n,
/// y length n; returns d+1 coefficients (last = intercept).
Result<std::vector<double>> WeightedRidge(const std::vector<double>& x,
                                          int64_t n, int64_t d,
                                          const std::vector<double>& w,
                                          const std::vector<double>& y,
                                          double ridge);

}  // namespace dlsys

#endif  // DLSYS_INTERPRET_LIME_H_
