#ifndef DLSYS_INTERPRET_MODEL_STORE_H_
#define DLSYS_INTERPRET_MODEL_STORE_H_

#include <cstdint>
#include <vector>

#include "src/core/status.h"
#include "src/nn/sequential.h"

/// \file model_store.h
/// \brief A Mistique-style store for model intermediates (tutorial
/// Section 4.2, Vartak et al.): capture every layer's activations for a
/// diagnostic batch, store them compactly (8-bit quantization and
/// deduplication of identical quantized rows), and answer inspection
/// queries without rerunning the model.

namespace dlsys {

/// \brief How activations are persisted.
enum class StorageMode {
  kExact,           ///< float32, lossless
  kQuantized,       ///< per-layer 8-bit uniform quantization
  kQuantizedDedup,  ///< 8-bit + dedup of identical quantized rows
};

/// \brief Captured activations of one model over one diagnostic batch.
class ModelStore {
 public:
  /// \brief Runs \p model over \p x and captures the output of every
  /// layer under the given storage mode.
  static Result<ModelStore> Capture(Sequential* model, const Tensor& x,
                                    StorageMode mode);

  /// \brief Number of captured layers.
  int64_t num_layers() const {
    return static_cast<int64_t>(layers_.size());
  }
  /// \brief Reconstructs the activation matrix (rows = examples) of
  /// layer \p layer.
  Result<Tensor> GetLayer(int64_t layer) const;
  /// \brief Indices of the \p k most active units (by reconstructed
  /// value) for one example at one layer.
  Result<std::vector<int64_t>> TopUnits(int64_t layer, int64_t example,
                                        int64_t k) const;
  /// \brief Bytes the store holds (codes + codebooks + dedup tables).
  int64_t StoredBytes() const;
  /// \brief Max |reconstructed - reference| against a reference layer
  /// activation matrix.
  Result<double> MaxAbsError(int64_t layer, const Tensor& reference) const;

 private:
  struct LayerStore {
    Shape shape;                      ///< original activation shape
    int64_t row_width = 0;            ///< flattened per-example width
    StorageMode mode;
    // kExact.
    std::vector<float> exact;
    // kQuantized / kQuantizedDedup.
    float lo = 0.0f, step = 1.0f;
    std::vector<uint8_t> codes;       ///< unique rows (dedup) or all rows
    std::vector<int32_t> row_index;   ///< dedup: row -> unique row id
  };

  std::vector<LayerStore> layers_;
};

}  // namespace dlsys

#endif  // DLSYS_INTERPRET_MODEL_STORE_H_
