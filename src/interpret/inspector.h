#ifndef DLSYS_INTERPRET_INSPECTOR_H_
#define DLSYS_INTERPRET_INSPECTOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/status.h"
#include "src/nn/sequential.h"

/// \file inspector.h
/// \brief DeepBase-style declarative inspection of trained models
/// (tutorial Section 4.2, Sellam et al.): test hypotheses of the form
/// "which units encode property P?" by scoring every unit's activation
/// against a user-supplied per-example property vector, without writing
/// per-layer plumbing.

namespace dlsys {

/// \brief One unit's affinity to the queried property.
struct UnitAffinity {
  int64_t layer = 0;   ///< layer index in the Sequential
  int64_t unit = 0;    ///< flat unit index within the layer output
  double score = 0.0;  ///< |Pearson correlation| with the property
};

/// \brief Runs hypothesis queries against a model over a probe batch.
class ModelInspector {
 public:
  /// \brief Captures every layer's activations of \p model on \p probe.
  ModelInspector(Sequential* model, const Tensor& probe);

  /// \brief Number of captured layers.
  int64_t num_layers() const {
    return static_cast<int64_t>(activations_.size());
  }

  /// \brief The core hypothesis query: ranks all units of all layers by
  /// |correlation| between their activation and \p property (one value
  /// per probe example). Returns the top \p k units.
  Result<std::vector<UnitAffinity>> TopUnitsFor(
      const std::vector<double>& property, int64_t k) const;

  /// \brief Restricts the query to one layer.
  Result<std::vector<UnitAffinity>> TopUnitsInLayer(
      const std::vector<double>& property, int64_t layer, int64_t k) const;

  /// \brief Aggregate per-layer affinity: mean of the layer's top-5 unit
  /// scores for the property — "where in the network does P live?".
  Result<std::vector<double>> LayerProfile(
      const std::vector<double>& property) const;

 private:
  double UnitCorrelation(int64_t layer, int64_t unit,
                         const std::vector<double>& property) const;

  int64_t examples_ = 0;
  std::vector<Tensor> activations_;  ///< per layer, rows = examples
};

}  // namespace dlsys

#endif  // DLSYS_INTERPRET_INSPECTOR_H_
