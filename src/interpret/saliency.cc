#include "src/interpret/saliency.h"

#include "src/core/rng.h"
#include "src/tensor/ops.h"

namespace dlsys {

namespace {
// Gradient of logit[target] w.r.t. x, via a backward pass seeded with a
// one-hot output gradient.
Result<Tensor> LogitInputGrad(Sequential* model, const Tensor& x,
                              int64_t target_class) {
  model->ZeroGrads();
  Tensor logits = model->Forward(x, CacheMode::kCache);
  if (logits.rank() != 2 || logits.dim(0) != 1) {
    return Status::InvalidArgument("expected a single example");
  }
  if (target_class < 0 || target_class >= logits.dim(1)) {
    return Status::InvalidArgument("target_class out of range");
  }
  Tensor seed(logits.shape());
  seed[target_class] = 1.0f;
  Tensor dx = model->Backward(seed);
  model->ZeroGrads();  // discard parameter gradients: not a training step
  model->DropCaches();
  return dx;
}
}  // namespace

Result<Tensor> SaliencyMap(Sequential* model, const Tensor& x,
                           int64_t target_class) {
  auto dx = LogitInputGrad(model, x, target_class);
  if (!dx.ok()) return dx.status();
  Tensor saliency = *dx;
  for (int64_t i = 0; i < saliency.size(); ++i) {
    saliency[i] = saliency[i] < 0.0f ? -saliency[i] : saliency[i];
  }
  return saliency;
}

Result<Tensor> ActivationMaximization(Sequential* model, Shape input_shape,
                                      int64_t target_class,
                                      const ActMaxConfig& config) {
  if (input_shape.empty() || input_shape[0] != 1) {
    return Status::InvalidArgument("input_shape must have batch dim 1");
  }
  Rng rng(config.seed);
  Tensor best;
  double best_objective = -1e300;
  for (int64_t restart = 0; restart < std::max<int64_t>(1, config.restarts);
       ++restart) {
    Tensor x(input_shape);
    x.FillGaussian(&rng, restart == 0 ? 0.01f : 0.5f);
    for (int64_t iter = 0; iter < config.iterations; ++iter) {
      // Ascend on (target logit - mean of other logits): maximizing the
      // raw logit alone can grow all logits together and never make the
      // target the argmax.
      model->ZeroGrads();
      Tensor logits = model->Forward(x, CacheMode::kCache);
      if (logits.rank() != 2 || logits.dim(0) != 1) {
        return Status::InvalidArgument("expected a single example");
      }
      if (target_class < 0 || target_class >= logits.dim(1)) {
        return Status::InvalidArgument("target_class out of range");
      }
      const int64_t classes = logits.dim(1);
      Tensor seed(logits.shape(),
                  classes > 1 ? -1.0f / static_cast<float>(classes - 1)
                              : 0.0f);
      seed[target_class] = 1.0f;
      Tensor dx = model->Backward(seed);
      model->ZeroGrads();
      model->DropCaches();
      // Ascent with L2 decay.
      for (int64_t i = 0; i < x.size(); ++i) {
        x[i] += static_cast<float>(config.learning_rate) * dx[i] -
                static_cast<float>(config.l2_decay) * x[i];
      }
    }
    // Score this restart by the discriminative objective.
    Tensor logits = model->Forward(x, CacheMode::kNoCache);
    const int64_t classes = logits.dim(1);
    double others = 0.0;
    for (int64_t c = 0; c < classes; ++c) {
      if (c != target_class) others += logits[c];
    }
    const double objective =
        logits[target_class] -
        (classes > 1 ? others / static_cast<double>(classes - 1) : 0.0);
    if (objective > best_objective) {
      best_objective = objective;
      best = std::move(x);
    }
  }
  return best;
}

}  // namespace dlsys
