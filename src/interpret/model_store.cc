#include "src/interpret/model_store.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace dlsys {

namespace {
// FNV-1a over a row of quantized codes.
uint64_t HashRow(const uint8_t* row, int64_t width) {
  uint64_t h = 1469598103934665603ULL;
  for (int64_t i = 0; i < width; ++i) {
    h ^= row[i];
    h *= 1099511628211ULL;
  }
  return h;
}
}  // namespace

Result<ModelStore> ModelStore::Capture(Sequential* model, const Tensor& x,
                                       StorageMode mode) {
  if (x.empty() || x.rank() < 2) {
    return Status::InvalidArgument("need a non-empty batch");
  }
  ModelStore out;
  Tensor h = x;
  const int64_t n = x.dim(0);
  for (int64_t li = 0; li < model->size(); ++li) {
    h = model->layer(li)->Forward(h, CacheMode::kNoCache);
    LayerStore store;
    store.shape = h.shape();
    store.row_width = h.size() / n;
    store.mode = mode;
    if (mode == StorageMode::kExact) {
      store.exact.assign(h.data(), h.data() + h.size());
    } else {
      // Per-layer 8-bit uniform quantization.
      float lo = h[0], hi = h[0];
      for (int64_t i = 0; i < h.size(); ++i) {
        lo = std::min(lo, h[i]);
        hi = std::max(hi, h[i]);
      }
      if (hi == lo) hi = lo + 1e-6f;
      store.lo = lo;
      store.step = (hi - lo) / 255.0f;
      std::vector<uint8_t> codes(static_cast<size_t>(h.size()));
      for (int64_t i = 0; i < h.size(); ++i) {
        const int64_t code = std::clamp<int64_t>(
            static_cast<int64_t>(std::lround((h[i] - lo) / store.step)), 0,
            255);
        codes[static_cast<size_t>(i)] = static_cast<uint8_t>(code);
      }
      if (mode == StorageMode::kQuantized) {
        store.codes = std::move(codes);
      } else {
        // Deduplicate identical quantized rows.
        std::unordered_map<uint64_t, std::vector<int32_t>> buckets;
        store.row_index.resize(static_cast<size_t>(n));
        for (int64_t r = 0; r < n; ++r) {
          const uint8_t* row = codes.data() + r * store.row_width;
          const uint64_t hash = HashRow(row, store.row_width);
          int32_t found = -1;
          for (int32_t candidate : buckets[hash]) {
            const uint8_t* existing =
                store.codes.data() +
                static_cast<int64_t>(candidate) * store.row_width;
            if (std::equal(row, row + store.row_width, existing)) {
              found = candidate;
              break;
            }
          }
          if (found < 0) {
            found = static_cast<int32_t>(store.codes.size() /
                                         static_cast<size_t>(store.row_width));
            store.codes.insert(store.codes.end(), row,
                               row + store.row_width);
            buckets[hash].push_back(found);
          }
          store.row_index[static_cast<size_t>(r)] = found;
        }
      }
    }
    out.layers_.push_back(std::move(store));
  }
  return out;
}

Result<Tensor> ModelStore::GetLayer(int64_t layer) const {
  if (layer < 0 || layer >= num_layers()) {
    return Status::OutOfRange("layer index");
  }
  const LayerStore& store = layers_[static_cast<size_t>(layer)];
  Tensor out(store.shape);
  const int64_t n = store.shape[0];
  switch (store.mode) {
    case StorageMode::kExact:
      std::copy(store.exact.begin(), store.exact.end(), out.data());
      break;
    case StorageMode::kQuantized:
      for (int64_t i = 0; i < out.size(); ++i) {
        out[i] = store.lo +
                 store.step * static_cast<float>(
                                  store.codes[static_cast<size_t>(i)]);
      }
      break;
    case StorageMode::kQuantizedDedup:
      for (int64_t r = 0; r < n; ++r) {
        const int64_t src = static_cast<int64_t>(
                                store.row_index[static_cast<size_t>(r)]) *
                            store.row_width;
        for (int64_t c = 0; c < store.row_width; ++c) {
          out[r * store.row_width + c] =
              store.lo +
              store.step * static_cast<float>(
                               store.codes[static_cast<size_t>(src + c)]);
        }
      }
      break;
  }
  return out;
}

Result<std::vector<int64_t>> ModelStore::TopUnits(int64_t layer,
                                                  int64_t example,
                                                  int64_t k) const {
  auto activations = GetLayer(layer);
  if (!activations.ok()) return activations.status();
  const LayerStore& store = layers_[static_cast<size_t>(layer)];
  if (example < 0 || example >= store.shape[0]) {
    return Status::OutOfRange("example index");
  }
  if (k <= 0 || k > store.row_width) {
    return Status::InvalidArgument("k outside [1, units]");
  }
  std::vector<std::pair<float, int64_t>> scored;
  for (int64_t u = 0; u < store.row_width; ++u) {
    scored.push_back({(*activations)[example * store.row_width + u], u});
  }
  std::partial_sort(scored.begin(), scored.begin() + k, scored.end(),
                    [](const auto& a, const auto& b) {
                      return a.first > b.first;
                    });
  std::vector<int64_t> out;
  for (int64_t i = 0; i < k; ++i) {
    out.push_back(scored[static_cast<size_t>(i)].second);
  }
  return out;
}

int64_t ModelStore::StoredBytes() const {
  int64_t bytes = 0;
  for (const auto& store : layers_) {
    bytes += static_cast<int64_t>(store.exact.size()) * 4;
    bytes += static_cast<int64_t>(store.codes.size());
    bytes += static_cast<int64_t>(store.row_index.size()) * 4;
    bytes += 8;  // lo + step
  }
  return bytes;
}

Result<double> ModelStore::MaxAbsError(int64_t layer,
                                       const Tensor& reference) const {
  auto activations = GetLayer(layer);
  if (!activations.ok()) return activations.status();
  if (activations->shape() != reference.shape()) {
    return Status::InvalidArgument("reference shape mismatch");
  }
  double max_err = 0.0;
  for (int64_t i = 0; i < reference.size(); ++i) {
    max_err = std::max(
        max_err,
        std::abs(static_cast<double>((*activations)[i]) - reference[i]));
  }
  return max_err;
}

}  // namespace dlsys
