#ifndef DLSYS_INTERPRET_SALIENCY_H_
#define DLSYS_INTERPRET_SALIENCY_H_

#include <cstdint>

#include "src/core/status.h"
#include "src/nn/sequential.h"

/// \file saliency.h
/// \brief Gradient-based visualization (tutorial Section 4.2): saliency
/// maps (which inputs move the decision) and Activation Maximization
/// (synthesize the input a network part responds to most).

namespace dlsys {

/// \brief Gradient of the target-class logit w.r.t. the input features:
/// |dx| is the saliency map. \p x is 1 x D (or any single-example
/// shape the network accepts).
Result<Tensor> SaliencyMap(Sequential* model, const Tensor& x,
                           int64_t target_class);

/// \brief Activation-maximization configuration.
struct ActMaxConfig {
  int64_t iterations = 200;
  int64_t restarts = 5;     ///< random restarts; best objective wins
  double learning_rate = 0.1;
  double l2_decay = 0.01;   ///< keeps the synthesized input bounded
  uint64_t seed = 61;
};

/// \brief Synthesizes an input that maximally activates the target
/// logit by gradient ascent from small random noise.
/// \p input_shape is the single-example shape with leading batch dim 1.
Result<Tensor> ActivationMaximization(Sequential* model, Shape input_shape,
                                      int64_t target_class,
                                      const ActMaxConfig& config);

}  // namespace dlsys

#endif  // DLSYS_INTERPRET_SALIENCY_H_
