#include "src/interpret/tsne.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/core/rng.h"

namespace dlsys {

namespace {

// Squared Euclidean distances between all row pairs of x (N x D).
std::vector<double> PairwiseSq(const Tensor& x) {
  const int64_t n = x.dim(0), d = x.dim(1);
  std::vector<double> dist(static_cast<size_t>(n * n), 0.0);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = i + 1; j < n; ++j) {
      double s = 0.0;
      for (int64_t k = 0; k < d; ++k) {
        const double diff = x[i * d + k] - x[j * d + k];
        s += diff * diff;
      }
      dist[static_cast<size_t>(i * n + j)] = s;
      dist[static_cast<size_t>(j * n + i)] = s;
    }
  }
  return dist;
}

// Row-conditional affinities p_{j|i} at the bandwidth that matches the
// target perplexity, found by binary search on beta = 1/(2 sigma^2).
void CalibrateRow(const std::vector<double>& dist, int64_t n, int64_t i,
                  double perplexity, std::vector<double>* p) {
  const double target_entropy = std::log(perplexity);
  double beta_lo = 0.0, beta_hi = 1e300, beta = 1.0;
  for (int iter = 0; iter < 64; ++iter) {
    double sum = 0.0, weighted = 0.0;
    for (int64_t j = 0; j < n; ++j) {
      if (j == i) continue;
      const double pij =
          std::exp(-dist[static_cast<size_t>(i * n + j)] * beta);
      (*p)[static_cast<size_t>(j)] = pij;
      sum += pij;
      weighted += pij * dist[static_cast<size_t>(i * n + j)];
    }
    if (sum <= 1e-300) {
      beta /= 2.0;
      continue;
    }
    // Shannon entropy of the row distribution.
    const double entropy = std::log(sum) + beta * weighted / sum;
    if (std::abs(entropy - target_entropy) < 1e-5) break;
    if (entropy > target_entropy) {
      beta_lo = beta;
      beta = beta_hi >= 1e300 ? beta * 2.0 : (beta + beta_hi) / 2.0;
    } else {
      beta_hi = beta;
      beta = (beta + beta_lo) / 2.0;
    }
  }
  double sum = 0.0;
  for (int64_t j = 0; j < n; ++j) {
    if (j != i) sum += (*p)[static_cast<size_t>(j)];
  }
  (*p)[static_cast<size_t>(i)] = 0.0;
  if (sum > 0.0) {
    for (int64_t j = 0; j < n; ++j) {
      (*p)[static_cast<size_t>(j)] /= sum;
    }
  }
}

}  // namespace

Result<Tensor> Tsne(const Tensor& x, const TsneConfig& config) {
  if (x.rank() != 2) {
    return Status::InvalidArgument("t-SNE input must be rank 2");
  }
  const int64_t n = x.dim(0);
  if (static_cast<double>(n) <= 3.0 * config.perplexity) {
    return Status::InvalidArgument(
        "need more than 3 x perplexity points, got " + std::to_string(n));
  }
  const int64_t od = config.output_dims;

  // Symmetric joint affinities P.
  std::vector<double> dist = PairwiseSq(x);
  std::vector<double> p(static_cast<size_t>(n * n), 0.0);
  std::vector<double> row(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    std::fill(row.begin(), row.end(), 0.0);
    CalibrateRow(dist, n, i, config.perplexity, &row);
    for (int64_t j = 0; j < n; ++j) {
      p[static_cast<size_t>(i * n + j)] = row[static_cast<size_t>(j)];
    }
  }
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = i + 1; j < n; ++j) {
      const double sym = (p[static_cast<size_t>(i * n + j)] +
                          p[static_cast<size_t>(j * n + i)]) /
                         (2.0 * static_cast<double>(n));
      p[static_cast<size_t>(i * n + j)] = std::max(sym, 1e-12);
      p[static_cast<size_t>(j * n + i)] = std::max(sym, 1e-12);
    }
  }

  // Gradient descent on the embedding.
  Rng rng(config.seed);
  Tensor y({n, od});
  y.FillGaussian(&rng, 1e-2f);
  std::vector<double> velocity(static_cast<size_t>(n * od), 0.0);
  std::vector<double> q(static_cast<size_t>(n * n));
  std::vector<double> grad(static_cast<size_t>(n * od));
  for (int64_t iter = 0; iter < config.iterations; ++iter) {
    const double exaggeration =
        iter < config.exaggeration_iters ? config.early_exaggeration : 1.0;
    // Student-t affinities Q.
    double qsum = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = i + 1; j < n; ++j) {
        double s = 0.0;
        for (int64_t k = 0; k < od; ++k) {
          const double diff = y[i * od + k] - y[j * od + k];
          s += diff * diff;
        }
        const double w = 1.0 / (1.0 + s);
        q[static_cast<size_t>(i * n + j)] = w;
        q[static_cast<size_t>(j * n + i)] = w;
        qsum += 2.0 * w;
      }
      q[static_cast<size_t>(i * n + i)] = 0.0;
    }
    // Gradient: 4 sum_j (exP_ij - Q_ij) w_ij (y_i - y_j).
    std::fill(grad.begin(), grad.end(), 0.0);
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = 0; j < n; ++j) {
        if (i == j) continue;
        const double w = q[static_cast<size_t>(i * n + j)];
        const double qij = std::max(w / qsum, 1e-12);
        const double mult =
            (exaggeration * p[static_cast<size_t>(i * n + j)] - qij) * w;
        for (int64_t k = 0; k < od; ++k) {
          grad[static_cast<size_t>(i * od + k)] +=
              4.0 * mult * (y[i * od + k] - y[j * od + k]);
        }
      }
    }
    for (int64_t i = 0; i < n * od; ++i) {
      velocity[static_cast<size_t>(i)] =
          config.momentum * velocity[static_cast<size_t>(i)] -
          config.learning_rate * grad[static_cast<size_t>(i)];
      y[i] += static_cast<float>(velocity[static_cast<size_t>(i)]);
    }
  }
  return y;
}

double EmbeddingPurity(const Tensor& embedding,
                       const std::vector<int64_t>& labels, int64_t k) {
  DLSYS_CHECK(embedding.rank() == 2, "embedding must be rank 2");
  const int64_t n = embedding.dim(0), d = embedding.dim(1);
  DLSYS_CHECK(n == static_cast<int64_t>(labels.size()),
              "label count mismatch");
  DLSYS_CHECK(k > 0 && k < n, "invalid neighbour count");
  double purity = 0.0;
  std::vector<std::pair<double, int64_t>> dists(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      double s = 0.0;
      for (int64_t c = 0; c < d; ++c) {
        const double diff = embedding[i * d + c] - embedding[j * d + c];
        s += diff * diff;
      }
      dists[static_cast<size_t>(j)] = {j == i ? 1e300 : s, j};
    }
    std::partial_sort(dists.begin(), dists.begin() + k, dists.end());
    int64_t same = 0;
    for (int64_t m = 0; m < k; ++m) {
      if (labels[static_cast<size_t>(dists[static_cast<size_t>(m)].second)] ==
          labels[static_cast<size_t>(i)]) {
        ++same;
      }
    }
    purity += static_cast<double>(same) / static_cast<double>(k);
  }
  return purity / static_cast<double>(n);
}

}  // namespace dlsys
