#include "src/interpret/lime.h"

#include <algorithm>
#include <cmath>

#include "src/tensor/ops.h"

namespace dlsys {

Result<std::vector<double>> WeightedRidge(const std::vector<double>& x,
                                          int64_t n, int64_t d,
                                          const std::vector<double>& w,
                                          const std::vector<double>& y,
                                          double ridge) {
  if (static_cast<int64_t>(x.size()) != n * d ||
      static_cast<int64_t>(w.size()) != n ||
      static_cast<int64_t>(y.size()) != n) {
    return Status::InvalidArgument("weighted ridge: size mismatch");
  }
  if (n == 0) return Status::InvalidArgument("no samples");
  // Augment with the intercept column: design has d+1 columns.
  const int64_t m = d + 1;
  std::vector<double> a(static_cast<size_t>(m * m), 0.0);   // X'WX + rI
  std::vector<double> b(static_cast<size_t>(m), 0.0);       // X'Wy
  for (int64_t i = 0; i < n; ++i) {
    const double wi = w[static_cast<size_t>(i)];
    for (int64_t r = 0; r < m; ++r) {
      const double xr =
          r < d ? x[static_cast<size_t>(i * d + r)] : 1.0;
      b[static_cast<size_t>(r)] += wi * xr * y[static_cast<size_t>(i)];
      for (int64_t c = 0; c < m; ++c) {
        const double xc =
            c < d ? x[static_cast<size_t>(i * d + c)] : 1.0;
        a[static_cast<size_t>(r * m + c)] += wi * xr * xc;
      }
    }
  }
  for (int64_t r = 0; r < d; ++r) {
    a[static_cast<size_t>(r * m + r)] += ridge;  // no ridge on intercept
  }
  // Gaussian elimination with partial pivoting.
  for (int64_t col = 0; col < m; ++col) {
    int64_t pivot = col;
    for (int64_t r = col + 1; r < m; ++r) {
      if (std::abs(a[static_cast<size_t>(r * m + col)]) >
          std::abs(a[static_cast<size_t>(pivot * m + col)])) {
        pivot = r;
      }
    }
    if (std::abs(a[static_cast<size_t>(pivot * m + col)]) < 1e-12) {
      return Status::FailedPrecondition("singular normal equations");
    }
    if (pivot != col) {
      for (int64_t c = 0; c < m; ++c) {
        std::swap(a[static_cast<size_t>(col * m + c)],
                  a[static_cast<size_t>(pivot * m + c)]);
      }
      std::swap(b[static_cast<size_t>(col)], b[static_cast<size_t>(pivot)]);
    }
    for (int64_t r = col + 1; r < m; ++r) {
      const double f = a[static_cast<size_t>(r * m + col)] /
                       a[static_cast<size_t>(col * m + col)];
      for (int64_t c = col; c < m; ++c) {
        a[static_cast<size_t>(r * m + c)] -=
            f * a[static_cast<size_t>(col * m + c)];
      }
      b[static_cast<size_t>(r)] -= f * b[static_cast<size_t>(col)];
    }
  }
  std::vector<double> beta(static_cast<size_t>(m), 0.0);
  for (int64_t r = m - 1; r >= 0; --r) {
    double s = b[static_cast<size_t>(r)];
    for (int64_t c = r + 1; c < m; ++c) {
      s -= a[static_cast<size_t>(r * m + c)] * beta[static_cast<size_t>(c)];
    }
    beta[static_cast<size_t>(r)] = s / a[static_cast<size_t>(r * m + r)];
  }
  return beta;
}

Result<Explanation> ExplainWithLime(Sequential* model, const Tensor& x,
                                    int64_t target_class,
                                    const LimeConfig& config) {
  if (x.rank() != 2 || x.dim(0) != 1) {
    return Status::InvalidArgument("LIME explains one row (1 x D)");
  }
  if (config.num_samples < 8) {
    return Status::InvalidArgument("need at least 8 samples");
  }
  const int64_t d = x.dim(1);
  Rng rng(config.seed);

  // Perturbation sample around x (the first row is x itself).
  Tensor samples({config.num_samples, d});
  for (int64_t j = 0; j < d; ++j) samples[j] = x[j];
  for (int64_t i = 1; i < config.num_samples; ++i) {
    for (int64_t j = 0; j < d; ++j) {
      samples[i * d + j] = x[j] + static_cast<float>(
                                      rng.Gaussian() * config.perturb_std);
    }
  }

  // Model probabilities for the target class.
  Tensor logits = model->Forward(samples, CacheMode::kNoCache);
  if (target_class < 0 || target_class >= logits.dim(1)) {
    return Status::InvalidArgument("target_class out of range");
  }
  Tensor probs = RowSoftmax(logits);
  std::vector<double> y(static_cast<size_t>(config.num_samples));
  for (int64_t i = 0; i < config.num_samples; ++i) {
    y[static_cast<size_t>(i)] = probs[i * logits.dim(1) + target_class];
  }

  // Proximity kernel weights.
  std::vector<double> w(static_cast<size_t>(config.num_samples));
  const double kw2 = config.kernel_width * config.kernel_width;
  for (int64_t i = 0; i < config.num_samples; ++i) {
    double dist2 = 0.0;
    for (int64_t j = 0; j < d; ++j) {
      const double diff = samples[i * d + j] - x[j];
      dist2 += diff * diff;
    }
    w[static_cast<size_t>(i)] = std::exp(-dist2 / kw2);
  }

  // Surrogate features: offsets from x (so the intercept is f(x)-ish).
  std::vector<double> xs(static_cast<size_t>(config.num_samples * d));
  for (int64_t i = 0; i < config.num_samples; ++i) {
    for (int64_t j = 0; j < d; ++j) {
      xs[static_cast<size_t>(i * d + j)] = samples[i * d + j] - x[j];
    }
  }
  auto beta = WeightedRidge(xs, config.num_samples, d, w, y, config.ridge);
  if (!beta.ok()) return beta.status();

  Explanation out;
  out.weights.assign(beta->begin(), beta->begin() + d);
  out.intercept = (*beta)[static_cast<size_t>(d)];

  // Weighted R^2 of the surrogate.
  double wsum = 0.0, ymean = 0.0;
  for (int64_t i = 0; i < config.num_samples; ++i) {
    wsum += w[static_cast<size_t>(i)];
    ymean += w[static_cast<size_t>(i)] * y[static_cast<size_t>(i)];
  }
  ymean /= wsum;
  double ss_res = 0.0, ss_tot = 0.0;
  for (int64_t i = 0; i < config.num_samples; ++i) {
    double pred = out.intercept;
    for (int64_t j = 0; j < d; ++j) {
      pred += out.weights[static_cast<size_t>(j)] *
              xs[static_cast<size_t>(i * d + j)];
    }
    const double wi = w[static_cast<size_t>(i)];
    ss_res += wi * (y[static_cast<size_t>(i)] - pred) *
              (y[static_cast<size_t>(i)] - pred);
    ss_tot += wi * (y[static_cast<size_t>(i)] - ymean) *
              (y[static_cast<size_t>(i)] - ymean);
  }
  out.fidelity_r2 = ss_tot > 1e-12 ? 1.0 - ss_res / ss_tot : 1.0;
  return out;
}

}  // namespace dlsys
