#include "src/interpret/inspector.h"

#include <algorithm>
#include <cmath>

namespace dlsys {

ModelInspector::ModelInspector(Sequential* model, const Tensor& probe) {
  DLSYS_CHECK(!probe.empty() && probe.rank() >= 2, "need a probe batch");
  examples_ = probe.dim(0);
  Tensor h = probe;
  for (int64_t li = 0; li < model->size(); ++li) {
    h = model->layer(li)->Forward(h, CacheMode::kNoCache);
    // Flatten to rows = examples for uniform unit indexing.
    int64_t width = h.size() / examples_;
    activations_.push_back(h.Reshaped({examples_, width}));
  }
}

double ModelInspector::UnitCorrelation(
    int64_t layer, int64_t unit, const std::vector<double>& property) const {
  const Tensor& acts = activations_[static_cast<size_t>(layer)];
  const int64_t width = acts.dim(1);
  double amean = 0.0, pmean = 0.0;
  for (int64_t i = 0; i < examples_; ++i) {
    amean += acts[i * width + unit];
    pmean += property[static_cast<size_t>(i)];
  }
  amean /= static_cast<double>(examples_);
  pmean /= static_cast<double>(examples_);
  double sap = 0.0, saa = 0.0, spp = 0.0;
  for (int64_t i = 0; i < examples_; ++i) {
    const double da = acts[i * width + unit] - amean;
    const double dp = property[static_cast<size_t>(i)] - pmean;
    sap += da * dp;
    saa += da * da;
    spp += dp * dp;
  }
  const double denom = std::sqrt(saa * spp);
  return denom > 1e-12 ? std::abs(sap / denom) : 0.0;
}

Result<std::vector<UnitAffinity>> ModelInspector::TopUnitsFor(
    const std::vector<double>& property, int64_t k) const {
  if (static_cast<int64_t>(property.size()) != examples_) {
    return Status::InvalidArgument("property length must match probe size");
  }
  if (k <= 0) return Status::InvalidArgument("k must be positive");
  std::vector<UnitAffinity> all;
  for (int64_t l = 0; l < num_layers(); ++l) {
    const int64_t width = activations_[static_cast<size_t>(l)].dim(1);
    for (int64_t u = 0; u < width; ++u) {
      all.push_back({l, u, UnitCorrelation(l, u, property)});
    }
  }
  const int64_t keep = std::min<int64_t>(k, static_cast<int64_t>(all.size()));
  std::partial_sort(all.begin(), all.begin() + keep, all.end(),
                    [](const UnitAffinity& a, const UnitAffinity& b) {
                      return a.score > b.score;
                    });
  all.resize(static_cast<size_t>(keep));
  return all;
}

Result<std::vector<UnitAffinity>> ModelInspector::TopUnitsInLayer(
    const std::vector<double>& property, int64_t layer, int64_t k) const {
  if (layer < 0 || layer >= num_layers()) {
    return Status::OutOfRange("layer index");
  }
  if (static_cast<int64_t>(property.size()) != examples_) {
    return Status::InvalidArgument("property length must match probe size");
  }
  if (k <= 0) return Status::InvalidArgument("k must be positive");
  std::vector<UnitAffinity> all;
  const int64_t width = activations_[static_cast<size_t>(layer)].dim(1);
  for (int64_t u = 0; u < width; ++u) {
    all.push_back({layer, u, UnitCorrelation(layer, u, property)});
  }
  const int64_t keep = std::min<int64_t>(k, width);
  std::partial_sort(all.begin(), all.begin() + keep, all.end(),
                    [](const UnitAffinity& a, const UnitAffinity& b) {
                      return a.score > b.score;
                    });
  all.resize(static_cast<size_t>(keep));
  return all;
}

Result<std::vector<double>> ModelInspector::LayerProfile(
    const std::vector<double>& property) const {
  if (static_cast<int64_t>(property.size()) != examples_) {
    return Status::InvalidArgument("property length must match probe size");
  }
  std::vector<double> profile;
  for (int64_t l = 0; l < num_layers(); ++l) {
    auto top = TopUnitsInLayer(property, l, 5);
    if (!top.ok()) return top.status();
    double mean = 0.0;
    for (const auto& u : *top) mean += u.score;
    profile.push_back(top->empty()
                          ? 0.0
                          : mean / static_cast<double>(top->size()));
  }
  return profile;
}

}  // namespace dlsys
