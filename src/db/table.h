#ifndef DLSYS_DB_TABLE_H_
#define DLSYS_DB_TABLE_H_

#include <cstdint>
#include <vector>

#include "src/core/rng.h"
#include "src/core/status.h"

/// \file table.h
/// \brief Synthetic relational tables and range-query workloads: the
/// evaluation substrate for learned cardinality estimation and semantic
/// compression (tutorial Part 2).
///
/// Columns are generated from a latent-factor model so inter-column
/// correlation is *controllable* — the regime where histogram estimators
/// with independence assumptions break and learned estimators shine.

namespace dlsys {

/// \brief A column-major numeric table.
struct Table {
  int64_t rows = 0;
  std::vector<std::vector<double>> columns;

  int64_t num_columns() const {
    return static_cast<int64_t>(columns.size());
  }
  double value(int64_t row, int64_t col) const {
    return columns[static_cast<size_t>(col)][static_cast<size_t>(row)];
  }
};

/// \brief Generates a table whose columns share \p correlation of their
/// variance through a single latent factor: col_j = corr * z + (1 -
/// corr) * noise_j, then squashed through column-specific monotone maps
/// so marginals differ.
Table MakeCorrelatedTable(int64_t rows, int64_t cols, double correlation,
                          Rng* rng);

/// \brief A conjunctive range predicate: lo[j] <= col_j <= hi[j] for all
/// j in a subset of columns (wildcards span the column's full range).
struct RangeQuery {
  std::vector<double> lo;
  std::vector<double> hi;
};

/// \brief True selectivity of \p q on \p t (fraction of matching rows).
double TrueSelectivity(const Table& t, const RangeQuery& q);

/// \brief Draws \p n random conjunctive range queries: each bounds a
/// random subset of columns around random data-space centers, with
/// selectivities spread over several orders of magnitude.
std::vector<RangeQuery> MakeWorkload(const Table& t, int64_t n, Rng* rng);

/// \brief q-error of an estimate against truth: max(est/true, true/est)
/// with both floored at \p floor_sel to avoid division blowups.
double QError(double estimate, double truth, double floor_sel = 1e-5);

}  // namespace dlsys

#endif  // DLSYS_DB_TABLE_H_
