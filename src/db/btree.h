#ifndef DLSYS_DB_BTREE_H_
#define DLSYS_DB_BTREE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/core/status.h"

/// \file btree.h
/// \brief In-memory B+-tree index: the classic access method that
/// learned indexes (tutorial Part 2, Kraska et al.) replace or enhance.
///
/// int64 keys map to int64 payloads (row positions). Leaves are linked
/// for range scans. Built from scratch as the baseline the learned index
/// must beat on size and compete with on lookup latency.

namespace dlsys {

/// \brief A B+-tree with configurable fanout.
class BTree {
 public:
  /// Constructs an empty tree. \p fanout is the max children per inner
  /// node (and max keys per leaf); must be >= 4.
  explicit BTree(int64_t fanout = 64);

  /// \brief Inserts (or overwrites) \p key -> \p value.
  void Insert(int64_t key, int64_t value);

  /// \brief Point lookup; NotFound if absent.
  Result<int64_t> Find(int64_t key) const;

  /// \brief All values with key in [lo, hi], in key order.
  std::vector<int64_t> RangeScan(int64_t lo, int64_t hi) const;

  /// \brief Number of stored keys.
  int64_t size() const { return size_; }
  /// \brief Height of the tree (1 = just a leaf).
  int64_t height() const { return height_; }
  /// \brief Approximate heap bytes of all nodes (keys + values +
  /// child pointers), the size the learned index competes against.
  int64_t MemoryBytes() const;

  /// \brief Bulk-loads from sorted (key, value) pairs; keys must be
  /// strictly increasing. Faster and produces dense leaves.
  static BTree BulkLoad(const std::vector<std::pair<int64_t, int64_t>>& sorted,
                        int64_t fanout = 64);

 private:
  struct Node {
    bool leaf = true;
    std::vector<int64_t> keys;
    std::vector<int64_t> values;                 // leaf payloads
    std::vector<std::unique_ptr<Node>> children; // inner children
    Node* next = nullptr;                        // leaf chain
  };

  // Splits child \p idx of \p parent, which must be full.
  void SplitChild(Node* parent, int64_t idx);
  void InsertNonFull(Node* node, int64_t key, int64_t value);
  int64_t NodeBytes(const Node* node) const;

  std::unique_ptr<Node> root_;
  int64_t fanout_;
  int64_t size_ = 0;
  int64_t height_ = 1;
};

}  // namespace dlsys

#endif  // DLSYS_DB_BTREE_H_
