#include "src/db/table.h"

#include <algorithm>
#include <cmath>

namespace dlsys {

Table MakeCorrelatedTable(int64_t rows, int64_t cols, double correlation,
                          Rng* rng) {
  DLSYS_CHECK(rows > 0 && cols > 0, "invalid table shape");
  DLSYS_CHECK(correlation >= 0.0 && correlation <= 1.0,
              "correlation must be in [0, 1]");
  Table t;
  t.rows = rows;
  t.columns.assign(static_cast<size_t>(cols),
                   std::vector<double>(static_cast<size_t>(rows)));
  const double a = std::sqrt(correlation);
  const double b = std::sqrt(1.0 - correlation);
  for (int64_t r = 0; r < rows; ++r) {
    const double z = rng->Gaussian();
    for (int64_t c = 0; c < cols; ++c) {
      const double raw = a * z + b * rng->Gaussian();
      // Column-specific monotone map: shifts/scales plus a mild
      // nonlinearity so marginals differ across columns.
      const double mapped =
          std::tanh(raw * (0.5 + 0.1 * static_cast<double>(c))) +
          0.05 * static_cast<double>(c);
      t.columns[static_cast<size_t>(c)][static_cast<size_t>(r)] = mapped;
    }
  }
  return t;
}

double TrueSelectivity(const Table& t, const RangeQuery& q) {
  DLSYS_CHECK(static_cast<int64_t>(q.lo.size()) == t.num_columns() &&
                  q.lo.size() == q.hi.size(),
              "query arity mismatch");
  int64_t hits = 0;
  for (int64_t r = 0; r < t.rows; ++r) {
    bool match = true;
    for (int64_t c = 0; c < t.num_columns(); ++c) {
      const double v = t.value(r, c);
      if (v < q.lo[static_cast<size_t>(c)] ||
          v > q.hi[static_cast<size_t>(c)]) {
        match = false;
        break;
      }
    }
    if (match) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(t.rows);
}

std::vector<RangeQuery> MakeWorkload(const Table& t, int64_t n, Rng* rng) {
  const int64_t cols = t.num_columns();
  // Column min/max for wildcard bounds.
  std::vector<double> cmin(static_cast<size_t>(cols));
  std::vector<double> cmax(static_cast<size_t>(cols));
  for (int64_t c = 0; c < cols; ++c) {
    const auto& col = t.columns[static_cast<size_t>(c)];
    cmin[static_cast<size_t>(c)] = *std::min_element(col.begin(), col.end());
    cmax[static_cast<size_t>(c)] = *std::max_element(col.begin(), col.end());
  }
  std::vector<RangeQuery> out;
  out.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    RangeQuery q;
    q.lo = cmin;
    q.hi = cmax;
    // Constrain a random non-empty subset of columns around a random
    // existing row (so queries land where the data lives).
    const int64_t center_row = static_cast<int64_t>(rng->Index(t.rows));
    int64_t constrained = 0;
    for (int64_t c = 0; c < cols; ++c) {
      if (!rng->Bernoulli(0.6) && constrained > 0) continue;
      const double center = t.value(center_row, c);
      const double width =
          (cmax[static_cast<size_t>(c)] - cmin[static_cast<size_t>(c)]) *
          std::pow(10.0, rng->Uniform(-1.6, -0.1));
      q.lo[static_cast<size_t>(c)] = center - width / 2;
      q.hi[static_cast<size_t>(c)] = center + width / 2;
      ++constrained;
    }
    out.push_back(std::move(q));
  }
  return out;
}

double QError(double estimate, double truth, double floor_sel) {
  const double e = std::max(estimate, floor_sel);
  const double t = std::max(truth, floor_sel);
  return std::max(e / t, t / e);
}

}  // namespace dlsys
