#include "src/db/stats_cache.h"

#include <algorithm>
#include <cmath>

namespace dlsys {

StatsCache::StatsCache(const Table* t, int64_t chunk_rows)
    : table_(t), chunk_rows_(chunk_rows) {
  DLSYS_CHECK(t != nullptr && t->rows > 0, "empty table");
  DLSYS_CHECK(chunk_rows > 0, "chunk_rows must be positive");
  num_chunks_ = (t->rows + chunk_rows - 1) / chunk_rows;
  const int64_t cols = t->num_columns();
  sums_.assign(static_cast<size_t>(cols),
               std::vector<double>(static_cast<size_t>(num_chunks_), 0.0));
  sq_sums_ = sums_;
  for (int64_t c = 0; c < cols; ++c) {
    const auto& col = t->columns[static_cast<size_t>(c)];
    for (int64_t r = 0; r < t->rows; ++r) {
      const int64_t chunk = r / chunk_rows_;
      const double v = col[static_cast<size_t>(r)];
      sums_[static_cast<size_t>(c)][static_cast<size_t>(chunk)] += v;
      sq_sums_[static_cast<size_t>(c)][static_cast<size_t>(chunk)] += v * v;
    }
  }
}

Status StatsCache::CheckRange(int64_t col, int64_t lo, int64_t hi) const {
  if (col < 0 || col >= table_->num_columns()) {
    return Status::OutOfRange("column index");
  }
  if (lo < 0 || hi > table_->rows || lo >= hi) {
    return Status::InvalidArgument("row range [" + std::to_string(lo) +
                                   ", " + std::to_string(hi) + ") invalid");
  }
  return Status::OK();
}

template <typename ScanFn>
double StatsCache::RangedSum(const std::vector<double>& chunk_totals,
                             int64_t lo, int64_t hi, ScanFn scan) const {
  double total = 0.0;
  const int64_t first_full = (lo + chunk_rows_ - 1) / chunk_rows_;
  const int64_t last_full = hi / chunk_rows_;  // exclusive chunk bound
  if (first_full >= last_full) {
    // Range inside one or two partial chunks: scan directly.
    for (int64_t r = lo; r < hi; ++r) total += scan(r);
    return total;
  }
  // Leading edge.
  for (int64_t r = lo; r < first_full * chunk_rows_; ++r) total += scan(r);
  // Interior chunks from the cache.
  for (int64_t c = first_full; c < last_full; ++c) {
    total += chunk_totals[static_cast<size_t>(c)];
  }
  // Trailing edge.
  for (int64_t r = last_full * chunk_rows_; r < hi; ++r) total += scan(r);
  return total;
}

Result<double> StatsCache::RangeMean(int64_t col, int64_t lo,
                                     int64_t hi) const {
  DLSYS_RETURN_NOT_OK(CheckRange(col, lo, hi));
  const auto& column = table_->columns[static_cast<size_t>(col)];
  const double sum =
      RangedSum(sums_[static_cast<size_t>(col)], lo, hi,
                [&](int64_t r) { return column[static_cast<size_t>(r)]; });
  return sum / static_cast<double>(hi - lo);
}

Result<double> StatsCache::RangeVariance(int64_t col, int64_t lo,
                                         int64_t hi) const {
  DLSYS_RETURN_NOT_OK(CheckRange(col, lo, hi));
  const auto& column = table_->columns[static_cast<size_t>(col)];
  const double n = static_cast<double>(hi - lo);
  const double sum =
      RangedSum(sums_[static_cast<size_t>(col)], lo, hi,
                [&](int64_t r) { return column[static_cast<size_t>(r)]; });
  const double sq =
      RangedSum(sq_sums_[static_cast<size_t>(col)], lo, hi, [&](int64_t r) {
        const double v = column[static_cast<size_t>(r)];
        return v * v;
      });
  const double mean = sum / n;
  return std::max(0.0, sq / n - mean * mean);
}

Result<double> StatsCache::RangeCorrelation(int64_t a, int64_t b, int64_t lo,
                                            int64_t hi) {
  DLSYS_RETURN_NOT_OK(CheckRange(a, lo, hi));
  DLSYS_RETURN_NOT_OK(CheckRange(b, lo, hi));
  if (a == b) return 1.0;
  const auto key = std::minmax(a, b);
  auto it = pair_sums_.find(key);
  if (it == pair_sums_.end()) {
    // Lazily build the pair's chunked product aggregates.
    std::vector<double> products(static_cast<size_t>(num_chunks_), 0.0);
    const auto& ca = table_->columns[static_cast<size_t>(key.first)];
    const auto& cb = table_->columns[static_cast<size_t>(key.second)];
    for (int64_t r = 0; r < table_->rows; ++r) {
      products[static_cast<size_t>(r / chunk_rows_)] +=
          ca[static_cast<size_t>(r)] * cb[static_cast<size_t>(r)];
    }
    it = pair_sums_.emplace(key, std::move(products)).first;
  }
  const auto& ca = table_->columns[static_cast<size_t>(a)];
  const auto& cb = table_->columns[static_cast<size_t>(b)];
  const double n = static_cast<double>(hi - lo);
  const double sum_ab =
      RangedSum(it->second, lo, hi, [&](int64_t r) {
        return ca[static_cast<size_t>(r)] * cb[static_cast<size_t>(r)];
      });
  auto mean_a = RangeMean(a, lo, hi);
  auto mean_b = RangeMean(b, lo, hi);
  auto var_a = RangeVariance(a, lo, hi);
  auto var_b = RangeVariance(b, lo, hi);
  const double cov = sum_ab / n - *mean_a * *mean_b;
  const double denom = std::sqrt(*var_a * *var_b);
  if (denom < 1e-300) return 0.0;
  return cov / denom;
}

int64_t StatsCache::MemoryBytes() const {
  int64_t bytes = 0;
  for (const auto& v : sums_) bytes += static_cast<int64_t>(v.size()) * 8;
  for (const auto& v : sq_sums_) bytes += static_cast<int64_t>(v.size()) * 8;
  for (const auto& [key, v] : pair_sums_) {
    bytes += static_cast<int64_t>(v.size()) * 8 + 16;
  }
  return bytes;
}

double StatsCache::ScanMean(const Table& t, int64_t col, int64_t lo,
                            int64_t hi) {
  double sum = 0.0;
  const auto& column = t.columns[static_cast<size_t>(col)];
  for (int64_t r = lo; r < hi; ++r) sum += column[static_cast<size_t>(r)];
  return sum / static_cast<double>(hi - lo);
}

double StatsCache::ScanVariance(const Table& t, int64_t col, int64_t lo,
                                int64_t hi) {
  const double mean = ScanMean(t, col, lo, hi);
  double var = 0.0;
  const auto& column = t.columns[static_cast<size_t>(col)];
  for (int64_t r = lo; r < hi; ++r) {
    const double d = column[static_cast<size_t>(r)] - mean;
    var += d * d;
  }
  return var / static_cast<double>(hi - lo);
}

double StatsCache::ScanCorrelation(const Table& t, int64_t a, int64_t b,
                                   int64_t lo, int64_t hi) {
  const double ma = ScanMean(t, a, lo, hi);
  const double mb = ScanMean(t, b, lo, hi);
  double sab = 0.0, saa = 0.0, sbb = 0.0;
  const auto& ca = t.columns[static_cast<size_t>(a)];
  const auto& cb = t.columns[static_cast<size_t>(b)];
  for (int64_t r = lo; r < hi; ++r) {
    const double da = ca[static_cast<size_t>(r)] - ma;
    const double db = cb[static_cast<size_t>(r)] - mb;
    sab += da * db;
    saa += da * da;
    sbb += db * db;
  }
  const double denom = std::sqrt(saa * sbb);
  return denom < 1e-300 ? 0.0 : sab / denom;
}

}  // namespace dlsys
