#ifndef DLSYS_DB_JOIN_H_
#define DLSYS_DB_JOIN_H_

#include <cstdint>
#include <vector>

#include "src/core/rng.h"
#include "src/core/status.h"

/// \file join.h
/// \brief Join-ordering substrate (tutorial Part 2): synthetic join
/// queries, a C_out cost model over left-deep plans, the classic
/// Selinger dynamic program (optimal, exponential), and greedy/random
/// baselines — everything the learned plan generator competes against.

namespace dlsys {

/// \brief A join query: relation cardinalities plus a pairwise
/// selectivity matrix (1.0 where no join predicate exists).
struct JoinQuery {
  std::vector<double> cardinality;            ///< rows per relation
  std::vector<std::vector<double>> selectivity;  ///< symmetric, 1.0 diag

  int64_t num_relations() const {
    return static_cast<int64_t>(cardinality.size());
  }
};

/// \brief Random query generator: cardinalities are lognormal over
/// [1e2, 1e7]; the join graph is a random spanning tree plus extra
/// predicates with probability \p extra_edge_prob; selectivities are
/// log-uniform in [1e-6, 1e-1].
JoinQuery MakeJoinQuery(int64_t relations, double extra_edge_prob, Rng* rng);

/// \brief Cardinality of the intermediate joining the given relation
/// subset: prod(cards) * prod(pairwise selectivities inside the set).
double SubsetCardinality(const JoinQuery& q,
                         const std::vector<int64_t>& subset);

/// \brief C_out cost of a left-deep plan: the sum of every intermediate
/// result's cardinality (prefixes of length 2..n).
double PlanCost(const JoinQuery& q, const std::vector<int64_t>& order);

/// \brief Selinger-style DP over relation subsets; exact optimum among
/// left-deep plans. Exponential in relations; rejects > 20 relations.
Result<std::vector<int64_t>> OptimalLeftDeep(const JoinQuery& q);

/// \brief Greedy baseline: start from the smallest relation, repeatedly
/// append the relation minimizing the next intermediate cardinality.
std::vector<int64_t> GreedyLeftDeep(const JoinQuery& q);

/// \brief Random-order baseline.
std::vector<int64_t> RandomOrder(const JoinQuery& q, Rng* rng);

}  // namespace dlsys

#endif  // DLSYS_DB_JOIN_H_
