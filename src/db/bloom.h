#ifndef DLSYS_DB_BLOOM_H_
#define DLSYS_DB_BLOOM_H_

#include <cstdint>
#include <vector>

#include "src/core/status.h"

/// \file bloom.h
/// \brief Classic Bloom filter: the baseline access-method helper that
/// learned Bloom filters (tutorial Part 2) improve on.

namespace dlsys {

/// \brief Bloom filter over int64 keys with double hashing.
class BloomFilter {
 public:
  /// Constructs with \p bits total bits and \p num_hashes probes.
  BloomFilter(int64_t bits, int64_t num_hashes);

  /// \brief Sizes a filter for \p expected_keys at \p bits_per_key,
  /// with the standard optimal hash count k = bits_per_key * ln 2.
  static BloomFilter ForKeys(int64_t expected_keys, double bits_per_key);

  /// \brief Inserts a key.
  void Insert(int64_t key);
  /// \brief True if the key may be present; false means definitely absent.
  bool MayContain(int64_t key) const;

  /// \brief Bits in the table.
  int64_t bits() const { return static_cast<int64_t>(table_.size()); }
  /// \brief Bytes of the bit table.
  int64_t MemoryBytes() const { return (bits() + 7) / 8; }
  /// \brief Hash probes per operation.
  int64_t num_hashes() const { return num_hashes_; }

  /// \brief Measured false-positive rate over \p probes keys drawn from
  /// \p non_members (keys known absent).
  double MeasureFpr(const std::vector<int64_t>& non_members) const;

 private:
  uint64_t HashBase(int64_t key) const;

  std::vector<bool> table_;
  int64_t num_hashes_;
};

}  // namespace dlsys

#endif  // DLSYS_DB_BLOOM_H_
