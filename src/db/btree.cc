#include "src/db/btree.h"

#include <algorithm>

namespace dlsys {

BTree::BTree(int64_t fanout) : fanout_(fanout) {
  DLSYS_CHECK(fanout >= 4, "fanout must be >= 4");
  root_ = std::make_unique<Node>();
}

void BTree::SplitChild(Node* parent, int64_t idx) {
  Node* child = parent->children[static_cast<size_t>(idx)].get();
  auto right = std::make_unique<Node>();
  right->leaf = child->leaf;
  const size_t mid = child->keys.size() / 2;
  int64_t separator;
  if (child->leaf) {
    separator = child->keys[mid];
    right->keys.assign(child->keys.begin() + mid, child->keys.end());
    right->values.assign(child->values.begin() + mid, child->values.end());
    child->keys.resize(mid);
    child->values.resize(mid);
    right->next = child->next;
    child->next = right.get();
  } else {
    separator = child->keys[mid];
    right->keys.assign(child->keys.begin() + mid + 1, child->keys.end());
    for (size_t i = mid + 1; i < child->children.size(); ++i) {
      right->children.push_back(std::move(child->children[i]));
    }
    child->keys.resize(mid);
    child->children.resize(mid + 1);
  }
  parent->keys.insert(parent->keys.begin() + idx, separator);
  parent->children.insert(parent->children.begin() + idx + 1,
                          std::move(right));
}

void BTree::InsertNonFull(Node* node, int64_t key, int64_t value) {
  while (!node->leaf) {
    // Descend; split full children on the way down.
    int64_t idx = static_cast<int64_t>(
        std::upper_bound(node->keys.begin(), node->keys.end(), key) -
        node->keys.begin());
    Node* child = node->children[static_cast<size_t>(idx)].get();
    if (static_cast<int64_t>(child->keys.size()) >= fanout_) {
      SplitChild(node, idx);
      if (key >= node->keys[static_cast<size_t>(idx)]) ++idx;
      child = node->children[static_cast<size_t>(idx)].get();
    }
    node = child;
  }
  auto it = std::lower_bound(node->keys.begin(), node->keys.end(), key);
  const int64_t pos = static_cast<int64_t>(it - node->keys.begin());
  if (it != node->keys.end() && *it == key) {
    node->values[static_cast<size_t>(pos)] = value;  // overwrite
    return;
  }
  node->keys.insert(it, key);
  node->values.insert(node->values.begin() + pos, value);
  ++size_;
}

void BTree::Insert(int64_t key, int64_t value) {
  if (static_cast<int64_t>(root_->keys.size()) >= fanout_) {
    auto new_root = std::make_unique<Node>();
    new_root->leaf = false;
    new_root->children.push_back(std::move(root_));
    root_ = std::move(new_root);
    SplitChild(root_.get(), 0);
    ++height_;
  }
  InsertNonFull(root_.get(), key, value);
}

Result<int64_t> BTree::Find(int64_t key) const {
  const Node* node = root_.get();
  while (!node->leaf) {
    const int64_t idx = static_cast<int64_t>(
        std::upper_bound(node->keys.begin(), node->keys.end(), key) -
        node->keys.begin());
    node = node->children[static_cast<size_t>(idx)].get();
  }
  auto it = std::lower_bound(node->keys.begin(), node->keys.end(), key);
  if (it != node->keys.end() && *it == key) {
    return node->values[static_cast<size_t>(it - node->keys.begin())];
  }
  return Status::NotFound("key " + std::to_string(key));
}

std::vector<int64_t> BTree::RangeScan(int64_t lo, int64_t hi) const {
  std::vector<int64_t> out;
  const Node* node = root_.get();
  while (!node->leaf) {
    const int64_t idx = static_cast<int64_t>(
        std::upper_bound(node->keys.begin(), node->keys.end(), lo) -
        node->keys.begin());
    node = node->children[static_cast<size_t>(idx)].get();
  }
  while (node != nullptr) {
    for (size_t i = 0; i < node->keys.size(); ++i) {
      if (node->keys[i] < lo) continue;
      if (node->keys[i] > hi) return out;
      out.push_back(node->values[i]);
    }
    node = node->next;
  }
  return out;
}

int64_t BTree::NodeBytes(const Node* node) const {
  int64_t bytes = static_cast<int64_t>(sizeof(Node));
  bytes += static_cast<int64_t>(node->keys.size()) * 8;
  bytes += static_cast<int64_t>(node->values.size()) * 8;
  bytes += static_cast<int64_t>(node->children.size()) * 8;
  for (const auto& c : node->children) bytes += NodeBytes(c.get());
  return bytes;
}

int64_t BTree::MemoryBytes() const { return NodeBytes(root_.get()); }

BTree BTree::BulkLoad(
    const std::vector<std::pair<int64_t, int64_t>>& sorted, int64_t fanout) {
  BTree tree(fanout);
  for (const auto& [k, v] : sorted) tree.Insert(k, v);
  return tree;
}

}  // namespace dlsys
