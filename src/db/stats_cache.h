#ifndef DLSYS_DB_STATS_CACHE_H_
#define DLSYS_DB_STATS_CACHE_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/core/status.h"
#include "src/db/table.h"

/// \file stats_cache.h
/// \brief Data-Canopy-style statistics cache (tutorial Part 2 / data
/// exploration, Wasay et al. SIGMOD'17): decompose descriptive
/// statistics into chunk-level basic aggregates (counts, sums, sums of
/// squares, sums of products), cache those once, and synthesize any
/// range statistic from cached chunks instead of rescanning the data.
///
/// Interior chunks are served from the cache; the partial chunks at the
/// range edges are scanned. Pairwise product aggregates are built
/// lazily on the first correlation over a column pair and cached for
/// every later query.

namespace dlsys {

/// \brief The cache over one table.
class StatsCache {
 public:
  /// \brief Builds chunk aggregates for every column of \p t.
  /// \p chunk_rows is the chunk granularity (smaller = finer ranges
  /// served fully from cache, more cache memory).
  StatsCache(const Table* t, int64_t chunk_rows);

  /// \brief Mean of column \p col over rows [lo, hi).
  Result<double> RangeMean(int64_t col, int64_t lo, int64_t hi) const;
  /// \brief Population variance of column \p col over rows [lo, hi).
  Result<double> RangeVariance(int64_t col, int64_t lo, int64_t hi) const;
  /// \brief Pearson correlation of two columns over rows [lo, hi).
  /// Builds (and caches) the pair's product aggregates on first use.
  Result<double> RangeCorrelation(int64_t a, int64_t b, int64_t lo,
                                  int64_t hi);

  /// \brief Cache memory in bytes (chunk aggregates + cached pairs).
  int64_t MemoryBytes() const;
  /// \brief Number of column pairs with cached product aggregates.
  int64_t cached_pairs() const {
    return static_cast<int64_t>(pair_sums_.size());
  }

  /// \brief Naive baselines that scan the raw rows (for benches/tests).
  static double ScanMean(const Table& t, int64_t col, int64_t lo,
                         int64_t hi);
  static double ScanVariance(const Table& t, int64_t col, int64_t lo,
                             int64_t hi);
  static double ScanCorrelation(const Table& t, int64_t a, int64_t b,
                                int64_t lo, int64_t hi);

 private:
  // Sum of f(row) over [lo, hi) where interior chunks come from
  // \p chunk_totals and edges are scanned via \p scan (returning the
  // per-row value).
  template <typename ScanFn>
  double RangedSum(const std::vector<double>& chunk_totals, int64_t lo,
                   int64_t hi, ScanFn scan) const;

  Status CheckRange(int64_t col, int64_t lo, int64_t hi) const;

  const Table* table_;
  int64_t chunk_rows_;
  int64_t num_chunks_;
  std::vector<std::vector<double>> sums_;     ///< per column, per chunk
  std::vector<std::vector<double>> sq_sums_;  ///< per column, per chunk
  std::map<std::pair<int64_t, int64_t>, std::vector<double>> pair_sums_;
};

}  // namespace dlsys

#endif  // DLSYS_DB_STATS_CACHE_H_
