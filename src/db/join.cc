#include "src/db/join.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace dlsys {

JoinQuery MakeJoinQuery(int64_t relations, double extra_edge_prob,
                        Rng* rng) {
  DLSYS_CHECK(relations >= 2, "need at least two relations");
  JoinQuery q;
  q.cardinality.resize(static_cast<size_t>(relations));
  for (double& c : q.cardinality) {
    c = std::pow(10.0, rng->Uniform(2.0, 7.0));
  }
  q.selectivity.assign(
      static_cast<size_t>(relations),
      std::vector<double>(static_cast<size_t>(relations), 1.0));
  auto set_edge = [&](int64_t a, int64_t b) {
    const double sel = std::pow(10.0, rng->Uniform(-6.0, -1.0));
    q.selectivity[static_cast<size_t>(a)][static_cast<size_t>(b)] = sel;
    q.selectivity[static_cast<size_t>(b)][static_cast<size_t>(a)] = sel;
  };
  // Random spanning tree keeps the graph connected.
  for (int64_t r = 1; r < relations; ++r) {
    set_edge(r, static_cast<int64_t>(rng->Index(static_cast<uint64_t>(r))));
  }
  for (int64_t a = 0; a < relations; ++a) {
    for (int64_t b = a + 1; b < relations; ++b) {
      if (q.selectivity[static_cast<size_t>(a)][static_cast<size_t>(b)] ==
              1.0 &&
          rng->Bernoulli(extra_edge_prob)) {
        set_edge(a, b);
      }
    }
  }
  return q;
}

double SubsetCardinality(const JoinQuery& q,
                         const std::vector<int64_t>& subset) {
  double log_card = 0.0;
  for (size_t i = 0; i < subset.size(); ++i) {
    log_card += std::log(q.cardinality[static_cast<size_t>(subset[i])]);
    for (size_t j = i + 1; j < subset.size(); ++j) {
      log_card += std::log(
          q.selectivity[static_cast<size_t>(subset[i])]
                       [static_cast<size_t>(subset[j])]);
    }
  }
  return std::exp(log_card);
}

double PlanCost(const JoinQuery& q, const std::vector<int64_t>& order) {
  DLSYS_CHECK(static_cast<int64_t>(order.size()) == q.num_relations(),
              "order must include every relation");
  double cost = 0.0;
  std::vector<int64_t> prefix;
  prefix.push_back(order[0]);
  for (size_t p = 1; p < order.size(); ++p) {
    prefix.push_back(order[p]);
    cost += SubsetCardinality(q, prefix);
  }
  return cost;
}

Result<std::vector<int64_t>> OptimalLeftDeep(const JoinQuery& q) {
  const int64_t n = q.num_relations();
  if (n > 20) {
    return Status::InvalidArgument(
        "DP limited to 20 relations (exponential state)");
  }
  const int64_t states = int64_t{1} << n;
  // Precompute subset cardinalities incrementally via bit tricks.
  std::vector<double> best(static_cast<size_t>(states),
                           std::numeric_limits<double>::infinity());
  std::vector<int64_t> last(static_cast<size_t>(states), -1);
  std::vector<double> subset_card(static_cast<size_t>(states), 0.0);
  for (int64_t mask = 1; mask < states; ++mask) {
    std::vector<int64_t> subset;
    for (int64_t r = 0; r < n; ++r) {
      if (mask & (int64_t{1} << r)) subset.push_back(r);
    }
    subset_card[static_cast<size_t>(mask)] = SubsetCardinality(q, subset);
  }
  for (int64_t r = 0; r < n; ++r) {
    best[static_cast<size_t>(int64_t{1} << r)] = 0.0;  // single relation
    last[static_cast<size_t>(int64_t{1} << r)] = r;
  }
  for (int64_t mask = 1; mask < states; ++mask) {
    if (__builtin_popcountll(static_cast<unsigned long long>(mask)) < 2) {
      continue;
    }
    for (int64_t r = 0; r < n; ++r) {
      const int64_t bit = int64_t{1} << r;
      if (!(mask & bit)) continue;
      const int64_t prev = mask ^ bit;
      const double cost = best[static_cast<size_t>(prev)] +
                          subset_card[static_cast<size_t>(mask)];
      if (cost < best[static_cast<size_t>(mask)]) {
        best[static_cast<size_t>(mask)] = cost;
        last[static_cast<size_t>(mask)] = r;
      }
    }
  }
  // Reconstruct the order.
  std::vector<int64_t> order;
  int64_t mask = states - 1;
  while (mask != 0) {
    const int64_t r = last[static_cast<size_t>(mask)];
    order.push_back(r);
    mask ^= int64_t{1} << r;
  }
  std::reverse(order.begin(), order.end());
  return order;
}

std::vector<int64_t> GreedyLeftDeep(const JoinQuery& q) {
  const int64_t n = q.num_relations();
  std::vector<bool> used(static_cast<size_t>(n), false);
  std::vector<int64_t> order;
  // Start from the smallest relation.
  int64_t first = 0;
  for (int64_t r = 1; r < n; ++r) {
    if (q.cardinality[static_cast<size_t>(r)] <
        q.cardinality[static_cast<size_t>(first)]) {
      first = r;
    }
  }
  order.push_back(first);
  used[static_cast<size_t>(first)] = true;
  while (static_cast<int64_t>(order.size()) < n) {
    int64_t pick = -1;
    double pick_card = std::numeric_limits<double>::infinity();
    for (int64_t r = 0; r < n; ++r) {
      if (used[static_cast<size_t>(r)]) continue;
      std::vector<int64_t> trial = order;
      trial.push_back(r);
      const double card = SubsetCardinality(q, trial);
      if (card < pick_card) {
        pick_card = card;
        pick = r;
      }
    }
    order.push_back(pick);
    used[static_cast<size_t>(pick)] = true;
  }
  return order;
}

std::vector<int64_t> RandomOrder(const JoinQuery& q, Rng* rng) {
  std::vector<int64_t> order(static_cast<size_t>(q.num_relations()));
  for (int64_t r = 0; r < q.num_relations(); ++r) {
    order[static_cast<size_t>(r)] = r;
  }
  rng->Shuffle(&order);
  return order;
}

}  // namespace dlsys
