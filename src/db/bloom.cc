#include "src/db/bloom.h"

#include <cmath>

namespace dlsys {

BloomFilter::BloomFilter(int64_t bits, int64_t num_hashes)
    : table_(static_cast<size_t>(bits), false), num_hashes_(num_hashes) {
  DLSYS_CHECK(bits > 0, "bloom filter needs at least one bit");
  DLSYS_CHECK(num_hashes > 0, "bloom filter needs at least one hash");
}

BloomFilter BloomFilter::ForKeys(int64_t expected_keys, double bits_per_key) {
  DLSYS_CHECK(expected_keys > 0 && bits_per_key > 0.0,
              "invalid bloom sizing");
  const int64_t bits = std::max<int64_t>(
      64, static_cast<int64_t>(std::llround(
              bits_per_key * static_cast<double>(expected_keys))));
  const int64_t k = std::max<int64_t>(
      1, static_cast<int64_t>(std::llround(bits_per_key * 0.6931)));
  return BloomFilter(bits, k);
}

uint64_t BloomFilter::HashBase(int64_t key) const {
  // SplitMix64 finalizer: well-mixed 64 bits from the key.
  uint64_t x = static_cast<uint64_t>(key) + 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

void BloomFilter::Insert(int64_t key) {
  const uint64_t h = HashBase(key);
  const uint64_t h1 = h & 0xFFFFFFFFULL;
  const uint64_t h2 = (h >> 32) | 1ULL;  // odd => full-cycle double hashing
  const uint64_t m = static_cast<uint64_t>(table_.size());
  for (int64_t i = 0; i < num_hashes_; ++i) {
    table_[(h1 + static_cast<uint64_t>(i) * h2) % m] = true;
  }
}

bool BloomFilter::MayContain(int64_t key) const {
  const uint64_t h = HashBase(key);
  const uint64_t h1 = h & 0xFFFFFFFFULL;
  const uint64_t h2 = (h >> 32) | 1ULL;
  const uint64_t m = static_cast<uint64_t>(table_.size());
  for (int64_t i = 0; i < num_hashes_; ++i) {
    if (!table_[(h1 + static_cast<uint64_t>(i) * h2) % m]) return false;
  }
  return true;
}

double BloomFilter::MeasureFpr(const std::vector<int64_t>& non_members) const {
  if (non_members.empty()) return 0.0;
  int64_t positives = 0;
  for (int64_t key : non_members) {
    if (MayContain(key)) ++positives;
  }
  return static_cast<double>(positives) /
         static_cast<double>(non_members.size());
}

}  // namespace dlsys
