#ifndef DLSYS_DB_TUNABLE_DB_H_
#define DLSYS_DB_TUNABLE_DB_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/status.h"

/// \file tunable_db.h
/// \brief A simulated database with tunable knobs: the environment for
/// deep-RL-style knob tuning (tutorial Part 2, QTune/CDBTune-flavoured).
///
/// Substitution (DESIGN.md): instead of a production DBMS we expose an
/// analytic latency response surface over three discrete knobs with
/// realistic structure — buffer-pool hit curves, page-size/scan
/// interaction, thread contention — plus deterministic knob-dependent
/// ruggedness so the optimum is not trivially separable per knob.

namespace dlsys {

/// \brief A knob configuration, as indices into each knob's grid.
struct DbKnobs {
  int64_t buffer_idx = 0;   ///< buffer pool size grid index
  int64_t page_idx = 0;     ///< page size grid index
  int64_t threads_idx = 0;  ///< worker thread count grid index
};

/// \brief Workload profile the simulated DB serves.
struct DbWorkload {
  double read_ratio = 0.8;       ///< reads vs writes
  double scan_fraction = 0.3;    ///< fraction of reads that are scans
  double working_set_mb = 512;   ///< hot data size
};

/// \brief The simulated tunable database.
class TunableDb {
 public:
  explicit TunableDb(DbWorkload workload, uint64_t seed = 7);

  /// \brief Mean query latency (ms) at a knob setting. Deterministic.
  double LatencyMs(const DbKnobs& knobs) const;

  /// \brief Grid sizes: {buffer, page, threads}.
  std::vector<int64_t> GridSizes() const;
  /// \brief Total number of configurations.
  int64_t NumConfigs() const;
  /// \brief Validates knob indices against the grids.
  Status Validate(const DbKnobs& knobs) const;

  /// \brief Exhaustive-search optimum (ground truth for evaluation).
  DbKnobs BestKnobs() const;
  /// \brief Latency at the exhaustive optimum.
  double BestLatencyMs() const;

  /// \brief Human-readable rendering of a configuration.
  std::string Describe(const DbKnobs& knobs) const;

 private:
  DbWorkload workload_;
  uint64_t seed_;
  std::vector<double> buffer_mb_grid_;
  std::vector<double> page_kb_grid_;
  std::vector<double> threads_grid_;
};

}  // namespace dlsys

#endif  // DLSYS_DB_TUNABLE_DB_H_
