#include "src/db/tunable_db.h"

#include <cmath>

namespace dlsys {

TunableDb::TunableDb(DbWorkload workload, uint64_t seed)
    : workload_(workload), seed_(seed) {
  buffer_mb_grid_ = {64, 128, 256, 512, 1024, 2048, 4096, 8192};
  page_kb_grid_ = {4, 8, 16, 32, 64, 128};
  threads_grid_ = {1, 2, 4, 8, 16, 32};
}

std::vector<int64_t> TunableDb::GridSizes() const {
  return {static_cast<int64_t>(buffer_mb_grid_.size()),
          static_cast<int64_t>(page_kb_grid_.size()),
          static_cast<int64_t>(threads_grid_.size())};
}

int64_t TunableDb::NumConfigs() const {
  return static_cast<int64_t>(buffer_mb_grid_.size() * page_kb_grid_.size() *
                              threads_grid_.size());
}

Status TunableDb::Validate(const DbKnobs& k) const {
  const auto sizes = GridSizes();
  if (k.buffer_idx < 0 || k.buffer_idx >= sizes[0] || k.page_idx < 0 ||
      k.page_idx >= sizes[1] || k.threads_idx < 0 ||
      k.threads_idx >= sizes[2]) {
    return Status::OutOfRange("knob index outside grid");
  }
  return Status::OK();
}

double TunableDb::LatencyMs(const DbKnobs& k) const {
  DLSYS_CHECK(Validate(k).ok(), "invalid knobs");
  const double buffer_mb = buffer_mb_grid_[static_cast<size_t>(k.buffer_idx)];
  const double page_kb = page_kb_grid_[static_cast<size_t>(k.page_idx)];
  const double threads = threads_grid_[static_cast<size_t>(k.threads_idx)];

  // Buffer pool: miss rate decays with pool size relative to the working
  // set; each miss costs a disk read whose time scales with page size.
  const double hit_rate =
      1.0 - std::exp(-1.2 * buffer_mb / workload_.working_set_mb);
  const double miss_rate = 1.0 - hit_rate;
  const double disk_read_ms = 0.1 + page_kb * 0.01;
  const double point_read_ms = 0.02 + miss_rate * disk_read_ms;

  // Scans: larger pages amortize per-page overhead.
  const double scan_ms = 2.0 * (4.0 / page_kb + 0.25) +
                         miss_rate * disk_read_ms * 4.0;

  // Writes: large pages amplify write cost; large buffers defer flushes.
  const double write_ms =
      0.05 + page_kb * 0.004 + 0.3 * std::exp(-buffer_mb / 2048.0);

  double per_query =
      workload_.read_ratio * ((1.0 - workload_.scan_fraction) * point_read_ms +
                              workload_.scan_fraction * scan_ms) +
      (1.0 - workload_.read_ratio) * write_ms;

  // Threads: speedup saturates (Amdahl-ish), contention past the knee.
  const double speedup = threads / (1.0 + 0.08 * threads * threads / 8.0);
  per_query /= std::max(speedup, 0.1);

  // Deterministic ruggedness: small knob-interaction term so the surface
  // is not perfectly separable per knob.
  uint64_t h = seed_ ^ (static_cast<uint64_t>(k.buffer_idx) * 73856093ULL) ^
               (static_cast<uint64_t>(k.page_idx) * 19349663ULL) ^
               (static_cast<uint64_t>(k.threads_idx) * 83492791ULL);
  h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9ULL;
  const double rugged =
      0.04 * (static_cast<double>(h % 1000) / 1000.0 - 0.5);
  return per_query * (1.0 + rugged);
}

DbKnobs TunableDb::BestKnobs() const {
  DbKnobs best;
  double best_latency = 1e300;
  const auto sizes = GridSizes();
  for (int64_t b = 0; b < sizes[0]; ++b) {
    for (int64_t p = 0; p < sizes[1]; ++p) {
      for (int64_t t = 0; t < sizes[2]; ++t) {
        DbKnobs k{b, p, t};
        const double lat = LatencyMs(k);
        if (lat < best_latency) {
          best_latency = lat;
          best = k;
        }
      }
    }
  }
  return best;
}

double TunableDb::BestLatencyMs() const { return LatencyMs(BestKnobs()); }

std::string TunableDb::Describe(const DbKnobs& k) const {
  return "buffer=" +
         std::to_string(
             static_cast<int64_t>(buffer_mb_grid_[static_cast<size_t>(
                 k.buffer_idx)])) +
         "MB page=" +
         std::to_string(static_cast<int64_t>(
             page_kb_grid_[static_cast<size_t>(k.page_idx)])) +
         "KB threads=" +
         std::to_string(static_cast<int64_t>(
             threads_grid_[static_cast<size_t>(k.threads_idx)]));
}

}  // namespace dlsys
