#ifndef DLSYS_DB_HISTOGRAM_H_
#define DLSYS_DB_HISTOGRAM_H_

#include <cstdint>
#include <vector>

#include "src/core/status.h"
#include "src/db/table.h"

/// \file histogram.h
/// \brief Classic histogram statistics and the
/// attribute-value-independence (AVI) selectivity estimator: the baseline
/// learned cardinality estimation (tutorial Part 2) is measured against.

namespace dlsys {

/// \brief A 1-D histogram over a column.
class Histogram {
 public:
  /// \brief Builds an equi-width histogram with \p buckets buckets.
  static Histogram EquiWidth(const std::vector<double>& column,
                             int64_t buckets);
  /// \brief Builds an equi-depth histogram with \p buckets buckets
  /// (bucket boundaries at quantiles; resolves ties by value).
  static Histogram EquiDepth(const std::vector<double>& column,
                             int64_t buckets);

  /// \brief Estimated fraction of values in [lo, hi], with linear
  /// interpolation inside partially-covered buckets.
  double EstimateRange(double lo, double hi) const;

  /// \brief Number of buckets.
  int64_t buckets() const {
    return static_cast<int64_t>(counts_.size());
  }
  /// \brief Bytes: boundaries + counts.
  int64_t MemoryBytes() const {
    return static_cast<int64_t>(bounds_.size() + counts_.size()) * 8;
  }

 private:
  std::vector<double> bounds_;  ///< buckets()+1 boundaries, increasing
  std::vector<double> counts_;  ///< fraction of rows per bucket
  int64_t total_ = 0;
};

/// \brief Per-column histograms combined under the independence
/// assumption: sel(q) = prod_j sel_j(q_j).
class AviEstimator {
 public:
  /// \brief Builds per-column equi-depth histograms over \p t.
  AviEstimator(const Table& t, int64_t buckets_per_column);

  /// \brief AVI selectivity estimate for a conjunctive range query.
  double Estimate(const RangeQuery& q) const;

  /// \brief Total statistics bytes.
  int64_t MemoryBytes() const;

 private:
  std::vector<Histogram> histograms_;
};

}  // namespace dlsys

#endif  // DLSYS_DB_HISTOGRAM_H_
