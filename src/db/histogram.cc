#include "src/db/histogram.h"

#include <algorithm>
#include <cmath>

namespace dlsys {

Histogram Histogram::EquiWidth(const std::vector<double>& column,
                               int64_t buckets) {
  DLSYS_CHECK(!column.empty() && buckets > 0, "invalid histogram input");
  Histogram h;
  const double lo = *std::min_element(column.begin(), column.end());
  double hi = *std::max_element(column.begin(), column.end());
  if (hi == lo) hi = lo + 1e-12;
  h.bounds_.resize(static_cast<size_t>(buckets + 1));
  for (int64_t b = 0; b <= buckets; ++b) {
    h.bounds_[static_cast<size_t>(b)] =
        lo + (hi - lo) * static_cast<double>(b) / static_cast<double>(buckets);
  }
  h.counts_.assign(static_cast<size_t>(buckets), 0.0);
  for (double v : column) {
    int64_t b = static_cast<int64_t>((v - lo) / (hi - lo) *
                                     static_cast<double>(buckets));
    b = std::clamp<int64_t>(b, 0, buckets - 1);
    h.counts_[static_cast<size_t>(b)] += 1.0;
  }
  for (double& c : h.counts_) c /= static_cast<double>(column.size());
  h.total_ = static_cast<int64_t>(column.size());
  return h;
}

Histogram Histogram::EquiDepth(const std::vector<double>& column,
                               int64_t buckets) {
  DLSYS_CHECK(!column.empty() && buckets > 0, "invalid histogram input");
  std::vector<double> sorted = column;
  std::sort(sorted.begin(), sorted.end());
  Histogram h;
  const int64_t n = static_cast<int64_t>(sorted.size());
  h.bounds_.push_back(sorted.front());
  h.counts_.clear();
  int64_t start = 0;
  for (int64_t b = 1; b <= buckets; ++b) {
    int64_t end = (n * b) / buckets;
    if (end <= start) continue;
    double bound = b == buckets ? sorted.back()
                                : sorted[static_cast<size_t>(end - 1)];
    // Guarantee strictly increasing bounds under ties.
    if (bound <= h.bounds_.back()) {
      bound = std::nextafter(h.bounds_.back(), 1e300);
    }
    h.bounds_.push_back(bound);
    h.counts_.push_back(static_cast<double>(end - start) /
                        static_cast<double>(n));
    start = end;
  }
  h.total_ = n;
  return h;
}

double Histogram::EstimateRange(double lo, double hi) const {
  if (hi < lo) return 0.0;
  double total = 0.0;
  for (size_t b = 0; b < counts_.size(); ++b) {
    const double blo = bounds_[b];
    const double bhi = bounds_[b + 1];
    const double width = std::max(bhi - blo, 1e-300);
    const double overlap =
        std::max(0.0, std::min(hi, bhi) - std::max(lo, blo));
    if (overlap > 0.0) total += counts_[b] * (overlap / width);
  }
  return std::min(total, 1.0);
}

AviEstimator::AviEstimator(const Table& t, int64_t buckets_per_column) {
  for (int64_t c = 0; c < t.num_columns(); ++c) {
    histograms_.push_back(Histogram::EquiDepth(
        t.columns[static_cast<size_t>(c)], buckets_per_column));
  }
}

double AviEstimator::Estimate(const RangeQuery& q) const {
  DLSYS_CHECK(q.lo.size() == histograms_.size(), "query arity mismatch");
  double sel = 1.0;
  for (size_t c = 0; c < histograms_.size(); ++c) {
    sel *= histograms_[c].EstimateRange(q.lo[c], q.hi[c]);
  }
  return sel;
}

int64_t AviEstimator::MemoryBytes() const {
  int64_t bytes = 0;
  for (const auto& h : histograms_) bytes += h.MemoryBytes();
  return bytes;
}

}  // namespace dlsys
