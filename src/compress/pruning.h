#ifndef DLSYS_COMPRESS_PRUNING_H_
#define DLSYS_COMPRESS_PRUNING_H_

#include <cstdint>
#include <vector>

#include "src/core/rng.h"
#include "src/core/status.h"
#include "src/data/dataset.h"
#include "src/nn/sequential.h"

/// \file pruning.h
/// \brief Parameter pruning (tutorial Section 2.1).
///
/// Pruning removes parameters judged unnecessary. This module implements
/// the three signal families the tutorial surveys — magnitude, loss
/// sensitivity (first-order Taylor |w * dL/dw|), and a random baseline —
/// plus filter-level (structured) pruning, and mask-preserving finetuning
/// so pruned weights stay zero during retraining.

namespace dlsys {

/// \brief What evidence decides which parameters go.
enum class PruneCriterion {
  kMagnitude,        ///< prune smallest |w|
  kLossSensitivity,  ///< prune smallest |w * dL/dw| on calibration data
  kRandom,           ///< prune uniformly at random (ablation baseline)
};

/// \brief A 0/1 mask per weight tensor; 0 marks pruned coordinates.
///
/// Only weight matrices/filters are maskable; biases are never pruned.
class PruneMask {
 public:
  /// \brief Builds an all-ones mask shaped like \p net's weight tensors.
  explicit PruneMask(Sequential* net);

  /// \brief Zeroes masked coordinates of the network's weights.
  void Apply(Sequential* net) const;
  /// \brief Zeroes masked coordinates of the network's *gradients*, so a
  /// finetuning step cannot revive pruned weights.
  void ApplyToGrads(Sequential* net) const;
  /// \brief Fraction of maskable weights currently pruned.
  double Sparsity() const;
  /// \brief Number of surviving (unpruned) weights.
  int64_t NumAlive() const;
  /// \brief Mutable mask tensors (one per weight tensor, in layer order).
  std::vector<Tensor>& masks() { return masks_; }
  const std::vector<Tensor>& masks() const { return masks_; }

 private:
  std::vector<Tensor> masks_;
};

/// \brief Builds a mask pruning the \p sparsity fraction of weights with
/// the globally smallest score under \p criterion.
///
/// kLossSensitivity requires \p calibration (a batch to measure gradients
/// on); the others ignore it. \p rng is used by kRandom only.
Result<PruneMask> BuildPruneMask(Sequential* net, PruneCriterion criterion,
                                 double sparsity, const Dataset* calibration,
                                 Rng* rng);

/// \brief Builds a structured mask that removes whole output units
/// (columns of Dense weights / filters of Conv weights) with the smallest
/// L2 norm, until at least \p sparsity of weights are pruned.
Result<PruneMask> BuildFilterPruneMask(Sequential* net, double sparsity);

/// \brief Sparse storage estimate for the pruned model: 4 bytes per
/// surviving weight + 4 bytes per index (COO) + dense biases.
int64_t SparseModelBytes(Sequential* net, const PruneMask& mask);

}  // namespace dlsys

#endif  // DLSYS_COMPRESS_PRUNING_H_
