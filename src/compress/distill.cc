#include "src/compress/distill.h"

#include "src/nn/loss.h"
#include "src/tensor/ops.h"

namespace dlsys {

Result<MetricsReport> Distill(Sequential* teacher, Sequential* student,
                              Optimizer* opt, const Dataset& data,
                              const DistillConfig& config) {
  if (data.size() == 0) {
    return Status::InvalidArgument("distillation data is empty");
  }
  if (config.temperature <= 0.0) {
    return Status::InvalidArgument("temperature must be positive");
  }
  if (config.alpha < 0.0 || config.alpha > 1.0) {
    return Status::InvalidArgument("alpha must be in [0, 1]");
  }
  MetricsReport report;
  Stopwatch watch;
  Rng shuffle_rng(config.shuffle_seed);
  Dataset shuffled = data;
  const float inv_t = static_cast<float>(1.0 / config.temperature);
  const float t2 = static_cast<float>(config.temperature * config.temperature);
  const auto params = student->Params();
  const auto grads = student->Grads();
  double last_loss = 0.0;
  for (int64_t epoch = 0; epoch < config.epochs; ++epoch) {
    ShuffleDataset(&shuffled, &shuffle_rng);
    for (BatchIterator it(shuffled, config.batch_size); !it.Done();
         it.Next()) {
      Dataset batch = it.Get();
      // Teacher's softened target distribution (no caching needed).
      Tensor t_logits = teacher->Forward(batch.x, CacheMode::kNoCache);
      Tensor t_soft = t_logits;
      Scale(inv_t, &t_soft);
      Tensor targets = RowSoftmax(t_soft);

      student->ZeroGrads();
      Tensor s_logits = student->Forward(batch.x, CacheMode::kCache);

      // Soft term at temperature T: CE(s/T, targets), chain rule gives an
      // extra 1/T on the logit gradient which the T^2 factor compensates.
      Tensor s_soft = s_logits;
      Scale(inv_t, &s_soft);
      LossGrad soft = SoftCrossEntropy(s_soft, targets);
      Scale(inv_t, &soft.grad);

      LossGrad hard = SoftmaxCrossEntropy(s_logits, batch.y);

      Tensor grad = hard.grad;
      Scale(static_cast<float>(1.0 - config.alpha), &grad);
      Axpy(static_cast<float>(config.alpha) * t2, soft.grad, &grad);
      const double loss = config.alpha * t2 * soft.loss +
                          (1.0 - config.alpha) * hard.loss;

      student->Backward(grad);
      opt->Step(params, grads);
      last_loss = loss;
    }
  }
  report.Set(metric::kTrainSeconds, watch.Seconds());
  report.Set(metric::kLoss, last_loss);
  report.Set(metric::kModelBytes, static_cast<double>(student->ModelBytes()));
  return report;
}

}  // namespace dlsys
