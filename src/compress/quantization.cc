#include "src/compress/quantization.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "src/runtime/runtime.h"

namespace dlsys {

Tensor QuantizedTensor::Dequantize() const {
  Tensor out(shape);
  for (int64_t i = 0; i < out.size(); ++i) {
    out[i] = codebook[codes[static_cast<size_t>(i)]];
  }
  return out;
}

int64_t QuantizedTensor::PackedBytes() const {
  const int64_t code_bits = static_cast<int64_t>(codes.size()) * bits;
  const int64_t codebook_bytes =
      affine_codebook
          ? 8
          : static_cast<int64_t>(codebook.size()) *
                static_cast<int64_t>(sizeof(float));
  return (code_bits + 7) / 8 + codebook_bytes;
}

int64_t QuantizedTensor::HuffmanBytes() const {
  std::vector<int64_t> freq(codebook.size(), 0);
  for (uint32_t c : codes) freq[c] += 1;
  const int64_t code_bits = HuffmanBitLength(freq);
  // Codebook (8 bytes if affine) + one byte per symbol for canonical code
  // lengths.
  const int64_t codebook_bytes =
      (affine_codebook ? 8
                       : static_cast<int64_t>(codebook.size()) *
                             static_cast<int64_t>(sizeof(float))) +
      static_cast<int64_t>(codebook.size());
  return (code_bits + 7) / 8 + codebook_bytes;
}

int64_t HuffmanBitLength(const std::vector<int64_t>& frequencies) {
  // Standard two-queue-free construction with a priority queue; the total
  // coded length equals the sum of internal node weights.
  std::priority_queue<int64_t, std::vector<int64_t>, std::greater<>> pq;
  for (int64_t f : frequencies) {
    if (f > 0) pq.push(f);
  }
  if (pq.empty()) return 0;
  if (pq.size() == 1) return pq.top();  // single symbol: 1 bit each
  int64_t total = 0;
  while (pq.size() > 1) {
    int64_t a = pq.top();
    pq.pop();
    int64_t b = pq.top();
    pq.pop();
    total += a + b;
    pq.push(a + b);
  }
  return total;
}

namespace {

QuantizedTensor UniformQuantize(const Tensor& t, int64_t bits) {
  QuantizedTensor q;
  q.shape = t.shape();
  q.bits = bits;
  q.affine_codebook = true;
  const int64_t levels = int64_t{1} << bits;
  float lo = t[0], hi = t[0];
  for (int64_t i = 0; i < t.size(); ++i) {
    lo = std::min(lo, t[i]);
    hi = std::max(hi, t[i]);
  }
  if (hi == lo) hi = lo + 1e-8f;
  q.codebook.resize(static_cast<size_t>(levels));
  const float step = (hi - lo) / static_cast<float>(levels - 1);
  for (int64_t k = 0; k < levels; ++k) {
    q.codebook[static_cast<size_t>(k)] = lo + step * static_cast<float>(k);
  }
  q.codes.resize(static_cast<size_t>(t.size()));
  for (int64_t i = 0; i < t.size(); ++i) {
    int64_t code = static_cast<int64_t>(std::lround((t[i] - lo) / step));
    code = std::clamp<int64_t>(code, 0, levels - 1);
    q.codes[static_cast<size_t>(i)] = static_cast<uint32_t>(code);
  }
  return q;
}

// One Lloyd run from a given sorted seed codebook; returns the result
// and its mean squared error.
std::pair<QuantizedTensor, double> LloydFromSeed(
    const Tensor& t, int64_t bits, std::vector<float> seed) {
  QuantizedTensor q;
  q.shape = t.shape();
  q.bits = bits;
  q.affine_codebook = false;
  q.codebook = std::move(seed);
  const int64_t k = static_cast<int64_t>(q.codebook.size());
  q.codes.assign(static_cast<size_t>(t.size()), 0);
  for (int iter = 0; iter < 16; ++iter) {
    // Assign. Scalar k-means with a sorted codebook: the nearest
    // centroid is found by binary search (centroids stay sorted because
    // each update is the mean of a contiguous value range).
    for (int64_t i = 0; i < t.size(); ++i) {
      auto it = std::lower_bound(q.codebook.begin(), q.codebook.end(), t[i]);
      int64_t c = it - q.codebook.begin();
      if (c == k) {
        c = k - 1;
      } else if (c > 0 &&
                 std::abs(t[i] - q.codebook[static_cast<size_t>(c - 1)]) <=
                     std::abs(t[i] - q.codebook[static_cast<size_t>(c)])) {
        c = c - 1;
      }
      q.codes[static_cast<size_t>(i)] = static_cast<uint32_t>(c);
    }
    // Update.
    std::vector<double> sum(static_cast<size_t>(k), 0.0);
    std::vector<int64_t> count(static_cast<size_t>(k), 0);
    for (int64_t i = 0; i < t.size(); ++i) {
      sum[q.codes[static_cast<size_t>(i)]] += t[i];
      count[q.codes[static_cast<size_t>(i)]] += 1;
    }
    bool moved = false;
    for (int64_t c = 0; c < k; ++c) {
      if (count[static_cast<size_t>(c)] == 0) continue;
      const float next = static_cast<float>(sum[static_cast<size_t>(c)] /
                                            count[static_cast<size_t>(c)]);
      if (next != q.codebook[static_cast<size_t>(c)]) moved = true;
      q.codebook[static_cast<size_t>(c)] = next;
    }
    if (!moved) break;
  }
  double mse = 0.0;
  for (int64_t i = 0; i < t.size(); ++i) {
    const double err =
        static_cast<double>(t[i]) - q.codebook[q.codes[static_cast<size_t>(i)]];
    mse += err * err;
  }
  mse /= std::max<int64_t>(t.size(), 1);
  return {std::move(q), mse};
}

QuantizedTensor KMeansQuantize(const Tensor& t, int64_t bits) {
  // Two Lloyd runs — one seeded from the uniform grid (guarantees MSE no
  // worse than uniform quantization), one from data quantiles (better on
  // skewed data) — keep the lower-MSE result. Never more centroids than
  // elements.
  const int64_t k = std::min<int64_t>(int64_t{1} << bits, t.size());
  float lo = t[0], hi = t[0];
  for (int64_t i = 0; i < t.size(); ++i) {
    lo = std::min(lo, t[i]);
    hi = std::max(hi, t[i]);
  }
  if (hi == lo) hi = lo + 1e-8f;
  std::vector<float> grid(static_cast<size_t>(k));
  for (int64_t c = 0; c < k; ++c) {
    grid[static_cast<size_t>(c)] =
        lo + (hi - lo) * static_cast<float>(c) / static_cast<float>(k - 1 > 0 ? k - 1 : 1);
  }
  std::vector<float> sorted(t.data(), t.data() + t.size());
  std::sort(sorted.begin(), sorted.end());
  std::vector<float> quantiles(static_cast<size_t>(k));
  for (int64_t c = 0; c < k; ++c) {
    const int64_t idx = std::min<int64_t>(
        t.size() - 1, (t.size() * (2 * c + 1)) / (2 * k));
    quantiles[static_cast<size_t>(c)] = sorted[static_cast<size_t>(idx)];
  }
  auto from_grid = LloydFromSeed(t, bits, std::move(grid));
  auto from_quantiles = LloydFromSeed(t, bits, std::move(quantiles));
  return from_quantiles.second < from_grid.second
             ? std::move(from_quantiles.first)
             : std::move(from_grid.first);
}

QuantizedTensor BinaryQuantize(const Tensor& t) {
  QuantizedTensor q;
  q.shape = t.shape();
  q.bits = 1;
  q.affine_codebook = true;
  double mean_abs = 0.0;
  for (int64_t i = 0; i < t.size(); ++i) mean_abs += std::abs(t[i]);
  mean_abs /= std::max<int64_t>(t.size(), 1);
  const float alpha = static_cast<float>(mean_abs);
  q.codebook = {-alpha, alpha};
  q.codes.resize(static_cast<size_t>(t.size()));
  for (int64_t i = 0; i < t.size(); ++i) {
    q.codes[static_cast<size_t>(i)] = t[i] >= 0.0f ? 1u : 0u;
  }
  return q;
}

}  // namespace

Result<QuantizedTensor> Quantize(const Tensor& t, QuantizerKind kind,
                                 int64_t bits) {
  if (t.empty()) {
    return Status::InvalidArgument("cannot quantize an empty tensor");
  }
  if (bits < 1 || bits > 16) {
    return Status::InvalidArgument("bits must be in [1, 16], got " +
                                   std::to_string(bits));
  }
  switch (kind) {
    case QuantizerKind::kUniform:
      return UniformQuantize(t, bits);
    case QuantizerKind::kKMeans:
      return KMeansQuantize(t, bits);
    case QuantizerKind::kBinary:
      return BinaryQuantize(t);
  }
  return Status::InvalidArgument("unknown quantizer kind");
}

Tensor SymmetricInt8Matrix::Dequantize() const {
  Tensor out({rows, cols});
  float* pout = out.data();
  for (int64_t i = 0; i < rows; ++i) {
    const float s = scales[static_cast<size_t>(i)];
    for (int64_t j = 0; j < cols; ++j) {
      pout[i * cols + j] =
          static_cast<float>(values[static_cast<size_t>(i * cols + j)]) * s;
    }
  }
  return out;
}

void SymmetricQuantizeRowsInto(const float* x, int64_t rows, int64_t cols,
                               int8_t* values, float* scales) {
  ParallelFor(0, rows, 4, [=](int64_t r0, int64_t r1) {
    for (int64_t i = r0; i < r1; ++i) {
      const float* row = x + i * cols;
      float maxabs = 0.0f;
      for (int64_t j = 0; j < cols; ++j) {
        const float a = std::abs(row[j]);
        maxabs = a > maxabs ? a : maxabs;
      }
      // An all-zero row quantizes to zeros under any positive scale; 1.0
      // keeps the requantization epilogue division-free and finite.
      const float scale = maxabs > 0.0f ? maxabs / 127.0f : 1.0f;
      const float inv = 1.0f / scale;
      scales[i] = scale;
      int8_t* vrow = values + i * cols;
      for (int64_t j = 0; j < cols; ++j) {
        const long q = std::lround(row[j] * inv);
        vrow[j] = static_cast<int8_t>(std::clamp<long>(q, -127, 127));
      }
    }
  });
}

SymmetricInt8Matrix SymmetricQuantizeRows(const Tensor& t) {
  DLSYS_CHECK(t.rank() == 2, "SymmetricQuantizeRows requires rank 2");
  SymmetricInt8Matrix q;
  q.rows = t.dim(0);
  q.cols = t.dim(1);
  q.values.resize(static_cast<size_t>(q.rows * q.cols));
  q.scales.resize(static_cast<size_t>(q.rows));
  SymmetricQuantizeRowsInto(t.data(), q.rows, q.cols, q.values.data(),
                            q.scales.data());
  return q;
}

Tensor Q8BlockMatrix::Dequantize() const {
  Tensor out({rows, cols});
  float* pout = out.data();
  const int64_t nb = padded_cols / kQuantBlock;
  for (int64_t i = 0; i < rows; ++i) {
    for (int64_t j = 0; j < cols; ++j) {
      const float s = scales[static_cast<size_t>(i * nb + j / kQuantBlock)];
      pout[i * cols + j] =
          static_cast<float>(values[static_cast<size_t>(i * padded_cols + j)]) *
          s;
    }
  }
  return out;
}

int64_t Q8BlockMatrix::PackedBytes() const {
  return static_cast<int64_t>(values.size()) +
         static_cast<int64_t>(scales.size()) *
             static_cast<int64_t>(sizeof(float));
}

Tensor Q4BlockMatrix::Dequantize() const {
  Tensor out({rows, cols});
  float* pout = out.data();
  const int64_t nb = padded_cols / kQuantBlock;
  const int64_t row_bytes = padded_cols / 2;
  for (int64_t i = 0; i < rows; ++i) {
    const uint8_t* vrow = values.data() + i * row_bytes;
    for (int64_t j = 0; j < cols; ++j) {
      const int64_t b = j / kQuantBlock;
      const int64_t t = j % kQuantBlock;
      const uint8_t byte = vrow[b * (kQuantBlock / 2) + (t % 16)];
      const int32_t code = t < 16 ? (byte & 0x0F) : (byte >> 4);
      pout[i * cols + j] = static_cast<float>(code - 8) *
                           scales[static_cast<size_t>(i * nb + b)];
    }
  }
  return out;
}

int64_t Q4BlockMatrix::PackedBytes() const {
  return static_cast<int64_t>(values.size()) +
         static_cast<int64_t>(scales.size()) *
             static_cast<int64_t>(sizeof(float));
}

void Q8BlockQuantizeRowInto(const float* row, int64_t cols, int8_t* values,
                            float* scales) {
  const int64_t kp = PadToQuantBlock(cols);
  const int64_t nb = kp / kQuantBlock;
  for (int64_t b = 0; b < nb; ++b) {
    const int64_t j0 = b * kQuantBlock;
    const int64_t j1 = std::min<int64_t>(j0 + kQuantBlock, cols);
    float maxabs = 0.0f;
    for (int64_t j = j0; j < j1; ++j) {
      const float a = std::abs(row[j]);
      maxabs = a > maxabs ? a : maxabs;
    }
    const float scale = maxabs > 0.0f ? maxabs / 127.0f : 1.0f;
    const float inv = 1.0f / scale;
    scales[b] = scale;
    for (int64_t j = j0; j < j1; ++j) {
      const long q = std::lround(row[j] * inv);
      values[j] = static_cast<int8_t>(std::clamp<long>(q, -127, 127));
    }
    for (int64_t j = j1; j < j0 + kQuantBlock; ++j) values[j] = 0;
  }
}

void Q8BlockQuantizeRowsInto(const float* x, int64_t rows, int64_t cols,
                             int8_t* values, float* scales) {
  const int64_t kp = PadToQuantBlock(cols);
  const int64_t nb = kp / kQuantBlock;
  ParallelFor(0, rows, 4, [=](int64_t r0, int64_t r1) {
    for (int64_t i = r0; i < r1; ++i) {
      Q8BlockQuantizeRowInto(x + i * cols, cols, values + i * kp,
                             scales + i * nb);
    }
  });
}

Q8BlockMatrix Q8BlockQuantizeRows(const Tensor& t) {
  DLSYS_CHECK(t.rank() == 2, "Q8BlockQuantizeRows requires rank 2");
  Q8BlockMatrix q;
  q.rows = t.dim(0);
  q.cols = t.dim(1);
  q.padded_cols = PadToQuantBlock(q.cols);
  q.values.resize(static_cast<size_t>(q.rows * q.padded_cols));
  q.scales.resize(static_cast<size_t>(q.rows * q.padded_cols / kQuantBlock));
  Q8BlockQuantizeRowsInto(t.data(), q.rows, q.cols, q.values.data(),
                          q.scales.data());
  return q;
}

void Q4BlockQuantizeRowsInto(const float* x, int64_t rows, int64_t cols,
                             uint8_t* values, float* scales) {
  const int64_t kp = PadToQuantBlock(cols);
  const int64_t nb = kp / kQuantBlock;
  const int64_t row_bytes = kp / 2;
  ParallelFor(0, rows, 4, [=](int64_t r0, int64_t r1) {
    for (int64_t i = r0; i < r1; ++i) {
      const float* row = x + i * cols;
      uint8_t* vrow = values + i * row_bytes;
      float* srow = scales + i * nb;
      for (int64_t b = 0; b < nb; ++b) {
        const int64_t j0 = b * kQuantBlock;
        const int64_t j1 = std::min<int64_t>(j0 + kQuantBlock, cols);
        float maxabs = 0.0f;
        for (int64_t j = j0; j < j1; ++j) {
          const float a = std::abs(row[j]);
          maxabs = a > maxabs ? a : maxabs;
        }
        const float scale = maxabs > 0.0f ? maxabs / 7.0f : 1.0f;
        const float inv = 1.0f / scale;
        srow[b] = scale;
        uint8_t* block = vrow + b * (kQuantBlock / 2);
        // Pack code q+8: element t in byte t&15, low nibble for t<16,
        // high nibble for t>=16. Pad elements keep code 8 (q = 0).
        uint8_t codes[kQuantBlock];
        for (int64_t t = 0; t < kQuantBlock; ++t) {
          int32_t q4 = 0;
          if (j0 + t < j1) {
            const long q = std::lround(row[j0 + t] * inv);
            q4 = static_cast<int32_t>(std::clamp<long>(q, -7, 7));
          }
          codes[t] = static_cast<uint8_t>(q4 + 8);
        }
        for (int64_t t = 0; t < kQuantBlock / 2; ++t) {
          block[t] = static_cast<uint8_t>(codes[t] |
                                          (codes[t + kQuantBlock / 2] << 4));
        }
      }
    }
  });
}

Q4BlockMatrix Q4BlockQuantizeRows(const Tensor& t) {
  DLSYS_CHECK(t.rank() == 2, "Q4BlockQuantizeRows requires rank 2");
  Q4BlockMatrix q;
  q.rows = t.dim(0);
  q.cols = t.dim(1);
  q.padded_cols = PadToQuantBlock(q.cols);
  const int64_t nb = q.padded_cols / kQuantBlock;
  const int64_t row_bytes = q.padded_cols / 2;
  q.values.assign(static_cast<size_t>(q.rows * row_bytes), 0);
  q.scales.resize(static_cast<size_t>(q.rows * nb));
  Q4BlockQuantizeRowsInto(t.data(), q.rows, q.cols, q.values.data(),
                          q.scales.data());
  return q;
}

Result<NetworkQuantization> QuantizeNetwork(Sequential* net,
                                            QuantizerKind kind, int64_t bits) {
  NetworkQuantization out;
  double sq_sum = 0.0;
  int64_t count = 0;
  for (Tensor* p : net->Params()) {
    if (p->empty()) continue;
    auto q = Quantize(*p, kind, bits);
    if (!q.ok()) return q.status();
    Tensor deq = q->Dequantize();
    out.original_bytes += p->bytes();
    out.packed_bytes += q->PackedBytes();
    out.huffman_bytes += q->HuffmanBytes();
    for (int64_t i = 0; i < p->size(); ++i) {
      const double err = static_cast<double>((*p)[i]) - deq[i];
      out.max_abs_error = std::max(out.max_abs_error, std::abs(err));
      sq_sum += err * err;
    }
    count += p->size();
    *p = std::move(deq);
  }
  out.mean_sq_error = count > 0 ? sq_sum / static_cast<double>(count) : 0.0;
  return out;
}

}  // namespace dlsys
