#ifndef DLSYS_COMPRESS_QUANTIZATION_H_
#define DLSYS_COMPRESS_QUANTIZATION_H_

#include <cstdint>
#include <vector>

#include "src/core/rng.h"
#include "src/core/status.h"
#include "src/nn/sequential.h"
#include "src/tensor/tensor.h"

/// \file quantization.h
/// \brief Weight quantization (tutorial Section 2.1).
///
/// Quantization replaces float parameters with low-bit codes plus a
/// codebook. The codebook may be lossless in its effect on size only
/// (entropy/Huffman coding of the codes) or lossy (uniform fixed-point,
/// k-means, binary). This module implements all three families and
/// reports honest compressed byte sizes (codes + codebook).

namespace dlsys {

/// \brief How codewords are chosen.
enum class QuantizerKind {
  kUniform,  ///< evenly spaced levels over [min, max] (fixed-point style)
  kKMeans,   ///< Lloyd-optimized scalar codebook
  kBinary,   ///< one bit: sign(w) * mean(|w|), per tensor
};

/// \brief A tensor stored as per-element codes plus a codebook.
struct QuantizedTensor {
  Shape shape;
  int64_t bits = 8;                 ///< bits per code
  std::vector<uint32_t> codes;      ///< one code per element
  std::vector<float> codebook;      ///< 2^bits (or fewer) centroids
  /// True when the codebook is an affine grid (uniform/binary): such a
  /// codebook ships as just scale+offset (8 bytes), not a full table.
  bool affine_codebook = false;

  /// \brief Reconstructs the dense float tensor.
  Tensor Dequantize() const;
  /// \brief Raw storage cost: packed codes + float codebook.
  int64_t PackedBytes() const;
  /// \brief Storage cost if codes were Huffman coded (lossless entropy
  /// coding of the code stream) plus codebook and code-length table.
  int64_t HuffmanBytes() const;
};

/// \brief Quantizes \p t to \p bits using \p kind.
///
/// kBinary ignores \p bits (always 1). kKMeans runs Lloyd iterations
/// seeded from uniform levels. Returns InvalidArgument for bits outside
/// [1, 16].
Result<QuantizedTensor> Quantize(const Tensor& t, QuantizerKind kind,
                                 int64_t bits);

/// \brief Outcome of quantizing a whole network.
struct NetworkQuantization {
  int64_t original_bytes = 0;
  int64_t packed_bytes = 0;
  int64_t huffman_bytes = 0;
  double max_abs_error = 0.0;   ///< max |w - w_hat| over all params
  double mean_sq_error = 0.0;   ///< mean (w - w_hat)^2 over all params
};

/// \brief Quantize-dequantizes every parameter of \p net in place
/// (weights and biases), simulating deployment of the compressed model,
/// and reports size/error statistics.
Result<NetworkQuantization> QuantizeNetwork(Sequential* net,
                                            QuantizerKind kind, int64_t bits);

/// \brief Exact Huffman-coded bit length of a code stream with the given
/// code frequency histogram (canonical Huffman, no stream overhead).
int64_t HuffmanBitLength(const std::vector<int64_t>& frequencies);

}  // namespace dlsys

#endif  // DLSYS_COMPRESS_QUANTIZATION_H_
