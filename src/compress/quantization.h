#ifndef DLSYS_COMPRESS_QUANTIZATION_H_
#define DLSYS_COMPRESS_QUANTIZATION_H_

#include <cstdint>
#include <vector>

#include "src/core/rng.h"
#include "src/core/status.h"
#include "src/nn/sequential.h"
#include "src/tensor/tensor.h"

/// \file quantization.h
/// \brief Weight quantization (tutorial Section 2.1).
///
/// Quantization replaces float parameters with low-bit codes plus a
/// codebook. The codebook may be lossless in its effect on size only
/// (entropy/Huffman coding of the codes) or lossy (uniform fixed-point,
/// k-means, binary). This module implements all three families and
/// reports honest compressed byte sizes (codes + codebook).

namespace dlsys {

/// \brief How codewords are chosen.
enum class QuantizerKind {
  kUniform,  ///< evenly spaced levels over [min, max] (fixed-point style)
  kKMeans,   ///< Lloyd-optimized scalar codebook
  kBinary,   ///< one bit: sign(w) * mean(|w|), per tensor
};

/// \brief A tensor stored as per-element codes plus a codebook.
struct QuantizedTensor {
  Shape shape;
  int64_t bits = 8;                 ///< bits per code
  std::vector<uint32_t> codes;      ///< one code per element
  std::vector<float> codebook;      ///< 2^bits (or fewer) centroids
  /// True when the codebook is an affine grid (uniform/binary): such a
  /// codebook ships as just scale+offset (8 bytes), not a full table.
  bool affine_codebook = false;

  /// \brief Reconstructs the dense float tensor.
  Tensor Dequantize() const;
  /// \brief Raw storage cost: packed codes + float codebook.
  int64_t PackedBytes() const;
  /// \brief Storage cost if codes were Huffman coded (lossless entropy
  /// coding of the code stream) plus codebook and code-length table.
  int64_t HuffmanBytes() const;
};

/// \brief Quantizes \p t to \p bits using \p kind.
///
/// kBinary ignores \p bits (always 1). kKMeans runs Lloyd iterations
/// seeded from uniform levels. Returns InvalidArgument for bits outside
/// [1, 16].
Result<QuantizedTensor> Quantize(const Tensor& t, QuantizerKind kind,
                                 int64_t bits);

/// \brief Outcome of quantizing a whole network.
struct NetworkQuantization {
  int64_t original_bytes = 0;
  int64_t packed_bytes = 0;
  int64_t huffman_bytes = 0;
  double max_abs_error = 0.0;   ///< max |w - w_hat| over all params
  double mean_sq_error = 0.0;   ///< mean (w - w_hat)^2 over all params
};

/// \brief Quantize-dequantizes every parameter of \p net in place
/// (weights and biases), simulating deployment of the compressed model,
/// and reports size/error statistics.
Result<NetworkQuantization> QuantizeNetwork(Sequential* net,
                                            QuantizerKind kind, int64_t bits);

/// \brief Exact Huffman-coded bit length of a code stream with the given
/// code frequency histogram (canonical Huffman, no stream overhead).
int64_t HuffmanBitLength(const std::vector<int64_t>& frequencies);

/// \brief A rank-2 matrix stored as symmetric per-row int8 codes.
///
/// Row i is stored as round(x / scales[i]) clamped to [-127, 127] with
/// scales[i] = max|row i| / 127. Symmetric (no zero point) so an int8 x
/// int8 product needs no offset correction, and per-row so one outlier
/// only degrades its own row — for a Dense weight matrix (rows = output
/// features) this is per-output-channel quantization. This is the storage
/// format of the inference engine's int8 path (src/infer); the codebook
/// formats above serve the compression study instead.
struct SymmetricInt8Matrix {
  int64_t rows = 0;
  int64_t cols = 0;
  std::vector<int8_t> values;  ///< rows x cols, row-major
  std::vector<float> scales;   ///< one scale per row

  /// \brief Reconstructs the dense float matrix (values[i][j]*scales[i]).
  Tensor Dequantize() const;
};

/// \brief Symmetric per-row int8 quantization of a rank-2 tensor.
SymmetricInt8Matrix SymmetricQuantizeRows(const Tensor& t);

/// \brief Allocation-free form of SymmetricQuantizeRows into caller
/// storage (\p values: rows*cols int8, \p scales: one float per row).
/// Row-parallel; used by the engine to quantize activations on the fly
/// inside the zero-allocation hot loop.
void SymmetricQuantizeRowsInto(const float* x, int64_t rows, int64_t cols,
                               int8_t* values, float* scales);

// ----------------------------------------------------- block quantization
//
// ggml-style block formats: one float scale per kQuantBlock consecutive
// elements along a row (the GEMM reduction dimension), instead of one per
// whole row. A single outlier now only costs its own 32-element block its
// precision, and the scales live next to the codes the GEMM is already
// streaming, which is what lets src/tensor/int8_gemm.h fuse dequantization
// into the inner loop. Rows are padded to a multiple of kQuantBlock with
// zero codes, so pad blocks contribute exactly nothing to any dot product.

/// \brief Elements covered by one block scale.
inline constexpr int64_t kQuantBlock = 32;

/// \brief \p k rounded up to a multiple of kQuantBlock.
inline constexpr int64_t PadToQuantBlock(int64_t k) {
  return (k + kQuantBlock - 1) / kQuantBlock * kQuantBlock;
}

/// \brief A rank-2 matrix stored as symmetric per-block int8 codes.
///
/// Block b of row i holds round(x / s) clamped to [-127, 127] with
/// s = max|block| / 127 (1.0 for an all-zero block).
struct Q8BlockMatrix {
  int64_t rows = 0;
  int64_t cols = 0;         ///< logical width
  int64_t padded_cols = 0;  ///< cols rounded up to kQuantBlock
  std::vector<int8_t> values;  ///< rows x padded_cols, row-major
  std::vector<float> scales;   ///< rows x (padded_cols / kQuantBlock)

  /// \brief Reconstructs the dense float matrix (pad columns dropped).
  Tensor Dequantize() const;
  /// \brief Raw storage cost: codes + block scales.
  int64_t PackedBytes() const;
};

/// \brief A rank-2 matrix stored as symmetric per-block 4-bit codes,
/// nibble-packed.
///
/// Block b of row i holds q = round(x / s) clamped to [-7, 7] with
/// s = max|block| / 7 (1.0 for an all-zero block), stored as code = q + 8.
/// Each 32-element block packs into 16 bytes: byte t carries element t in
/// its low nibble and element 16+t in its high nibble (pad code 8 = 0).
struct Q4BlockMatrix {
  int64_t rows = 0;
  int64_t cols = 0;
  int64_t padded_cols = 0;
  std::vector<uint8_t> values;  ///< rows x padded_cols/2, row-major
  std::vector<float> scales;    ///< rows x (padded_cols / kQuantBlock)

  /// \brief Reconstructs the dense float matrix (pad columns dropped).
  Tensor Dequantize() const;
  /// \brief Raw storage cost: packed codes + block scales.
  int64_t PackedBytes() const;
};

/// \brief Symmetric per-block q8 quantization of a rank-2 tensor.
Q8BlockMatrix Q8BlockQuantizeRows(const Tensor& t);

/// \brief Allocation-free q8 block quantization into caller storage
/// (\p values: rows * PadToQuantBlock(cols) int8, \p scales: rows *
/// PadToQuantBlock(cols)/kQuantBlock floats). Pad codes are written as 0.
/// Row-parallel; the engine's int8 path quantizes activations with this
/// inside the zero-allocation hot loop.
void Q8BlockQuantizeRowsInto(const float* x, int64_t rows, int64_t cols,
                             int8_t* values, float* scales);

/// \brief Single-row body of Q8BlockQuantizeRowsInto: quantizes \p cols
/// floats into PadToQuantBlock(cols) codes and one scale per block.
/// Serial — callers parallelize across rows. The engine's quant/dequant
/// elimination pass calls this from a GEMM epilogue so adjacent quantized
/// layers hand codes straight through; extracting the shared body is what
/// keeps that path bit-identical to a standalone re-quantization.
void Q8BlockQuantizeRowInto(const float* row, int64_t cols, int8_t* values,
                            float* scales);

/// \brief Symmetric per-block q4 quantization of a rank-2 tensor.
Q4BlockMatrix Q4BlockQuantizeRows(const Tensor& t);

/// \brief Allocation-free q4 block quantization into caller storage
/// (\p values: rows * PadToQuantBlock(cols)/2 bytes, \p scales: rows *
/// PadToQuantBlock(cols)/kQuantBlock floats). Pad elements encode q = 0.
/// Row-parallel; the engine's unfolded int4 path re-derives weight codes
/// with this inside the zero-allocation hot loop.
void Q4BlockQuantizeRowsInto(const float* x, int64_t rows, int64_t cols,
                             uint8_t* values, float* scales);

}  // namespace dlsys

#endif  // DLSYS_COMPRESS_QUANTIZATION_H_
