#ifndef DLSYS_COMPRESS_DISTILL_H_
#define DLSYS_COMPRESS_DISTILL_H_

#include <cstdint>

#include "src/core/metrics.h"
#include "src/core/status.h"
#include "src/data/dataset.h"
#include "src/nn/sequential.h"
#include "src/optim/optimizer.h"

/// \file distill.h
/// \brief Knowledge distillation (tutorial Section 2.1, Hinton et al.).
///
/// Transfers the function learned by a large teacher into a smaller
/// student by training the student against the teacher's
/// temperature-softened output distribution, optionally mixed with the
/// hard labels.

namespace dlsys {

/// \brief Distillation hyperparameters.
struct DistillConfig {
  double temperature = 4.0;  ///< softening of teacher/student logits
  double alpha = 0.7;        ///< weight on the soft (teacher) loss term
  int64_t epochs = 20;
  int64_t batch_size = 32;
  uint64_t shuffle_seed = 7;
};

/// \brief Trains \p student to mimic \p teacher on \p data.
///
/// Loss = alpha * T^2 * CE(student_logits / T, softmax(teacher/T))
///      + (1 - alpha) * CE(student_logits, labels).
/// The T^2 factor keeps soft-gradient magnitudes comparable across
/// temperatures (as in the original paper). Returns a report with train
/// time and final mixed loss.
Result<MetricsReport> Distill(Sequential* teacher, Sequential* student,
                              Optimizer* opt, const Dataset& data,
                              const DistillConfig& config);

}  // namespace dlsys

#endif  // DLSYS_COMPRESS_DISTILL_H_
