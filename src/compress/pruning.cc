#include "src/compress/pruning.h"

#include <algorithm>
#include <cmath>

#include "src/nn/loss.h"

namespace dlsys {

namespace {
// Weight tensors (maskable) are rank >= 2; biases are rank 1.
bool IsWeight(const Tensor& t) { return t.rank() >= 2; }

// Collects pointers to the network's weight tensors in layer order.
std::vector<Tensor*> WeightTensors(Sequential* net) {
  std::vector<Tensor*> out;
  for (Tensor* p : net->Params()) {
    if (IsWeight(*p)) out.push_back(p);
  }
  return out;
}

std::vector<Tensor*> WeightGrads(Sequential* net) {
  std::vector<Tensor*> out;
  auto params = net->Params();
  auto grads = net->Grads();
  for (size_t i = 0; i < params.size(); ++i) {
    if (IsWeight(*params[i])) out.push_back(grads[i]);
  }
  return out;
}
}  // namespace

PruneMask::PruneMask(Sequential* net) {
  for (Tensor* w : WeightTensors(net)) {
    masks_.emplace_back(w->shape(), 1.0f);
  }
}

void PruneMask::Apply(Sequential* net) const {
  auto weights = WeightTensors(net);
  DLSYS_CHECK(weights.size() == masks_.size(), "mask/network mismatch");
  for (size_t i = 0; i < weights.size(); ++i) {
    Tensor& w = *weights[i];
    const Tensor& m = masks_[i];
    DLSYS_CHECK(w.size() == m.size(), "mask shape mismatch");
    for (int64_t j = 0; j < w.size(); ++j) w[j] *= m[j];
  }
}

void PruneMask::ApplyToGrads(Sequential* net) const {
  auto grads = WeightGrads(net);
  DLSYS_CHECK(grads.size() == masks_.size(), "mask/network mismatch");
  for (size_t i = 0; i < grads.size(); ++i) {
    Tensor& g = *grads[i];
    const Tensor& m = masks_[i];
    for (int64_t j = 0; j < g.size(); ++j) g[j] *= m[j];
  }
}

double PruneMask::Sparsity() const {
  int64_t total = 0, zeros = 0;
  for (const Tensor& m : masks_) {
    total += m.size();
    for (int64_t j = 0; j < m.size(); ++j) {
      if (m[j] == 0.0f) ++zeros;
    }
  }
  return total > 0 ? static_cast<double>(zeros) / static_cast<double>(total)
                   : 0.0;
}

int64_t PruneMask::NumAlive() const {
  int64_t alive = 0;
  for (const Tensor& m : masks_) {
    for (int64_t j = 0; j < m.size(); ++j) {
      if (m[j] != 0.0f) ++alive;
    }
  }
  return alive;
}

Result<PruneMask> BuildPruneMask(Sequential* net, PruneCriterion criterion,
                                 double sparsity, const Dataset* calibration,
                                 Rng* rng) {
  if (sparsity < 0.0 || sparsity >= 1.0) {
    return Status::InvalidArgument("sparsity must be in [0, 1)");
  }
  PruneMask mask(net);
  auto weights = WeightTensors(net);
  if (weights.empty()) {
    return Status::FailedPrecondition("network has no weight tensors");
  }

  // Score every weight coordinate; lower score = pruned first.
  std::vector<std::vector<float>> scores(weights.size());
  switch (criterion) {
    case PruneCriterion::kMagnitude: {
      for (size_t i = 0; i < weights.size(); ++i) {
        const Tensor& w = *weights[i];
        scores[i].resize(static_cast<size_t>(w.size()));
        for (int64_t j = 0; j < w.size(); ++j) {
          scores[i][static_cast<size_t>(j)] = std::abs(w[j]);
        }
      }
      break;
    }
    case PruneCriterion::kLossSensitivity: {
      if (calibration == nullptr || calibration->size() == 0) {
        return Status::InvalidArgument(
            "loss-sensitivity pruning needs calibration data");
      }
      net->ZeroGrads();
      Tensor logits = net->Forward(calibration->x, CacheMode::kCache);
      LossGrad lg = SoftmaxCrossEntropy(logits, calibration->y);
      net->Backward(lg.grad);
      auto grads = WeightGrads(net);
      for (size_t i = 0; i < weights.size(); ++i) {
        const Tensor& w = *weights[i];
        const Tensor& g = *grads[i];
        scores[i].resize(static_cast<size_t>(w.size()));
        for (int64_t j = 0; j < w.size(); ++j) {
          // First-order Taylor estimate of loss change when zeroing w_j.
          scores[i][static_cast<size_t>(j)] = std::abs(w[j] * g[j]);
        }
      }
      net->ZeroGrads();
      break;
    }
    case PruneCriterion::kRandom: {
      if (rng == nullptr) {
        return Status::InvalidArgument("random pruning needs an rng");
      }
      for (size_t i = 0; i < weights.size(); ++i) {
        scores[i].resize(static_cast<size_t>(weights[i]->size()));
        for (float& s : scores[i]) s = static_cast<float>(rng->Uniform());
      }
      break;
    }
  }

  // Global threshold: the sparsity-quantile of all scores.
  std::vector<float> all;
  for (const auto& s : scores) all.insert(all.end(), s.begin(), s.end());
  const int64_t cut =
      static_cast<int64_t>(std::llround(sparsity * static_cast<double>(all.size())));
  if (cut > 0) {
    std::nth_element(all.begin(), all.begin() + (cut - 1), all.end());
    const float threshold = all[static_cast<size_t>(cut - 1)];
    int64_t pruned = 0;
    for (size_t i = 0; i < scores.size(); ++i) {
      Tensor& m = mask.masks()[i];
      for (int64_t j = 0; j < m.size(); ++j) {
        if (scores[i][static_cast<size_t>(j)] <= threshold && pruned < cut) {
          m[j] = 0.0f;
          ++pruned;
        }
      }
    }
  }
  return mask;
}

Result<PruneMask> BuildFilterPruneMask(Sequential* net, double sparsity) {
  if (sparsity < 0.0 || sparsity >= 1.0) {
    return Status::InvalidArgument("sparsity must be in [0, 1)");
  }
  PruneMask mask(net);
  auto weights = WeightTensors(net);
  if (weights.empty()) {
    return Status::FailedPrecondition("network has no weight tensors");
  }
  // A "unit" is an output column of a Dense weight (in x out, column j)
  // or an output filter of a Conv weight (out_ch first dimension).
  struct Unit {
    size_t tensor;
    int64_t index;   ///< column (dense) or filter (conv)
    int64_t weights; ///< coordinates removed if pruned
    double norm;
  };
  std::vector<Unit> units;
  for (size_t i = 0; i < weights.size(); ++i) {
    const Tensor& w = *weights[i];
    if (w.rank() == 2) {
      const int64_t in = w.dim(0), out = w.dim(1);
      for (int64_t j = 0; j < out; ++j) {
        double norm = 0.0;
        for (int64_t r = 0; r < in; ++r) {
          norm += static_cast<double>(w[r * out + j]) * w[r * out + j];
        }
        units.push_back({i, j, in, std::sqrt(norm)});
      }
    } else if (w.rank() == 4) {
      const int64_t oc = w.dim(0);
      const int64_t per = w.size() / oc;
      for (int64_t f = 0; f < oc; ++f) {
        double norm = 0.0;
        for (int64_t r = 0; r < per; ++r) {
          norm += static_cast<double>(w[f * per + r]) * w[f * per + r];
        }
        units.push_back({i, f, per, std::sqrt(norm)});
      }
    }
  }
  std::sort(units.begin(), units.end(),
            [](const Unit& a, const Unit& b) { return a.norm < b.norm; });
  int64_t total = 0;
  for (Tensor* w : weights) total += w->size();
  const int64_t target =
      static_cast<int64_t>(std::llround(sparsity * static_cast<double>(total)));
  int64_t pruned = 0;
  for (const Unit& u : units) {
    if (pruned >= target) break;
    Tensor& m = mask.masks()[u.tensor];
    const Tensor& w = *weights[u.tensor];
    if (w.rank() == 2) {
      const int64_t out = w.dim(1);
      for (int64_t r = 0; r < w.dim(0); ++r) m[r * out + u.index] = 0.0f;
    } else {
      const int64_t per = w.size() / w.dim(0);
      for (int64_t r = 0; r < per; ++r) m[u.index * per + r] = 0.0f;
    }
    pruned += u.weights;
  }
  return mask;
}

int64_t SparseModelBytes(Sequential* net, const PruneMask& mask) {
  int64_t bytes = 0;
  // Surviving weights: value + COO index.
  bytes += mask.NumAlive() * 8;
  // Biases stay dense.
  for (Tensor* p : net->Params()) {
    if (!IsWeight(*p)) bytes += p->bytes();
  }
  return bytes;
}

}  // namespace dlsys
