#include "src/optim/optimizer.h"

#include <cmath>

#include "src/core/status.h"

namespace dlsys {

Sgd::Sgd(double lr, double momentum, double weight_decay)
    : Optimizer(lr), momentum_(momentum), weight_decay_(weight_decay) {}

void Sgd::Step(const std::vector<Tensor*>& params,
               const std::vector<Tensor*>& grads) {
  DLSYS_CHECK(params.size() == grads.size(), "params/grads size mismatch");
  if (momentum_ != 0.0 && velocity_.size() != params.size()) {
    velocity_.clear();
    for (Tensor* p : params) velocity_.emplace_back(p->shape());
  }
  const float lr = static_cast<float>(lr_);
  const float mu = static_cast<float>(momentum_);
  const float wd = static_cast<float>(weight_decay_);
  for (size_t i = 0; i < params.size(); ++i) {
    Tensor& p = *params[i];
    const Tensor& g = *grads[i];
    DLSYS_CHECK(p.size() == g.size(), "param/grad shape mismatch");
    if (momentum_ == 0.0) {
      for (int64_t j = 0; j < p.size(); ++j) {
        p[j] -= lr * (g[j] + wd * p[j]);
      }
    } else {
      Tensor& v = velocity_[i];
      for (int64_t j = 0; j < p.size(); ++j) {
        v[j] = mu * v[j] + g[j] + wd * p[j];
        p[j] -= lr * v[j];
      }
    }
  }
}

std::string Sgd::name() const {
  return "sgd(lr=" + std::to_string(lr_) + ", mu=" + std::to_string(momentum_) +
         ")";
}

std::unique_ptr<Optimizer> Sgd::CloneFresh() const {
  return std::make_unique<Sgd>(lr_, momentum_, weight_decay_);
}

Adam::Adam(double lr, double beta1, double beta2, double epsilon)
    : Optimizer(lr), beta1_(beta1), beta2_(beta2), epsilon_(epsilon) {}

void Adam::Step(const std::vector<Tensor*>& params,
                const std::vector<Tensor*>& grads) {
  DLSYS_CHECK(params.size() == grads.size(), "params/grads size mismatch");
  if (m_.size() != params.size()) {
    m_.clear();
    v_.clear();
    for (Tensor* p : params) {
      m_.emplace_back(p->shape());
      v_.emplace_back(p->shape());
    }
    t_ = 0;
  }
  ++t_;
  const float b1 = static_cast<float>(beta1_);
  const float b2 = static_cast<float>(beta2_);
  const float corr1 = 1.0f - std::pow(b1, static_cast<float>(t_));
  const float corr2 = 1.0f - std::pow(b2, static_cast<float>(t_));
  const float lr = static_cast<float>(lr_);
  const float eps = static_cast<float>(epsilon_);
  for (size_t i = 0; i < params.size(); ++i) {
    Tensor& p = *params[i];
    const Tensor& g = *grads[i];
    Tensor& m = m_[i];
    Tensor& v = v_[i];
    for (int64_t j = 0; j < p.size(); ++j) {
      m[j] = b1 * m[j] + (1.0f - b1) * g[j];
      v[j] = b2 * v[j] + (1.0f - b2) * g[j] * g[j];
      const float mhat = m[j] / corr1;
      const float vhat = v[j] / corr2;
      p[j] -= lr * mhat / (std::sqrt(vhat) + eps);
    }
  }
}

std::string Adam::name() const { return "adam(lr=" + std::to_string(lr_) + ")"; }

std::unique_ptr<Optimizer> Adam::CloneFresh() const {
  return std::make_unique<Adam>(lr_, beta1_, beta2_, epsilon_);
}

}  // namespace dlsys
