#ifndef DLSYS_OPTIM_OPTIMIZER_H_
#define DLSYS_OPTIM_OPTIMIZER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/tensor/tensor.h"

/// \file optimizer.h
/// \brief First-order optimizers driving the iterative training procedure.

namespace dlsys {

/// \brief Interface for a gradient-descent step over a parameter list.
///
/// Optimizer state (momentum buffers etc.) is keyed by position in the
/// params list, which must therefore be stable across calls.
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// \brief Applies one update: params[i] -= f(grads[i], state).
  virtual void Step(const std::vector<Tensor*>& params,
                    const std::vector<Tensor*>& grads) = 0;

  /// \brief Current learning rate.
  double lr() const { return lr_; }
  /// \brief Sets the learning rate (schedules call this every step).
  void set_lr(double lr) { lr_ = lr; }

  /// \brief Human-readable configuration.
  virtual std::string name() const = 0;

  /// \brief Fresh optimizer with the same config and empty state.
  virtual std::unique_ptr<Optimizer> CloneFresh() const = 0;

 protected:
  explicit Optimizer(double lr) : lr_(lr) {}
  double lr_;
};

/// \brief Stochastic gradient descent with optional momentum and L2
/// weight decay.
class Sgd : public Optimizer {
 public:
  explicit Sgd(double lr, double momentum = 0.0, double weight_decay = 0.0);
  void Step(const std::vector<Tensor*>& params,
            const std::vector<Tensor*>& grads) override;
  std::string name() const override;
  std::unique_ptr<Optimizer> CloneFresh() const override;

 private:
  double momentum_;
  double weight_decay_;
  std::vector<Tensor> velocity_;
};

/// \brief Adam (Kingma & Ba) with bias correction.
class Adam : public Optimizer {
 public:
  explicit Adam(double lr, double beta1 = 0.9, double beta2 = 0.999,
                double epsilon = 1e-8);
  void Step(const std::vector<Tensor*>& params,
            const std::vector<Tensor*>& grads) override;
  std::string name() const override;
  std::unique_ptr<Optimizer> CloneFresh() const override;

 private:
  double beta1_, beta2_, epsilon_;
  int64_t t_ = 0;
  std::vector<Tensor> m_, v_;
};

}  // namespace dlsys

#endif  // DLSYS_OPTIM_OPTIMIZER_H_
