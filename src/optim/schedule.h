#ifndef DLSYS_OPTIM_SCHEDULE_H_
#define DLSYS_OPTIM_SCHEDULE_H_

#include <cmath>
#include <cstdint>
#include <memory>

#include "src/core/status.h"

/// \file schedule.h
/// \brief Learning-rate schedules, including the cyclic schedule that
/// Snapshot Ensembles (Section 2.1) rely on: the rate anneals to ~0 at the
/// end of each cycle (where a snapshot is captured) and restarts high.

namespace dlsys {

/// \brief Maps a global step index to a learning rate.
class LrSchedule {
 public:
  virtual ~LrSchedule() = default;
  /// \brief Learning rate to use at 0-based step \p step.
  virtual double Lr(int64_t step) const = 0;
};

/// \brief Constant rate.
class ConstantLr : public LrSchedule {
 public:
  explicit ConstantLr(double lr) : lr_(lr) {}
  double Lr(int64_t) const override { return lr_; }

 private:
  double lr_;
};

/// \brief Multiplies the rate by \p factor every \p every steps.
class StepDecayLr : public LrSchedule {
 public:
  StepDecayLr(double lr0, int64_t every, double factor)
      : lr0_(lr0), every_(every), factor_(factor) {
    DLSYS_CHECK(every > 0, "decay interval must be positive");
  }
  double Lr(int64_t step) const override {
    return lr0_ * std::pow(factor_, static_cast<double>(step / every_));
  }

 private:
  double lr0_;
  int64_t every_;
  double factor_;
};

/// \brief Cosine-annealed cyclic rate (Snapshot Ensembles): within each
/// cycle of \p cycle_steps the rate falls from lr0 to ~0 on a half cosine,
/// then restarts.
class CosineCyclicLr : public LrSchedule {
 public:
  CosineCyclicLr(double lr0, int64_t cycle_steps)
      : lr0_(lr0), cycle_steps_(cycle_steps) {
    DLSYS_CHECK(cycle_steps > 0, "cycle length must be positive");
  }
  double Lr(int64_t step) const override {
    const double pos =
        static_cast<double>(step % cycle_steps_) / static_cast<double>(cycle_steps_);
    return 0.5 * lr0_ * (1.0 + std::cos(3.14159265358979323846 * pos));
  }
  /// \brief True iff \p step is the last step of a cycle (snapshot point).
  bool EndOfCycle(int64_t step) const {
    return (step + 1) % cycle_steps_ == 0;
  }

 private:
  double lr0_;
  int64_t cycle_steps_;
};

/// \brief Triangular cyclic rate (Fast Geometric Ensembles): within each
/// cycle the rate descends linearly from hi to lo over the first half and
/// climbs back over the second; the lo point (mid-cycle) is where FGE
/// captures an ensemble member.
class TriangularCyclicLr : public LrSchedule {
 public:
  TriangularCyclicLr(double lr_hi, double lr_lo, int64_t cycle_steps)
      : hi_(lr_hi), lo_(lr_lo), cycle_steps_(cycle_steps) {
    DLSYS_CHECK(cycle_steps > 1, "cycle length must exceed 1");
    DLSYS_CHECK(lr_hi >= lr_lo && lr_lo > 0.0, "need lr_hi >= lr_lo > 0");
  }
  double Lr(int64_t step) const override {
    const int64_t pos = step % cycle_steps_;
    const double half = static_cast<double>(cycle_steps_) / 2.0;
    const double t = pos < half ? pos / half : (cycle_steps_ - pos) / half;
    return hi_ * t + lo_ * (1.0 - t);
  }
  /// \brief True iff \p step is the mid-cycle low point (capture point).
  bool MidCycle(int64_t step) const {
    return step % cycle_steps_ == cycle_steps_ / 2;
  }

 private:
  double hi_, lo_;
  int64_t cycle_steps_;
};

}  // namespace dlsys

#endif  // DLSYS_OPTIM_SCHEDULE_H_
