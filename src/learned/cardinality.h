#ifndef DLSYS_LEARNED_CARDINALITY_H_
#define DLSYS_LEARNED_CARDINALITY_H_

#include <cstdint>
#include <vector>

#include "src/core/status.h"
#include "src/db/table.h"
#include "src/nn/sequential.h"

/// \file cardinality.h
/// \brief Learned multi-attribute selectivity estimation (tutorial
/// Part 2, Hasan et al.): an MLP maps a conjunctive range predicate to a
/// selectivity, learning cross-column correlation that histogram
/// estimators under independence assumptions cannot represent.

namespace dlsys {

/// \brief Training configuration.
struct CardinalityConfig {
  int64_t hidden = 64;
  int64_t epochs = 120;
  double lr = 0.01;
  uint64_t seed = 23;
  double floor_sel = 1e-5;  ///< selectivity floor (log-space target)
};

/// \brief MLP selectivity estimator over normalized query boxes.
class LearnedCardinality {
 public:
  /// \brief Trains on \p queries labeled with their true selectivities
  /// on \p t. Inputs are the per-column (lo, hi) bounds normalized to
  /// [0, 1]; the regression target is log10(selectivity).
  static Result<LearnedCardinality> Train(
      const Table& t, const std::vector<RangeQuery>& queries,
      const CardinalityConfig& config);

  /// \brief Estimated selectivity of \p q in [floor, 1].
  double Estimate(const RangeQuery& q) const;

  /// \brief Model bytes.
  int64_t MemoryBytes() const { return model_.ModelBytes(); }

 private:
  Tensor Encode(const RangeQuery& q) const;

  mutable Sequential model_;
  std::vector<double> col_lo_, col_hi_;
  double floor_sel_ = 1e-5;
};

}  // namespace dlsys

#endif  // DLSYS_LEARNED_CARDINALITY_H_
