#include "src/learned/semantic_compression.h"

#include <algorithm>
#include <cmath>

#include "src/nn/layers.h"
#include "src/nn/loss.h"
#include "src/nn/train.h"
#include "src/optim/optimizer.h"

namespace dlsys {

namespace {
// Normalized (zero-mean unit-std) copy of the table as an N x C tensor.
Tensor NormalizeTable(const Table& t, std::vector<double>* means,
                      std::vector<double>* stds) {
  const int64_t rows = t.rows, cols = t.num_columns();
  Tensor x({rows, cols});
  means->assign(static_cast<size_t>(cols), 0.0);
  stds->assign(static_cast<size_t>(cols), 1.0);
  for (int64_t c = 0; c < cols; ++c) {
    const auto& col = t.columns[static_cast<size_t>(c)];
    double mean = 0.0;
    for (double v : col) mean += v;
    mean /= static_cast<double>(rows);
    double var = 0.0;
    for (double v : col) var += (v - mean) * (v - mean);
    var /= static_cast<double>(rows);
    const double stddev = std::sqrt(std::max(var, 1e-12));
    (*means)[static_cast<size_t>(c)] = mean;
    (*stds)[static_cast<size_t>(c)] = stddev;
    for (int64_t r = 0; r < rows; ++r) {
      x[r * cols + c] = static_cast<float>(
          (col[static_cast<size_t>(r)] - mean) / stddev);
    }
  }
  return x;
}
}  // namespace

Result<CompressedTable> CompressedTable::Compress(
    const Table& t, const SemanticCompressionConfig& config) {
  if (t.rows == 0 || t.num_columns() == 0) {
    return Status::InvalidArgument("empty table");
  }
  if (config.latent_dims <= 0 || config.latent_dims > t.num_columns()) {
    return Status::InvalidArgument("latent_dims must be in [1, columns]");
  }
  if (config.epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  CompressedTable out;
  out.config_ = config;
  out.rows_ = t.rows;
  out.cols_ = t.num_columns();
  Tensor x = NormalizeTable(t, &out.col_mean_, &out.col_std_);
  const int64_t cols = out.cols_;

  // Autoencoder: cols -> hidden -> latent -> hidden -> cols.
  Sequential encoder;
  encoder.Emplace<Dense>(cols, config.hidden)
      .Emplace<Tanh>()
      .Emplace<Dense>(config.hidden, config.latent_dims);
  Sequential decoder;
  decoder.Emplace<Dense>(config.latent_dims, config.hidden)
      .Emplace<Tanh>()
      .Emplace<Dense>(config.hidden, cols);
  Rng rng(config.seed);
  encoder.Init(&rng);
  decoder.Init(&rng);
  Adam enc_opt(config.lr);
  Adam dec_opt(config.lr);

  // Joint training: decoder(encoder(x)) ~ x.
  const int64_t batch = 64;
  Rng shuffle(config.seed + 1);
  std::vector<int64_t> order(static_cast<size_t>(t.rows));
  for (int64_t i = 0; i < t.rows; ++i) order[static_cast<size_t>(i)] = i;
  for (int64_t epoch = 0; epoch < config.epochs; ++epoch) {
    shuffle.Shuffle(&order);
    for (int64_t b = 0; b < t.rows; b += batch) {
      const int64_t end = std::min(b + batch, t.rows);
      Tensor bx({end - b, cols});
      for (int64_t i = b; i < end; ++i) {
        const int64_t src = order[static_cast<size_t>(i)];
        std::copy(x.data() + src * cols, x.data() + (src + 1) * cols,
                  bx.data() + (i - b) * cols);
      }
      encoder.ZeroGrads();
      decoder.ZeroGrads();
      Tensor z = encoder.Forward(bx, CacheMode::kCache);
      Tensor recon = decoder.Forward(z, CacheMode::kCache);
      LossGrad lg = MeanSquaredError(recon, bx);
      Tensor dz = decoder.Backward(lg.grad);
      encoder.Backward(dz);
      enc_opt.Step(encoder.Params(), encoder.Grads());
      dec_opt.Step(decoder.Params(), decoder.Grads());
    }
  }

  // Encode all rows; quantize latents per dimension.
  Tensor z = encoder.Forward(x, CacheMode::kNoCache);
  const int64_t ld = config.latent_dims;
  const int64_t levels = (int64_t{1} << config.latent_bits) - 1;
  out.latent_lo_.resize(static_cast<size_t>(ld));
  out.latent_step_.resize(static_cast<size_t>(ld));
  for (int64_t d = 0; d < ld; ++d) {
    float lo = z[d], hi = z[d];
    for (int64_t r = 0; r < t.rows; ++r) {
      lo = std::min(lo, z[r * ld + d]);
      hi = std::max(hi, z[r * ld + d]);
    }
    if (hi == lo) hi = lo + 1e-6f;
    out.latent_lo_[static_cast<size_t>(d)] = lo;
    out.latent_step_[static_cast<size_t>(d)] =
        (hi - lo) / static_cast<float>(levels);
  }
  out.latent_codes_.resize(static_cast<size_t>(t.rows * ld));
  Tensor zq({t.rows, ld});
  for (int64_t r = 0; r < t.rows; ++r) {
    for (int64_t d = 0; d < ld; ++d) {
      const float lo = out.latent_lo_[static_cast<size_t>(d)];
      const float step = out.latent_step_[static_cast<size_t>(d)];
      int64_t code = static_cast<int64_t>(
          std::lround((z[r * ld + d] - lo) / step));
      code = std::clamp<int64_t>(code, 0, levels);
      out.latent_codes_[static_cast<size_t>(r * ld + d)] =
          static_cast<uint8_t>(code);
      zq[r * ld + d] = lo + step * static_cast<float>(code);
    }
  }

  // Decode from the quantized latents; store corrections for violations.
  Tensor recon = decoder.Forward(zq, CacheMode::kNoCache);
  for (int64_t r = 0; r < t.rows; ++r) {
    for (int64_t c = 0; c < cols; ++c) {
      const float err = recon[r * cols + c] - x[r * cols + c];
      if (std::abs(err) > static_cast<float>(config.epsilon)) {
        out.corrections_.push_back({static_cast<int32_t>(r),
                                    static_cast<int16_t>(c),
                                    x[r * cols + c]});
      }
    }
  }
  out.decoder_ = std::move(decoder);
  return out;
}

Table CompressedTable::Decompress() const {
  const int64_t ld = config_.latent_dims;
  Tensor zq({rows_, ld});
  for (int64_t r = 0; r < rows_; ++r) {
    for (int64_t d = 0; d < ld; ++d) {
      zq[r * ld + d] =
          latent_lo_[static_cast<size_t>(d)] +
          latent_step_[static_cast<size_t>(d)] *
              static_cast<float>(
                  latent_codes_[static_cast<size_t>(r * ld + d)]);
    }
  }
  Tensor recon = decoder_.Forward(zq, CacheMode::kNoCache);
  // Apply corrections (exact values).
  for (const Correction& c : corrections_) {
    recon[static_cast<int64_t>(c.row) * cols_ + c.col] = c.value;
  }
  Table t;
  t.rows = rows_;
  t.columns.assign(static_cast<size_t>(cols_),
                   std::vector<double>(static_cast<size_t>(rows_)));
  for (int64_t r = 0; r < rows_; ++r) {
    for (int64_t c = 0; c < cols_; ++c) {
      t.columns[static_cast<size_t>(c)][static_cast<size_t>(r)] =
          static_cast<double>(recon[r * cols_ + c]) *
              col_std_[static_cast<size_t>(c)] +
          col_mean_[static_cast<size_t>(c)];
    }
  }
  return t;
}

int64_t CompressedTable::CompressedBytes() const {
  const int64_t latent_bytes =
      (rows_ * config_.latent_dims * config_.latent_bits + 7) / 8;
  const int64_t correction_bytes =
      static_cast<int64_t>(corrections_.size()) * (4 + 2 + 4);
  const int64_t model_bytes = decoder_.ModelBytes();
  const int64_t stats_bytes =
      static_cast<int64_t>(col_mean_.size()) * 16 +
      static_cast<int64_t>(latent_lo_.size()) * 8;
  return latent_bytes + correction_bytes + model_bytes + stats_bytes;
}

int64_t CompressedTable::OriginalBytes() const { return rows_ * cols_ * 8; }

int64_t QuantizationBaselineBytes(const Table& t, double epsilon) {
  // Per column: uniform quantization of the normalized values needs
  // step <= 2*epsilon, i.e. ceil(log2(range / (2 eps) + 1)) bits.
  int64_t total_bits = 0;
  for (int64_t c = 0; c < t.num_columns(); ++c) {
    const auto& col = t.columns[static_cast<size_t>(c)];
    double mean = 0.0;
    for (double v : col) mean += v;
    mean /= static_cast<double>(t.rows);
    double var = 0.0;
    for (double v : col) var += (v - mean) * (v - mean);
    var /= static_cast<double>(t.rows);
    const double stddev = std::sqrt(std::max(var, 1e-12));
    const double lo = *std::min_element(col.begin(), col.end());
    const double hi = *std::max_element(col.begin(), col.end());
    const double norm_range = (hi - lo) / stddev;
    const double levels = norm_range / (2.0 * epsilon) + 1.0;
    const int64_t bits = std::max<int64_t>(
        1, static_cast<int64_t>(std::ceil(std::log2(levels))));
    total_bits += bits * t.rows;
  }
  // Plus per-column dequantization params.
  return (total_bits + 7) / 8 + t.num_columns() * 16;
}

}  // namespace dlsys
