#ifndef DLSYS_LEARNED_LEARNED_INDEX_H_
#define DLSYS_LEARNED_LEARNED_INDEX_H_

#include <cstdint>
#include <vector>

#include "src/core/status.h"

/// \file learned_index.h
/// \brief A two-stage Recursive Model Index (tutorial Part 2, Kraska et
/// al.'s "The Case for Learned Index Structures").
///
/// The index learns the cumulative distribution of sorted keys: a root
/// linear model routes a key to one of S second-stage linear models, each
/// predicting the key's array position; per-leaf error bounds make the
/// final binary search provably correct. Its size is a few doubles per
/// model — orders of magnitude below a B+-tree over the same keys.

namespace dlsys {

/// \brief Simple linear model y = slope * x + intercept fit by least
/// squares.
struct LinearModel {
  double slope = 0.0;
  double intercept = 0.0;

  double Predict(double x) const { return slope * x + intercept; }
  /// \brief Least-squares fit; a single point (or equal xs) yields a
  /// constant model.
  static LinearModel Fit(const std::vector<double>& xs,
                         const std::vector<double>& ys);
};

/// \brief The two-stage RMI over sorted int64 keys.
class LearnedIndex {
 public:
  /// \brief Builds over \p sorted_keys (strictly increasing; checked)
  /// with \p num_leaves second-stage models.
  static Result<LearnedIndex> Build(std::vector<int64_t> sorted_keys,
                                    int64_t num_leaves);

  /// \brief Position of \p key in the key array; NotFound if absent.
  /// Guaranteed correct: the search window covers the leaf's worst
  /// residual seen at build time, so present keys are always found.
  Result<int64_t> Find(int64_t key) const;

  /// \brief The build-time search-window size for the key's leaf
  /// (max_err - min_err + 1): the "last-mile" cost of the lookup.
  int64_t SearchWindow(int64_t key) const;

  /// \brief Model bytes: root + per-leaf (model + 2 error bounds).
  int64_t MemoryBytes() const;

  /// \brief Mean search window over all leaves, weighted by keys.
  double MeanSearchWindow() const;

  /// \brief Number of keys.
  int64_t size() const { return static_cast<int64_t>(keys_.size()); }

 private:
  struct Leaf {
    LinearModel model;
    int64_t min_err = 0;  ///< most negative residual (true - predicted)
    int64_t max_err = 0;  ///< most positive residual
    int64_t begin = 0;    ///< first key index routed here (for stats)
    int64_t count = 0;
  };

  int64_t LeafFor(int64_t key) const;

  std::vector<int64_t> keys_;
  LinearModel root_;
  std::vector<Leaf> leaves_;
};

}  // namespace dlsys

#endif  // DLSYS_LEARNED_LEARNED_INDEX_H_
