#include "src/learned/knob_tuning.h"

#include <algorithm>
#include <array>
#include <map>

namespace dlsys {

namespace {

int64_t StateId(const DbKnobs& k, const std::vector<int64_t>& sizes) {
  return (k.buffer_idx * sizes[1] + k.page_idx) * sizes[2] + k.threads_idx;
}

// Actions: +/-1 on each of the three knobs, plus stay. Invalid moves are
// clamped (equivalent to stay).
constexpr int64_t kNumActions = 7;

DbKnobs ApplyAction(DbKnobs k, int64_t action,
                    const std::vector<int64_t>& sizes) {
  switch (action) {
    case 0: k.buffer_idx = std::min(k.buffer_idx + 1, sizes[0] - 1); break;
    case 1: k.buffer_idx = std::max<int64_t>(k.buffer_idx - 1, 0); break;
    case 2: k.page_idx = std::min(k.page_idx + 1, sizes[1] - 1); break;
    case 3: k.page_idx = std::max<int64_t>(k.page_idx - 1, 0); break;
    case 4: k.threads_idx = std::min(k.threads_idx + 1, sizes[2] - 1); break;
    case 5: k.threads_idx = std::max<int64_t>(k.threads_idx - 1, 0); break;
    default: break;  // stay
  }
  return k;
}

void RecordEval(TuningResult* result, const DbKnobs& knobs, double latency) {
  if (latency < result->best_latency_ms) {
    result->best_latency_ms = latency;
    result->best = knobs;
  }
  result->best_so_far.push_back(result->best_latency_ms);
}

}  // namespace

TuningResult QLearningTune(const TunableDb& db, const QTunerConfig& config) {
  const auto sizes = db.GridSizes();
  Rng rng(config.seed);
  // Q-table: state -> action values.
  std::map<int64_t, std::array<double, kNumActions>> q;
  auto q_row = [&](int64_t s) -> std::array<double, kNumActions>& {
    auto it = q.find(s);
    if (it == q.end()) {
      it = q.emplace(s, std::array<double, kNumActions>{}).first;
    }
    return it->second;
  };

  TuningResult result;
  double epsilon = config.epsilon0;
  for (int64_t ep = 0; ep < config.episodes; ++ep) {
    // Random start each episode.
    DbKnobs state{
        static_cast<int64_t>(rng.Index(static_cast<uint64_t>(sizes[0]))),
        static_cast<int64_t>(rng.Index(static_cast<uint64_t>(sizes[1]))),
        static_cast<int64_t>(rng.Index(static_cast<uint64_t>(sizes[2])))};
    for (int64_t step = 0; step < config.steps_per_episode; ++step) {
      const int64_t s = StateId(state, sizes);
      auto& row = q_row(s);
      int64_t action;
      if (rng.Uniform() < epsilon) {
        action = static_cast<int64_t>(rng.Index(kNumActions));
      } else {
        action = static_cast<int64_t>(
            std::max_element(row.begin(), row.end()) - row.begin());
      }
      const DbKnobs next = ApplyAction(state, action, sizes);
      const double latency = db.LatencyMs(next);
      RecordEval(&result, next, latency);
      const double reward = -latency;
      auto& next_row = q_row(StateId(next, sizes));
      const double best_next =
          *std::max_element(next_row.begin(), next_row.end());
      row[static_cast<size_t>(action)] +=
          config.alpha * (reward + config.gamma * best_next -
                          row[static_cast<size_t>(action)]);
      state = next;
    }
    epsilon *= config.epsilon_decay;
  }
  return result;
}

TuningResult GridSearchTune(const TunableDb& db, int64_t budget) {
  const auto sizes = db.GridSizes();
  TuningResult result;
  int64_t evaluated = 0;
  for (int64_t b = 0; b < sizes[0] && evaluated < budget; ++b) {
    for (int64_t p = 0; p < sizes[1] && evaluated < budget; ++p) {
      for (int64_t t = 0; t < sizes[2] && evaluated < budget; ++t) {
        DbKnobs k{b, p, t};
        RecordEval(&result, k, db.LatencyMs(k));
        ++evaluated;
      }
    }
  }
  return result;
}

TuningResult RandomSearchTune(const TunableDb& db, int64_t budget,
                              uint64_t seed) {
  const auto sizes = db.GridSizes();
  Rng rng(seed);
  TuningResult result;
  for (int64_t i = 0; i < budget; ++i) {
    DbKnobs k{
        static_cast<int64_t>(rng.Index(static_cast<uint64_t>(sizes[0]))),
        static_cast<int64_t>(rng.Index(static_cast<uint64_t>(sizes[1]))),
        static_cast<int64_t>(rng.Index(static_cast<uint64_t>(sizes[2])))};
    RecordEval(&result, k, db.LatencyMs(k));
  }
  return result;
}

}  // namespace dlsys
