#ifndef DLSYS_LEARNED_SEMANTIC_COMPRESSION_H_
#define DLSYS_LEARNED_SEMANTIC_COMPRESSION_H_

#include <cstdint>
#include <vector>

#include "src/core/status.h"
#include "src/db/table.h"
#include "src/nn/sequential.h"

/// \file semantic_compression.h
/// \brief Learned semantic compression of tabular data (tutorial Part 2,
/// DeepSqueeze-flavoured).
///
/// An autoencoder learns the cross-column structure of a table; rows are
/// stored as quantized latent codes plus sparse per-value corrections for
/// every reconstruction outside the error tolerance. The corrections
/// make the scheme *error-bounded* (max |error| <= epsilon, guaranteed),
/// and the latent bottleneck wins exactly when columns are correlated —
/// the regime where the per-column quantization baseline cannot shrink.

namespace dlsys {

/// \brief Compression configuration.
struct SemanticCompressionConfig {
  int64_t latent_dims = 2;
  int64_t hidden = 32;
  int64_t epochs = 150;
  double lr = 0.005;
  int64_t latent_bits = 8;   ///< quantization of latent codes
  double epsilon = 0.05;     ///< max tolerated |reconstruction error|
                             ///< in normalized column units
  uint64_t seed = 29;
};

/// \brief A compressed table with error-bounded reconstruction.
class CompressedTable {
 public:
  /// \brief Trains the autoencoder on \p t and encodes every row.
  static Result<CompressedTable> Compress(
      const Table& t, const SemanticCompressionConfig& config);

  /// \brief Reconstructs the full table (denormalized).
  Table Decompress() const;

  /// \brief Compressed bytes: quantized latents + correction list +
  /// model + per-column normalization stats.
  int64_t CompressedBytes() const;
  /// \brief Original bytes (8 per value).
  int64_t OriginalBytes() const;
  /// \brief Number of stored corrections.
  int64_t num_corrections() const {
    return static_cast<int64_t>(corrections_.size());
  }
  /// \brief The guaranteed max |error| in normalized units.
  double epsilon() const { return config_.epsilon; }

 private:
  struct Correction {
    int32_t row;
    int16_t col;
    float value;  ///< exact normalized value
  };

  SemanticCompressionConfig config_;
  int64_t rows_ = 0;
  int64_t cols_ = 0;
  mutable Sequential decoder_;
  std::vector<uint8_t> latent_codes_;   ///< rows x latent_dims, quantized
  std::vector<float> latent_lo_, latent_step_;  ///< per-dim dequant params
  std::vector<Correction> corrections_;
  std::vector<double> col_mean_, col_std_;
};

/// \brief Baseline: per-column uniform quantization at the fewest bits
/// meeting the same max-error bound. Returns total bytes.
int64_t QuantizationBaselineBytes(const Table& t, double epsilon);

}  // namespace dlsys

#endif  // DLSYS_LEARNED_SEMANTIC_COMPRESSION_H_
