#include "src/learned/cardinality.h"

#include <algorithm>
#include <cmath>

#include "src/nn/loss.h"
#include "src/nn/train.h"
#include "src/optim/optimizer.h"

namespace dlsys {

Tensor LearnedCardinality::Encode(const RangeQuery& q) const {
  const int64_t cols = static_cast<int64_t>(col_lo_.size());
  Tensor x({1, 2 * cols});
  for (int64_t c = 0; c < cols; ++c) {
    const double span =
        std::max(col_hi_[static_cast<size_t>(c)] -
                     col_lo_[static_cast<size_t>(c)],
                 1e-12);
    const double lo = std::clamp(
        (q.lo[static_cast<size_t>(c)] - col_lo_[static_cast<size_t>(c)]) /
            span,
        0.0, 1.0);
    const double hi = std::clamp(
        (q.hi[static_cast<size_t>(c)] - col_lo_[static_cast<size_t>(c)]) /
            span,
        0.0, 1.0);
    x[2 * c] = static_cast<float>(lo);
    x[2 * c + 1] = static_cast<float>(hi);
  }
  return x;
}

Result<LearnedCardinality> LearnedCardinality::Train(
    const Table& t, const std::vector<RangeQuery>& queries,
    const CardinalityConfig& config) {
  if (queries.empty()) {
    return Status::InvalidArgument("no training queries");
  }
  LearnedCardinality out;
  out.floor_sel_ = config.floor_sel;
  for (int64_t c = 0; c < t.num_columns(); ++c) {
    const auto& col = t.columns[static_cast<size_t>(c)];
    out.col_lo_.push_back(*std::min_element(col.begin(), col.end()));
    out.col_hi_.push_back(*std::max_element(col.begin(), col.end()));
  }
  const int64_t cols = t.num_columns();
  const int64_t n = static_cast<int64_t>(queries.size());

  // Features: normalized (lo, hi) per column; target: log10 selectivity.
  Tensor x({n, 2 * cols});
  Tensor y({n, 1});
  for (int64_t i = 0; i < n; ++i) {
    Tensor row = out.Encode(queries[static_cast<size_t>(i)]);
    std::copy(row.data(), row.data() + 2 * cols, x.data() + i * 2 * cols);
    const double sel = std::max(
        TrueSelectivity(t, queries[static_cast<size_t>(i)]),
        config.floor_sel);
    y[i] = static_cast<float>(std::log10(sel));
  }

  out.model_ = MakeMlp(2 * cols, {config.hidden, config.hidden}, 1);
  Rng rng(config.seed);
  out.model_.Init(&rng);
  Adam opt(config.lr);

  // Manual MSE regression loop (Train() is classification-only).
  Rng shuffle_rng(config.seed + 1);
  std::vector<int64_t> order(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) order[static_cast<size_t>(i)] = i;
  const auto params = out.model_.Params();
  const auto grads = out.model_.Grads();
  const int64_t batch = 32;
  for (int64_t epoch = 0; epoch < config.epochs; ++epoch) {
    shuffle_rng.Shuffle(&order);
    for (int64_t b = 0; b < n; b += batch) {
      const int64_t end = std::min(b + batch, n);
      Tensor bx({end - b, 2 * cols});
      Tensor by({end - b, 1});
      for (int64_t i = b; i < end; ++i) {
        const int64_t src = order[static_cast<size_t>(i)];
        std::copy(x.data() + src * 2 * cols, x.data() + (src + 1) * 2 * cols,
                  bx.data() + (i - b) * 2 * cols);
        by[i - b] = y[src];
      }
      out.model_.ZeroGrads();
      Tensor pred = out.model_.Forward(bx, CacheMode::kCache);
      LossGrad lg = MeanSquaredError(pred, by);
      out.model_.Backward(lg.grad);
      opt.Step(params, grads);
    }
  }
  return out;
}

double LearnedCardinality::Estimate(const RangeQuery& q) const {
  Tensor x = Encode(q);
  Tensor pred = model_.Forward(x, CacheMode::kNoCache);
  const double log_sel = pred[0];
  return std::clamp(std::pow(10.0, log_sel), floor_sel_, 1.0);
}

}  // namespace dlsys
