#include "src/learned/learned_bloom.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "src/data/dataset.h"
#include "src/nn/loss.h"
#include "src/nn/train.h"
#include "src/optim/optimizer.h"
#include "src/tensor/ops.h"

namespace dlsys {

namespace {
constexpr int64_t kNumFeatures = 9;
constexpr double kPi = 3.14159265358979323846;

// Fourier featurization of the normalized key: lets a small MLP carve
// the key space into intervals.
void Featurize(double u, float* out) {
  out[0] = static_cast<float>(u);
  int64_t f = 1;
  for (int64_t h = 1; h < kNumFeatures; h += 2) {
    out[h] = static_cast<float>(std::sin(2.0 * kPi * f * u));
    out[h + 1] = static_cast<float>(std::cos(2.0 * kPi * f * u));
    f *= 2;
  }
}
}  // namespace

Result<LearnedBloomFilter> LearnedBloomFilter::Train(
    const std::vector<int64_t>& members,
    const std::vector<int64_t>& non_member_sample, int64_t key_lo,
    int64_t key_hi, const LearnedBloomConfig& config) {
  if (members.empty()) {
    return Status::InvalidArgument("no members");
  }
  if (non_member_sample.empty()) {
    return Status::InvalidArgument("need non-member training sample");
  }
  if (key_hi <= key_lo) {
    return Status::InvalidArgument("empty key universe");
  }
  if (config.member_recall <= 0.0 || config.member_recall > 1.0) {
    return Status::InvalidArgument("member_recall must be in (0, 1]");
  }
  LearnedBloomFilter out;
  out.key_lo_ = static_cast<double>(key_lo);
  out.key_span_ = static_cast<double>(key_hi - key_lo);

  // Balanced training set.
  const int64_t n =
      static_cast<int64_t>(members.size() + non_member_sample.size());
  Dataset data;
  data.x = Tensor({n, kNumFeatures});
  data.y.resize(static_cast<size_t>(n));
  int64_t row = 0;
  for (int64_t key : members) {
    Featurize((static_cast<double>(key) - out.key_lo_) / out.key_span_,
              data.x.data() + row * kNumFeatures);
    data.y[static_cast<size_t>(row)] = 1;
    ++row;
  }
  for (int64_t key : non_member_sample) {
    Featurize((static_cast<double>(key) - out.key_lo_) / out.key_span_,
              data.x.data() + row * kNumFeatures);
    data.y[static_cast<size_t>(row)] = 0;
    ++row;
  }

  out.classifier_ = MakeMlp(kNumFeatures, {config.hidden, config.hidden}, 2);
  Rng rng(config.seed);
  out.classifier_.Init(&rng);
  Adam opt(config.lr);
  TrainConfig tc;
  tc.epochs = config.epochs;
  tc.batch_size = 64;
  tc.shuffle_seed = config.seed;
  dlsys::Train(&out.classifier_, &opt, data, tc);

  // Threshold: the member_recall-quantile of member scores — members
  // below it go to the backup filter.
  std::vector<double> member_scores;
  member_scores.reserve(members.size());
  for (int64_t key : members) member_scores.push_back(out.Score(key));
  std::vector<double> sorted_scores = member_scores;
  std::sort(sorted_scores.begin(), sorted_scores.end());
  const size_t cut = static_cast<size_t>(
      std::llround((1.0 - config.member_recall) *
                   static_cast<double>(sorted_scores.size())));
  out.threshold_ =
      sorted_scores[std::min(cut, sorted_scores.size() - 1)];

  // Backup filter over the classifier's false negatives.
  std::vector<int64_t> backup;
  for (size_t i = 0; i < members.size(); ++i) {
    if (member_scores[i] < out.threshold_) backup.push_back(members[i]);
  }
  out.backup_keys_ = static_cast<int64_t>(backup.size());
  if (!backup.empty()) {
    out.backup_ = BloomFilter::ForKeys(static_cast<int64_t>(backup.size()),
                                       config.backup_bits_per_key);
    for (int64_t key : backup) out.backup_.Insert(key);
  } else {
    out.backup_ = BloomFilter(64, 1);  // empty, rejects everything unseen
  }
  return out;
}

double LearnedBloomFilter::Score(int64_t key) const {
  Tensor x({1, kNumFeatures});
  Featurize((static_cast<double>(key) - key_lo_) / key_span_, x.data());
  Tensor logits = classifier_.Forward(x, CacheMode::kNoCache);
  Tensor probs = RowSoftmax(logits);
  return probs[1];
}

bool LearnedBloomFilter::MayContain(int64_t key) const {
  if (Score(key) >= threshold_) return true;
  return backup_.MayContain(key);
}

int64_t LearnedBloomFilter::MemoryBytes() const {
  return classifier_.ModelBytes() + backup_.MemoryBytes();
}

double LearnedBloomFilter::MeasureFpr(
    const std::vector<int64_t>& non_members) const {
  if (non_members.empty()) return 0.0;
  int64_t positives = 0;
  for (int64_t key : non_members) {
    if (MayContain(key)) ++positives;
  }
  return static_cast<double>(positives) /
         static_cast<double>(non_members.size());
}

MembershipData MakeClusteredMembership(int64_t num_members,
                                       int64_t num_non_members,
                                       int64_t universe, int64_t clusters,
                                       Rng* rng) {
  DLSYS_CHECK(clusters > 0 && universe > clusters * 4, "bad membership config");
  MembershipData out;
  // Member intervals covering ~10% of the universe.
  struct Interval {
    int64_t lo, hi;
  };
  std::vector<Interval> intervals;
  const int64_t span = universe / (clusters * 10);
  for (int64_t c = 0; c < clusters; ++c) {
    const int64_t lo = static_cast<int64_t>(
        rng->Index(static_cast<uint64_t>(universe - span)));
    intervals.push_back({lo, lo + span});
  }
  auto in_member_region = [&](int64_t key) {
    for (const auto& iv : intervals) {
      if (key >= iv.lo && key < iv.hi) return true;
    }
    return false;
  };
  std::set<int64_t> member_set;
  while (static_cast<int64_t>(member_set.size()) < num_members) {
    const Interval& iv = intervals[rng->Index(intervals.size())];
    member_set.insert(
        iv.lo + static_cast<int64_t>(rng->Index(
                    static_cast<uint64_t>(iv.hi - iv.lo))));
  }
  out.members.assign(member_set.begin(), member_set.end());
  while (static_cast<int64_t>(out.non_members.size()) < num_non_members) {
    const int64_t key =
        static_cast<int64_t>(rng->Index(static_cast<uint64_t>(universe)));
    if (!in_member_region(key) && !member_set.count(key)) {
      out.non_members.push_back(key);
    }
  }
  return out;
}

}  // namespace dlsys
