#ifndef DLSYS_LEARNED_JOIN_ORDER_H_
#define DLSYS_LEARNED_JOIN_ORDER_H_

#include <cstdint>
#include <vector>

#include "src/core/rng.h"
#include "src/core/status.h"
#include "src/db/join.h"
#include "src/nn/sequential.h"

/// \file join_order.h
/// \brief A learned join-order optimizer (tutorial Part 2: "proposals to
/// use deep neural networks to generate query plans directly").
///
/// A value network learns, from featurized partial plans, the log
/// cost-to-go of appending a candidate relation; plans are built by
/// greedy rollout. Trained once over a workload of random queries, it
/// generalizes to unseen queries and sidesteps the exponential Selinger
/// enumeration — trading plan optimality for constant-time planning,
/// exactly the optimizer tradeoff the tutorial highlights.

namespace dlsys {

/// \brief Training configuration.
struct JoinOptimizerConfig {
  int64_t training_queries = 200;
  int64_t relations_min = 4;
  int64_t relations_max = 10;
  double extra_edge_prob = 0.25;
  int64_t episodes_per_query = 4;  ///< epsilon-greedy rollouts per query
  int64_t fit_epochs = 60;         ///< Adam epochs over collected samples
  double lr = 0.005;
  double epsilon = 0.25;           ///< exploration rate during collection
  uint64_t seed = 31;
};

/// \brief The trained plan generator.
class LearnedJoinOptimizer {
 public:
  /// \brief Trains the value network on a workload of random queries
  /// (labels come from realized rollout costs).
  static Result<LearnedJoinOptimizer> Train(
      const JoinOptimizerConfig& config);

  /// \brief Produces a left-deep order for \p q by greedy rollout
  /// against the value network.
  std::vector<int64_t> PlanFor(const JoinQuery& q) const;

  /// \brief Value-network bytes.
  int64_t MemoryBytes() const { return model_.ModelBytes(); }

  /// \brief Number of features per (state, candidate) decision.
  static constexpr int64_t kNumFeatures = 8;

  /// \brief Featurizes appending \p candidate to the partial plan
  /// \p prefix of query \p q. Exposed for tests.
  static void Featurize(const JoinQuery& q,
                        const std::vector<int64_t>& prefix,
                        int64_t candidate, float* out);

 private:
  mutable Sequential model_;
};

}  // namespace dlsys

#endif  // DLSYS_LEARNED_JOIN_ORDER_H_
