#ifndef DLSYS_LEARNED_KNOB_TUNING_H_
#define DLSYS_LEARNED_KNOB_TUNING_H_

#include <cstdint>
#include <vector>

#include "src/core/rng.h"
#include "src/core/status.h"
#include "src/db/tunable_db.h"

/// \file knob_tuning.h
/// \brief Reinforcement-learning knob tuning (tutorial Part 2,
/// QTune/CDBTune-flavoured): an agent walks the knob lattice of the
/// simulated database, learning a Q-function from latency rewards, and is
/// compared against grid and random search at equal evaluation budgets.

namespace dlsys {

/// \brief Tuning-run outcome: the best configuration found and the
/// best-so-far latency after each evaluation (the convergence curve).
struct TuningResult {
  DbKnobs best;
  double best_latency_ms = 1e300;
  std::vector<double> best_so_far;  ///< one entry per DB evaluation
};

/// \brief Q-learning configuration.
struct QTunerConfig {
  int64_t episodes = 40;
  int64_t steps_per_episode = 25;
  double alpha = 0.3;        ///< Q-value learning rate
  double gamma = 0.9;        ///< discount
  double epsilon0 = 0.8;     ///< initial exploration rate
  double epsilon_decay = 0.92;  ///< per-episode decay
  uint64_t seed = 5;
};

/// \brief Tabular Q-learning over the knob lattice. Actions move one
/// knob one grid step (or stay); reward is negative latency.
TuningResult QLearningTune(const TunableDb& db, const QTunerConfig& config);

/// \brief Baseline: evaluates the first \p budget configurations of a
/// row-major grid enumeration.
TuningResult GridSearchTune(const TunableDb& db, int64_t budget);

/// \brief Baseline: evaluates \p budget uniformly random configurations.
TuningResult RandomSearchTune(const TunableDb& db, int64_t budget,
                              uint64_t seed);

}  // namespace dlsys

#endif  // DLSYS_LEARNED_KNOB_TUNING_H_
