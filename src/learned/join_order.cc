#include "src/learned/join_order.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>

#include "src/nn/loss.h"
#include "src/nn/train.h"
#include "src/optim/optimizer.h"

namespace dlsys {

namespace {
double Log10(double v) { return std::log10(std::max(v, 1.0)); }
}  // namespace

void LearnedJoinOptimizer::Featurize(const JoinQuery& q,
                                     const std::vector<int64_t>& prefix,
                                     int64_t candidate, float* out) {
  const int64_t n = q.num_relations();
  std::vector<int64_t> next = prefix;
  next.push_back(candidate);
  std::vector<bool> in_next(static_cast<size_t>(n), false);
  for (int64_t r : next) in_next[static_cast<size_t>(r)] = true;

  const double card_next = SubsetCardinality(q, next);
  const double card_prefix =
      prefix.empty() ? 1.0 : SubsetCardinality(q, prefix);

  // Remaining-relation statistics.
  double sum_log_remaining = 0.0;
  int64_t remaining = 0;
  int64_t connected = 0;
  double min_sel_to_next = 0.0;  // log10 of min selectivity, <= 0
  for (int64_t r = 0; r < n; ++r) {
    if (in_next[static_cast<size_t>(r)]) continue;
    ++remaining;
    sum_log_remaining += Log10(q.cardinality[static_cast<size_t>(r)]);
    double best_sel = 1.0;
    for (int64_t s : next) {
      best_sel = std::min(
          best_sel,
          q.selectivity[static_cast<size_t>(r)][static_cast<size_t>(s)]);
    }
    if (best_sel < 1.0) ++connected;
    min_sel_to_next = std::min(min_sel_to_next, std::log10(best_sel));
  }
  // Selectivity of the candidate against the existing prefix.
  double cand_sel = 1.0;
  for (int64_t s : prefix) {
    cand_sel = std::min(
        cand_sel,
        q.selectivity[static_cast<size_t>(candidate)][static_cast<size_t>(s)]);
  }

  out[0] = static_cast<float>(Log10(card_next) / 10.0);
  out[1] = static_cast<float>(Log10(card_prefix) / 10.0);
  out[2] = static_cast<float>(
      Log10(q.cardinality[static_cast<size_t>(candidate)]) / 10.0);
  out[3] = static_cast<float>(static_cast<double>(next.size()) /
                              static_cast<double>(n));
  out[4] = static_cast<float>(std::log10(std::max(cand_sel, 1e-12)) / 6.0);
  out[5] = static_cast<float>(
      remaining > 0 ? sum_log_remaining / (10.0 * remaining) : 0.0);
  out[6] = static_cast<float>(
      remaining > 0 ? static_cast<double>(connected) / remaining : 0.0);
  out[7] = static_cast<float>(min_sel_to_next / 6.0);
}

namespace {

// One epsilon-greedy rollout; appends (features, log10 cost-to-go)
// samples and returns the realized plan cost.
double Rollout(const JoinQuery& q, Sequential* model, double epsilon,
               Rng* rng, std::vector<float>* xs, std::vector<float>* ys) {
  const int64_t n = q.num_relations();
  std::vector<bool> used(static_cast<size_t>(n), false);
  std::vector<int64_t> prefix;
  // Remember each decision's feature row and the intermediates that
  // followed it, to compute cost-to-go afterwards.
  std::vector<std::array<float, LearnedJoinOptimizer::kNumFeatures>> rows;
  std::vector<double> step_costs;  // intermediate card after each append

  // First relation: epsilon-greedy over single-relation "states".
  while (static_cast<int64_t>(prefix.size()) < n) {
    int64_t pick = -1;
    if (rng->Uniform() < epsilon || prefix.empty()) {
      // Explore (and always randomize the starting relation).
      std::vector<int64_t> candidates;
      for (int64_t r = 0; r < n; ++r) {
        if (!used[static_cast<size_t>(r)]) candidates.push_back(r);
      }
      pick = candidates[rng->Index(candidates.size())];
    } else {
      double best = std::numeric_limits<double>::infinity();
      for (int64_t r = 0; r < n; ++r) {
        if (used[static_cast<size_t>(r)]) continue;
        Tensor x({1, LearnedJoinOptimizer::kNumFeatures});
        LearnedJoinOptimizer::Featurize(q, prefix, r, x.data());
        const double v =
            model->Forward(x, CacheMode::kNoCache)[0];
        if (v < best) {
          best = v;
          pick = r;
        }
      }
    }
    if (!prefix.empty()) {
      std::array<float, LearnedJoinOptimizer::kNumFeatures> row;
      LearnedJoinOptimizer::Featurize(q, prefix, pick, row.data());
      rows.push_back(row);
    }
    prefix.push_back(pick);
    used[static_cast<size_t>(pick)] = true;
    if (prefix.size() >= 2) {
      step_costs.push_back(SubsetCardinality(q, prefix));
    }
  }
  // Cost-to-go for decision i = sum of step costs from i onward.
  double total = 0.0;
  std::vector<double> cost_to_go(step_costs.size());
  for (int64_t i = static_cast<int64_t>(step_costs.size()) - 1; i >= 0;
       --i) {
    total += step_costs[static_cast<size_t>(i)];
    cost_to_go[static_cast<size_t>(i)] = total;
  }
  for (size_t i = 0; i < rows.size(); ++i) {
    xs->insert(xs->end(), rows[i].begin(), rows[i].end());
    ys->push_back(static_cast<float>(Log10(cost_to_go[i]) / 10.0));
  }
  return total;
}

}  // namespace

Result<LearnedJoinOptimizer> LearnedJoinOptimizer::Train(
    const JoinOptimizerConfig& config) {
  if (config.relations_min < 2 ||
      config.relations_max < config.relations_min) {
    return Status::InvalidArgument("bad relation range");
  }
  if (config.training_queries <= 0) {
    return Status::InvalidArgument("need training queries");
  }
  LearnedJoinOptimizer out;
  out.model_ = MakeMlp(kNumFeatures, {32, 32}, 1);
  Rng rng(config.seed);
  out.model_.Init(&rng);

  // Collect rollout samples (two passes: random-heavy then model-guided).
  std::vector<float> xs;
  std::vector<float> ys;
  for (int64_t pass = 0; pass < 2; ++pass) {
    const double epsilon = pass == 0 ? 1.0 : config.epsilon;
    Rng qrng(config.seed + 100 + static_cast<uint64_t>(pass));
    for (int64_t i = 0; i < config.training_queries; ++i) {
      const int64_t relations =
          config.relations_min +
          static_cast<int64_t>(qrng.Index(static_cast<uint64_t>(
              config.relations_max - config.relations_min + 1)));
      JoinQuery q = MakeJoinQuery(relations, config.extra_edge_prob, &qrng);
      for (int64_t e = 0; e < config.episodes_per_query; ++e) {
        Rollout(q, &out.model_, epsilon, &rng, &xs, &ys);
      }
    }
    // Fit the value network on everything collected so far.
    const int64_t samples = static_cast<int64_t>(ys.size());
    Tensor x({samples, kNumFeatures}, xs);
    Tensor y({samples, 1}, ys);
    Adam opt(config.lr);
    Rng shuffle(config.seed + 7);
    std::vector<int64_t> order(static_cast<size_t>(samples));
    for (int64_t i = 0; i < samples; ++i) order[static_cast<size_t>(i)] = i;
    const auto params = out.model_.Params();
    const auto grads = out.model_.Grads();
    for (int64_t epoch = 0; epoch < config.fit_epochs; ++epoch) {
      shuffle.Shuffle(&order);
      for (int64_t b = 0; b < samples; b += 128) {
        const int64_t end = std::min(b + 128, samples);
        Tensor bx({end - b, kNumFeatures});
        Tensor by({end - b, 1});
        for (int64_t i = b; i < end; ++i) {
          const int64_t src = order[static_cast<size_t>(i)];
          std::copy(x.data() + src * kNumFeatures,
                    x.data() + (src + 1) * kNumFeatures,
                    bx.data() + (i - b) * kNumFeatures);
          by[i - b] = y[src];
        }
        out.model_.ZeroGrads();
        Tensor pred = out.model_.Forward(bx, CacheMode::kCache);
        LossGrad lg = MeanSquaredError(pred, by);
        out.model_.Backward(lg.grad);
        opt.Step(params, grads);
      }
    }
  }
  return out;
}

std::vector<int64_t> LearnedJoinOptimizer::PlanFor(
    const JoinQuery& q) const {
  const int64_t n = q.num_relations();
  std::vector<bool> used(static_cast<size_t>(n), false);
  std::vector<int64_t> prefix;
  // Start from the smallest relation (same convention as greedy).
  int64_t first = 0;
  for (int64_t r = 1; r < n; ++r) {
    if (q.cardinality[static_cast<size_t>(r)] <
        q.cardinality[static_cast<size_t>(first)]) {
      first = r;
    }
  }
  prefix.push_back(first);
  used[static_cast<size_t>(first)] = true;
  while (static_cast<int64_t>(prefix.size()) < n) {
    int64_t pick = -1;
    double best = std::numeric_limits<double>::infinity();
    for (int64_t r = 0; r < n; ++r) {
      if (used[static_cast<size_t>(r)]) continue;
      Tensor x({1, kNumFeatures});
      Featurize(q, prefix, r, x.data());
      const double v = model_.Forward(x, CacheMode::kNoCache)[0];
      if (v < best) {
        best = v;
        pick = r;
      }
    }
    prefix.push_back(pick);
    used[static_cast<size_t>(pick)] = true;
  }
  return prefix;
}

}  // namespace dlsys
