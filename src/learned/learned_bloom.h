#ifndef DLSYS_LEARNED_LEARNED_BLOOM_H_
#define DLSYS_LEARNED_LEARNED_BLOOM_H_

#include <cstdint>
#include <vector>

#include "src/core/rng.h"
#include "src/core/status.h"
#include "src/db/bloom.h"
#include "src/nn/sequential.h"

/// \file learned_bloom.h
/// \brief Learned Bloom filter (tutorial Part 2, Kraska et al.): a
/// classifier screens membership; a small backup Bloom filter catches the
/// classifier's false negatives, preserving the zero-false-negative
/// guarantee.
///
/// When the member set has learnable structure (here: keys concentrated
/// in intervals of the key space), the classifier absorbs most of the
/// work and the combined structure undercuts a classic Bloom filter's
/// memory at equal false-positive rate.

namespace dlsys {

/// \brief Training configuration.
struct LearnedBloomConfig {
  int64_t hidden = 16;             ///< classifier MLP width
  int64_t epochs = 40;
  double lr = 0.02;
  double member_recall = 0.5;      ///< fraction of members the classifier
                                   ///< must accept (threshold quantile)
  double backup_bits_per_key = 8;  ///< sizing of the backup filter
  uint64_t seed = 17;
};

/// \brief Classifier + backup filter with no false negatives.
class LearnedBloomFilter {
 public:
  /// \brief Trains the classifier on \p members vs \p non_member_sample
  /// and builds the backup filter over the members the classifier
  /// rejects at the chosen threshold. \p key_lo / \p key_hi bound the
  /// key universe (used to normalize features).
  static Result<LearnedBloomFilter> Train(
      const std::vector<int64_t>& members,
      const std::vector<int64_t>& non_member_sample, int64_t key_lo,
      int64_t key_hi, const LearnedBloomConfig& config);

  /// \brief True if the key may be a member; members always return true.
  bool MayContain(int64_t key) const;

  /// \brief Classifier bytes + backup-filter bytes.
  int64_t MemoryBytes() const;
  /// \brief Number of members routed to the backup filter.
  int64_t backup_keys() const { return backup_keys_; }

  /// \brief Measured FPR over known non-members.
  double MeasureFpr(const std::vector<int64_t>& non_members) const;

 private:
  double Score(int64_t key) const;

  mutable Sequential classifier_;
  double threshold_ = 0.5;
  double key_lo_ = 0.0;
  double key_span_ = 1.0;
  BloomFilter backup_{64, 1};
  int64_t backup_keys_ = 0;
};

/// \brief Generates a structured member set: keys clustered in
/// \p clusters random intervals of [0, universe), plus uniform
/// non-members outside the member set. Returns {members, non_members}.
struct MembershipData {
  std::vector<int64_t> members;
  std::vector<int64_t> non_members;
};
MembershipData MakeClusteredMembership(int64_t num_members,
                                       int64_t num_non_members,
                                       int64_t universe, int64_t clusters,
                                       Rng* rng);

}  // namespace dlsys

#endif  // DLSYS_LEARNED_LEARNED_BLOOM_H_
