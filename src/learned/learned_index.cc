#include "src/learned/learned_index.h"

#include <algorithm>
#include <cmath>

namespace dlsys {

LinearModel LinearModel::Fit(const std::vector<double>& xs,
                             const std::vector<double>& ys) {
  DLSYS_CHECK(xs.size() == ys.size(), "x/y size mismatch");
  LinearModel m;
  const size_t n = xs.size();
  if (n == 0) return m;
  double mx = 0.0, my = 0.0;
  for (size_t i = 0; i < n; ++i) {
    mx += xs[i];
    my += ys[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxx = 0.0, sxy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    sxx += (xs[i] - mx) * (xs[i] - mx);
    sxy += (xs[i] - mx) * (ys[i] - my);
  }
  if (sxx < 1e-30) {
    m.slope = 0.0;
    m.intercept = my;
  } else {
    m.slope = sxy / sxx;
    m.intercept = my - m.slope * mx;
  }
  return m;
}

Result<LearnedIndex> LearnedIndex::Build(std::vector<int64_t> sorted_keys,
                                         int64_t num_leaves) {
  if (sorted_keys.empty()) {
    return Status::InvalidArgument("no keys");
  }
  if (num_leaves <= 0) {
    return Status::InvalidArgument("num_leaves must be positive");
  }
  for (size_t i = 1; i < sorted_keys.size(); ++i) {
    if (sorted_keys[i] <= sorted_keys[i - 1]) {
      return Status::InvalidArgument(
          "keys must be strictly increasing (duplicate or unsorted at " +
          std::to_string(i) + ")");
    }
  }
  LearnedIndex index;
  index.keys_ = std::move(sorted_keys);
  const int64_t n = static_cast<int64_t>(index.keys_.size());

  // Root: fit key -> leaf id over all keys (scaled positions).
  {
    std::vector<double> xs(static_cast<size_t>(n));
    std::vector<double> ys(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) {
      xs[static_cast<size_t>(i)] = static_cast<double>(index.keys_[i]);
      ys[static_cast<size_t>(i)] =
          static_cast<double>(i) * static_cast<double>(num_leaves) /
          static_cast<double>(n);
    }
    index.root_ = LinearModel::Fit(xs, ys);
  }

  // Route every key through the root to its leaf, then fit leaf models.
  index.leaves_.assign(static_cast<size_t>(num_leaves), {});
  std::vector<std::vector<double>> leaf_xs(static_cast<size_t>(num_leaves));
  std::vector<std::vector<double>> leaf_ys(static_cast<size_t>(num_leaves));
  for (int64_t i = 0; i < n; ++i) {
    const int64_t leaf = index.LeafFor(index.keys_[i]);
    leaf_xs[static_cast<size_t>(leaf)].push_back(
        static_cast<double>(index.keys_[i]));
    leaf_ys[static_cast<size_t>(leaf)].push_back(static_cast<double>(i));
  }
  for (int64_t l = 0; l < num_leaves; ++l) {
    Leaf& leaf = index.leaves_[static_cast<size_t>(l)];
    const auto& xs = leaf_xs[static_cast<size_t>(l)];
    const auto& ys = leaf_ys[static_cast<size_t>(l)];
    leaf.count = static_cast<int64_t>(xs.size());
    if (xs.empty()) continue;
    leaf.begin = static_cast<int64_t>(ys.front());
    leaf.model = LinearModel::Fit(xs, ys);
    // Exact residual bounds over this leaf's keys.
    leaf.min_err = 0;
    leaf.max_err = 0;
    for (size_t i = 0; i < xs.size(); ++i) {
      const int64_t predicted =
          static_cast<int64_t>(std::llround(leaf.model.Predict(xs[i])));
      const int64_t err = static_cast<int64_t>(ys[i]) - predicted;
      leaf.min_err = std::min(leaf.min_err, err);
      leaf.max_err = std::max(leaf.max_err, err);
    }
  }
  return index;
}

int64_t LearnedIndex::LeafFor(int64_t key) const {
  int64_t leaf = static_cast<int64_t>(
      root_.Predict(static_cast<double>(key)));
  return std::clamp<int64_t>(leaf, 0,
                             static_cast<int64_t>(leaves_.size()) - 1);
}

Result<int64_t> LearnedIndex::Find(int64_t key) const {
  const Leaf& leaf = leaves_[static_cast<size_t>(LeafFor(key))];
  const int64_t n = static_cast<int64_t>(keys_.size());
  const int64_t predicted = static_cast<int64_t>(
      std::llround(leaf.model.Predict(static_cast<double>(key))));
  int64_t lo = std::clamp<int64_t>(predicted + leaf.min_err, 0, n - 1);
  int64_t hi = std::clamp<int64_t>(predicted + leaf.max_err, 0, n - 1);
  // Binary search within the certified window.
  auto begin = keys_.begin() + lo;
  auto end = keys_.begin() + hi + 1;
  auto it = std::lower_bound(begin, end, key);
  if (it != end && *it == key) {
    return static_cast<int64_t>(it - keys_.begin());
  }
  return Status::NotFound("key " + std::to_string(key));
}

int64_t LearnedIndex::SearchWindow(int64_t key) const {
  const Leaf& leaf = leaves_[static_cast<size_t>(LeafFor(key))];
  return leaf.max_err - leaf.min_err + 1;
}

int64_t LearnedIndex::MemoryBytes() const {
  // Root (2 doubles) + per leaf: model (2 doubles) + 2 int64 bounds.
  return 16 + static_cast<int64_t>(leaves_.size()) * (16 + 16);
}

double LearnedIndex::MeanSearchWindow() const {
  double total = 0.0;
  int64_t keys = 0;
  for (const auto& leaf : leaves_) {
    total += static_cast<double>(leaf.max_err - leaf.min_err + 1) *
             static_cast<double>(leaf.count);
    keys += leaf.count;
  }
  return keys > 0 ? total / static_cast<double>(keys) : 0.0;
}

}  // namespace dlsys
