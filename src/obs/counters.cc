#include "src/obs/counters.h"

#include <cstdio>

namespace dlsys {
namespace obs {

int Counter::ThisThreadShard() {
  // Threads take round-robin shard indices on first use; 16 shards over a
  // cacheline each keeps concurrent writers off each other's lines.
  static std::atomic<int> next{0};
  thread_local const int shard =
      next.fetch_add(1, std::memory_order_relaxed) & (kShards - 1);
  return shard;
}

CounterRegistry& CounterRegistry::Global() {
  static CounterRegistry* registry = new CounterRegistry;  // leaked
  return *registry;
}

Counter* CounterRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* CounterRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

SharedHistogram* CounterRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<SharedHistogram>();
  return slot.get();
}

CounterRegistry::Snapshot CounterRegistry::SnapshotCounters() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snap;
  for (const auto& [name, c] : counters_) snap[name] = c->Value();
  for (const auto& [name, g] : gauges_) snap[name] = g->Value();
  return snap;
}

CounterRegistry::Snapshot CounterRegistry::Diff(const Snapshot& now,
                                                const Snapshot& base) {
  Snapshot out;
  for (const auto& [name, value] : now) {
    const auto it = base.find(name);
    out[name] = value - (it == base.end() ? 0 : it->second);
  }
  return out;
}

double CounterRegistry::HistogramQuantile(const std::string& name,
                                          double q) const {
  const SharedHistogram* hist = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = histograms_.find(name);
    if (it == histograms_.end()) return 0.0;
    hist = it->second.get();
  }
  return hist->Quantile(q);
}

std::string CounterRegistry::ExportText() const {
  // Copy the directory under the lock, then read values lock-free.
  std::map<std::string, const Counter*> counters;
  std::map<std::string, const Gauge*> gauges;
  std::map<std::string, const SharedHistogram*> hists;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, c] : counters_) counters[name] = c.get();
    for (const auto& [name, g] : gauges_) gauges[name] = g.get();
    for (const auto& [name, h] : histograms_) hists[name] = h.get();
  }
  std::string out;
  char line[256];
  for (const auto& [name, c] : counters) {
    std::snprintf(line, sizeof(line), "%-40s = %lld\n", name.c_str(),
                  static_cast<long long>(c->Value()));
    out += line;
  }
  for (const auto& [name, g] : gauges) {
    std::snprintf(line, sizeof(line), "%-40s = %lld (gauge)\n", name.c_str(),
                  static_cast<long long>(g->Value()));
    out += line;
  }
  for (const auto& [name, h] : hists) {
    const LatencyHistogram snap = h->Snapshot();
    std::snprintf(line, sizeof(line),
                  "%-40s = count %lld mean %.4f p50 %.4f p95 %.4f p99 %.4f "
                  "max %.4f ms\n",
                  name.c_str(), static_cast<long long>(snap.count()),
                  snap.mean_ms(), snap.Quantile(0.5), snap.Quantile(0.95),
                  snap.Quantile(0.99), snap.max_ms());
    out += line;
  }
  return out;
}

std::string CounterRegistry::ExportJson() const {
  std::map<std::string, const Counter*> counters;
  std::map<std::string, const Gauge*> gauges;
  std::map<std::string, const SharedHistogram*> hists;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, c] : counters_) counters[name] = c.get();
    for (const auto& [name, g] : gauges_) gauges[name] = g.get();
    for (const auto& [name, h] : histograms_) hists[name] = h.get();
  }
  std::string out = "{\n  \"counters\": {";
  char line[320];
  bool first = true;
  for (const auto& [name, c] : counters) {
    std::snprintf(line, sizeof(line), "%s\n    \"%s\": %lld",
                  first ? "" : ",", name.c_str(),
                  static_cast<long long>(c->Value()));
    out += line;
    first = false;
  }
  out += "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges) {
    std::snprintf(line, sizeof(line), "%s\n    \"%s\": %lld",
                  first ? "" : ",", name.c_str(),
                  static_cast<long long>(g->Value()));
    out += line;
    first = false;
  }
  out += "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : hists) {
    const LatencyHistogram snap = h->Snapshot();
    std::snprintf(
        line, sizeof(line),
        "%s\n    \"%s\": {\"count\": %lld, \"mean_ms\": %.4f, "
        "\"p50_ms\": %.4f, \"p95_ms\": %.4f, \"p99_ms\": %.4f, "
        "\"max_ms\": %.4f}",
        first ? "" : ",", name.c_str(),
        static_cast<long long>(snap.count()), snap.mean_ms(),
        snap.Quantile(0.5), snap.Quantile(0.95), snap.Quantile(0.99),
        snap.max_ms());
    out += line;
    first = false;
  }
  out += "\n  }\n}\n";
  return out;
}

void CounterRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Clear();
  for (auto& [name, g] : gauges_) g->Set(0);
  for (auto& [name, h] : histograms_) h->Reset();
}

}  // namespace obs
}  // namespace dlsys
