#include "src/obs/attribution.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "src/core/status.h"

namespace dlsys {
namespace obs {

namespace {

const char* kComponentNames[kPathComponents] = {
    "route_hop", "admission", "quota_delay",
    "slot_wait", "execute",   "return_hop",
};

void AppendI(std::string* out, const char* key, int64_t value) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "\"%s\": %lld", key,
                static_cast<long long>(value));
  *out += buf;
}

void AppendD(std::string* out, const char* key, double value) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "\"%s\": %.6f", key, value);
  *out += buf;
}

void AppendComponents(std::string* out, const PathComponents& c) {
  *out += "{";
  for (int i = 0; i < kPathComponents; ++i) {
    if (i > 0) *out += ", ";
    AppendI(out, kComponentNames[i], c.ns[i]);
  }
  *out += "}";
}

void AppendWindowSeries(std::string* out,
                        const std::vector<AttributionWindow>& series) {
  *out += "[";
  for (size_t w = 0; w < series.size(); ++w) {
    const AttributionWindow& win = series[w];
    if (w > 0) *out += ", ";
    *out += "{";
    AppendI(out, "count", win.count);
    *out += ", ";
    AppendI(out, "violations", win.violations);
    *out += ", \"sums\": ";
    AppendComponents(out, win.sums);
    *out += ", \"exemplars\": [";
    for (size_t e = 0; e < win.exemplars.size(); ++e) {
      const PathExemplar& ex = win.exemplars[e];
      if (e > 0) *out += ", ";
      *out += "{";
      AppendI(out, "rid", ex.rid);
      *out += ", ";
      AppendI(out, "total_ns", ex.total_ns);
      *out += ", \"components\": ";
      AppendComponents(out, ex.components);
      *out += "}";
    }
    *out += "]}";
  }
  *out += "]";
}

}  // namespace

const char* PathComponentName(PathComponent component) {
  return kComponentNames[static_cast<int>(component)];
}

int64_t PathComponents::total_ns() const {
  int64_t total = 0;
  for (int i = 0; i < kPathComponents; ++i) total += ns[i];
  return total;
}

PathComponents DecomposePath(const RequestPathRecord& record) {
  DLSYS_CHECK(record.admit_ns >= record.send_ns,
              "path record: admit before send");
  DLSYS_CHECK(record.quota_open_ns >= record.admit_ns,
              "path record: quota_open before admit");
  DLSYS_CHECK(record.dispatch_ns >= record.quota_open_ns,
              "path record: dispatch before quota_open");
  DLSYS_CHECK(record.finish_ns >= record.dispatch_ns,
              "path record: finish before dispatch");
  DLSYS_CHECK(record.deliver_ns >= record.finish_ns,
              "path record: deliver before finish");
  PathComponents c;
  c[PathComponent::kRouteHop] = record.admit_ns - record.send_ns;
  // Admission decides in zero simulated time in this cost model; the
  // component slot stays so a future admission cost is attributed here.
  c[PathComponent::kAdmission] = 0;
  c[PathComponent::kQuotaDelay] = record.quota_open_ns - record.admit_ns;
  c[PathComponent::kSlotWait] = record.dispatch_ns - record.quota_open_ns;
  c[PathComponent::kExecute] = record.finish_ns - record.dispatch_ns;
  c[PathComponent::kReturnHop] = record.deliver_ns - record.finish_ns;
  return c;
}

std::map<int64_t, PathComponents> ComponentsFromTrace(
    const TraceBuffer& buffer) {
  std::map<int64_t, PathComponents> out;
  struct SpanName {
    const char* name;
    PathComponent component;
  };
  static const SpanName kSpans[] = {
      {"fleet.route", PathComponent::kRouteHop},
      {"serve.quota_wait", PathComponent::kQuotaDelay},
      {"serve.slot_wait", PathComponent::kSlotWait},
      {"serve.execute", PathComponent::kExecute},
      {"fleet.return", PathComponent::kReturnHop},
  };
  for (const TraceEvent& ev : buffer.events) {
    if (ev.pid != kSimTrack || ev.name == nullptr || ev.dur_ns < 0 ||
        ev.rid < 0) {
      continue;
    }
    for (const SpanName& span : kSpans) {
      if (std::strcmp(ev.name, span.name) != 0) continue;
      out[ev.rid][span.component] += ev.dur_ns;
      break;
    }
  }
  return out;
}

std::string AttributionReportJson(const AttributionReport& report) {
  std::string out = "{";
  AppendD(&out, "window_ms", report.window_ms);
  out += ", \"fleet\": ";
  AppendWindowSeries(&out, report.fleet);
  out += ", \"tenants\": {";
  bool first = true;
  for (const auto& [tenant, series] : report.tenants) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + tenant + "\": ";
    AppendWindowSeries(&out, series);
  }
  out += "}, \"replicas\": {";
  first = true;
  for (const auto& [replica, series] : report.replicas) {
    if (!first) out += ", ";
    first = false;
    char key[32];
    std::snprintf(key, sizeof(key), "\"%d\": ", replica);
    out += key;
    AppendWindowSeries(&out, series);
  }
  out += "}}";
  out += "\n";
  return out;
}

AttributionAggregator::AttributionAggregator(const AttributionConfig& config)
    : config_(config) {
  DLSYS_CHECK(config_.window_ms > 0.0, "attribution window_ms must be > 0");
  DLSYS_CHECK(config_.exemplars_per_window >= 0,
              "attribution exemplars_per_window must be >= 0");
  report_.window_ms = config_.window_ms;
}

AttributionWindow& AttributionAggregator::WindowAt(
    std::vector<AttributionWindow>* series, size_t index) {
  if (series->size() <= index) series->resize(index + 1);
  return (*series)[index];
}

PathComponents AttributionAggregator::Record(const RequestPathRecord& record) {
  const PathComponents components = DecomposePath(record);
  const int64_t total = components.total_ns();
  const double deliver_ms = static_cast<double>(record.deliver_ns) / 1e6;
  const size_t w = static_cast<size_t>(deliver_ms / config_.window_ms);

  auto fold = [&](AttributionWindow& win, bool with_exemplar) {
    win.count += 1;
    if (!record.deadline_ok) win.violations += 1;
    for (int i = 0; i < kPathComponents; ++i) win.sums.ns[i] += components.ns[i];
    if (!with_exemplar || config_.exemplars_per_window <= 0) return;
    PathExemplar ex;
    ex.rid = record.rid;
    ex.total_ns = total;
    ex.components = components;
    auto slower = [](const PathExemplar& a, const PathExemplar& b) {
      if (a.total_ns != b.total_ns) return a.total_ns > b.total_ns;
      return a.rid < b.rid;
    };
    auto pos = std::lower_bound(win.exemplars.begin(), win.exemplars.end(),
                                ex, slower);
    win.exemplars.insert(pos, ex);
    if (win.exemplars.size() >
        static_cast<size_t>(config_.exemplars_per_window)) {
      win.exemplars.pop_back();
    }
  };

  fold(WindowAt(&report_.fleet, w), /*with_exemplar=*/true);
  fold(WindowAt(&report_.tenants[record.tenant], w), /*with_exemplar=*/false);
  if (record.replica >= 0) {
    fold(WindowAt(&report_.replicas[record.replica], w),
         /*with_exemplar=*/false);
  }
  return components;
}

}  // namespace obs
}  // namespace dlsys
