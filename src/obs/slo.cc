#include "src/obs/slo.h"

#include <algorithm>
#include <cstdio>

#include "src/core/status.h"

namespace dlsys {
namespace obs {

std::string BurnAlertsJson(const std::vector<BurnAlert>& alerts) {
  std::string out = "[";
  char buf[256];
  for (size_t i = 0; i < alerts.size(); ++i) {
    const BurnAlert& a = alerts[i];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"t_ms\": %.6f, \"scope\": \"%s\", "
                  "\"fast_burn\": %.6f, \"slow_burn\": %.6f, "
                  "\"dominant\": \"%s\", \"dominant_share\": %.6f}",
                  i > 0 ? ", " : "", a.t_ms, a.scope.c_str(), a.fast_burn,
                  a.slow_burn, PathComponentName(a.dominant),
                  a.dominant_share);
    out += buf;
  }
  out += "]";
  return out;
}

BurnRateAlerter::BurnRateAlerter(const BurnRateConfig& config)
    : config_(config) {
  DLSYS_CHECK(config_.slo_target > 0.0 && config_.slo_target < 1.0,
              "slo_target must be in (0, 1)");
  DLSYS_CHECK(config_.window_ms > 0.0, "slo window_ms must be > 0");
  DLSYS_CHECK(config_.fast_windows >= 1, "fast_windows must be >= 1");
  DLSYS_CHECK(config_.slow_windows >= config_.fast_windows,
              "slow_windows must be >= fast_windows");
  DLSYS_CHECK(config_.fast_burn_threshold > 0.0 &&
                  config_.slow_burn_threshold > 0.0,
              "burn thresholds must be > 0");
}

void BurnRateAlerter::Record(const RequestPathRecord& record,
                             const PathComponents& components) {
  const double deliver_ms = static_cast<double>(record.deliver_ns) / 1e6;
  const size_t b = static_cast<size_t>(deliver_ms / config_.window_ms);
  bool violation = !record.deadline_ok;
  if (config_.slo_latency_ms > 0.0) {
    const int64_t slo_ns = SimNs(config_.slo_latency_ms);
    if (components.total_ns() > slo_ns) violation = true;
  }
  auto fold = [&](std::vector<Bucket>* series) {
    if (series->size() <= b) series->resize(b + 1);
    Bucket& bucket = (*series)[b];
    bucket.count += 1;
    if (violation) {
      bucket.violations += 1;
      for (int i = 0; i < kPathComponents; ++i) {
        bucket.violator_sums.ns[i] += components.ns[i];
      }
    }
  };
  fold(&fleet_);
  fold(&tenants_[record.tenant]);
}

std::vector<BurnAlert> BurnRateAlerter::EvaluateScope(
    const std::string& scope, const std::vector<Bucket>& series) const {
  std::vector<BurnAlert> alerts;
  const double budget = 1.0 - config_.slo_target;
  const size_t fast_n = static_cast<size_t>(config_.fast_windows);
  const size_t slow_n = static_cast<size_t>(config_.slow_windows);
  bool armed = true;
  for (size_t b = 0; b < series.size(); ++b) {
    auto range_stats = [&](size_t n, int64_t* count, int64_t* violations,
                           PathComponents* sums) {
      *count = 0;
      *violations = 0;
      *sums = PathComponents();
      const size_t lo = b + 1 >= n ? b + 1 - n : 0;
      for (size_t i = lo; i <= b; ++i) {
        *count += series[i].count;
        *violations += series[i].violations;
        for (int c = 0; c < kPathComponents; ++c) {
          sums->ns[c] += series[i].violator_sums.ns[c];
        }
      }
    };
    int64_t fast_count = 0, fast_viol = 0;
    int64_t slow_count = 0, slow_viol = 0;
    PathComponents fast_sums, slow_sums;
    range_stats(fast_n, &fast_count, &fast_viol, &fast_sums);
    range_stats(slow_n, &slow_count, &slow_viol, &slow_sums);
    const double fast_burn =
        fast_count > 0
            ? (static_cast<double>(fast_viol) / fast_count) / budget
            : 0.0;
    const double slow_burn =
        slow_count > 0
            ? (static_cast<double>(slow_viol) / slow_count) / budget
            : 0.0;
    const bool firing = slow_count >= config_.min_requests &&
                        fast_burn >= config_.fast_burn_threshold &&
                        slow_burn >= config_.slow_burn_threshold;
    if (firing && armed) {
      armed = false;
      BurnAlert alert;
      alert.t_ms = static_cast<double>(b + 1) * config_.window_ms;
      alert.scope = scope;
      alert.fast_burn = fast_burn;
      alert.slow_burn = slow_burn;
      int dominant = 0;
      int64_t total = 0;
      for (int c = 0; c < kPathComponents; ++c) {
        total += slow_sums.ns[c];
        if (slow_sums.ns[c] > slow_sums.ns[dominant]) dominant = c;
      }
      alert.dominant = static_cast<PathComponent>(dominant);
      alert.dominant_share =
          total > 0
              ? static_cast<double>(slow_sums.ns[dominant]) / total
              : 0.0;
      alerts.push_back(alert);
    } else if (!firing && fast_burn < config_.fast_burn_threshold) {
      // Re-arm only once the fast window cools off, so one sustained
      // incident pages once instead of once per bucket.
      armed = true;
    }
  }
  return alerts;
}

std::vector<BurnAlert> BurnRateAlerter::Evaluate() const {
  std::vector<BurnAlert> alerts = EvaluateScope("fleet", fleet_);
  for (const auto& [tenant, series] : tenants_) {
    const std::vector<BurnAlert> scoped =
        EvaluateScope("tenant:" + tenant, series);
    alerts.insert(alerts.end(), scoped.begin(), scoped.end());
  }
  std::stable_sort(alerts.begin(), alerts.end(),
                   [](const BurnAlert& a, const BurnAlert& b) {
                     if (a.t_ms != b.t_ms) return a.t_ms < b.t_ms;
                     return a.scope < b.scope;
                   });
  return alerts;
}

}  // namespace obs
}  // namespace dlsys
