#ifndef DLSYS_OBS_COUNTERS_H_
#define DLSYS_OBS_COUNTERS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "src/core/metrics.h"
#include "src/obs/trace.h"  // DLSYS_OBS kill switch + macro helpers

/// \file counters.h
/// \brief Process-wide counters, gauges, and latency histograms behind
/// one name-interned registry with snapshot/diff semantics.
///
/// The registry replaces the pattern of every subsystem keeping its own
/// scalar tallies and stitching them into a MetricsReport at the end:
/// counters are registered once by name, incremented through sharded
/// atomics from any thread without contention, and read out as a
/// Snapshot. Tests assert *deltas* (Diff of two snapshots) so they stay
/// correct no matter what ran before them in the process. Exporters
/// render the whole registry as aligned text or JSON, which is where
/// benches now pull their p50/p99 from instead of building local
/// LatencyHistogram plumbing.
///
/// Counter* / Gauge* / SharedHistogram* handles returned by the registry
/// are valid for the process lifetime (Reset zeroes values, never
/// invalidates handles), so hot sites cache them in function-local
/// statics — see DLSYS_COUNTER_ADD.

namespace dlsys {
namespace obs {

/// \brief Monotone counter with cacheline-sharded atomics: concurrent
/// Add()s from different threads touch different shards.
class Counter {
 public:
  static constexpr int kShards = 16;

  void Add(int64_t delta) {
    shards_[ThisThreadShard()].v.fetch_add(delta, std::memory_order_relaxed);
  }
  /// \brief Sum over shards. Concurrent adds may or may not be included.
  int64_t Value() const {
    int64_t total = 0;
    for (const Shard& s : shards_) {
      total += s.v.load(std::memory_order_relaxed);
    }
    return total;
  }
  /// \brief Zeroes every shard (registry Reset; not for concurrent use).
  void Clear() {
    for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Shard {
    std::atomic<int64_t> v{0};
  };
  static int ThisThreadShard();
  Shard shards_[kShards];
};

/// \brief Last-writer-wins gauge (e.g. live workers, queue depth).
class Gauge {
 public:
  void Set(int64_t value) { v_.store(value, std::memory_order_relaxed); }
  int64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// \brief Mutex-guarded LatencyHistogram safe to record from any thread;
/// the registry's unit of latency aggregation.
class SharedHistogram {
 public:
  void Record(double ms) {
    std::lock_guard<std::mutex> lock(mu_);
    h_.Record(ms);
  }
  /// \brief Consistent copy for quantile reads.
  LatencyHistogram Snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return h_;
  }
  double Quantile(double q) const { return Snapshot().Quantile(q); }
  int64_t Count() const { return Snapshot().count(); }
  void Reset() {
    std::lock_guard<std::mutex> lock(mu_);
    h_ = LatencyHistogram();
  }

 private:
  mutable std::mutex mu_;
  LatencyHistogram h_;
};

/// \brief The process-wide metric directory.
class CounterRegistry {
 public:
  /// \brief Counter values by name at one point in time.
  using Snapshot = std::map<std::string, int64_t>;

  static CounterRegistry& Global();

  /// \brief Interns \p name on first use; the handle lives forever.
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  SharedHistogram* histogram(const std::string& name);

  /// \brief All counter and gauge values (gauges keyed as registered).
  Snapshot SnapshotCounters() const;

  /// \brief Per-key now - base, dropping keys absent from \p now. Keys
  /// new since \p base diff against 0, so tests created mid-process see
  /// exactly what ran between their two snapshots.
  static Snapshot Diff(const Snapshot& now, const Snapshot& base);

  /// \brief Quantile of a registered histogram; 0 when absent/empty.
  double HistogramQuantile(const std::string& name, double q) const;

  /// \brief Aligned "name = value" lines: counters, gauges, then
  /// histogram count/mean/p50/p95/p99/max rows.
  std::string ExportText() const;

  /// \brief One JSON object: {"counters": {...}, "gauges": {...},
  /// "histograms": {"<name>": {"count":..., "p50_ms":..., ...}}}.
  std::string ExportJson() const;

  /// \brief Zeroes every counter, gauge, and histogram. Handles stay
  /// valid. Benches call this between measurement sections; avoid
  /// racing it against hot-path Add()s you intend to keep.
  void Reset();

 private:
  CounterRegistry() = default;

  mutable std::mutex mu_;  ///< guards the maps, not the values
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<SharedHistogram>> histograms_;
};

/// \brief Registry-direct counter add for **runtime-built names**
/// (e.g. "serve.tenant." + name + ".served"). The DLSYS_COUNTER_ADD
/// macro caches its handle in a function-local static, which silently
/// pins the *first* name a site ever sees — wrong for dynamic names.
/// This helper pays one registry map lookup instead; still a no-op
/// under -DDLSYS_OBS=0.
inline void CounterAddDynamic(const std::string& name, int64_t delta) {
#if DLSYS_OBS
  CounterRegistry::Global().counter(name)->Add(delta);
#else
  (void)name;
  (void)delta;
#endif
}

/// \brief Registry-direct histogram record for runtime-built names; see
/// CounterAddDynamic.
inline void HistogramRecordDynamic(const std::string& name, double ms) {
#if DLSYS_OBS
  CounterRegistry::Global().histogram(name)->Record(ms);
#else
  (void)name;
  (void)ms;
#endif
}

/// \brief Registry-direct gauge set for runtime-built names; see
/// CounterAddDynamic.
inline void GaugeSetDynamic(const std::string& name, int64_t value) {
#if DLSYS_OBS
  CounterRegistry::Global().gauge(name)->Set(value);
#else
  (void)name;
  (void)value;
#endif
}

}  // namespace obs
}  // namespace dlsys

// ---------------------------------------------------------------- macros

#if DLSYS_OBS
/// Bumps a process-wide counter; the handle resolves once per site.
#define DLSYS_COUNTER_ADD(name, delta)                             \
  do {                                                             \
    static ::dlsys::obs::Counter* _dlsys_counter =                 \
        ::dlsys::obs::CounterRegistry::Global().counter(name);     \
    _dlsys_counter->Add(delta);                                    \
  } while (0)
#define DLSYS_GAUGE_SET(name, value)                               \
  do {                                                             \
    static ::dlsys::obs::Gauge* _dlsys_gauge =                     \
        ::dlsys::obs::CounterRegistry::Global().gauge(name);       \
    _dlsys_gauge->Set(value);                                      \
  } while (0)
#define DLSYS_HISTOGRAM_RECORD(name, ms)                           \
  do {                                                             \
    static ::dlsys::obs::SharedHistogram* _dlsys_hist =            \
        ::dlsys::obs::CounterRegistry::Global().histogram(name);   \
    _dlsys_hist->Record(ms);                                       \
  } while (0)
#else
#define DLSYS_COUNTER_ADD(name, delta) ((void)0)
#define DLSYS_GAUGE_SET(name, value) ((void)0)
#define DLSYS_HISTOGRAM_RECORD(name, ms) ((void)0)
#endif

#endif  // DLSYS_OBS_COUNTERS_H_
