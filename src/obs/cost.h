#ifndef DLSYS_OBS_COST_H_
#define DLSYS_OBS_COST_H_

#include <array>
#include <atomic>
#include <cstdint>

#include "src/obs/trace.h"  // DLSYS_OBS kill switch

/// \file cost.h
/// \brief Per-phase FLOP and byte attribution: the cost-accounting layer
/// between kernels and src/green's energy model.
///
/// Every hot kernel knows exactly how much arithmetic it performs (a GEMM
/// is 2·m·k·n FLOPs); what it cannot know is *why* it ran — forward pass,
/// backward pass, a served request, data preparation, or simulated
/// communication. Phase attribution closes that gap with a thread-local
/// current-phase set by PhaseScope RAII at the call sites that do know
/// (the training loop, the inference engine, the cluster), so
/// AddFlops/AddBytes land in per-phase sharded tallies. src/green turns
/// the totals into energy *per phase* (EstimatePhaseFootprint), which is
/// what lets the Part-3 environmental accounting say where the joules
/// went instead of reporting one aggregate.
///
/// Accounting is *always on* (cost: one thread-local read + one relaxed
/// atomic add per kernel launch, not per element) unless compiled out
/// with -DDLSYS_OBS=0. It never changes control flow or arithmetic, so
/// it cannot perturb bit-determinism.
///
/// Attribution convention: kernels attribute their own totals on the
/// *launching* thread before dispatching to ParallelFor (worker threads
/// inherit no phase), so parallel execution never splits or doubles a
/// tally and the totals are identical at any DLSYS_THREADS.

namespace dlsys {
namespace obs {

/// \brief The paper's Part-3 accounting phases.
enum class Phase : int {
  kOther = 0,    ///< default: unattributed work
  kData = 1,     ///< dataset prep, shuffling, batch assembly
  kForward = 2,  ///< training forward + loss
  kBackward = 3, ///< gradients + optimizer step
  kComm = 4,     ///< (simulated) distributed communication
  kServe = 5,    ///< compiled-engine inference / serving
  kCount = 6,
};

/// \brief Lower-case stable name of a phase ("forward", "serve", ...).
const char* PhaseName(Phase phase);

/// \brief RAII: sets the calling thread's phase, restoring on exit
/// (nestable — an engine call inside a training loop re-attributes to
/// kServe only for its own extent).
class PhaseScope {
 public:
  explicit PhaseScope(Phase phase);
  ~PhaseScope();
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  Phase prev_;
};

/// \brief Current thread's phase (kOther when never set).
Phase CurrentPhase();

/// \brief Attributes \p n FLOPs to the calling thread's current phase.
void AddFlops(int64_t n);
/// \brief Attributes \p n moved bytes to the current phase.
void AddBytes(int64_t n);

/// \brief Accumulated per-phase totals.
struct PhaseCost {
  std::array<int64_t, static_cast<size_t>(Phase::kCount)> flops = {};
  std::array<int64_t, static_cast<size_t>(Phase::kCount)> bytes = {};

  int64_t TotalFlops() const {
    int64_t t = 0;
    for (int64_t f : flops) t += f;
    return t;
  }
};

/// \brief Snapshot of the process-wide per-phase tallies.
PhaseCost PhaseTotals();

/// \brief Zeroes the tallies (quiescent points only).
void ResetPhaseTotals();

}  // namespace obs
}  // namespace dlsys

// ---------------------------------------------------------------- macros

#if DLSYS_OBS
#define DLSYS_COST_FLOPS(n) ::dlsys::obs::AddFlops(static_cast<int64_t>(n))
#define DLSYS_COST_BYTES(n) ::dlsys::obs::AddBytes(static_cast<int64_t>(n))
#define DLSYS_PHASE_SCOPE(phase) \
  ::dlsys::obs::PhaseScope DLSYS_OBS_CONCAT(_dlsys_phase_, __LINE__)(phase)
#else
#define DLSYS_COST_FLOPS(n) ((void)0)
#define DLSYS_COST_BYTES(n) ((void)0)
#define DLSYS_PHASE_SCOPE(phase) ((void)0)
#endif

#endif  // DLSYS_OBS_COST_H_
