#ifndef DLSYS_OBS_SLO_H_
#define DLSYS_OBS_SLO_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/obs/attribution.h"

/// \file slo.h
/// \brief Multi-window SLO burn-rate alerting with per-component
/// budget attribution.
///
/// ## Burn rate
///
/// An SLO of target T (e.g. 0.99 "delivered in time") leaves an error
/// budget of 1-T. The burn rate over a range of request windows is
///
///   burn = violation_fraction / (1 - T)
///
/// i.e. burn 1.0 spends the budget exactly at the sustainable rate and
/// burn 14.4 exhausts a 30-day budget in ~2 days (the classic fast-page
/// threshold). A request *violates* when it misses its end-to-end
/// deadline or, when `slo_latency_ms` is set, exceeds that latency.
///
/// ## Multi-window AND
///
/// Alerting on one window forces a choice between latency (long window)
/// and flappiness (short window). The standard fix is to require a fast
/// window (here `fast_windows` aggregation buckets) AND a slow window
/// (`slow_windows` buckets) to both exceed their thresholds: the slow
/// window proves the burn is sustained, the fast window proves it is
/// still happening. Alerts are edge-triggered per scope (fleet-wide and
/// per tenant) and re-arm once the fast window drops back under its
/// threshold, so a single incident pages once.
///
/// ## Component attribution
///
/// Each alert names the *dominant component*: the critical-path stage
/// (route hop, quota delay, slot wait, execute, return hop, ...) with
/// the largest summed time among violating requests in the slow window
/// range. That classifies E35 chaos at detection time — a gray failure
/// (compute 8x) alerts execute-dominant, a slow partition (hop 40x)
/// alerts route_hop-dominant — instead of leaving diagnosis to a human
/// scrolling traces.
///
/// The alerter consumes the same RequestPathRecords as the attribution
/// aggregator and is evaluated deterministically over the finished
/// window series, so alert output is bit-replayable at any
/// DLSYS_THREADS.

namespace dlsys {
namespace obs {

/// \brief Burn-rate alerting knobs. `slo_latency_ms <= 0` restricts
/// violations to missed deadlines only.
struct BurnRateConfig {
  double slo_target = 0.99;     ///< fraction of requests that must be ok
  double slo_latency_ms = 0.0;  ///< per-request latency SLO (<=0: off)
  double window_ms = 100.0;     ///< aggregation bucket width
  int fast_windows = 1;         ///< buckets in the fast window
  int slow_windows = 10;        ///< buckets in the slow window
  double fast_burn_threshold = 14.4;  ///< fast window must burn >= this
  double slow_burn_threshold = 6.0;   ///< slow window must burn >= this
  int64_t min_requests = 20;    ///< slow-window request floor (guards
                                ///< against tiny-sample flapping)
};

/// \brief One fired alert: where, when, how hard the budget was burning,
/// and which critical-path component was burning it.
struct BurnAlert {
  double t_ms = 0.0;        ///< close of the bucket that tripped it
  std::string scope;        ///< "fleet" or "tenant:<name>"
  double fast_burn = 0.0;
  double slow_burn = 0.0;
  PathComponent dominant = PathComponent::kExecute;
  double dominant_share = 0.0;  ///< dominant's share of violator time
};

/// \brief Deterministic JSON array of \p alerts (fixed field order and
/// formatting; byte-comparable across runs and DLSYS_THREADS).
std::string BurnAlertsJson(const std::vector<BurnAlert>& alerts);

/// \brief Accumulates per-request outcomes into fixed buckets and, at
/// evaluation, sweeps them with the multi-window burn-rate rule per
/// scope. Single-threaded; deterministic given the same record sequence.
class BurnRateAlerter {
 public:
  explicit BurnRateAlerter(const BurnRateConfig& config);

  /// \brief Accounts one completed request (bucket = delivery time).
  /// \p components must be DecomposePath(record).
  void Record(const RequestPathRecord& record,
              const PathComponents& components);

  /// \brief Sweeps all buckets in time order and returns every alert
  /// edge, fleet-wide and per tenant, ordered by (time, scope).
  std::vector<BurnAlert> Evaluate() const;

  const BurnRateConfig& config() const { return config_; }

 private:
  /// One scope's per-bucket tallies.
  struct Bucket {
    int64_t count = 0;
    int64_t violations = 0;
    PathComponents violator_sums;  ///< component time of violators only
  };

  std::vector<BurnAlert> EvaluateScope(const std::string& scope,
                                       const std::vector<Bucket>& series)
      const;

  BurnRateConfig config_;
  std::vector<Bucket> fleet_;
  std::map<std::string, std::vector<Bucket>> tenants_;
};

}  // namespace obs
}  // namespace dlsys

#endif  // DLSYS_OBS_SLO_H_
