#ifndef DLSYS_OBS_TRACE_H_
#define DLSYS_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "src/core/status.h"

/// \file trace.h
/// \brief Always-on tracing: thread-local lock-free span rings drained
/// into Chrome trace_event JSON (loadable in Perfetto / chrome://tracing).
///
/// ## Design
///
/// Every instrumented site costs **one predicted-taken branch** while
/// tracing is disabled (a relaxed atomic load of the global enable flag).
/// When enabled, a span is two steady_clock reads plus one store into a
/// thread-local ring of POD events — no locks, no allocation after the
/// ring's one-time lazy construction, and no effect on any computed
/// value, which is what keeps traced and untraced runs bitwise identical
/// (test-enforced by test_obs at DLSYS_THREADS 1/2/8).
///
/// ## Ring-buffer drain protocol
///
/// Each thread owns up to two append-only rings registered in a global
/// list: one for wall-clock events and a larger one, lazily created only
/// on threads that emit them, for simulated-clock events. Splitting the
/// tracks matters for determinism: wall-event volume on the driver
/// thread varies with DLSYS_THREADS (inline ParallelFor chunks), so if
/// both tracks shared a ring, overflow would drop a thread-count-
/// dependent *sim* suffix and break the byte-compared sim slice. With
/// split rings, sim drops depend only on sim volume. The writer
/// publishes an event by storing the slot then releasing the head index;
/// DrainTrace() acquires the head and copies `[drained, head)`, so every
/// drained event is happens-before ordered and the protocol is race-free
/// under TSan even while other threads keep tracing. Slots are never
/// recycled between resets: a full ring *drops* new events — counted in
/// TraceBuffer::dropped and in the `obs.trace.dropped_spans` registry
/// counter — instead of overwriting, and ResetTrace() — which rewinds
/// the rings — must only run at quiescent points (no concurrent
/// instrumented work), the same discipline benches already need for
/// timing sections.
///
/// ## Two time tracks
///
/// Wall-clock spans (kernels, engine steps, ParallelFor ranges) record
/// real nanoseconds on pid 1. The serving layer additionally emits its
/// request lifecycle (admit → queue → batch-execute → respond) on pid 2
/// in **simulated** milliseconds with the request id attached, so a
/// single request's path is reconstructable from the exported trace by
/// `rid` even though scheduling ran on the simulated clock.
///
/// ## Kill switch
///
/// Compiling with -DDLSYS_OBS=0 (CMake option DLSYS_OBS=OFF) expands all
/// DLSYS_TRACE_* / DLSYS_COUNTER_* / DLSYS_COST_* macros to nothing; the
/// obs library itself still builds so explicit API users keep linking.

#ifndef DLSYS_OBS
#define DLSYS_OBS 1
#endif

namespace dlsys {
namespace obs {

/// \brief One completed span or instant event (POD; rings store these).
struct TraceEvent {
  const char* name = nullptr;  ///< interned: string literal lifetime
  const char* cat = nullptr;
  int64_t ts_ns = 0;    ///< start; wall track: ns since process trace epoch
  int64_t dur_ns = -1;  ///< -1 encodes an instant event
  int64_t rid = -1;     ///< request id, -1 when not request-scoped
  int64_t span = -1;    ///< causal span id, -1 when unlinked
  int64_t parent = -1;  ///< parent span id, -1 for roots / unlinked
  int64_t flops = 0;    ///< attributed floating-point work (0 = untagged)
  int64_t bytes = 0;    ///< attributed bytes moved (0 = untagged)
  int32_t pid = 1;      ///< 1 = wall-clock track, 2 = simulated-clock track
  uint32_t tid = 0;     ///< stable per-thread index
};

/// Simulated-clock track id for TraceEvent::pid.
inline constexpr int32_t kSimTrack = 2;

namespace internal {
extern std::atomic<bool> g_enabled;
extern std::atomic<int32_t> g_sample_every;
int64_t NowNs();
/// Records \p ev into the calling thread's ring (drop-on-full).
void Record(const TraceEvent& ev);
/// True when this thread's 1-in-N sampling counter elects the next span.
bool SampleThisSpan();
}  // namespace internal

/// \brief Turns span recording on or off process-wide. Off (the default)
/// costs instrumented sites one predicted branch.
void SetTracingEnabled(bool enabled);

/// \brief True when spans are being recorded.
inline bool TracingEnabled() {
  return internal::g_enabled.load(std::memory_order_relaxed);
}

/// \brief Runtime sampling knob: record one span in \p every (clamped to
/// >= 1; 1 = record all). Sampling is per-thread and affects only trace
/// volume, never computed results.
void SetTraceSampling(int32_t every);

/// \brief Current sampling divisor.
int32_t TraceSampling();

/// \brief RAII span on the wall-clock track: records [construction,
/// destruction) under \p name when tracing is enabled and the sampler
/// elects it. \p name and \p cat must be string literals (interned by
/// pointer). Cost tags \p flops / \p bytes land in the event's args.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name, const char* cat, int64_t rid = -1,
                     int64_t flops = 0, int64_t bytes = 0) {
    if (TracingEnabled() && internal::SampleThisSpan()) {
      name_ = name;
      cat_ = cat;
      rid_ = rid;
      flops_ = flops;
      bytes_ = bytes;
      start_ns_ = internal::NowNs();
    }
  }
  ~TraceSpan() {
    if (start_ns_ < 0) return;
    TraceEvent ev;
    ev.name = name_;
    ev.cat = cat_;
    ev.ts_ns = start_ns_;
    ev.dur_ns = internal::NowNs() - start_ns_;
    ev.rid = rid_;
    ev.flops = flops_;
    ev.bytes = bytes_;
    internal::Record(ev);
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_ = nullptr;
  const char* cat_ = nullptr;
  int64_t rid_ = -1;
  int64_t flops_ = 0;
  int64_t bytes_ = 0;
  int64_t start_ns_ = -1;  ///< -1: disabled or not sampled
};

/// \brief Explicit begin for spans that cannot use RAII scoping. Returns
/// the start timestamp, or -1 when tracing is off / not sampled; pass the
/// value to TraceEnd, which is a no-op for -1.
int64_t TraceBegin();

/// \brief Explicit end paired with TraceBegin.
void TraceEnd(const char* name, const char* cat, int64_t start_ns,
              int64_t rid = -1, int64_t flops = 0, int64_t bytes = 0);

/// \brief Emits a complete span on the **simulated**-clock track (pid 2)
/// with explicit timestamps in simulated milliseconds. Not sampled: when
/// tracing is enabled every lifecycle event is recorded, so a request's
/// path is always complete.
void TraceEmitSim(const char* name, const char* cat, double ts_ms,
                  double dur_ms, int64_t rid);

/// \brief Emits an instant event on the simulated-clock track.
void TraceInstantSim(const char* name, const char* cat, double ts_ms,
                     int64_t rid);

/// \brief Emits a causally-linked complete span on the simulated-clock
/// track with timestamps in **integer simulated nanoseconds** — the
/// exact quantization the critical-path decomposer works in, so a
/// span's rendered duration equals its attribution component bitwise.
/// \p span / \p parent link the request's spans into a tree (use the
/// span-id helpers in attribution.h); pass -1 for unlinked/root.
void TraceEmitSimSpanNs(const char* name, const char* cat, int64_t ts_ns,
                        int64_t dur_ns, int64_t rid, int64_t span,
                        int64_t parent);

/// \brief Everything drained from the rings so far.
struct TraceBuffer {
  std::vector<TraceEvent> events;
  int64_t dropped = 0;  ///< events lost to full rings since last reset
};

/// \brief Copies all not-yet-drained events out of every thread ring
/// (without rewinding them). Safe to call while other threads trace.
TraceBuffer DrainTrace();

/// \brief Rewinds every ring and the dropped counter. Only call at
/// quiescent points: no instrumented work may run concurrently.
void ResetTrace();

/// \brief The subset of \p buffer on the simulated-clock track (pid 2).
/// Sim-track events carry simulated timestamps and are emitted by
/// single-threaded event loops (the serving front door, the fleet
/// driver), so this slice — unlike the wall-clock track — is
/// byte-reproducible across runs and DLSYS_THREADS settings; the fleet
/// determinism tests ChromeTraceJson this filtered buffer and compare.
TraceBuffer SimTrackOnly(const TraceBuffer& buffer);

/// \brief Renders \p buffer as a Chrome trace_event JSON document, one
/// event per line, sim-track events converted to microseconds.
std::string ChromeTraceJson(const TraceBuffer& buffer);

/// \brief Writes ChromeTraceJson(buffer) to \p path.
Status WriteChromeTrace(const std::string& path, const TraceBuffer& buffer);

/// \brief Per-name aggregate with self-time (duration minus time spent in
/// spans nested inside it on the same thread's wall track).
struct SpanStat {
  std::string name;
  int64_t count = 0;
  double total_ms = 0.0;
  double self_ms = 0.0;
};

/// \brief Aggregates wall-track spans by name, computing self-time from
/// per-thread nesting, sorted by descending self_ms.
std::vector<SpanStat> SelfTimeByName(const TraceBuffer& buffer);

}  // namespace obs
}  // namespace dlsys

// ---------------------------------------------------------------- macros
// Instrumentation sites use these so -DDLSYS_OBS=0 compiles them out
// entirely (argument expressions included).

#define DLSYS_OBS_CONCAT_INNER(a, b) a##b
#define DLSYS_OBS_CONCAT(a, b) DLSYS_OBS_CONCAT_INNER(a, b)

#if DLSYS_OBS
#define DLSYS_TRACE_SPAN(name, cat) \
  ::dlsys::obs::TraceSpan DLSYS_OBS_CONCAT(_dlsys_span_, __LINE__)(name, cat)
#define DLSYS_TRACE_SPAN_COST(name, cat, flops, bytes)                     \
  ::dlsys::obs::TraceSpan DLSYS_OBS_CONCAT(_dlsys_span_, __LINE__)(        \
      name, cat, -1, static_cast<int64_t>(flops), static_cast<int64_t>(bytes))
/// Like DLSYS_TRACE_SPAN_COST but \p cat may be a runtime-selected pointer
/// to a string literal (e.g. the dispatched ISA's category from
/// src/simd/dispatch.h) instead of a literal spelled at the site.
#define DLSYS_TRACE_SPAN_COST_CAT(name, cat, flops, bytes)                 \
  ::dlsys::obs::TraceSpan DLSYS_OBS_CONCAT(_dlsys_span_, __LINE__)(        \
      name, cat, -1, static_cast<int64_t>(flops), static_cast<int64_t>(bytes))
#define DLSYS_TRACE_EMIT_SIM(name, cat, ts_ms, dur_ms, rid) \
  ::dlsys::obs::TraceEmitSim(name, cat, ts_ms, dur_ms, rid)
#define DLSYS_TRACE_INSTANT_SIM(name, cat, ts_ms, rid) \
  ::dlsys::obs::TraceInstantSim(name, cat, ts_ms, rid)
#define DLSYS_TRACE_EMIT_SIM_NS(name, cat, ts_ns, dur_ns, rid, span, parent) \
  ::dlsys::obs::TraceEmitSimSpanNs(name, cat, ts_ns, dur_ns, rid, span,      \
                                   parent)
#else
#define DLSYS_TRACE_SPAN(name, cat) ((void)0)
#define DLSYS_TRACE_SPAN_COST(name, cat, flops, bytes) ((void)0)
#define DLSYS_TRACE_SPAN_COST_CAT(name, cat, flops, bytes) ((void)0)
#define DLSYS_TRACE_EMIT_SIM(name, cat, ts_ms, dur_ms, rid) ((void)0)
#define DLSYS_TRACE_INSTANT_SIM(name, cat, ts_ms, rid) ((void)0)
#define DLSYS_TRACE_EMIT_SIM_NS(name, cat, ts_ns, dur_ns, rid, span, parent) \
  ((void)0)
#endif

#endif  // DLSYS_OBS_TRACE_H_
