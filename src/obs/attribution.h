#ifndef DLSYS_OBS_ATTRIBUTION_H_
#define DLSYS_OBS_ATTRIBUTION_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/obs/trace.h"

/// \file attribution.h
/// \brief Request-scoped critical-path attribution: decompose every
/// request's client-observed latency into the stage that spent it.
///
/// ## The RequestTrace context
///
/// A fleet request crosses router -> admission -> quota -> slot ->
/// execute -> return hop, and until this layer each stage logged under
/// its own id space (the fleet's arrival index vs the server's per-
/// instance completion id). `RequestTrace` is the context the fleet
/// threads through `Server::Submit`: the fleet-global rid plus the
/// serving replica's incarnation. Every simulated-clock span a request
/// leaves behind then carries the *same* rid, and spans are causally
/// linked by explicit span/parent ids (see span-id scheme below), so one
/// request's whole path is a tree in the Perfetto export.
///
/// ## Exact decomposition
///
/// Components are differences of adjacent boundary timestamps quantized
/// to integer simulated nanoseconds with SimNs — the same quantizer the
/// sim-track trace emitters use. Integer telescoping makes the identity
///
///   route + admission + quota + slot + execute + return == deliver-send
///
/// hold *bitwise* for every completed request (test-enforced at
/// DLSYS_THREADS 1/2/8), with no float-reassociation slop. Admission is
/// currently a zero-width component: the cost model prices the
/// admission decision at zero simulated time, and keeping the slot in
/// the schema means a future admission cost lands attributed instead of
/// smeared into its neighbors.
///
/// ## Windowed series and exemplars
///
/// `AttributionAggregator` folds per-request components into fixed
/// windows keyed by delivery time, scoped fleet-wide, per tenant, and
/// per replica, and captures the k slowest rids per window as exemplars
/// — aggregate numbers say *that* the tail moved, the exemplar rids link
/// back to full per-request span trees in the trace export and say
/// *which requests* moved it. The report JSON is fixed-format and
/// byte-stable under replay at any DLSYS_THREADS (CI-diffed).

namespace dlsys {
namespace obs {

/// \brief Request context threaded from the fleet router through the
/// serving stack (the tenant rides Submit's existing tenant parameter).
struct RequestTrace {
  int64_t rid = -1;         ///< fleet-global request id
  int64_t incarnation = 0;  ///< serving replica incarnation
};

/// \brief The critical-path stages of one served request, in path order.
enum class PathComponent {
  kRouteHop = 0,   ///< client send -> replica arrival (forward hop)
  kAdmission = 1,  ///< admission decision (zero-width in this cost model)
  kQuotaDelay = 2, ///< arrival -> tenant token-bucket opens
  kSlotWait = 3,   ///< quota open -> step dispatch (lane + step wait)
  kExecute = 4,    ///< dispatch -> modeled finish
  kReturnHop = 5,  ///< finish -> client delivery (return hop)
};
inline constexpr int kPathComponents = 6;

/// \brief Stable lowercase component name ("route_hop", ...).
const char* PathComponentName(PathComponent component);

/// \brief Simulated milliseconds -> integer simulated nanoseconds, the
/// shared quantizer of the sim-track trace emitters and the decomposer
/// (truncating cast, monotone over the non-negative sim clock).
inline int64_t SimNs(double ms) { return static_cast<int64_t>(ms * 1e6); }

/// \brief Span-id scheme for a request's causally-linked sim spans:
/// ids are rid * 8 + k, so they never collide across requests and the
/// decomposer can recover (rid, stage) from an id alone.
inline constexpr int64_t kSpanStride = 8;
/// Root span id ("fleet.request", parent -1).
inline int64_t RequestSpanId(int64_t rid) { return rid * kSpanStride; }
/// Component span id (k = 1 + component index).
inline int64_t ComponentSpanId(int64_t rid, PathComponent component) {
  return rid * kSpanStride + 1 + static_cast<int64_t>(component);
}
/// The "serve.queue" umbrella span (admission -> dispatch; parent of the
/// quota and slot-wait children).
inline int64_t QueueSpanId(int64_t rid) { return rid * kSpanStride + 7; }

/// \brief Boundary timestamps of one completed request, in simulated
/// integer nanoseconds (SimNs of the sim-clock instants), monotone in
/// path order. Standalone-server records set send == admit and
/// deliver == finish (no network hops).
struct RequestPathRecord {
  int64_t rid = -1;
  std::string tenant;       ///< normalized ("default" when untenanted)
  int replica = -1;         ///< fleet replica slot; -1 standalone
  int64_t incarnation = 0;  ///< replica incarnation that served it
  int slot = -1;            ///< slot-pool lane; -1 in legacy batch mode
  int64_t send_ns = 0;      ///< client handed the request to the router
  int64_t admit_ns = 0;     ///< arrived + admitted at the replica
  int64_t quota_open_ns = 0;  ///< tenant bucket funded it (clamped to
                              ///< [admit, dispatch])
  int64_t dispatch_ns = 0;  ///< step/batch departure
  int64_t finish_ns = 0;    ///< modeled service completion
  int64_t deliver_ns = 0;   ///< response landed back at the client
  bool deadline_ok = false; ///< delivered within the end-to-end deadline
};

/// \brief One request's latency split by stage, integer sim-ns.
struct PathComponents {
  int64_t ns[kPathComponents] = {0, 0, 0, 0, 0, 0};

  int64_t& operator[](PathComponent c) {
    return ns[static_cast<int>(c)];
  }
  int64_t operator[](PathComponent c) const {
    return ns[static_cast<int>(c)];
  }
  /// \brief Sum of the components; equals end-to-end latency bitwise.
  int64_t total_ns() const;
};

/// \brief Splits \p record into components by telescoping adjacent
/// boundary differences. Checks boundary monotonicity (a record that
/// violates path order is a bug, not data).
PathComponents DecomposePath(const RequestPathRecord& record);

/// \brief Rebuilds per-rid components from the sim-track spans of
/// \p buffer (fleet.route / serve.quota_wait / serve.slot_wait /
/// serve.execute / fleet.return durations). The trace-derived
/// decomposition matches DecomposePath of the corresponding records
/// bitwise — both sides quantize with SimNs (test-enforced).
std::map<int64_t, PathComponents> ComponentsFromTrace(
    const TraceBuffer& buffer);

/// \brief Aggregation knobs for the windowed component series.
struct AttributionConfig {
  double window_ms = 500.0;      ///< series bucket width (delivery time)
  int exemplars_per_window = 3;  ///< k slowest rids kept per window
};

/// \brief One of the k slowest requests of a window; the rid links back
/// to the request's span tree in the Perfetto export.
struct PathExemplar {
  int64_t rid = -1;
  int64_t total_ns = 0;
  PathComponents components;
};

/// \brief One window of one scope's component series.
struct AttributionWindow {
  int64_t count = 0;             ///< requests delivered in the window
  int64_t violations = 0;        ///< of those, deadline_ok == false
  PathComponents sums;           ///< per-component ns totals
  std::vector<PathExemplar> exemplars;  ///< fleet scope only; slowest
                                        ///< first, ties by rid
};

/// \brief The finished windowed series: fleet-wide plus per-tenant and
/// per-replica slices (map order keeps the JSON byte-stable).
struct AttributionReport {
  double window_ms = 500.0;
  std::vector<AttributionWindow> fleet;
  std::map<std::string, std::vector<AttributionWindow>> tenants;
  std::map<int, std::vector<AttributionWindow>> replicas;
};

/// \brief Renders \p report as deterministic JSON (fixed field order and
/// float formatting; integer component sums) — byte-comparable across
/// runs and DLSYS_THREADS; the CI determinism step diffs it.
std::string AttributionReportJson(const AttributionReport& report);

/// \brief Folds RequestPathRecords into the windowed component series.
/// Single-threaded (driven by the fleet's event loop); deterministic
/// given the same record sequence.
class AttributionAggregator {
 public:
  explicit AttributionAggregator(const AttributionConfig& config);

  /// \brief Accounts one completed request (window = delivery time).
  /// Returns the decomposition so callers feed alerting without
  /// decomposing twice.
  PathComponents Record(const RequestPathRecord& record);

  /// \brief The series so far (windows up to the latest delivery).
  const AttributionReport& report() const { return report_; }

 private:
  AttributionWindow& WindowAt(std::vector<AttributionWindow>* series,
                              size_t index);

  AttributionConfig config_;
  AttributionReport report_;
};

}  // namespace obs
}  // namespace dlsys

#endif  // DLSYS_OBS_ATTRIBUTION_H_
