#include "src/obs/cost.h"

namespace dlsys {
namespace obs {

namespace {

constexpr int kShards = 16;
constexpr size_t kPhases = static_cast<size_t>(Phase::kCount);

struct alignas(64) ShardRow {
  std::atomic<int64_t> v{0};
};

/// tallies[phase][shard]; sharded like Counter so concurrent launching
/// threads do not contend on one cacheline.
struct Tallies {
  ShardRow flops[kPhases][kShards];
  ShardRow bytes[kPhases][kShards];

  static Tallies& Get() {
    static Tallies* t = new Tallies;  // leaked: workers may outlive main
    return *t;
  }
};

thread_local Phase t_phase = Phase::kOther;

int ThisThreadShard() {
  static std::atomic<int> next{0};
  thread_local const int shard =
      next.fetch_add(1, std::memory_order_relaxed) & (kShards - 1);
  return shard;
}

}  // namespace

const char* PhaseName(Phase phase) {
  switch (phase) {
    case Phase::kOther:    return "other";
    case Phase::kData:     return "data";
    case Phase::kForward:  return "forward";
    case Phase::kBackward: return "backward";
    case Phase::kComm:     return "comm";
    case Phase::kServe:    return "serve";
    case Phase::kCount:    break;
  }
  return "invalid";
}

PhaseScope::PhaseScope(Phase phase) : prev_(t_phase) { t_phase = phase; }

PhaseScope::~PhaseScope() { t_phase = prev_; }

Phase CurrentPhase() { return t_phase; }

void AddFlops(int64_t n) {
  if (n <= 0) return;
  Tallies::Get()
      .flops[static_cast<size_t>(t_phase)][ThisThreadShard()]
      .v.fetch_add(n, std::memory_order_relaxed);
}

void AddBytes(int64_t n) {
  if (n <= 0) return;
  Tallies::Get()
      .bytes[static_cast<size_t>(t_phase)][ThisThreadShard()]
      .v.fetch_add(n, std::memory_order_relaxed);
}

PhaseCost PhaseTotals() {
  PhaseCost out;
  Tallies& t = Tallies::Get();
  for (size_t p = 0; p < kPhases; ++p) {
    for (int s = 0; s < kShards; ++s) {
      out.flops[p] += t.flops[p][s].v.load(std::memory_order_relaxed);
      out.bytes[p] += t.bytes[p][s].v.load(std::memory_order_relaxed);
    }
  }
  return out;
}

void ResetPhaseTotals() {
  Tallies& t = Tallies::Get();
  for (size_t p = 0; p < kPhases; ++p) {
    for (int s = 0; s < kShards; ++s) {
      t.flops[p][s].v.store(0, std::memory_order_relaxed);
      t.bytes[p][s].v.store(0, std::memory_order_relaxed);
    }
  }
}

}  // namespace obs
}  // namespace dlsys
