#include "src/obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "src/obs/counters.h"

namespace dlsys {
namespace obs {

namespace internal {

std::atomic<bool> g_enabled{false};
std::atomic<int32_t> g_sample_every{1};

int64_t NowNs() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point epoch = Clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              epoch)
      .count();
}

namespace {

/// Wall-clock ring capacity per thread.
constexpr uint64_t kWallCapacity = 1 << 14;  ///< 16384 events
/// Simulated-clock ring capacity per emitting thread. Larger: sim events
/// are one lifecycle record per request (not per kernel), and their drop
/// horizon must not move with wall-event volume, which varies with
/// DLSYS_THREADS.
constexpr uint64_t kSimCapacity = 1 << 17;  ///< 131072 events

/// One thread's append-only event ring. Slots are written exactly once
/// per reset epoch (drop-on-full), then published by a release store of
/// head_, so drains that acquire head_ read fully-constructed events.
struct Ring {
  explicit Ring(uint64_t capacity) : events(capacity) {}
  std::vector<TraceEvent> events;
  std::atomic<uint64_t> head{0};
  std::atomic<int64_t> dropped{0};
  uint64_t drained = 0;  ///< guarded by Rings::mu (drain side only)
  uint32_t tid = 0;
};

/// Global ring directory. Rings are owned here and outlive their threads
/// so late drains still see their events.
struct Rings {
  std::mutex mu;
  std::vector<std::unique_ptr<Ring>> all;
  uint32_t next_tid = 0;

  static Rings& Get() {
    static Rings* r = new Rings;  // leaked: threads may outlive main
    return *r;
  }
};

/// This thread's rings: the wall ring is made on first record; the sim
/// ring only on threads that emit sim events (driver threads), so worker
/// threads pay nothing for the split.
struct ThreadRings {
  Ring* wall = nullptr;
  Ring* sim = nullptr;
  uint32_t tid = 0;
  bool has_tid = false;
};

Ring* ThisThreadRing(bool sim_track) {
  thread_local ThreadRings tr;
  Ring*& slot = sim_track ? tr.sim : tr.wall;
  if (slot == nullptr) {
    Rings& rings = Rings::Get();
    std::lock_guard<std::mutex> lock(rings.mu);
    if (!tr.has_tid) {
      tr.tid = rings.next_tid++;
      tr.has_tid = true;
    }
    rings.all.push_back(
        std::make_unique<Ring>(sim_track ? kSimCapacity : kWallCapacity));
    rings.all.back()->tid = tr.tid;
    slot = rings.all.back().get();
  }
  return slot;
}

}  // namespace

void Record(const TraceEvent& ev) {
  Ring* ring = ThisThreadRing(ev.pid == kSimTrack);
  const uint64_t h = ring->head.load(std::memory_order_relaxed);
  if (h >= ring->events.size()) {
    ring->dropped.fetch_add(1, std::memory_order_relaxed);
    DLSYS_COUNTER_ADD("obs.trace.dropped_spans", 1);
    return;
  }
  ring->events[h] = ev;
  ring->events[h].tid = ring->tid;
  ring->head.store(h + 1, std::memory_order_release);
}

bool SampleThisSpan() {
  const int32_t every = g_sample_every.load(std::memory_order_relaxed);
  if (every <= 1) return true;
  thread_local int32_t tick = 0;
  if (++tick < every) return false;
  tick = 0;
  return true;
}

}  // namespace internal

void SetTracingEnabled(bool enabled) {
  internal::g_enabled.store(enabled, std::memory_order_relaxed);
}

void SetTraceSampling(int32_t every) {
  internal::g_sample_every.store(std::max<int32_t>(1, every),
                                 std::memory_order_relaxed);
}

int32_t TraceSampling() {
  return internal::g_sample_every.load(std::memory_order_relaxed);
}

int64_t TraceBegin() {
  if (!TracingEnabled() || !internal::SampleThisSpan()) return -1;
  return internal::NowNs();
}

void TraceEnd(const char* name, const char* cat, int64_t start_ns,
              int64_t rid, int64_t flops, int64_t bytes) {
  if (start_ns < 0) return;
  TraceEvent ev;
  ev.name = name;
  ev.cat = cat;
  ev.ts_ns = start_ns;
  ev.dur_ns = internal::NowNs() - start_ns;
  ev.rid = rid;
  ev.flops = flops;
  ev.bytes = bytes;
  internal::Record(ev);
}

void TraceEmitSim(const char* name, const char* cat, double ts_ms,
                  double dur_ms, int64_t rid) {
  if (!TracingEnabled()) return;
  TraceEvent ev;
  ev.name = name;
  ev.cat = cat;
  ev.ts_ns = static_cast<int64_t>(ts_ms * 1e6);
  ev.dur_ns = static_cast<int64_t>(dur_ms * 1e6);
  ev.rid = rid;
  ev.pid = kSimTrack;
  internal::Record(ev);
}

void TraceEmitSimSpanNs(const char* name, const char* cat, int64_t ts_ns,
                        int64_t dur_ns, int64_t rid, int64_t span,
                        int64_t parent) {
  if (!TracingEnabled()) return;
  TraceEvent ev;
  ev.name = name;
  ev.cat = cat;
  ev.ts_ns = ts_ns;
  ev.dur_ns = dur_ns;
  ev.rid = rid;
  ev.span = span;
  ev.parent = parent;
  ev.pid = kSimTrack;
  internal::Record(ev);
}

void TraceInstantSim(const char* name, const char* cat, double ts_ms,
                     int64_t rid) {
  if (!TracingEnabled()) return;
  TraceEvent ev;
  ev.name = name;
  ev.cat = cat;
  ev.ts_ns = static_cast<int64_t>(ts_ms * 1e6);
  ev.dur_ns = -1;
  ev.rid = rid;
  ev.pid = kSimTrack;
  internal::Record(ev);
}

TraceBuffer DrainTrace() {
  TraceBuffer out;
  internal::Rings& rings = internal::Rings::Get();
  std::lock_guard<std::mutex> lock(rings.mu);
  for (auto& ring : rings.all) {
    const uint64_t head = ring->head.load(std::memory_order_acquire);
    for (uint64_t i = ring->drained; i < head; ++i) {
      out.events.push_back(ring->events[i]);
    }
    ring->drained = head;
    out.dropped += ring->dropped.load(std::memory_order_relaxed);
  }
  return out;
}

void ResetTrace() {
  internal::Rings& rings = internal::Rings::Get();
  std::lock_guard<std::mutex> lock(rings.mu);
  for (auto& ring : rings.all) {
    ring->head.store(0, std::memory_order_release);
    ring->dropped.store(0, std::memory_order_relaxed);
    ring->drained = 0;
  }
}

TraceBuffer SimTrackOnly(const TraceBuffer& buffer) {
  TraceBuffer out;
  for (const TraceEvent& ev : buffer.events) {
    if (ev.pid != kSimTrack) continue;
    TraceEvent copy = ev;
    // Sim-track emitters run on one driver thread; normalizing the tid
    // erases ring-registration order, which is the only run-to-run
    // variance left in this slice.
    copy.tid = 0;
    out.events.push_back(copy);
  }
  return out;
}

std::string ChromeTraceJson(const TraceBuffer& buffer) {
  // Rendered in (pid, tid, ts, -dur) order: drains interleave rings in
  // registration order, so sorting both makes timestamps monotone per
  // track (viewer- and test-friendly) and erases ring-registration
  // nondeterminism from the rendered document. stable_sort keeps
  // emission order among equal keys, which single-threaded sim emitters
  // make deterministic.
  std::vector<const TraceEvent*> order;
  order.reserve(buffer.events.size());
  for (const TraceEvent& ev : buffer.events) {
    if (ev.name == nullptr) continue;
    order.push_back(&ev);
  }
  std::stable_sort(order.begin(), order.end(),
                   [](const TraceEvent* a, const TraceEvent* b) {
                     if (a->pid != b->pid) return a->pid < b->pid;
                     if (a->tid != b->tid) return a->tid < b->tid;
                     if (a->ts_ns != b->ts_ns) return a->ts_ns < b->ts_ns;
                     return a->dur_ns > b->dur_ns;
                   });
  std::string out = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  char line[640];
  bool first = true;
  for (const TraceEvent* evp : order) {
    const TraceEvent& ev = *evp;
    std::string args;
    char argbuf[96];
    if (ev.rid >= 0) {
      std::snprintf(argbuf, sizeof(argbuf), "\"rid\": %lld",
                    static_cast<long long>(ev.rid));
      args += argbuf;
    }
    if (ev.span >= 0) {
      std::snprintf(argbuf, sizeof(argbuf), "%s\"id\": %lld",
                    args.empty() ? "" : ", ",
                    static_cast<long long>(ev.span));
      args += argbuf;
    }
    if (ev.parent >= 0) {
      std::snprintf(argbuf, sizeof(argbuf), "%s\"parent\": %lld",
                    args.empty() ? "" : ", ",
                    static_cast<long long>(ev.parent));
      args += argbuf;
    }
    if (ev.flops > 0) {
      std::snprintf(argbuf, sizeof(argbuf), "%s\"flops\": %lld",
                    args.empty() ? "" : ", ",
                    static_cast<long long>(ev.flops));
      args += argbuf;
    }
    if (ev.bytes > 0) {
      std::snprintf(argbuf, sizeof(argbuf), "%s\"bytes\": %lld",
                    args.empty() ? "" : ", ",
                    static_cast<long long>(ev.bytes));
      args += argbuf;
    }
    const double ts_us = static_cast<double>(ev.ts_ns) / 1e3;
    if (ev.dur_ns < 0) {
      std::snprintf(line, sizeof(line),
                    "%s{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"i\", "
                    "\"s\": \"t\", \"pid\": %d, \"tid\": %u, \"ts\": %.3f, "
                    "\"args\": {%s}}",
                    first ? "" : ",\n", ev.name, ev.cat, ev.pid, ev.tid,
                    ts_us, args.c_str());
    } else {
      std::snprintf(line, sizeof(line),
                    "%s{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"X\", "
                    "\"pid\": %d, \"tid\": %u, \"ts\": %.3f, \"dur\": %.3f, "
                    "\"args\": {%s}}",
                    first ? "" : ",\n", ev.name, ev.cat, ev.pid, ev.tid,
                    ts_us, static_cast<double>(ev.dur_ns) / 1e3,
                    args.c_str());
    }
    out += line;
    first = false;
  }
  out += "\n]}\n";
  return out;
}

Status WriteChromeTrace(const std::string& path, const TraceBuffer& buffer) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot open trace file '" + path + "'");
  }
  const std::string json = ChromeTraceJson(buffer);
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool ok = written == json.size() && std::fclose(f) == 0;
  if (!ok) return Status::IOError("short write to trace file '" + path + "'");
  return Status::OK();
}

std::vector<SpanStat> SelfTimeByName(const TraceBuffer& buffer) {
  // Wall-track spans nest properly per thread (RAII scoping), so a
  // parent's self-time is its duration minus the durations of spans
  // fully contained in it on the same tid, computed with a per-thread
  // interval stack over events sorted by (tid, start, -dur).
  struct Indexed {
    const TraceEvent* ev;
  };
  std::vector<Indexed> spans;
  for (const TraceEvent& ev : buffer.events) {
    if (ev.pid == kSimTrack || ev.dur_ns < 0 || ev.name == nullptr) continue;
    spans.push_back({&ev});
  }
  std::sort(spans.begin(), spans.end(), [](const Indexed& a, const Indexed& b) {
    if (a.ev->tid != b.ev->tid) return a.ev->tid < b.ev->tid;
    if (a.ev->ts_ns != b.ev->ts_ns) return a.ev->ts_ns < b.ev->ts_ns;
    return a.ev->dur_ns > b.ev->dur_ns;
  });

  std::map<std::string, SpanStat> by_name;
  struct Open {
    const TraceEvent* ev;
    int64_t child_ns = 0;
  };
  std::vector<Open> stack;
  uint32_t cur_tid = 0;
  auto close_down_to = [&](size_t depth) {
    while (stack.size() > depth) {
      const Open open = stack.back();
      stack.pop_back();
      SpanStat& stat = by_name[open.ev->name];
      stat.name = open.ev->name;
      stat.count += 1;
      stat.total_ms += static_cast<double>(open.ev->dur_ns) / 1e6;
      stat.self_ms +=
          static_cast<double>(open.ev->dur_ns - open.child_ns) / 1e6;
      if (!stack.empty()) stack.back().child_ns += open.ev->dur_ns;
    }
  };
  for (const Indexed& item : spans) {
    const TraceEvent* ev = item.ev;
    if (ev->tid != cur_tid) {
      close_down_to(0);
      cur_tid = ev->tid;
    }
    while (!stack.empty() &&
           ev->ts_ns >= stack.back().ev->ts_ns + stack.back().ev->dur_ns) {
      close_down_to(stack.size() - 1);
    }
    stack.push_back({ev, 0});
  }
  close_down_to(0);

  std::vector<SpanStat> out;
  out.reserve(by_name.size());
  for (auto& [name, stat] : by_name) out.push_back(stat);
  std::sort(out.begin(), out.end(), [](const SpanStat& a, const SpanStat& b) {
    return a.self_ms > b.self_ms;
  });
  return out;
}

}  // namespace obs
}  // namespace dlsys
