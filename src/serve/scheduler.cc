#include "src/serve/scheduler.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>
#include <vector>

namespace dlsys {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
/// A bucket within rounding distance of a full token counts as funded, so
/// the refill time QuotaReadyMs reports is always actionable (an event
/// loop advancing to it finds the quota open, never a hair short).
constexpr double kTokenSlack = 1e-9;
}  // namespace

TenantScheduler::TenantScheduler(const SlotSchedulerConfig& config)
    : config_(config) {}

const TenantPolicy& TenantScheduler::PolicyFor(
    const std::string& tenant) const {
  auto it = config_.tenants.find(tenant);
  return it == config_.tenants.end() ? config_.default_policy : it->second;
}

TenantScheduler::TenantState& TenantScheduler::StateFor(
    const std::string& tenant) {
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) {
    TenantState state;
    state.policy = PolicyFor(tenant);
    state.tokens = state.policy.burst;  // buckets start full
    it = tenants_.emplace(tenant, std::move(state)).first;
  }
  return it->second;
}

void TenantScheduler::Enqueue(SlotRequest request) {
  TenantState& state = StateFor(request.tenant);
  // Stamp the quota horizon the admission predictor already computes:
  // the earliest the bucket funds this request behind the tenant's
  // current backlog. Attribution reads it back as the quota/slot-wait
  // boundary (clamped to [arrival, dispatch] at completion, since DWFQ
  // rotation can serve slightly before or after the prediction).
  request.quota_open_ms =
      std::max(request.arrival_ms,
               QuotaBacklogMs(request.tenant, request.arrival_ms));
  state.queue.push_back(std::move(request));
  ++depth_;
}

double TenantScheduler::TokensAt(const TenantState& state,
                                 double now_ms) const {
  const double elapsed = std::max(0.0, now_ms - state.refill_ms);
  return std::min(state.policy.burst,
                  state.tokens + state.policy.rate_rps * elapsed / 1000.0);
}

void TenantScheduler::Refill(TenantState* state, double now_ms) const {
  state->tokens = TokensAt(*state, now_ms);
  state->refill_ms = std::max(state->refill_ms, now_ms);
}

bool TenantScheduler::QuotaOpen(const TenantState& state,
                                double now_ms) const {
  if (!config_.enforce_quotas || state.policy.rate_rps <= 0.0) return true;
  return TokensAt(state, now_ms) >= 1.0 - kTokenSlack;
}

int64_t TenantScheduler::FirstMatch(const TenantState& state,
                                    const SnapFilter& filter) {
  if (!filter) return state.queue.empty() ? -1 : 0;
  for (size_t i = 0; i < state.queue.size(); ++i) {
    if (filter(state.queue[i].snap.get())) return static_cast<int64_t>(i);
  }
  return -1;
}

SlotRequest TenantScheduler::Serve(TenantState* state, int64_t pos,
                                   double now_ms) {
  Refill(state, now_ms);
  if (config_.enforce_quotas && state->policy.rate_rps > 0.0) {
    state->tokens = std::max(0.0, state->tokens - 1.0);
  }
  ++state->served;
  --depth_;
  SlotRequest request =
      std::move(state->queue[static_cast<size_t>(pos)]);
  state->queue.erase(state->queue.begin() + pos);
  return request;
}

std::optional<SlotRequest> TenantScheduler::PickFifo(
    double now_ms, const SnapFilter& filter) {
  // The control path: priority classes still order service, but inside a
  // class the pick is global FIFO by request id — exactly the policy
  // under which one hot tenant starves the rest.
  for (int cls = 0; cls < config_.priority_classes; ++cls) {
    std::string best;
    int64_t best_pos = -1;
    int64_t best_id = std::numeric_limits<int64_t>::max();
    for (auto& [name, state] : tenants_) {
      if (state.policy.priority != cls || state.queue.empty()) continue;
      if (!QuotaOpen(state, now_ms)) continue;
      const int64_t pos = FirstMatch(state, filter);
      if (pos < 0) continue;
      const int64_t id = state.queue[static_cast<size_t>(pos)].id;
      if (id < best_id) {
        best_id = id;
        best = name;
        best_pos = pos;
      }
    }
    if (best_pos >= 0) {
      return Serve(&tenants_.find(best)->second, best_pos, now_ms);
    }
  }
  return std::nullopt;
}

std::optional<SlotRequest> TenantScheduler::PickNext(
    double now_ms, const SnapFilter& filter) {
  if (depth_ == 0) return std::nullopt;
  if (!config_.fair_queueing) return PickFifo(now_ms, filter);

  for (int cls = 0; cls < config_.priority_classes; ++cls) {
    // The class's scan ring: backlogged tenants in name order.
    std::vector<std::string> ring;
    double min_weight = kInf;
    bool any_eligible = false;
    for (auto& [name, state] : tenants_) {
      if (state.policy.priority != cls || state.queue.empty()) continue;
      ring.push_back(name);
      min_weight = std::min(min_weight, state.policy.weight);
      if (QuotaOpen(state, now_ms) && FirstMatch(state, filter) >= 0) {
        any_eligible = true;
      }
    }
    if (!any_eligible) continue;  // strict priority is over *eligible* work

    size_t i = 0;
    if (auto cit = cursor_.find(cls); cit != cursor_.end()) {
      i = static_cast<size_t>(
          std::lower_bound(ring.begin(), ring.end(), cit->second) -
          ring.begin());
      if (i == ring.size()) i = 0;
    }
    // A tenant reaches a full unit of deficit after at most
    // ceil(1/min_weight) top-ups, so the scan is bounded.
    const int64_t max_visits =
        static_cast<int64_t>(ring.size()) *
        (2 + static_cast<int64_t>(std::ceil(1.0 / min_weight)));
    for (int64_t visits = 0; visits < max_visits; ++visits) {
      TenantState& state = tenants_.find(ring[i])->second;
      const bool eligible =
          QuotaOpen(state, now_ms) && FirstMatch(state, filter) >= 0;
      if (!eligible) {
        state.deficit = 0.0;  // blocked tenants bank no credit
        i = (i + 1) % ring.size();
        continue;
      }
      if (state.deficit < 1.0) state.deficit += state.policy.weight;
      if (state.deficit < 1.0) {
        i = (i + 1) % ring.size();
        continue;
      }
      state.deficit -= 1.0;
      const int64_t pos = FirstMatch(state, filter);
      SlotRequest request = Serve(&state, pos, now_ms);
      // The cursor stays while the tenant's credit and backlog last, so
      // a weight-w tenant takes ~w consecutive slots per rotation.
      const bool stay = state.deficit >= 1.0 && !state.queue.empty() &&
                        QuotaOpen(state, now_ms);
      cursor_[cls] = stay ? ring[i] : ring[(i + 1) % ring.size()];
      return request;
    }
    DLSYS_CHECK(false, "DWFQ scan failed to converge");
  }
  return std::nullopt;
}

double TenantScheduler::QuotaReadyMs(const std::string& tenant,
                                     double now_ms) const {
  if (!config_.enforce_quotas) return now_ms;
  const TenantPolicy& policy = PolicyFor(tenant);
  if (policy.rate_rps <= 0.0) return now_ms;
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return now_ms;  // untouched bucket starts full
  const double tokens = TokensAt(it->second, now_ms);
  if (tokens >= 1.0 - kTokenSlack) return now_ms;
  return now_ms + (1.0 - tokens) * 1000.0 / policy.rate_rps;
}

double TenantScheduler::QuotaBacklogMs(const std::string& tenant,
                                       double now_ms) const {
  if (!config_.enforce_quotas) return now_ms;
  const TenantPolicy& policy = PolicyFor(tenant);
  if (policy.rate_rps <= 0.0) return now_ms;
  auto it = tenants_.find(tenant);
  const double queued =
      it == tenants_.end() ? 0.0 : static_cast<double>(it->second.queue.size());
  const double tokens =
      it == tenants_.end() ? policy.burst : TokensAt(it->second, now_ms);
  const double needed = queued + 1.0;
  if (tokens >= needed - kTokenSlack) return now_ms;
  return now_ms + (needed - tokens) * 1000.0 / policy.rate_rps;
}

double TenantScheduler::NextEligibleMs(double now_ms) const {
  if (depth_ == 0) return -1.0;
  double best = kInf;
  for (const auto& [name, state] : tenants_) {
    if (state.queue.empty()) continue;
    best = std::min(best, QuotaReadyMs(name, now_ms));
    if (best <= now_ms) return now_ms;
  }
  return best == kInf ? -1.0 : best;
}

int64_t TenantScheduler::DropAll() {
  int64_t dropped = 0;
  for (auto& [name, state] : tenants_) {
    dropped += static_cast<int64_t>(state.queue.size());
    state.queue.clear();
  }
  depth_ -= dropped;
  return dropped;
}

int64_t TenantScheduler::served(const std::string& tenant) const {
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0 : it->second.served;
}

}  // namespace dlsys
