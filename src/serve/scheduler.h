#ifndef DLSYS_SERVE_SCHEDULER_H_
#define DLSYS_SERVE_SCHEDULER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "src/serve/admission.h"
#include "src/serve/registry.h"
#include "src/tensor/tensor.h"

/// \file scheduler.h
/// \brief Multi-tenant QoS scheduler: which queued request fills a freed
/// slot, decided by priority class, token-bucket quota, and deficit-
/// weighted-fair queueing (DWFQ).
///
/// ## Selection order
///
/// 1. **Priority classes** are strict: while any class-0 tenant has an
///    eligible request, no class-1 request is served.
/// 2. **Token buckets** gate eligibility inside a class: a tenant whose
///    bucket holds < 1 token waits for the refill (rate_rps tokens per
///    simulated second, capped at burst). Quotas delay, never shed —
///    the deadline-feasibility test at admission converts a hopeless
///    quota wait into a deadline shed charged to that tenant.
/// 3. **DWFQ** picks among eligible tenants: each tenant carries a
///    deficit counter; a visit tops it up by the tenant's weight, one
///    service costs one unit, and the scan cursor stays on a tenant
///    while its deficit lasts. Backlogged tenants therefore share slots
///    in proportion to their weights, and an idle tenant's unused share
///    redistributes instead of accumulating (its deficit resets).
///    With fair_queueing off the scan degenerates to global FIFO by
///    request id — the starvation control the fairness test pins.
///
/// ## Determinism
///
/// All state (tokens, deficits, cursors) is a pure function of the
/// simulated clock and the arrival sequence: refills are computed from
/// declared rates, ties break by tenant name (map order) and request id,
/// and nothing reads wall time. The same arrivals replay to the same
/// picks bit for bit at any DLSYS_THREADS.

namespace dlsys {

/// \brief One admitted request waiting for a slot (state: queued).
struct SlotRequest {
  int64_t id = 0;
  int64_t trace_rid = -1;    ///< fleet rid from RequestTrace, -1 local
  std::string tenant;
  int priority = 0;          ///< resolved priority class
  double arrival_ms = 0.0;
  double deadline_ms = 0.0;  ///< absolute
  /// Predicted simulated time the tenant's token bucket funds this
  /// request behind its existing backlog (stamped by Enqueue; equals
  /// arrival_ms when quotas are off/unlimited). The critical-path
  /// decomposer splits queue wait into quota delay [arrival, quota_open]
  /// vs slot wait [quota_open, dispatch] along this boundary.
  double quota_open_ms = 0.0;
  std::shared_ptr<ModelSnapshot> snap;  ///< version bound at admission
  Tensor input;              ///< flat copy, (in_elems)
};

/// \brief Priority + quota + DWFQ selection over per-tenant FIFO queues.
class TenantScheduler {
 public:
  /// \brief Accepts a request whose snapshot the pick must match (e.g.
  /// the version already loaded on a candidate worker). Null matches any.
  using SnapFilter = std::function<bool(const ModelSnapshot*)>;

  explicit TenantScheduler(const SlotSchedulerConfig& config);

  /// \brief The resolved policy for \p tenant (override or default).
  const TenantPolicy& PolicyFor(const std::string& tenant) const;

  /// \brief Queues \p request behind its tenant's earlier requests.
  void Enqueue(SlotRequest request);

  /// \brief Requests queued across all tenants.
  int64_t depth() const { return depth_; }

  /// \brief Picks the next request to serve at simulated \p now_ms under
  /// priority -> quota -> DWFQ, restricted to requests whose snapshot
  /// passes \p filter; nullopt when nothing is eligible. Charges the
  /// winner's token bucket and deficit. Deterministic; state mutations on
  /// a failed scan (deficit resets, cursor advances) are themselves pure
  /// functions of simulated state, so replay is unaffected.
  std::optional<SlotRequest> PickNext(double now_ms,
                                      const SnapFilter& filter = {});

  /// \brief Earliest simulated time >= \p now_ms at which \p tenant's
  /// bucket holds a full token (now_ms when unlimited or already funded).
  /// Pure: nothing is charged.
  double QuotaReadyMs(const std::string& tenant, double now_ms) const;

  /// \brief Earliest simulated time >= \p now_ms at which \p tenant's
  /// bucket could have funded one more request *behind everything the
  /// tenant already has queued* (token arrivals at rate_rps). Pure. The
  /// admission path folds this into the deadline-feasibility prediction,
  /// so a tenant flooding past its quota converts into deadline sheds
  /// charged to itself instead of queueing delay charged to everyone.
  double QuotaBacklogMs(const std::string& tenant, double now_ms) const;

  /// \brief Earliest simulated time >= \p now_ms at which *some* queued
  /// request becomes quota-eligible, or -1 when nothing is queued. Pure.
  /// Feeds Server::NextActionableMs so event loops sleep precisely until
  /// a blocked tenant refills.
  double NextEligibleMs(double now_ms) const;

  /// \brief Discards every queued request (crash path); returns count.
  int64_t DropAll();

  /// \brief Requests served (picked) so far for \p tenant.
  int64_t served(const std::string& tenant) const;

 private:
  struct TenantState {
    TenantPolicy policy;
    std::deque<SlotRequest> queue;
    double tokens = 0.0;
    double refill_ms = 0.0;  ///< simulated time tokens was last settled
    double deficit = 0.0;    ///< DWFQ credit, in requests
    int64_t served = 0;
  };

  TenantState& StateFor(const std::string& tenant);
  /// Settles \p state's bucket forward to \p now_ms.
  void Refill(TenantState* state, double now_ms) const;
  /// Tokens the bucket would hold at \p now_ms without settling it.
  double TokensAt(const TenantState& state, double now_ms) const;
  /// True when quota allows a service at \p now_ms.
  bool QuotaOpen(const TenantState& state, double now_ms) const;
  /// Index of the first queued request of \p state passing \p filter,
  /// or -1.
  static int64_t FirstMatch(const TenantState& state, const SnapFilter& filter);
  /// Serves entry \p pos of \p state: charges quota, pops, returns it.
  SlotRequest Serve(TenantState* state, int64_t pos, double now_ms);

  std::optional<SlotRequest> PickFifo(double now_ms, const SnapFilter& filter);

  SlotSchedulerConfig config_;
  std::map<std::string, TenantState> tenants_;  ///< name order = scan order
  /// Per-priority-class DWFQ cursor: the tenant name the next scan
  /// starts at (lower_bound; wraps).
  std::map<int, std::string> cursor_;
  int64_t depth_ = 0;
};

}  // namespace dlsys

#endif  // DLSYS_SERVE_SCHEDULER_H_
