#ifndef DLSYS_SERVE_LOADGEN_H_
#define DLSYS_SERVE_LOADGEN_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/core/metrics.h"
#include "src/serve/server.h"

/// \file loadgen.h
/// \brief Deterministic load harness for the serving layer.
///
/// Two canonical client models from the serving-benchmark literature:
/// an **open-loop** generator (seeded Poisson process — arrivals keep
/// coming whether or not the server keeps up, which is what exposes
/// overload behavior and makes shed-rate curves meaningful) and a
/// **closed-loop** generator (each simulated client waits for its
/// response plus a think time before sending again — throughput
/// self-limits, which is what exposes latency under feasible load).
///
/// Both run entirely on the server's simulated clock with seeded Rng
/// draws, so a fixed config replays bit for bit: identical admissions,
/// sheds, batches, versions, and outputs. Only the engine's measured
/// wall time differs between runs, and it never feeds any decision.

namespace dlsys {

/// \brief Seeded Poisson open-loop workload.
struct OpenLoopConfig {
  uint64_t seed = 1;          ///< drives arrivals and payloads
  int64_t requests = 1000;    ///< total arrivals to offer
  double rate_rps = 1000.0;   ///< mean arrival rate (requests / second)
  double deadline_ms = 0.0;   ///< per-request budget; <= 0 uses the default
  std::string model = "model";
  double start_ms = 0.0;      ///< simulated time of the first gap's origin
};

/// \brief Closed-loop workload: \p clients independent request loops.
struct ClosedLoopConfig {
  uint64_t seed = 1;
  int64_t clients = 4;
  int64_t requests_per_client = 100;
  double think_ms = 1.0;     ///< client pause between response and resend
  double deadline_ms = 0.0;  ///< per-request budget; <= 0 uses the default
  std::string model = "model";
};

/// \brief Aggregate outcome of one load run.
struct LoadReport {
  int64_t offered = 0;
  int64_t admitted = 0;
  int64_t shed = 0;  ///< queue-full + deadline sheds + unknown model
  int64_t completed = 0;
  int64_t deadline_missed = 0;
  double duration_ms = 0.0;   ///< simulated makespan (last finish - start)
  double wall_seconds = 0.0;  ///< real time the run took (informational)
  LatencyHistogram latency;   ///< simulated finish - arrival, admitted only
  /// completed / simulated duration (requests per simulated second)
  double sim_throughput_rps = 0.0;
  /// completed / wall_seconds (requests per real second; informational)
  double real_throughput_rps = 0.0;
};

/// \brief One tenant's slice of a multi-tenant arrival stream: requests
/// are attributed to \p tenant with probability share / sum(shares).
struct TenantShare {
  std::string tenant;
  double share = 1.0;
};

/// \brief \p n equal-share tenants named "t0" .. "t<n-1>".
std::vector<TenantShare> BalancedTenantMix(int n);

/// \brief Adversarial mix: "t0" offers \p hot_factor times the share of
/// each of the other \p n - 1 tenants — the hot-tenant workload the
/// fairness tests and bench E37 drive.
std::vector<TenantShare> HotTenantMix(int n, double hot_factor);

/// \brief Materializes the per-arrival tenant assignment for \p n
/// arrivals: seeded categorical draws over the shares of \p mix.
/// Deterministic, and independent of the arrival-gap and payload streams
/// RunTenantedOpenLoop forks from the same seed — callers with their own
/// arrival process (the fleet) get the identical assignment by calling
/// this with the same (mix, seed, n). Empty mix returns an empty vector.
std::vector<std::string> AssignTenants(const std::vector<TenantShare>& mix,
                                       uint64_t seed, int64_t n);

/// \brief Seeded Poisson open-loop workload attributed across tenants.
struct TenantedLoadConfig {
  uint64_t seed = 1;         ///< drives arrivals, payloads, and tenants
  int64_t requests = 1000;   ///< total arrivals to offer
  double rate_rps = 1000.0;  ///< aggregate mean arrival rate
  double deadline_ms = 0.0;  ///< per-request budget; <= 0 uses the default
  std::string model = "model";
  double start_ms = 0.0;
  std::vector<TenantShare> mix;  ///< empty behaves as one "default" tenant
};

/// \brief Per-tenant breakdown of one tenanted load run.
struct TenantedLoadReport {
  LoadReport total;
  std::map<std::string, LoadReport> by_tenant;
  /// (completed - deadline_missed) / simulated duration, per tenant.
  std::map<std::string, double> goodput_rps;
  /// max over min per-tenant goodput — the fairness bound the tests pin;
  /// infinity when some offered-to tenant got no goodput at all.
  double max_min_goodput_ratio = 1.0;
};

/// \brief Drives \p server with a seeded Poisson stream whose requests
/// carry tenant ids drawn from config.mix, then drains it. The tenant
/// assignment is exactly AssignTenants(mix, seed, requests).
TenantedLoadReport RunTenantedOpenLoop(Server* server,
                                       const TenantedLoadConfig& config);

/// \brief One flash crowd: offered rate multiplies by \p multiplier for
/// [start_ms, start_ms + duration_ms) on top of the diurnal baseline.
struct FlashCrowd {
  double start_ms = 0.0;
  double duration_ms = 0.0;
  double multiplier = 1.0;
};

/// \brief Trace-shaped open-loop workload: a diurnal sinusoid plus flash
/// crowds, the canonical datacenter arrival pattern the fleet simulation
/// replays. rate(t) = base_rps * (1 + diurnal_amplitude *
/// sin(2*pi*(t - start_ms)/diurnal_period_ms)) * crowd(t), floored at 0.
struct TraceLoadConfig {
  uint64_t seed = 1;
  double start_ms = 0.0;
  double duration_ms = 10'000.0;
  double base_rps = 1000.0;
  double diurnal_amplitude = 0.0;     ///< in [0, 1): peak-to-mean swing
  double diurnal_period_ms = 10'000.0;
  std::vector<FlashCrowd> crowds;
  double deadline_ms = 0.0;  ///< per-request budget; <= 0 uses the default
  std::string model = "model";
  /// Tenant attribution of the arrivals (AssignTenants over this mix and
  /// the same seed); empty leaves the stream untenanted — byte-identical
  /// behavior to before the QoS layer existed.
  std::vector<TenantShare> tenant_mix;
};

/// \brief Instantaneous offered rate of \p config at simulated \p t_ms.
double TraceRateAt(const TraceLoadConfig& config, double t_ms);

/// \brief Peak of TraceRateAt over the window — the thinning envelope and
/// the capacity planner's sizing input.
double TracePeakRate(const TraceLoadConfig& config);

/// \brief Materializes the arrival instants of \p config by thinning a
/// seeded Poisson process at the peak rate: candidate gaps are drawn at
/// TracePeakRate and kept with probability rate(t)/peak. Deterministic
/// for a fixed config; independent of who consumes the arrivals.
std::vector<double> GenerateTraceArrivals(const TraceLoadConfig& config);

/// \brief Drives \p server with a seeded Poisson arrival stream and
/// drains it. \p before_submit (optional) runs before each arrival with
/// the 0-based request index — the hook test_serve and bench_serving use
/// to hot-swap the model mid-load.
LoadReport RunOpenLoop(Server* server, const OpenLoopConfig& config,
                       const std::function<void(int64_t)>& before_submit = {});

/// \brief Drives \p server with \p clients closed-loop request chains
/// over the simulated clock and drains it. Each client issues exactly
/// requests_per_client attempts: after a response it thinks for
/// think_ms and sends again; after a shed it also waits think_ms before
/// its next attempt (a client-side backoff), so the run always
/// terminates.
LoadReport RunClosedLoop(Server* server, const ClosedLoopConfig& config);

}  // namespace dlsys

#endif  // DLSYS_SERVE_LOADGEN_H_
