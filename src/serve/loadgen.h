#ifndef DLSYS_SERVE_LOADGEN_H_
#define DLSYS_SERVE_LOADGEN_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/core/metrics.h"
#include "src/serve/server.h"

/// \file loadgen.h
/// \brief Deterministic load harness for the serving layer.
///
/// Two canonical client models from the serving-benchmark literature:
/// an **open-loop** generator (seeded Poisson process — arrivals keep
/// coming whether or not the server keeps up, which is what exposes
/// overload behavior and makes shed-rate curves meaningful) and a
/// **closed-loop** generator (each simulated client waits for its
/// response plus a think time before sending again — throughput
/// self-limits, which is what exposes latency under feasible load).
///
/// Both run entirely on the server's simulated clock with seeded Rng
/// draws, so a fixed config replays bit for bit: identical admissions,
/// sheds, batches, versions, and outputs. Only the engine's measured
/// wall time differs between runs, and it never feeds any decision.

namespace dlsys {

/// \brief Seeded Poisson open-loop workload.
struct OpenLoopConfig {
  uint64_t seed = 1;          ///< drives arrivals and payloads
  int64_t requests = 1000;    ///< total arrivals to offer
  double rate_rps = 1000.0;   ///< mean arrival rate (requests / second)
  double deadline_ms = 0.0;   ///< per-request budget; <= 0 uses the default
  std::string model = "model";
  double start_ms = 0.0;      ///< simulated time of the first gap's origin
};

/// \brief Closed-loop workload: \p clients independent request loops.
struct ClosedLoopConfig {
  uint64_t seed = 1;
  int64_t clients = 4;
  int64_t requests_per_client = 100;
  double think_ms = 1.0;     ///< client pause between response and resend
  double deadline_ms = 0.0;  ///< per-request budget; <= 0 uses the default
  std::string model = "model";
};

/// \brief Aggregate outcome of one load run.
struct LoadReport {
  int64_t offered = 0;
  int64_t admitted = 0;
  int64_t shed = 0;  ///< queue-full + deadline sheds + unknown model
  int64_t completed = 0;
  int64_t deadline_missed = 0;
  double duration_ms = 0.0;   ///< simulated makespan (last finish - start)
  double wall_seconds = 0.0;  ///< real time the run took (informational)
  LatencyHistogram latency;   ///< simulated finish - arrival, admitted only
  /// completed / simulated duration (requests per simulated second)
  double sim_throughput_rps = 0.0;
  /// completed / wall_seconds (requests per real second; informational)
  double real_throughput_rps = 0.0;
};

/// \brief One flash crowd: offered rate multiplies by \p multiplier for
/// [start_ms, start_ms + duration_ms) on top of the diurnal baseline.
struct FlashCrowd {
  double start_ms = 0.0;
  double duration_ms = 0.0;
  double multiplier = 1.0;
};

/// \brief Trace-shaped open-loop workload: a diurnal sinusoid plus flash
/// crowds, the canonical datacenter arrival pattern the fleet simulation
/// replays. rate(t) = base_rps * (1 + diurnal_amplitude *
/// sin(2*pi*(t - start_ms)/diurnal_period_ms)) * crowd(t), floored at 0.
struct TraceLoadConfig {
  uint64_t seed = 1;
  double start_ms = 0.0;
  double duration_ms = 10'000.0;
  double base_rps = 1000.0;
  double diurnal_amplitude = 0.0;     ///< in [0, 1): peak-to-mean swing
  double diurnal_period_ms = 10'000.0;
  std::vector<FlashCrowd> crowds;
  double deadline_ms = 0.0;  ///< per-request budget; <= 0 uses the default
  std::string model = "model";
};

/// \brief Instantaneous offered rate of \p config at simulated \p t_ms.
double TraceRateAt(const TraceLoadConfig& config, double t_ms);

/// \brief Peak of TraceRateAt over the window — the thinning envelope and
/// the capacity planner's sizing input.
double TracePeakRate(const TraceLoadConfig& config);

/// \brief Materializes the arrival instants of \p config by thinning a
/// seeded Poisson process at the peak rate: candidate gaps are drawn at
/// TracePeakRate and kept with probability rate(t)/peak. Deterministic
/// for a fixed config; independent of who consumes the arrivals.
std::vector<double> GenerateTraceArrivals(const TraceLoadConfig& config);

/// \brief Drives \p server with a seeded Poisson arrival stream and
/// drains it. \p before_submit (optional) runs before each arrival with
/// the 0-based request index — the hook test_serve and bench_serving use
/// to hot-swap the model mid-load.
LoadReport RunOpenLoop(Server* server, const OpenLoopConfig& config,
                       const std::function<void(int64_t)>& before_submit = {});

/// \brief Drives \p server with \p clients closed-loop request chains
/// over the simulated clock and drains it. Each client issues exactly
/// requests_per_client attempts: after a response it thinks for
/// think_ms and sends again; after a shed it also waits think_ms before
/// its next attempt (a client-side backoff), so the run always
/// terminates.
LoadReport RunClosedLoop(Server* server, const ClosedLoopConfig& config);

}  // namespace dlsys

#endif  // DLSYS_SERVE_LOADGEN_H_
