#ifndef DLSYS_SERVE_REGISTRY_H_
#define DLSYS_SERVE_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/core/status.h"
#include "src/infer/engine.h"
#include "src/nn/sequential.h"
#include "src/tensor/tensor.h"

/// \file registry.h
/// \brief Named, versioned model snapshots with RCU-style atomic hot-swap.
///
/// A serving system must replace the deployed model without stalling
/// traffic: the tutorial's deployment discussion calls freshness of the
/// served model one axis of the serving tradeoff space. The mechanism
/// here is read-copy-update over `std::shared_ptr`: publishing compiles a
/// complete new ModelSnapshot off to the side, then swaps it in with one
/// atomic pointer exchange. Requests that already acquired the old
/// snapshot keep a reference and finish on the version they were admitted
/// under; the old snapshot's memory is reclaimed when its last in-flight
/// request drops the reference. Readers never wait on publishers and
/// publishers never wait for readers to drain.

namespace dlsys {

/// \brief One immutable published version of one model.
///
/// Logically immutable after Publish: name, version, shapes, and the
/// replica count never change. Each replica slot holds a compiled
/// InferenceEngine plus its batch staging buffers — scratch workspace
/// that is mutated during PredictInto, so a given replica index must be
/// driven by at most one thread at a time (the Server assigns replica i
/// to worker i; independent replicas run concurrently).
struct ModelSnapshot {
  std::string model;    ///< registry name
  int64_t version = 0;  ///< assigned by ModelRegistry::Publish, from 1
  EngineConfig engine_config;
  Shape example_input_shape;
  Shape example_output_shape;
  int64_t in_elems = 0;   ///< flat input elements per example
  int64_t out_elems = 0;  ///< flat output elements per example

  /// Per-worker execution slot: engine + preallocated batch staging.
  struct Replica {
    std::unique_ptr<InferenceEngine> engine;
    Tensor in_staging;   ///< (max_batch, in_elems)
    Tensor out_staging;  ///< (max_batch, out_elems)
  };
  std::vector<Replica> replicas;
};

/// \brief Compiles \p net into a snapshot with \p replicas independent
/// engine copies (one per serving worker), all preallocated.
///
/// Returns the engine compiler's InvalidArgument/Unimplemented errors
/// unchanged; requires replicas >= 1. The returned snapshot has no name
/// or version yet — ModelRegistry::Publish assigns both.
Result<std::shared_ptr<ModelSnapshot>> CompileSnapshot(
    const Sequential& net, const Shape& example_shape, int replicas,
    const EngineConfig& config = {});

/// \brief Thread-safe map from model name to its latest snapshot.
///
/// Publish and Acquire may be called concurrently from any threads. The
/// per-model slot holds the live snapshot behind an atomic pointer swap:
/// Acquire copies the shared_ptr (plus a short map lookup), Publish
/// replaces it. An acquired snapshot stays valid for as long as the
/// caller holds the shared_ptr, however many swaps happen meanwhile.
class ModelRegistry {
 public:
  ModelRegistry() = default;
  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  /// \brief Publishes \p snap as the next version of \p model (versions
  /// count from 1 per model) and atomically swaps it in. Returns the
  /// assigned version. InvalidArgument when \p snap is null, has no
  /// replicas, or \p model is empty.
  Result<int64_t> Publish(const std::string& model,
                          std::shared_ptr<ModelSnapshot> snap);

  /// \brief The latest snapshot of \p model, or nullptr if never
  /// published. Lock-free with respect to concurrent Publish calls on
  /// the same model.
  std::shared_ptr<ModelSnapshot> Acquire(const std::string& model) const;

  /// \brief Latest published version of \p model; 0 if absent.
  int64_t LatestVersion(const std::string& model) const;

  /// \brief All model names, sorted.
  std::vector<std::string> ModelNames() const;

  /// \brief Total number of Publish calls that replaced an existing
  /// snapshot (i.e. hot swaps, not first publications).
  int64_t swap_count() const { return swap_count_.load(); }

 private:
  /// The live-snapshot cell: a shared_ptr behind a mutex whose critical
  /// section is a single pointer copy/swap. This is deliberately not
  /// `std::atomic<std::shared_ptr<...>>`: libstdc++ implements that as a
  /// spin lock over the same pointer pair anyway (it is not lock-free),
  /// and its load() path releases the spin bit with memory_order_relaxed,
  /// which ThreadSanitizer's happens-before model reports as a data race
  /// against the next store. A real mutex has identical cost here and is
  /// fully visible to the sanitizers. Store destroys the displaced
  /// snapshot outside the critical section so a publisher never runs an
  /// engine teardown while readers wait.
  class SnapshotCell {
   public:
    std::shared_ptr<ModelSnapshot> Load() const {
      std::lock_guard<std::mutex> lock(mu_);
      return ptr_;
    }
    void Store(std::shared_ptr<ModelSnapshot> next) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        ptr_.swap(next);
      }
      // `next` (the old snapshot, if this was its last reference) dies
      // here, after the lock is released.
    }

   private:
    mutable std::mutex mu_;
    std::shared_ptr<ModelSnapshot> ptr_;
  };

  /// Per-model slot; allocated once, never removed, so Acquire can hold
  /// a raw pointer to it briefly outside the map lock if ever needed.
  struct Slot {
    SnapshotCell current;
    int64_t version = 0;  ///< guarded by mu_ (Publish is serialized)
  };

  mutable std::mutex mu_;  ///< guards the map shape and version counters
  std::map<std::string, std::unique_ptr<Slot>> models_;
  std::atomic<int64_t> swap_count_{0};
};

}  // namespace dlsys

#endif  // DLSYS_SERVE_REGISTRY_H_
