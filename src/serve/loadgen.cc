#include "src/serve/loadgen.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <vector>

#include "src/core/rng.h"

namespace dlsys {

namespace {

/// Folds every completion appended at or after index \p first into
/// \p report and returns the largest finish time seen.
double FoldCompletions(const Server& server, size_t first,
                       LoadReport* report) {
  double last_finish = 0.0;
  const std::vector<Server::Completion>& done = server.completions();
  for (size_t i = first; i < done.size(); ++i) {
    const Server::Completion& c = done[i];
    ++report->completed;
    if (c.deadline_missed) ++report->deadline_missed;
    report->latency.Record(c.finish_ms - c.arrival_ms);
    last_finish = std::max(last_finish, c.finish_ms);
  }
  return last_finish;
}

void FinishReport(double first_ms, double last_finish_ms, double wall_seconds,
                  LoadReport* report) {
  report->wall_seconds = wall_seconds;
  report->duration_ms = std::max(0.0, last_finish_ms - first_ms);
  if (report->duration_ms > 0.0) {
    report->sim_throughput_rps = static_cast<double>(report->completed) /
                                 (report->duration_ms / 1000.0);
  }
  if (wall_seconds > 0.0) {
    report->real_throughput_rps =
        static_cast<double>(report->completed) / wall_seconds;
  }
}

}  // namespace

std::vector<TenantShare> BalancedTenantMix(int n) {
  std::vector<TenantShare> mix;
  mix.reserve(static_cast<size_t>(std::max(0, n)));
  for (int i = 0; i < n; ++i) {
    mix.push_back({"t" + std::to_string(i), 1.0});
  }
  return mix;
}

std::vector<TenantShare> HotTenantMix(int n, double hot_factor) {
  std::vector<TenantShare> mix = BalancedTenantMix(n);
  if (!mix.empty()) mix[0].share = hot_factor;
  return mix;
}

std::vector<std::string> AssignTenants(const std::vector<TenantShare>& mix,
                                       uint64_t seed, int64_t n) {
  std::vector<std::string> assignment;
  if (mix.empty() || n <= 0) return assignment;
  double total = 0.0;
  for (const TenantShare& share : mix) total += std::max(0.0, share.share);
  // The third fork of the seed's root: RunTenantedOpenLoop spends the
  // first two on arrival gaps and payloads, so a caller with its own
  // arrival process reproduces the identical assignment from (mix, seed).
  Rng root(seed);
  root.Fork();
  root.Fork();
  Rng draws = root.Fork();
  assignment.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    const double u = draws.Uniform() * total;
    double cum = 0.0;
    size_t pick = mix.size() - 1;
    for (size_t j = 0; j < mix.size(); ++j) {
      cum += std::max(0.0, mix[j].share);
      if (u < cum) {
        pick = j;
        break;
      }
    }
    assignment.push_back(mix[pick].tenant);
  }
  return assignment;
}

TenantedLoadReport RunTenantedOpenLoop(Server* server,
                                       const TenantedLoadConfig& config) {
  TenantedLoadReport report;
  std::shared_ptr<ModelSnapshot> snap =
      server->registry()->Acquire(config.model);
  const int64_t in_elems = snap == nullptr ? 1 : snap->in_elems;
  snap.reset();

  Rng root(config.seed);
  Rng arrivals = root.Fork();
  Rng payloads = root.Fork();
  const std::vector<std::string> tenant_of =
      AssignTenants(config.mix, config.seed, config.requests);
  const size_t completions_before = server->completions().size();
  Tensor example({in_elems});

  Stopwatch wall;
  double t = std::max(config.start_ms, server->clock_ms());
  const double first_ms = t;
  std::map<int64_t, std::string> owner;  // request id -> tenant
  for (int64_t i = 0; i < config.requests; ++i) {
    t += -std::log(1.0 - arrivals.Uniform()) / config.rate_rps * 1000.0;
    const std::string tenant =
        tenant_of.empty() ? std::string("default")
                          : tenant_of[static_cast<size_t>(i)];
    example.FillGaussian(&payloads, 1.0f);
    const Server::SubmitResult r =
        server->Submit(config.model, example, t, config.deadline_ms, tenant);
    LoadReport& per = report.by_tenant[tenant];
    ++report.total.offered;
    ++per.offered;
    if (r.outcome == Server::Outcome::kAdmitted) {
      ++report.total.admitted;
      ++per.admitted;
      owner[r.id] = tenant;
    } else {
      ++report.total.shed;
      ++per.shed;
    }
  }
  server->Drain();

  double last_finish = 0.0;
  const std::vector<Server::Completion>& done = server->completions();
  for (size_t i = completions_before; i < done.size(); ++i) {
    const Server::Completion& c = done[i];
    auto it = owner.find(c.id);
    if (it == owner.end()) continue;  // earlier traffic, not this run's
    LoadReport& per = report.by_tenant[it->second];
    ++report.total.completed;
    ++per.completed;
    if (c.deadline_missed) {
      ++report.total.deadline_missed;
      ++per.deadline_missed;
    }
    const double latency = c.finish_ms - c.arrival_ms;
    report.total.latency.Record(latency);
    per.latency.Record(latency);
    last_finish = std::max(last_finish, c.finish_ms);
  }
  FinishReport(first_ms, last_finish, wall.Seconds(), &report.total);

  // Per-tenant goodput over the run's simulated makespan, and the
  // max/min ratio the fairness tests bound. A tenant that offered load
  // but got nothing through makes the ratio infinite (starvation).
  const double duration_s = report.total.duration_ms / 1000.0;
  double lo = std::numeric_limits<double>::infinity();
  double hi = 0.0;
  for (auto& [tenant, per] : report.by_tenant) {
    const double good =
        duration_s > 0.0
            ? static_cast<double>(per.completed - per.deadline_missed) /
                  duration_s
            : 0.0;
    report.goodput_rps[tenant] = good;
    per.duration_ms = report.total.duration_ms;
    if (per.offered > 0) {
      lo = std::min(lo, good);
      hi = std::max(hi, good);
    }
  }
  if (report.by_tenant.empty() || !std::isfinite(lo)) {
    report.max_min_goodput_ratio = 1.0;
  } else if (lo <= 0.0) {
    report.max_min_goodput_ratio = std::numeric_limits<double>::infinity();
  } else {
    report.max_min_goodput_ratio = hi / lo;
  }
  return report;
}

double TraceRateAt(const TraceLoadConfig& config, double t_ms) {
  constexpr double kTwoPi = 6.283185307179586476925286766559;
  double rate = config.base_rps;
  if (config.diurnal_amplitude != 0.0 && config.diurnal_period_ms > 0.0) {
    rate *= 1.0 + config.diurnal_amplitude *
                      std::sin(kTwoPi * (t_ms - config.start_ms) /
                               config.diurnal_period_ms);
  }
  for (const FlashCrowd& crowd : config.crowds) {
    if (t_ms >= crowd.start_ms && t_ms < crowd.start_ms + crowd.duration_ms) {
      rate *= crowd.multiplier;
    }
  }
  return std::max(0.0, rate);
}

double TracePeakRate(const TraceLoadConfig& config) {
  // The diurnal peak is analytic; flash crowds multiply on top. Assume
  // the worst case where every crowd interval sees the diurnal peak —
  // the envelope only needs to dominate, not be tight.
  double peak = config.base_rps * (1.0 + std::abs(config.diurnal_amplitude));
  double crowd_peak = 1.0;
  for (const FlashCrowd& crowd : config.crowds) {
    crowd_peak = std::max(crowd_peak, crowd.multiplier);
  }
  return peak * crowd_peak;
}

std::vector<double> GenerateTraceArrivals(const TraceLoadConfig& config) {
  std::vector<double> arrivals;
  const double peak = TracePeakRate(config);
  if (peak <= 0.0 || config.duration_ms <= 0.0) return arrivals;
  Rng rng(config.seed);
  Rng gaps = rng.Fork();
  Rng keep = rng.Fork();
  double t = config.start_ms;
  const double end = config.start_ms + config.duration_ms;
  while (true) {
    t += -std::log(1.0 - gaps.Uniform()) / peak * 1000.0;
    if (t >= end) break;
    // Thinning: the candidate survives with probability rate(t) / peak,
    // turning the homogeneous envelope into the shaped process.
    if (keep.Uniform() * peak < TraceRateAt(config, t)) {
      arrivals.push_back(t);
    }
  }
  return arrivals;
}

LoadReport RunOpenLoop(Server* server, const OpenLoopConfig& config,
                       const std::function<void(int64_t)>& before_submit) {
  LoadReport report;
  std::shared_ptr<ModelSnapshot> snap =
      server->registry()->Acquire(config.model);
  const int64_t in_elems = snap == nullptr ? 1 : snap->in_elems;
  snap.reset();  // payloads only need the size; don't pin a version

  Rng root(config.seed);
  Rng arrivals = root.Fork();
  Rng payloads = root.Fork();
  const size_t completions_before = server->completions().size();
  Tensor example({in_elems});

  Stopwatch wall;
  double t = std::max(config.start_ms, server->clock_ms());
  const double first_ms = t;
  for (int64_t i = 0; i < config.requests; ++i) {
    // Inverse-CDF exponential gap: Poisson arrivals at rate_rps.
    t += -std::log(1.0 - arrivals.Uniform()) / config.rate_rps * 1000.0;
    if (before_submit) before_submit(i);
    example.FillGaussian(&payloads, 1.0f);
    const Server::SubmitResult r =
        server->Submit(config.model, example, t, config.deadline_ms);
    ++report.offered;
    if (r.outcome == Server::Outcome::kAdmitted) {
      ++report.admitted;
    } else {
      ++report.shed;
    }
  }
  server->Drain();
  const double last_finish = FoldCompletions(*server, completions_before,
                                             &report);
  FinishReport(first_ms, last_finish, wall.Seconds(), &report);
  return report;
}

LoadReport RunClosedLoop(Server* server, const ClosedLoopConfig& config) {
  LoadReport report;
  std::shared_ptr<ModelSnapshot> snap =
      server->registry()->Acquire(config.model);
  const int64_t in_elems = snap == nullptr ? 1 : snap->in_elems;
  snap.reset();

  struct Client {
    double next_ms = 0.0;   ///< earliest time of its next attempt
    int64_t sent = 0;       ///< attempts issued so far
    bool waiting = false;   ///< has a request in flight
    Rng payloads{0};
  };
  Rng root(config.seed);
  std::vector<Client> clients(static_cast<size_t>(config.clients));
  for (Client& c : clients) c.payloads = root.Fork();

  std::map<int64_t, size_t> in_flight;  // request id -> client index
  const size_t completions_before = server->completions().size();
  size_t seen = completions_before;
  Tensor example({in_elems});
  const double start_ms = server->clock_ms();
  double last_finish = 0.0;

  Stopwatch wall;
  while (true) {
    // Release clients whose responses have arrived.
    const std::vector<Server::Completion>& done = server->completions();
    for (; seen < done.size(); ++seen) {
      auto it = in_flight.find(done[seen].id);
      if (it == in_flight.end()) continue;  // earlier traffic, not ours
      Client& c = clients[it->second];
      c.waiting = false;
      c.next_ms = done[seen].finish_ms + config.think_ms;
      in_flight.erase(it);
    }

    // Earliest client ready to send (lowest index breaks ties).
    int64_t who = -1;
    for (size_t i = 0; i < clients.size(); ++i) {
      const Client& c = clients[i];
      if (c.waiting || c.sent >= config.requests_per_client) continue;
      if (who < 0 || c.next_ms < clients[static_cast<size_t>(who)].next_ms) {
        who = static_cast<int64_t>(i);
      }
    }

    const double next_dispatch = server->NextActionableMs();
    if (who >= 0) {
      Client& c = clients[static_cast<size_t>(who)];
      const double t = std::max(c.next_ms, server->clock_ms());
      // Let the server reach any dispatch due before this send, so the
      // completion scan above can release other clients first.
      if (next_dispatch >= 0.0 && next_dispatch < t) {
        server->AdvanceTo(std::max(server->clock_ms(), next_dispatch));
        continue;
      }
      example.FillGaussian(&c.payloads, 1.0f);
      const Server::SubmitResult r =
          server->Submit(config.model, example, t, config.deadline_ms);
      ++c.sent;
      ++report.offered;
      if (r.outcome == Server::Outcome::kAdmitted) {
        ++report.admitted;
        c.waiting = true;
        in_flight[r.id] = static_cast<size_t>(who);
      } else {
        ++report.shed;
        c.next_ms = t + config.think_ms;  // client-side backoff, then retry
      }
      continue;
    }
    if (next_dispatch >= 0.0) {
      server->AdvanceTo(std::max(server->clock_ms(), next_dispatch));
      continue;
    }
    if (in_flight.empty()) break;  // every client finished its budget
    // In-flight requests but nothing actionable: drain whatever remains.
    server->Drain();
  }
  server->Drain();
  last_finish = FoldCompletions(*server, completions_before, &report);
  FinishReport(start_ms, last_finish, wall.Seconds(), &report);
  return report;
}

}  // namespace dlsys
