#include "src/serve/loadgen.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "src/core/rng.h"

namespace dlsys {

namespace {

/// Folds every completion appended at or after index \p first into
/// \p report and returns the largest finish time seen.
double FoldCompletions(const Server& server, size_t first,
                       LoadReport* report) {
  double last_finish = 0.0;
  const std::vector<Server::Completion>& done = server.completions();
  for (size_t i = first; i < done.size(); ++i) {
    const Server::Completion& c = done[i];
    ++report->completed;
    if (c.deadline_missed) ++report->deadline_missed;
    report->latency.Record(c.finish_ms - c.arrival_ms);
    last_finish = std::max(last_finish, c.finish_ms);
  }
  return last_finish;
}

void FinishReport(double first_ms, double last_finish_ms, double wall_seconds,
                  LoadReport* report) {
  report->wall_seconds = wall_seconds;
  report->duration_ms = std::max(0.0, last_finish_ms - first_ms);
  if (report->duration_ms > 0.0) {
    report->sim_throughput_rps = static_cast<double>(report->completed) /
                                 (report->duration_ms / 1000.0);
  }
  if (wall_seconds > 0.0) {
    report->real_throughput_rps =
        static_cast<double>(report->completed) / wall_seconds;
  }
}

}  // namespace

double TraceRateAt(const TraceLoadConfig& config, double t_ms) {
  constexpr double kTwoPi = 6.283185307179586476925286766559;
  double rate = config.base_rps;
  if (config.diurnal_amplitude != 0.0 && config.diurnal_period_ms > 0.0) {
    rate *= 1.0 + config.diurnal_amplitude *
                      std::sin(kTwoPi * (t_ms - config.start_ms) /
                               config.diurnal_period_ms);
  }
  for (const FlashCrowd& crowd : config.crowds) {
    if (t_ms >= crowd.start_ms && t_ms < crowd.start_ms + crowd.duration_ms) {
      rate *= crowd.multiplier;
    }
  }
  return std::max(0.0, rate);
}

double TracePeakRate(const TraceLoadConfig& config) {
  // The diurnal peak is analytic; flash crowds multiply on top. Assume
  // the worst case where every crowd interval sees the diurnal peak —
  // the envelope only needs to dominate, not be tight.
  double peak = config.base_rps * (1.0 + std::abs(config.diurnal_amplitude));
  double crowd_peak = 1.0;
  for (const FlashCrowd& crowd : config.crowds) {
    crowd_peak = std::max(crowd_peak, crowd.multiplier);
  }
  return peak * crowd_peak;
}

std::vector<double> GenerateTraceArrivals(const TraceLoadConfig& config) {
  std::vector<double> arrivals;
  const double peak = TracePeakRate(config);
  if (peak <= 0.0 || config.duration_ms <= 0.0) return arrivals;
  Rng rng(config.seed);
  Rng gaps = rng.Fork();
  Rng keep = rng.Fork();
  double t = config.start_ms;
  const double end = config.start_ms + config.duration_ms;
  while (true) {
    t += -std::log(1.0 - gaps.Uniform()) / peak * 1000.0;
    if (t >= end) break;
    // Thinning: the candidate survives with probability rate(t) / peak,
    // turning the homogeneous envelope into the shaped process.
    if (keep.Uniform() * peak < TraceRateAt(config, t)) {
      arrivals.push_back(t);
    }
  }
  return arrivals;
}

LoadReport RunOpenLoop(Server* server, const OpenLoopConfig& config,
                       const std::function<void(int64_t)>& before_submit) {
  LoadReport report;
  std::shared_ptr<ModelSnapshot> snap =
      server->registry()->Acquire(config.model);
  const int64_t in_elems = snap == nullptr ? 1 : snap->in_elems;
  snap.reset();  // payloads only need the size; don't pin a version

  Rng root(config.seed);
  Rng arrivals = root.Fork();
  Rng payloads = root.Fork();
  const size_t completions_before = server->completions().size();
  Tensor example({in_elems});

  Stopwatch wall;
  double t = std::max(config.start_ms, server->clock_ms());
  const double first_ms = t;
  for (int64_t i = 0; i < config.requests; ++i) {
    // Inverse-CDF exponential gap: Poisson arrivals at rate_rps.
    t += -std::log(1.0 - arrivals.Uniform()) / config.rate_rps * 1000.0;
    if (before_submit) before_submit(i);
    example.FillGaussian(&payloads, 1.0f);
    const Server::SubmitResult r =
        server->Submit(config.model, example, t, config.deadline_ms);
    ++report.offered;
    if (r.outcome == Server::Outcome::kAdmitted) {
      ++report.admitted;
    } else {
      ++report.shed;
    }
  }
  server->Drain();
  const double last_finish = FoldCompletions(*server, completions_before,
                                             &report);
  FinishReport(first_ms, last_finish, wall.Seconds(), &report);
  return report;
}

LoadReport RunClosedLoop(Server* server, const ClosedLoopConfig& config) {
  LoadReport report;
  std::shared_ptr<ModelSnapshot> snap =
      server->registry()->Acquire(config.model);
  const int64_t in_elems = snap == nullptr ? 1 : snap->in_elems;
  snap.reset();

  struct Client {
    double next_ms = 0.0;   ///< earliest time of its next attempt
    int64_t sent = 0;       ///< attempts issued so far
    bool waiting = false;   ///< has a request in flight
    Rng payloads{0};
  };
  Rng root(config.seed);
  std::vector<Client> clients(static_cast<size_t>(config.clients));
  for (Client& c : clients) c.payloads = root.Fork();

  std::map<int64_t, size_t> in_flight;  // request id -> client index
  const size_t completions_before = server->completions().size();
  size_t seen = completions_before;
  Tensor example({in_elems});
  const double start_ms = server->clock_ms();
  double last_finish = 0.0;

  Stopwatch wall;
  while (true) {
    // Release clients whose responses have arrived.
    const std::vector<Server::Completion>& done = server->completions();
    for (; seen < done.size(); ++seen) {
      auto it = in_flight.find(done[seen].id);
      if (it == in_flight.end()) continue;  // earlier traffic, not ours
      Client& c = clients[it->second];
      c.waiting = false;
      c.next_ms = done[seen].finish_ms + config.think_ms;
      in_flight.erase(it);
    }

    // Earliest client ready to send (lowest index breaks ties).
    int64_t who = -1;
    for (size_t i = 0; i < clients.size(); ++i) {
      const Client& c = clients[i];
      if (c.waiting || c.sent >= config.requests_per_client) continue;
      if (who < 0 || c.next_ms < clients[static_cast<size_t>(who)].next_ms) {
        who = static_cast<int64_t>(i);
      }
    }

    const double next_dispatch = server->NextActionableMs();
    if (who >= 0) {
      Client& c = clients[static_cast<size_t>(who)];
      const double t = std::max(c.next_ms, server->clock_ms());
      // Let the server reach any dispatch due before this send, so the
      // completion scan above can release other clients first.
      if (next_dispatch >= 0.0 && next_dispatch < t) {
        server->AdvanceTo(std::max(server->clock_ms(), next_dispatch));
        continue;
      }
      example.FillGaussian(&c.payloads, 1.0f);
      const Server::SubmitResult r =
          server->Submit(config.model, example, t, config.deadline_ms);
      ++c.sent;
      ++report.offered;
      if (r.outcome == Server::Outcome::kAdmitted) {
        ++report.admitted;
        c.waiting = true;
        in_flight[r.id] = static_cast<size_t>(who);
      } else {
        ++report.shed;
        c.next_ms = t + config.think_ms;  // client-side backoff, then retry
      }
      continue;
    }
    if (next_dispatch >= 0.0) {
      server->AdvanceTo(std::max(server->clock_ms(), next_dispatch));
      continue;
    }
    if (in_flight.empty()) break;  // every client finished its budget
    // In-flight requests but nothing actionable: drain whatever remains.
    server->Drain();
  }
  server->Drain();
  last_finish = FoldCompletions(*server, completions_before, &report);
  FinishReport(start_ms, last_finish, wall.Seconds(), &report);
  return report;
}

}  // namespace dlsys
