#include "src/serve/admission.h"

#include <algorithm>
#include <cmath>

namespace dlsys {

namespace {

/// One tenant policy's field checks; \p who names the policy in the
/// error ("scheduler.default_policy" or "scheduler.tenants[<name>]").
Status ValidateTenantPolicy(const std::string& who, const TenantPolicy& policy,
                            int priority_classes) {
  if (!std::isfinite(policy.rate_rps)) {
    return Status::InvalidArgument(who + ".rate_rps must be finite");
  }
  if (!(policy.burst >= 1.0) || !std::isfinite(policy.burst)) {
    return Status::InvalidArgument(
        who + ".burst must be finite and >= 1 (one request must fit)");
  }
  if (!(policy.weight > 0.0) || !std::isfinite(policy.weight)) {
    return Status::InvalidArgument(
        who + ".weight must be finite and positive");
  }
  if (policy.priority < 0 || policy.priority >= priority_classes) {
    return Status::InvalidArgument(
        who + ".priority must lie in [0, scheduler.priority_classes)");
  }
  return Status::OK();
}

}  // namespace

double EstimateServiceMs(const ServiceCostModel& cost, int64_t batch_size) {
  return cost.fixed_ms +
         cost.per_example_ms * static_cast<double>(batch_size);
}

Status ValidateServerConfig(const ServerConfig& config) {
  if (config.workers < 1) {
    return Status::InvalidArgument("worker count must be >= 1");
  }
  if (config.batch.max_batch < 1) {
    return Status::InvalidArgument("batch.max_batch must be >= 1");
  }
  if (config.queue_capacity < config.batch.max_batch) {
    return Status::InvalidArgument(
        "queue_capacity must be >= batch.max_batch so a full batch can form");
  }
  if (!(config.batch.max_delay_ms >= 0.0) ||
      !std::isfinite(config.batch.max_delay_ms)) {
    return Status::InvalidArgument(
        "batch.max_delay_ms must be finite and non-negative");
  }
  if (!(config.default_deadline_ms > 0.0) ||
      !std::isfinite(config.default_deadline_ms)) {
    return Status::InvalidArgument(
        "default_deadline_ms must be finite and positive");
  }
  if (!(config.cost.fixed_ms >= 0.0) || !std::isfinite(config.cost.fixed_ms)) {
    return Status::InvalidArgument(
        "cost.fixed_ms must be finite and non-negative");
  }
  if (!(config.cost.per_example_ms >= 0.0) ||
      !std::isfinite(config.cost.per_example_ms)) {
    return Status::InvalidArgument(
        "cost.per_example_ms must be finite and non-negative");
  }
  const SlotSchedulerConfig& sched = config.scheduler;
  if (sched.slots_per_worker < 0) {
    return Status::InvalidArgument(
        "scheduler.slots_per_worker must be >= 0 (0 selects batch.max_batch)");
  }
  if (sched.priority_classes < 1) {
    return Status::InvalidArgument("scheduler.priority_classes must be >= 1");
  }
  DLSYS_RETURN_NOT_OK(ValidateTenantPolicy(
      "scheduler.default_policy", sched.default_policy,
      sched.priority_classes));
  for (const auto& [tenant, policy] : sched.tenants) {
    if (tenant.empty()) {
      return Status::InvalidArgument(
          "scheduler.tenants keys must be non-empty tenant names");
    }
    DLSYS_RETURN_NOT_OK(ValidateTenantPolicy(
        "scheduler.tenants[" + tenant + "]", policy, sched.priority_classes));
  }
  return Status::OK();
}

const char* ShedReasonName(ShedReason reason) {
  switch (reason) {
    case ShedReason::kQueueFull:
      return "queue_full";
    case ShedReason::kDeadlineInfeasible:
      return "deadline_infeasible";
    case ShedReason::kDraining:
      return "draining";
    case ShedReason::kUnhealthyReplica:
      return "unhealthy_replica";
  }
  return "unknown";
}

AdmissionDecision DecideAdmission(const ServerConfig& config,
                                  const AdmissionInputs& in) {
  if (in.draining) {
    return AdmissionDecision::kShedDraining;
  }
  if (in.queue_depth >= config.queue_capacity) {
    return AdmissionDecision::kShedQueueFull;
  }
  // Earliest the request's batch can start: when the batch is ready to
  // dispatch and a worker is free, never before the request exists.
  const double predicted_start =
      std::max({in.batch_ready_ms, in.earliest_worker_free_ms, in.arrival_ms});
  const double predicted_finish =
      predicted_start + EstimateServiceMs(config.cost, in.prospective_batch);
  if (predicted_finish > in.arrival_ms + in.deadline_budget_ms) {
    return AdmissionDecision::kShedDeadline;
  }
  return AdmissionDecision::kAdmit;
}

}  // namespace dlsys
