#ifndef DLSYS_SERVE_ADMISSION_H_
#define DLSYS_SERVE_ADMISSION_H_

#include <cstdint>
#include <map>
#include <string>

#include "src/core/status.h"
#include "src/infer/batcher.h"

/// \file admission.h
/// \brief Server configuration, validation, and the admission policy.
///
/// Under overload a serving system must shed, not queue: an unbounded
/// queue turns excess offered load into unbounded latency for everyone
/// (the classic open-loop collapse). Admission is decided at arrival from
/// two tests — a hard per-model queue bound, and a deadline-feasibility
/// check that predicts when the request's batch would finish under the
/// declared service-cost model. Both inputs are simulated quantities
/// (queue state and modeled service time, never wall-clock measurements),
/// so the same arrival sequence replays to the same accept/shed decisions
/// bit for bit at any DLSYS_THREADS — the property test_serve locks in.
///
/// The decision function is pure (state in, verdict out) so it can be
/// unit-tested without a Server and reused by other front doors.

namespace dlsys {

/// \brief Linear model of engine service time for one dispatched batch.
///
/// Admission and scheduling never consult wall-clock measurements (that
/// would make shed decisions irreproducible); they use this declared
/// model: service_ms(b) = fixed_ms + per_example_ms * b.
struct ServiceCostModel {
  double fixed_ms = 0.05;        ///< per-dispatch overhead
  double per_example_ms = 0.01;  ///< marginal cost per batched example
};

/// \brief Modeled service time for a batch of \p batch_size examples.
double EstimateServiceMs(const ServiceCostModel& cost, int64_t batch_size);

/// \brief QoS contract of one tenant: a token-bucket quota plus its
/// weighted-fair share and priority class.
///
/// Quotas shape *service order*, not admission: a tenant past its rate
/// waits for tokens instead of being turned away, and the wait feeds the
/// deadline-feasibility test, so sustained abuse converts into deadline
/// sheds charged to the abuser rather than queueing delay charged to
/// everyone (the paper's Part-3 who-gets-served question, answered at
/// the systems layer).
struct TenantPolicy {
  /// Sustained token refill in requests per simulated second; <= 0 means
  /// unlimited (no quota applied).
  double rate_rps = 0.0;
  /// Bucket depth in requests (>= 1): how far a tenant may burst above
  /// its sustained rate.
  double burst = 8.0;
  /// Deficit-weighted-fair share (> 0): a weight-2 tenant is offered
  /// twice the slots of a weight-1 tenant when both are backlogged.
  double weight = 1.0;
  /// Priority class in [0, priority_classes): class 0 is served strictly
  /// before class 1, and so on.
  int priority = 0;
};

/// \brief Configuration of the continuous-batching slot scheduler.
struct SlotSchedulerConfig {
  /// Selects the slot scheduler. The legacy FIFO-prefix batching path
  /// stays the default for one release migration window; it is retired
  /// next release.
  bool use_slots = false;
  /// Slot lanes per worker; each lane holds one in-flight request. 0
  /// selects batch.max_batch (a full engine batch per worker).
  int slots_per_worker = 0;
  /// Number of strict priority classes (>= 1).
  int priority_classes = 1;
  /// Deficit-weighted-fair selection across tenants. Off, freed slots
  /// fill in global FIFO order — the starvation control the fairness
  /// test demonstrates.
  bool fair_queueing = true;
  /// Token-bucket quota enforcement. Off, every tenant is unlimited.
  bool enforce_quotas = true;
  /// Policy applied to tenants without an explicit entry below.
  TenantPolicy default_policy;
  /// Per-tenant overrides, keyed by tenant name.
  std::map<std::string, TenantPolicy> tenants;
};

/// \brief Front-door configuration for a Server.
struct ServerConfig {
  /// Engine replicas serving concurrently; each drives its own
  /// MicroBatcher-style coalescing slot on the worker pool.
  int workers = 2;
  /// Per-model bound on admitted-but-undispatched requests. Admission
  /// sheds (never blocks, never queues past this) when a model's queue
  /// is full. Must be >= batch.max_batch so one full batch can form.
  int64_t queue_capacity = 64;
  /// Batch coalescing policy (same knobs as the MicroBatcher front door):
  /// dispatch at max_batch pending, or when the oldest waited max_delay_ms.
  MicroBatcherConfig batch;
  /// Deadline budget applied when Submit passes no explicit deadline.
  double default_deadline_ms = 50.0;
  /// The declared service-time model used for admission and scheduling.
  ServiceCostModel cost;
  /// Continuous-batching slot scheduler with multi-tenant QoS; see
  /// SlotSchedulerConfig. Default off (legacy FIFO path) this release.
  SlotSchedulerConfig scheduler;
};

/// \brief Validates every user-settable field of \p config: worker count
/// >= 1, queue bound >= max_batch >= 1, non-negative finite delay,
/// positive finite deadline, non-negative finite cost terms, and the
/// slot-scheduler QoS block (slot count, priority classes, per-tenant
/// rate/burst/weight/priority). Returns InvalidArgument on the first
/// violation — configuration is user input, so errors surface as Status,
/// not DLSYS_CHECK aborts.
Status ValidateServerConfig(const ServerConfig& config);

/// \brief Why a request was turned away. Every shed is attributed to
/// exactly one structured reason and exported as its own
/// `serve.shed.<reason>` counter (no aggregate shed count survives) so
/// chaos-suite post-mortems can tell overload, infeasibility, drains,
/// and routing blackouts apart.
enum class ShedReason {
  kQueueFull,           ///< the model's bounded queue is at capacity
  kDeadlineInfeasible,  ///< predicted completion already misses the deadline
  kDraining,            ///< the replica is draining ahead of scale-down
  kUnhealthyReplica,    ///< the router found no healthy replica to take it
};

/// \brief Stable counter-key suffix for \p reason ("queue_full", ...).
const char* ShedReasonName(ShedReason reason);

/// \brief Verdict of the admission test for one arriving request.
enum class AdmissionDecision {
  kAdmit,
  kShedQueueFull,  ///< ShedReason::kQueueFull
  kShedDeadline,   ///< ShedReason::kDeadlineInfeasible
  kShedDraining,   ///< ShedReason::kDraining
};

/// \brief Everything the admission policy looks at, all simulated.
struct AdmissionInputs {
  int64_t queue_depth = 0;        ///< undispatched requests for the model
  int64_t prospective_batch = 0;  ///< batch size if this request joins
  double batch_ready_ms = 0.0;    ///< when that batch could dispatch
  double earliest_worker_free_ms = 0.0;
  double arrival_ms = 0.0;
  double deadline_budget_ms = 0.0;  ///< relative to arrival; > 0
  bool draining = false;  ///< replica is emptying ahead of a scale-down
};

/// \brief Pure admission decision: drain state first (a draining replica
/// takes nothing new), then the bounded queue, then deadline feasibility
/// under the cost model. Deterministic.
AdmissionDecision DecideAdmission(const ServerConfig& config,
                                  const AdmissionInputs& in);

}  // namespace dlsys

#endif  // DLSYS_SERVE_ADMISSION_H_
