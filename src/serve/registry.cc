#include "src/serve/registry.h"

#include <utility>

namespace dlsys {

Result<std::shared_ptr<ModelSnapshot>> CompileSnapshot(
    const Sequential& net, const Shape& example_shape, int replicas,
    const EngineConfig& config) {
  if (replicas < 1) {
    return Status::InvalidArgument("snapshot needs at least one replica");
  }
  auto snap = std::make_shared<ModelSnapshot>();
  snap->engine_config = config;
  snap->replicas.reserve(static_cast<size_t>(replicas));
  for (int r = 0; r < replicas; ++r) {
    auto compiled = InferenceEngine::Compile(net, example_shape, config);
    if (!compiled.ok()) return compiled.status();
    ModelSnapshot::Replica slot;
    slot.engine =
        std::make_unique<InferenceEngine>(std::move(compiled).value());
    slot.in_staging = Tensor(
        {config.max_batch, slot.engine->input_elems_per_example()});
    slot.out_staging = Tensor(
        {config.max_batch, slot.engine->output_elems_per_example()});
    if (r == 0) {
      snap->example_input_shape = slot.engine->example_input_shape();
      snap->example_output_shape = slot.engine->example_output_shape();
      snap->in_elems = slot.engine->input_elems_per_example();
      snap->out_elems = slot.engine->output_elems_per_example();
    }
    snap->replicas.push_back(std::move(slot));
  }
  return snap;
}

Result<int64_t> ModelRegistry::Publish(const std::string& model,
                                       std::shared_ptr<ModelSnapshot> snap) {
  if (model.empty()) {
    return Status::InvalidArgument("model name must be non-empty");
  }
  if (snap == nullptr || snap->replicas.empty()) {
    return Status::InvalidArgument("snapshot must hold compiled replicas");
  }
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Slot>& slot = models_[model];
  if (slot == nullptr) slot = std::make_unique<Slot>();
  slot->version += 1;
  snap->model = model;
  snap->version = slot->version;
  // The RCU swap: in-flight requests holding the previous shared_ptr
  // keep serving the old version; new Acquire calls see this one.
  slot->current.Store(std::move(snap));
  if (slot->version > 1) swap_count_.fetch_add(1);
  return slot->version;
}

std::shared_ptr<ModelSnapshot> ModelRegistry::Acquire(
    const std::string& model) const {
  const Slot* slot = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = models_.find(model);
    if (it == models_.end()) return nullptr;
    slot = it->second.get();
  }
  // Slots are never destroyed while the registry lives, so the cell
  // load may happen outside the map lock.
  return slot->current.Load();
}

int64_t ModelRegistry::LatestVersion(const std::string& model) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = models_.find(model);
  return it == models_.end() ? 0 : it->second->version;
}

std::vector<std::string> ModelRegistry::ModelNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(models_.size());
  for (const auto& [name, slot] : models_) names.push_back(name);
  return names;
}

}  // namespace dlsys
