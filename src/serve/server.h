#ifndef DLSYS_SERVE_SERVER_H_
#define DLSYS_SERVE_SERVER_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/core/metrics.h"
#include "src/core/status.h"
#include "src/obs/attribution.h"
#include "src/runtime/thread_pool.h"
#include "src/serve/admission.h"
#include "src/serve/registry.h"
#include "src/serve/scheduler.h"
#include "src/serve/slots.h"

/// \file server.h
/// \brief The serving front door: bounded queues, deadline-aware
/// admission, and an SLO-tracked worker pool over hot-swappable models.
///
/// ## Simulated decisions, real execution
///
/// Every *decision* the server makes — admit or shed, which requests
/// share a batch, which worker runs it, when it starts and finishes —
/// is computed over a simulated clock from the declared ServiceCostModel,
/// never from wall-clock measurements. Every *output* is real: dispatched
/// batches run through the compiled InferenceEngine replicas on actual
/// threads. The split buys both halves of the reproducibility story: a
/// fixed arrival sequence replays bit for bit (same sheds, same batches,
/// same versions, same outputs) at any DLSYS_THREADS, while the engine
/// wall time is still measured and reported as an informational metric
/// (`Completion::measured_service_ms`), so benches can compare the model
/// against reality.
///
/// ## Two scheduling modes
///
/// With `config.scheduler.use_slots` off (the default this release) the
/// server batches version-homogeneous FIFO prefixes per model queue,
/// coalescing up to batch.max_delay_ms — the legacy PR-4 path. With it
/// on, the server runs *continuous batching* over a fixed pool of
/// per-worker request slots (src/serve/slots.h): a freed slot refills
/// immediately from the TenantScheduler (src/serve/scheduler.h) under
/// priority classes, per-tenant token-bucket quotas, and deficit-
/// weighted-fair queueing, and an idle worker dispatches whatever is
/// loaded without waiting for a batch to fill or drain. Requests carry a
/// tenant id either way; per-tenant accounting is mode-independent.
///
/// ## Version binding and hot swap
///
/// Each admitted request binds the model snapshot current *at admission*
/// (one registry Acquire). Batches are version-homogeneous in both modes
/// (slot loading never mixes snapshots within a worker's pending lanes),
/// so a Publish mid-load never mixes versions inside a batch and never
/// loses a request: queued requests finish on the snapshot they bound.
///
/// ## Threading contract
///
/// Submit/AdvanceTo/Drain and the accessors form a single-threaded event
/// loop — call them from one thread. Publish (and the registry) is
/// thread-safe and may run concurrently with serving; that is the hot-swap
/// path test_serve exercises under TSan. Dispatched batches execute on the
/// server's own ThreadPool: simulated-concurrent batches run as one
/// fork-join wave, each on its bound snapshot's per-worker replica, so no
/// engine workspace is ever shared between threads.

namespace dlsys {

/// \brief Coordinates admission, batching, and execution for all models
/// in a ModelRegistry.
class Server {
 public:
  /// \brief What happened to one submitted request.
  enum class Outcome {
    kAdmitted,
    kShedQueueFull,
    kShedDeadline,
    kShedDraining,
    kNoSuchModel,
  };

  /// \brief Submit verdict; \p id is assigned to every offered request,
  /// \p version is the snapshot version the request bound (0 if none).
  struct SubmitResult {
    Outcome outcome = Outcome::kNoSuchModel;
    int64_t id = -1;
    int64_t version = 0;
  };

  /// \brief One finished request, in dispatch order.
  struct Completion {
    int64_t id = 0;
    /// Trace rid: the fleet-global request id when Submit carried a
    /// RequestTrace, else the server-assigned id — the key every sim
    /// span of this request was emitted under.
    int64_t rid = 0;
    std::string model;
    std::string tenant;         ///< normalized tenant id ("default" if none)
    int64_t version = 0;        ///< snapshot version bound at admission
    double arrival_ms = 0.0;    ///< simulated
    /// Simulated time the tenant's quota funded the request, clamped to
    /// [arrival_ms, dispatch_ms] — the quota-delay / slot-wait boundary
    /// of the critical-path decomposition. arrival_ms in legacy mode.
    double quota_open_ms = 0.0;
    double dispatch_ms = 0.0;   ///< simulated batch start
    double finish_ms = 0.0;     ///< dispatch + modeled service time
    double deadline_ms = 0.0;   ///< absolute simulated deadline
    int64_t batch_size = 0;     ///< requests sharing the dispatch
    int worker = 0;             ///< replica index that executed it
    int slot = -1;              ///< slot-pool lane (-1 in legacy mode)
    bool deadline_missed = false;  ///< finish_ms > deadline_ms
    /// Real wall time of the batch's engine call (informational only;
    /// never feeds scheduling).
    double measured_service_ms = 0.0;
    Tensor output;  ///< real engine output, example_output_shape
  };

  /// \brief Validates \p config and builds a server over \p registry
  /// (borrowed; must outlive the server).
  static Result<std::unique_ptr<Server>> Create(ModelRegistry* registry,
                                                const ServerConfig& config);

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// \brief Compiles \p net into one replica per worker and publishes it
  /// as the next version of \p model. The engine batch ceiling is raised
  /// to the server's batch.max_batch if \p engine_config declares less.
  /// Thread-safe; may run concurrently with the serving loop (hot swap).
  Result<int64_t> Publish(const std::string& model, const Sequential& net,
                          const Shape& example_shape,
                          const EngineConfig& engine_config = {});

  /// \brief Offers one request at simulated time \p arrival_ms (monotone;
  /// checked). \p example must match the model's per-example input shape.
  /// \p deadline_budget_ms <= 0 selects config.default_deadline_ms.
  /// \p tenant attributes the request for QoS and accounting; empty maps
  /// to "default".
  ///
  /// Order of operations: dispatch every batch due strictly before
  /// arrival_ms, then decide admission against the declared cost model
  /// (in slot mode the prediction folds in the tenant's token-bucket
  /// wait and the slot backlog), then (if admitted) enqueue and dispatch
  /// anything due at arrival_ms — so a batch whose delay expires exactly
  /// now coalesces this request, and a slot freed exactly now takes it.
  ///
  /// \p rtrace, when non-null, is the fleet's request context: every sim
  /// span and instant this request emits is keyed by rtrace->rid instead
  /// of the server-assigned id, and its spans parent under the fleet's
  /// root request span — the distributed-tracing hook.
  SubmitResult Submit(const std::string& model, const Tensor& example,
                      double arrival_ms, double deadline_budget_ms = 0.0,
                      const std::string& tenant = std::string(),
                      const obs::RequestTrace* rtrace = nullptr);

  /// \brief Advances the simulated clock to \p now_ms (monotone; checked),
  /// dispatching every batch whose dispatch time is due, and executes
  /// them for real as one fork-join wave.
  void AdvanceTo(double now_ms);

  /// \brief Earliest simulated time a pending batch becomes dispatchable,
  /// or -1 when all queues are empty. Drives event loops:
  /// `AdvanceTo(max(clock_ms(), NextActionableMs()))`.
  double NextActionableMs() const;

  /// \brief Dispatches and executes everything still queued.
  void Drain();

  /// \brief Marks the server draining (true) or serving (false). While
  /// draining every Submit sheds with Outcome::kShedDraining; queued work
  /// still dispatches, which is the graceful half of a fleet scale-down.
  void SetDraining(bool draining) { draining_ = draining; }
  bool draining() const { return draining_; }

  /// \brief Scales the declared service-cost model by \p scale (>= 0) for
  /// every *future* admission and dispatch decision — how the fleet
  /// stages a gray failure (slow replica) or a slow bad model version on
  /// the simulated clock. Already-dispatched batches keep their stamped
  /// finish times. Deterministic: callers set it at simulated times.
  void SetCostScale(double scale) { cost_scale_ = scale; }
  double cost_scale() const { return cost_scale_; }

  /// \brief Discards every admitted-but-undispatched request (a crash
  /// loses its queue) and returns how many died. Completions are not
  /// produced for them; the caller owns the accounting.
  int64_t DropQueued();

  /// \brief Admitted-but-undispatched requests across all models — the
  /// load signal fleet routers compare replicas by.
  int64_t queue_depth() const;

  /// \brief Simulated time the least-busy worker frees up (clock_ms when
  /// idle); the router's backlog tiebreaker.
  double earliest_worker_free_ms() const;

  /// \brief Current simulated time.
  double clock_ms() const { return clock_ms_; }
  /// \brief All completions so far, in dispatch order.
  const std::vector<Completion>& completions() const { return completions_; }
  /// \brief Simulated request latency (finish - arrival) distribution.
  const LatencyHistogram& latency_histogram() const { return latency_; }
  /// \brief The underlying registry (for direct Acquire/Publish).
  ModelRegistry* registry() const { return registry_; }
  /// \brief The validated configuration.
  const ServerConfig& config() const { return config_; }

  /// \brief Per-tenant serving tallies (mode-independent; the fairness
  /// bound and the E37 bench read goodput from these).
  struct TenantStats {
    int64_t offered = 0;
    int64_t admitted = 0;
    int64_t completed = 0;
    int64_t deadline_missed = 0;
    int64_t shed_queue_full = 0;
    int64_t shed_deadline = 0;
    int64_t shed_draining = 0;
    LatencyHistogram latency;  ///< simulated finish - arrival
  };

  /// \brief Tallies per normalized tenant name, in name order.
  const std::map<std::string, TenantStats>& tenant_stats() const {
    return tenants_;
  }

  /// \brief The slot pool (occupancy timeline, per-slot states), or
  /// nullptr when the legacy FIFO path is active.
  const SlotPool* slot_pool() const { return slots_.get(); }

  /// \brief Resolved slot lanes per worker (scheduler.slots_per_worker,
  /// or batch.max_batch when 0).
  int64_t lanes_per_worker() const;

  /// \brief Counters + latency quantiles under "serve.*" keys:
  /// offered/admitted/no_such_model/deadline_missed/batches, structured
  /// shed reasons as "serve.shed.<reason>" (queue_full /
  /// deadline_infeasible / draining), per-model
  /// "serve.<model>.served_v<N>", simulated latency under
  /// "serve.latency.*", real engine wall time under "serve.measured.*",
  /// and per-tenant "serve.tenant.<name>.*" tallies with
  /// "serve.tenant.<name>.latency.*" quantiles.
  MetricsReport metrics() const;

 private:
  /// One admitted, not-yet-dispatched request.
  struct QueueEntry {
    int64_t id = 0;
    int64_t trace_rid = -1;    ///< fleet rid from RequestTrace, -1 local
    std::string tenant;        ///< normalized tenant id
    int slot = -1;             ///< bound slot index (slot mode only)
    double arrival_ms = 0.0;
    double quota_open_ms = 0.0;  ///< predicted quota horizon (= arrival
                                 ///< in legacy mode)
    double deadline_ms = 0.0;  ///< absolute
    std::shared_ptr<ModelSnapshot> snap;
    Tensor input;  ///< flat copy, (in_elems)
  };

  /// One dispatched batch awaiting real execution in the current wave.
  struct ExecTask {
    std::shared_ptr<ModelSnapshot> snap;
    int worker = 0;
    int64_t batch_size = 0;
    double dispatch_ms = 0.0;
    double finish_ms = 0.0;
    std::vector<QueueEntry> members;
    double measured_service_ms = 0.0;  ///< stamped by the executing thread
    Status status;                     ///< engine verdict, checked on flush
  };

  Server(ModelRegistry* registry, const ServerConfig& config);

  /// The declared cost model with the current fault scale applied.
  ServiceCostModel ScaledCost() const;

  /// Size of the version-homogeneous FIFO prefix (<= max_batch) and the
  /// simulated time it becomes dispatchable.
  int64_t BatchPrefix(const std::deque<QueueEntry>& queue,
                      double* ready_ms) const;
  /// Dispatches every due batch: strictly before \p limit_ms when
  /// \p strict, else at or before it.
  void DispatchDue(double limit_ms, bool strict);
  /// Pops the front batch of \p queue and stages it onto a worker.
  void StageDispatch(std::deque<QueueEntry>* queue, double dispatch_ms);
  /// Runs the staged wave on the thread pool and records completions.
  void FlushWave();

  /// Slot-mode event loop: processes step completions and quota refills
  /// in simulated-time order, strictly before \p limit_ms when \p strict,
  /// else at or before it. Ends with a FlushWave.
  void SlotAdvance(double limit_ms, bool strict);
  /// Refills free lanes from the scheduler and starts steps on idle
  /// workers at \p now_ms; returns how many requests were placed.
  int SlotRefillAndStart(double now_ms);
  /// Departs \p worker's loaded lanes as one real batch at \p now_ms.
  void SlotStartStep(int worker, double now_ms);
  /// Folds one finished request into per-tenant and global accounting.
  void RecordTenantCompletion(const Completion& completion);

  ModelRegistry* registry_;
  ServerConfig config_;
  ThreadPool pool_;  ///< workers - 1 threads; chunk 0 runs on the caller

  double clock_ms_ = 0.0;
  int64_t next_id_ = 0;
  bool draining_ = false;
  double cost_scale_ = 1.0;
  std::map<std::string, std::deque<QueueEntry>> queues_;
  std::vector<double> worker_free_ms_;
  std::vector<ExecTask> wave_;

  // Slot mode (config_.scheduler.use_slots): the tenant scheduler holds
  // queued requests, the pool tracks lane states, loaded_[w] holds the
  // payloads bound to worker w's loaded lanes in load order.
  std::unique_ptr<TenantScheduler> scheduler_;
  std::unique_ptr<SlotPool> slots_;
  std::vector<std::vector<QueueEntry>> loaded_;

  std::vector<Completion> completions_;
  LatencyHistogram latency_;
  LatencyHistogram measured_;
  int64_t offered_ = 0;
  int64_t admitted_ = 0;
  int64_t shed_queue_full_ = 0;
  int64_t shed_deadline_ = 0;
  int64_t shed_draining_ = 0;
  int64_t dropped_queued_ = 0;
  int64_t no_such_model_ = 0;
  int64_t deadline_missed_ = 0;
  int64_t batches_ = 0;
  /// served request count per (model, version)
  std::map<std::string, std::map<int64_t, int64_t>> served_;
  /// per-tenant tallies, mode-independent (name order)
  std::map<std::string, TenantStats> tenants_;
};

}  // namespace dlsys

#endif  // DLSYS_SERVE_SERVER_H_
