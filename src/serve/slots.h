#ifndef DLSYS_SERVE_SLOTS_H_
#define DLSYS_SERVE_SLOTS_H_

#include <cstdint>
#include <utility>
#include <vector>

/// \file slots.h
/// \brief The slot pool of the continuous-batching scheduler: a fixed
/// set of persistent request lanes that requests join and leave while
/// neighboring lanes keep executing.
///
/// ## Model
///
/// Each serving worker owns `lanes_per_worker` slots. A request the
/// TenantScheduler selects is *loaded* into a free slot of some worker;
/// when that worker is idle and has loaded slots, all of them *begin a
/// step* together (one real engine batch); when the step's modeled finish
/// time passes, its slots free and refill immediately from the scheduler.
/// Because loading is decoupled from stepping, a request arriving while a
/// worker is mid-step joins one of its free lanes right away and rides
/// the next step the instant the current one finishes — continuous
/// batching, with no drain barrier between batches.
///
/// Per-request lifecycle (the state machine the slot states realize):
///
///     queued (TenantScheduler) -> admitted-to-slot (kLoaded)
///       -> executing (kExecuting) -> complete (slot kFree again)
///
/// ## Determinism
///
/// The pool is pure bookkeeping over the *simulated* clock: every
/// transition is stamped with a caller-provided simulated time and the
/// pool never reads wall time, so the occupancy timeline replays
/// bit-for-bit at any DLSYS_THREADS alongside the rest of the schedule.

namespace dlsys {

/// \brief Lifecycle of one slot lane.
enum class SlotState {
  kFree,       ///< no request bound
  kLoaded,     ///< request bound, waiting for its worker's next step
  kExecuting,  ///< request riding the worker's in-flight step
};

/// \brief Stable lowercase name ("free", "loaded", "executing").
const char* SlotStateName(SlotState state);

/// \brief One persistent request lane.
struct Slot {
  int index = 0;                      ///< global slot id
  int worker = 0;                     ///< owning worker
  SlotState state = SlotState::kFree;
  int64_t request_id = -1;            ///< bound request; -1 when free
  double since_ms = 0.0;              ///< simulated time of last transition
};

/// \brief Fixed pool of `workers * lanes_per_worker` slots with
/// deterministic lowest-index-first allocation and an occupancy timeline.
class SlotPool {
 public:
  /// \brief Builds the pool; both arguments must be >= 1 (checked).
  SlotPool(int workers, int lanes_per_worker);

  int workers() const { return workers_; }
  int lanes_per_worker() const { return lanes_; }
  int size() const { return static_cast<int>(slots_.size()); }

  /// \brief Free lanes of \p worker.
  int FreeLanes(int worker) const;
  /// \brief Loaded (bound, not yet stepping) lanes of \p worker.
  int LoadedCount(int worker) const;
  /// \brief Lanes riding \p worker's in-flight step.
  int ExecutingCount(int worker) const;
  /// \brief Loaded lanes across the pool.
  int64_t TotalLoaded() const;
  /// \brief Loaded + executing lanes across the pool.
  int occupancy() const { return occupied_; }

  /// \brief Binds \p request_id to the lowest-index free slot of
  /// \p worker (checked: one must exist) and returns the slot index.
  int Load(int worker, int64_t request_id, double now_ms);

  /// \brief Moves every loaded slot of \p worker to kExecuting (the
  /// worker's next step departs) and returns how many joined it.
  int BeginStep(int worker, double now_ms);

  /// \brief Frees every executing slot of \p worker (its step's modeled
  /// finish time passed) and returns how many requests completed.
  int CompleteStep(int worker, double now_ms);

  /// \brief Frees every *loaded* slot pool-wide (a crash loses requests
  /// that never dispatched) and returns how many died. Executing slots
  /// are untouched: their batches already left.
  int64_t DropLoaded(double now_ms);

  /// \brief Every slot, by index.
  const std::vector<Slot>& slots() const { return slots_; }

  /// \brief (t_ms, occupied) after all transitions at each distinct
  /// simulated time — same-time entries coalesce to the final value, so
  /// a zero here means the pool was actually empty at that instant. The
  /// continuous-batching test asserts this never hits zero under
  /// sustained load.
  const std::vector<std::pair<double, int>>& occupancy_timeline() const {
    return timeline_;
  }

  /// \brief Total Load() calls over the pool's lifetime.
  int64_t total_loads() const { return total_loads_; }
  /// \brief Highest occupancy ever observed.
  int peak_occupancy() const { return peak_occupancy_; }

 private:
  Slot& At(int worker, int lane);
  const Slot& At(int worker, int lane) const;
  /// Records the post-transition occupancy at \p now_ms.
  void Note(double now_ms);

  int workers_;
  int lanes_;
  std::vector<Slot> slots_;  ///< slot (w, l) lives at index w * lanes_ + l
  int occupied_ = 0;
  int peak_occupancy_ = 0;
  int64_t total_loads_ = 0;
  std::vector<std::pair<double, int>> timeline_;
};

}  // namespace dlsys

#endif  // DLSYS_SERVE_SLOTS_H_
