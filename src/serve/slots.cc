#include "src/serve/slots.h"

#include "src/core/status.h"
#include "src/obs/counters.h"

namespace dlsys {

const char* SlotStateName(SlotState state) {
  switch (state) {
    case SlotState::kFree:
      return "free";
    case SlotState::kLoaded:
      return "loaded";
    case SlotState::kExecuting:
      return "executing";
  }
  return "unknown";
}

SlotPool::SlotPool(int workers, int lanes_per_worker)
    : workers_(workers), lanes_(lanes_per_worker) {
  DLSYS_CHECK(workers >= 1, "slot pool needs at least one worker");
  DLSYS_CHECK(lanes_per_worker >= 1, "slot pool needs at least one lane");
  slots_.resize(static_cast<size_t>(workers) *
                static_cast<size_t>(lanes_per_worker));
  for (int w = 0; w < workers; ++w) {
    for (int l = 0; l < lanes_per_worker; ++l) {
      Slot& slot = At(w, l);
      slot.index = w * lanes_per_worker + l;
      slot.worker = w;
    }
  }
}

Slot& SlotPool::At(int worker, int lane) {
  return slots_[static_cast<size_t>(worker) * static_cast<size_t>(lanes_) +
                static_cast<size_t>(lane)];
}

const Slot& SlotPool::At(int worker, int lane) const {
  return slots_[static_cast<size_t>(worker) * static_cast<size_t>(lanes_) +
                static_cast<size_t>(lane)];
}

int SlotPool::FreeLanes(int worker) const {
  int n = 0;
  for (int l = 0; l < lanes_; ++l) {
    if (At(worker, l).state == SlotState::kFree) ++n;
  }
  return n;
}

int SlotPool::LoadedCount(int worker) const {
  int n = 0;
  for (int l = 0; l < lanes_; ++l) {
    if (At(worker, l).state == SlotState::kLoaded) ++n;
  }
  return n;
}

int SlotPool::ExecutingCount(int worker) const {
  int n = 0;
  for (int l = 0; l < lanes_; ++l) {
    if (At(worker, l).state == SlotState::kExecuting) ++n;
  }
  return n;
}

int64_t SlotPool::TotalLoaded() const {
  int64_t n = 0;
  for (const Slot& slot : slots_) {
    if (slot.state == SlotState::kLoaded) ++n;
  }
  return n;
}

void SlotPool::Note(double now_ms) {
  if (occupied_ > peak_occupancy_) peak_occupancy_ = occupied_;
  if (!timeline_.empty() && timeline_.back().first == now_ms) {
    timeline_.back().second = occupied_;  // coalesce same-instant churn
  } else {
    timeline_.emplace_back(now_ms, occupied_);
  }
  DLSYS_GAUGE_SET("serve.slots.occupied", occupied_);
}

int SlotPool::Load(int worker, int64_t request_id, double now_ms) {
  for (int l = 0; l < lanes_; ++l) {
    Slot& slot = At(worker, l);
    if (slot.state != SlotState::kFree) continue;
    slot.state = SlotState::kLoaded;
    slot.request_id = request_id;
    slot.since_ms = now_ms;
    ++occupied_;
    ++total_loads_;
    DLSYS_COUNTER_ADD("serve.slots.loads", 1);
    Note(now_ms);
    return slot.index;
  }
  DLSYS_CHECK(false, "Load called on a worker with no free lane");
  return -1;
}

int SlotPool::BeginStep(int worker, double now_ms) {
  int joined = 0;
  for (int l = 0; l < lanes_; ++l) {
    Slot& slot = At(worker, l);
    if (slot.state != SlotState::kLoaded) continue;
    slot.state = SlotState::kExecuting;
    slot.since_ms = now_ms;
    ++joined;
  }
  if (joined > 0) Note(now_ms);
  return joined;
}

int SlotPool::CompleteStep(int worker, double now_ms) {
  int completed = 0;
  for (int l = 0; l < lanes_; ++l) {
    Slot& slot = At(worker, l);
    if (slot.state != SlotState::kExecuting) continue;
    slot.state = SlotState::kFree;
    slot.request_id = -1;
    slot.since_ms = now_ms;
    --occupied_;
    ++completed;
  }
  if (completed > 0) Note(now_ms);
  return completed;
}

int64_t SlotPool::DropLoaded(double now_ms) {
  int64_t dropped = 0;
  for (Slot& slot : slots_) {
    if (slot.state != SlotState::kLoaded) continue;
    slot.state = SlotState::kFree;
    slot.request_id = -1;
    slot.since_ms = now_ms;
    --occupied_;
    ++dropped;
  }
  if (dropped > 0) Note(now_ms);
  return dropped;
}

}  // namespace dlsys
