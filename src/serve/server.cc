#include "src/serve/server.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <utility>

#include "src/obs/counters.h"
#include "src/obs/trace.h"

namespace dlsys {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

// The DLSYS_COUNTER_ADD macro caches its Counter* in a function-local
// static, which is wrong for names built from tenant ids; tenant-keyed
// metrics go through the registry-direct dynamic-name helpers. The
// DLSYS_OBS guard keeps the name concatenation out of obs-off builds.
void TenantCounterAdd(const std::string& tenant, const char* what,
                      int64_t delta) {
#if DLSYS_OBS
  obs::CounterAddDynamic("serve.tenant." + tenant + "." + what, delta);
#else
  (void)tenant;
  (void)what;
  (void)delta;
#endif
}

void TenantLatencyRecord(const std::string& tenant, double ms) {
#if DLSYS_OBS
  obs::HistogramRecordDynamic("serve.tenant." + tenant + ".latency_ms", ms);
#else
  (void)tenant;
  (void)ms;
#endif
}
}  // namespace

Result<std::unique_ptr<Server>> Server::Create(ModelRegistry* registry,
                                               const ServerConfig& config) {
  if (registry == nullptr) {
    return Status::InvalidArgument("registry must be non-null");
  }
  DLSYS_RETURN_NOT_OK(ValidateServerConfig(config));
  return std::unique_ptr<Server>(new Server(registry, config));
}

Server::Server(ModelRegistry* registry, const ServerConfig& config)
    : registry_(registry),
      config_(config),
      pool_(config.workers - 1),
      worker_free_ms_(static_cast<size_t>(config.workers), 0.0) {
  if (config_.scheduler.use_slots) {
    scheduler_ = std::make_unique<TenantScheduler>(config_.scheduler);
    slots_ = std::make_unique<SlotPool>(
        config_.workers, static_cast<int>(lanes_per_worker()));
    loaded_.resize(static_cast<size_t>(config_.workers));
  }
}

int64_t Server::lanes_per_worker() const {
  return config_.scheduler.slots_per_worker > 0
             ? config_.scheduler.slots_per_worker
             : config_.batch.max_batch;
}

Result<int64_t> Server::Publish(const std::string& model,
                                const Sequential& net,
                                const Shape& example_shape,
                                const EngineConfig& engine_config) {
  EngineConfig ec = engine_config;
  // In slot mode a step batches every loaded lane, so staging must fit a
  // full lane complement as well as the legacy batch ceiling.
  const int64_t floor = config_.scheduler.use_slots
                            ? std::max(config_.batch.max_batch,
                                       lanes_per_worker())
                            : config_.batch.max_batch;
  if (ec.max_batch < floor) {
    ec.max_batch = floor;
  }
  auto snap = CompileSnapshot(net, example_shape, config_.workers, ec);
  if (!snap.ok()) return snap.status();
  return registry_->Publish(model, std::move(snap).value());
}

int64_t Server::BatchPrefix(const std::deque<QueueEntry>& queue,
                            double* ready_ms) const {
  const int64_t mb = config_.batch.max_batch;
  const ModelSnapshot* snap = queue.front().snap.get();
  int64_t n = 0;
  while (n < static_cast<int64_t>(queue.size()) && n < mb &&
         queue[n].snap.get() == snap) {
    ++n;
  }
  // A batch closes when it fills, or when a different-version request
  // arrives behind it (it can never grow past that point), or when the
  // oldest member's delay budget expires — whichever is earliest.
  double closed_ms = kInf;
  if (n == mb) {
    closed_ms = queue[n - 1].arrival_ms;
  } else if (n < static_cast<int64_t>(queue.size())) {
    closed_ms = queue[n].arrival_ms;
  }
  *ready_ms =
      std::min(closed_ms, queue.front().arrival_ms + config_.batch.max_delay_ms);
  return n;
}

Server::SubmitResult Server::Submit(const std::string& model,
                                    const Tensor& example, double arrival_ms,
                                    double deadline_budget_ms,
                                    const std::string& tenant,
                                    const obs::RequestTrace* rtrace) {
  DLSYS_CHECK(arrival_ms >= clock_ms_, "Submit arrivals must be monotone");
  const bool slot_mode = scheduler_ != nullptr;
  // Work due strictly before this arrival happens first; a batch delay or
  // step completion landing exactly at arrival_ms instead waits for the
  // non-strict pass below, so it can coalesce (or seat) this request
  // (same-tick semantics, matching MicroBatcher::Submit).
  if (slot_mode) {
    SlotAdvance(arrival_ms, /*strict=*/true);
  } else {
    DispatchDue(arrival_ms, /*strict=*/true);
  }
  clock_ms_ = arrival_ms;

  const std::string tenant_name =
      tenant.empty() ? std::string("default") : tenant;
  TenantStats& ts = tenants_[tenant_name];

  SubmitResult result;
  result.id = next_id_++;
  // All sim-track events of this request key on the fleet rid when the
  // caller threads one through, so the exported trace stitches router-
  // and replica-side spans of one request under one id.
  const int64_t trace_rid =
      rtrace != nullptr && rtrace->rid >= 0 ? rtrace->rid : -1;
  const int64_t erid = trace_rid >= 0 ? trace_rid : result.id;
  ++offered_;
  ++ts.offered;
  DLSYS_COUNTER_ADD("serve.offered", 1);
  TenantCounterAdd(tenant_name, "offered", 1);

  std::shared_ptr<ModelSnapshot> snap = registry_->Acquire(model);
  if (snap == nullptr) {
    ++no_such_model_;
    DLSYS_COUNTER_ADD("serve.no_such_model", 1);
    result.outcome = Outcome::kNoSuchModel;
    return result;
  }
  DLSYS_CHECK(static_cast<int>(snap->replicas.size()) >= config_.workers,
              "snapshot has fewer replicas than serving workers");
  DLSYS_CHECK(snap->engine_config.max_batch >= config_.batch.max_batch,
              "snapshot engine batch ceiling below the server batch policy");
  if (slot_mode) {
    DLSYS_CHECK(snap->engine_config.max_batch >= lanes_per_worker(),
                "snapshot engine batch ceiling below the slot lane count");
  }
  DLSYS_CHECK(example.size() == snap->in_elems,
              "example does not match the model's per-example input shape");
  result.version = snap->version;

  const double budget = deadline_budget_ms > 0.0 ? deadline_budget_ms
                                                 : config_.default_deadline_ms;
  const ServiceCostModel scaled_cost = ScaledCost();

  AdmissionInputs in;
  in.arrival_ms = arrival_ms;
  in.deadline_budget_ms = budget;
  in.draining = draining_;
  if (slot_mode) {
    // Slot-mode prediction: the backlog is everything queued or loaded;
    // the request can start no earlier than its tenant's quota opens, and
    // no earlier than the backlog clears at the pool's steady drain rate
    // (workers * lanes requests per full step). Like the legacy branch
    // the prediction is biased optimistic, so sheds under-trigger.
    const int64_t lanes = lanes_per_worker();
    const int64_t backlog = scheduler_->depth() + slots_->TotalLoaded();
    in.queue_depth = backlog;
    in.prospective_batch = std::min<int64_t>(lanes, backlog + 1);
    in.batch_ready_ms = std::max(
        arrival_ms, scheduler_->QuotaBacklogMs(tenant_name, arrival_ms));
    const double step_ms = EstimateServiceMs(scaled_cost, lanes);
    const double backlog_ms =
        step_ms > 0.0 ? static_cast<double>(backlog) * step_ms /
                            (static_cast<double>(config_.workers) *
                             static_cast<double>(lanes))
                      : 0.0;
    const double free =
        *std::min_element(worker_free_ms_.begin(), worker_free_ms_.end());
    in.earliest_worker_free_ms = std::max(free, arrival_ms) + backlog_ms;
  } else {
    const int64_t mb = config_.batch.max_batch;
    // Predict this request's batch from the queue's FIFO grouping: it
    // joins the trailing group when that group shares its snapshot and
    // has room, otherwise it opens a new group behind everything queued.
    auto qit = queues_.find(model);
    const int64_t depth =
        qit == queues_.end() ? 0 : static_cast<int64_t>(qit->second.size());
    std::vector<int64_t> ahead_sizes;
    int64_t tail_size = 0;
    double tail_front_arrival = 0.0;
    const ModelSnapshot* tail_snap = nullptr;
    for (int64_t i = 0; i < depth;) {
      const std::deque<QueueEntry>& q = qit->second;
      const ModelSnapshot* gs = q[i].snap.get();
      int64_t n = 0;
      while (i + n < depth && n < mb && q[i + n].snap.get() == gs) ++n;
      if (i + n == depth) {
        tail_size = n;
        tail_front_arrival = q[i].arrival_ms;
        tail_snap = gs;
      } else {
        ahead_sizes.push_back(n);
      }
      i += n;
    }
    const bool joins_tail = tail_snap == snap.get() && tail_size < mb;
    if (!joins_tail && tail_size > 0) ahead_sizes.push_back(tail_size);

    in.queue_depth = depth;
    in.prospective_batch = joins_tail ? tail_size + 1 : 1;
    if (in.prospective_batch == mb) {
      in.batch_ready_ms = arrival_ms;  // this request completes the batch
    } else if (joins_tail) {
      in.batch_ready_ms = std::max(
          arrival_ms, tail_front_arrival + config_.batch.max_delay_ms);
    } else {
      in.batch_ready_ms = arrival_ms + config_.batch.max_delay_ms;
    }
    // Predicted worker availability: replay the queued-ahead groups onto
    // the earliest-free worker under the cost model. Their own ready times
    // are ignored (assumed dispatchable at this arrival), which biases the
    // prediction optimistic — sheds under-, never over-trigger from it.
    std::vector<double> free = worker_free_ms_;
    for (int64_t g : ahead_sizes) {
      auto w = std::min_element(free.begin(), free.end());
      *w = std::max(*w, arrival_ms) + EstimateServiceMs(scaled_cost, g);
    }
    in.earliest_worker_free_ms = *std::min_element(free.begin(), free.end());
  }

  ServerConfig decision_config = config_;
  decision_config.cost = scaled_cost;
  switch (DecideAdmission(decision_config, in)) {
    case AdmissionDecision::kShedQueueFull:
      ++shed_queue_full_;
      ++ts.shed_queue_full;
      DLSYS_COUNTER_ADD("serve.shed.queue_full", 1);
      TenantCounterAdd(tenant_name, "shed.queue_full", 1);
      DLSYS_TRACE_INSTANT_SIM("serve.shed.queue_full", "serve", arrival_ms,
                              erid);
      result.outcome = Outcome::kShedQueueFull;
      return result;
    case AdmissionDecision::kShedDeadline:
      ++shed_deadline_;
      ++ts.shed_deadline;
      DLSYS_COUNTER_ADD("serve.shed.deadline_infeasible", 1);
      TenantCounterAdd(tenant_name, "shed.deadline_infeasible", 1);
      DLSYS_TRACE_INSTANT_SIM("serve.shed.deadline_infeasible", "serve",
                              arrival_ms, erid);
      result.outcome = Outcome::kShedDeadline;
      return result;
    case AdmissionDecision::kShedDraining:
      ++shed_draining_;
      ++ts.shed_draining;
      DLSYS_COUNTER_ADD("serve.shed.draining", 1);
      TenantCounterAdd(tenant_name, "shed.draining", 1);
      DLSYS_TRACE_INSTANT_SIM("serve.shed.draining", "serve", arrival_ms,
                              erid);
      result.outcome = Outcome::kShedDraining;
      return result;
    case AdmissionDecision::kAdmit:
      break;
  }

  ++admitted_;
  ++ts.admitted;
  DLSYS_COUNTER_ADD("serve.admitted", 1);
  TenantCounterAdd(tenant_name, "admitted", 1);
  DLSYS_TRACE_INSTANT_SIM("serve.admit", "serve", arrival_ms, erid);

  if (slot_mode) {
    SlotRequest req;
    req.id = result.id;
    req.trace_rid = trace_rid;
    req.tenant = tenant_name;
    req.priority = scheduler_->PolicyFor(tenant_name).priority;
    req.arrival_ms = arrival_ms;
    req.deadline_ms = arrival_ms + budget;
    req.input = Tensor({snap->in_elems});
    std::copy(example.data(), example.data() + snap->in_elems,
              req.input.data());
    req.snap = std::move(snap);
    scheduler_->Enqueue(std::move(req));
    // Seat the request immediately if a lane is free (or frees exactly
    // now), and let idle workers depart with whatever is loaded.
    SlotAdvance(arrival_ms, /*strict=*/false);
  } else {
    QueueEntry entry;
    entry.id = result.id;
    entry.trace_rid = trace_rid;
    entry.tenant = tenant_name;
    entry.arrival_ms = arrival_ms;
    // Legacy batch mode has no quota gate: the whole queue wait is slot
    // (batch) wait in the decomposition.
    entry.quota_open_ms = arrival_ms;
    entry.deadline_ms = arrival_ms + budget;
    entry.input = Tensor({snap->in_elems});
    std::copy(example.data(), example.data() + snap->in_elems,
              entry.input.data());
    entry.snap = std::move(snap);
    queues_[model].push_back(std::move(entry));

    // Now dispatch anything due *at* arrival_ms too — a full batch formed
    // by this request, or a delay expiring on this exact tick.
    DispatchDue(arrival_ms, /*strict=*/false);
  }
  result.outcome = Outcome::kAdmitted;
  return result;
}

ServiceCostModel Server::ScaledCost() const {
  ServiceCostModel cost = config_.cost;
  cost.fixed_ms *= cost_scale_;
  cost.per_example_ms *= cost_scale_;
  return cost;
}

int64_t Server::DropQueued() {
  int64_t dropped = 0;
  if (scheduler_ != nullptr) {
    dropped += scheduler_->DropAll();
    dropped += slots_->DropLoaded(clock_ms_);
    for (std::vector<QueueEntry>& lane : loaded_) lane.clear();
  }
  for (auto& [name, queue] : queues_) {
    dropped += static_cast<int64_t>(queue.size());
    queue.clear();
  }
  dropped_queued_ += dropped;
  if (dropped > 0) {
    DLSYS_COUNTER_ADD("serve.dropped_queued", dropped);
    DLSYS_TRACE_INSTANT_SIM("serve.drop_queued", "serve", clock_ms_, -1);
  }
  return dropped;
}

int64_t Server::queue_depth() const {
  int64_t depth = 0;
  if (scheduler_ != nullptr) {
    depth += scheduler_->depth() + slots_->TotalLoaded();
  }
  for (const auto& [name, queue] : queues_) {
    depth += static_cast<int64_t>(queue.size());
  }
  return depth;
}

double Server::earliest_worker_free_ms() const {
  const double free =
      *std::min_element(worker_free_ms_.begin(), worker_free_ms_.end());
  return std::max(free, clock_ms_);
}

void Server::AdvanceTo(double now_ms) {
  DLSYS_CHECK(now_ms >= clock_ms_, "AdvanceTo must be monotone");
  if (scheduler_ != nullptr) {
    SlotAdvance(now_ms, /*strict=*/false);
  } else {
    DispatchDue(now_ms, /*strict=*/false);
  }
  clock_ms_ = now_ms;
}

double Server::NextActionableMs() const {
  double best = -1.0;
  const auto consider = [&best](double t) {
    if (best < 0.0 || t < best) best = t;
  };
  if (scheduler_ != nullptr) {
    // In-flight steps complete at their modeled finish times; each
    // completion frees lanes and may start the worker's next step.
    bool any_free_lane = false;
    for (int w = 0; w < config_.workers; ++w) {
      if (slots_->ExecutingCount(w) > 0) consider(worker_free_ms_[w]);
      if (slots_->FreeLanes(w) > 0) any_free_lane = true;
    }
    // A quota refill strictly in the future can unblock a queued request.
    // Anything eligible *now* is already seated (SlotAdvance leaves the
    // pool saturated), so a refill at or before the clock is not an
    // event; and if free lanes exist only behind a version-homogeneity
    // constraint, the constraining worker is necessarily executing, so a
    // completion event already covers progress.
    if (scheduler_->depth() > 0 && any_free_lane) {
      const double q = scheduler_->NextEligibleMs(clock_ms_);
      if (q > clock_ms_) consider(q);
    }
    return best;
  }
  for (const auto& [name, queue] : queues_) {
    if (queue.empty()) continue;
    double ready = 0.0;
    BatchPrefix(queue, &ready);
    const double t = std::max(
        ready, *std::min_element(worker_free_ms_.begin(), worker_free_ms_.end()));
    consider(t);
  }
  return best;
}

void Server::Drain() {
  while (true) {
    const double next = NextActionableMs();
    if (next < 0.0) break;
    AdvanceTo(std::max(clock_ms_, next));
  }
}

void Server::DispatchDue(double limit_ms, bool strict) {
  while (true) {
    double best_time = kInf;
    std::string best_model;
    for (const auto& [name, queue] : queues_) {
      if (queue.empty()) continue;
      double ready = 0.0;
      BatchPrefix(queue, &ready);
      const double t =
          std::max(ready, *std::min_element(worker_free_ms_.begin(),
                                            worker_free_ms_.end()));
      if (t < best_time) {  // map order breaks ties by model name
        best_time = t;
        best_model = name;
      }
    }
    if (best_model.empty()) break;
    if (strict ? best_time >= limit_ms : best_time > limit_ms) break;
    StageDispatch(&queues_[best_model], best_time);
  }
  FlushWave();
}

void Server::StageDispatch(std::deque<QueueEntry>* queue, double dispatch_ms) {
  double ready = 0.0;
  const int64_t n = BatchPrefix(*queue, &ready);
  const std::shared_ptr<ModelSnapshot>& snap = queue->front().snap;

  // Lowest-index earliest-free worker, so assignment is deterministic.
  int worker = 0;
  for (int w = 1; w < config_.workers; ++w) {
    if (worker_free_ms_[w] < worker_free_ms_[worker]) worker = w;
  }
  // A replica's staging buffers hold exactly one batch; if this (snapshot,
  // worker) pair is already staged in the pending wave, execute the wave
  // before overwriting them.
  for (const ExecTask& t : wave_) {
    if (t.snap.get() == snap.get() && t.worker == worker) {
      FlushWave();
      break;
    }
  }

  ExecTask task;
  task.snap = snap;  // copy before moving entries out of the queue
  task.worker = worker;
  task.batch_size = n;
  task.dispatch_ms = dispatch_ms;
  task.finish_ms = dispatch_ms + EstimateServiceMs(ScaledCost(), n);
  task.members.reserve(static_cast<size_t>(n));
  ModelSnapshot::Replica& rep = task.snap->replicas[worker];
  for (int64_t j = 0; j < n; ++j) {
    QueueEntry entry = std::move(queue->front());
    queue->pop_front();
    std::copy(entry.input.data(), entry.input.data() + task.snap->in_elems,
              rep.in_staging.data() + j * task.snap->in_elems);
    task.members.push_back(std::move(entry));
  }
  worker_free_ms_[worker] = task.finish_ms;
  ++batches_;
  DLSYS_COUNTER_ADD("serve.batches", 1);
  wave_.push_back(std::move(task));
}

void Server::FlushWave() {
  if (wave_.empty()) return;
  const int64_t n = static_cast<int64_t>(wave_.size());
  const int64_t chunks =
      std::min<int64_t>(n, static_cast<int64_t>(pool_.num_workers()) + 1);
  // Simulated-concurrent batches really run concurrently: each task owns
  // its (snapshot, worker) replica exclusively, so tasks share no engine
  // workspace. Bodies touch only their own task — completions_ and the
  // histograms are coordinator-side state, written after the join.
  pool_.RunParallel(
      [this](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) {
          ExecTask& t = wave_[i];
          ModelSnapshot::Replica& rep = t.snap->replicas[t.worker];
          Stopwatch sw;
          t.status = rep.engine->PredictInto(rep.in_staging.data(),
                                             t.batch_size,
                                             rep.out_staging.data());
          t.measured_service_ms = sw.Seconds() * 1000.0;
        }
      },
      0, n, chunks);

  for (ExecTask& task : wave_) {
    DLSYS_CHECK(task.status.ok(), "engine rejected a dispatched batch");
    const ModelSnapshot::Replica& rep = task.snap->replicas[task.worker];
    measured_.Record(task.measured_service_ms);
    DLSYS_HISTOGRAM_RECORD("serve.measured_service_ms",
                           task.measured_service_ms);
    for (size_t j = 0; j < task.members.size(); ++j) {
      QueueEntry& entry = task.members[j];
      Completion c;
      c.id = entry.id;
      c.rid = entry.trace_rid >= 0 ? entry.trace_rid : entry.id;
      c.model = task.snap->model;
      c.tenant = entry.tenant.empty() ? std::string("default") : entry.tenant;
      c.version = task.snap->version;
      c.arrival_ms = entry.arrival_ms;
      // The quota horizon was a prediction at enqueue time; DWFQ rotation
      // can serve before or after it, so clamp it into the realized
      // [arrival, dispatch] interval the decomposition splits.
      c.quota_open_ms = std::max(
          entry.arrival_ms, std::min(entry.quota_open_ms, task.dispatch_ms));
      c.dispatch_ms = task.dispatch_ms;
      c.finish_ms = task.finish_ms;
      c.deadline_ms = entry.deadline_ms;
      c.batch_size = task.batch_size;
      c.worker = task.worker;
      c.slot = entry.slot;
      c.deadline_missed = task.finish_ms > entry.deadline_ms;
      c.measured_service_ms = task.measured_service_ms;
      c.output = Tensor(task.snap->example_output_shape);
      const float* row =
          rep.out_staging.data() + static_cast<int64_t>(j) * task.snap->out_elems;
      std::copy(row, row + task.snap->out_elems, c.output.data());
      if (c.deadline_missed) {
        ++deadline_missed_;
        DLSYS_COUNTER_ADD("serve.deadline_missed", 1);
      }
      latency_.Record(c.finish_ms - c.arrival_ms);
      DLSYS_HISTOGRAM_RECORD("serve.latency_ms", c.finish_ms - c.arrival_ms);
      DLSYS_COUNTER_ADD("serve.completed", 1);
      // The request's whole life on the simulated-clock track, keyed by
      // rid: a queue umbrella (admission -> dispatch) with quota-wait and
      // slot-wait children splitting it at the quota horizon, the execute
      // span, then an instant respond marker. Span boundaries are emitted
      // in the decomposer's integer sim-ns quantization, so each span's
      // rendered duration equals its critical-path component bitwise, and
      // span/parent ids chain them under the fleet's root request span
      // (parentless when serving standalone). Together with the admit
      // instant from Submit, the exported Chrome trace reconstructs the
      // full admit -> quota -> slot -> execute -> respond path of any
      // single request.
#if DLSYS_OBS
      const int64_t arrival_ns = obs::SimNs(c.arrival_ms);
      const int64_t quota_open_ns = obs::SimNs(c.quota_open_ms);
      const int64_t dispatch_ns = obs::SimNs(c.dispatch_ms);
      const int64_t finish_ns = obs::SimNs(c.finish_ms);
      const int64_t root =
          entry.trace_rid >= 0 ? obs::RequestSpanId(c.rid) : -1;
      const int64_t queue_span = obs::QueueSpanId(c.rid);
      DLSYS_TRACE_EMIT_SIM_NS("serve.queue", "serve", arrival_ns,
                              dispatch_ns - arrival_ns, c.rid, queue_span,
                              root);
      DLSYS_TRACE_EMIT_SIM_NS(
          "serve.quota_wait", "serve", arrival_ns, quota_open_ns - arrival_ns,
          c.rid,
          obs::ComponentSpanId(c.rid, obs::PathComponent::kQuotaDelay),
          queue_span);
      DLSYS_TRACE_EMIT_SIM_NS(
          "serve.slot_wait", "serve", quota_open_ns,
          dispatch_ns - quota_open_ns, c.rid,
          obs::ComponentSpanId(c.rid, obs::PathComponent::kSlotWait),
          queue_span);
      DLSYS_TRACE_EMIT_SIM_NS(
          "serve.execute", "serve", dispatch_ns, finish_ns - dispatch_ns,
          c.rid, obs::ComponentSpanId(c.rid, obs::PathComponent::kExecute),
          root);
      DLSYS_TRACE_INSTANT_SIM("serve.respond", "serve", c.finish_ms, c.rid);
#endif
      ++served_[c.model][c.version];
      RecordTenantCompletion(c);
      completions_.push_back(std::move(c));
    }
  }
  wave_.clear();
}

void Server::RecordTenantCompletion(const Completion& completion) {
  TenantStats& ts = tenants_[completion.tenant];
  ++ts.completed;
  TenantCounterAdd(completion.tenant, "completed", 1);
  if (completion.deadline_missed) {
    ++ts.deadline_missed;
    TenantCounterAdd(completion.tenant, "deadline_missed", 1);
  }
  const double latency = completion.finish_ms - completion.arrival_ms;
  ts.latency.Record(latency);
  TenantLatencyRecord(completion.tenant, latency);
}

void Server::SlotAdvance(double limit_ms, bool strict) {
  // Seat anything already eligible at the current clock (usually a no-op:
  // every public mutation leaves the pool saturated).
  double cursor = clock_ms_;
  SlotRefillAndStart(cursor);
  while (true) {
    // Next event: the earliest in-flight step completion, or the earliest
    // strictly-future quota refill that could seat a queued request.
    double next = kInf;
    bool any_free_lane = false;
    for (int w = 0; w < config_.workers; ++w) {
      if (slots_->ExecutingCount(w) > 0) {
        next = std::min(next, worker_free_ms_[w]);
      }
      if (slots_->FreeLanes(w) > 0) any_free_lane = true;
    }
    if (scheduler_->depth() > 0 && any_free_lane) {
      const double q = scheduler_->NextEligibleMs(cursor);
      if (q > cursor) next = std::min(next, q);
    }
    if (next == kInf) break;
    if (strict ? next >= limit_ms : next > limit_ms) break;
    cursor = std::max(cursor, next);
    // Complete every step due at the event time; freed lanes refill from
    // the scheduler at once and idle workers depart immediately — no
    // drain barrier between steps.
    for (int w = 0; w < config_.workers; ++w) {
      if (slots_->ExecutingCount(w) > 0 && worker_free_ms_[w] <= cursor) {
        slots_->CompleteStep(w, cursor);
      }
    }
    SlotRefillAndStart(cursor);
  }
  FlushWave();
}

int Server::SlotRefillAndStart(double now_ms) {
  int placed_total = 0;
  while (true) {
    int placed = 0;
    // Fill workers in service order — the worker whose next step departs
    // soonest first, lowest index on ties — so a request the scheduler
    // releases lands where it completes earliest.
    std::vector<int> order(static_cast<size_t>(config_.workers));
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
      return std::max(worker_free_ms_[a], now_ms) <
             std::max(worker_free_ms_[b], now_ms);
    });
    for (int w : order) {
      while (slots_->FreeLanes(w) > 0) {
        // A worker's pending lanes stay version-homogeneous: once a lane
        // is loaded, further loads must match its snapshot. An empty
        // worker accepts anything.
        TenantScheduler::SnapFilter filter;
        if (!loaded_[static_cast<size_t>(w)].empty()) {
          const ModelSnapshot* pending =
              loaded_[static_cast<size_t>(w)].front().snap.get();
          filter = [pending](const ModelSnapshot* s) { return s == pending; };
        }
        std::optional<SlotRequest> pick = scheduler_->PickNext(now_ms, filter);
        if (!pick.has_value()) break;
        const int slot = slots_->Load(w, pick->id, now_ms);
        QueueEntry entry;
        entry.id = pick->id;
        entry.trace_rid = pick->trace_rid;
        entry.tenant = std::move(pick->tenant);
        entry.slot = slot;
        entry.arrival_ms = pick->arrival_ms;
        entry.quota_open_ms = pick->quota_open_ms;
        entry.deadline_ms = pick->deadline_ms;
        entry.snap = std::move(pick->snap);
        entry.input = std::move(pick->input);
        loaded_[static_cast<size_t>(w)].push_back(std::move(entry));
        ++placed;
        ++placed_total;
      }
    }
    int started = 0;
    for (int w = 0; w < config_.workers; ++w) {
      if (slots_->ExecutingCount(w) == 0 &&
          !loaded_[static_cast<size_t>(w)].empty()) {
        SlotStartStep(w, now_ms);
        ++started;
      }
    }
    // A departed step clears its worker's version constraint, which can
    // unlock further loads — loop until the pool is saturated.
    if (placed == 0 && started == 0) break;
  }
  return placed_total;
}

void Server::SlotStartStep(int worker, double now_ms) {
  std::vector<QueueEntry>& members = loaded_[static_cast<size_t>(worker)];
  const int n = slots_->BeginStep(worker, now_ms);
  DLSYS_CHECK(n == static_cast<int>(members.size()),
              "loaded payloads out of sync with loaded lanes");
  const std::shared_ptr<ModelSnapshot>& snap = members.front().snap;
  // A replica's staging buffers hold exactly one batch; if this (snapshot,
  // worker) pair is already staged in the pending wave, execute the wave
  // before overwriting them.
  for (const ExecTask& t : wave_) {
    if (t.snap.get() == snap.get() && t.worker == worker) {
      FlushWave();
      break;
    }
  }

  ExecTask task;
  task.snap = snap;
  task.worker = worker;
  task.batch_size = n;
  task.dispatch_ms = now_ms;
  task.finish_ms = now_ms + EstimateServiceMs(ScaledCost(), n);
  task.members.reserve(members.size());
  ModelSnapshot::Replica& rep = task.snap->replicas[worker];
  for (size_t j = 0; j < members.size(); ++j) {
    std::copy(members[j].input.data(),
              members[j].input.data() + task.snap->in_elems,
              rep.in_staging.data() + static_cast<int64_t>(j) *
                                          task.snap->in_elems);
    task.members.push_back(std::move(members[j]));
  }
  members.clear();
  worker_free_ms_[worker] = task.finish_ms;
  ++batches_;
  DLSYS_COUNTER_ADD("serve.batches", 1);
  wave_.push_back(std::move(task));
}

MetricsReport Server::metrics() const {
  MetricsReport report;
  report.Set("serve.offered", static_cast<double>(offered_));
  report.Set("serve.admitted", static_cast<double>(admitted_));
  report.Set("serve.shed.queue_full", static_cast<double>(shed_queue_full_));
  report.Set("serve.shed.deadline_infeasible",
             static_cast<double>(shed_deadline_));
  report.Set("serve.shed.draining", static_cast<double>(shed_draining_));
  report.Set("serve.dropped_queued", static_cast<double>(dropped_queued_));
  report.Set("serve.no_such_model", static_cast<double>(no_such_model_));
  report.Set("serve.deadline_missed", static_cast<double>(deadline_missed_));
  report.Set("serve.batches", static_cast<double>(batches_));
  report.Set("serve.swaps", static_cast<double>(registry_->swap_count()));
  for (const auto& [model, by_version] : served_) {
    for (const auto& [version, count] : by_version) {
      report.Set("serve." + model + ".served_v" + std::to_string(version),
                 static_cast<double>(count));
    }
  }
  latency_.ReportInto(&report, "serve.latency");
  measured_.ReportInto(&report, "serve.measured");
  for (const auto& [name, ts] : tenants_) {
    const std::string prefix = "serve.tenant." + name;
    report.Set(prefix + ".offered", static_cast<double>(ts.offered));
    report.Set(prefix + ".admitted", static_cast<double>(ts.admitted));
    report.Set(prefix + ".completed", static_cast<double>(ts.completed));
    report.Set(prefix + ".deadline_missed",
               static_cast<double>(ts.deadline_missed));
    report.Set(prefix + ".shed.queue_full",
               static_cast<double>(ts.shed_queue_full));
    report.Set(prefix + ".shed.deadline_infeasible",
               static_cast<double>(ts.shed_deadline));
    report.Set(prefix + ".shed.draining",
               static_cast<double>(ts.shed_draining));
    ts.latency.ReportInto(&report, prefix + ".latency");
  }
  return report;
}

}  // namespace dlsys
