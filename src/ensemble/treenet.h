#ifndef DLSYS_ENSEMBLE_TREENET_H_
#define DLSYS_ENSEMBLE_TREENET_H_

#include <cstdint>
#include <vector>

#include "src/core/metrics.h"
#include "src/core/status.h"
#include "src/data/dataset.h"
#include "src/nn/sequential.h"

/// \file treenet.h
/// \brief TreeNets (tutorial Section 2.1, Lee et al.): an ensemble that
/// shares a trunk of early layers and branches into per-member heads.
///
/// The shared trunk is trained once with gradients summed from all heads,
/// so the ensemble costs roughly (trunk + k heads) instead of k full
/// networks in both time and parameters. Heads diverge because they are
/// initialized independently.

namespace dlsys {

/// \brief A shared-trunk, multi-head ensemble network.
class TreeNet {
 public:
  /// Constructs from a trunk and \p k structurally identical heads built
  /// by cloning \p head_template (each re-initialized independently).
  TreeNet(Sequential trunk, const Sequential& head_template, int64_t k,
          uint64_t seed);

  /// \brief Number of heads.
  int64_t num_heads() const { return static_cast<int64_t>(heads_.size()); }
  /// \brief Total parameter count (trunk + all heads).
  int64_t NumParams();
  /// \brief Parameter bytes (trunk counted once — the TreeNets saving).
  int64_t ModelBytes() { return NumParams() * 4; }

  /// \brief One joint training step on a batch; returns mean head loss.
  double TrainStep(const Dataset& batch, double lr);

  /// \brief Averaged-probability prediction over all heads.
  Tensor PredictProbs(const Tensor& x);
  /// \brief Accuracy of the averaged prediction.
  double Accuracy(const Dataset& data);

 private:
  Sequential trunk_;
  std::vector<Sequential> heads_;
};

/// \brief Trains a TreeNet for \p epochs; returns metrics (train time,
/// model bytes, peak memory).
MetricsReport TrainTreeNet(TreeNet* net, const Dataset& data, int64_t epochs,
                           int64_t batch_size, double lr, uint64_t seed);

}  // namespace dlsys

#endif  // DLSYS_ENSEMBLE_TREENET_H_
