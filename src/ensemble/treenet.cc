#include "src/ensemble/treenet.h"

#include "src/nn/loss.h"
#include "src/optim/optimizer.h"
#include "src/tensor/ops.h"

namespace dlsys {

TreeNet::TreeNet(Sequential trunk, const Sequential& head_template, int64_t k,
                 uint64_t seed)
    : trunk_(std::move(trunk)) {
  DLSYS_CHECK(k > 0, "TreeNet needs at least one head");
  for (int64_t i = 0; i < k; ++i) {
    Sequential head = head_template.Clone();
    Rng rng(seed + static_cast<uint64_t>(i) * 7919ULL);
    head.Init(&rng);  // independent head initializations drive diversity
    heads_.push_back(std::move(head));
  }
}

int64_t TreeNet::NumParams() {
  int64_t n = trunk_.NumParams();
  for (auto& h : heads_) n += h.NumParams();
  return n;
}

double TreeNet::TrainStep(const Dataset& batch, double lr) {
  trunk_.ZeroGrads();
  Tensor features = trunk_.Forward(batch.x, CacheMode::kCache);
  Tensor trunk_grad(features.shape());
  double mean_loss = 0.0;
  for (auto& head : heads_) {
    head.ZeroGrads();
    Tensor logits = head.Forward(features, CacheMode::kCache);
    LossGrad lg = SoftmaxCrossEntropy(logits, batch.y);
    mean_loss += lg.loss;
    Tensor g = head.Backward(lg.grad);
    Axpy(1.0f, g, &trunk_grad);
    // Per-head SGD step.
    Sgd opt(lr);
    opt.Step(head.Params(), head.Grads());
  }
  // Average the head gradients into the trunk so trunk updates don't
  // scale with head count.
  Scale(1.0f / static_cast<float>(heads_.size()), &trunk_grad);
  trunk_.Backward(trunk_grad);
  Sgd opt(lr);
  opt.Step(trunk_.Params(), trunk_.Grads());
  return mean_loss / static_cast<double>(heads_.size());
}

Tensor TreeNet::PredictProbs(const Tensor& x) {
  Tensor features = trunk_.Forward(x, CacheMode::kNoCache);
  Tensor mean;
  for (auto& head : heads_) {
    Tensor probs = RowSoftmax(head.Forward(features, CacheMode::kNoCache));
    if (mean.empty()) {
      mean = std::move(probs);
    } else {
      Axpy(1.0f, probs, &mean);
    }
  }
  Scale(1.0f / static_cast<float>(heads_.size()), &mean);
  return mean;
}

double TreeNet::Accuracy(const Dataset& data) {
  if (data.size() == 0) return 0.0;
  int64_t hits = 0;
  for (BatchIterator it(data, 256); !it.Done(); it.Next()) {
    Dataset batch = it.Get();
    std::vector<int64_t> pred = ArgMaxRows(PredictProbs(batch.x));
    for (size_t i = 0; i < batch.y.size(); ++i) {
      if (pred[i] == batch.y[i]) ++hits;
    }
  }
  return static_cast<double>(hits) / static_cast<double>(data.size());
}

MetricsReport TrainTreeNet(TreeNet* net, const Dataset& data, int64_t epochs,
                           int64_t batch_size, double lr, uint64_t seed) {
  MetricsReport report;
  Stopwatch watch;
  MemoryTracker::Global().ResetPeak();
  Rng shuffle_rng(seed);
  Dataset shuffled = data;
  double last_loss = 0.0;
  for (int64_t epoch = 0; epoch < epochs; ++epoch) {
    ShuffleDataset(&shuffled, &shuffle_rng);
    for (BatchIterator it(shuffled, batch_size); !it.Done(); it.Next()) {
      last_loss = net->TrainStep(it.Get(), lr);
    }
  }
  report.Set(metric::kTrainSeconds, watch.Seconds());
  report.Set(metric::kLoss, last_loss);
  report.Set(metric::kModelBytes, static_cast<double>(net->ModelBytes()));
  report.Set(metric::kPeakBytes,
             static_cast<double>(MemoryTracker::Global().peak_bytes()));
  return report;
}

}  // namespace dlsys
