#include "src/ensemble/ensemble.h"

#include "src/nn/layers.h"
#include "src/optim/optimizer.h"
#include "src/optim/schedule.h"
#include "src/tensor/ops.h"

namespace dlsys {

Tensor Ensemble::PredictProbs(const Tensor& x) {
  DLSYS_CHECK(!members_.empty(), "empty ensemble");
  Tensor mean;
  for (auto& m : members_) {
    Tensor probs = RowSoftmax(m.Forward(x, CacheMode::kNoCache));
    if (mean.empty()) {
      mean = std::move(probs);
    } else {
      Axpy(1.0f, probs, &mean);
    }
  }
  Scale(1.0f / static_cast<float>(members_.size()), &mean);
  return mean;
}

double Ensemble::Accuracy(const Dataset& data) {
  if (data.size() == 0) return 0.0;
  int64_t hits = 0;
  for (BatchIterator it(data, 256); !it.Done(); it.Next()) {
    Dataset batch = it.Get();
    Tensor probs = PredictProbs(batch.x);
    std::vector<int64_t> pred = ArgMaxRows(probs);
    for (size_t i = 0; i < batch.y.size(); ++i) {
      if (pred[i] == batch.y[i]) ++hits;
    }
  }
  return static_cast<double>(hits) / static_cast<double>(data.size());
}

int64_t Ensemble::ModelBytes() const {
  int64_t bytes = 0;
  for (const auto& m : members_) bytes += m.ModelBytes();
  return bytes;
}

double Ensemble::MeasureInferenceSeconds(const Dataset& data) {
  Stopwatch watch;
  for (BatchIterator it(data, 256); !it.Done(); it.Next()) {
    Dataset batch = it.Get();
    PredictProbs(batch.x);
  }
  return watch.Seconds();
}

Result<EnsembleRun> TrainFullEnsemble(const MemberBuilder& builder, int64_t k,
                                      const Dataset& data,
                                      const TrainConfig& config, double lr,
                                      uint64_t seed) {
  if (k <= 0) return Status::InvalidArgument("ensemble size must be positive");
  EnsembleRun out;
  Stopwatch watch;
  MemoryTracker::Global().ResetPeak();
  for (int64_t i = 0; i < k; ++i) {
    Sequential net = builder(i);
    Rng rng(seed + static_cast<uint64_t>(i) * 1000003ULL);
    net.Init(&rng);
    Sgd opt(lr, 0.9);
    TrainConfig member_config = config;
    member_config.shuffle_seed = seed + static_cast<uint64_t>(i) * 17ULL;
    Train(&net, &opt, data, member_config);
    out.ensemble.Add(std::move(net));
  }
  out.report.Set(metric::kTrainSeconds, watch.Seconds());
  out.report.Set(metric::kModelBytes,
                 static_cast<double>(out.ensemble.ModelBytes()));
  out.report.Set(metric::kPeakBytes,
                 static_cast<double>(MemoryTracker::Global().peak_bytes()));
  return out;
}

Result<EnsembleRun> TrainSnapshotEnsemble(const MemberBuilder& builder,
                                          int64_t k,
                                          int64_t epochs_per_cycle,
                                          const Dataset& data,
                                          int64_t batch_size, double lr0,
                                          uint64_t seed) {
  if (k <= 0) return Status::InvalidArgument("ensemble size must be positive");
  if (epochs_per_cycle <= 0) {
    return Status::InvalidArgument("epochs_per_cycle must be positive");
  }
  EnsembleRun out;
  Stopwatch watch;
  MemoryTracker::Global().ResetPeak();
  Sequential net = builder(0);
  Rng rng(seed);
  net.Init(&rng);
  Sgd opt(lr0, 0.9);
  const int64_t steps_per_epoch = (data.size() + batch_size - 1) / batch_size;
  const int64_t cycle_steps = steps_per_epoch * epochs_per_cycle;
  CosineCyclicLr schedule(lr0, cycle_steps);
  TrainConfig config;
  config.epochs = k * epochs_per_cycle;
  config.batch_size = batch_size;
  config.shuffle_seed = seed;
  config.schedule = &schedule;
  config.on_step = [&](int64_t step, int64_t, double) {
    if (schedule.EndOfCycle(step)) {
      out.ensemble.Add(net.Clone());
    }
  };
  Train(&net, &opt, data, config);
  // Guard against rounding: if fewer than k snapshots fired, add final.
  while (out.ensemble.size() < k) out.ensemble.Add(net.Clone());
  out.report.Set(metric::kTrainSeconds, watch.Seconds());
  out.report.Set(metric::kModelBytes,
                 static_cast<double>(out.ensemble.ModelBytes()));
  out.report.Set(metric::kPeakBytes,
                 static_cast<double>(MemoryTracker::Global().peak_bytes()));
  return out;
}

Result<EnsembleRun> TrainFastGeometricEnsemble(
    const MemberBuilder& builder, int64_t k, int64_t base_epochs,
    int64_t cycle_epochs, const Dataset& data, int64_t batch_size,
    double base_lr, double explore_lr_hi, double explore_lr_lo,
    uint64_t seed) {
  if (k <= 0) return Status::InvalidArgument("ensemble size must be positive");
  if (base_epochs <= 0 || cycle_epochs <= 0) {
    return Status::InvalidArgument("epoch counts must be positive");
  }
  if (explore_lr_hi < explore_lr_lo || explore_lr_lo <= 0.0) {
    return Status::InvalidArgument("need explore_lr_hi >= explore_lr_lo > 0");
  }
  EnsembleRun out;
  Stopwatch watch;
  MemoryTracker::Global().ResetPeak();

  // Phase 1: converge the base model.
  Sequential net = builder(0);
  Rng rng(seed);
  net.Init(&rng);
  Sgd opt(base_lr, 0.9);
  TrainConfig base_config;
  base_config.epochs = base_epochs;
  base_config.batch_size = batch_size;
  base_config.shuffle_seed = seed;
  Train(&net, &opt, data, base_config);
  out.ensemble.Add(net.Clone());  // the converged base is member 0

  // Phase 2: k-1 short triangular exploration cycles; capture at each
  // mid-cycle low point.
  if (k > 1) {
    const int64_t steps_per_epoch =
        (data.size() + batch_size - 1) / batch_size;
    const int64_t cycle_steps = steps_per_epoch * cycle_epochs;
    TriangularCyclicLr schedule(explore_lr_hi, explore_lr_lo, cycle_steps);
    TrainConfig explore;
    explore.epochs = (k - 1) * cycle_epochs;
    explore.batch_size = batch_size;
    explore.shuffle_seed = seed + 1;
    explore.schedule = &schedule;
    explore.on_step = [&](int64_t step, int64_t, double) {
      if (schedule.MidCycle(step) && out.ensemble.size() < k) {
        out.ensemble.Add(net.Clone());
      }
    };
    Train(&net, &opt, data, explore);
  }
  while (out.ensemble.size() < k) out.ensemble.Add(net.Clone());

  out.report.Set(metric::kTrainSeconds, watch.Seconds());
  out.report.Set(metric::kModelBytes,
                 static_cast<double>(out.ensemble.ModelBytes()));
  out.report.Set(metric::kPeakBytes,
                 static_cast<double>(MemoryTracker::Global().peak_bytes()));
  return out;
}

Status HatchParameters(Sequential* src, Sequential* dst) {
  if (src->size() != dst->size()) {
    return Status::InvalidArgument("hatch: layer count mismatch");
  }
  for (int64_t i = 0; i < src->size(); ++i) {
    auto* src_dense = dynamic_cast<Dense*>(src->layer(i));
    auto* dst_dense = dynamic_cast<Dense*>(dst->layer(i));
    if ((src_dense == nullptr) != (dst_dense == nullptr)) {
      return Status::InvalidArgument("hatch: layer type mismatch at " +
                                     std::to_string(i));
    }
    if (src_dense == nullptr) continue;
    const int64_t in = std::min(src_dense->in_features(),
                                dst_dense->in_features());
    const int64_t out = std::min(src_dense->out_features(),
                                 dst_dense->out_features());
    const int64_t src_out = src_dense->out_features();
    const int64_t dst_out = dst_dense->out_features();
    for (int64_t r = 0; r < in; ++r) {
      for (int64_t c = 0; c < out; ++c) {
        dst_dense->weight()[r * dst_out + c] =
            src_dense->weight()[r * src_out + c];
      }
    }
    for (int64_t c = 0; c < out; ++c) {
      dst_dense->bias()[c] = src_dense->bias()[c];
    }
  }
  return Status::OK();
}

Result<EnsembleRun> TrainMotherNets(int64_t in, int64_t out_classes,
                                    const std::vector<int64_t>& member_hidden,
                                    int64_t mother_epochs,
                                    int64_t finetune_epochs,
                                    const Dataset& data, int64_t batch_size,
                                    double lr, uint64_t seed) {
  if (member_hidden.empty()) {
    return Status::InvalidArgument("no ensemble members requested");
  }
  EnsembleRun run;
  Stopwatch watch;
  MemoryTracker::Global().ResetPeak();

  // The mother is the structural intersection: the narrowest member.
  int64_t mother_hidden = member_hidden[0];
  for (int64_t h : member_hidden) mother_hidden = std::min(mother_hidden, h);
  Sequential mother = MakeMlp(in, {mother_hidden}, out_classes);
  Rng rng(seed);
  mother.Init(&rng);
  Sgd mother_opt(lr, 0.9);
  TrainConfig mother_config;
  mother_config.epochs = mother_epochs;
  mother_config.batch_size = batch_size;
  mother_config.shuffle_seed = seed;
  Train(&mother, &mother_opt, data, mother_config);

  // Hatch each member from the mother and finetune briefly.
  for (size_t m = 0; m < member_hidden.size(); ++m) {
    Sequential member = MakeMlp(in, {member_hidden[m]}, out_classes);
    Rng member_rng(seed + 31ULL * (m + 1));
    member.Init(&member_rng);
    // Start the expansion weights near zero so the hatched function is
    // close to the mother's (function-preserving-ish initialization).
    for (Tensor* p : member.Params()) {
      Scale(0.05f, p);
    }
    DLSYS_RETURN_NOT_OK(HatchParameters(&mother, &member));
    Sgd opt(lr * 0.5, 0.9);
    TrainConfig finetune;
    finetune.epochs = finetune_epochs;
    finetune.batch_size = batch_size;
    finetune.shuffle_seed = seed + 1000ULL * (m + 1);
    Train(&member, &opt, data, finetune);
    run.ensemble.Add(std::move(member));
  }
  run.report.Set(metric::kTrainSeconds, watch.Seconds());
  run.report.Set(metric::kModelBytes,
                 static_cast<double>(run.ensemble.ModelBytes()));
  run.report.Set(metric::kPeakBytes,
                 static_cast<double>(MemoryTracker::Global().peak_bytes()));
  return run;
}

}  // namespace dlsys
