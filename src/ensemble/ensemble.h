#ifndef DLSYS_ENSEMBLE_ENSEMBLE_H_
#define DLSYS_ENSEMBLE_ENSEMBLE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/core/metrics.h"
#include "src/core/status.h"
#include "src/data/dataset.h"
#include "src/nn/sequential.h"
#include "src/nn/train.h"

/// \file ensemble.h
/// \brief Deep ensemble training strategies (tutorial Section 2.1).
///
/// The tutorial contrasts the baseline — train every member from scratch —
/// with accelerated strategies: Snapshot Ensembles (one training run with
/// a cyclic learning rate, capturing a member at the end of each cycle),
/// and MotherNets/TreeNets (train shared structure once, then hatch and
/// finetune the members). All strategies produce an Ensemble whose
/// quality/resource metrics benches compare.

namespace dlsys {

/// \brief A set of trained member networks with averaged-probability
/// inference.
class Ensemble {
 public:
  /// \brief Adds a member (takes ownership by move).
  void Add(Sequential member) { members_.push_back(std::move(member)); }
  /// \brief Number of members.
  int64_t size() const { return static_cast<int64_t>(members_.size()); }
  /// \brief Member \p i.
  Sequential& member(int64_t i) { return members_[static_cast<size_t>(i)]; }

  /// \brief Mean of member softmax outputs for a feature batch.
  Tensor PredictProbs(const Tensor& x);
  /// \brief Accuracy of the averaged prediction on \p data.
  double Accuracy(const Dataset& data);
  /// \brief Total parameter bytes across members.
  int64_t ModelBytes() const;
  /// \brief Seconds to run PredictProbs over \p data once.
  double MeasureInferenceSeconds(const Dataset& data);

 private:
  std::vector<Sequential> members_;
};

/// \brief Builds a fresh, uninitialized member network; strategies call
/// this once per member (index passed for heterogeneous ensembles).
using MemberBuilder = std::function<Sequential(int64_t member_index)>;

/// \brief Result of an ensemble training strategy.
struct EnsembleRun {
  Ensemble ensemble;
  MetricsReport report;  ///< train_seconds, model_bytes, peak_bytes
};

/// \brief Baseline: trains \p k members independently from scratch with
/// different init seeds.
Result<EnsembleRun> TrainFullEnsemble(const MemberBuilder& builder, int64_t k,
                                      const Dataset& data,
                                      const TrainConfig& config, double lr,
                                      uint64_t seed);

/// \brief Snapshot Ensembles: trains ONE network for k cycles of a
/// cosine-annealed cyclic rate, snapshotting the model at each cycle end.
///
/// Total epochs = k * epochs_per_cycle — roughly the budget of training a
/// single model, not k models.
Result<EnsembleRun> TrainSnapshotEnsemble(const MemberBuilder& builder,
                                          int64_t k,
                                          int64_t epochs_per_cycle,
                                          const Dataset& data,
                                          int64_t batch_size, double lr0,
                                          uint64_t seed);

/// \brief Fast Geometric Ensembles (Garipov et al.): converges a base
/// model first, then explores along low-loss curves with short
/// triangular learning-rate cycles, capturing a member at each
/// mid-cycle low point. Cheaper than snapshots per extra member because
/// exploration cycles are short.
Result<EnsembleRun> TrainFastGeometricEnsemble(
    const MemberBuilder& builder, int64_t k, int64_t base_epochs,
    int64_t cycle_epochs, const Dataset& data, int64_t batch_size,
    double base_lr, double explore_lr_hi, double explore_lr_lo,
    uint64_t seed);

/// \brief MotherNets-style: trains a small shared "mother" MLP first,
/// hatches its parameters into each (wider) member, then finetunes each
/// member briefly.
///
/// \p member_hidden lists each member's hidden width; the mother uses the
/// smallest. Members are two-layer MLPs (in -> hidden -> out). Hatching
/// copies the mother's weights into the top-left blocks of the member's
/// weight matrices.
Result<EnsembleRun> TrainMotherNets(int64_t in, int64_t out,
                                    const std::vector<int64_t>& member_hidden,
                                    int64_t mother_epochs,
                                    int64_t finetune_epochs,
                                    const Dataset& data, int64_t batch_size,
                                    double lr, uint64_t seed);

/// \brief Copies overlapping Dense blocks from \p src into \p dst
/// (both must be alternating Dense/ReLU MLPs with equal depth).
/// Coordinates of \p dst outside the overlap keep their initialization.
Status HatchParameters(Sequential* src, Sequential* dst);

}  // namespace dlsys

#endif  // DLSYS_ENSEMBLE_ENSEMBLE_H_
