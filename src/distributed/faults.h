#ifndef DLSYS_DISTRIBUTED_FAULTS_H_
#define DLSYS_DISTRIBUTED_FAULTS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/status.h"

/// \file faults.h
/// \brief Deterministic fault injection for the simulated cluster.
///
/// Real distributed training spends much of its complexity budget on
/// crashes, stragglers, and lost messages. This module injects those
/// faults into the simulated cluster *reproducibly*: every fault decision
/// is a pure function of (plan seed, worker, round, ...), computed by a
/// stateless counter-based hash rather than a shared stateful generator.
/// The same (ClusterConfig, FaultPlan) pair therefore replays the exact
/// same fault trace bit-for-bit, independent of evaluation order and of
/// DLSYS_THREADS — the repo's determinism contract extends to failures.

namespace dlsys {

/// \brief A scheduled crash: \p worker dies at the start of \p round.
///
/// Each event fires at most once per run: after a recovery has consumed
/// it, replayed rounds do not re-trigger it (the restarted worker is a
/// fresh incarnation).
struct CrashEvent {
  int64_t round = 0;
  int64_t worker = 0;
};

/// \brief A persistent straggler: \p worker computes \p slowdown times
/// slower than the baseline (slowdown >= 1).
struct StragglerSpec {
  int64_t worker = 0;
  double slowdown = 1.0;
};

/// \brief Declarative, seed-replayable fault schedule for one run.
struct FaultPlan {
  uint64_t seed = 0;                    ///< seeds all probabilistic draws
  std::vector<CrashEvent> crashes;      ///< deterministic scheduled crashes
  double crash_prob = 0.0;              ///< extra per-(worker, round) crash p
  std::vector<StragglerSpec> stragglers;
  double drop_prob = 0.0;               ///< per-message-attempt loss p

  /// \brief True iff the plan injects no faults at all.
  bool Empty() const {
    return crashes.empty() && crash_prob == 0.0 && stragglers.empty() &&
           drop_prob == 0.0;
  }
};

/// \brief Validates \p plan against a cluster of \p workers workers:
/// probabilities in [0, 1], worker indices in range, slowdowns >= 1,
/// crash rounds non-negative. Returns InvalidArgument otherwise.
Status ValidateFaultPlan(const FaultPlan& plan, int64_t workers);

/// \brief Renders \p plan as a line-oriented text form ("seed <n>",
/// "crash <round> <worker>", ...) that ParseFaultPlan restores exactly.
/// Probabilities and slowdowns round-trip bit-for-bit (hex floats), so an
/// injector rebuilt from the serialized plan reproduces every draw —
/// the property that makes mid-run checkpoint/restore of a chaos run
/// byte-stable (test_fault_tolerance locks it in).
std::string SerializeFaultPlan(const FaultPlan& plan);

/// \brief Parses SerializeFaultPlan output back into a plan. Returns
/// InvalidArgument on unknown directives or malformed fields; the
/// result is *not* re-validated against a worker count (callers run
/// ValidateFaultPlan with their own cluster size).
Result<FaultPlan> ParseFaultPlan(const std::string& text);

/// \brief Answers fault queries for one run, deterministically.
///
/// Probabilistic draws hash (seed, query coordinates) so two injectors
/// built from the same plan agree on every answer regardless of query
/// order. The only mutable state is the consumed-flag on scheduled crash
/// events, advanced explicitly via ConsumeCrash() by the recovery logic.
class FaultInjector {
 public:
  /// Builds an injector for \p workers workers. \p plan must have passed
  /// ValidateFaultPlan.
  FaultInjector(const FaultPlan& plan, int64_t workers);

  /// \brief True iff the underlying plan injects no faults.
  bool Empty() const { return plan_.Empty(); }

  /// \brief Does \p worker crash at the start of \p round?
  ///
  /// \p generation counts completed crash-recoveries: replays after a
  /// rollback pass a higher generation so probabilistic crash draws are
  /// fresh (a restarted worker does not deterministically re-crash at the
  /// same point), while scheduled events fire only while unconsumed.
  bool CrashesAt(int64_t worker, int64_t round, int64_t generation) const;

  /// \brief Marks any scheduled crash event for (worker, round) consumed.
  void ConsumeCrash(int64_t worker, int64_t round);

  /// \brief Compute-time multiplier of \p worker (1.0 = healthy).
  double Slowdown(int64_t worker) const;

  /// \brief Failed transmission attempts before message \p message from
  /// \p worker at \p round gets through, capped at \p max_retries (the
  /// capped attempt always succeeds, so messages are eventually delivered
  /// and the cost shows up as retransmit time).
  int64_t FailedAttempts(int64_t worker, int64_t round, int64_t message,
                         int64_t max_retries) const;

 private:
  /// Stateless uniform draw in [0, 1) from the plan seed and coordinates.
  double UnitDraw(uint64_t tag, uint64_t a, uint64_t b, uint64_t c) const;

  FaultPlan plan_;
  std::vector<double> slowdown_;   ///< per worker, from plan_.stragglers
  std::vector<bool> consumed_;     ///< parallel to plan_.crashes
};

}  // namespace dlsys

#endif  // DLSYS_DISTRIBUTED_FAULTS_H_
