#include "src/distributed/compressor.h"

#include <algorithm>
#include <cmath>

namespace dlsys {

CompressedGrad IdentityCompressor::Compress(const std::vector<float>& grad) {
  CompressedGrad out;
  out.values = grad;
  out.wire_bytes = static_cast<int64_t>(grad.size()) * 4;
  return out;
}

TopKCompressor::TopKCompressor(double keep_fraction, bool error_feedback)
    : keep_fraction_(keep_fraction), error_feedback_(error_feedback) {
  DLSYS_CHECK(keep_fraction > 0.0 && keep_fraction <= 1.0,
              "keep_fraction must be in (0, 1]");
}

CompressedGrad TopKCompressor::Compress(const std::vector<float>& grad) {
  const size_t n = grad.size();
  if (error_feedback_ && residual_.size() != n) residual_.assign(n, 0.0f);
  std::vector<float> effective = grad;
  if (error_feedback_) {
    for (size_t i = 0; i < n; ++i) effective[i] += residual_[i];
  }
  const int64_t keep = std::max<int64_t>(
      1, static_cast<int64_t>(std::llround(keep_fraction_ * n)));
  // Threshold = magnitude of the keep-th largest coordinate.
  std::vector<float> mags(n);
  for (size_t i = 0; i < n; ++i) mags[i] = std::abs(effective[i]);
  std::vector<float> sorted = mags;
  std::nth_element(sorted.begin(), sorted.begin() + (keep - 1), sorted.end(),
                   std::greater<float>());
  const float threshold = sorted[static_cast<size_t>(keep - 1)];

  CompressedGrad out;
  out.values.assign(n, 0.0f);
  int64_t sent = 0;
  for (size_t i = 0; i < n; ++i) {
    if (mags[i] >= threshold && sent < keep) {
      out.values[i] = effective[i];
      ++sent;
      if (error_feedback_) residual_[i] = 0.0f;
    } else if (error_feedback_) {
      residual_[i] = effective[i];
    }
  }
  out.wire_bytes = sent * 8;  // 4-byte value + 4-byte index
  return out;
}

std::string TopKCompressor::name() const {
  return "topk(" + std::to_string(keep_fraction_) + ")";
}

QuantizingCompressor::QuantizingCompressor(int64_t bits, bool error_feedback)
    : bits_(bits), error_feedback_(error_feedback) {
  DLSYS_CHECK(bits >= 1 && bits <= 16, "bits must be in [1, 16]");
}

CompressedGrad QuantizingCompressor::Compress(const std::vector<float>& grad) {
  const size_t n = grad.size();
  if (error_feedback_ && residual_.size() != n) residual_.assign(n, 0.0f);
  std::vector<float> effective = grad;
  if (error_feedback_) {
    for (size_t i = 0; i < n; ++i) effective[i] += residual_[i];
  }
  float lo = effective.empty() ? 0.0f : effective[0];
  float hi = lo;
  for (float v : effective) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  if (hi == lo) hi = lo + 1e-12f;
  const int64_t levels = int64_t{1} << bits_;
  const float step = (hi - lo) / static_cast<float>(levels - 1);
  CompressedGrad out;
  out.values.resize(n);
  for (size_t i = 0; i < n; ++i) {
    int64_t code =
        static_cast<int64_t>(std::lround((effective[i] - lo) / step));
    code = std::clamp<int64_t>(code, 0, levels - 1);
    out.values[i] = lo + step * static_cast<float>(code);
    if (error_feedback_) residual_[i] = effective[i] - out.values[i];
  }
  out.wire_bytes = (static_cast<int64_t>(n) * bits_ + 7) / 8 + 8;
  return out;
}

std::string QuantizingCompressor::name() const {
  return "quantize(" + std::to_string(bits_) + "bit)";
}

}  // namespace dlsys
