#ifndef DLSYS_DISTRIBUTED_CLUSTER_H_
#define DLSYS_DISTRIBUTED_CLUSTER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/core/metrics.h"
#include "src/core/status.h"
#include "src/data/dataset.h"
#include "src/distributed/compressor.h"
#include "src/distributed/faults.h"
#include "src/distributed/network_model.h"
#include "src/nn/sequential.h"

/// \file cluster.h
/// \brief Simulated data-parallel training cluster (tutorial Section 2.1).
///
/// N logical workers each hold a model replica and a shard of the data.
/// Computation runs for real (single-threaded, per worker in turn);
/// communication is *accounted*: every transfer's bytes are counted and
/// converted to simulated seconds by the NetworkModel. This preserves
/// exactly what Local SGD and gradient compression change — the volume
/// and frequency of communication — without needing real hardware.
///
/// The cluster also models an imperfect world: a FaultPlan injects worker
/// crashes, stragglers, and message loss (see faults.h), and a
/// RecoveryPolicy decides what the cluster does about them. Fault
/// decisions are deterministic, so the same (ClusterConfig, FaultPlan)
/// pair reproduces the same run bit-for-bit at any DLSYS_THREADS.

namespace dlsys {

/// \brief How workers keep replicas consistent.
enum class SyncStrategy {
  kSyncSgd,   ///< average gradients every step (bulk-synchronous)
  kLocalSgd,  ///< run local_steps local updates, then average parameters
};

/// \brief What the cluster does when a fault fires.
///
/// Fault rounds are sync steps under kSyncSgd and averaging blocks under
/// kLocalSgd (faults act at barrier granularity).
enum class RecoveryPolicy {
  /// A crash is fatal: the run fails with Status::Internal. Stragglers
  /// and message loss still cost (simulated) time.
  kNone,
  /// Roll the whole cluster back to the last periodic checkpoint
  /// (model parameters through the serialize layer plus worker-local
  /// training state) and replay; requires checkpoint_interval > 0 and a
  /// checkpoint_dir. Work since the checkpoint is wasted, but the final
  /// model is bitwise identical to the fault-free run.
  kRestartFromCheckpoint,
  /// Surviving workers re-shard the dead worker's data and continue; the
  /// bulk-sync barrier shrinks. No wasted work, but less parallelism and
  /// a perturbed data distribution for the rest of the run.
  kDropAndContinue,
  /// A worker whose (simulated) gradient would arrive after
  /// stale_timeout_seconds is excluded from that round's all-reduce; its
  /// late result is discarded. Crashes degrade membership permanently,
  /// as in kDropAndContinue.
  kSkipStale,
};

/// \brief Cluster and training configuration.
struct ClusterConfig {
  int64_t workers = 4;
  int64_t rounds = 200;      ///< global steps (sync) or local steps total
  int64_t batch_size = 32;   ///< per-worker batch
  double lr = 0.05;
  SyncStrategy strategy = SyncStrategy::kSyncSgd;
  int64_t local_steps = 8;   ///< H, used by kLocalSgd
  NetworkModel network;
  uint64_t seed = 1;

  // ---- fault tolerance ----
  FaultPlan faults;          ///< empty plan = the perfect-world baseline
  RecoveryPolicy recovery = RecoveryPolicy::kNone;
  /// Rounds between checkpoints (0 = no checkpointing). An initial
  /// checkpoint is always written at round 0 when enabled.
  int64_t checkpoint_interval = 0;
  /// Directory checkpoints are serialized into (required when
  /// checkpoint_interval > 0).
  std::string checkpoint_dir;
  /// Simulated per-worker compute seconds per sync round (local step for
  /// kLocalSgd); drives straggler/timeout arithmetic deterministically.
  double step_seconds = 1e-3;
  /// kSkipStale: a worker later than this misses the round's all-reduce.
  double stale_timeout_seconds = 5e-2;
  /// Simulated stable-storage write bandwidth for checkpoints.
  double checkpoint_bandwidth_bytes_per_s = 2e8;
};

/// \brief Validates every field of \p config (worker/round/batch counts,
/// rates, network and fault-tolerance knobs, the fault plan itself).
/// Returns Status::InvalidArgument on the first violation, consistent
/// with the repo's no-throw error model.
Status ValidateClusterConfig(const ClusterConfig& config);

/// Report keys specific to the fault-tolerance layer.
namespace fault_metric {
inline constexpr const char* kCrashes = "fault.crashes";
inline constexpr const char* kRollbacks = "fault.rollbacks";
inline constexpr const char* kWastedRounds = "fault.wasted_rounds";
inline constexpr const char* kRecoverySeconds = "fault.recovery_seconds";
inline constexpr const char* kCheckpointCount = "fault.checkpoint_count";
inline constexpr const char* kCheckpointSeconds = "fault.checkpoint_seconds";
inline constexpr const char* kDroppedMessages = "fault.dropped_messages";
inline constexpr const char* kStragglerSeconds = "fault.straggler_seconds";
inline constexpr const char* kExcludedWorkerRounds =
    "fault.excluded_worker_rounds";
inline constexpr const char* kLiveWorkers = "fault.live_workers";
}  // namespace fault_metric

/// \brief Outcome of a simulated cluster run.
struct ClusterResult {
  Sequential model;       ///< the final (averaged) model
  MetricsReport report;   ///< comm bytes, simulated times, fault stats
};

/// \brief Trains \p arch (already initialized) on \p data across a
/// simulated cluster.
///
/// \p compressor (nullable -> identity) is cloned per worker so error
/// feedback state is worker-local; it applies to gradient traffic in
/// kSyncSgd only. Report keys:
///   resource.comm_bytes          total bytes across all links
///   resource.comm_seconds        simulated communication time
///   resource.compute_seconds     simulated parallel compute time
///   resource.train_seconds       comm + compute + fault overheads
///   fault.crashes                workers that crashed
///   fault.rollbacks              checkpoint restarts performed
///   fault.wasted_rounds          rounds redone after rollbacks
///   fault.recovery_seconds       detection + state-reload time
///   fault.checkpoint_count       checkpoints written
///   fault.checkpoint_seconds     simulated checkpoint-write time
///   fault.dropped_messages       lost message attempts (retransmitted)
///   fault.straggler_seconds      barrier time beyond the healthy baseline
///   fault.excluded_worker_rounds worker-rounds cut from the all-reduce
///   fault.live_workers           workers still alive at the end
Result<ClusterResult> TrainOnCluster(const Sequential& arch,
                                     const Dataset& data,
                                     const ClusterConfig& config,
                                     const GradientCompressor* compressor);

/// \brief Splits \p data into \p shards round-robin shards.
std::vector<Dataset> ShardDataset(const Dataset& data, int64_t shards);

}  // namespace dlsys

#endif  // DLSYS_DISTRIBUTED_CLUSTER_H_
