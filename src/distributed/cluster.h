#ifndef DLSYS_DISTRIBUTED_CLUSTER_H_
#define DLSYS_DISTRIBUTED_CLUSTER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/core/metrics.h"
#include "src/core/status.h"
#include "src/data/dataset.h"
#include "src/distributed/compressor.h"
#include "src/distributed/network_model.h"
#include "src/nn/sequential.h"

/// \file cluster.h
/// \brief Simulated data-parallel training cluster (tutorial Section 2.1).
///
/// N logical workers each hold a model replica and a shard of the data.
/// Computation runs for real (single-threaded, per worker in turn);
/// communication is *accounted*: every transfer's bytes are counted and
/// converted to simulated seconds by the NetworkModel. This preserves
/// exactly what Local SGD and gradient compression change — the volume
/// and frequency of communication — without needing real hardware.

namespace dlsys {

/// \brief How workers keep replicas consistent.
enum class SyncStrategy {
  kSyncSgd,   ///< average gradients every step (bulk-synchronous)
  kLocalSgd,  ///< run local_steps local updates, then average parameters
};

/// \brief Cluster and training configuration.
struct ClusterConfig {
  int64_t workers = 4;
  int64_t rounds = 200;      ///< global steps (sync) or local steps total
  int64_t batch_size = 32;   ///< per-worker batch
  double lr = 0.05;
  SyncStrategy strategy = SyncStrategy::kSyncSgd;
  int64_t local_steps = 8;   ///< H, used by kLocalSgd
  NetworkModel network;
  uint64_t seed = 1;
};

/// \brief Outcome of a simulated cluster run.
struct ClusterResult {
  Sequential model;       ///< the final (averaged) model
  MetricsReport report;   ///< comm bytes, simulated times, rounds
};

/// \brief Trains \p arch (already initialized) on \p data across a
/// simulated cluster.
///
/// \p compressor (nullable -> identity) is cloned per worker so error
/// feedback state is worker-local; it applies to gradient traffic in
/// kSyncSgd only. Report keys:
///   resource.comm_bytes          total bytes across all links
///   resource.comm_seconds        simulated communication time
///   resource.compute_seconds     simulated parallel compute time
///   resource.train_seconds       comm + compute (simulated wall clock)
Result<ClusterResult> TrainOnCluster(const Sequential& arch,
                                     const Dataset& data,
                                     const ClusterConfig& config,
                                     const GradientCompressor* compressor);

/// \brief Splits \p data into \p shards round-robin shards.
std::vector<Dataset> ShardDataset(const Dataset& data, int64_t shards);

}  // namespace dlsys

#endif  // DLSYS_DISTRIBUTED_CLUSTER_H_
