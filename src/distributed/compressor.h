#ifndef DLSYS_DISTRIBUTED_COMPRESSOR_H_
#define DLSYS_DISTRIBUTED_COMPRESSOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/core/status.h"

/// \file compressor.h
/// \brief Gradient compression for communication-efficient training
/// (tutorial Section 2.1: Deep Gradient Compression and b-bit
/// quantization of communicated gradients).

namespace dlsys {

/// \brief Result of compressing one gradient vector: the bytes that would
/// cross the wire and the values the receiver reconstructs.
struct CompressedGrad {
  int64_t wire_bytes = 0;
  std::vector<float> values;  ///< same length as the input gradient
};

/// \brief Interface for lossy/lossless gradient codecs.
///
/// Stateful codecs (error feedback) keep per-worker residuals; create one
/// compressor per worker via CloneFresh().
class GradientCompressor {
 public:
  virtual ~GradientCompressor() = default;
  /// \brief Compresses \p grad; returns wire bytes + reconstruction.
  virtual CompressedGrad Compress(const std::vector<float>& grad) = 0;
  /// \brief Codec name for reports.
  virtual std::string name() const = 0;
  /// \brief Fresh codec with the same config and empty residual state.
  virtual std::unique_ptr<GradientCompressor> CloneFresh() const = 0;
  /// \brief Deep copy preserving residual state. Cluster checkpoints use
  /// this so a restarted run resumes with exactly the residuals it had.
  virtual std::unique_ptr<GradientCompressor> CloneWithState() const = 0;
};

/// \brief No compression: 4 bytes per coordinate (the baseline).
class IdentityCompressor : public GradientCompressor {
 public:
  CompressedGrad Compress(const std::vector<float>& grad) override;
  std::string name() const override { return "identity"; }
  std::unique_ptr<GradientCompressor> CloneFresh() const override {
    return std::make_unique<IdentityCompressor>();
  }
  std::unique_ptr<GradientCompressor> CloneWithState() const override {
    return std::make_unique<IdentityCompressor>(*this);
  }
};

/// \brief Top-k sparsification with error feedback: sends the largest
/// \p keep_fraction of coordinates (value + 4-byte index); the rest
/// accumulate locally and are added to the next gradient (DGC-style
/// momentum-free residual).
class TopKCompressor : public GradientCompressor {
 public:
  explicit TopKCompressor(double keep_fraction, bool error_feedback = true);
  CompressedGrad Compress(const std::vector<float>& grad) override;
  std::string name() const override;
  std::unique_ptr<GradientCompressor> CloneFresh() const override {
    return std::make_unique<TopKCompressor>(keep_fraction_, error_feedback_);
  }
  std::unique_ptr<GradientCompressor> CloneWithState() const override {
    return std::make_unique<TopKCompressor>(*this);
  }

 private:
  double keep_fraction_;
  bool error_feedback_;
  std::vector<float> residual_;
};

/// \brief Uniform b-bit quantization of the gradient with error feedback;
/// sends bits-per-coordinate plus an 8-byte affine codebook.
class QuantizingCompressor : public GradientCompressor {
 public:
  explicit QuantizingCompressor(int64_t bits, bool error_feedback = true);
  CompressedGrad Compress(const std::vector<float>& grad) override;
  std::string name() const override;
  std::unique_ptr<GradientCompressor> CloneFresh() const override {
    return std::make_unique<QuantizingCompressor>(bits_, error_feedback_);
  }
  std::unique_ptr<GradientCompressor> CloneWithState() const override {
    return std::make_unique<QuantizingCompressor>(*this);
  }

 private:
  int64_t bits_;
  bool error_feedback_;
  std::vector<float> residual_;
};

}  // namespace dlsys

#endif  // DLSYS_DISTRIBUTED_COMPRESSOR_H_
