#include "src/distributed/network_model.h"

#include <algorithm>

namespace dlsys {

double NetworkModel::TransferSeconds(int64_t bytes) const {
  return latency_seconds +
         static_cast<double>(bytes) / bandwidth_bytes_per_s;
}

double NetworkModel::RetryPenaltySeconds(int64_t failed) const {
  // Past the retry cap no further attempts are made, so no further time
  // accrues: the injector already clamps FailedAttempts to max_retries,
  // and clamping here too keeps the accounting honest for direct callers.
  const int64_t counted = std::min(failed, max_retries);
  double total = 0.0;
  double backoff = backoff_base_seconds;
  for (int64_t i = 0; i < counted; ++i) {
    total += timeout_seconds + backoff;
    backoff *= 2.0;
  }
  return total;
}

double NetworkModel::TransferWithRetries(int64_t bytes, int64_t failed) const {
  return RetryPenaltySeconds(failed) + TransferSeconds(bytes);
}

double NetworkModel::AllReduceSeconds(int64_t bytes, int64_t workers) const {
  if (workers <= 1) return 0.0;
  const double steps = 2.0 * static_cast<double>(workers - 1);
  const double chunk =
      static_cast<double>(bytes) / static_cast<double>(workers);
  return steps * (latency_seconds + chunk / bandwidth_bytes_per_s);
}

NetworkModel NetworkModel::WithLatencyScaled(double factor) const {
  NetworkModel scaled = *this;
  scaled.latency_seconds *= factor;
  return scaled;
}

}  // namespace dlsys
