#ifndef DLSYS_DISTRIBUTED_NETWORK_MODEL_H_
#define DLSYS_DISTRIBUTED_NETWORK_MODEL_H_

#include <cstdint>

/// \file network_model.h
/// \brief Analytic cost model of the interconnect in a simulated cluster.
///
/// Substitution for real multi-node hardware (see DESIGN.md): the
/// communication-efficiency techniques of Section 2.1 act purely on the
/// *volume and frequency* of transfers, which an alpha-beta (latency +
/// bandwidth) model captures exactly.

namespace dlsys {

/// \brief Alpha-beta link model: time = latency + bytes / bandwidth.
///
/// Lossy links cost retransmit time rather than silently succeeding: a
/// dropped message is detected after timeout_seconds, waits an
/// exponentially growing backoff, and is resent, up to max_retries times.
struct NetworkModel {
  double latency_seconds = 1e-4;          ///< per-message latency (alpha)
  double bandwidth_bytes_per_s = 1.25e9;  ///< link bandwidth (beta), 10 Gbps
  double timeout_seconds = 5e-3;          ///< loss-detection wait per attempt
  double backoff_base_seconds = 1e-3;     ///< first retry backoff; doubles
  int64_t max_retries = 5;                ///< retransmits before giving up

  /// \brief Seconds to move \p bytes point-to-point.
  double TransferSeconds(int64_t bytes) const {
    return latency_seconds +
           static_cast<double>(bytes) / bandwidth_bytes_per_s;
  }

  /// \brief Seconds burned by \p failed lost attempts: each costs the
  /// detection timeout plus exponential backoff before the retransmit.
  double RetryPenaltySeconds(int64_t failed) const {
    double total = 0.0;
    double backoff = backoff_base_seconds;
    for (int64_t i = 0; i < failed; ++i) {
      total += timeout_seconds + backoff;
      backoff *= 2.0;
    }
    return total;
  }

  /// \brief Total time to deliver \p bytes after \p failed drops.
  double TransferWithRetries(int64_t bytes, int64_t failed) const {
    return RetryPenaltySeconds(failed) + TransferSeconds(bytes);
  }

  /// \brief Seconds for a ring all-reduce of \p bytes across \p workers:
  /// 2(N-1) message steps moving bytes/N each.
  double AllReduceSeconds(int64_t bytes, int64_t workers) const {
    if (workers <= 1) return 0.0;
    const double steps = 2.0 * static_cast<double>(workers - 1);
    const double chunk =
        static_cast<double>(bytes) / static_cast<double>(workers);
    return steps * (latency_seconds + chunk / bandwidth_bytes_per_s);
  }
};

}  // namespace dlsys

#endif  // DLSYS_DISTRIBUTED_NETWORK_MODEL_H_
