#ifndef DLSYS_DISTRIBUTED_NETWORK_MODEL_H_
#define DLSYS_DISTRIBUTED_NETWORK_MODEL_H_

#include <cstdint>

/// \file network_model.h
/// \brief Analytic cost model of the interconnect in a simulated cluster.
///
/// Substitution for real multi-node hardware (see DESIGN.md): the
/// communication-efficiency techniques of Section 2.1 act purely on the
/// *volume and frequency* of transfers, which an alpha-beta (latency +
/// bandwidth) model captures exactly.

namespace dlsys {

/// \brief Alpha-beta link model: time = latency + bytes / bandwidth.
struct NetworkModel {
  double latency_seconds = 1e-4;          ///< per-message latency (alpha)
  double bandwidth_bytes_per_s = 1.25e9;  ///< link bandwidth (beta), 10 Gbps

  /// \brief Seconds to move \p bytes point-to-point.
  double TransferSeconds(int64_t bytes) const {
    return latency_seconds +
           static_cast<double>(bytes) / bandwidth_bytes_per_s;
  }

  /// \brief Seconds for a ring all-reduce of \p bytes across \p workers:
  /// 2(N-1) message steps moving bytes/N each.
  double AllReduceSeconds(int64_t bytes, int64_t workers) const {
    if (workers <= 1) return 0.0;
    const double steps = 2.0 * static_cast<double>(workers - 1);
    const double chunk =
        static_cast<double>(bytes) / static_cast<double>(workers);
    return steps * (latency_seconds + chunk / bandwidth_bytes_per_s);
  }
};

}  // namespace dlsys

#endif  // DLSYS_DISTRIBUTED_NETWORK_MODEL_H_
