#ifndef DLSYS_DISTRIBUTED_NETWORK_MODEL_H_
#define DLSYS_DISTRIBUTED_NETWORK_MODEL_H_

#include <cstdint>

/// \file network_model.h
/// \brief Analytic cost model of the interconnect in a simulated cluster.
///
/// Substitution for real multi-node hardware (see DESIGN.md): the
/// communication-efficiency techniques of Section 2.1 act purely on the
/// *volume and frequency* of transfers, which an alpha-beta (latency +
/// bandwidth) model captures exactly. The serving fleet reuses the same
/// model for request/response hops, inflating `latency_seconds` to stage
/// slow-network partitions (see src/fleet/chaos.h).

namespace dlsys {

/// \brief Alpha-beta link model: time = latency + bytes / bandwidth.
///
/// Lossy links cost retransmit time rather than silently succeeding: a
/// dropped message is detected after timeout_seconds, waits an
/// exponentially growing backoff, and is resent, up to max_retries times.
struct NetworkModel {
  double latency_seconds = 1e-4;          ///< per-message latency (alpha)
  double bandwidth_bytes_per_s = 1.25e9;  ///< link bandwidth (beta), 10 Gbps
  double timeout_seconds = 5e-3;          ///< loss-detection wait per attempt
  double backoff_base_seconds = 1e-3;     ///< first retry backoff; doubles
  int64_t max_retries = 5;                ///< retransmits before giving up

  /// \brief Seconds to move \p bytes point-to-point.
  double TransferSeconds(int64_t bytes) const;

  /// \brief Seconds burned by \p failed lost attempts: each costs the
  /// detection timeout plus exponential backoff before the retransmit.
  /// Counts no retransmit past max_retries (the capped attempt is the one
  /// that succeeds), so \p failed above the cap accrues no further time.
  double RetryPenaltySeconds(int64_t failed) const;

  /// \brief Total time to deliver \p bytes after \p failed drops.
  double TransferWithRetries(int64_t bytes, int64_t failed) const;

  /// \brief Seconds for a ring all-reduce of \p bytes across \p workers:
  /// 2(N-1) message steps moving bytes/N each.
  double AllReduceSeconds(int64_t bytes, int64_t workers) const;

  /// \brief Copy of this model with per-message latency scaled by
  /// \p factor (>= 0) — how the fleet chaos suite stages a slow-network
  /// partition without touching bandwidth or the retry machinery.
  NetworkModel WithLatencyScaled(double factor) const;
};

}  // namespace dlsys

#endif  // DLSYS_DISTRIBUTED_NETWORK_MODEL_H_
