#include "src/distributed/cluster.h"

#include <algorithm>

#include "src/nn/loss.h"
#include "src/optim/optimizer.h"
#include "src/tensor/ops.h"

namespace dlsys {

std::vector<Dataset> ShardDataset(const Dataset& data, int64_t shards) {
  DLSYS_CHECK(shards > 0, "shard count must be positive");
  std::vector<Dataset> out(static_cast<size_t>(shards));
  int64_t stride = 1;
  for (int64_t d = 1; d < data.x.rank(); ++d) stride *= data.x.dim(d);
  // Count rows per shard, then copy round-robin.
  std::vector<int64_t> counts(static_cast<size_t>(shards), 0);
  for (int64_t i = 0; i < data.size(); ++i) counts[i % shards] += 1;
  for (int64_t s = 0; s < shards; ++s) {
    Shape shape = data.x.shape();
    shape[0] = counts[static_cast<size_t>(s)];
    out[static_cast<size_t>(s)].x = Tensor(shape);
    out[static_cast<size_t>(s)].y.reserve(
        static_cast<size_t>(counts[static_cast<size_t>(s)]));
  }
  std::vector<int64_t> cursor(static_cast<size_t>(shards), 0);
  for (int64_t i = 0; i < data.size(); ++i) {
    const int64_t s = i % shards;
    Dataset& shard = out[static_cast<size_t>(s)];
    std::copy(data.x.data() + i * stride, data.x.data() + (i + 1) * stride,
              shard.x.data() + cursor[static_cast<size_t>(s)] * stride);
    shard.y.push_back(data.y[static_cast<size_t>(i)]);
    cursor[static_cast<size_t>(s)] += 1;
  }
  return out;
}

namespace {

// One worker: replica, shard, batch cursor, codec, optimizer.
struct Worker {
  Sequential model;
  Dataset shard;
  int64_t cursor = 0;
  std::unique_ptr<GradientCompressor> codec;
  std::unique_ptr<Optimizer> opt;
  Rng rng{0};
};

Dataset NextBatch(Worker* w, int64_t batch_size) {
  if (w->cursor + batch_size > w->shard.size()) {
    ShuffleDataset(&w->shard, &w->rng);
    w->cursor = 0;
  }
  const int64_t end = std::min(w->cursor + batch_size, w->shard.size());
  Dataset b = Batch(w->shard, w->cursor, end);
  w->cursor = end;
  return b;
}

// Flattens a network's gradient tensors into one vector.
std::vector<float> FlatGrads(Sequential* net) {
  std::vector<float> out;
  for (Tensor* g : net->Grads()) {
    out.insert(out.end(), g->data(), g->data() + g->size());
  }
  return out;
}

// Applies a flat gradient vector as an SGD step via the worker optimizer.
void ApplyFlatGrad(Sequential* net, Optimizer* opt,
                   const std::vector<float>& flat) {
  auto grads = net->Grads();
  size_t offset = 0;
  for (Tensor* g : grads) {
    std::copy(flat.begin() + offset, flat.begin() + offset + g->size(),
              g->data());
    offset += static_cast<size_t>(g->size());
  }
  opt->Step(net->Params(), grads);
}

}  // namespace

Result<ClusterResult> TrainOnCluster(const Sequential& arch,
                                     const Dataset& data,
                                     const ClusterConfig& config,
                                     const GradientCompressor* compressor) {
  if (config.workers <= 0) {
    return Status::InvalidArgument("worker count must be positive");
  }
  if (data.size() < config.workers) {
    return Status::InvalidArgument("fewer examples than workers");
  }
  if (config.strategy == SyncStrategy::kLocalSgd && config.local_steps <= 0) {
    return Status::InvalidArgument("local_steps must be positive");
  }

  IdentityCompressor identity;
  const GradientCompressor* codec_template =
      compressor != nullptr ? compressor : &identity;

  std::vector<Dataset> shards = ShardDataset(data, config.workers);
  std::vector<Worker> workers(static_cast<size_t>(config.workers));
  for (int64_t w = 0; w < config.workers; ++w) {
    Worker& worker = workers[static_cast<size_t>(w)];
    worker.model = arch.Clone();
    worker.shard = std::move(shards[static_cast<size_t>(w)]);
    worker.codec = codec_template->CloneFresh();
    worker.opt = std::make_unique<Sgd>(config.lr);
    worker.rng = Rng(config.seed + static_cast<uint64_t>(w) * 101ULL);
  }

  const int64_t model_bytes = workers[0].model.ModelBytes();
  int64_t comm_bytes = 0;
  double comm_seconds = 0.0;
  Stopwatch compute_watch;

  if (config.strategy == SyncStrategy::kSyncSgd) {
    for (int64_t round = 0; round < config.rounds; ++round) {
      std::vector<std::vector<float>> decompressed;
      int64_t max_upload = 0;
      for (auto& w : workers) {
        Dataset batch = NextBatch(&w, config.batch_size);
        w.model.ZeroGrads();
        Tensor logits = w.model.Forward(batch.x, CacheMode::kCache);
        LossGrad lg = SoftmaxCrossEntropy(logits, batch.y);
        w.model.Backward(lg.grad);
        CompressedGrad cg = w.codec->Compress(FlatGrads(&w.model));
        comm_bytes += cg.wire_bytes;
        max_upload = std::max(max_upload, cg.wire_bytes);
        decompressed.push_back(std::move(cg.values));
      }
      // Server averages the reconstructed gradients.
      std::vector<float> mean = decompressed[0];
      for (size_t w = 1; w < decompressed.size(); ++w) {
        for (size_t i = 0; i < mean.size(); ++i) {
          mean[i] += decompressed[w][i];
        }
      }
      for (float& v : mean) v /= static_cast<float>(config.workers);
      // Broadcast: the averaged gradient goes back down (dense size of
      // the average's own encoding under the same codec family — we
      // charge the uncompressed-average upper bound for identity, or the
      // mean upload size otherwise, a standard PS accounting).
      const int64_t download =
          compressor == nullptr ? model_bytes : max_upload;
      comm_bytes += download * config.workers;
      comm_seconds += config.network.TransferSeconds(max_upload) +
                      config.network.TransferSeconds(download);
      for (auto& w : workers) {
        ApplyFlatGrad(&w.model, w.opt.get(), mean);
      }
    }
  } else {
    // Local SGD: rounds of H local steps followed by parameter averaging.
    const int64_t avg_rounds =
        (config.rounds + config.local_steps - 1) / config.local_steps;
    for (int64_t round = 0; round < avg_rounds; ++round) {
      for (auto& w : workers) {
        for (int64_t h = 0; h < config.local_steps; ++h) {
          Dataset batch = NextBatch(&w, config.batch_size);
          w.model.ZeroGrads();
          Tensor logits = w.model.Forward(batch.x, CacheMode::kCache);
          LossGrad lg = SoftmaxCrossEntropy(logits, batch.y);
          w.model.Backward(lg.grad);
          w.opt->Step(w.model.Params(), w.model.Grads());
        }
      }
      // All-reduce the parameters.
      std::vector<float> mean = workers[0].model.GetParameterVector();
      for (int64_t w = 1; w < config.workers; ++w) {
        std::vector<float> p =
            workers[static_cast<size_t>(w)].model.GetParameterVector();
        for (size_t i = 0; i < mean.size(); ++i) mean[i] += p[i];
      }
      for (float& v : mean) v /= static_cast<float>(config.workers);
      for (auto& w : workers) w.model.SetParameterVector(mean);
      comm_bytes += 2 * model_bytes * config.workers;
      comm_seconds +=
          config.network.AllReduceSeconds(model_bytes, config.workers);
    }
  }

  // Workers compute in parallel in a real cluster: simulated parallel
  // compute time is total single-thread compute divided by worker count.
  const double compute_seconds =
      compute_watch.Seconds() / static_cast<double>(config.workers);

  ClusterResult out;
  // Final model: average of replicas (identical already in sync mode).
  std::vector<float> mean = workers[0].model.GetParameterVector();
  for (int64_t w = 1; w < config.workers; ++w) {
    std::vector<float> p =
        workers[static_cast<size_t>(w)].model.GetParameterVector();
    for (size_t i = 0; i < mean.size(); ++i) mean[i] += p[i];
  }
  for (float& v : mean) v /= static_cast<float>(config.workers);
  out.model = arch.Clone();
  out.model.SetParameterVector(mean);
  out.report.Set(metric::kCommBytes, static_cast<double>(comm_bytes));
  out.report.Set("resource.comm_seconds", comm_seconds);
  out.report.Set("resource.compute_seconds", compute_seconds);
  out.report.Set(metric::kTrainSeconds, comm_seconds + compute_seconds);
  return out;
}

}  // namespace dlsys
