#include "src/distributed/cluster.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/nn/loss.h"
#include "src/obs/cost.h"
#include "src/obs/counters.h"
#include "src/nn/serialize.h"
#include "src/optim/optimizer.h"
#include "src/tensor/ops.h"

namespace dlsys {

std::vector<Dataset> ShardDataset(const Dataset& data, int64_t shards) {
  DLSYS_CHECK(shards > 0, "shard count must be positive");
  std::vector<Dataset> out(static_cast<size_t>(shards));
  int64_t stride = 1;
  for (int64_t d = 1; d < data.x.rank(); ++d) stride *= data.x.dim(d);
  // Count rows per shard, then copy round-robin.
  std::vector<int64_t> counts(static_cast<size_t>(shards), 0);
  for (int64_t i = 0; i < data.size(); ++i) counts[i % shards] += 1;
  for (int64_t s = 0; s < shards; ++s) {
    Shape shape = data.x.shape();
    shape[0] = counts[static_cast<size_t>(s)];
    out[static_cast<size_t>(s)].x = Tensor(shape);
    out[static_cast<size_t>(s)].y.reserve(
        static_cast<size_t>(counts[static_cast<size_t>(s)]));
  }
  std::vector<int64_t> cursor(static_cast<size_t>(shards), 0);
  for (int64_t i = 0; i < data.size(); ++i) {
    const int64_t s = i % shards;
    Dataset& shard = out[static_cast<size_t>(s)];
    std::copy(data.x.data() + i * stride, data.x.data() + (i + 1) * stride,
              shard.x.data() + cursor[static_cast<size_t>(s)] * stride);
    shard.y.push_back(data.y[static_cast<size_t>(i)]);
    cursor[static_cast<size_t>(s)] += 1;
  }
  return out;
}

Status ValidateClusterConfig(const ClusterConfig& config) {
  if (config.workers <= 0) {
    return Status::InvalidArgument("worker count must be positive");
  }
  if (config.rounds <= 0) {
    return Status::InvalidArgument("rounds must be positive");
  }
  if (config.batch_size <= 0) {
    return Status::InvalidArgument("batch_size must be positive");
  }
  if (!(config.lr > 0.0) || !std::isfinite(config.lr)) {
    return Status::InvalidArgument("lr must be positive and finite");
  }
  if (config.strategy == SyncStrategy::kLocalSgd && config.local_steps <= 0) {
    return Status::InvalidArgument("local_steps must be positive");
  }
  if (config.network.latency_seconds < 0.0 ||
      config.network.bandwidth_bytes_per_s <= 0.0 ||
      config.network.timeout_seconds < 0.0 ||
      config.network.backoff_base_seconds < 0.0 ||
      config.network.max_retries < 0) {
    return Status::InvalidArgument("network model fields out of range");
  }
  if (config.checkpoint_interval < 0) {
    return Status::InvalidArgument("checkpoint_interval must be >= 0");
  }
  if (config.checkpoint_interval > 0 && config.checkpoint_dir.empty()) {
    return Status::InvalidArgument(
        "checkpointing requires a checkpoint_dir");
  }
  if (config.recovery == RecoveryPolicy::kRestartFromCheckpoint &&
      config.checkpoint_interval <= 0) {
    return Status::InvalidArgument(
        "kRestartFromCheckpoint requires checkpoint_interval > 0");
  }
  if (config.step_seconds < 0.0) {
    return Status::InvalidArgument("step_seconds must be >= 0");
  }
  if (config.recovery == RecoveryPolicy::kSkipStale &&
      config.stale_timeout_seconds <= 0.0) {
    return Status::InvalidArgument(
        "kSkipStale requires stale_timeout_seconds > 0");
  }
  if (config.checkpoint_bandwidth_bytes_per_s <= 0.0) {
    return Status::InvalidArgument(
        "checkpoint_bandwidth_bytes_per_s must be positive");
  }
  return ValidateFaultPlan(config.faults, config.workers);
}

namespace {

// One worker: replica, shard, batch cursor, codec, optimizer.
struct Worker {
  int64_t id = 0;
  bool alive = true;
  Sequential model;
  Dataset shard;
  int64_t cursor = 0;
  std::unique_ptr<GradientCompressor> codec;
  std::unique_ptr<Optimizer> opt;
  Rng rng{0};
};

// Worker-local training state captured in a checkpoint: the data order,
// cursor, data-order RNG, and codec residuals — everything besides the
// model parameters (which go through the serialize layer) that a bitwise
// replay needs. Stateless per-worker SGD is recreated, not stored.
struct WorkerSnapshot {
  Dataset shard;
  int64_t cursor = 0;
  Rng rng{0};
  std::unique_ptr<GradientCompressor> codec;
};

struct ClusterCheckpoint {
  bool valid = false;
  int64_t round = 0;
  std::string path;
  std::vector<WorkerSnapshot> workers;
};

Dataset NextBatch(Worker* w, int64_t batch_size) {
  if (w->cursor + batch_size > w->shard.size()) {
    ShuffleDataset(&w->shard, &w->rng);
    w->cursor = 0;
  }
  const int64_t end = std::min(w->cursor + batch_size, w->shard.size());
  Dataset b = Batch(w->shard, w->cursor, end);
  w->cursor = end;
  return b;
}

// Flattens a network's gradient tensors into one vector.
std::vector<float> FlatGrads(Sequential* net) {
  std::vector<float> out;
  for (Tensor* g : net->Grads()) {
    out.insert(out.end(), g->data(), g->data() + g->size());
  }
  return out;
}

// Applies a flat gradient vector as an SGD step via the worker optimizer.
void ApplyFlatGrad(Sequential* net, Optimizer* opt,
                   const std::vector<float>& flat) {
  auto grads = net->Grads();
  size_t offset = 0;
  for (Tensor* g : grads) {
    std::copy(flat.begin() + offset, flat.begin() + offset + g->size(),
              g->data());
    offset += static_cast<size_t>(g->size());
  }
  opt->Step(net->Params(), grads);
}

// Appends src's examples [rows] onto dst (same feature shape per row).
void AppendExamples(Dataset* dst, const Dataset& src,
                    const std::vector<int64_t>& rows) {
  if (rows.empty()) return;
  int64_t stride = 1;
  for (int64_t d = 1; d < src.x.rank(); ++d) stride *= src.x.dim(d);
  const int64_t old_n = dst->size();
  Shape shape = src.x.shape();
  shape[0] = old_n + static_cast<int64_t>(rows.size());
  Tensor merged(shape);
  if (old_n > 0) {
    std::copy(dst->x.data(), dst->x.data() + old_n * stride, merged.data());
  }
  for (size_t i = 0; i < rows.size(); ++i) {
    const int64_t r = rows[i];
    std::copy(src.x.data() + r * stride, src.x.data() + (r + 1) * stride,
              merged.data() + (old_n + static_cast<int64_t>(i)) * stride);
    dst->y.push_back(src.y[static_cast<size_t>(r)]);
  }
  dst->x = std::move(merged);
}

std::vector<Worker*> LiveWorkers(std::vector<Worker>* workers) {
  std::vector<Worker*> live;
  for (Worker& w : *workers) {
    if (w.alive) live.push_back(&w);
  }
  return live;
}

}  // namespace

Result<ClusterResult> TrainOnCluster(const Sequential& arch,
                                     const Dataset& data,
                                     const ClusterConfig& config,
                                     const GradientCompressor* compressor) {
  DLSYS_RETURN_NOT_OK(ValidateClusterConfig(config));
  if (data.size() < config.workers) {
    return Status::InvalidArgument("fewer examples than workers");
  }

  IdentityCompressor identity;
  const GradientCompressor* codec_template =
      compressor != nullptr ? compressor : &identity;

  std::vector<Dataset> shards = ShardDataset(data, config.workers);
  std::vector<Worker> workers(static_cast<size_t>(config.workers));
  for (int64_t w = 0; w < config.workers; ++w) {
    Worker& worker = workers[static_cast<size_t>(w)];
    worker.id = w;
    worker.model = arch.Clone();
    worker.shard = std::move(shards[static_cast<size_t>(w)]);
    worker.codec = codec_template->CloneFresh();
    worker.opt = std::make_unique<Sgd>(config.lr);
    worker.rng = Rng(config.seed + static_cast<uint64_t>(w) * 101ULL);
  }

  const int64_t model_bytes = workers[0].model.ModelBytes();
  const bool local_sgd = config.strategy == SyncStrategy::kLocalSgd;
  const int64_t total_rounds =
      local_sgd
          ? (config.rounds + config.local_steps - 1) / config.local_steps
          : config.rounds;
  const double round_compute_seconds =
      config.step_seconds *
      static_cast<double>(local_sgd ? config.local_steps : 1);

  FaultInjector injector(config.faults, config.workers);

  int64_t comm_bytes = 0;
  double comm_seconds = 0.0;
  double crashes = 0.0, rollbacks = 0.0, wasted_rounds = 0.0;
  double recovery_seconds = 0.0;
  double checkpoint_count = 0.0, checkpoint_seconds = 0.0;
  double dropped_messages = 0.0, straggler_seconds = 0.0;
  double excluded_worker_rounds = 0.0;
  Stopwatch compute_watch;

  // ------------------------------------------------ checkpoint machinery
  ClusterCheckpoint ckpt;
  auto take_checkpoint = [&](int64_t round) -> Status {
    ckpt.round = round;
    ckpt.path = config.checkpoint_dir + "/cluster_ckpt.dlsy";
    // Replicas are identical at round boundaries; worker 0 stands in.
    DLSYS_RETURN_NOT_OK(SaveParameters(workers[0].model, ckpt.path));
    ckpt.workers.clear();
    for (Worker& w : workers) {
      WorkerSnapshot snap;
      snap.shard = w.shard;
      snap.cursor = w.cursor;
      snap.rng = w.rng;
      snap.codec = w.codec->CloneWithState();
      ckpt.workers.push_back(std::move(snap));
    }
    ckpt.valid = true;
    checkpoint_count += 1.0;
    checkpoint_seconds += static_cast<double>(model_bytes) /
                          config.checkpoint_bandwidth_bytes_per_s;
    return Status::OK();
  };
  auto restore_checkpoint = [&]() -> Status {
    DLSYS_RETURN_NOT_OK(LoadParameters(&workers[0].model, ckpt.path));
    const std::vector<float> params = workers[0].model.GetParameterVector();
    for (size_t i = 0; i < workers.size(); ++i) {
      Worker& w = workers[i];
      const WorkerSnapshot& snap = ckpt.workers[i];
      if (i > 0) w.model.SetParameterVector(params);
      w.shard = snap.shard;  // copy: the snapshot stays reusable
      w.cursor = snap.cursor;
      w.rng = snap.rng;
      w.codec = snap.codec->CloneWithState();
      w.opt = std::make_unique<Sgd>(config.lr);
    }
    return Status::OK();
  };

  if (config.checkpoint_interval > 0) {
    DLSYS_RETURN_NOT_OK(take_checkpoint(0));
  }

  // ------------------------------------------------------ training loop
  constexpr int64_t kMaxRollbacks = 1000;
  int64_t generation = 0;  // bumped per rollback; salts crash draws
  int64_t round = 0;
  while (round < total_rounds) {
    // 1) Crash detection at the round barrier.
    std::vector<int64_t> crashed;
    for (Worker& w : workers) {
      if (w.alive && injector.CrashesAt(w.id, round, generation)) {
        crashed.push_back(w.id);
      }
    }
    if (!crashed.empty()) {
      crashes += static_cast<double>(crashed.size());
      for (int64_t id : crashed) injector.ConsumeCrash(id, round);
      if (config.recovery == RecoveryPolicy::kNone) {
        return Status::Internal(
            "worker " + std::to_string(crashed.front()) +
            " crashed at round " + std::to_string(round) +
            " with RecoveryPolicy::kNone");
      }
      if (config.recovery == RecoveryPolicy::kRestartFromCheckpoint) {
        rollbacks += 1.0;
        if (rollbacks > static_cast<double>(kMaxRollbacks)) {
          return Status::Internal(
              "crash-recovery livelock: > " +
              std::to_string(kMaxRollbacks) + " rollbacks");
        }
        wasted_rounds += static_cast<double>(round - ckpt.round);
        recovery_seconds +=
            config.network.timeout_seconds +                 // detection
            static_cast<double>(model_bytes) /
                config.checkpoint_bandwidth_bytes_per_s +    // stable read
            config.network.TransferSeconds(model_bytes);     // broadcast
        DLSYS_RETURN_NOT_OK(restore_checkpoint());
        ++generation;
        round = ckpt.round;
        continue;
      }
      // kDropAndContinue / kSkipStale: dead workers leave; survivors
      // inherit their data round-robin and the barrier shrinks.
      recovery_seconds += config.network.timeout_seconds;  // detection stall
      for (int64_t id : crashed) {
        workers[static_cast<size_t>(id)].alive = false;
      }
      std::vector<Worker*> survivors = LiveWorkers(&workers);
      if (survivors.empty()) {
        return Status::Internal("all workers crashed at round " +
                                std::to_string(round));
      }
      for (int64_t id : crashed) {
        Worker& dead = workers[static_cast<size_t>(id)];
        std::vector<std::vector<int64_t>> assigned(survivors.size());
        for (int64_t r = 0; r < dead.shard.size(); ++r) {
          assigned[static_cast<size_t>(r) % survivors.size()].push_back(r);
        }
        for (size_t s = 0; s < survivors.size(); ++s) {
          AppendExamples(&survivors[s]->shard, dead.shard, assigned[s]);
        }
        dead.shard = Dataset{};
      }
    }

    std::vector<Worker*> live = LiveWorkers(&workers);

    // 2) Simulated arrival time of each live worker's contribution this
    // round: compute (scaled by its straggler factor) plus retransmit
    // penalties for its dropped uplink messages. Deterministic, so the
    // skip-stale membership decision is replayable.
    std::vector<double> arrival(live.size(), 0.0);
    std::vector<bool> included(live.size(), true);
    double max_arrival = 0.0;
    for (size_t i = 0; i < live.size(); ++i) {
      const int64_t failed = injector.FailedAttempts(
          live[i]->id, round, /*message=*/0, config.network.max_retries);
      dropped_messages += static_cast<double>(failed);
      arrival[i] =
          round_compute_seconds * injector.Slowdown(live[i]->id) +
          config.network.RetryPenaltySeconds(failed);
      max_arrival = std::max(max_arrival, arrival[i]);
    }
    size_t included_count = live.size();
    if (config.recovery == RecoveryPolicy::kSkipStale) {
      for (size_t i = 0; i < live.size(); ++i) {
        if (arrival[i] > config.stale_timeout_seconds) {
          included[i] = false;
          --included_count;
        }
      }
      if (included_count == 0) {
        // Degenerate round: everyone is late, so the barrier waits for
        // everyone rather than averaging nothing.
        std::fill(included.begin(), included.end(), true);
        included_count = live.size();
      }
      excluded_worker_rounds +=
          static_cast<double>(live.size() - included_count);
    }
    // Barrier stall beyond the healthy baseline. With stale workers cut,
    // the server waits exactly the timeout; otherwise the slowest worker.
    const double round_wait =
        (config.recovery == RecoveryPolicy::kSkipStale &&
         included_count < live.size())
            ? config.stale_timeout_seconds
            : max_arrival;
    straggler_seconds += std::max(0.0, round_wait - round_compute_seconds);

    // 3) The round's actual computation and averaging.
    if (!local_sgd) {
      std::vector<std::vector<float>> contributions;
      int64_t max_upload = 0;
      for (size_t i = 0; i < live.size(); ++i) {
        Worker* w = live[i];
        Dataset batch = NextBatch(w, config.batch_size);
        w->model.ZeroGrads();
        Tensor logits = w->model.Forward(batch.x, CacheMode::kCache);
        LossGrad lg = SoftmaxCrossEntropy(logits, batch.y);
        w->model.Backward(lg.grad);
        CompressedGrad cg = w->codec->Compress(FlatGrads(&w->model));
        comm_bytes += cg.wire_bytes;
        max_upload = std::max(max_upload, cg.wire_bytes);
        // A stale worker's gradient arrives too late and is discarded;
        // its compute and wire bytes are still spent.
        if (included[i]) contributions.push_back(std::move(cg.values));
      }
      // Server averages the reconstructed gradients that made the cut.
      std::vector<float> mean = contributions[0];
      for (size_t c = 1; c < contributions.size(); ++c) {
        for (size_t i = 0; i < mean.size(); ++i) {
          mean[i] += contributions[c][i];
        }
      }
      for (float& v : mean) v /= static_cast<float>(contributions.size());
      // Broadcast: the averaged gradient goes back down (dense size of
      // the average's own encoding under the same codec family — we
      // charge the uncompressed-average upper bound for identity, or the
      // mean upload size otherwise, a standard PS accounting). Everyone
      // still alive applies it, stale workers included, so replicas stay
      // identical.
      const int64_t download =
          compressor == nullptr ? model_bytes : max_upload;
      comm_bytes += download * static_cast<int64_t>(live.size());
      comm_seconds += config.network.TransferSeconds(max_upload) +
                      config.network.TransferSeconds(download);
      for (Worker* w : live) {
        ApplyFlatGrad(&w->model, w->opt.get(), mean);
      }
    } else {
      // Local SGD: one averaging block of H local steps.
      for (Worker* w : live) {
        for (int64_t h = 0; h < config.local_steps; ++h) {
          Dataset batch = NextBatch(w, config.batch_size);
          w->model.ZeroGrads();
          Tensor logits = w->model.Forward(batch.x, CacheMode::kCache);
          LossGrad lg = SoftmaxCrossEntropy(logits, batch.y);
          w->model.Backward(lg.grad);
          w->opt->Step(w->model.Params(), w->model.Grads());
        }
      }
      // All-reduce the parameters of the workers that made the barrier;
      // a stale worker's block is discarded (it takes the average too).
      std::vector<float> mean;
      size_t n = 0;
      for (size_t i = 0; i < live.size(); ++i) {
        if (!included[i]) continue;
        std::vector<float> p = live[i]->model.GetParameterVector();
        if (mean.empty()) {
          mean = std::move(p);
        } else {
          for (size_t j = 0; j < mean.size(); ++j) mean[j] += p[j];
        }
        ++n;
      }
      for (float& v : mean) v /= static_cast<float>(n);
      for (Worker* w : live) w->model.SetParameterVector(mean);
      comm_bytes += 2 * model_bytes * static_cast<int64_t>(live.size());
      comm_seconds += config.network.AllReduceSeconds(
          model_bytes, static_cast<int64_t>(live.size()));
    }

    ++round;
    if (config.checkpoint_interval > 0 &&
        round % config.checkpoint_interval == 0 && round < total_rounds) {
      DLSYS_RETURN_NOT_OK(take_checkpoint(round));
    }
  }

  // Workers compute in parallel in a real cluster: simulated parallel
  // compute time is total single-thread compute divided by worker count.
  const double compute_seconds =
      compute_watch.Seconds() / static_cast<double>(config.workers);

  ClusterResult out;
  // Final model: average of live replicas (identical already in sync mode).
  std::vector<Worker*> live = LiveWorkers(&workers);
  std::vector<float> mean = live[0]->model.GetParameterVector();
  for (size_t w = 1; w < live.size(); ++w) {
    std::vector<float> p = live[w]->model.GetParameterVector();
    for (size_t i = 0; i < mean.size(); ++i) mean[i] += p[i];
  }
  for (float& v : mean) v /= static_cast<float>(live.size());
  out.model = arch.Clone();
  out.model.SetParameterVector(mean);
  out.report.Set(metric::kCommBytes, static_cast<double>(comm_bytes));
  // Mirror the per-run tallies into the process-wide registry: tests and
  // exporters read monotone counters with snapshot/diff semantics, and
  // the simulated wire traffic lands in the comm phase for src/green's
  // per-phase energy accounting.
  {
    DLSYS_PHASE_SCOPE(obs::Phase::kComm);
    DLSYS_COST_BYTES(comm_bytes);
  }
  DLSYS_COUNTER_ADD("fault.crashes", static_cast<int64_t>(crashes));
  DLSYS_COUNTER_ADD("fault.rollbacks", static_cast<int64_t>(rollbacks));
  DLSYS_COUNTER_ADD("fault.wasted_rounds",
                    static_cast<int64_t>(wasted_rounds));
  DLSYS_COUNTER_ADD("fault.checkpoint_count",
                    static_cast<int64_t>(checkpoint_count));
  DLSYS_COUNTER_ADD("fault.dropped_messages",
                    static_cast<int64_t>(dropped_messages));
  DLSYS_COUNTER_ADD("fault.excluded_worker_rounds",
                    static_cast<int64_t>(excluded_worker_rounds));
  DLSYS_COUNTER_ADD("cluster.comm_bytes", comm_bytes);
  DLSYS_GAUGE_SET("fault.live_workers", static_cast<int64_t>(live.size()));
  out.report.Set("resource.comm_seconds", comm_seconds);
  out.report.Set("resource.compute_seconds", compute_seconds);
  out.report.Set(metric::kTrainSeconds,
                 comm_seconds + compute_seconds + recovery_seconds +
                     checkpoint_seconds + straggler_seconds);
  out.report.Set(fault_metric::kCrashes, crashes);
  out.report.Set(fault_metric::kRollbacks, rollbacks);
  out.report.Set(fault_metric::kWastedRounds, wasted_rounds);
  out.report.Set(fault_metric::kRecoverySeconds, recovery_seconds);
  out.report.Set(fault_metric::kCheckpointCount, checkpoint_count);
  out.report.Set(fault_metric::kCheckpointSeconds, checkpoint_seconds);
  out.report.Set(fault_metric::kDroppedMessages, dropped_messages);
  out.report.Set(fault_metric::kStragglerSeconds, straggler_seconds);
  out.report.Set(fault_metric::kExcludedWorkerRounds,
                 excluded_worker_rounds);
  out.report.Set(fault_metric::kLiveWorkers,
                 static_cast<double>(live.size()));
  return out;
}

}  // namespace dlsys
