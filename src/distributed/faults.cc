#include "src/distributed/faults.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace dlsys {

namespace {

/// SplitMix64 finalizer: a full-avalanche 64-bit mix.
uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Domain-separation tags so crash and drop draws never collide.
constexpr uint64_t kCrashTag = 0xC7A5ULL;
constexpr uint64_t kDropTag = 0xD70BULL;

}  // namespace

Status ValidateFaultPlan(const FaultPlan& plan, int64_t workers) {
  if (plan.crash_prob < 0.0 || plan.crash_prob > 1.0) {
    return Status::InvalidArgument("crash_prob must be in [0, 1]");
  }
  if (plan.drop_prob < 0.0 || plan.drop_prob > 1.0) {
    return Status::InvalidArgument("drop_prob must be in [0, 1]");
  }
  for (const CrashEvent& e : plan.crashes) {
    if (e.round < 0) {
      return Status::InvalidArgument("crash round must be non-negative");
    }
    if (e.worker < 0 || e.worker >= workers) {
      return Status::InvalidArgument(
          "crash worker " + std::to_string(e.worker) +
          " out of range for " + std::to_string(workers) + " workers");
    }
  }
  for (const StragglerSpec& s : plan.stragglers) {
    if (s.worker < 0 || s.worker >= workers) {
      return Status::InvalidArgument(
          "straggler worker " + std::to_string(s.worker) +
          " out of range for " + std::to_string(workers) + " workers");
    }
    if (s.slowdown < 1.0) {
      return Status::InvalidArgument("straggler slowdown must be >= 1");
    }
  }
  return Status::OK();
}

namespace {

/// Hex-float rendering so probabilities and slowdowns restore bit-for-bit.
std::string HexDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

bool ParseHexDouble(const std::string& token, double* out) {
  const char* s = token.c_str();
  char* end = nullptr;
  *out = std::strtod(s, &end);
  return end != s && *end == '\0';
}

bool ParseInt(const std::string& token, int64_t* out) {
  const char* s = token.c_str();
  char* end = nullptr;
  *out = std::strtoll(s, &end, 10);
  return end != s && *end == '\0';
}

bool ParseUint(const std::string& token, uint64_t* out) {
  const char* s = token.c_str();
  char* end = nullptr;
  *out = std::strtoull(s, &end, 10);
  return end != s && *end == '\0';
}

}  // namespace

std::string SerializeFaultPlan(const FaultPlan& plan) {
  std::ostringstream out;
  out << "seed " << plan.seed << "\n";
  out << "crash_prob " << HexDouble(plan.crash_prob) << "\n";
  out << "drop_prob " << HexDouble(plan.drop_prob) << "\n";
  for (const CrashEvent& e : plan.crashes) {
    out << "crash " << e.round << " " << e.worker << "\n";
  }
  for (const StragglerSpec& s : plan.stragglers) {
    out << "straggler " << s.worker << " " << HexDouble(s.slowdown) << "\n";
  }
  return out.str();
}

Result<FaultPlan> ParseFaultPlan(const std::string& text) {
  FaultPlan plan;
  std::istringstream in(text);
  std::string line;
  int64_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string directive, a, b;
    fields >> directive >> a >> b;
    const std::string where = " (line " + std::to_string(lineno) + ")";
    if (directive == "seed") {
      if (!ParseUint(a, &plan.seed)) {
        return Status::InvalidArgument("bad seed" + where);
      }
    } else if (directive == "crash_prob") {
      if (!ParseHexDouble(a, &plan.crash_prob)) {
        return Status::InvalidArgument("bad crash_prob" + where);
      }
    } else if (directive == "drop_prob") {
      if (!ParseHexDouble(a, &plan.drop_prob)) {
        return Status::InvalidArgument("bad drop_prob" + where);
      }
    } else if (directive == "crash") {
      CrashEvent e;
      if (!ParseInt(a, &e.round) || !ParseInt(b, &e.worker)) {
        return Status::InvalidArgument("bad crash event" + where);
      }
      plan.crashes.push_back(e);
    } else if (directive == "straggler") {
      StragglerSpec s;
      if (!ParseInt(a, &s.worker) || !ParseHexDouble(b, &s.slowdown)) {
        return Status::InvalidArgument("bad straggler" + where);
      }
      plan.stragglers.push_back(s);
    } else {
      return Status::InvalidArgument("unknown fault-plan directive '" +
                                     directive + "'" + where);
    }
  }
  return plan;
}

FaultInjector::FaultInjector(const FaultPlan& plan, int64_t workers)
    : plan_(plan),
      slowdown_(static_cast<size_t>(workers), 1.0),
      consumed_(plan.crashes.size(), false) {
  for (const StragglerSpec& s : plan_.stragglers) {
    slowdown_[static_cast<size_t>(s.worker)] = s.slowdown;
  }
}

double FaultInjector::UnitDraw(uint64_t tag, uint64_t a, uint64_t b,
                               uint64_t c) const {
  const uint64_t h =
      Mix64(plan_.seed ^ Mix64(tag ^ Mix64(a ^ Mix64(b ^ Mix64(c)))));
  // Top 53 bits -> [0, 1) at double precision.
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

bool FaultInjector::CrashesAt(int64_t worker, int64_t round,
                              int64_t generation) const {
  for (size_t i = 0; i < plan_.crashes.size(); ++i) {
    if (!consumed_[i] && plan_.crashes[i].worker == worker &&
        plan_.crashes[i].round == round) {
      return true;
    }
  }
  if (plan_.crash_prob > 0.0) {
    return UnitDraw(kCrashTag, static_cast<uint64_t>(worker),
                    static_cast<uint64_t>(round),
                    static_cast<uint64_t>(generation)) < plan_.crash_prob;
  }
  return false;
}

void FaultInjector::ConsumeCrash(int64_t worker, int64_t round) {
  for (size_t i = 0; i < plan_.crashes.size(); ++i) {
    if (plan_.crashes[i].worker == worker &&
        plan_.crashes[i].round == round) {
      consumed_[i] = true;
    }
  }
}

double FaultInjector::Slowdown(int64_t worker) const {
  return slowdown_[static_cast<size_t>(worker)];
}

int64_t FaultInjector::FailedAttempts(int64_t worker, int64_t round,
                                      int64_t message,
                                      int64_t max_retries) const {
  if (plan_.drop_prob <= 0.0) return 0;
  // Fold (round, message) into one coordinate; rounds and message ids are
  // small, so the split below never collides in practice.
  const uint64_t rm = (static_cast<uint64_t>(round) << 20) ^
                      static_cast<uint64_t>(message);
  int64_t failed = 0;
  while (failed < max_retries &&
         UnitDraw(kDropTag, static_cast<uint64_t>(worker), rm,
                  static_cast<uint64_t>(failed)) < plan_.drop_prob) {
    ++failed;
  }
  return failed;
}

}  // namespace dlsys
