#include "src/distributed/priority.h"

#include <algorithm>

#include "src/core/status.h"

namespace dlsys {

double SimulatePropagation(const std::vector<LayerCost>& layers,
                           const NetworkModel& network,
                           PropagationPolicy policy) {
  const int64_t n = static_cast<int64_t>(layers.size());
  DLSYS_CHECK(n > 0, "no layers to simulate");

  // Gradient availability times: backward walks L-1 .. 0.
  std::vector<double> grad_ready(static_cast<size_t>(n));
  double t = 0.0;
  for (int64_t i = n - 1; i >= 0; --i) {
    t += layers[static_cast<size_t>(i)].backward_seconds;
    grad_ready[static_cast<size_t>(i)] = t;
  }
  const double backward_done = t;

  // Schedule transfers on the single link.
  std::vector<double> transfer_done(static_cast<size_t>(n));
  std::vector<bool> sent(static_cast<size_t>(n), false);
  double link_free = 0.0;
  if (policy == PropagationPolicy::kNoOverlap) {
    // Naive bulk-synchronous baseline: the whole gradient is exchanged
    // after backward completes, and the next forward pass starts only
    // once every transfer has finished.
    link_free = backward_done;
    for (int64_t i = 0; i < n; ++i) {
      link_free += network.TransferSeconds(
          layers[static_cast<size_t>(i)].gradient_bytes);
    }
    for (int64_t i = 0; i < n; ++i) {
      transfer_done[static_cast<size_t>(i)] = link_free;
    }
  } else {
    // Event loop: repeatedly pick the next transfer among available
    // gradients according to policy; if none available, idle to the next
    // availability.
    int64_t remaining = n;
    while (remaining > 0) {
      // Gradients available at or before link_free.
      int64_t pick = -1;
      double earliest_ready = 1e300;
      for (int64_t i = 0; i < n; ++i) {
        if (sent[static_cast<size_t>(i)]) continue;
        earliest_ready =
            std::min(earliest_ready, grad_ready[static_cast<size_t>(i)]);
        if (grad_ready[static_cast<size_t>(i)] <= link_free) {
          if (pick == -1) {
            pick = i;
          } else if (policy == PropagationPolicy::kPriority) {
            if (i < pick) pick = i;  // lowest layer index wins
          } else {  // kFifo: earliest availability wins; ties by higher
                    // layer index (produced first in backward)
            if (grad_ready[static_cast<size_t>(i)] <
                grad_ready[static_cast<size_t>(pick)]) {
              pick = i;
            }
          }
        }
      }
      if (pick == -1) {
        link_free = earliest_ready;
        continue;
      }
      link_free += network.TransferSeconds(
          layers[static_cast<size_t>(pick)].gradient_bytes);
      transfer_done[static_cast<size_t>(pick)] = link_free;
      sent[static_cast<size_t>(pick)] = true;
      --remaining;
    }
  }

  // Next forward pass: layer i needs its transfer and layer i-1 forward.
  double forward_clock = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    forward_clock = std::max(forward_clock,
                             transfer_done[static_cast<size_t>(i)]) +
                    layers[static_cast<size_t>(i)].forward_seconds;
  }
  return forward_clock;
}

}  // namespace dlsys
