#ifndef DLSYS_DISTRIBUTED_PRIORITY_H_
#define DLSYS_DISTRIBUTED_PRIORITY_H_

#include <cstdint>
#include <vector>

#include "src/distributed/network_model.h"

/// \file priority.h
/// \brief Priority-based parameter propagation (tutorial Section 2.1,
/// P3 / Jayarajan et al.): overlap gradient communication with compute
/// and send the layers the *next forward pass needs first* first.
///
/// An event-driven simulation of one training-iteration boundary:
/// backward produces per-layer gradients last-layer-first; a single
/// shared link transfers them; the next forward pass consumes updated
/// layers first-layer-first. Scheduling policy decides the transfer
/// order, which determines how much communication hides behind compute.

namespace dlsys {

/// \brief Per-layer costs for the propagation simulation.
struct LayerCost {
  double backward_seconds = 0.0;  ///< compute to produce this layer's grad
  double forward_seconds = 0.0;   ///< compute of this layer's forward
  int64_t gradient_bytes = 0;     ///< parameter-gradient size
};

/// \brief Transfer scheduling policy at the link.
enum class PropagationPolicy {
  kNoOverlap,  ///< transfer only after the whole backward pass finishes
  kFifo,       ///< transfer in gradient-availability order (last layer first)
  kPriority,   ///< P3: lowest layer index first among available gradients
};

/// \brief Simulates one iteration boundary and returns the makespan:
/// time from backward start until the next forward pass completes.
///
/// Layer 0 is the input layer. Backward runs layers (L-1 .. 0); layer i's
/// gradient is available when backward reaches it. The link is busy
/// non-preemptively. Next-iteration forward runs layers (0 .. L-1);
/// layer i's forward may start once layer i's transfer completed and
/// layer i-1's forward finished.
double SimulatePropagation(const std::vector<LayerCost>& layers,
                           const NetworkModel& network,
                           PropagationPolicy policy);

}  // namespace dlsys

#endif  // DLSYS_DISTRIBUTED_PRIORITY_H_
