#include "src/vecsearch/knn.h"

#include <algorithm>
#include <cmath>
#include <queue>

namespace dlsys {

namespace {
double L2Sq(const float* a, const float* b, int64_t d) {
  double s = 0.0;
  for (int64_t i = 0; i < d; ++i) {
    const double diff = static_cast<double>(a[i]) - b[i];
    s += diff * diff;
  }
  return s;
}

// Keeps the k smallest (distance, id) pairs.
std::vector<int64_t> TopK(
    std::vector<std::pair<double, int64_t>>* candidates, int64_t k) {
  const int64_t keep =
      std::min<int64_t>(k, static_cast<int64_t>(candidates->size()));
  std::partial_sort(candidates->begin(), candidates->begin() + keep,
                    candidates->end());
  std::vector<int64_t> out;
  out.reserve(static_cast<size_t>(keep));
  for (int64_t i = 0; i < keep; ++i) {
    out.push_back((*candidates)[static_cast<size_t>(i)].second);
  }
  return out;
}
}  // namespace

std::vector<int64_t> BruteForceKnn(const Tensor& base, const float* query,
                                   int64_t k) {
  DLSYS_CHECK(base.rank() == 2 && k > 0, "bad knn input");
  const int64_t n = base.dim(0), d = base.dim(1);
  std::vector<std::pair<double, int64_t>> candidates;
  candidates.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    candidates.push_back({L2Sq(base.data() + i * d, query, d), i});
  }
  return TopK(&candidates, k);
}

Result<IvfIndex> IvfIndex::Build(const Tensor& base, int64_t num_lists,
                                 int64_t kmeans_iters, uint64_t seed) {
  if (base.rank() != 2 || base.dim(0) == 0) {
    return Status::InvalidArgument("base must be a non-empty n x d tensor");
  }
  if (num_lists <= 0 || num_lists > base.dim(0)) {
    return Status::InvalidArgument("num_lists must be in [1, n]");
  }
  IvfIndex index;
  index.base_ = &base;
  const int64_t n = base.dim(0), d = base.dim(1);
  index.dims_ = d;
  // Seed centroids with random distinct base vectors.
  Rng rng(seed);
  std::vector<int64_t> perm(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) perm[static_cast<size_t>(i)] = i;
  rng.Shuffle(&perm);
  index.centroids_.resize(static_cast<size_t>(num_lists * d));
  for (int64_t c = 0; c < num_lists; ++c) {
    const float* src = base.data() + perm[static_cast<size_t>(c)] * d;
    std::copy(src, src + d, index.centroids_.begin() + c * d);
  }
  std::vector<int64_t> assign(static_cast<size_t>(n), 0);
  for (int64_t iter = 0; iter < kmeans_iters; ++iter) {
    // Assign.
    for (int64_t i = 0; i < n; ++i) {
      double best = 1e300;
      int64_t pick = 0;
      for (int64_t c = 0; c < num_lists; ++c) {
        const double dist =
            L2Sq(base.data() + i * d, index.centroids_.data() + c * d, d);
        if (dist < best) {
          best = dist;
          pick = c;
        }
      }
      assign[static_cast<size_t>(i)] = pick;
    }
    // Update.
    std::vector<double> sums(static_cast<size_t>(num_lists * d), 0.0);
    std::vector<int64_t> counts(static_cast<size_t>(num_lists), 0);
    for (int64_t i = 0; i < n; ++i) {
      const int64_t c = assign[static_cast<size_t>(i)];
      counts[static_cast<size_t>(c)] += 1;
      for (int64_t j = 0; j < d; ++j) {
        sums[static_cast<size_t>(c * d + j)] += base[i * d + j];
      }
    }
    for (int64_t c = 0; c < num_lists; ++c) {
      if (counts[static_cast<size_t>(c)] == 0) continue;
      for (int64_t j = 0; j < d; ++j) {
        index.centroids_[static_cast<size_t>(c * d + j)] =
            static_cast<float>(sums[static_cast<size_t>(c * d + j)] /
                               counts[static_cast<size_t>(c)]);
      }
    }
  }
  index.lists_.assign(static_cast<size_t>(num_lists), {});
  for (int64_t i = 0; i < n; ++i) {
    index.lists_[static_cast<size_t>(assign[static_cast<size_t>(i)])]
        .push_back(i);
  }
  return index;
}

std::vector<int64_t> IvfIndex::Search(const float* query, int64_t k,
                                      int64_t nprobe) const {
  DLSYS_CHECK(base_ != nullptr, "index not built");
  DLSYS_CHECK(k > 0 && nprobe > 0, "bad search params");
  const int64_t probes = std::min<int64_t>(nprobe, num_lists());
  // Rank lists by centroid distance.
  std::vector<std::pair<double, int64_t>> order;
  for (int64_t c = 0; c < num_lists(); ++c) {
    order.push_back(
        {L2Sq(query, centroids_.data() + c * dims_, dims_), c});
  }
  std::partial_sort(order.begin(), order.begin() + probes, order.end());
  std::vector<std::pair<double, int64_t>> candidates;
  for (int64_t p = 0; p < probes; ++p) {
    for (int64_t row : lists_[static_cast<size_t>(order[
             static_cast<size_t>(p)].second)]) {
      candidates.push_back(
          {L2Sq(base_->data() + row * dims_, query, dims_), row});
    }
  }
  return TopK(&candidates, k);
}

int64_t IvfIndex::MemoryBytes() const {
  int64_t bytes = static_cast<int64_t>(centroids_.size()) * 4;
  for (const auto& list : lists_) {
    bytes += static_cast<int64_t>(list.size()) * 8;
  }
  return bytes;
}

double RecallAtK(const std::vector<int64_t>& approx,
                 const std::vector<int64_t>& truth) {
  if (truth.empty()) return 0.0;
  int64_t hits = 0;
  for (int64_t t : truth) {
    for (int64_t a : approx) {
      if (a == t) {
        ++hits;
        break;
      }
    }
  }
  return static_cast<double>(hits) / static_cast<double>(truth.size());
}

Tensor MakeEmbeddingCorpus(int64_t n, int64_t dims, int64_t clusters,
                           Rng* rng) {
  DLSYS_CHECK(n > 0 && dims > 0 && clusters > 0, "bad corpus config");
  Tensor centers({clusters, dims});
  centers.FillGaussian(rng, 3.0f);
  Tensor out({n, dims});
  for (int64_t i = 0; i < n; ++i) {
    const int64_t c = static_cast<int64_t>(rng->Index(
        static_cast<uint64_t>(clusters)));
    for (int64_t d = 0; d < dims; ++d) {
      out[i * dims + d] = centers[c * dims + d] +
                          static_cast<float>(rng->Gaussian() * 0.7);
    }
  }
  return out;
}

}  // namespace dlsys
