#ifndef DLSYS_VECSEARCH_KNN_H_
#define DLSYS_VECSEARCH_KNN_H_

#include <cstdint>
#include <vector>

#include "src/core/rng.h"
#include "src/core/status.h"
#include "src/tensor/tensor.h"

/// \file knn.h
/// \brief High-dimensional vector similarity search (tutorial Part 2,
/// citing Echihabi's "High-Dimensional Vector Similarity Search"): the
/// access-method problem behind deep embeddings. Exact brute-force
/// scan as ground truth, and an IVF (inverted-file) index that trades
/// recall for latency via its probe count.

namespace dlsys {

/// \brief Exact k-nearest-neighbour scan under L2; returns row indices
/// ordered by ascending distance.
std::vector<int64_t> BruteForceKnn(const Tensor& base, const float* query,
                                   int64_t k);

/// \brief Inverted-file index: base vectors are clustered by k-means;
/// a query scans only the \p nprobe nearest clusters.
class IvfIndex {
 public:
  /// \brief Builds the index over \p base (n x d) with \p num_lists
  /// clusters trained by \p kmeans_iters Lloyd iterations.
  static Result<IvfIndex> Build(const Tensor& base, int64_t num_lists,
                                int64_t kmeans_iters, uint64_t seed);

  /// \brief Approximate k-NN probing the \p nprobe closest lists.
  std::vector<int64_t> Search(const float* query, int64_t k,
                              int64_t nprobe) const;

  /// \brief Number of inverted lists.
  int64_t num_lists() const {
    return static_cast<int64_t>(lists_.size());
  }
  /// \brief Index memory: centroids + list contents.
  int64_t MemoryBytes() const;

 private:
  const Tensor* base_ = nullptr;
  int64_t dims_ = 0;
  std::vector<float> centroids_;             ///< num_lists x dims
  std::vector<std::vector<int64_t>> lists_;  ///< row ids per cluster
};

/// \brief Recall@k of \p approx against exact \p truth (fraction of
/// true neighbours retrieved).
double RecallAtK(const std::vector<int64_t>& approx,
                 const std::vector<int64_t>& truth);

/// \brief Synthetic embedding workload: \p clusters Gaussian bundles in
/// \p dims dimensions (embeddings are clustered in practice — that is
/// what IVF exploits).
Tensor MakeEmbeddingCorpus(int64_t n, int64_t dims, int64_t clusters,
                           Rng* rng);

}  // namespace dlsys

#endif  // DLSYS_VECSEARCH_KNN_H_
