#ifndef DLSYS_TENSOR_INT8_GEMM_H_
#define DLSYS_TENSOR_INT8_GEMM_H_

#include <cstdint>

/// \file int8_gemm.h
/// \brief Integer GEMM kernel for the quantized inference path.
///
/// The int8 inference path (src/infer) stores Dense weights as symmetric
/// per-row int8 (src/compress/quantization.h), quantizes activations per
/// row on the fly, and runs the matrix product entirely in integers:
/// int8 x int8 products accumulated in int32. Integer addition is
/// associative, so — unlike the float kernels — the compiler is free to
/// reorder and vectorize the reduction without breaking determinism; the
/// result is exact for any thread count and any instruction schedule.
/// A float requantization epilogue in the engine maps the int32
/// accumulators back to fp32 activations at each layer boundary.

namespace dlsys {

/// \brief C(MxN) = A(MxK) * B(NxK)^T over int8 inputs, int32 accumulation.
///
/// C[i][j] = sum_p (int32)a[i*k+p] * (int32)b[j*k+p]. B is row-major
/// N x K — the natural layout for a weight matrix quantized per output
/// row — so both operands stream contiguously. Row-parallel via
/// ParallelFor and allocation-free; the maximum K for which overflow is
/// impossible (127*127*K < 2^31) exceeds 10^5, far beyond any layer here.
void Int8GemmTransBInto(const int8_t* a, const int8_t* b, int32_t* c,
                        int64_t m, int64_t k, int64_t n);

/// \brief Reference loop nest for Int8GemmTransBInto (exact, so results
/// must match the optimised kernel bit-for-bit at every thread count).
void NaiveInt8GemmTransBInto(const int8_t* a, const int8_t* b, int32_t* c,
                             int64_t m, int64_t k, int64_t n);

}  // namespace dlsys

#endif  // DLSYS_TENSOR_INT8_GEMM_H_
