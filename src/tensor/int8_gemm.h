#ifndef DLSYS_TENSOR_INT8_GEMM_H_
#define DLSYS_TENSOR_INT8_GEMM_H_

#include <cstdint>

/// \file int8_gemm.h
/// \brief Integer GEMM kernel for the quantized inference path.
///
/// The int8 inference path (src/infer) stores Dense weights as symmetric
/// per-row int8 (src/compress/quantization.h), quantizes activations per
/// row on the fly, and runs the matrix product entirely in integers:
/// int8 x int8 products accumulated in int32. Integer addition is
/// associative, so — unlike the float kernels — any instruction schedule
/// (including the AVX2/AVX-512 vpmaddwd microkernels behind the dispatch
/// registry, src/simd/dispatch.h) produces the exact same result at any
/// thread count.
///
/// Two weight formats ride on this kernel family:
/// - per-row symmetric int8 (SymmetricInt8Matrix): one scale per matrix
///   row, requantization epilogue in the engine.
/// - ggml-style block quantization (Q8BlockMatrix / Q4BlockMatrix in
///   src/compress/quantization.h): one scale per 32-element block along K,
///   dequantization fused into the GEMM inner loop — the Q8/Q4 entry
///   points below produce fp32 output directly.

namespace dlsys {

/// \brief C(MxN) = A(MxK) * B(NxK)^T over int8 inputs, int32 accumulation.
///
/// C[i][j] = sum_p (int32)a[i*k+p] * (int32)b[j*k+p]. B is row-major
/// N x K — the natural layout for a weight matrix quantized per output
/// row — so both operands stream contiguously. Row-parallel via
/// ParallelFor and allocation-free; the maximum K for which overflow is
/// impossible (127*127*K < 2^31) exceeds 10^5, far beyond any layer here.
void Int8GemmTransBInto(const int8_t* a, const int8_t* b, int32_t* c,
                        int64_t m, int64_t k, int64_t n);

/// \brief Reference loop nest for Int8GemmTransBInto (exact, so results
/// must match the optimised kernel bit-for-bit at every thread count).
void NaiveInt8GemmTransBInto(const int8_t* a, const int8_t* b, int32_t* c,
                             int64_t m, int64_t k, int64_t n);

/// \brief C(MxN) = dequant(A) * dequant(B)^T for q8-block operands with
/// dequantization fused into the inner loop.
///
/// A is M x kp int8 with one float scale per 32-element block (kp = K
/// padded up to a multiple of 32; pad codes are 0 so they contribute
/// nothing). B is N x kp in the same layout. Per block the int32 dot is
/// exact; the fp32 output accumulates float(dot) * (a_scale * b_scale) in
/// ascending block order, so every ISA produces bit-identical results.
void Q8BlockGemmTransBInto(const int8_t* a, const float* a_scales,
                           const int8_t* b, const float* b_scales, float* c,
                           int64_t m, int64_t kp, int64_t n);

/// \brief Like Q8BlockGemmTransBInto but B is nibble-packed q4: 16 bytes
/// per 32-element block, byte t = element t (low nibble) | element 16+t
/// (high nibble), stored code = q + 8 with q in [-8, 7] (the quantizer
/// emits [-7, 7]; -8 only ever appears via the fused subtract).
void Q4BlockGemmTransBInto(const int8_t* a, const float* a_scales,
                           const uint8_t* b, const float* b_scales, float* c,
                           int64_t m, int64_t kp, int64_t n);

/// \brief Reference for Q8BlockGemmTransBInto (bit-exact target).
void NaiveQ8BlockGemmTransBInto(const int8_t* a, const float* a_scales,
                                const int8_t* b, const float* b_scales,
                                float* c, int64_t m, int64_t kp, int64_t n);

/// \brief Reference for Q4BlockGemmTransBInto (bit-exact target).
void NaiveQ4BlockGemmTransBInto(const int8_t* a, const float* a_scales,
                                const uint8_t* b, const float* b_scales,
                                float* c, int64_t m, int64_t kp, int64_t n);

}  // namespace dlsys

#endif  // DLSYS_TENSOR_INT8_GEMM_H_
