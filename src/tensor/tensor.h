#ifndef DLSYS_TENSOR_TENSOR_H_
#define DLSYS_TENSOR_TENSOR_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "src/core/rng.h"
#include "src/core/status.h"

/// \file tensor.h
/// \brief Dense row-major float tensors with byte-accurate memory tracking.
///
/// The tutorial's Part 1 frames deep learning as data movement and
/// computation over large arrays; the memory-oriented techniques of
/// Section 2.3 (checkpointing, offloading) need to *measure* how many
/// bytes a training step holds live. Every Tensor allocation and release
/// reports to the process-wide MemoryTracker so current/peak byte counts
/// are exact, not estimated.

namespace dlsys {

/// \brief Process-wide accounting of live tensor bytes.
///
/// Thread-safe. Peak tracking is monotone between calls to ResetPeak().
class MemoryTracker {
 public:
  /// \brief The singleton tracker.
  static MemoryTracker& Global();

  /// \brief Records an allocation of \p bytes.
  void Allocate(int64_t bytes);
  /// \brief Records a release of \p bytes.
  void Release(int64_t bytes);
  /// \brief Bytes currently live.
  int64_t current_bytes() const { return current_.load(); }
  /// \brief Highest value current_bytes() has reached since ResetPeak().
  int64_t peak_bytes() const { return peak_.load(); }
  /// \brief Resets the peak to the current level.
  void ResetPeak() { peak_.store(current_.load()); }

  /// \brief Tensor allocation events since process start (monotone).
  ///
  /// Sampling this counter around a code region bounds how many tensor
  /// allocations the region performed — the inference engine's
  /// zero-steady-state-allocation contract is tested exactly this way
  /// (see tests/test_inference.cc).
  int64_t allocation_count() const { return alloc_count_.load(); }

 private:
  std::atomic<int64_t> current_{0};
  std::atomic<int64_t> peak_{0};
  std::atomic<int64_t> alloc_count_{0};
};

/// \brief Tensor shape: a list of non-negative dimension extents.
using Shape = std::vector<int64_t>;

/// \brief Number of elements a shape describes (product of extents).
int64_t NumElements(const Shape& shape);
/// \brief "[2, 3, 4]"-style rendering.
std::string ShapeToString(const Shape& shape);

/// \brief Dense row-major float32 tensor with value semantics.
///
/// Copies duplicate storage (and are tracked); moves transfer it. All
/// index arithmetic is int64_t. Element access is unchecked in release
/// builds via data(); at(...) checks bounds.
class Tensor {
 public:
  /// Constructs an empty (rank-0, zero-element) tensor.
  Tensor() = default;
  /// Constructs a zero-filled tensor of the given shape.
  explicit Tensor(Shape shape);
  /// Constructs a tensor of the given shape filled with \p fill.
  Tensor(Shape shape, float fill);
  /// Constructs from a shape and an explicit element list (sizes must
  /// match; checked).
  Tensor(Shape shape, std::vector<float> values);

  Tensor(const Tensor& other);
  Tensor& operator=(const Tensor& other);
  Tensor(Tensor&& other) noexcept;
  Tensor& operator=(Tensor&& other) noexcept;
  ~Tensor();

  /// \brief The tensor's shape.
  const Shape& shape() const { return shape_; }
  /// \brief Number of dimensions.
  int64_t rank() const { return static_cast<int64_t>(shape_.size()); }
  /// \brief Extent of dimension \p d (supports negative indices).
  int64_t dim(int64_t d) const;
  /// \brief Total number of elements.
  int64_t size() const { return static_cast<int64_t>(data_.size()); }
  /// \brief Bytes of element storage.
  int64_t bytes() const { return size() * static_cast<int64_t>(sizeof(float)); }
  /// \brief True iff the tensor holds no elements.
  bool empty() const { return data_.empty(); }

  /// \brief Mutable flat element storage, row-major.
  float* data() { return data_.data(); }
  /// \brief Immutable flat element storage, row-major.
  const float* data() const { return data_.data(); }
  /// \brief Flat element access, unchecked.
  float& operator[](int64_t i) { return data_[i]; }
  float operator[](int64_t i) const { return data_[i]; }

  /// \brief Checked 2-D element access (requires rank 2).
  float& at(int64_t r, int64_t c);
  float at(int64_t r, int64_t c) const;

  /// \brief Returns a same-storage tensor with a different shape.
  /// Element counts must match (checked).
  Tensor Reshaped(Shape new_shape) const;

  /// \brief Releases storage and becomes empty.
  void Clear();

  /// \brief Fills with independent draws N(0, stddev^2).
  void FillGaussian(Rng* rng, float stddev);
  /// \brief Fills with independent draws U[lo, hi).
  void FillUniform(Rng* rng, float lo, float hi);
  /// \brief Fills every element with \p v.
  void Fill(float v);

  /// \brief Sum of all elements.
  double Sum() const;
  /// \brief Largest element (requires non-empty).
  float Max() const;
  /// \brief Index of the largest element (requires non-empty).
  int64_t ArgMax() const;
  /// \brief sqrt(sum of squares).
  double L2Norm() const;

  /// \brief "Tensor([2, 3], [...first elements...])" rendering.
  std::string ToString(int64_t max_elems = 8) const;

 private:
  void Track(int64_t delta);

  Shape shape_;
  std::vector<float> data_;
};

}  // namespace dlsys

#endif  // DLSYS_TENSOR_TENSOR_H_
