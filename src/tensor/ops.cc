#include "src/tensor/ops.h"

#include <algorithm>
#include <cmath>

#include "src/obs/cost.h"
#include "src/obs/trace.h"
#include "src/runtime/runtime.h"

namespace dlsys {
namespace {

// ---------------------------------------------------------------- GEMM
//
// All three GEMM variants share one structure: the output row range is
// statically partitioned across workers by ParallelFor, and inside a range
// the kernel walks register tiles of C. The accumulation order for any
// single C element is ascending-p (the inner dimension), exactly the order
// of the naive loop nests below — a float round-trip through a register
// instead of memory does not change the value, so optimised and naive
// paths are bitwise identical, at every thread count.
//
// Tile shape: kMr x kNr floats of C held in registers across the whole
// p loop. The inner jj loop over a fixed-extent tile row vectorises
// cleanly (no branch, no aliasing: acc is a local array).

constexpr int64_t kMr = 4;        // C rows per register tile
constexpr int64_t kNr = 32;       // C columns per register tile
constexpr int64_t kRowGrain = 8;  // min C rows per ParallelFor range
constexpr int64_t kEwGrain = 1 << 15;  // elementwise elements per range

// C[i0:i1, :] = A[i0:i1, :] * B for row-major A(MxK), B(KxN).
void MatMulRange(const float* pa, const float* pb, float* pc, int64_t i0,
                 int64_t i1, int64_t k, int64_t n) {
  for (int64_t i = i0; i < i1; i += kMr) {
    const int64_t ir = std::min<int64_t>(kMr, i1 - i);
    int64_t j = 0;
    for (; j + kNr <= n && ir == kMr; j += kNr) {
      float acc[kMr][kNr] = {};
      for (int64_t p = 0; p < k; ++p) {
        const float* brow = pb + p * n + j;
        for (int64_t ii = 0; ii < kMr; ++ii) {
          const float av = pa[(i + ii) * k + p];
          for (int64_t jj = 0; jj < kNr; ++jj) acc[ii][jj] += av * brow[jj];
        }
      }
      for (int64_t ii = 0; ii < kMr; ++ii) {
        float* crow = pc + (i + ii) * n + j;
        for (int64_t jj = 0; jj < kNr; ++jj) crow[jj] = acc[ii][jj];
      }
    }
    // Edge tiles (tail columns, or a short row block): plain loops with
    // the same ascending-p accumulation order per element.
    for (int64_t ii = 0; ii < ir; ++ii) {
      const float* arow = pa + (i + ii) * k;
      float* crow = pc + (i + ii) * n;
      for (int64_t p = 0; p < k; ++p) {
        const float av = arow[p];
        const float* brow = pb + p * n;
        for (int64_t jj = j; jj < n; ++jj) crow[jj] += av * brow[jj];
      }
    }
  }
}

// C[i0:i1, :] = A(KxM)^T * B(KxN) restricted to C rows [i0, i1).
void MatMulTransARange(const float* pa, const float* pb, float* pc,
                       int64_t i0, int64_t i1, int64_t k, int64_t m,
                       int64_t n) {
  for (int64_t i = i0; i < i1; i += kMr) {
    const int64_t ir = std::min<int64_t>(kMr, i1 - i);
    int64_t j = 0;
    for (; j + kNr <= n && ir == kMr; j += kNr) {
      float acc[kMr][kNr] = {};
      for (int64_t p = 0; p < k; ++p) {
        const float* brow = pb + p * n + j;
        const float* acol = pa + p * m + i;
        for (int64_t ii = 0; ii < kMr; ++ii) {
          const float av = acol[ii];
          for (int64_t jj = 0; jj < kNr; ++jj) acc[ii][jj] += av * brow[jj];
        }
      }
      for (int64_t ii = 0; ii < kMr; ++ii) {
        float* crow = pc + (i + ii) * n + j;
        for (int64_t jj = 0; jj < kNr; ++jj) crow[jj] = acc[ii][jj];
      }
    }
    for (int64_t ii = 0; ii < ir; ++ii) {
      float* crow = pc + (i + ii) * n;
      for (int64_t p = 0; p < k; ++p) {
        const float av = pa[p * m + i + ii];
        const float* brow = pb + p * n;
        for (int64_t jj = j; jj < n; ++jj) crow[jj] += av * brow[jj];
      }
    }
  }
}

// C[i0:i1, :] = A(MxK) * B(NxK)^T restricted to C rows [i0, i1). Each C
// element is a dot product accumulated in double, ascending p — same as
// the naive kernel; four independent columns run per iteration for ILP.
void MatMulTransBRange(const float* pa, const float* pb, float* pc,
                       int64_t i0, int64_t i1, int64_t k, int64_t n) {
  for (int64_t i = i0; i < i1; ++i) {
    const float* arow = pa + i * k;
    int64_t j = 0;
    for (; j + 4 <= n; j += 4) {
      const float* b0 = pb + (j + 0) * k;
      const float* b1 = pb + (j + 1) * k;
      const float* b2 = pb + (j + 2) * k;
      const float* b3 = pb + (j + 3) * k;
      double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
      for (int64_t p = 0; p < k; ++p) {
        const float av = arow[p];
        s0 += av * b0[p];
        s1 += av * b1[p];
        s2 += av * b2[p];
        s3 += av * b3[p];
      }
      pc[i * n + j + 0] = static_cast<float>(s0);
      pc[i * n + j + 1] = static_cast<float>(s1);
      pc[i * n + j + 2] = static_cast<float>(s2);
      pc[i * n + j + 3] = static_cast<float>(s3);
    }
    for (; j < n; ++j) {
      const float* brow = pb + j * k;
      double s = 0.0;
      for (int64_t p = 0; p < k; ++p) s += arow[p] * brow[p];
      pc[i * n + j] = static_cast<float>(s);
    }
  }
}

void CheckSameShape(const Tensor& a, const Tensor& b, const char* op) {
  DLSYS_CHECK(a.shape() == b.shape(), op);
}

}  // namespace

Tensor MatMul(const Tensor& a, const Tensor& b) {
  DLSYS_CHECK(a.rank() == 2 && b.rank() == 2, "MatMul requires rank 2");
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  DLSYS_CHECK(b.dim(0) == k, "MatMul inner dimension mismatch");
  DLSYS_TRACE_SPAN_COST("gemm.matmul", "kernel", 2 * m * k * n,
                        4 * (m * k + k * n + m * n));
  DLSYS_COST_FLOPS(2 * m * k * n);
  Tensor c({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  ParallelFor(0, m, kRowGrain, [=](int64_t i0, int64_t i1) {
    MatMulRange(pa, pb, pc, i0, i1, k, n);
  });
  return c;
}

Tensor MatMulTransA(const Tensor& a, const Tensor& b) {
  DLSYS_CHECK(a.rank() == 2 && b.rank() == 2, "MatMulTransA requires rank 2");
  const int64_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  DLSYS_CHECK(b.dim(0) == k, "MatMulTransA inner dimension mismatch");
  DLSYS_TRACE_SPAN_COST("gemm.matmul_ta", "kernel", 2 * m * k * n,
                        4 * (m * k + k * n + m * n));
  DLSYS_COST_FLOPS(2 * m * k * n);
  Tensor c({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  ParallelFor(0, m, kRowGrain, [=](int64_t i0, int64_t i1) {
    MatMulTransARange(pa, pb, pc, i0, i1, k, m, n);
  });
  return c;
}

Tensor MatMulTransB(const Tensor& a, const Tensor& b) {
  DLSYS_CHECK(a.rank() == 2 && b.rank() == 2, "MatMulTransB requires rank 2");
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  DLSYS_CHECK(b.dim(1) == k, "MatMulTransB inner dimension mismatch");
  DLSYS_TRACE_SPAN_COST("gemm.matmul_tb", "kernel", 2 * m * k * n,
                        4 * (m * k + k * n + m * n));
  DLSYS_COST_FLOPS(2 * m * k * n);
  Tensor c({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  ParallelFor(0, m, kRowGrain, [=](int64_t i0, int64_t i1) {
    MatMulTransBRange(pa, pb, pc, i0, i1, k, n);
  });
  return c;
}

void MatMulInto(const float* a, const float* b, float* c, int64_t m,
                int64_t k, int64_t n) {
  DLSYS_TRACE_SPAN_COST("gemm.matmul_into", "kernel", 2 * m * k * n,
                        4 * (m * k + k * n + m * n));
  DLSYS_COST_FLOPS(2 * m * k * n);
  ParallelFor(0, m, kRowGrain, [=](int64_t i0, int64_t i1) {
    // MatMulRange accumulates into C (edge tiles use +=), so the owned row
    // range is zeroed first; a freshly allocated Tensor got this for free.
    std::fill(c + i0 * n, c + i1 * n, 0.0f);
    MatMulRange(a, b, c, i0, i1, k, n);
  });
}

void ConvGemmBiasInto(const float* a, const float* b, const float* bias,
                      float* c, int64_t m, int64_t k, int64_t n) {
  DLSYS_TRACE_SPAN_COST("gemm.conv_gemm_bias", "kernel", 2 * m * k * n,
                        4 * (m * k + k * n + m * n));
  DLSYS_COST_FLOPS(2 * m * k * n);
  // Rows are output channels (few); columns are spatial positions (many),
  // so the column range is what gets partitioned. Each element is owned by
  // exactly one range and accumulated bias-first, ascending-p, in a double
  // — the direct convolution's exact operation sequence.
  ParallelFor(0, n, 64, [=](int64_t j0, int64_t j1) {
    for (int64_t i = 0; i < m; ++i) {
      const float* arow = a + i * k;
      const double bias_i = static_cast<double>(bias[i]);
      int64_t j = j0;
      for (; j + 4 <= j1; j += 4) {
        const float* b0 = b + (j + 0) * k;
        const float* b1 = b + (j + 1) * k;
        const float* b2 = b + (j + 2) * k;
        const float* b3 = b + (j + 3) * k;
        double s0 = bias_i, s1 = bias_i, s2 = bias_i, s3 = bias_i;
        for (int64_t p = 0; p < k; ++p) {
          const float av = arow[p];
          s0 += av * b0[p];
          s1 += av * b1[p];
          s2 += av * b2[p];
          s3 += av * b3[p];
        }
        c[i * n + j + 0] = static_cast<float>(s0);
        c[i * n + j + 1] = static_cast<float>(s1);
        c[i * n + j + 2] = static_cast<float>(s2);
        c[i * n + j + 3] = static_cast<float>(s3);
      }
      for (; j < j1; ++j) {
        const float* brow = b + j * k;
        double s = bias_i;
        for (int64_t p = 0; p < k; ++p) s += arow[p] * brow[p];
        c[i * n + j] = static_cast<float>(s);
      }
    }
  });
}

// ------------------------------------------------- naive references
//
// The seed library's loop nests, retained verbatim minus the
// `if (av == 0.0f) continue;` branches (the branch defeated vectorization
// on the dense inputs every caller passes, and silently changed the cost
// model on sparse data). Skipping a zero term and adding it are bitwise
// identical on finite data, so these remain the reference the optimised
// kernels are tested against.

Tensor NaiveMatMul(const Tensor& a, const Tensor& b) {
  DLSYS_CHECK(a.rank() == 2 && b.rank() == 2, "MatMul requires rank 2");
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  DLSYS_CHECK(b.dim(0) == k, "MatMul inner dimension mismatch");
  DLSYS_TRACE_SPAN_COST("gemm.matmul", "kernel", 2 * m * k * n,
                        4 * (m * k + k * n + m * n));
  DLSYS_COST_FLOPS(2 * m * k * n);
  Tensor c({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t p = 0; p < k; ++p) {
      const float av = pa[i * k + p];
      const float* brow = pb + p * n;
      float* crow = pc + i * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

Tensor NaiveMatMulTransA(const Tensor& a, const Tensor& b) {
  DLSYS_CHECK(a.rank() == 2 && b.rank() == 2, "MatMulTransA requires rank 2");
  const int64_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  DLSYS_CHECK(b.dim(0) == k, "MatMulTransA inner dimension mismatch");
  DLSYS_TRACE_SPAN_COST("gemm.matmul_ta", "kernel", 2 * m * k * n,
                        4 * (m * k + k * n + m * n));
  DLSYS_COST_FLOPS(2 * m * k * n);
  Tensor c({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  for (int64_t p = 0; p < k; ++p) {
    const float* arow = pa + p * m;
    const float* brow = pb + p * n;
    for (int64_t i = 0; i < m; ++i) {
      const float av = arow[i];
      float* crow = pc + i * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

Tensor NaiveMatMulTransB(const Tensor& a, const Tensor& b) {
  DLSYS_CHECK(a.rank() == 2 && b.rank() == 2, "MatMulTransB requires rank 2");
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  DLSYS_CHECK(b.dim(1) == k, "MatMulTransB inner dimension mismatch");
  DLSYS_TRACE_SPAN_COST("gemm.matmul_tb", "kernel", 2 * m * k * n,
                        4 * (m * k + k * n + m * n));
  DLSYS_COST_FLOPS(2 * m * k * n);
  Tensor c({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = pa + i * k;
    for (int64_t j = 0; j < n; ++j) {
      const float* brow = pb + j * k;
      double s = 0.0;
      for (int64_t p = 0; p < k; ++p) s += arow[p] * brow[p];
      pc[i * n + j] = static_cast<float>(s);
    }
  }
  return c;
}

// ------------------------------------------------------- elementwise

Tensor Add(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b, "Add shape mismatch");
  Tensor c = a;
  float* pc = c.data();
  const float* pb = b.data();
  ParallelFor(0, c.size(), kEwGrain, [=](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) pc[i] += pb[i];
  });
  return c;
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b, "Sub shape mismatch");
  Tensor c = a;
  float* pc = c.data();
  const float* pb = b.data();
  ParallelFor(0, c.size(), kEwGrain, [=](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) pc[i] -= pb[i];
  });
  return c;
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b, "Mul shape mismatch");
  Tensor c = a;
  float* pc = c.data();
  const float* pb = b.data();
  ParallelFor(0, c.size(), kEwGrain, [=](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) pc[i] *= pb[i];
  });
  return c;
}

void Axpy(float alpha, const Tensor& b, Tensor* a) {
  DLSYS_CHECK(a->size() == b.size(), "Axpy size mismatch");
  float* pa = a->data();
  const float* pb = b.data();
  ParallelFor(0, a->size(), kEwGrain, [=](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) pa[i] += alpha * pb[i];
  });
}

void Scale(float alpha, Tensor* a) {
  float* pa = a->data();
  ParallelFor(0, a->size(), kEwGrain, [=](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) pa[i] *= alpha;
  });
}

Tensor RowSoftmax(const Tensor& logits) {
  DLSYS_CHECK(logits.rank() == 2, "RowSoftmax requires rank 2");
  const int64_t n = logits.dim(0), c = logits.dim(1);
  Tensor out({n, c});
  const float* pin = logits.data();
  float* pout = out.data();
  ParallelFor(0, n, 8, [=](int64_t r0, int64_t r1) {
    for (int64_t i = r0; i < r1; ++i) {
      const float* row = pin + i * c;
      float* orow = pout + i * c;
      float mx = row[0];
      for (int64_t j = 1; j < c; ++j) mx = row[j] > mx ? row[j] : mx;
      double denom = 0.0;
      for (int64_t j = 0; j < c; ++j) {
        orow[j] = std::exp(row[j] - mx);
        denom += orow[j];
      }
      for (int64_t j = 0; j < c; ++j) {
        orow[j] = static_cast<float>(orow[j] / denom);
      }
    }
  });
  return out;
}

std::vector<int64_t> ArgMaxRows(const Tensor& m) {
  DLSYS_CHECK(m.rank() == 2, "ArgMaxRows requires rank 2");
  const int64_t n = m.dim(0), c = m.dim(1);
  std::vector<int64_t> out(n);
  for (int64_t i = 0; i < n; ++i) {
    const float* row = m.data() + i * c;
    int64_t best = 0;
    for (int64_t j = 1; j < c; ++j) {
      if (row[j] > row[best]) best = j;
    }
    out[i] = best;
  }
  return out;
}

Tensor OneHot(const std::vector<int64_t>& labels, int64_t num_classes) {
  const int64_t n = static_cast<int64_t>(labels.size());
  Tensor out({n, num_classes});
  const int64_t* plabels = labels.data();
  float* pout = out.data();
  ParallelFor(0, n, 256, [=](int64_t r0, int64_t r1) {
    for (int64_t i = r0; i < r1; ++i) {
      DLSYS_CHECK(plabels[i] >= 0 && plabels[i] < num_classes,
                  "label out of range");
      pout[i * num_classes + plabels[i]] = 1.0f;
    }
  });
  return out;
}

Tensor MeanRows(const Tensor& m) {
  DLSYS_CHECK(m.rank() == 2, "MeanRows requires rank 2");
  const int64_t n = m.dim(0), c = m.dim(1);
  Tensor out({c});
  const float* pin = m.data();
  float* pout = out.data();
  // Workers own disjoint column ranges; each column sums rows in ascending
  // i, the serial loop's per-element order, so results are bitwise stable
  // across thread counts.
  ParallelFor(0, c, 8, [=](int64_t j0, int64_t j1) {
    for (int64_t i = 0; i < n; ++i) {
      const float* row = pin + i * c;
      for (int64_t j = j0; j < j1; ++j) pout[j] += row[j];
    }
  });
  if (n > 0) Scale(1.0f / static_cast<float>(n), &out);
  return out;
}

Tensor SliceRows(const Tensor& m, int64_t begin, int64_t end) {
  DLSYS_CHECK(m.rank() == 2, "SliceRows requires rank 2");
  DLSYS_CHECK(begin >= 0 && begin <= end && end <= m.dim(0),
              "SliceRows range invalid");
  const int64_t c = m.dim(1);
  Tensor out({end - begin, c});
  const float* pin = m.data();
  float* pout = out.data();
  const int64_t row_grain = std::max<int64_t>(1, kEwGrain / std::max<int64_t>(c, 1));
  ParallelFor(0, end - begin, row_grain, [=](int64_t r0, int64_t r1) {
    std::copy(pin + (begin + r0) * c, pin + (begin + r1) * c, pout + r0 * c);
  });
  return out;
}

Tensor Transpose(const Tensor& m) {
  DLSYS_CHECK(m.rank() == 2, "Transpose requires rank 2");
  const int64_t r = m.dim(0), c = m.dim(1);
  Tensor out({c, r});
  const float* pin = m.data();
  float* pout = out.data();
  // Tiled copy: each worker owns input rows [i0, i1) — disjoint output
  // columns — and walks 32-wide column blocks so writes stay in-cache.
  constexpr int64_t kTile = 32;
  ParallelFor(0, r, kTile, [=](int64_t i0, int64_t i1) {
    for (int64_t jb = 0; jb < c; jb += kTile) {
      const int64_t je = std::min<int64_t>(jb + kTile, c);
      for (int64_t i = i0; i < i1; ++i) {
        for (int64_t j = jb; j < je; ++j) pout[j * r + i] = pin[i * c + j];
      }
    }
  });
  return out;
}

double Accuracy(const Tensor& logits, const std::vector<int64_t>& labels) {
  DLSYS_CHECK(logits.dim(0) == static_cast<int64_t>(labels.size()),
              "Accuracy: row/label count mismatch");
  if (labels.empty()) return 0.0;
  std::vector<int64_t> pred = ArgMaxRows(logits);
  int64_t hits = 0;
  for (size_t i = 0; i < labels.size(); ++i) {
    if (pred[i] == labels[i]) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(labels.size());
}

}  // namespace dlsys
