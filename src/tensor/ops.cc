#include "src/tensor/ops.h"

#include <cmath>

namespace dlsys {

Tensor MatMul(const Tensor& a, const Tensor& b) {
  DLSYS_CHECK(a.rank() == 2 && b.rank() == 2, "MatMul requires rank 2");
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  DLSYS_CHECK(b.dim(0) == k, "MatMul inner dimension mismatch");
  Tensor c({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t p = 0; p < k; ++p) {
      const float av = pa[i * k + p];
      if (av == 0.0f) continue;
      const float* brow = pb + p * n;
      float* crow = pc + i * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

Tensor MatMulTransA(const Tensor& a, const Tensor& b) {
  DLSYS_CHECK(a.rank() == 2 && b.rank() == 2, "MatMulTransA requires rank 2");
  const int64_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  DLSYS_CHECK(b.dim(0) == k, "MatMulTransA inner dimension mismatch");
  Tensor c({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  for (int64_t p = 0; p < k; ++p) {
    const float* arow = pa + p * m;
    const float* brow = pb + p * n;
    for (int64_t i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = pc + i * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

Tensor MatMulTransB(const Tensor& a, const Tensor& b) {
  DLSYS_CHECK(a.rank() == 2 && b.rank() == 2, "MatMulTransB requires rank 2");
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  DLSYS_CHECK(b.dim(1) == k, "MatMulTransB inner dimension mismatch");
  Tensor c({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = pa + i * k;
    for (int64_t j = 0; j < n; ++j) {
      const float* brow = pb + j * k;
      double s = 0.0;
      for (int64_t p = 0; p < k; ++p) s += arow[p] * brow[p];
      pc[i * n + j] = static_cast<float>(s);
    }
  }
  return c;
}

namespace {
void CheckSameShape(const Tensor& a, const Tensor& b, const char* op) {
  DLSYS_CHECK(a.shape() == b.shape(), op);
}
}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b, "Add shape mismatch");
  Tensor c = a;
  for (int64_t i = 0; i < c.size(); ++i) c[i] += b[i];
  return c;
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b, "Sub shape mismatch");
  Tensor c = a;
  for (int64_t i = 0; i < c.size(); ++i) c[i] -= b[i];
  return c;
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b, "Mul shape mismatch");
  Tensor c = a;
  for (int64_t i = 0; i < c.size(); ++i) c[i] *= b[i];
  return c;
}

void Axpy(float alpha, const Tensor& b, Tensor* a) {
  DLSYS_CHECK(a->size() == b.size(), "Axpy size mismatch");
  float* pa = a->data();
  const float* pb = b.data();
  for (int64_t i = 0; i < a->size(); ++i) pa[i] += alpha * pb[i];
}

void Scale(float alpha, Tensor* a) {
  float* pa = a->data();
  for (int64_t i = 0; i < a->size(); ++i) pa[i] *= alpha;
}

Tensor RowSoftmax(const Tensor& logits) {
  DLSYS_CHECK(logits.rank() == 2, "RowSoftmax requires rank 2");
  const int64_t n = logits.dim(0), c = logits.dim(1);
  Tensor out({n, c});
  for (int64_t i = 0; i < n; ++i) {
    const float* row = logits.data() + i * c;
    float* orow = out.data() + i * c;
    float mx = row[0];
    for (int64_t j = 1; j < c; ++j) mx = row[j] > mx ? row[j] : mx;
    double denom = 0.0;
    for (int64_t j = 0; j < c; ++j) {
      orow[j] = std::exp(row[j] - mx);
      denom += orow[j];
    }
    for (int64_t j = 0; j < c; ++j) {
      orow[j] = static_cast<float>(orow[j] / denom);
    }
  }
  return out;
}

std::vector<int64_t> ArgMaxRows(const Tensor& m) {
  DLSYS_CHECK(m.rank() == 2, "ArgMaxRows requires rank 2");
  const int64_t n = m.dim(0), c = m.dim(1);
  std::vector<int64_t> out(n);
  for (int64_t i = 0; i < n; ++i) {
    const float* row = m.data() + i * c;
    int64_t best = 0;
    for (int64_t j = 1; j < c; ++j) {
      if (row[j] > row[best]) best = j;
    }
    out[i] = best;
  }
  return out;
}

Tensor OneHot(const std::vector<int64_t>& labels, int64_t num_classes) {
  Tensor out({static_cast<int64_t>(labels.size()), num_classes});
  for (size_t i = 0; i < labels.size(); ++i) {
    DLSYS_CHECK(labels[i] >= 0 && labels[i] < num_classes,
                "label out of range");
    out.at(static_cast<int64_t>(i), labels[i]) = 1.0f;
  }
  return out;
}

Tensor MeanRows(const Tensor& m) {
  DLSYS_CHECK(m.rank() == 2, "MeanRows requires rank 2");
  const int64_t n = m.dim(0), c = m.dim(1);
  Tensor out({c});
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < c; ++j) out[j] += m[i * c + j];
  }
  if (n > 0) Scale(1.0f / static_cast<float>(n), &out);
  return out;
}

Tensor SliceRows(const Tensor& m, int64_t begin, int64_t end) {
  DLSYS_CHECK(m.rank() == 2, "SliceRows requires rank 2");
  DLSYS_CHECK(begin >= 0 && begin <= end && end <= m.dim(0),
              "SliceRows range invalid");
  const int64_t c = m.dim(1);
  Tensor out({end - begin, c});
  std::copy(m.data() + begin * c, m.data() + end * c, out.data());
  return out;
}

Tensor Transpose(const Tensor& m) {
  DLSYS_CHECK(m.rank() == 2, "Transpose requires rank 2");
  const int64_t r = m.dim(0), c = m.dim(1);
  Tensor out({c, r});
  for (int64_t i = 0; i < r; ++i) {
    for (int64_t j = 0; j < c; ++j) out[j * r + i] = m[i * c + j];
  }
  return out;
}

double Accuracy(const Tensor& logits, const std::vector<int64_t>& labels) {
  DLSYS_CHECK(logits.dim(0) == static_cast<int64_t>(labels.size()),
              "Accuracy: row/label count mismatch");
  if (labels.empty()) return 0.0;
  std::vector<int64_t> pred = ArgMaxRows(logits);
  int64_t hits = 0;
  for (size_t i = 0; i < labels.size(); ++i) {
    if (pred[i] == labels[i]) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(labels.size());
}

}  // namespace dlsys
