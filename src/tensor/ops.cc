#include "src/tensor/ops.h"

#include <algorithm>
#include <cmath>

#include "src/obs/cost.h"
#include "src/obs/trace.h"
#include "src/runtime/runtime.h"
#include "src/simd/dispatch.h"

namespace dlsys {
namespace {

// ---------------------------------------------------------------- GEMM
//
// All three GEMM variants share one structure: the output row range is
// statically partitioned across workers by ParallelFor, and the range
// kernel itself comes from the SIMD dispatch registry (src/simd) — the
// scalar reference or an AVX2/AVX-512 microkernel, chosen once per process
// from the CPU (override: DLSYS_ISA). Every table obeys the same parity
// contract: the accumulation order for any single C element is ascending-p
// with one float multiply then one add per term (no contraction), so every
// ISA is bitwise identical to the naive loop nests below, at every thread
// count.

constexpr int64_t kRowGrain = 8;  // min C rows per ParallelFor range
constexpr int64_t kEwGrain = 1 << 15;  // elementwise elements per range

void CheckSameShape(const Tensor& a, const Tensor& b, const char* op) {
  DLSYS_CHECK(a.shape() == b.shape(), op);
}

}  // namespace

Tensor MatMul(const Tensor& a, const Tensor& b) {
  DLSYS_CHECK(a.rank() == 2 && b.rank() == 2, "MatMul requires rank 2");
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  DLSYS_CHECK(b.dim(0) == k, "MatMul inner dimension mismatch");
  const simd::KernelTable& kt = simd::ActiveKernels();
  simd::CountDispatch(kt);
  DLSYS_TRACE_SPAN_COST_CAT("gemm.matmul", kt.span_cat, 2 * m * k * n,
                            4 * (m * k + k * n + m * n));
  DLSYS_COST_FLOPS(2 * m * k * n);
  Tensor c({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  auto* kernel = kt.matmul_range;
  ParallelFor(0, m, kRowGrain, [=](int64_t i0, int64_t i1) {
    kernel(pa, pb, pc, i0, i1, k, n);
  });
  return c;
}

Tensor MatMulTransA(const Tensor& a, const Tensor& b) {
  DLSYS_CHECK(a.rank() == 2 && b.rank() == 2, "MatMulTransA requires rank 2");
  const int64_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  DLSYS_CHECK(b.dim(0) == k, "MatMulTransA inner dimension mismatch");
  const simd::KernelTable& kt = simd::ActiveKernels();
  simd::CountDispatch(kt);
  DLSYS_TRACE_SPAN_COST_CAT("gemm.matmul_ta", kt.span_cat, 2 * m * k * n,
                            4 * (m * k + k * n + m * n));
  DLSYS_COST_FLOPS(2 * m * k * n);
  Tensor c({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  auto* kernel = kt.matmul_ta_range;
  ParallelFor(0, m, kRowGrain, [=](int64_t i0, int64_t i1) {
    kernel(pa, pb, pc, i0, i1, k, m, n);
  });
  return c;
}

Tensor MatMulTransB(const Tensor& a, const Tensor& b) {
  DLSYS_CHECK(a.rank() == 2 && b.rank() == 2, "MatMulTransB requires rank 2");
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  DLSYS_CHECK(b.dim(1) == k, "MatMulTransB inner dimension mismatch");
  const simd::KernelTable& kt = simd::ActiveKernels();
  simd::CountDispatch(kt);
  DLSYS_TRACE_SPAN_COST_CAT("gemm.matmul_tb", kt.span_cat, 2 * m * k * n,
                            4 * (m * k + k * n + m * n));
  DLSYS_COST_FLOPS(2 * m * k * n);
  Tensor c({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  auto* kernel = kt.matmul_tb_range;
  ParallelFor(0, m, kRowGrain, [=](int64_t i0, int64_t i1) {
    kernel(pa, pb, pc, i0, i1, k, n);
  });
  return c;
}

void MatMulInto(const float* a, const float* b, float* c, int64_t m,
                int64_t k, int64_t n) {
  const simd::KernelTable& kt = simd::ActiveKernels();
  simd::CountDispatch(kt);
  DLSYS_TRACE_SPAN_COST_CAT("gemm.matmul_into", kt.span_cat, 2 * m * k * n,
                            4 * (m * k + k * n + m * n));
  DLSYS_COST_FLOPS(2 * m * k * n);
  auto* kernel = kt.matmul_range;
  ParallelFor(0, m, kRowGrain, [=](int64_t i0, int64_t i1) {
    // The matmul range kernel accumulates into C (edge tiles use +=), so
    // the owned row range is zeroed first; a freshly allocated Tensor got
    // this for free.
    std::fill(c + i0 * n, c + i1 * n, 0.0f);
    kernel(a, b, c, i0, i1, k, n);
  });
}

void ConvGemmBiasInto(const float* a, const float* b, const float* bias,
                      float* c, int64_t m, int64_t k, int64_t n) {
  const simd::KernelTable& kt = simd::ActiveKernels();
  simd::CountDispatch(kt);
  DLSYS_TRACE_SPAN_COST_CAT("gemm.conv_gemm_bias", kt.span_cat,
                            2 * m * k * n, 4 * (m * k + k * n + m * n));
  DLSYS_COST_FLOPS(2 * m * k * n);
  // Rows are output channels (few); columns are spatial positions (many),
  // so the column range is what gets partitioned. Each element is owned by
  // exactly one range and accumulated bias-first, ascending-p, in a double
  // — the direct convolution's exact operation sequence in every table.
  auto* kernel = kt.conv_gemm_bias_cols;
  ParallelFor(0, n, 64, [=](int64_t j0, int64_t j1) {
    kernel(a, b, bias, c, m, k, n, j0, j1);
  });
}

void MatMulBiasActInto(const float* a, const float* b, const float* bias,
                       float* c, int64_t m, int64_t k, int64_t n,
                       bool relu) {
  const simd::KernelTable& kt = simd::ActiveKernels();
  simd::CountDispatch(kt);
  DLSYS_TRACE_SPAN_COST_CAT("gemm.matmul_bias_act", kt.span_cat,
                            2 * m * k * n, 4 * (m * k + k * n + m * n));
  DLSYS_COST_FLOPS(2 * m * k * n);
  auto* kernel = kt.matmul_bias_act_range;
  const int relu_flag = relu ? 1 : 0;
  ParallelFor(0, m, kRowGrain, [=](int64_t i0, int64_t i1) {
    // Same zeroing contract as MatMulInto: the fused kernel runs the
    // accumulate-into-C GEMM first, then its bias/act epilogue.
    std::fill(c + i0 * n, c + i1 * n, 0.0f);
    kernel(a, b, bias, c, i0, i1, k, n, relu_flag);
  });
}

void ConvGemmBiasActInto(const float* a, const float* b, const float* bias,
                         float* c, int64_t m, int64_t k, int64_t n,
                         bool relu) {
  const simd::KernelTable& kt = simd::ActiveKernels();
  simd::CountDispatch(kt);
  DLSYS_TRACE_SPAN_COST_CAT("gemm.conv_gemm_bias_act", kt.span_cat,
                            2 * m * k * n, 4 * (m * k + k * n + m * n));
  DLSYS_COST_FLOPS(2 * m * k * n);
  auto* kernel = kt.conv_gemm_bias_act_cols;
  const int relu_flag = relu ? 1 : 0;
  ParallelFor(0, n, 64, [=](int64_t j0, int64_t j1) {
    kernel(a, b, bias, c, m, k, n, j0, j1, relu_flag);
  });
}

// ------------------------------------------------- naive references
//
// The seed library's loop nests, retained verbatim minus the
// `if (av == 0.0f) continue;` branches (the branch defeated vectorization
// on the dense inputs every caller passes, and silently changed the cost
// model on sparse data). Skipping a zero term and adding it are bitwise
// identical on finite data, so these remain the reference the optimised
// kernels are tested against.

Tensor NaiveMatMul(const Tensor& a, const Tensor& b) {
  DLSYS_CHECK(a.rank() == 2 && b.rank() == 2, "MatMul requires rank 2");
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  DLSYS_CHECK(b.dim(0) == k, "MatMul inner dimension mismatch");
  DLSYS_TRACE_SPAN_COST("gemm.matmul", "kernel", 2 * m * k * n,
                        4 * (m * k + k * n + m * n));
  DLSYS_COST_FLOPS(2 * m * k * n);
  Tensor c({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t p = 0; p < k; ++p) {
      const float av = pa[i * k + p];
      const float* brow = pb + p * n;
      float* crow = pc + i * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

Tensor NaiveMatMulTransA(const Tensor& a, const Tensor& b) {
  DLSYS_CHECK(a.rank() == 2 && b.rank() == 2, "MatMulTransA requires rank 2");
  const int64_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  DLSYS_CHECK(b.dim(0) == k, "MatMulTransA inner dimension mismatch");
  DLSYS_TRACE_SPAN_COST("gemm.matmul_ta", "kernel", 2 * m * k * n,
                        4 * (m * k + k * n + m * n));
  DLSYS_COST_FLOPS(2 * m * k * n);
  Tensor c({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  for (int64_t p = 0; p < k; ++p) {
    const float* arow = pa + p * m;
    const float* brow = pb + p * n;
    for (int64_t i = 0; i < m; ++i) {
      const float av = arow[i];
      float* crow = pc + i * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

Tensor NaiveMatMulTransB(const Tensor& a, const Tensor& b) {
  DLSYS_CHECK(a.rank() == 2 && b.rank() == 2, "MatMulTransB requires rank 2");
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  DLSYS_CHECK(b.dim(1) == k, "MatMulTransB inner dimension mismatch");
  DLSYS_TRACE_SPAN_COST("gemm.matmul_tb", "kernel", 2 * m * k * n,
                        4 * (m * k + k * n + m * n));
  DLSYS_COST_FLOPS(2 * m * k * n);
  Tensor c({m, n});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = pa + i * k;
    for (int64_t j = 0; j < n; ++j) {
      const float* brow = pb + j * k;
      double s = 0.0;
      for (int64_t p = 0; p < k; ++p) s += arow[p] * brow[p];
      pc[i * n + j] = static_cast<float>(s);
    }
  }
  return c;
}

// ------------------------------------------------------- elementwise

Tensor Add(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b, "Add shape mismatch");
  Tensor c = a;
  float* pc = c.data();
  const float* pb = b.data();
  ParallelFor(0, c.size(), kEwGrain, [=](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) pc[i] += pb[i];
  });
  return c;
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b, "Sub shape mismatch");
  Tensor c = a;
  float* pc = c.data();
  const float* pb = b.data();
  ParallelFor(0, c.size(), kEwGrain, [=](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) pc[i] -= pb[i];
  });
  return c;
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b, "Mul shape mismatch");
  Tensor c = a;
  float* pc = c.data();
  const float* pb = b.data();
  ParallelFor(0, c.size(), kEwGrain, [=](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) pc[i] *= pb[i];
  });
  return c;
}

void Axpy(float alpha, const Tensor& b, Tensor* a) {
  DLSYS_CHECK(a->size() == b.size(), "Axpy size mismatch");
  float* pa = a->data();
  const float* pb = b.data();
  ParallelFor(0, a->size(), kEwGrain, [=](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) pa[i] += alpha * pb[i];
  });
}

void Scale(float alpha, Tensor* a) {
  float* pa = a->data();
  ParallelFor(0, a->size(), kEwGrain, [=](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) pa[i] *= alpha;
  });
}

Tensor RowSoftmax(const Tensor& logits) {
  DLSYS_CHECK(logits.rank() == 2, "RowSoftmax requires rank 2");
  const int64_t n = logits.dim(0), c = logits.dim(1);
  Tensor out({n, c});
  const float* pin = logits.data();
  float* pout = out.data();
  ParallelFor(0, n, 8, [=](int64_t r0, int64_t r1) {
    for (int64_t i = r0; i < r1; ++i) {
      const float* row = pin + i * c;
      float* orow = pout + i * c;
      float mx = row[0];
      for (int64_t j = 1; j < c; ++j) mx = row[j] > mx ? row[j] : mx;
      double denom = 0.0;
      for (int64_t j = 0; j < c; ++j) {
        orow[j] = std::exp(row[j] - mx);
        denom += orow[j];
      }
      for (int64_t j = 0; j < c; ++j) {
        orow[j] = static_cast<float>(orow[j] / denom);
      }
    }
  });
  return out;
}

std::vector<int64_t> ArgMaxRows(const Tensor& m) {
  DLSYS_CHECK(m.rank() == 2, "ArgMaxRows requires rank 2");
  const int64_t n = m.dim(0), c = m.dim(1);
  std::vector<int64_t> out(n);
  for (int64_t i = 0; i < n; ++i) {
    const float* row = m.data() + i * c;
    int64_t best = 0;
    for (int64_t j = 1; j < c; ++j) {
      if (row[j] > row[best]) best = j;
    }
    out[i] = best;
  }
  return out;
}

Tensor OneHot(const std::vector<int64_t>& labels, int64_t num_classes) {
  const int64_t n = static_cast<int64_t>(labels.size());
  Tensor out({n, num_classes});
  const int64_t* plabels = labels.data();
  float* pout = out.data();
  ParallelFor(0, n, 256, [=](int64_t r0, int64_t r1) {
    for (int64_t i = r0; i < r1; ++i) {
      DLSYS_CHECK(plabels[i] >= 0 && plabels[i] < num_classes,
                  "label out of range");
      pout[i * num_classes + plabels[i]] = 1.0f;
    }
  });
  return out;
}

Tensor MeanRows(const Tensor& m) {
  DLSYS_CHECK(m.rank() == 2, "MeanRows requires rank 2");
  const int64_t n = m.dim(0), c = m.dim(1);
  Tensor out({c});
  const float* pin = m.data();
  float* pout = out.data();
  // Workers own disjoint column ranges; each column sums rows in ascending
  // i, the serial loop's per-element order, so results are bitwise stable
  // across thread counts.
  ParallelFor(0, c, 8, [=](int64_t j0, int64_t j1) {
    for (int64_t i = 0; i < n; ++i) {
      const float* row = pin + i * c;
      for (int64_t j = j0; j < j1; ++j) pout[j] += row[j];
    }
  });
  if (n > 0) Scale(1.0f / static_cast<float>(n), &out);
  return out;
}

Tensor SliceRows(const Tensor& m, int64_t begin, int64_t end) {
  DLSYS_CHECK(m.rank() == 2, "SliceRows requires rank 2");
  DLSYS_CHECK(begin >= 0 && begin <= end && end <= m.dim(0),
              "SliceRows range invalid");
  const int64_t c = m.dim(1);
  Tensor out({end - begin, c});
  const float* pin = m.data();
  float* pout = out.data();
  const int64_t row_grain = std::max<int64_t>(1, kEwGrain / std::max<int64_t>(c, 1));
  ParallelFor(0, end - begin, row_grain, [=](int64_t r0, int64_t r1) {
    std::copy(pin + (begin + r0) * c, pin + (begin + r1) * c, pout + r0 * c);
  });
  return out;
}

Tensor Transpose(const Tensor& m) {
  DLSYS_CHECK(m.rank() == 2, "Transpose requires rank 2");
  const int64_t r = m.dim(0), c = m.dim(1);
  Tensor out({c, r});
  const float* pin = m.data();
  float* pout = out.data();
  // Tiled copy: each worker owns input rows [i0, i1) — disjoint output
  // columns — and walks 32-wide column blocks so writes stay in-cache.
  constexpr int64_t kTile = 32;
  ParallelFor(0, r, kTile, [=](int64_t i0, int64_t i1) {
    for (int64_t jb = 0; jb < c; jb += kTile) {
      const int64_t je = std::min<int64_t>(jb + kTile, c);
      for (int64_t i = i0; i < i1; ++i) {
        for (int64_t j = jb; j < je; ++j) pout[j * r + i] = pin[i * c + j];
      }
    }
  });
  return out;
}

double Accuracy(const Tensor& logits, const std::vector<int64_t>& labels) {
  DLSYS_CHECK(logits.dim(0) == static_cast<int64_t>(labels.size()),
              "Accuracy: row/label count mismatch");
  if (labels.empty()) return 0.0;
  std::vector<int64_t> pred = ArgMaxRows(logits);
  int64_t hits = 0;
  for (size_t i = 0; i < labels.size(); ++i) {
    if (pred[i] == labels[i]) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(labels.size());
}

}  // namespace dlsys
