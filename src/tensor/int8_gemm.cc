#include "src/tensor/int8_gemm.h"

#include "src/obs/cost.h"
#include "src/obs/trace.h"
#include "src/runtime/runtime.h"

namespace dlsys {

void Int8GemmTransBInto(const int8_t* a, const int8_t* b, int32_t* c,
                        int64_t m, int64_t k, int64_t n) {
  DLSYS_TRACE_SPAN_COST("gemm.int8_tb", "kernel", 2 * m * k * n,
                        m * k + n * k + 4 * m * n);
  DLSYS_COST_FLOPS(2 * m * k * n);
  ParallelFor(0, m, 8, [=](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) {
      const int8_t* arow = a + i * k;
      int64_t j = 0;
      // Four independent output columns per iteration: four int32
      // accumulators in flight hide the load latency, and each inner
      // reduction vectorizes (integer adds reassociate freely).
      for (; j + 4 <= n; j += 4) {
        const int8_t* b0 = b + (j + 0) * k;
        const int8_t* b1 = b + (j + 1) * k;
        const int8_t* b2 = b + (j + 2) * k;
        const int8_t* b3 = b + (j + 3) * k;
        int32_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
        for (int64_t p = 0; p < k; ++p) {
          const int32_t av = arow[p];
          s0 += av * b0[p];
          s1 += av * b1[p];
          s2 += av * b2[p];
          s3 += av * b3[p];
        }
        c[i * n + j + 0] = s0;
        c[i * n + j + 1] = s1;
        c[i * n + j + 2] = s2;
        c[i * n + j + 3] = s3;
      }
      for (; j < n; ++j) {
        const int8_t* brow = b + j * k;
        int32_t s = 0;
        for (int64_t p = 0; p < k; ++p) {
          s += static_cast<int32_t>(arow[p]) * static_cast<int32_t>(brow[p]);
        }
        c[i * n + j] = s;
      }
    }
  });
}

void NaiveInt8GemmTransBInto(const int8_t* a, const int8_t* b, int32_t* c,
                             int64_t m, int64_t k, int64_t n) {
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      int32_t s = 0;
      for (int64_t p = 0; p < k; ++p) {
        s += static_cast<int32_t>(a[i * k + p]) *
             static_cast<int32_t>(b[j * k + p]);
      }
      c[i * n + j] = s;
    }
  }
}

}  // namespace dlsys
