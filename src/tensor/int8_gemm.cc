#include "src/tensor/int8_gemm.h"

#include "src/core/status.h"
#include "src/obs/cost.h"
#include "src/obs/trace.h"
#include "src/runtime/runtime.h"
#include "src/simd/dispatch.h"
#include "src/simd/kernels.h"

namespace dlsys {

namespace {
constexpr int64_t kRowGrain = 8;  // min C rows per ParallelFor range
}  // namespace

void Int8GemmTransBInto(const int8_t* a, const int8_t* b, int32_t* c,
                        int64_t m, int64_t k, int64_t n) {
  const simd::KernelTable& kt = simd::ActiveKernels();
  simd::CountDispatch(kt);
  DLSYS_TRACE_SPAN_COST_CAT("gemm.int8_tb", kt.span_cat, 2 * m * k * n,
                            m * k + n * k + 4 * m * n);
  DLSYS_COST_FLOPS(2 * m * k * n);
  auto* kernel = kt.int8_gemm_rows;
  ParallelFor(0, m, kRowGrain, [=](int64_t i0, int64_t i1) {
    kernel(a, b, c, i0, i1, k, n);
  });
}

void NaiveInt8GemmTransBInto(const int8_t* a, const int8_t* b, int32_t* c,
                             int64_t m, int64_t k, int64_t n) {
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      int32_t s = 0;
      for (int64_t p = 0; p < k; ++p) {
        s += static_cast<int32_t>(a[i * k + p]) *
             static_cast<int32_t>(b[j * k + p]);
      }
      c[i * n + j] = s;
    }
  }
}

void Q8BlockGemmTransBInto(const int8_t* a, const float* a_scales,
                           const int8_t* b, const float* b_scales, float* c,
                           int64_t m, int64_t kp, int64_t n) {
  DLSYS_CHECK(kp % 32 == 0, "Q8BlockGemmTransBInto: kp must be 32-padded");
  const simd::KernelTable& kt = simd::ActiveKernels();
  simd::CountDispatch(kt);
  DLSYS_TRACE_SPAN_COST_CAT("gemm.q8_block_tb", kt.span_cat, 2 * m * kp * n,
                            m * kp + n * kp + 4 * m * n);
  DLSYS_COST_FLOPS(2 * m * kp * n);
  auto* kernel = kt.q8_gemm_rows;
  ParallelFor(0, m, kRowGrain, [=](int64_t i0, int64_t i1) {
    kernel(a, a_scales, b, b_scales, c, i0, i1, kp, n);
  });
}

void Q4BlockGemmTransBInto(const int8_t* a, const float* a_scales,
                           const uint8_t* b, const float* b_scales, float* c,
                           int64_t m, int64_t kp, int64_t n) {
  DLSYS_CHECK(kp % 32 == 0, "Q4BlockGemmTransBInto: kp must be 32-padded");
  const simd::KernelTable& kt = simd::ActiveKernels();
  simd::CountDispatch(kt);
  DLSYS_TRACE_SPAN_COST_CAT("gemm.q4_block_tb", kt.span_cat, 2 * m * kp * n,
                            m * kp + n * kp / 2 + 4 * m * n);
  DLSYS_COST_FLOPS(2 * m * kp * n);
  auto* kernel = kt.q4_gemm_rows;
  ParallelFor(0, m, kRowGrain, [=](int64_t i0, int64_t i1) {
    kernel(a, a_scales, b, b_scales, c, i0, i1, kp, n);
  });
}

void NaiveQ8BlockGemmTransBInto(const int8_t* a, const float* a_scales,
                                const int8_t* b, const float* b_scales,
                                float* c, int64_t m, int64_t kp, int64_t n) {
  DLSYS_CHECK(kp % 32 == 0, "NaiveQ8BlockGemmTransBInto: kp must be 32-padded");
  simd::Q8GemmRowsScalar(a, a_scales, b, b_scales, c, 0, m, kp, n);
}

void NaiveQ4BlockGemmTransBInto(const int8_t* a, const float* a_scales,
                                const uint8_t* b, const float* b_scales,
                                float* c, int64_t m, int64_t kp, int64_t n) {
  DLSYS_CHECK(kp % 32 == 0, "NaiveQ4BlockGemmTransBInto: kp must be 32-padded");
  simd::Q4GemmRowsScalar(a, a_scales, b, b_scales, c, 0, m, kp, n);
}

}  // namespace dlsys
