#ifndef DLSYS_TENSOR_OPS_H_
#define DLSYS_TENSOR_OPS_H_

#include <cstdint>
#include <vector>

#include "src/tensor/tensor.h"

/// \file ops.h
/// \brief Dense kernels over Tensor: GEMM variants, elementwise math,
/// row-wise reductions.
///
/// All kernels are single-threaded, cache-friendly loop nests; the library
/// optimises for determinism and clarity, not peak FLOP/s — absolute speed
/// is not what the reproduction measures, relative costs are.

namespace dlsys {

/// \brief C = A(MxK) * B(KxN). Shapes are checked.
Tensor MatMul(const Tensor& a, const Tensor& b);
/// \brief C = A^T(KxM -> MxK as given) * B: computes A'(MxK)^T? No —
/// computes C(MxN) = A(KxM)^T * B(KxN).
Tensor MatMulTransA(const Tensor& a, const Tensor& b);
/// \brief C(MxN) = A(MxK) * B(NxK)^T.
Tensor MatMulTransB(const Tensor& a, const Tensor& b);

/// \brief Returns a + b elementwise (same shape required).
Tensor Add(const Tensor& a, const Tensor& b);
/// \brief Returns a - b elementwise (same shape required).
Tensor Sub(const Tensor& a, const Tensor& b);
/// \brief Returns a * b elementwise (same shape required).
Tensor Mul(const Tensor& a, const Tensor& b);
/// \brief a += alpha * b, elementwise in place (same size required).
void Axpy(float alpha, const Tensor& b, Tensor* a);
/// \brief a *= alpha in place.
void Scale(float alpha, Tensor* a);

/// \brief Row-wise numerically-stable softmax of a rank-2 tensor.
Tensor RowSoftmax(const Tensor& logits);
/// \brief Per-row argmax of a rank-2 tensor.
std::vector<int64_t> ArgMaxRows(const Tensor& m);
/// \brief One-hot encodes \p labels into an NxC matrix.
Tensor OneHot(const std::vector<int64_t>& labels, int64_t num_classes);

/// \brief Mean over rows: returns a length-C vector tensor from NxC.
Tensor MeanRows(const Tensor& m);
/// \brief Extracts row range [begin, end) of a rank-2 tensor.
Tensor SliceRows(const Tensor& m, int64_t begin, int64_t end);
/// \brief Transpose of a rank-2 tensor.
Tensor Transpose(const Tensor& m);

/// \brief Fraction of rows whose argmax equals the label.
double Accuracy(const Tensor& logits, const std::vector<int64_t>& labels);

}  // namespace dlsys

#endif  // DLSYS_TENSOR_OPS_H_
