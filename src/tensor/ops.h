#ifndef DLSYS_TENSOR_OPS_H_
#define DLSYS_TENSOR_OPS_H_

#include <cstdint>
#include <vector>

#include "src/tensor/tensor.h"

/// \file ops.h
/// \brief Dense kernels over Tensor: GEMM variants, elementwise math,
/// row-wise reductions.
///
/// The GEMM variants are cache-blocked, register-tiled kernels dispatched
/// through the multi-threaded runtime (src/runtime/runtime.h) and the
/// per-ISA microkernel registry (src/simd/dispatch.h), which selects the
/// best SIMD table the CPU supports (scalar / AVX2 / AVX-512) at startup;
/// elementwise ops, RowSoftmax, and Transpose route through the same
/// ParallelFor primitive. Every kernel is **bitwise deterministic for any
/// thread count and any dispatched ISA**: workers own disjoint, statically
/// partitioned output ranges, so the floating-point accumulation order per
/// output element never depends on DLSYS_THREADS, and the SIMD kernels
/// vectorize only across independent output elements (see
/// src/simd/kernels.h for the parity contract). The Naive* reference
/// kernels retain the plain loop nests with the same per-element operation
/// order; tests assert bitwise equality between the optimised and naive
/// paths at every ISA.

namespace dlsys {

/// \brief C = A(MxK) * B(KxN). Shapes are checked.
Tensor MatMul(const Tensor& a, const Tensor& b);
/// \brief C = A^T(KxM -> MxK as given) * B: computes A'(MxK)^T? No —
/// computes C(MxN) = A(KxM)^T * B(KxN).
Tensor MatMulTransA(const Tensor& a, const Tensor& b);
/// \brief C(MxN) = A(MxK) * B(NxK)^T.
Tensor MatMulTransB(const Tensor& a, const Tensor& b);

/// \brief Reference GEMM: plain single-threaded loop nest with the same
/// per-element accumulation order as MatMul. Retained for determinism
/// tests and as the bench baseline; bitwise identical to MatMul.
Tensor NaiveMatMul(const Tensor& a, const Tensor& b);
/// \brief Reference single-threaded kernel for MatMulTransA (see
/// NaiveMatMul).
Tensor NaiveMatMulTransA(const Tensor& a, const Tensor& b);
/// \brief Reference single-threaded kernel for MatMulTransB (see
/// NaiveMatMul).
Tensor NaiveMatMulTransB(const Tensor& a, const Tensor& b);

/// \brief C(MxN) = A(MxK) * B(KxN) written into caller storage \p c.
///
/// The same blocked kernel as MatMul (bitwise identical output), but
/// allocation-free: \p c is zeroed and overwritten in place. The inference
/// engine's arena-planned hot loop dispatches through this entry point.
void MatMulInto(const float* a, const float* b, float* c, int64_t m,
                int64_t k, int64_t n);

/// \brief C(MxN) = bias(M) + A(MxK) * B(NxK)^T into caller storage, with
/// the convolution forward's accumulation semantics.
///
/// Each output element starts from bias[i] in a double accumulator and
/// adds float products a[i,p]*b[j,p] in ascending p — exactly the
/// (ic, ky, kx) term order of Conv2D's direct loop nest. With A = the
/// (out_ch x in_ch*k*k) weight matrix and B = im2col patches (positions x
/// in_ch*k*k), the result is the conv output plane, bitwise identical to
/// the direct path on finite data (padded zero taps add +/-0.0f products,
/// which leave a finite accumulator unchanged). Register-tiled over four
/// output columns, row-parallel, allocation-free.
void ConvGemmBiasInto(const float* a, const float* b, const float* bias,
                      float* c, int64_t m, int64_t k, int64_t n);

/// \brief C(MxN) = act(A(MxK) * B(KxN) + bias(N)) into caller storage —
/// MatMulInto with the bias add and optional relu fused into the range
/// kernel's epilogue (act = relu when \p relu is true, identity
/// otherwise).
///
/// The GEMM accumulation sequence is exactly MatMulInto's; the epilogue
/// adds bias[j] to each finished element and applies
/// `v > 0.0f ? v : 0.0f`, so the result is bitwise identical to
/// MatMulInto followed by separate bias / relu output passes. The graph
/// compiler's fusion pass (src/infer/passes.h) dispatches dense layers
/// through this entry point.
void MatMulBiasActInto(const float* a, const float* b, const float* bias,
                       float* c, int64_t m, int64_t k, int64_t n, bool relu);

/// \brief ConvGemmBiasInto with an optional relu fused into the column
/// kernel (applied to each finished output element; bitwise identical to
/// a separate relu pass over the output).
void ConvGemmBiasActInto(const float* a, const float* b, const float* bias,
                         float* c, int64_t m, int64_t k, int64_t n,
                         bool relu);

/// \brief Returns a + b elementwise (same shape required).
Tensor Add(const Tensor& a, const Tensor& b);
/// \brief Returns a - b elementwise (same shape required).
Tensor Sub(const Tensor& a, const Tensor& b);
/// \brief Returns a * b elementwise (same shape required).
Tensor Mul(const Tensor& a, const Tensor& b);
/// \brief a += alpha * b, elementwise in place (same size required).
void Axpy(float alpha, const Tensor& b, Tensor* a);
/// \brief a *= alpha in place.
void Scale(float alpha, Tensor* a);

/// \brief Row-wise numerically-stable softmax of a rank-2 tensor.
Tensor RowSoftmax(const Tensor& logits);
/// \brief Per-row argmax of a rank-2 tensor.
std::vector<int64_t> ArgMaxRows(const Tensor& m);
/// \brief One-hot encodes \p labels into an NxC matrix.
Tensor OneHot(const std::vector<int64_t>& labels, int64_t num_classes);

/// \brief Mean over rows: returns a length-C vector tensor from NxC.
Tensor MeanRows(const Tensor& m);
/// \brief Extracts row range [begin, end) of a rank-2 tensor.
Tensor SliceRows(const Tensor& m, int64_t begin, int64_t end);
/// \brief Transpose of a rank-2 tensor.
Tensor Transpose(const Tensor& m);

/// \brief Fraction of rows whose argmax equals the label.
double Accuracy(const Tensor& logits, const std::vector<int64_t>& labels);

}  // namespace dlsys

#endif  // DLSYS_TENSOR_OPS_H_
