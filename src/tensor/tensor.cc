#include "src/tensor/tensor.h"

#include <cmath>
#include <cstdio>

namespace dlsys {

MemoryTracker& MemoryTracker::Global() {
  static MemoryTracker tracker;
  return tracker;
}

void MemoryTracker::Allocate(int64_t bytes) {
  alloc_count_.fetch_add(1);
  int64_t now = current_.fetch_add(bytes) + bytes;
  int64_t peak = peak_.load();
  while (now > peak && !peak_.compare_exchange_weak(peak, now)) {
  }
}

void MemoryTracker::Release(int64_t bytes) { current_.fetch_sub(bytes); }

int64_t NumElements(const Shape& shape) {
  int64_t n = 1;
  for (int64_t d : shape) {
    DLSYS_CHECK(d >= 0, "negative dimension");
    n *= d;
  }
  return n;
}

std::string ShapeToString(const Shape& shape) {
  std::string out = "[";
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i) out += ", ";
    out += std::to_string(shape[i]);
  }
  out += "]";
  return out;
}

Tensor::Tensor(Shape shape) : shape_(std::move(shape)) {
  data_.assign(NumElements(shape_), 0.0f);
  Track(bytes());
}

Tensor::Tensor(Shape shape, float fill) : shape_(std::move(shape)) {
  data_.assign(NumElements(shape_), fill);
  Track(bytes());
}

Tensor::Tensor(Shape shape, std::vector<float> values)
    : shape_(std::move(shape)), data_(std::move(values)) {
  DLSYS_CHECK(NumElements(shape_) == static_cast<int64_t>(data_.size()),
              "shape/value size mismatch");
  Track(bytes());
}

Tensor::Tensor(const Tensor& other)
    : shape_(other.shape_), data_(other.data_) {
  Track(bytes());
}

Tensor& Tensor::operator=(const Tensor& other) {
  if (this == &other) return *this;
  Track(-bytes());
  shape_ = other.shape_;
  data_ = other.data_;
  Track(bytes());
  return *this;
}

Tensor::Tensor(Tensor&& other) noexcept
    : shape_(std::move(other.shape_)), data_(std::move(other.data_)) {
  other.shape_.clear();
  other.data_.clear();
}

Tensor& Tensor::operator=(Tensor&& other) noexcept {
  if (this == &other) return *this;
  Track(-bytes());
  shape_ = std::move(other.shape_);
  data_ = std::move(other.data_);
  other.shape_.clear();
  other.data_.clear();
  return *this;
}

Tensor::~Tensor() { Track(-bytes()); }

void Tensor::Track(int64_t delta) {
  if (delta > 0) {
    MemoryTracker::Global().Allocate(delta);
  } else if (delta < 0) {
    MemoryTracker::Global().Release(-delta);
  }
}

int64_t Tensor::dim(int64_t d) const {
  if (d < 0) d += rank();
  DLSYS_CHECK(d >= 0 && d < rank(), "dimension index out of range");
  return shape_[d];
}

float& Tensor::at(int64_t r, int64_t c) {
  DLSYS_CHECK(rank() == 2, "at(r, c) requires rank 2");
  DLSYS_CHECK(r >= 0 && r < shape_[0] && c >= 0 && c < shape_[1],
              "index out of range");
  return data_[r * shape_[1] + c];
}

float Tensor::at(int64_t r, int64_t c) const {
  return const_cast<Tensor*>(this)->at(r, c);
}

Tensor Tensor::Reshaped(Shape new_shape) const {
  DLSYS_CHECK(NumElements(new_shape) == size(),
              "reshape must preserve element count");
  Tensor out;
  out.shape_ = std::move(new_shape);
  out.data_ = data_;
  out.Track(out.bytes());
  return out;
}

void Tensor::Clear() {
  Track(-bytes());
  shape_.clear();
  data_.clear();
  data_.shrink_to_fit();
}

void Tensor::FillGaussian(Rng* rng, float stddev) {
  for (float& v : data_) v = static_cast<float>(rng->Gaussian(0.0, stddev));
}

void Tensor::FillUniform(Rng* rng, float lo, float hi) {
  for (float& v : data_) v = static_cast<float>(rng->Uniform(lo, hi));
}

void Tensor::Fill(float v) {
  for (float& x : data_) x = v;
}

double Tensor::Sum() const {
  double s = 0.0;
  for (float v : data_) s += v;
  return s;
}

float Tensor::Max() const {
  DLSYS_CHECK(!data_.empty(), "Max of empty tensor");
  float m = data_[0];
  for (float v : data_) m = v > m ? v : m;
  return m;
}

int64_t Tensor::ArgMax() const {
  DLSYS_CHECK(!data_.empty(), "ArgMax of empty tensor");
  int64_t best = 0;
  for (int64_t i = 1; i < size(); ++i) {
    if (data_[i] > data_[best]) best = i;
  }
  return best;
}

double Tensor::L2Norm() const {
  double s = 0.0;
  for (float v : data_) s += static_cast<double>(v) * v;
  return std::sqrt(s);
}

std::string Tensor::ToString(int64_t max_elems) const {
  std::string out = "Tensor(" + ShapeToString(shape_) + ", [";
  char buf[32];
  for (int64_t i = 0; i < size() && i < max_elems; ++i) {
    if (i) out += ", ";
    std::snprintf(buf, sizeof(buf), "%.4g", data_[i]);
    out += buf;
  }
  if (size() > max_elems) out += ", ...";
  out += "])";
  return out;
}

}  // namespace dlsys
