#include "src/core/metrics.h"

#include <cstdio>

namespace dlsys {

void MetricsReport::Merge(const MetricsReport& other,
                          const std::string& prefix) {
  for (const auto& [key, value] : other.values_) {
    if (prefix.empty()) {
      values_[key] = value;
    } else {
      values_[prefix + "." + key] = value;
    }
  }
}

std::string MetricsReport::ToString() const {
  std::string out;
  char line[256];
  for (const auto& [key, value] : values_) {
    std::snprintf(line, sizeof(line), "%-32s = %.6g\n", key.c_str(), value);
    out += line;
  }
  return out;
}

}  // namespace dlsys
