#include "src/core/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "src/core/status.h"

namespace dlsys {

namespace {

/// Smallest geometric bucket edge: 1 microsecond.
constexpr double kMinMs = 1e-3;

/// edges[i] = kMinMs * 2^(i/4): the fixed log-scale bucket boundaries.
const std::array<double, LatencyHistogram::kBuckets + 1>& BucketEdges() {
  static const auto edges = [] {
    std::array<double, LatencyHistogram::kBuckets + 1> e{};
    for (int i = 0; i <= LatencyHistogram::kBuckets; ++i) {
      e[static_cast<size_t>(i)] = kMinMs * std::exp2(static_cast<double>(i) / 4.0);
    }
    return e;
  }();
  return edges;
}

/// Index of the bucket covering \p ms: 0 for [0, kMinMs), kBuckets + 1
/// for the overflow range. A log2 guess followed by an edge fix-up keeps
/// boundary values exactly consistent with BucketEdges().
int BucketIndex(double ms) {
  const auto& edges = BucketEdges();
  if (ms < edges[0]) return 0;
  if (ms >= edges[LatencyHistogram::kBuckets]) {
    return LatencyHistogram::kBuckets + 1;
  }
  int i = static_cast<int>(std::floor(std::log2(ms / kMinMs) * 4.0));
  i = std::clamp(i, 0, LatencyHistogram::kBuckets - 1);
  while (i > 0 && ms < edges[static_cast<size_t>(i)]) --i;
  while (i < LatencyHistogram::kBuckets - 1 &&
         ms >= edges[static_cast<size_t>(i + 1)]) {
    ++i;
  }
  return i + 1;  // counts_[0] is the underflow bucket
}

}  // namespace

void LatencyHistogram::Record(double ms) {
  DLSYS_CHECK(std::isfinite(ms) && ms >= 0.0,
              "LatencyHistogram::Record requires a finite non-negative value");
  counts_[static_cast<size_t>(BucketIndex(ms))] += 1;
  if (count_ == 0) {
    min_ms_ = ms;
    max_ms_ = ms;
  } else {
    min_ms_ = std::min(min_ms_, ms);
    max_ms_ = std::max(max_ms_, ms);
  }
  ++count_;
  sum_ms_ += ms;
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  if (other.count_ == 0) return;
  for (size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  min_ms_ = count_ == 0 ? other.min_ms_ : std::min(min_ms_, other.min_ms_);
  max_ms_ = count_ == 0 ? other.max_ms_ : std::max(max_ms_, other.max_ms_);
  count_ += other.count_;
  sum_ms_ += other.sum_ms_;
}

double LatencyHistogram::Quantile(double q) const {
  DLSYS_CHECK(q >= 0.0 && q <= 1.0, "quantile must be in [0, 1]");
  if (count_ == 0) return 0.0;
  const int64_t rank = std::clamp<int64_t>(
      static_cast<int64_t>(std::ceil(q * static_cast<double>(count_))),
      int64_t{1}, count_);
  // The extreme ranks are tracked exactly, so q=0 and q=1 have no
  // bucket-resolution error.
  if (rank == 1) return min_ms_;
  if (rank == count_) return max_ms_;
  const auto& edges = BucketEdges();
  int64_t seen = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (seen >= rank) {
      // Upper edge of bucket i; the overflow bucket reports the exact max.
      const double upper = i <= kBuckets ? edges[i] : max_ms_;
      return std::clamp(upper, min_ms_, max_ms_);
    }
  }
  return max_ms_;  // unreachable: seen == count_ after the loop
}

void LatencyHistogram::ReportInto(MetricsReport* report,
                                  const std::string& prefix) const {
  report->Set(prefix + ".count", static_cast<double>(count_));
  report->Set(prefix + ".mean_ms", mean_ms());
  report->Set(prefix + ".p50_ms", Quantile(0.50));
  report->Set(prefix + ".p95_ms", Quantile(0.95));
  report->Set(prefix + ".p99_ms", Quantile(0.99));
  report->Set(prefix + ".max_ms", max_ms());
}

void MetricsReport::Merge(const MetricsReport& other,
                          const std::string& prefix) {
  for (const auto& [key, value] : other.values_) {
    if (prefix.empty()) {
      values_[key] = value;
    } else {
      // A prefixed merge namespaces a sub-report; two sources mapping to
      // the same prefixed key means the namespace failed to separate them,
      // and one report would silently shadow the other.
      const std::string prefixed = prefix + "." + key;
      DLSYS_CHECK(values_.count(prefixed) == 0,
                  "MetricsReport::Merge: prefixed key collision");
      values_[prefixed] = value;
    }
  }
}

std::string MetricsReport::ToString() const {
  std::string out;
  char line[256];
  for (const auto& [key, value] : values_) {
    std::snprintf(line, sizeof(line), "%-32s = %.6g\n", key.c_str(), value);
    out += line;
  }
  return out;
}

}  // namespace dlsys
