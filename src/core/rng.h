#ifndef DLSYS_CORE_RNG_H_
#define DLSYS_CORE_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

/// \file rng.h
/// \brief Seeded random number generation used throughout the library.
///
/// Every stochastic component in dlsys takes an explicit Rng (or seed) so
/// that experiments and tests are reproducible bit-for-bit.

namespace dlsys {

/// \brief A seeded pseudo-random generator with convenience draws.
///
/// Thin wrapper over std::mt19937_64. Not thread-safe; use one per thread
/// (see Fork()).
class Rng {
 public:
  /// Constructs a generator from \p seed.
  explicit Rng(uint64_t seed = 42) : engine_(seed) {}

  /// \brief Uniform double in [0, 1).
  double Uniform() { return unit_(engine_); }
  /// \brief Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }
  /// \brief Uniform integer in [0, n). Requires n > 0.
  uint64_t Index(uint64_t n) {
    return std::uniform_int_distribution<uint64_t>(0, n - 1)(engine_);
  }
  /// \brief Standard normal draw.
  double Gaussian() { return normal_(engine_); }
  /// \brief Normal draw with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) {
    return mean + stddev * Gaussian();
  }
  /// \brief Bernoulli draw with success probability \p p.
  bool Bernoulli(double p) { return Uniform() < p; }
  /// \brief Raw 64-bit draw.
  uint64_t Next() { return engine_(); }

  /// \brief Deterministically derives an independent child generator.
  ///
  /// Useful for giving each worker/module its own stream from one seed.
  Rng Fork() { return Rng(engine_() ^ 0x9E3779B97F4A7C15ULL); }

  /// \brief Fisher-Yates shuffles \p v in place.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = Index(i);
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// \brief Underlying engine, for interop with <random> distributions.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uniform_real_distribution<double> unit_{0.0, 1.0};
  std::normal_distribution<double> normal_{0.0, 1.0};
};

}  // namespace dlsys

#endif  // DLSYS_CORE_RNG_H_
