#ifndef DLSYS_CORE_TRADEOFF_H_
#define DLSYS_CORE_TRADEOFF_H_

#include <string>
#include <vector>

#include "src/core/metrics.h"
#include "src/core/status.h"

/// \file tradeoff.h
/// \brief The tutorial's technique-classification framework (Part 1).
///
/// The paper's central organising idea is that every efficiency technique
/// in deep learning *trades* between metrics, and techniques can be
/// classified by which tradeoff they navigate:
///   (i)   accuracy vs. time/memory efficiency          (Section 2.1)
///   (ii)  optimization time vs. train/inference time    (Section 2.2)
///   (iii) training time vs. memory                      (Section 2.3)
/// TradeoffRegistry is a queryable catalog of technique profiles; benches
/// append measured MetricsReports to their profile, and FrontierPoints /
/// ParetoFrontier compute which techniques are dominated on chosen axes.

namespace dlsys {

/// \brief The three tradeoff classes of the tutorial's Section 2.
enum class TradeoffClass {
  /// Sacrifice (possibly zero) accuracy for train/infer time and memory.
  kAccuracyVsEfficiency,
  /// Spend setup/optimization time to reduce train/inference time.
  kOptimizationVsRuntime,
  /// Spend training time to reduce memory.
  kTimeVsMemory,
};

/// \brief Human-readable name of a tradeoff class.
const char* TradeoffClassName(TradeoffClass c);

/// \brief A technique's identity, classification, and measured runs.
struct TechniqueProfile {
  std::string name;            ///< e.g. "quantization/kmeans-4bit"
  TradeoffClass tradeoff;      ///< which tradeoff it navigates
  std::string paper_section;   ///< e.g. "2.1"
  std::vector<MetricsReport> runs;  ///< measurements appended by benches
};

/// \brief One point on a two-metric tradeoff plane.
struct FrontierPoint {
  std::string technique;
  double x = 0.0;  ///< cost metric (lower is better)
  double y = 0.0;  ///< quality metric (higher is better)
};

/// \brief Catalog of technique profiles, keyed by name.
class TradeoffRegistry {
 public:
  /// \brief Registers a technique. Fails with AlreadyExists on duplicates.
  Status Register(TechniqueProfile profile);
  /// \brief Looks up a technique by exact name.
  Result<TechniqueProfile*> Find(const std::string& name);
  /// \brief Appends a measured run to technique \p name.
  Status Record(const std::string& name, MetricsReport run);
  /// \brief All techniques in a tradeoff class.
  std::vector<const TechniqueProfile*> InClass(TradeoffClass c) const;
  /// \brief All registered techniques.
  const std::vector<TechniqueProfile>& profiles() const { return profiles_; }

  /// \brief Extracts (cost=\p x_key, quality=\p y_key) points from the
  /// latest run of each technique that has both metrics.
  std::vector<FrontierPoint> Points(const std::string& x_key,
                                    const std::string& y_key) const;

 private:
  std::vector<TechniqueProfile> profiles_;
};

/// \brief Returns the subset of \p points not Pareto-dominated
/// (lower x is better, higher y is better), sorted by x.
std::vector<FrontierPoint> ParetoFrontier(std::vector<FrontierPoint> points);

}  // namespace dlsys

#endif  // DLSYS_CORE_TRADEOFF_H_
