#include "src/core/tradeoff.h"

#include <algorithm>

namespace dlsys {

const char* TradeoffClassName(TradeoffClass c) {
  switch (c) {
    case TradeoffClass::kAccuracyVsEfficiency:
      return "accuracy-vs-efficiency";
    case TradeoffClass::kOptimizationVsRuntime:
      return "optimization-vs-runtime";
    case TradeoffClass::kTimeVsMemory:
      return "time-vs-memory";
  }
  return "unknown";
}

Status TradeoffRegistry::Register(TechniqueProfile profile) {
  for (const auto& p : profiles_) {
    if (p.name == profile.name) {
      return Status::AlreadyExists("technique already registered: " +
                                   profile.name);
    }
  }
  profiles_.push_back(std::move(profile));
  return Status::OK();
}

Result<TechniqueProfile*> TradeoffRegistry::Find(const std::string& name) {
  for (auto& p : profiles_) {
    if (p.name == name) return &p;
  }
  return Status::NotFound("technique not registered: " + name);
}

Status TradeoffRegistry::Record(const std::string& name, MetricsReport run) {
  auto found = Find(name);
  if (!found.ok()) return found.status();
  (*found)->runs.push_back(std::move(run));
  return Status::OK();
}

std::vector<const TechniqueProfile*> TradeoffRegistry::InClass(
    TradeoffClass c) const {
  std::vector<const TechniqueProfile*> out;
  for (const auto& p : profiles_) {
    if (p.tradeoff == c) out.push_back(&p);
  }
  return out;
}

std::vector<FrontierPoint> TradeoffRegistry::Points(
    const std::string& x_key, const std::string& y_key) const {
  std::vector<FrontierPoint> out;
  for (const auto& p : profiles_) {
    if (p.runs.empty()) continue;
    const MetricsReport& run = p.runs.back();
    if (!run.Has(x_key) || !run.Has(y_key)) continue;
    out.push_back({p.name, run.Get(x_key), run.Get(y_key)});
  }
  return out;
}

std::vector<FrontierPoint> ParetoFrontier(std::vector<FrontierPoint> points) {
  std::sort(points.begin(), points.end(),
            [](const FrontierPoint& a, const FrontierPoint& b) {
              if (a.x != b.x) return a.x < b.x;
              return a.y > b.y;
            });
  std::vector<FrontierPoint> frontier;
  double best_y = -1e300;
  for (const auto& p : points) {
    if (p.y > best_y) {
      frontier.push_back(p);
      best_y = p.y;
    }
  }
  return frontier;
}

}  // namespace dlsys
