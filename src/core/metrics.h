#ifndef DLSYS_CORE_METRICS_H_
#define DLSYS_CORE_METRICS_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <string>

/// \file metrics.h
/// \brief The metric vocabulary of the tutorial's Part 1.
///
/// The paper organises all of deep-learning systems research around two
/// metric families: quality-related (accuracy, robustness) and
/// resource-related (training time, inference time, memory, energy).
/// MetricsReport is the uniform container every technique in this library
/// reports into, so that benches can place techniques on tradeoff axes.

namespace dlsys {

/// \brief Wall-clock stopwatch with microsecond resolution.
class Stopwatch {
 public:
  /// Starts the stopwatch.
  Stopwatch() : start_(Clock::now()) {}
  /// \brief Restarts timing from now.
  void Reset() { start_ = Clock::now(); }
  /// \brief Seconds elapsed since construction or last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// \brief A named bag of scalar metrics produced by one technique run.
///
/// Keys follow the convention "<family>.<name>", e.g. "quality.accuracy",
/// "resource.train_seconds", "resource.peak_bytes", "resource.energy_j".
class MetricsReport {
 public:
  /// \brief Sets (or overwrites) metric \p key to \p value.
  void Set(const std::string& key, double value) { values_[key] = value; }
  /// \brief Adds \p delta to metric \p key (starting from 0).
  void Add(const std::string& key, double delta) { values_[key] += delta; }
  /// \brief Returns the metric, or \p fallback if absent.
  double Get(const std::string& key, double fallback = 0.0) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  /// \brief True iff the metric has been set.
  bool Has(const std::string& key) const { return values_.count(key) > 0; }
  /// \brief All metrics, ordered by key.
  const std::map<std::string, double>& values() const { return values_; }
  /// \brief Merges \p other into this report, prefixing keys with
  /// "<prefix>." when \p prefix is non-empty.
  void Merge(const MetricsReport& other, const std::string& prefix = "");
  /// \brief Multi-line "key = value" rendering, ordered by key.
  std::string ToString() const;

 private:
  std::map<std::string, double> values_;
};

/// Canonical metric keys (the tutorial's core metrics).
namespace metric {
inline constexpr const char* kAccuracy = "quality.accuracy";
inline constexpr const char* kLoss = "quality.loss";
inline constexpr const char* kTrainSeconds = "resource.train_seconds";
inline constexpr const char* kInferSeconds = "resource.infer_seconds";
inline constexpr const char* kPeakBytes = "resource.peak_bytes";
inline constexpr const char* kModelBytes = "resource.model_bytes";
inline constexpr const char* kCommBytes = "resource.comm_bytes";
inline constexpr const char* kEnergyJoules = "resource.energy_joules";
inline constexpr const char* kFlops = "resource.flops";
}  // namespace metric

}  // namespace dlsys

#endif  // DLSYS_CORE_METRICS_H_
