#ifndef DLSYS_CORE_METRICS_H_
#define DLSYS_CORE_METRICS_H_

#include <array>
#include <chrono>
#include <cstdint>
#include <map>
#include <string>

/// \file metrics.h
/// \brief The metric vocabulary of the tutorial's Part 1.
///
/// The paper organises all of deep-learning systems research around two
/// metric families: quality-related (accuracy, robustness) and
/// resource-related (training time, inference time, memory, energy).
/// MetricsReport is the uniform container every technique in this library
/// reports into, so that benches can place techniques on tradeoff axes.

namespace dlsys {

/// \brief Wall-clock stopwatch with microsecond resolution.
class Stopwatch {
 public:
  /// Starts the stopwatch.
  Stopwatch() : start_(Clock::now()) {}
  /// \brief Restarts timing from now.
  void Reset() { start_ = Clock::now(); }
  /// \brief Seconds elapsed since construction or last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// \brief A named bag of scalar metrics produced by one technique run.
///
/// Keys follow the convention "<family>.<name>", e.g. "quality.accuracy",
/// "resource.train_seconds", "resource.peak_bytes", "resource.energy_j".
class MetricsReport {
 public:
  /// \brief Sets (or overwrites) metric \p key to \p value.
  void Set(const std::string& key, double value) { values_[key] = value; }
  /// \brief Adds \p delta to metric \p key (starting from 0).
  void Add(const std::string& key, double delta) { values_[key] += delta; }
  /// \brief Returns the metric, or \p fallback if absent.
  double Get(const std::string& key, double fallback = 0.0) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  /// \brief True iff the metric has been set.
  bool Has(const std::string& key) const { return values_.count(key) > 0; }
  /// \brief All metrics, ordered by key.
  const std::map<std::string, double>& values() const { return values_; }
  /// \brief Merges \p other into this report, prefixing keys with
  /// "<prefix>." when \p prefix is non-empty.
  ///
  /// An unprefixed merge deliberately overwrites existing keys (it means
  /// "update these metrics"). A *prefixed* merge namespaces a sub-report
  /// and must not collide: if "<prefix>.<key>" already exists, the call
  /// aborts via DLSYS_CHECK rather than silently shadowing a metric.
  void Merge(const MetricsReport& other, const std::string& prefix = "");
  /// \brief Multi-line "key = value" rendering, ordered by key.
  std::string ToString() const;

 private:
  std::map<std::string, double> values_;
};

/// \brief Mergeable latency histogram with fixed log-scale buckets.
///
/// Serving systems care about tail latency (p95/p99), which a mean or a
/// MetricsReport scalar cannot express. The bucket layout is fixed at
/// compile time — bucket 0 covers [0, 1us), then geometric buckets with
/// ratio 2^(1/4) up to ~10^15 ms, plus an overflow bucket — so any two
/// histograms merge by adding counts, regardless of what they observed.
/// Quantile() returns the upper edge of the bucket holding the requested
/// rank (clamped to the exact observed min/max), so its relative error is
/// bounded by the bucket ratio (< 19%). Count, sum, min, and max are
/// tracked exactly. Not thread-safe; merge per-thread instances instead.
class LatencyHistogram {
 public:
  /// Number of geometric buckets between the underflow and overflow ones.
  static constexpr int kBuckets = 240;

  /// \brief Records one latency observation (finite, >= 0; checked).
  void Record(double ms);
  /// \brief Adds \p other's observations into this histogram.
  void Merge(const LatencyHistogram& other);
  /// \brief Latency at quantile \p q in [0, 1]; 0 when empty.
  ///
  /// Returns the upper edge of the bucket containing rank ceil(q * count),
  /// clamped to [min_ms, max_ms] so q=0 and q=1 are exact.
  double Quantile(double q) const;

  /// \brief Number of recorded observations.
  int64_t count() const { return count_; }
  /// \brief Exact sum of all observations.
  double sum_ms() const { return sum_ms_; }
  /// \brief Exact mean; 0 when empty.
  double mean_ms() const {
    return count_ == 0 ? 0.0 : sum_ms_ / static_cast<double>(count_);
  }
  /// \brief Smallest observation; 0 when empty.
  double min_ms() const { return count_ == 0 ? 0.0 : min_ms_; }
  /// \brief Largest observation; 0 when empty.
  double max_ms() const { return count_ == 0 ? 0.0 : max_ms_; }

  /// \brief Writes count/mean/p50/p95/p99/max under "<prefix>.*" keys
  /// into \p report, the uniform vocabulary benches consume.
  void ReportInto(MetricsReport* report, const std::string& prefix) const;

 private:
  /// counts_[0] is [0, 1us); counts_[kBuckets + 1] is the overflow bucket.
  std::array<int64_t, kBuckets + 2> counts_ = {};
  int64_t count_ = 0;
  double sum_ms_ = 0.0;
  double min_ms_ = 0.0;
  double max_ms_ = 0.0;
};

/// Canonical metric keys (the tutorial's core metrics).
namespace metric {
inline constexpr const char* kAccuracy = "quality.accuracy";
inline constexpr const char* kLoss = "quality.loss";
inline constexpr const char* kTrainSeconds = "resource.train_seconds";
inline constexpr const char* kInferSeconds = "resource.infer_seconds";
inline constexpr const char* kPeakBytes = "resource.peak_bytes";
inline constexpr const char* kModelBytes = "resource.model_bytes";
inline constexpr const char* kCommBytes = "resource.comm_bytes";
inline constexpr const char* kEnergyJoules = "resource.energy_joules";
inline constexpr const char* kFlops = "resource.flops";
}  // namespace metric

}  // namespace dlsys

#endif  // DLSYS_CORE_METRICS_H_
