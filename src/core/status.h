#ifndef DLSYS_CORE_STATUS_H_
#define DLSYS_CORE_STATUS_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <variant>

/// \file status.h
/// \brief Error model for the dlsys library.
///
/// Public APIs never throw. Operations that can fail return a Status, or a
/// Result<T> when they also produce a value, in the style of Apache Arrow
/// and RocksDB. Programmer errors (violated preconditions) abort via
/// DLSYS_CHECK.

namespace dlsys {

/// \brief Machine-readable category of a failure.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kNotFound = 3,
  kAlreadyExists = 4,
  kFailedPrecondition = 5,
  kResourceExhausted = 6,
  kUnimplemented = 7,
  kInternal = 8,
  kIOError = 9,
};

/// \brief Human-readable name of a status code, e.g. "InvalidArgument".
const char* StatusCodeName(StatusCode code);

/// \brief Outcome of an operation: either OK, or a code plus message.
///
/// Cheap to copy in the OK case (no allocation); error construction
/// allocates for the message. Mirrors rocksdb::Status / arrow::Status.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// \brief Returns the singleton-like OK status.
  static Status OK() { return Status(); }
  /// \brief Constructs an InvalidArgument error with \p msg.
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  /// \brief Constructs an OutOfRange error with \p msg.
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  /// \brief Constructs a NotFound error with \p msg.
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  /// \brief Constructs an AlreadyExists error with \p msg.
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  /// \brief Constructs a FailedPrecondition error with \p msg.
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  /// \brief Constructs a ResourceExhausted error with \p msg.
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  /// \brief Constructs an Unimplemented error with \p msg.
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  /// \brief Constructs an Internal error with \p msg.
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  /// \brief Constructs an IOError with \p msg.
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }

  /// \brief True iff the operation succeeded.
  bool ok() const { return code_ == StatusCode::kOk; }
  /// \brief The status code.
  StatusCode code() const { return code_; }
  /// \brief The error message; empty for OK.
  const std::string& message() const { return message_; }
  /// \brief "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// \brief A value of type T or an error Status.
///
/// Accessing the value of an errored Result is a programmer error and
/// aborts. Use ok()/status() to branch.
template <typename T>
class Result {
 public:
  /// Constructs from a value (implicit, to allow `return value;`).
  Result(T value) : data_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Constructs from a non-OK status (implicit, to allow `return status;`).
  Result(Status status) : data_(std::move(status)) {  // NOLINT
    if (std::get<Status>(data_).ok()) {
      std::fprintf(stderr, "Result constructed from OK status\n");
      std::abort();
    }
  }

  /// \brief True iff a value is held.
  bool ok() const { return std::holds_alternative<T>(data_); }
  /// \brief The status; OK if a value is held.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(data_);
  }
  /// \brief The held value. Aborts if !ok().
  const T& value() const& {
    CheckOk();
    return std::get<T>(data_);
  }
  /// \brief Moves the held value out. Aborts if !ok().
  T&& value() && {
    CheckOk();
    return std::move(std::get<T>(data_));
  }
  /// \brief Alias of value() for structured-flow readability.
  const T& operator*() const& { return value(); }
  const T* operator->() const { return &value(); }

 private:
  void CheckOk() const {
    if (!ok()) {
      std::fprintf(stderr, "Result::value() on error: %s\n",
                   std::get<Status>(data_).ToString().c_str());
      std::abort();
    }
  }

  std::variant<T, Status> data_;
};

}  // namespace dlsys

/// \brief Aborts with a message if \p cond is false. For programmer errors
/// (precondition violations), not data-dependent failures.
#define DLSYS_CHECK(cond, msg)                                          \
  do {                                                                  \
    if (!(cond)) {                                                      \
      std::fprintf(stderr, "DLSYS_CHECK failed at %s:%d: %s\n",         \
                   __FILE__, __LINE__, (msg));                          \
      std::abort();                                                     \
    }                                                                   \
  } while (0)

/// \brief Returns early if the expression produces a non-OK Status.
#define DLSYS_RETURN_NOT_OK(expr)            \
  do {                                       \
    ::dlsys::Status _st = (expr);            \
    if (!_st.ok()) return _st;               \
  } while (0)

#endif  // DLSYS_CORE_STATUS_H_
