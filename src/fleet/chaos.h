#ifndef DLSYS_FLEET_CHAOS_H_
#define DLSYS_FLEET_CHAOS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/status.h"
#include "src/distributed/faults.h"

/// \file chaos.h
/// \brief Taxonomy-driven fault grammar for the serving fleet.
///
/// The scenario vocabulary is lifted from the Taxonomy of Real Faults in
/// DL Systems (1910.11015) and the distributed-training fault taxonomy
/// (2007.03970), projected onto a serving fleet:
///
///  - **Crash storm** — a correlated subset of replicas dies at once
///    (rack power, bad kernel rollout). Queued work is lost; recovery is
///    governed by the fleet's restart policy.
///  - **Slow-network partition** — a subset's request/response hops see
///    NetworkModel latency inflated by `severity`; the replicas stay
///    healthy and correct, just far away.
///  - **Gray failure** — a subset keeps answering health checks but
///    serves `severity`× slower (the classic differential-observability
///    failure: probes see liveness, clients see latency).
///  - **Bad-version rollout** — a new model version whose service cost is
///    `severity`× the declared model is canaried onto one replica; the
///    fleet's canary metric decides rollback (through the registry's
///    hot-swap path) or fleet-wide rollout.
///
/// A scenario *compiles* onto the PR-2 `FaultPlan`/`FaultInjector`
/// machinery with serving replicas standing where training workers stood
/// and fleet driver ticks standing where rounds stood: crash storms
/// become scheduled CrashEvents, background crash/drop probabilities
/// become the injector's stateless per-(replica, tick) draws. The same
/// (seed, scenario) therefore replays the exact same fault trace
/// bit-for-bit at any DLSYS_THREADS.

namespace dlsys {

/// \brief The four serving-fleet fault archetypes.
enum class FaultKind {
  kCrashStorm,
  kSlowPartition,
  kGrayFailure,
  kBadVersionRollout,
};

/// \brief Stable lowercase name ("crash_storm", ...).
const char* FaultKindName(FaultKind kind);

/// \brief One staged fault: \p kind hits a deterministic \p fraction of
/// the replica slots at \p start_ms. Interval faults (slow partition,
/// gray failure) lift after \p duration_ms; crash storms ignore it (the
/// recovery policy owns the timeline) and bad-version rollouts run the
/// canary state machine from \p start_ms on.
struct FleetFaultEvent {
  FaultKind kind = FaultKind::kCrashStorm;
  double start_ms = 0.0;
  double duration_ms = 0.0;
  double fraction = 0.5;   ///< of replica slots affected, ceil'd to >= 1
  double severity = 4.0;   ///< slowdown / latency multiplier (>= 1)
};

/// \brief Declarative, seed-replayable chaos for one fleet run.
struct ChaosScenario {
  std::string name = "steady";
  uint64_t seed = 0;  ///< folded into every affected-set and fault draw
  std::vector<FleetFaultEvent> events;
  /// Extra per-(replica, tick) crash probability (background attrition),
  /// drawn through FaultInjector::CrashesAt.
  double background_crash_prob = 0.0;
  /// Per-request message-loss probability, drawn through
  /// FaultInjector::FailedAttempts and costed by NetworkModel retries.
  double drop_prob = 0.0;
};

/// \brief Validates event times, fractions in (0, 1], severities >= 1,
/// probabilities in [0, 1]. InvalidArgument otherwise.
Status ValidateChaosScenario(const ChaosScenario& scenario);

/// \brief A scenario lowered onto replica slots and driver ticks.
struct CompiledChaos {
  /// Replicas-as-workers fault plan: scheduled crashes for every crash
  /// storm target (round = tick index), plus the background crash and
  /// drop probabilities. Feed to FaultInjector(plan, replica_slots).
  FaultPlan plan;
  /// Per event (same order as scenario.events), the affected replicas.
  std::vector<std::vector<int>> targets;
};

/// \brief Compiles \p scenario for \p replica_slots replicas with the
/// fleet driver ticking every \p tick_ms. Affected sets are chosen by a
/// seeded ranking over (scenario.seed, event index, replica), so they
/// are correlated (one event hits one deterministic subset) and stable
/// under replay. Requires a validated scenario; replica_slots >= 1,
/// tick_ms > 0.
Result<CompiledChaos> CompileChaos(const ChaosScenario& scenario,
                                   int replica_slots, double tick_ms);

/// \brief Named scenario library shared by bench_fleet, test_fleet, and
/// examples/fleet_chaos: "steady", "flash_crowd" (load-side only),
/// "crash_storm", "slow_partition", "gray_failure", "bad_version".
/// Times assume the canonical E35 run: load from 0 with faults landing
/// at 8 s into a ~24 s window (scaled by \p time_scale; smoke passes
/// < 1). InvalidArgument for unknown names.
Result<ChaosScenario> MakeScenario(const std::string& name,
                                   double time_scale = 1.0);

/// \brief All MakeScenario names, in E35 grid order.
std::vector<std::string> ScenarioNames();

}  // namespace dlsys

#endif  // DLSYS_FLEET_CHAOS_H_
