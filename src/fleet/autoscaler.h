#ifndef DLSYS_FLEET_AUTOSCALER_H_
#define DLSYS_FLEET_AUTOSCALER_H_

#include <cstdint>

#include "src/core/status.h"

/// \file autoscaler.h
/// \brief Capacity policies deciding on the simulated clock.
///
/// Both policies are target-tracking over the windowed offered rate, in
/// the spirit of MLSYSIM's first-principles capacity curves (2607.02558):
/// desired = ceil(rate / (target_utilization × per-replica capacity)),
/// clamped to [min, max]. The **reactive** policy tracks the rate it just
/// measured, so every scale-up trails demand by the provision lag — the
/// window where a flash crowd sheds. The **predictive** policy
/// extrapolates the rate trend one provision lag ahead and provisions for
/// the forecast, which is what buys back that window on ramps the trend
/// can see (diurnal rises), and buys nothing on steps it cannot.
///
/// Scale-downs are damped by `scale_down_patience` consecutive
/// under-target decisions so a single quiet window does not flap the
/// fleet. All state is plain arithmetic on simulated inputs: decisions
/// replay bit-for-bit.

namespace dlsys {

/// \brief Capacity policy of a fleet.
enum class ScalePolicy {
  kFixed,      ///< never changes the replica count
  kReactive,   ///< target-tracking on the measured rate
  kPredictive, ///< target-tracking on the trend-extrapolated rate
};

/// \brief Stable lowercase name ("fixed", "reactive", "predictive").
const char* ScalePolicyName(ScalePolicy policy);

struct AutoscalerConfig {
  ScalePolicy policy = ScalePolicy::kFixed;
  double decide_interval_ms = 1000.0;  ///< decision cadence (sim clock)
  double provision_lag_ms = 2000.0;    ///< scale-up order → replica usable
  double target_utilization = 0.6;     ///< of per-replica capacity
  int min_replicas = 1;
  int max_replicas = 8;
  int scale_down_patience = 2;  ///< consecutive low decisions before down
};

/// \brief Validates intervals/lags positive, utilization in (0, 1],
/// 1 <= min <= max, patience >= 1.
Status ValidateAutoscalerConfig(const AutoscalerConfig& config);

/// \brief One policy instance. Feed it the windowed offered rate at each
/// decision tick; it answers the desired replica count.
class Autoscaler {
 public:
  /// \p replica_capacity_rps is the declared-cost-model throughput of a
  /// single replica at full batches (must be > 0).
  Autoscaler(const AutoscalerConfig& config, double replica_capacity_rps);

  /// \brief Desired replica count given the offered rate over the last
  /// decision window. \p current is the present active+provisioning
  /// count. Call exactly once per decision tick (the trend state
  /// advances).
  int Desired(double window_rate_rps, int current);

  const AutoscalerConfig& config() const { return config_; }

 private:
  int TargetFor(double rate_rps) const;

  AutoscalerConfig config_;
  double capacity_rps_;
  double prev_rate_rps_ = -1.0;  ///< last window's rate; -1 = no history
  int low_streak_ = 0;           ///< consecutive decisions wanting fewer
};

}  // namespace dlsys

#endif  // DLSYS_FLEET_AUTOSCALER_H_
