#include "src/fleet/chaos.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace dlsys {

namespace {

/// SplitMix64 finalizer — the same full-avalanche mix the FaultInjector
/// uses, applied here to rank replicas into correlated affected sets.
uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

constexpr uint64_t kTargetTag = 0xF1EE7ULL;

}  // namespace

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrashStorm:
      return "crash_storm";
    case FaultKind::kSlowPartition:
      return "slow_partition";
    case FaultKind::kGrayFailure:
      return "gray_failure";
    case FaultKind::kBadVersionRollout:
      return "bad_version_rollout";
  }
  return "unknown";
}

Status ValidateChaosScenario(const ChaosScenario& scenario) {
  if (scenario.background_crash_prob < 0.0 ||
      scenario.background_crash_prob > 1.0) {
    return Status::InvalidArgument("background_crash_prob must be in [0, 1]");
  }
  if (scenario.drop_prob < 0.0 || scenario.drop_prob > 1.0) {
    return Status::InvalidArgument("drop_prob must be in [0, 1]");
  }
  for (const FleetFaultEvent& e : scenario.events) {
    if (!(e.start_ms >= 0.0) || !std::isfinite(e.start_ms)) {
      return Status::InvalidArgument(
          "fault start_ms must be finite and non-negative");
    }
    if (!(e.duration_ms >= 0.0) || !std::isfinite(e.duration_ms)) {
      return Status::InvalidArgument(
          "fault duration_ms must be finite and non-negative");
    }
    if (!(e.fraction > 0.0) || e.fraction > 1.0) {
      return Status::InvalidArgument("fault fraction must be in (0, 1]");
    }
    if (!(e.severity >= 1.0) || !std::isfinite(e.severity)) {
      return Status::InvalidArgument("fault severity must be >= 1");
    }
  }
  return Status::OK();
}

Result<CompiledChaos> CompileChaos(const ChaosScenario& scenario,
                                   int replica_slots, double tick_ms) {
  DLSYS_RETURN_NOT_OK(ValidateChaosScenario(scenario));
  if (replica_slots < 1) {
    return Status::InvalidArgument("replica_slots must be >= 1");
  }
  if (!(tick_ms > 0.0)) {
    return Status::InvalidArgument("tick_ms must be positive");
  }

  CompiledChaos out;
  out.plan.seed = scenario.seed;
  out.plan.crash_prob = scenario.background_crash_prob;
  out.plan.drop_prob = scenario.drop_prob;

  for (size_t ei = 0; ei < scenario.events.size(); ++ei) {
    const FleetFaultEvent& e = scenario.events[ei];
    // Correlated affected set: rank every slot by a seeded hash and take
    // the top ceil(fraction * slots). One event, one subset — the storm
    // is correlated by construction, and the subset replays bit-for-bit.
    std::vector<int> order(static_cast<size_t>(replica_slots));
    std::iota(order.begin(), order.end(), 0);
    std::vector<uint64_t> rank(order.size());
    for (int r = 0; r < replica_slots; ++r) {
      rank[static_cast<size_t>(r)] =
          Mix64(scenario.seed ^ Mix64(kTargetTag ^ Mix64(ei) ^
                                      static_cast<uint64_t>(r)));
    }
    std::sort(order.begin(), order.end(), [&rank](int a, int b) {
      const uint64_t ra = rank[static_cast<size_t>(a)];
      const uint64_t rb = rank[static_cast<size_t>(b)];
      return ra != rb ? ra < rb : a < b;
    });
    const int hit = std::min(
        replica_slots,
        static_cast<int>(std::ceil(e.fraction * replica_slots)));
    std::vector<int> targets(order.begin(), order.begin() + hit);
    std::sort(targets.begin(), targets.end());

    if (e.kind == FaultKind::kCrashStorm) {
      const int64_t round = static_cast<int64_t>(e.start_ms / tick_ms);
      for (int r : targets) {
        out.plan.crashes.push_back(CrashEvent{round, r});
      }
    }
    out.targets.push_back(std::move(targets));
  }
  DLSYS_RETURN_NOT_OK(ValidateFaultPlan(out.plan, replica_slots));
  return out;
}

Result<ChaosScenario> MakeScenario(const std::string& name,
                                   double time_scale) {
  if (!(time_scale > 0.0)) {
    return Status::InvalidArgument("time_scale must be positive");
  }
  ChaosScenario s;
  s.name = name;
  s.seed = 0x5CE4A210ULL;
  const double t0 = 8000.0 * time_scale;  ///< canonical fault instant
  if (name == "steady" || name == "flash_crowd") {
    // No injected faults; flash_crowd differs only in the load shape the
    // harness pairs with it.
    return s;
  }
  if (name == "crash_storm") {
    FleetFaultEvent e;
    e.kind = FaultKind::kCrashStorm;
    e.start_ms = t0;
    e.fraction = 0.5;
    s.events.push_back(e);
    return s;
  }
  if (name == "slow_partition") {
    FleetFaultEvent e;
    e.kind = FaultKind::kSlowPartition;
    e.start_ms = t0;
    e.duration_ms = 6000.0 * time_scale;
    e.fraction = 0.5;
    e.severity = 40.0;  ///< per-hop latency ×40: cross-zone, not down
    s.events.push_back(e);
    return s;
  }
  if (name == "gray_failure") {
    FleetFaultEvent e;
    e.kind = FaultKind::kGrayFailure;
    e.start_ms = t0;
    e.duration_ms = 6000.0 * time_scale;
    e.fraction = 0.34;  ///< one replica of a 3-wide group
    e.severity = 8.0;
    s.events.push_back(e);
    return s;
  }
  if (name == "bad_version") {
    FleetFaultEvent e;
    e.kind = FaultKind::kBadVersionRollout;
    e.start_ms = t0;
    e.fraction = 1.0;   ///< rollout wants the whole fleet eventually
    /// The new version serves 24× slower: a full batch under the E35
    /// grid's cost model blows through the 40 ms deadline, so the canary
    /// metric sees the degradation and the bake fails. (A milder lemon
    /// that only inflates p99 inside the deadline sails through — the
    /// canary watches the degraded fraction, not latency percentiles.)
    e.severity = 24.0;
    s.events.push_back(e);
    return s;
  }
  return Status::InvalidArgument("unknown chaos scenario '" + name + "'");
}

std::vector<std::string> ScenarioNames() {
  return {"steady",       "flash_crowd",  "crash_storm",
          "slow_partition", "gray_failure", "bad_version"};
}

}  // namespace dlsys
