#include "src/fleet/fleet.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdio>
#include <utility>

#include "src/core/rng.h"
#include "src/obs/counters.h"
#include "src/obs/trace.h"
#include "src/tensor/tensor.h"

namespace dlsys {

namespace {

/// How long past the end of the load window the driver keeps ticking to
/// let in-flight work land before force-draining. Simulated ms.
constexpr double kTailLimitMs = 60'000.0;

/// p-th percentile of \p values (sorted in place). 0 when empty.
double Percentile(std::vector<double>* values, double p) {
  if (values->empty()) return 0.0;
  std::sort(values->begin(), values->end());
  const size_t n = values->size();
  size_t idx = static_cast<size_t>(std::ceil(p * static_cast<double>(n)));
  if (idx > 0) --idx;
  if (idx >= n) idx = n - 1;
  return (*values)[idx];
}

void AppendI(std::string* out, const char* key, int64_t v, bool comma = true) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "\"%s\": %lld%s", key,
                static_cast<long long>(v), comma ? ", " : "");
  *out += buf;
}

void AppendD(std::string* out, const char* key, double v, bool comma = true) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "\"%s\": %.6f%s", key, v,
                comma ? ", " : "");
  *out += buf;
}

}  // namespace

const char* FleetRecoveryName(FleetRecovery recovery) {
  switch (recovery) {
    case FleetRecovery::kCheckpointedRestart:
      return "checkpointed_restart";
    case FleetRecovery::kColdReplace:
      return "cold_replace";
  }
  return "unknown";
}

Status ValidateFleetConfig(const FleetConfig& config) {
  if (config.replica_slots < 1) {
    return Status::InvalidArgument("replica_slots must be >= 1");
  }
  if (config.initial_replicas < 1 ||
      config.initial_replicas > config.replica_slots) {
    return Status::InvalidArgument(
        "need 1 <= initial_replicas <= replica_slots");
  }
  Status server = ValidateServerConfig(config.server);
  if (!server.ok()) return server;
  Status health = ValidateHealthCheckConfig(config.health);
  if (!health.ok()) return health;
  Status scale = ValidateAutoscalerConfig(config.autoscale);
  if (!scale.ok()) return scale;
  if (config.autoscale.min_replicas > config.replica_slots) {
    return Status::InvalidArgument(
        "autoscale.min_replicas exceeds replica_slots");
  }
  if (config.request_bytes < 0 || config.response_bytes < 0) {
    return Status::InvalidArgument("request/response bytes must be >= 0");
  }
  if (!(config.restart_ms >= 0.0) || !(config.replace_ms >= 0.0)) {
    return Status::InvalidArgument("restart_ms/replace_ms must be >= 0");
  }
  if (!(config.canary.bake_ms > 0.0)) {
    return Status::InvalidArgument("canary.bake_ms must be positive");
  }
  if (!(config.canary.max_degraded_fraction >= 0.0) ||
      !(config.canary.max_degraded_fraction <= 1.0)) {
    return Status::InvalidArgument(
        "canary.max_degraded_fraction must be in [0, 1]");
  }
  if (!(config.canary.max_p99_regression >= 0.0)) {
    return Status::InvalidArgument(
        "canary.max_p99_regression must be >= 0 (0 disables)");
  }
  if (config.canary.min_p99_samples < 1) {
    return Status::InvalidArgument("canary.min_p99_samples must be >= 1");
  }
  if (!(config.tick_ms > 0.0)) {
    return Status::InvalidArgument("tick_ms must be positive");
  }
  if (!(config.window_ms >= config.tick_ms)) {
    return Status::InvalidArgument("window_ms must be >= tick_ms");
  }
  if (config.recover_streak < 1) {
    return Status::InvalidArgument("recover_streak must be >= 1");
  }
  if (!(config.attribution.window_ms > 0.0)) {
    return Status::InvalidArgument("attribution.window_ms must be positive");
  }
  if (config.attribution.exemplars_per_window < 0) {
    return Status::InvalidArgument(
        "attribution.exemplars_per_window must be >= 0");
  }
  if (!(config.slo.slo_target > 0.0) || !(config.slo.slo_target < 1.0)) {
    return Status::InvalidArgument("slo.slo_target must be in (0, 1)");
  }
  if (!(config.slo.window_ms > 0.0)) {
    return Status::InvalidArgument("slo.window_ms must be positive");
  }
  if (config.slo.fast_windows < 1 ||
      config.slo.slow_windows < config.slo.fast_windows) {
    return Status::InvalidArgument(
        "need 1 <= slo.fast_windows <= slo.slow_windows");
  }
  if (!(config.slo.fast_burn_threshold > 0.0) ||
      !(config.slo.slow_burn_threshold > 0.0)) {
    return Status::InvalidArgument("slo burn thresholds must be positive");
  }
  if (config.slo.min_requests < 0) {
    return Status::InvalidArgument("slo.min_requests must be >= 0");
  }
  return Status::OK();
}

double FleetReport::goodput_rps() const {
  return duration_ms > 0.0 ? static_cast<double>(completed_ok) /
                                 (duration_ms / 1000.0)
                           : 0.0;
}

double FleetReport::miss_fraction() const {
  return offered > 0
             ? static_cast<double>(missed) / static_cast<double>(offered)
             : 0.0;
}

double FleetReport::shed_fraction() const {
  const int64_t shed =
      shed_queue_full + shed_deadline + shed_draining + shed_unhealthy;
  return offered > 0
             ? static_cast<double>(shed) / static_cast<double>(offered)
             : 0.0;
}

std::string FleetReportJson(const FleetReport& report) {
  std::string out = "{";
  out += "\"scenario\": \"" + report.scenario + "\", ";
  AppendI(&out, "offered", report.offered);
  AppendI(&out, "admitted", report.admitted);
  AppendI(&out, "completed_ok", report.completed_ok);
  AppendI(&out, "missed", report.missed);
  AppendI(&out, "shed_queue_full", report.shed_queue_full);
  AppendI(&out, "shed_deadline", report.shed_deadline);
  AppendI(&out, "shed_draining", report.shed_draining);
  AppendI(&out, "shed_unhealthy", report.shed_unhealthy);
  AppendI(&out, "failed_dead_replica", report.failed_dead_replica);
  AppendI(&out, "dropped_queued", report.dropped_queued);
  AppendI(&out, "crashes", report.crashes);
  AppendI(&out, "restarts", report.restarts);
  AppendI(&out, "rollouts", report.rollouts);
  AppendI(&out, "rollbacks", report.rollbacks);
  AppendI(&out, "p99_rollbacks", report.p99_rollbacks);
  AppendI(&out, "scale_ups", report.scale_ups);
  AppendI(&out, "scale_downs", report.scale_downs);
  AppendD(&out, "p99_ms", report.p99_ms);
  AppendD(&out, "duration_ms", report.duration_ms);
  AppendD(&out, "goodput_rps", report.goodput_rps());
  AppendD(&out, "miss_fraction", report.miss_fraction());
  AppendD(&out, "shed_fraction", report.shed_fraction());
  AppendD(&out, "steady_goodput_rps", report.steady_goodput_rps);
  AppendD(&out, "fault_start_ms", report.fault_start_ms);
  AppendD(&out, "time_to_recover_ms", report.time_to_recover_ms);
  out += "\"tenants\": {";
  {
    bool first = true;
    for (const auto& [name, row] : report.tenants) {
      if (!first) out += ", ";
      first = false;
      out += "\"" + name + "\": {";
      AppendI(&out, "offered", row.offered);
      AppendI(&out, "admitted", row.admitted);
      AppendI(&out, "completed_ok", row.completed_ok);
      AppendI(&out, "missed", row.missed);
      AppendI(&out, "shed", row.shed, /*comma=*/false);
      out += "}";
    }
  }
  out += "}, ";
  out += "\"alerts\": " + obs::BurnAlertsJson(report.alerts) + ", ";
  out += "\"windows\": [";
  for (size_t i = 0; i < report.windows.size(); ++i) {
    const FleetWindow& w = report.windows[i];
    if (i != 0) out += ", ";
    out += "{";
    AppendD(&out, "start_ms", w.start_ms);
    AppendI(&out, "offered", w.offered);
    AppendI(&out, "completed_ok", w.completed_ok);
    AppendI(&out, "missed", w.missed);
    AppendI(&out, "shed", w.shed);
    AppendD(&out, "p99_ms", w.p99_ms);
    AppendD(&out, "goodput_rps", w.goodput_rps);
    AppendI(&out, "active_replicas", w.active_replicas, /*comma=*/false);
    out += "}";
  }
  out += "]}";
  return out;
}

// ---------------------------------------------------------------- Fleet

/// One replica slot: a full serving stack plus the fleet's view of it.
struct Fleet::Replica {
  enum class State {
    kInactive,      ///< built but out of service (never used / scaled down)
    kProvisioning,  ///< scale-up ordered; usable at ready_ms
    kActive,        ///< serving
    kDraining,      ///< finishing queued work ahead of a scale-down
    kDown,          ///< crashed; restarting, usable at ready_ms
  };

  /// Fleet-side record of one admitted, not-yet-delivered request.
  struct PendingReq {
    double client_t_ms = 0.0;
    double client_deadline_ms = 0.0;  ///< absolute end-to-end deadline
    double return_hop_ms = 0.0;
    std::string tenant;  ///< empty when the load is untenanted
  };

  std::unique_ptr<ModelRegistry> registry;
  std::unique_ptr<Server> server;
  State state = State::kInactive;
  double ready_ms = 0.0;
  int64_t incarnation = 0;  ///< completed recoveries; doubles as the
                            ///< injector generation for crash draws
  double net_scale = 1.0;   ///< slow-partition latency factor
  size_t harvested = 0;     ///< server completions consumed so far
  std::map<int64_t, PendingReq> pending;
  // Canary accounting, reset at each rollout.
  int64_t offered_since_rollout = 0;
  int64_t degraded_since_rollout = 0;
  /// Client-observed latencies of every delivery this replica served, in
  /// delivery order; the canary verdict compares the p99 of the bake
  /// suffix against the pre-rollout prefix.
  std::vector<double> lat_history;
};

Fleet::Fleet(const FleetConfig& config) : config_(config) {}
Fleet::~Fleet() = default;

Result<std::unique_ptr<Fleet>> Fleet::Create(const FleetConfig& config) {
  Status valid = ValidateFleetConfig(config);
  if (!valid.ok()) return valid;
  std::unique_ptr<Fleet> fleet(new Fleet(config));
  for (int i = 0; i < config.replica_slots; ++i) {
    auto replica = std::make_unique<Replica>();
    replica->registry = std::make_unique<ModelRegistry>();
    auto server = Server::Create(replica->registry.get(), config.server);
    if (!server.ok()) return server.status();
    replica->server = std::move(server).value();
    replica->state = i < config.initial_replicas ? Replica::State::kActive
                                                 : Replica::State::kInactive;
    fleet->replicas_.push_back(std::move(replica));
  }
  return fleet;
}

double Fleet::ReplicaCapacityRps(const ServerConfig& server) {
  return static_cast<double>(server.workers) *
         static_cast<double>(server.batch.max_batch) * 1000.0 /
         EstimateServiceMs(server.cost, server.batch.max_batch);
}

Status Fleet::Deploy(const std::string& model, Sequential net,
                     const Shape& example_shape) {
  if (deployed_) return Status::FailedPrecondition("fleet already deployed");
  if (model.empty()) {
    return Status::InvalidArgument("model name must be non-empty");
  }
  model_ = model;
  net_ = std::move(net);
  example_shape_ = example_shape;
  for (auto& replica : replicas_) {
    auto version = replica->server->Publish(model_, net_, example_shape_);
    if (!version.ok()) return version.status();
  }
  deployed_ = true;
  return Status::OK();
}

Result<FleetReport> Fleet::Run(const ChaosScenario& scenario,
                               const TraceLoadConfig& load) {
  using State = Replica::State;
  if (!deployed_) return Status::FailedPrecondition("Deploy before Run");
  if (ran_) {
    return Status::FailedPrecondition(
        "Run consumes the replica clocks; build a fresh Fleet");
  }
  if (load.model != model_) {
    return Status::InvalidArgument("load.model does not match the deployment");
  }
  Status valid = ValidateChaosScenario(scenario);
  if (!valid.ok()) return valid;
  auto compiled =
      CompileChaos(scenario, config_.replica_slots, config_.tick_ms);
  if (!compiled.ok()) return compiled.status();
  ran_ = true;

  const int slots = config_.replica_slots;
  FaultInjector injector(compiled.value().plan, slots);
  const std::vector<std::vector<int>>& targets = compiled.value().targets;
  Router router(config_.route,
                config_.seed ^ (scenario.seed * 0x9E3779B97F4A7C15ULL));
  HealthTracker tracker(config_.health, slots);
  AutoscalerConfig scale_cfg = config_.autoscale;
  scale_cfg.max_replicas = std::min(scale_cfg.max_replicas, slots);
  scale_cfg.min_replicas =
      std::min(scale_cfg.min_replicas, scale_cfg.max_replicas);
  Autoscaler autoscaler(scale_cfg, ReplicaCapacityRps(config_.server));

  const std::vector<double> arrivals = GenerateTraceArrivals(load);
  // Tenant attribution of the arrival stream (empty mix = untenanted,
  // byte-identical behavior); rid indexes this in step 7.
  const std::vector<std::string> tenant_of =
      AssignTenants(load.tenant_mix, load.seed,
                    static_cast<int64_t>(arrivals.size()));
  const double deadline_ms = load.deadline_ms > 0.0
                                 ? load.deadline_ms
                                 : config_.server.default_deadline_ms;

  auto snap = replicas_[0]->registry->Acquire(model_);
  const int64_t in_elems = snap ? snap->in_elems : 0;
  snap.reset();  // payloads only need the size; don't pin a version
  Tensor example({in_elems});
  Rng payloads(load.seed ^ 0xF1EE7D00DULL);

  FleetReport report;
  report.scenario = scenario.name;
  report.duration_ms = load.duration_ms;
  for (const FleetFaultEvent& ev : scenario.events) {
    if (report.fault_start_ms < 0.0 || ev.start_ms < report.fault_start_ms) {
      report.fault_start_ms = ev.start_ms;
    }
  }

  // ---- windowed SLO accumulators ----------------------------------
  struct WindowAcc {
    int64_t offered = 0;
    int64_t ok = 0;
    int64_t missed = 0;
    int64_t shed = 0;
    std::vector<double> lat;
  };
  const double window_ms = config_.window_ms;
  std::vector<WindowAcc> windows;
  std::vector<int> win_active;
  auto window_at = [&](double t) -> WindowAcc& {
    const size_t idx =
        t <= 0.0 ? 0 : static_cast<size_t>(t / window_ms);
    if (idx >= windows.size()) windows.resize(idx + 1);
    return windows[idx];
  };
  std::vector<double> all_lat;

  // ---- critical-path attribution + burn-rate alerting -------------
  obs::AttributionAggregator aggregator(config_.attribution);
  obs::BurnRateAlerter alerter(config_.slo);

  // ---- in-flight deliveries ---------------------------------------
  struct Delivery {
    double deliver_ms = 0.0;
    double latency_ms = 0.0;
    bool ok = false;
    bool record_latency = false;
    int replica = -1;
    int64_t incarnation = 0;
    double finish_ms = 0.0;  ///< server-side finish; 0 for dead routes
    std::string tenant;      ///< empty when the load is untenanted
    /// Critical-path boundary stamps, valid when has_record. Built at
    /// harvest but fed to the aggregator/alerter only at finalize, when
    /// the delivery is known to have survived crash invalidation.
    obs::RequestPathRecord record;
    bool has_record = false;
  };
  std::vector<Delivery> outstanding;

  struct CanaryState {
    bool active = false;
    int replica = -1;
    double started_ms = 0.0;
    double severity = 1.0;
    /// lat_history length at rollout: entries before it are the baseline,
    /// entries after it are the bake window.
    size_t baseline_lat = 0;
  };
  CanaryState canary;
  std::vector<bool> event_started(scenario.events.size(), false);
  std::vector<bool> event_ended(scenario.events.size(), false);

  auto finalize = [&](const Delivery& d) {
    WindowAcc& w = window_at(d.deliver_ms);
    if (d.ok) {
      ++w.ok;
      ++report.completed_ok;
      if (!d.tenant.empty()) ++report.tenants[d.tenant].completed_ok;
    } else {
      ++w.missed;
      ++report.missed;
      if (!d.tenant.empty()) ++report.tenants[d.tenant].missed;
      if (canary.active && d.replica == canary.replica) {
        ++replicas_[static_cast<size_t>(d.replica)]->degraded_since_rollout;
      }
    }
    if (d.record_latency) {
      w.lat.push_back(d.latency_ms);
      all_lat.push_back(d.latency_ms);
      if (d.replica >= 0) {
        replicas_[static_cast<size_t>(d.replica)]->lat_history.push_back(
            d.latency_ms);
      }
      if (d.has_record) {
        const obs::RequestPathRecord& rec = d.record;
#if DLSYS_OBS
        const int64_t root = obs::RequestSpanId(rec.rid);
        DLSYS_TRACE_EMIT_SIM_NS("fleet.request", "fleet", rec.send_ns,
                                rec.deliver_ns - rec.send_ns, rec.rid, root,
                                -1);
        DLSYS_TRACE_EMIT_SIM_NS(
            "fleet.return", "fleet", rec.finish_ns,
            rec.deliver_ns - rec.finish_ns, rec.rid,
            obs::ComponentSpanId(rec.rid, obs::PathComponent::kReturnHop),
            root);
#endif
        report.path_records.push_back(rec);
        alerter.Record(rec, aggregator.Record(rec));
      }
    }
  };

  auto harvest = [&](int slot) {
    Replica& r = *replicas_[static_cast<size_t>(slot)];
    const std::vector<Server::Completion>& done = r.server->completions();
    for (size_t i = r.harvested; i < done.size(); ++i) {
      const Server::Completion& c = done[i];
      auto it = r.pending.find(c.id);
      if (it == r.pending.end()) continue;  // pre-crash id reused: ignore
      Delivery d;
      d.deliver_ms = c.finish_ms + it->second.return_hop_ms;
      d.latency_ms = d.deliver_ms - it->second.client_t_ms;
      d.ok = d.deliver_ms <= it->second.client_deadline_ms;
      d.record_latency = true;
      d.replica = slot;
      d.incarnation = r.incarnation;
      d.finish_ms = c.finish_ms;
      d.tenant = it->second.tenant;
      // Quantize the path boundaries to integer sim-ns with the same
      // quantizer the sim-track spans use, so the decomposition sums
      // bitwise to the rendered end-to-end span.
      d.record.rid = c.rid;
      d.record.tenant = c.tenant;
      d.record.replica = slot;
      d.record.incarnation = r.incarnation;
      d.record.slot = c.slot;
      d.record.send_ns = obs::SimNs(it->second.client_t_ms);
      d.record.admit_ns = obs::SimNs(c.arrival_ms);
      d.record.quota_open_ns = obs::SimNs(c.quota_open_ms);
      d.record.dispatch_ns = obs::SimNs(c.dispatch_ms);
      d.record.finish_ns = obs::SimNs(c.finish_ms);
      d.record.deliver_ns = obs::SimNs(d.deliver_ms);
      d.record.deadline_ok = d.ok;
      d.has_record = true;
      outstanding.push_back(d);
      r.pending.erase(it);
    }
    r.harvested = done.size();
  };

  auto crash = [&](int slot, double at_ms) {
    Replica& r = *replicas_[static_cast<size_t>(slot)];
    ++report.crashes;
    DLSYS_COUNTER_ADD("fleet.crash", 1);
    DLSYS_TRACE_INSTANT_SIM("fleet.crash", "fleet", at_ms, slot);
    // The queue dies with the replica; so do its in-flight batches
    // (stamped to finish after the crash instant).
    report.dropped_queued += r.server->DropQueued();
    WindowAcc& w = window_at(at_ms);
    w.missed += static_cast<int64_t>(r.pending.size());
    report.missed += static_cast<int64_t>(r.pending.size());
    for (const auto& [id, p] : r.pending) {
      if (!p.tenant.empty()) ++report.tenants[p.tenant].missed;
    }
    r.pending.clear();
    for (Delivery& d : outstanding) {
      if (d.replica == slot && d.incarnation == r.incarnation &&
          d.finish_ms > at_ms) {
        d.ok = false;
        d.record_latency = false;
        d.deliver_ms = at_ms;
      }
    }
    r.state = State::kDown;
    r.ready_ms =
        at_ms + (config_.recovery == FleetRecovery::kCheckpointedRestart
                     ? config_.restart_ms
                     : config_.replace_ms);
    if (canary.active && canary.replica == slot) canary.active = false;
  };

  auto republish = [&](int slot) -> Status {
    auto version = replicas_[static_cast<size_t>(slot)]->server->Publish(
        model_, net_, example_shape_);
    return version.ok() ? Status::OK() : version.status();
  };

  auto restart_due = [&](int slot, double at_ms) -> Status {
    Replica& r = *replicas_[static_cast<size_t>(slot)];
    if (config_.recovery == FleetRecovery::kColdReplace) {
      // A fresh instance: new registry, new server, republished model.
      r.registry = std::make_unique<ModelRegistry>();
      auto server = Server::Create(r.registry.get(), config_.server);
      if (!server.ok()) return server.status();
      r.server = std::move(server).value();
      r.harvested = 0;
      Status pub = republish(slot);
      if (!pub.ok()) return pub;
    }
    ++r.incarnation;
    r.state = State::kActive;
    ++report.restarts;
    DLSYS_COUNTER_ADD("fleet.restart", 1);
    DLSYS_TRACE_INSTANT_SIM("fleet.restart", "fleet", at_ms, slot);
    return Status::OK();
  };

  // ---- the tick loop ----------------------------------------------
  const double tick = config_.tick_ms;
  const double load_end = load.start_ms + load.duration_ms;
  double next_probe = config_.health.interval_ms;
  double next_decide = scale_cfg.decide_interval_ms;
  int64_t arrivals_in_decide = 0;
  size_t next_arrival = 0;
  int64_t request_index = 0;
  std::vector<ReplicaView> view(static_cast<size_t>(slots));

  for (int64_t k = 0;; ++k) {
    const double T = static_cast<double>(k) * tick;
    const double now = T + tick;

    // 1. Replica timers: provisioning/restart completes, drains finish.
    for (int i = 0; i < slots; ++i) {
      Replica& r = *replicas_[static_cast<size_t>(i)];
      if (r.state == State::kProvisioning && r.ready_ms <= T) {
        r.state = State::kActive;
        tracker.Reset(i);
      } else if (r.state == State::kDown && r.ready_ms <= T) {
        Status restarted = restart_due(i, T);
        if (!restarted.ok()) return restarted;
      } else if (r.state == State::kDraining && r.pending.empty() &&
                 r.server->queue_depth() == 0) {
        r.server->SetDraining(false);
        r.state = State::kInactive;
      }
    }

    // 2. Chaos event transitions due at this tick.
    for (size_t e = 0; e < scenario.events.size(); ++e) {
      const FleetFaultEvent& ev = scenario.events[e];
      if (!event_started[e] && ev.start_ms <= T) {
        event_started[e] = true;
        switch (ev.kind) {
          case FaultKind::kCrashStorm:
            break;  // compiled into the fault plan; fires in step 3
          case FaultKind::kSlowPartition:
            for (int t : targets[e]) {
              replicas_[static_cast<size_t>(t)]->net_scale = ev.severity;
            }
            break;
          case FaultKind::kGrayFailure:
            for (int t : targets[e]) {
              replicas_[static_cast<size_t>(t)]->server->SetCostScale(
                  ev.severity);
            }
            break;
          case FaultKind::kBadVersionRollout: {
            int c = -1;
            for (int t : targets[e]) {
              if (replicas_[static_cast<size_t>(t)]->state == State::kActive) {
                c = t;
                break;
              }
            }
            if (c < 0) break;  // nothing active to canary onto
            Status pub = republish(c);
            if (!pub.ok()) return pub;
            Replica& cr = *replicas_[static_cast<size_t>(c)];
            cr.server->SetCostScale(ev.severity);
            cr.offered_since_rollout = 0;
            cr.degraded_since_rollout = 0;
            canary = CanaryState{true, c, T, ev.severity,
                                 cr.lat_history.size()};
            ++report.rollouts;
            DLSYS_COUNTER_ADD("fleet.rollout", 1);
            DLSYS_TRACE_INSTANT_SIM("fleet.rollout", "fleet", T, c);
            break;
          }
        }
      }
      if (event_started[e] && !event_ended[e] && ev.duration_ms > 0.0 &&
          ev.start_ms + ev.duration_ms <= T) {
        event_ended[e] = true;
        switch (ev.kind) {
          case FaultKind::kSlowPartition:
            for (int t : targets[e]) {
              replicas_[static_cast<size_t>(t)]->net_scale = 1.0;
            }
            break;
          case FaultKind::kGrayFailure:
            for (int t : targets[e]) {
              replicas_[static_cast<size_t>(t)]->server->SetCostScale(1.0);
            }
            break;
          default:
            break;
        }
      }
    }

    // 3. Canary bake verdict.
    if (canary.active && T >= canary.started_ms + config_.canary.bake_ms) {
      Replica& cr = *replicas_[static_cast<size_t>(canary.replica)];
      const double degraded =
          cr.offered_since_rollout > 0
              ? static_cast<double>(cr.degraded_since_rollout) /
                    static_cast<double>(cr.offered_since_rollout)
              : 0.0;
      // Windowed p99 regression: a latency lemon whose responses still
      // land inside the deadline produces zero degraded deliveries, so
      // the bake also compares the canary's p99 during the bake against
      // its own pre-rollout baseline.
      bool lat_regressed = false;
      if (config_.canary.max_p99_regression > 0.0) {
        const size_t mins =
            static_cast<size_t>(config_.canary.min_p99_samples);
        const size_t split =
            std::min(canary.baseline_lat, cr.lat_history.size());
        std::vector<double> base(cr.lat_history.begin(),
                                 cr.lat_history.begin() +
                                     static_cast<ptrdiff_t>(split));
        std::vector<double> bake(cr.lat_history.begin() +
                                     static_cast<ptrdiff_t>(split),
                                 cr.lat_history.end());
        if (base.size() >= mins && bake.size() >= mins) {
          const double p99_base = Percentile(&base, 0.99);
          const double p99_bake = Percentile(&bake, 0.99);
          lat_regressed =
              p99_base > 0.0 &&
              p99_bake > config_.canary.max_p99_regression * p99_base;
        }
      }
      if (degraded > config_.canary.max_degraded_fraction || lat_regressed) {
        if (lat_regressed) {
          DLSYS_COUNTER_ADD("fleet.canary.p99_regression", 1);
          if (config_.canary.auto_rollback) ++report.p99_rollbacks;
        }
        if (config_.canary.auto_rollback) {
          Status pub = republish(canary.replica);
          if (!pub.ok()) return pub;
          cr.server->SetCostScale(1.0);
          ++report.rollbacks;
          DLSYS_COUNTER_ADD("fleet.rollback", 1);
          DLSYS_TRACE_INSTANT_SIM("fleet.rollback", "fleet", T,
                                  canary.replica);
        }
        // Without auto_rollback the bad canary just keeps serving.
      } else {
        // Bake passed: the (possibly slow) version rolls out fleet-wide.
        for (int i = 0; i < slots; ++i) {
          Replica& r = *replicas_[static_cast<size_t>(i)];
          if (i == canary.replica || r.state != State::kActive) continue;
          Status pub = republish(i);
          if (!pub.ok()) return pub;
          r.server->SetCostScale(canary.severity);
        }
      }
      canary.active = false;
    }

    // 4. Crash draws for this tick (scheduled storms + background).
    for (int i = 0; i < slots; ++i) {
      Replica& r = *replicas_[static_cast<size_t>(i)];
      if (r.state != State::kActive && r.state != State::kDraining) continue;
      if (injector.CrashesAt(i, k, r.incarnation)) {
        injector.ConsumeCrash(i, k);
        crash(i, T);
      }
    }

    // 5. Health probes: a down replica fails its probe, everything else
    // that is serving answers (gray failures answer by design).
    while (next_probe <= T) {
      for (int i = 0; i < slots; ++i) {
        const State st = replicas_[static_cast<size_t>(i)]->state;
        if (st == State::kActive) {
          tracker.Probe(i, true);
        } else if (st == State::kDown) {
          tracker.Probe(i, false);
        }
      }
      next_probe += config_.health.interval_ms;
    }

    // 6. Autoscaler decisions.
    while (next_decide <= T) {
      const double rate = static_cast<double>(arrivals_in_decide) * 1000.0 /
                          scale_cfg.decide_interval_ms;
      arrivals_in_decide = 0;
      int current = 0;
      for (const auto& r : replicas_) {
        if (r->state == State::kActive || r->state == State::kProvisioning ||
            r->state == State::kDown) {
          ++current;
        }
      }
      const int desired = autoscaler.Desired(rate, current);
      if (desired > current) {
        int need = desired - current;
        for (int i = 0; i < slots && need > 0; ++i) {
          Replica& r = *replicas_[static_cast<size_t>(i)];
          if (r.state == State::kDraining) {
            // Cheapest capacity: cancel an in-progress drain.
            r.server->SetDraining(false);
            r.state = State::kActive;
            --need;
            ++report.scale_ups;
          } else if (r.state == State::kInactive) {
            r.state = State::kProvisioning;
            r.ready_ms = T + scale_cfg.provision_lag_ms;
            --need;
            ++report.scale_ups;
            DLSYS_COUNTER_ADD("fleet.scale_up", 1);
            DLSYS_TRACE_INSTANT_SIM("fleet.scale_up", "fleet", T, i);
          }
        }
      } else if (desired < current) {
        int excess = current - desired;
        for (int i = slots - 1; i >= 0 && excess > 0; --i) {
          Replica& r = *replicas_[static_cast<size_t>(i)];
          if (r.state == State::kProvisioning) {
            r.state = State::kInactive;  // cancel the pending order
            --excess;
            ++report.scale_downs;
          } else if (r.state == State::kActive &&
                     !(canary.active && canary.replica == i)) {
            r.server->SetDraining(true);
            tracker.MarkUnhealthy(i);
            r.state = State::kDraining;
            --excess;
            ++report.scale_downs;
            DLSYS_COUNTER_ADD("fleet.scale_down", 1);
            DLSYS_TRACE_INSTANT_SIM("fleet.scale_down", "fleet", T, i);
          }
        }
      }
      next_decide += scale_cfg.decide_interval_ms;
    }

    // 7. Route and submit this tick's arrivals.
    while (next_arrival < arrivals.size() && arrivals[next_arrival] < now) {
      const double t = arrivals[next_arrival];
      ++next_arrival;
      const int64_t rid = request_index++;
      ++arrivals_in_decide;
      ++report.offered;
      // rid counts every arrival in order, so it indexes tenant_of.
      const std::string tenant =
          tenant_of.empty() ? std::string()
                            : tenant_of[static_cast<size_t>(rid)];
      FleetReport::TenantRow* trow =
          tenant.empty() ? nullptr : &report.tenants[tenant];
      if (trow != nullptr) ++trow->offered;
      WindowAcc& aw = window_at(t);
      ++aw.offered;
      for (int i = 0; i < slots; ++i) {
        Replica& r = *replicas_[static_cast<size_t>(i)];
        // A crashed-but-undetected replica stays in the rotation: that
        // is the cost of detection latency the metrics charge for.
        const bool routable =
            tracker.healthy(i) &&
            (r.state == State::kActive || r.state == State::kDown);
        ReplicaView& v = view[static_cast<size_t>(i)];
        v.routable = routable;
        v.queue_depth = routable ? r.server->queue_depth() : 0;
        v.backlog_ms =
            routable ? std::max(0.0, r.server->earliest_worker_free_ms() -
                                         r.server->clock_ms())
                     : 0.0;
      }
      const int pick = router.Pick(view, rid);
      if (pick < 0) {
        DLSYS_COUNTER_ADD("serve.shed.unhealthy_replica", 1);
        DLSYS_TRACE_INSTANT_SIM("serve.shed.unhealthy_replica", "fleet", t,
                                rid);
        ++report.shed_unhealthy;
        ++aw.shed;
        if (trow != nullptr) ++trow->shed;
        continue;
      }
      Replica& r = *replicas_[static_cast<size_t>(pick)];
      const NetworkModel net =
          r.net_scale != 1.0 ? config_.network.WithLatencyScaled(r.net_scale)
                             : config_.network;
      int64_t lost = 0;
      if (scenario.drop_prob > 0.0) {
        lost = injector.FailedAttempts(pick, k, rid, net.max_retries);
      }
      const double fwd_ms =
          net.TransferWithRetries(config_.request_bytes, lost) * 1000.0;
      const double ret_ms =
          net.TransferSeconds(config_.response_bytes) * 1000.0;
      if (canary.active && pick == canary.replica) {
        ++r.offered_since_rollout;
      }
      if (r.state == State::kDown) {
        // Routed into the detection gap: the request times out.
        ++report.failed_dead_replica;
        DLSYS_COUNTER_ADD("fleet.failed.dead_replica", 1);
        Delivery d;
        d.deliver_ms = t + fwd_ms + net.timeout_seconds * 1000.0;
        d.ok = false;
        d.record_latency = false;
        d.replica = pick;
        d.incarnation = r.incarnation;
        d.tenant = tenant;
        outstanding.push_back(d);
        continue;
      }
      // Arrival at the replica, clamped to its clock so per-server
      // submits stay monotone even when retry penalties vary.
      const double ta = std::max(t + fwd_ms, r.server->clock_ms());
      const double budget = (t + deadline_ms) - ret_ms - ta;
      DLSYS_TRACE_EMIT_SIM_NS(
          "fleet.route", "fleet", obs::SimNs(t), obs::SimNs(ta) - obs::SimNs(t),
          rid, obs::ComponentSpanId(rid, obs::PathComponent::kRouteHop),
          obs::RequestSpanId(rid));
      example.FillGaussian(&payloads, 1.0f);
      const obs::RequestTrace rtrace{rid, r.incarnation};
      const Server::SubmitResult sr =
          r.server->Submit(model_, example, ta, budget > 0.0 ? budget : 1e-9,
                           tenant, &rtrace);
      const bool admitted = sr.outcome == Server::Outcome::kAdmitted;
      if (admitted) {
        ++report.admitted;
        if (trow != nullptr) ++trow->admitted;
        r.pending[sr.id] =
            Replica::PendingReq{t, t + deadline_ms, ret_ms, tenant};
      } else {
        ++aw.shed;
        if (trow != nullptr) ++trow->shed;
        if (canary.active && pick == canary.replica) {
          ++r.degraded_since_rollout;
        }
        switch (sr.outcome) {
          case Server::Outcome::kShedQueueFull:
            ++report.shed_queue_full;
            break;
          case Server::Outcome::kShedDeadline:
            ++report.shed_deadline;
            break;
          case Server::Outcome::kShedDraining:
            ++report.shed_draining;
            break;
          default:
            return Status::Internal("model missing from replica registry");
        }
      }
    }

    // 8. Advance every serving replica to the tick end and collect what
    // finished.
    for (const auto& r : replicas_) {
      if ((r->state == State::kActive || r->state == State::kDraining) &&
          r->server->clock_ms() < now) {
        r->server->AdvanceTo(now);
      }
    }
    for (int i = 0; i < slots; ++i) harvest(i);

    // 9. Deliver responses due by the tick end.
    {
      size_t kept = 0;
      for (size_t i = 0; i < outstanding.size(); ++i) {
        if (outstanding[i].deliver_ms <= now) {
          finalize(outstanding[i]);
        } else {
          outstanding[kept++] = outstanding[i];
        }
      }
      outstanding.resize(kept);
    }

    // Record the active-replica count for this tick's window (the last
    // tick in a window wins, i.e. the count at window close).
    {
      const size_t widx = static_cast<size_t>(T / window_ms);
      if (widx >= win_active.size()) win_active.resize(widx + 1, 0);
      int active = 0;
      for (const auto& r : replicas_) {
        if (r->state == State::kActive) ++active;
      }
      win_active[widx] = active;
    }

    if (T >= load_end) {
      bool inflight = !outstanding.empty();
      for (const auto& r : replicas_) {
        inflight = inflight || !r->pending.empty();
      }
      if (!inflight || T > load_end + kTailLimitMs) break;
    }
  }

  // Force-drain whatever survived the tail limit.
  for (int i = 0; i < slots; ++i) {
    Replica& r = *replicas_[static_cast<size_t>(i)];
    if ((r.state == State::kActive || r.state == State::kDraining) &&
        r.server->queue_depth() > 0) {
      r.server->Drain();
    }
    harvest(i);
  }
  for (const Delivery& d : outstanding) finalize(d);
  outstanding.clear();
  report.attribution = aggregator.report();
  report.alerts = alerter.Evaluate();

  // ---- fold windows into the report -------------------------------
  report.p99_ms = Percentile(&all_lat, 0.99);
  report.windows.reserve(windows.size());
  for (size_t i = 0; i < windows.size(); ++i) {
    WindowAcc& acc = windows[i];
    FleetWindow w;
    w.start_ms = static_cast<double>(i) * window_ms;
    w.offered = acc.offered;
    w.completed_ok = acc.ok;
    w.missed = acc.missed;
    w.shed = acc.shed;
    w.p99_ms = Percentile(&acc.lat, 0.99);
    w.goodput_rps = static_cast<double>(acc.ok) * 1000.0 / window_ms;
    w.active_replicas = i < win_active.size() ? win_active[i] : 0;
    report.windows.push_back(w);
  }

  // Steady state over complete pre-fault windows inside the load span.
  // Recovery is detected on the *served fraction* (completed_ok /
  // offered per window) rather than absolute goodput, so a diurnal load
  // decline after the fault does not read as an outage: time-to-recover
  // is the first post-fault window opening a run of recover_streak
  // windows whose served fraction is back within 10% of the pre-fault
  // mean.
  const auto served_fraction = [](const FleetWindow& w) {
    return w.offered > 0 ? static_cast<double>(w.completed_ok) /
                               static_cast<double>(w.offered)
                         : 1.0;
  };
  size_t limit = static_cast<size_t>(load_end / window_ms);
  limit = std::min(limit, report.windows.size());
  const double fault = report.fault_start_ms;
  const size_t fault_w =
      fault >= 0.0 ? static_cast<size_t>(fault / window_ms) : limit;
  double steady_sum = 0.0;
  double steady_frac_sum = 0.0;
  size_t steady_n = 0;
  for (size_t i = 0; i < std::min(fault_w, limit); ++i) {
    steady_sum += report.windows[i].goodput_rps;
    steady_frac_sum += served_fraction(report.windows[i]);
    ++steady_n;
  }
  report.steady_goodput_rps =
      steady_n > 0 ? steady_sum / static_cast<double>(steady_n) : 0.0;
  const double steady_frac =
      steady_n > 0 ? steady_frac_sum / static_cast<double>(steady_n) : 0.0;
  if (fault >= 0.0 && steady_frac > 0.0) {
    const double bar = 0.9 * steady_frac;
    const size_t streak = static_cast<size_t>(config_.recover_streak);
    for (size_t i = fault_w; i + streak <= limit; ++i) {
      bool recovered = true;
      for (size_t j = 0; j < streak; ++j) {
        recovered =
            recovered && served_fraction(report.windows[i + j]) >= bar;
      }
      if (recovered) {
        report.time_to_recover_ms =
            std::max(0.0, static_cast<double>(i) * window_ms - fault);
        break;
      }
    }
  }
  return report;
}

}  // namespace dlsys
