#include "src/fleet/autoscaler.h"

#include <algorithm>
#include <cmath>

namespace dlsys {

const char* ScalePolicyName(ScalePolicy policy) {
  switch (policy) {
    case ScalePolicy::kFixed:
      return "fixed";
    case ScalePolicy::kReactive:
      return "reactive";
    case ScalePolicy::kPredictive:
      return "predictive";
  }
  return "unknown";
}

Status ValidateAutoscalerConfig(const AutoscalerConfig& config) {
  if (!(config.decide_interval_ms > 0.0)) {
    return Status::InvalidArgument("decide_interval_ms must be positive");
  }
  if (!(config.provision_lag_ms >= 0.0)) {
    return Status::InvalidArgument("provision_lag_ms must be non-negative");
  }
  if (!(config.target_utilization > 0.0) || config.target_utilization > 1.0) {
    return Status::InvalidArgument("target_utilization must be in (0, 1]");
  }
  if (config.min_replicas < 1 ||
      config.max_replicas < config.min_replicas) {
    return Status::InvalidArgument(
        "need 1 <= min_replicas <= max_replicas");
  }
  if (config.scale_down_patience < 1) {
    return Status::InvalidArgument("scale_down_patience must be >= 1");
  }
  return Status::OK();
}

Autoscaler::Autoscaler(const AutoscalerConfig& config,
                       double replica_capacity_rps)
    : config_(config), capacity_rps_(replica_capacity_rps) {}

int Autoscaler::TargetFor(double rate_rps) const {
  const double usable = config_.target_utilization * capacity_rps_;
  const int raw = static_cast<int>(std::ceil(std::max(0.0, rate_rps) / usable));
  return std::clamp(raw, config_.min_replicas, config_.max_replicas);
}

int Autoscaler::Desired(double window_rate_rps, int current) {
  if (config_.policy == ScalePolicy::kFixed) return current;

  double planning_rate = window_rate_rps;
  if (config_.policy == ScalePolicy::kPredictive && prev_rate_rps_ >= 0.0) {
    // Linear trend over the last two windows, extrapolated one provision
    // lag ahead: capacity ordered now arrives then, so provision for the
    // rate *then*. Negative trends are followed too (the scale-down
    // patience below still damps them).
    const double slope_per_ms = (window_rate_rps - prev_rate_rps_) /
                                config_.decide_interval_ms;
    planning_rate = std::max(
        window_rate_rps,
        window_rate_rps + slope_per_ms * config_.provision_lag_ms);
  }
  prev_rate_rps_ = window_rate_rps;

  const int target = TargetFor(planning_rate);
  if (target > current) {
    low_streak_ = 0;
    return target;
  }
  if (target < current) {
    ++low_streak_;
    if (low_streak_ >= config_.scale_down_patience) {
      low_streak_ = 0;
      return target;
    }
    return current;
  }
  low_streak_ = 0;
  return current;
}

}  // namespace dlsys
