#ifndef DLSYS_FLEET_ROUTER_H_
#define DLSYS_FLEET_ROUTER_H_

#include <cstdint>
#include <vector>

#include "src/core/status.h"

/// \file router.h
/// \brief Deterministic health-checked request routing for the fleet.
///
/// Three classic policies, all pure functions of (policy state, replica
/// view, request index) so routing replays bit-for-bit:
///
///  - **round_robin** — a cursor over routable replicas; blind to load,
///    which is exactly why gray failures hurt it (E35).
///  - **least_loaded** — minimum queue depth, backlog time and then the
///    lowest index as deterministic tiebreaks; routes around replicas
///    whose queues balloon even when health checks still pass.
///  - **power_of_two** — two seeded hash draws, pick the less loaded;
///    the classic O(1) approximation of least-loaded whose draws come
///    from the same SplitMix64 family as the fault injector, so they
///    replay at any DLSYS_THREADS.
///
/// Health is tracked by a probe state machine on the simulated clock: a
/// replica leaves the routable set after `failure_threshold` consecutive
/// failed probes and rejoins after `recovery_threshold` consecutive
/// successes. The window between a crash and its detection is real: the
/// router keeps sending to a dead-but-undetected replica and those
/// requests fail, which is what the fleet's availability metrics charge
/// for slow health checking. Gray failures answer probes by design.

namespace dlsys {

/// \brief Routing policy of a fleet front door.
enum class RoutePolicy {
  kRoundRobin,
  kLeastLoaded,
  kPowerOfTwo,
};

/// \brief Stable lowercase name ("round_robin", ...).
const char* RoutePolicyName(RoutePolicy policy);

/// \brief The router's per-replica view at one pick.
struct ReplicaView {
  bool routable = false;     ///< in the rotation (healthy, active)
  int64_t queue_depth = 0;   ///< admitted-but-undispatched requests
  double backlog_ms = 0.0;   ///< earliest worker free time minus now
};

/// \brief Deterministic policy router. Not thread-safe (the fleet driver
/// is a single-threaded event loop).
class Router {
 public:
  Router(RoutePolicy policy, uint64_t seed)
      : policy_(policy), seed_(seed) {}

  /// \brief Picks a routable replica for request \p request_index, or -1
  /// when none is routable. Deterministic for a fixed (seed, view
  /// sequence, request_index sequence).
  int Pick(const std::vector<ReplicaView>& view, int64_t request_index);

  RoutePolicy policy() const { return policy_; }

 private:
  /// Less-loaded comparison: queue depth, then backlog, then index.
  static bool LighterThan(const ReplicaView& a, int ia,
                          const ReplicaView& b, int ib);

  RoutePolicy policy_;
  uint64_t seed_;
  int64_t rr_cursor_ = 0;
};

/// \brief Probe-driven health state machine for the fleet's replicas.
struct HealthCheckConfig {
  double interval_ms = 200.0;  ///< probe period on the simulated clock
  int failure_threshold = 2;   ///< consecutive failures → unroutable
  int recovery_threshold = 2;  ///< consecutive successes → routable
};

/// \brief Validates probe interval > 0 and thresholds >= 1.
Status ValidateHealthCheckConfig(const HealthCheckConfig& config);

/// \brief Tracks per-replica probe streaks and the resulting routable
/// verdict. Replicas start healthy (a freshly provisioned replica joins
/// the rotation once its server exists).
class HealthTracker {
 public:
  HealthTracker(const HealthCheckConfig& config, int replicas);

  /// \brief Feeds one probe result for \p replica.
  void Probe(int replica, bool ok);

  /// \brief Current routable verdict for \p replica.
  bool healthy(int replica) const {
    return state_[static_cast<size_t>(replica)].healthy;
  }

  /// \brief Resets \p replica to the initial healthy state (used when a
  /// fresh incarnation replaces a crashed one after its probes pass; the
  /// fleet instead calls MarkUnhealthy at crash detection).
  void Reset(int replica);

  /// \brief Forces \p replica out of the rotation immediately (e.g. the
  /// drain path, where the fleet *knows* rather than probes).
  void MarkUnhealthy(int replica);

 private:
  struct State {
    bool healthy = true;
    int ok_streak = 0;
    int fail_streak = 0;
  };
  HealthCheckConfig config_;
  std::vector<State> state_;
};

}  // namespace dlsys

#endif  // DLSYS_FLEET_ROUTER_H_
