#ifndef DLSYS_FLEET_FLEET_H_
#define DLSYS_FLEET_FLEET_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/core/status.h"
#include "src/distributed/faults.h"
#include "src/distributed/network_model.h"
#include "src/fleet/autoscaler.h"
#include "src/fleet/chaos.h"
#include "src/fleet/router.h"
#include "src/nn/sequential.h"
#include "src/obs/attribution.h"
#include "src/obs/slo.h"
#include "src/serve/loadgen.h"
#include "src/serve/server.h"

/// \file fleet.h
/// \brief Datacenter-scale serving simulation: replica groups of the
/// PR-4 Server behind a health-checked router, autoscaled and chaos-
/// tested on one shared simulated clock.
///
/// ## Composition
///
/// Each replica slot owns a full PR-4 serving stack (ModelRegistry +
/// Server). The fleet driver is a single-threaded event loop over fixed
/// simulated ticks: per tick it fires chaos transitions (compiled onto
/// the PR-2 FaultInjector with replicas as workers and ticks as rounds),
/// health probes, autoscaler decisions, the canary state machine, then
/// routes this tick's trace arrivals and advances every live server.
/// Request *execution* stays real — dispatched batches run through each
/// server's compiled engine replicas — while every *decision* (routing,
/// admission, scaling, rollback) is a function of simulated quantities
/// only. The same (seed, scenario, load) therefore replays bit-for-bit
/// at any DLSYS_THREADS: FleetReportJson exports and the sim-track trace
/// slice are byte-identical (test-enforced).
///
/// ## SLO accounting
///
/// A request's client-observed latency is forward network hop + server
/// completion + return hop, all simulated; it misses when that exceeds
/// its end-to-end deadline. Requests routed to a crashed-but-undetected
/// replica fail after the network timeout; requests queued or executing
/// on a replica when it crashes die with it. Windowed goodput / p99 /
/// miss / shed series feed the recovery metric: time-to-recover is the
/// first post-fault window where the served fraction (completed_ok /
/// offered, which is robust to diurnal load swings) returns to >= 90%
/// of its pre-fault mean and stays there for `recover_streak` windows.

namespace dlsys {

/// \brief How a crashed replica comes back.
enum class FleetRecovery {
  /// Rejoin after a short restart: the replica slot keeps its compiled
  /// registry (the checkpointed state) and only pays `restart_ms`.
  kCheckpointedRestart,
  /// Replace the instance: a fresh server is provisioned and the model
  /// republished, paying the full `replace_ms` provision time.
  kColdReplace,
};

/// \brief Stable lowercase name ("checkpointed_restart", "cold_replace").
const char* FleetRecoveryName(FleetRecovery recovery);

/// \brief Canary watchdog for bad-version rollouts.
struct CanaryConfig {
  bool auto_rollback = true;   ///< roll back on a failed bake, vs push on
  double bake_ms = 1500.0;     ///< observe the canary replica this long
  /// The canary fails its bake when (missed + shed) / offered on the
  /// canary replica since rollout exceeds this.
  double max_degraded_fraction = 0.2;
  /// The canary also fails its bake when the windowed p99 of its
  /// client-observed latency during the bake exceeds this factor times
  /// its pre-rollout p99 — catching latency lemons whose responses still
  /// land inside the deadline (so max_degraded_fraction never fires).
  /// 0 disables the check.
  double max_p99_regression = 3.0;
  /// Minimum latency samples in both the pre-rollout baseline and the
  /// bake window before the p99 comparison is trusted.
  int min_p99_samples = 30;
};

struct FleetConfig {
  int replica_slots = 4;      ///< autoscaler ceiling; servers prebuilt
  int initial_replicas = 2;   ///< active at t = 0
  ServerConfig server;        ///< every replica's front-door config
  RoutePolicy route = RoutePolicy::kRoundRobin;
  HealthCheckConfig health;
  AutoscalerConfig autoscale;
  NetworkModel network;       ///< request/response hop cost model
  int64_t request_bytes = 4096;
  int64_t response_bytes = 512;
  FleetRecovery recovery = FleetRecovery::kCheckpointedRestart;
  double restart_ms = 1500.0;  ///< checkpointed-restart downtime
  double replace_ms = 4000.0;  ///< cold-replace provisioning time
  CanaryConfig canary;
  double tick_ms = 50.0;    ///< driver tick == chaos round quantum
  double window_ms = 500.0; ///< SLO metric window
  /// Consecutive windows with the served fraction back at >= 90% of its
  /// pre-fault mean before the fleet counts as recovered.
  int recover_streak = 3;
  uint64_t seed = 1;        ///< routing draws (folded with scenario seed)
  /// Critical-path attribution series (window width, exemplar count).
  obs::AttributionConfig attribution;
  /// Multi-window SLO burn-rate alerting over the per-request critical
  /// paths. slo.slo_latency_ms <= 0 counts only missed deadlines as
  /// budget burn (the default).
  obs::BurnRateConfig slo;
};

/// \brief Validates every user-settable field (server config included).
Status ValidateFleetConfig(const FleetConfig& config);

/// \brief One SLO metric window of a fleet run. All simulated.
struct FleetWindow {
  double start_ms = 0.0;
  int64_t offered = 0;
  int64_t completed_ok = 0;  ///< finished within deadline
  int64_t missed = 0;        ///< finished late or failed on a dead replica
  int64_t shed = 0;          ///< turned away (all reasons)
  double p99_ms = 0.0;       ///< client-observed latency p99 in the window
  double goodput_rps = 0.0;  ///< completed_ok per simulated second
  int active_replicas = 0;   ///< at window close
};

/// \brief Everything a fleet run reports. All simulated quantities; the
/// JSON export is byte-stable under replay.
struct FleetReport {
  std::string scenario;
  int64_t offered = 0;
  int64_t admitted = 0;
  int64_t completed_ok = 0;
  int64_t missed = 0;  ///< late completions + dead-replica failures
  int64_t shed_queue_full = 0;
  int64_t shed_deadline = 0;
  int64_t shed_draining = 0;
  int64_t shed_unhealthy = 0;  ///< no routable replica at arrival
  int64_t failed_dead_replica = 0;  ///< routed into the detection gap
  int64_t dropped_queued = 0;       ///< died queued on a crashing replica
  int64_t crashes = 0;
  int64_t restarts = 0;
  int64_t rollouts = 0;
  int64_t rollbacks = 0;
  int64_t p99_rollbacks = 0;  ///< rollbacks where the windowed-p99
                              ///< regression check (co-)fired
  int64_t scale_ups = 0;
  int64_t scale_downs = 0;
  double p99_ms = 0.0;              ///< overall client-observed p99
  double duration_ms = 0.0;         ///< simulated load window span
  double steady_goodput_rps = 0.0;  ///< mean over pre-fault windows
  double fault_start_ms = -1.0;     ///< first chaos event; -1 when none
  double time_to_recover_ms = -1.0; ///< -1: no fault or never recovered
  std::vector<FleetWindow> windows;

  /// \brief Per-tenant slice of the fleet's end-to-end accounting, filled
  /// when the load declares a tenant_mix (empty otherwise).
  struct TenantRow {
    int64_t offered = 0;
    int64_t admitted = 0;
    int64_t completed_ok = 0;
    int64_t missed = 0;  ///< late/lost deliveries incl. dead-replica routes
    int64_t shed = 0;    ///< turned away at admission or routing
  };
  /// Keyed by tenant name; map order makes the JSON export byte-stable.
  std::map<std::string, TenantRow> tenants;

  /// One critical-path record per delivered request (deliver order):
  /// boundary timestamps in integer sim-ns whose component differences
  /// sum bitwise to the client-observed latency. Crash-invalidated and
  /// dead-replica requests have no record (their latency is unmeasured).
  std::vector<obs::RequestPathRecord> path_records;
  /// Windowed per-component series (fleet / tenant / replica scopes)
  /// with k-slowest exemplars; export with AttributionReportJson.
  obs::AttributionReport attribution;
  /// Burn-rate alert edges (time, scope, dominant component), in time
  /// order; empty on clean runs under the default thresholds.
  std::vector<obs::BurnAlert> alerts;

  double goodput_rps() const;       ///< completed_ok over duration_ms
  double miss_fraction() const;     ///< missed / offered
  double shed_fraction() const;     ///< all sheds / offered
};

/// \brief Renders \p report as deterministic JSON (fixed field order,
/// fixed float formatting, simulated values only — byte-comparable
/// across runs and DLSYS_THREADS; the CI determinism step diffs it).
std::string FleetReportJson(const FleetReport& report);

/// \brief N replica groups behind a router on one simulated clock.
class Fleet {
 public:
  /// \brief Validates \p config and builds every replica slot's serving
  /// stack (servers exist up front; only `initial_replicas` are active).
  static Result<std::unique_ptr<Fleet>> Create(const FleetConfig& config);

  Fleet(const Fleet&) = delete;
  Fleet& operator=(const Fleet&) = delete;
  ~Fleet();

  /// \brief Takes ownership of the model and publishes it as v1 of
  /// \p model on every replica slot. Cold replacements, bad-version
  /// rollouts, and rollbacks republish from this net through each
  /// replica registry's hot-swap path.
  Status Deploy(const std::string& model, Sequential net,
                const Shape& example_shape);

  /// \brief Runs \p load (whose model must match Deploy) through the
  /// fleet under \p scenario and returns the SLO report. Call once per
  /// Fleet instance (the run consumes the replica clocks). Requires
  /// Deploy.
  Result<FleetReport> Run(const ChaosScenario& scenario,
                          const TraceLoadConfig& load);

  const FleetConfig& config() const { return config_; }

  /// \brief Declared-cost-model capacity of one replica at full batches,
  /// in requests per simulated second — the autoscaler's sizing unit.
  static double ReplicaCapacityRps(const ServerConfig& server);

 private:
  explicit Fleet(const FleetConfig& config);

  struct Replica;  ///< defined in fleet.cc

  FleetConfig config_;
  std::vector<std::unique_ptr<Replica>> replicas_;
  std::string model_;
  Sequential net_;
  Shape example_shape_;
  bool deployed_ = false;
  bool ran_ = false;
};

}  // namespace dlsys

#endif  // DLSYS_FLEET_FLEET_H_
