#include "src/fleet/router.h"

namespace dlsys {

namespace {

uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

constexpr uint64_t kRouteTag = 0x2070ULL;

}  // namespace

const char* RoutePolicyName(RoutePolicy policy) {
  switch (policy) {
    case RoutePolicy::kRoundRobin:
      return "round_robin";
    case RoutePolicy::kLeastLoaded:
      return "least_loaded";
    case RoutePolicy::kPowerOfTwo:
      return "power_of_two";
  }
  return "unknown";
}

bool Router::LighterThan(const ReplicaView& a, int ia, const ReplicaView& b,
                         int ib) {
  if (a.queue_depth != b.queue_depth) return a.queue_depth < b.queue_depth;
  if (a.backlog_ms != b.backlog_ms) return a.backlog_ms < b.backlog_ms;
  return ia < ib;
}

int Router::Pick(const std::vector<ReplicaView>& view, int64_t request_index) {
  const int n = static_cast<int>(view.size());
  std::vector<int> routable;
  routable.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    if (view[static_cast<size_t>(i)].routable) routable.push_back(i);
  }
  if (routable.empty()) return -1;

  switch (policy_) {
    case RoutePolicy::kRoundRobin: {
      // The cursor walks replica *slots*, not the routable subset, so a
      // replica rejoining the rotation lands back in its old turn order.
      for (int step = 0; step < n; ++step) {
        const int candidate = static_cast<int>((rr_cursor_ + step) % n);
        if (view[static_cast<size_t>(candidate)].routable) {
          rr_cursor_ = candidate + 1;
          return candidate;
        }
      }
      return -1;  // unreachable: routable is non-empty
    }
    case RoutePolicy::kLeastLoaded: {
      int best = routable[0];
      for (size_t i = 1; i < routable.size(); ++i) {
        const int c = routable[i];
        if (LighterThan(view[static_cast<size_t>(c)], c,
                        view[static_cast<size_t>(best)], best)) {
          best = c;
        }
      }
      return best;
    }
    case RoutePolicy::kPowerOfTwo: {
      const uint64_t m = static_cast<uint64_t>(routable.size());
      const uint64_t d1 =
          Mix64(seed_ ^ Mix64(kRouteTag ^
                              static_cast<uint64_t>(request_index))) % m;
      uint64_t d2 =
          Mix64(seed_ ^ Mix64(kRouteTag ^ 0x9D5ULL ^
                              static_cast<uint64_t>(request_index))) % m;
      if (m > 1 && d2 == d1) d2 = (d2 + 1) % m;  // force distinct choices
      const int a = routable[d1];
      const int b = routable[d2];
      return LighterThan(view[static_cast<size_t>(a)], a,
                         view[static_cast<size_t>(b)], b)
                 ? a
                 : b;
    }
  }
  return -1;
}

Status ValidateHealthCheckConfig(const HealthCheckConfig& config) {
  if (!(config.interval_ms > 0.0)) {
    return Status::InvalidArgument("health interval_ms must be positive");
  }
  if (config.failure_threshold < 1) {
    return Status::InvalidArgument("failure_threshold must be >= 1");
  }
  if (config.recovery_threshold < 1) {
    return Status::InvalidArgument("recovery_threshold must be >= 1");
  }
  return Status::OK();
}

HealthTracker::HealthTracker(const HealthCheckConfig& config, int replicas)
    : config_(config), state_(static_cast<size_t>(replicas)) {}

void HealthTracker::Probe(int replica, bool ok) {
  State& s = state_[static_cast<size_t>(replica)];
  if (ok) {
    s.fail_streak = 0;
    ++s.ok_streak;
    if (!s.healthy && s.ok_streak >= config_.recovery_threshold) {
      s.healthy = true;
    }
  } else {
    s.ok_streak = 0;
    ++s.fail_streak;
    if (s.healthy && s.fail_streak >= config_.failure_threshold) {
      s.healthy = false;
    }
  }
}

void HealthTracker::Reset(int replica) {
  state_[static_cast<size_t>(replica)] = State{};
}

void HealthTracker::MarkUnhealthy(int replica) {
  State& s = state_[static_cast<size_t>(replica)];
  s.healthy = false;
  s.ok_streak = 0;
  s.fail_streak = config_.failure_threshold;
}

}  // namespace dlsys
