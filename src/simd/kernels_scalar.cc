#include <algorithm>
#include <cstdint>

#include "src/simd/dispatch.h"
#include "src/simd/kernels.h"

/// \file kernels_scalar.cc
/// \brief The always-available reference kernels. The fp32 and int8
/// bodies are the pre-dispatch kernels from src/tensor/ops.cc and
/// src/tensor/int8_gemm.cc, moved verbatim and compiled with the same
/// flags (-O3 -march=native -ffp-contract=off via src/CMakeLists.txt), so
/// a -DDLSYS_SIMD=OFF or DLSYS_ISA=scalar run is bitwise identical to the
/// tree before the SIMD backend existed. The q8/q4 block kernels are the
/// scalar references the SIMD variants bit-compare against.

namespace dlsys {
namespace simd {

// ---------------------------------------------------------------- fp32
//
// Tile shape: kMr x kNr floats of C held in registers across the whole
// p loop. The accumulation order for any single C element is ascending-p,
// one float multiply then one add per term — the contract every other ISA
// reproduces exactly.

namespace {
constexpr int64_t kMr = 4;   // C rows per register tile
constexpr int64_t kNr = 32;  // C columns per register tile
}  // namespace

void MatMulRangeScalar(const float* a, const float* b, float* c, int64_t i0,
                       int64_t i1, int64_t k, int64_t n) {
  const float* pa = a;
  const float* pb = b;
  float* pc = c;
  for (int64_t i = i0; i < i1; i += kMr) {
    const int64_t ir = std::min<int64_t>(kMr, i1 - i);
    int64_t j = 0;
    for (; j + kNr <= n && ir == kMr; j += kNr) {
      float acc[kMr][kNr] = {};
      for (int64_t p = 0; p < k; ++p) {
        const float* brow = pb + p * n + j;
        for (int64_t ii = 0; ii < kMr; ++ii) {
          const float av = pa[(i + ii) * k + p];
          for (int64_t jj = 0; jj < kNr; ++jj) acc[ii][jj] += av * brow[jj];
        }
      }
      for (int64_t ii = 0; ii < kMr; ++ii) {
        float* crow = pc + (i + ii) * n + j;
        for (int64_t jj = 0; jj < kNr; ++jj) crow[jj] = acc[ii][jj];
      }
    }
    // Edge tiles (tail columns, or a short row block): plain loops with
    // the same ascending-p accumulation order per element.
    for (int64_t ii = 0; ii < ir; ++ii) {
      const float* arow = pa + (i + ii) * k;
      float* crow = pc + (i + ii) * n;
      for (int64_t p = 0; p < k; ++p) {
        const float av = arow[p];
        const float* brow = pb + p * n;
        for (int64_t jj = j; jj < n; ++jj) crow[jj] += av * brow[jj];
      }
    }
  }
}

void MatMulTransARangeScalar(const float* a, const float* b, float* c,
                             int64_t i0, int64_t i1, int64_t k, int64_t m,
                             int64_t n) {
  const float* pa = a;
  const float* pb = b;
  float* pc = c;
  for (int64_t i = i0; i < i1; i += kMr) {
    const int64_t ir = std::min<int64_t>(kMr, i1 - i);
    int64_t j = 0;
    for (; j + kNr <= n && ir == kMr; j += kNr) {
      float acc[kMr][kNr] = {};
      for (int64_t p = 0; p < k; ++p) {
        const float* brow = pb + p * n + j;
        const float* acol = pa + p * m + i;
        for (int64_t ii = 0; ii < kMr; ++ii) {
          const float av = acol[ii];
          for (int64_t jj = 0; jj < kNr; ++jj) acc[ii][jj] += av * brow[jj];
        }
      }
      for (int64_t ii = 0; ii < kMr; ++ii) {
        float* crow = pc + (i + ii) * n + j;
        for (int64_t jj = 0; jj < kNr; ++jj) crow[jj] = acc[ii][jj];
      }
    }
    for (int64_t ii = 0; ii < ir; ++ii) {
      float* crow = pc + (i + ii) * n;
      for (int64_t p = 0; p < k; ++p) {
        const float av = pa[p * m + i + ii];
        const float* brow = pb + p * n;
        for (int64_t jj = j; jj < n; ++jj) crow[jj] += av * brow[jj];
      }
    }
  }
}

void MatMulTransBRangeScalar(const float* a, const float* b, float* c,
                             int64_t i0, int64_t i1, int64_t k, int64_t n) {
  const float* pa = a;
  const float* pb = b;
  float* pc = c;
  for (int64_t i = i0; i < i1; ++i) {
    const float* arow = pa + i * k;
    int64_t j = 0;
    for (; j + 4 <= n; j += 4) {
      const float* b0 = pb + (j + 0) * k;
      const float* b1 = pb + (j + 1) * k;
      const float* b2 = pb + (j + 2) * k;
      const float* b3 = pb + (j + 3) * k;
      double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
      for (int64_t p = 0; p < k; ++p) {
        const float av = arow[p];
        s0 += av * b0[p];
        s1 += av * b1[p];
        s2 += av * b2[p];
        s3 += av * b3[p];
      }
      pc[i * n + j + 0] = static_cast<float>(s0);
      pc[i * n + j + 1] = static_cast<float>(s1);
      pc[i * n + j + 2] = static_cast<float>(s2);
      pc[i * n + j + 3] = static_cast<float>(s3);
    }
    for (; j < n; ++j) {
      const float* brow = pb + j * k;
      double s = 0.0;
      for (int64_t p = 0; p < k; ++p) s += arow[p] * brow[p];
      pc[i * n + j] = static_cast<float>(s);
    }
  }
}

void ConvGemmBiasColsScalar(const float* a, const float* b, const float* bias,
                            float* c, int64_t m, int64_t k, int64_t n,
                            int64_t j0, int64_t j1) {
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    const double bias_i = static_cast<double>(bias[i]);
    int64_t j = j0;
    for (; j + 4 <= j1; j += 4) {
      const float* b0 = b + (j + 0) * k;
      const float* b1 = b + (j + 1) * k;
      const float* b2 = b + (j + 2) * k;
      const float* b3 = b + (j + 3) * k;
      double s0 = bias_i, s1 = bias_i, s2 = bias_i, s3 = bias_i;
      for (int64_t p = 0; p < k; ++p) {
        const float av = arow[p];
        s0 += av * b0[p];
        s1 += av * b1[p];
        s2 += av * b2[p];
        s3 += av * b3[p];
      }
      c[i * n + j + 0] = static_cast<float>(s0);
      c[i * n + j + 1] = static_cast<float>(s1);
      c[i * n + j + 2] = static_cast<float>(s2);
      c[i * n + j + 3] = static_cast<float>(s3);
    }
    for (; j < j1; ++j) {
      const float* brow = b + j * k;
      double s = bias_i;
      for (int64_t p = 0; p < k; ++p) s += arow[p] * brow[p];
      c[i * n + j] = static_cast<float>(s);
    }
  }
}

// ------------------------------------------------------ fused epilogues
//
// The fusion pass's dense epilogue: run the untouched GEMM range, then
// add the bias and (optionally) apply relu to the finished rows while
// they are cache-hot. A float stored and reloaded is the identical bit
// pattern, so folding the former separate bias/relu output passes into
// the kernel cannot change any result.

void MatMulBiasActRangeScalar(const float* a, const float* b,
                              const float* bias, float* c, int64_t i0,
                              int64_t i1, int64_t k, int64_t n, int relu) {
  MatMulRangeScalar(a, b, c, i0, i1, k, n);
  for (int64_t i = i0; i < i1; ++i) {
    float* crow = c + i * n;
    for (int64_t j = 0; j < n; ++j) {
      const float v = crow[j] + bias[j];
      crow[j] = relu != 0 ? (v > 0.0f ? v : 0.0f) : v;
    }
  }
}

void ConvGemmBiasActColsScalar(const float* a, const float* b,
                               const float* bias, float* c, int64_t m,
                               int64_t k, int64_t n, int64_t j0, int64_t j1,
                               int relu) {
  ConvGemmBiasColsScalar(a, b, bias, c, m, k, n, j0, j1);
  if (relu == 0) return;
  for (int64_t i = 0; i < m; ++i) {
    float* crow = c + i * n;
    for (int64_t j = j0; j < j1; ++j) {
      crow[j] = crow[j] > 0.0f ? crow[j] : 0.0f;
    }
  }
}

// ---------------------------------------------------------------- int8

void Int8GemmRowsScalar(const int8_t* a, const int8_t* b, int32_t* c,
                        int64_t i0, int64_t i1, int64_t k, int64_t n) {
  for (int64_t i = i0; i < i1; ++i) {
    const int8_t* arow = a + i * k;
    int64_t j = 0;
    // Four independent output columns per iteration: four int32
    // accumulators in flight hide the load latency, and each inner
    // reduction vectorizes (integer adds reassociate freely).
    for (; j + 4 <= n; j += 4) {
      const int8_t* b0 = b + (j + 0) * k;
      const int8_t* b1 = b + (j + 1) * k;
      const int8_t* b2 = b + (j + 2) * k;
      const int8_t* b3 = b + (j + 3) * k;
      int32_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
      for (int64_t p = 0; p < k; ++p) {
        const int32_t av = arow[p];
        s0 += av * b0[p];
        s1 += av * b1[p];
        s2 += av * b2[p];
        s3 += av * b3[p];
      }
      c[i * n + j + 0] = s0;
      c[i * n + j + 1] = s1;
      c[i * n + j + 2] = s2;
      c[i * n + j + 3] = s3;
    }
    for (; j < n; ++j) {
      const int8_t* brow = b + j * k;
      int32_t s = 0;
      for (int64_t p = 0; p < k; ++p) {
        s += static_cast<int32_t>(arow[p]) * static_cast<int32_t>(brow[p]);
      }
      c[i * n + j] = s;
    }
  }
}

// ------------------------------------------------------- block-quantized
//
// Per 32-element block: the integer dot product is exact (int32), and the
// running float sum adds float(dot) * (a_scale * b_scale) in ascending
// block order. SIMD variants keep this exact float chain per element and
// only vectorize the integer dot, so results are bitwise identical.

void Q8GemmRowsScalar(const int8_t* a, const float* a_scales, const int8_t* b,
                      const float* b_scales, float* c, int64_t i0, int64_t i1,
                      int64_t kp, int64_t n) {
  const int64_t nb = kp / 32;
  for (int64_t i = i0; i < i1; ++i) {
    const int8_t* arow = a + i * kp;
    const float* as = a_scales + i * nb;
    for (int64_t j = 0; j < n; ++j) {
      const int8_t* brow = b + j * kp;
      const float* bs = b_scales + j * nb;
      float sum = 0.0f;
      for (int64_t bb = 0; bb < nb; ++bb) {
        const int8_t* ab = arow + bb * 32;
        const int8_t* bbp = brow + bb * 32;
        int32_t dot = 0;
        for (int t = 0; t < 32; ++t) {
          dot += static_cast<int32_t>(ab[t]) * static_cast<int32_t>(bbp[t]);
        }
        sum += static_cast<float>(dot) * (as[bb] * bs[bb]);
      }
      c[i * n + j] = sum;
    }
  }
}

void Q4GemmRowsScalar(const int8_t* a, const float* a_scales,
                      const uint8_t* b, const float* b_scales, float* c,
                      int64_t i0, int64_t i1, int64_t kp, int64_t n) {
  const int64_t nb = kp / 32;
  for (int64_t i = i0; i < i1; ++i) {
    const int8_t* arow = a + i * kp;
    const float* as = a_scales + i * nb;
    for (int64_t j = 0; j < n; ++j) {
      const uint8_t* brow = b + j * (kp / 2);
      const float* bs = b_scales + j * nb;
      float sum = 0.0f;
      for (int64_t bb = 0; bb < nb; ++bb) {
        const int8_t* ab = arow + bb * 32;
        const uint8_t* bbp = brow + bb * 16;
        // Block layout (see Q4BlockMatrix): byte t holds element t in its
        // low nibble and element 16+t in its high nibble, code = q + 8.
        int32_t dot = 0;
        for (int t = 0; t < 16; ++t) {
          const int32_t blo = static_cast<int32_t>(bbp[t] & 0x0F) - 8;
          const int32_t bhi = static_cast<int32_t>(bbp[t] >> 4) - 8;
          dot += static_cast<int32_t>(ab[t]) * blo;
          dot += static_cast<int32_t>(ab[16 + t]) * bhi;
        }
        sum += static_cast<float>(dot) * (as[bb] * bs[bb]);
      }
      c[i * n + j] = sum;
    }
  }
}

namespace {
const KernelTable kScalarTable = {
    Isa::kScalar,
    "kernel.scalar",
    &MatMulRangeScalar,
    &MatMulTransARangeScalar,
    &MatMulTransBRangeScalar,
    &ConvGemmBiasColsScalar,
    &Int8GemmRowsScalar,
    &Q8GemmRowsScalar,
    &Q4GemmRowsScalar,
    &MatMulBiasActRangeScalar,
    &ConvGemmBiasActColsScalar,
};
}  // namespace

const KernelTable* GetScalarTable() { return &kScalarTable; }

}  // namespace simd
}  // namespace dlsys
