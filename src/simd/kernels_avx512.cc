#include "src/simd/dispatch.h"
#include "src/simd/kernels.h"

/// \file kernels_avx512.cc
/// \brief AVX-512 microkernels (F+BW+VL+DQ). Compiled with -mavx512f
/// -mavx512bw -mavx512vl -mavx512dq -O3 -ffp-contract=off. Same parity
/// contract as the AVX2 TU: fp32 is bitwise identical to scalar (mul then
/// add, ascending p, vectorized across output elements only), integer
/// paths are exact int32.

#if DLSYS_SIMD && (defined(__x86_64__) || defined(__i386__)) &&      \
    defined(__AVX512F__) && defined(__AVX512BW__) && defined(__AVX512VL__) && \
    defined(__AVX512DQ__)

#include <immintrin.h>

#include <algorithm>
#include <cstdint>

namespace dlsys {
namespace simd {
namespace {

// ---------------------------------------------------------------- fp32

constexpr int64_t kMr = 4;   // C rows per register tile
constexpr int64_t kNr = 32;  // C columns per register tile (2 zmm)

void MatMulRangeAvx512(const float* a, const float* b, float* c, int64_t i0,
                       int64_t i1, int64_t k, int64_t n) {
  int64_t i = i0;
  for (; i + kMr <= i1; i += kMr) {
    const float* a0 = a + (i + 0) * k;
    const float* a1 = a + (i + 1) * k;
    const float* a2 = a + (i + 2) * k;
    const float* a3 = a + (i + 3) * k;
    int64_t j = 0;
    for (; j + kNr <= n; j += kNr) {
      __m512 c00 = _mm512_setzero_ps(), c01 = _mm512_setzero_ps();
      __m512 c10 = _mm512_setzero_ps(), c11 = _mm512_setzero_ps();
      __m512 c20 = _mm512_setzero_ps(), c21 = _mm512_setzero_ps();
      __m512 c30 = _mm512_setzero_ps(), c31 = _mm512_setzero_ps();
      for (int64_t p = 0; p < k; ++p) {
        const float* brow = b + p * n + j;
        const __m512 b0 = _mm512_loadu_ps(brow);
        const __m512 b1 = _mm512_loadu_ps(brow + 16);
        __m512 av = _mm512_set1_ps(a0[p]);
        c00 = _mm512_add_ps(c00, _mm512_mul_ps(av, b0));
        c01 = _mm512_add_ps(c01, _mm512_mul_ps(av, b1));
        av = _mm512_set1_ps(a1[p]);
        c10 = _mm512_add_ps(c10, _mm512_mul_ps(av, b0));
        c11 = _mm512_add_ps(c11, _mm512_mul_ps(av, b1));
        av = _mm512_set1_ps(a2[p]);
        c20 = _mm512_add_ps(c20, _mm512_mul_ps(av, b0));
        c21 = _mm512_add_ps(c21, _mm512_mul_ps(av, b1));
        av = _mm512_set1_ps(a3[p]);
        c30 = _mm512_add_ps(c30, _mm512_mul_ps(av, b0));
        c31 = _mm512_add_ps(c31, _mm512_mul_ps(av, b1));
      }
      float* crow = c + i * n + j;
      _mm512_storeu_ps(crow, c00);
      _mm512_storeu_ps(crow + 16, c01);
      _mm512_storeu_ps(crow + n, c10);
      _mm512_storeu_ps(crow + n + 16, c11);
      _mm512_storeu_ps(crow + 2 * n, c20);
      _mm512_storeu_ps(crow + 2 * n + 16, c21);
      _mm512_storeu_ps(crow + 3 * n, c30);
      _mm512_storeu_ps(crow + 3 * n + 16, c31);
    }
    if (j < n) {
      for (int64_t ii = 0; ii < kMr; ++ii) {
        const float* arow = a + (i + ii) * k;
        float* crow = c + (i + ii) * n;
        for (int64_t p = 0; p < k; ++p) {
          const float av = arow[p];
          const float* brow = b + p * n;
          for (int64_t jj = j; jj < n; ++jj) crow[jj] += av * brow[jj];
        }
      }
    }
  }
  if (i < i1) MatMulRangeScalar(a, b, c, i, i1, k, n);
}

void MatMulTransARangeAvx512(const float* a, const float* b, float* c,
                             int64_t i0, int64_t i1, int64_t k, int64_t m,
                             int64_t n) {
  int64_t i = i0;
  for (; i + kMr <= i1; i += kMr) {
    int64_t j = 0;
    for (; j + kNr <= n; j += kNr) {
      __m512 c00 = _mm512_setzero_ps(), c01 = _mm512_setzero_ps();
      __m512 c10 = _mm512_setzero_ps(), c11 = _mm512_setzero_ps();
      __m512 c20 = _mm512_setzero_ps(), c21 = _mm512_setzero_ps();
      __m512 c30 = _mm512_setzero_ps(), c31 = _mm512_setzero_ps();
      for (int64_t p = 0; p < k; ++p) {
        const float* brow = b + p * n + j;
        const float* acol = a + p * m + i;
        const __m512 b0 = _mm512_loadu_ps(brow);
        const __m512 b1 = _mm512_loadu_ps(brow + 16);
        __m512 av = _mm512_set1_ps(acol[0]);
        c00 = _mm512_add_ps(c00, _mm512_mul_ps(av, b0));
        c01 = _mm512_add_ps(c01, _mm512_mul_ps(av, b1));
        av = _mm512_set1_ps(acol[1]);
        c10 = _mm512_add_ps(c10, _mm512_mul_ps(av, b0));
        c11 = _mm512_add_ps(c11, _mm512_mul_ps(av, b1));
        av = _mm512_set1_ps(acol[2]);
        c20 = _mm512_add_ps(c20, _mm512_mul_ps(av, b0));
        c21 = _mm512_add_ps(c21, _mm512_mul_ps(av, b1));
        av = _mm512_set1_ps(acol[3]);
        c30 = _mm512_add_ps(c30, _mm512_mul_ps(av, b0));
        c31 = _mm512_add_ps(c31, _mm512_mul_ps(av, b1));
      }
      float* crow = c + i * n + j;
      _mm512_storeu_ps(crow, c00);
      _mm512_storeu_ps(crow + 16, c01);
      _mm512_storeu_ps(crow + n, c10);
      _mm512_storeu_ps(crow + n + 16, c11);
      _mm512_storeu_ps(crow + 2 * n, c20);
      _mm512_storeu_ps(crow + 2 * n + 16, c21);
      _mm512_storeu_ps(crow + 3 * n, c30);
      _mm512_storeu_ps(crow + 3 * n + 16, c31);
    }
    if (j < n) {
      for (int64_t ii = 0; ii < kMr; ++ii) {
        float* crow = c + (i + ii) * n;
        for (int64_t p = 0; p < k; ++p) {
          const float av = a[p * m + i + ii];
          const float* brow = b + p * n;
          for (int64_t jj = j; jj < n; ++jj) crow[jj] += av * brow[jj];
        }
      }
    }
  }
  if (i < i1) MatMulTransARangeScalar(a, b, c, i, i1, k, m, n);
}

/// Eight dot products A[row] . B[j..j+7] with the exact scalar chain:
/// float multiply, widen to double, double add, ascending p. An 8x8
/// in-register transpose turns eight row loads into per-p column vectors;
/// each _mm512_add_pd advances all eight chains by exactly one p.
inline void DotCols8Avx512(const float* arow, const float* b, int64_t j,
                           int64_t k, double init, float* out) {
  const float* b0 = b + (j + 0) * k;
  const float* b1 = b + (j + 1) * k;
  const float* b2 = b + (j + 2) * k;
  const float* b3 = b + (j + 3) * k;
  const float* b4 = b + (j + 4) * k;
  const float* b5 = b + (j + 5) * k;
  const float* b6 = b + (j + 6) * k;
  const float* b7 = b + (j + 7) * k;
  __m512d acc = _mm512_set1_pd(init);
  int64_t p = 0;
  for (; p + 8 <= k; p += 8) {
    __m256 r0 = _mm256_loadu_ps(b0 + p);
    __m256 r1 = _mm256_loadu_ps(b1 + p);
    __m256 r2 = _mm256_loadu_ps(b2 + p);
    __m256 r3 = _mm256_loadu_ps(b3 + p);
    __m256 r4 = _mm256_loadu_ps(b4 + p);
    __m256 r5 = _mm256_loadu_ps(b5 + p);
    __m256 r6 = _mm256_loadu_ps(b6 + p);
    __m256 r7 = _mm256_loadu_ps(b7 + p);
    // 8x8 transpose: r_t becomes [b0[p+t], b1[p+t], ..., b7[p+t]].
    const __m256 t0 = _mm256_unpacklo_ps(r0, r1);
    const __m256 t1 = _mm256_unpackhi_ps(r0, r1);
    const __m256 t2 = _mm256_unpacklo_ps(r2, r3);
    const __m256 t3 = _mm256_unpackhi_ps(r2, r3);
    const __m256 t4 = _mm256_unpacklo_ps(r4, r5);
    const __m256 t5 = _mm256_unpackhi_ps(r4, r5);
    const __m256 t6 = _mm256_unpacklo_ps(r6, r7);
    const __m256 t7 = _mm256_unpackhi_ps(r6, r7);
    const __m256 u0 = _mm256_shuffle_ps(t0, t2, _MM_SHUFFLE(1, 0, 1, 0));
    const __m256 u1 = _mm256_shuffle_ps(t0, t2, _MM_SHUFFLE(3, 2, 3, 2));
    const __m256 u2 = _mm256_shuffle_ps(t1, t3, _MM_SHUFFLE(1, 0, 1, 0));
    const __m256 u3 = _mm256_shuffle_ps(t1, t3, _MM_SHUFFLE(3, 2, 3, 2));
    const __m256 u4 = _mm256_shuffle_ps(t4, t6, _MM_SHUFFLE(1, 0, 1, 0));
    const __m256 u5 = _mm256_shuffle_ps(t4, t6, _MM_SHUFFLE(3, 2, 3, 2));
    const __m256 u6 = _mm256_shuffle_ps(t5, t7, _MM_SHUFFLE(1, 0, 1, 0));
    const __m256 u7 = _mm256_shuffle_ps(t5, t7, _MM_SHUFFLE(3, 2, 3, 2));
    r0 = _mm256_permute2f128_ps(u0, u4, 0x20);
    r1 = _mm256_permute2f128_ps(u1, u5, 0x20);
    r2 = _mm256_permute2f128_ps(u2, u6, 0x20);
    r3 = _mm256_permute2f128_ps(u3, u7, 0x20);
    r4 = _mm256_permute2f128_ps(u0, u4, 0x31);
    r5 = _mm256_permute2f128_ps(u1, u5, 0x31);
    r6 = _mm256_permute2f128_ps(u2, u6, 0x31);
    r7 = _mm256_permute2f128_ps(u3, u7, 0x31);
    acc = _mm512_add_pd(
        acc, _mm512_cvtps_pd(_mm256_mul_ps(_mm256_set1_ps(arow[p + 0]), r0)));
    acc = _mm512_add_pd(
        acc, _mm512_cvtps_pd(_mm256_mul_ps(_mm256_set1_ps(arow[p + 1]), r1)));
    acc = _mm512_add_pd(
        acc, _mm512_cvtps_pd(_mm256_mul_ps(_mm256_set1_ps(arow[p + 2]), r2)));
    acc = _mm512_add_pd(
        acc, _mm512_cvtps_pd(_mm256_mul_ps(_mm256_set1_ps(arow[p + 3]), r3)));
    acc = _mm512_add_pd(
        acc, _mm512_cvtps_pd(_mm256_mul_ps(_mm256_set1_ps(arow[p + 4]), r4)));
    acc = _mm512_add_pd(
        acc, _mm512_cvtps_pd(_mm256_mul_ps(_mm256_set1_ps(arow[p + 5]), r5)));
    acc = _mm512_add_pd(
        acc, _mm512_cvtps_pd(_mm256_mul_ps(_mm256_set1_ps(arow[p + 6]), r6)));
    acc = _mm512_add_pd(
        acc, _mm512_cvtps_pd(_mm256_mul_ps(_mm256_set1_ps(arow[p + 7]), r7)));
  }
  alignas(64) double s[8];
  _mm512_store_pd(s, acc);
  for (; p < k; ++p) {
    const float av = arow[p];
    s[0] += av * b0[p];
    s[1] += av * b1[p];
    s[2] += av * b2[p];
    s[3] += av * b3[p];
    s[4] += av * b4[p];
    s[5] += av * b5[p];
    s[6] += av * b6[p];
    s[7] += av * b7[p];
  }
  for (int t = 0; t < 8; ++t) out[t] = static_cast<float>(s[t]);
}

void MatMulTransBRangeAvx512(const float* a, const float* b, float* c,
                             int64_t i0, int64_t i1, int64_t k, int64_t n) {
  for (int64_t i = i0; i < i1; ++i) {
    const float* arow = a + i * k;
    int64_t j = 0;
    for (; j + 8 <= n; j += 8) {
      DotCols8Avx512(arow, b, j, k, 0.0, c + i * n + j);
    }
    for (; j < n; ++j) {
      const float* brow = b + j * k;
      double s = 0.0;
      for (int64_t p = 0; p < k; ++p) s += arow[p] * brow[p];
      c[i * n + j] = static_cast<float>(s);
    }
  }
}

void ConvGemmBiasColsAvx512(const float* a, const float* b, const float* bias,
                            float* c, int64_t m, int64_t k, int64_t n,
                            int64_t j0, int64_t j1) {
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    const double bias_i = static_cast<double>(bias[i]);
    int64_t j = j0;
    for (; j + 8 <= j1; j += 8) {
      DotCols8Avx512(arow, b, j, k, bias_i, c + i * n + j);
    }
    for (; j < j1; ++j) {
      const float* brow = b + j * k;
      double s = bias_i;
      for (int64_t p = 0; p < k; ++p) s += arow[p] * brow[p];
      c[i * n + j] = static_cast<float>(s);
    }
  }
}

// ------------------------------------------------------ fused epilogues
//
// GEMM body untouched; bias + optional relu applied to the stored rows.
// _mm512_max_ps(v, 0) with zero as the second operand matches the scalar
// `v > 0.0f ? v : 0.0f` on NaN and the -0/+0 tie, so fusion stays
// bitwise neutral (see the AVX2 TU for the full argument).

void MatMulBiasActRangeAvx512(const float* a, const float* b,
                              const float* bias, float* c, int64_t i0,
                              int64_t i1, int64_t k, int64_t n, int relu) {
  MatMulRangeAvx512(a, b, c, i0, i1, k, n);
  const __m512 zero = _mm512_setzero_ps();
  for (int64_t i = i0; i < i1; ++i) {
    float* crow = c + i * n;
    int64_t j = 0;
    for (; j + 16 <= n; j += 16) {
      __m512 v = _mm512_add_ps(_mm512_loadu_ps(crow + j),
                               _mm512_loadu_ps(bias + j));
      if (relu != 0) v = _mm512_max_ps(v, zero);
      _mm512_storeu_ps(crow + j, v);
    }
    for (; j < n; ++j) {
      const float v = crow[j] + bias[j];
      crow[j] = relu != 0 ? (v > 0.0f ? v : 0.0f) : v;
    }
  }
}

void ConvGemmBiasActColsAvx512(const float* a, const float* b,
                               const float* bias, float* c, int64_t m,
                               int64_t k, int64_t n, int64_t j0, int64_t j1,
                               int relu) {
  ConvGemmBiasColsAvx512(a, b, bias, c, m, k, n, j0, j1);
  if (relu == 0) return;
  const __m512 zero = _mm512_setzero_ps();
  for (int64_t i = 0; i < m; ++i) {
    float* crow = c + i * n;
    int64_t j = j0;
    for (; j + 16 <= j1; j += 16) {
      _mm512_storeu_ps(crow + j,
                       _mm512_max_ps(_mm512_loadu_ps(crow + j), zero));
    }
    for (; j < j1; ++j) crow[j] = crow[j] > 0.0f ? crow[j] : 0.0f;
  }
}

// ---------------------------------------------------------------- int8

/// Exact int32 dot via sign-extend + vpmaddwd on 512-bit lanes.
inline int32_t DotInt8Avx512(const int8_t* a, const int8_t* b, int64_t k) {
  __m512i acc = _mm512_setzero_si512();
  int64_t p = 0;
  for (; p + 64 <= k; p += 64) {
    const __m512i va =
        _mm512_loadu_si512(reinterpret_cast<const void*>(a + p));
    const __m512i vb =
        _mm512_loadu_si512(reinterpret_cast<const void*>(b + p));
    const __m512i a_lo = _mm512_cvtepi8_epi16(_mm512_castsi512_si256(va));
    const __m512i a_hi =
        _mm512_cvtepi8_epi16(_mm512_extracti64x4_epi64(va, 1));
    const __m512i b_lo = _mm512_cvtepi8_epi16(_mm512_castsi512_si256(vb));
    const __m512i b_hi =
        _mm512_cvtepi8_epi16(_mm512_extracti64x4_epi64(vb, 1));
    acc = _mm512_add_epi32(acc, _mm512_madd_epi16(a_lo, b_lo));
    acc = _mm512_add_epi32(acc, _mm512_madd_epi16(a_hi, b_hi));
  }
  for (; p + 32 <= k; p += 32) {
    const __m512i a16 = _mm512_cvtepi8_epi16(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + p)));
    const __m512i b16 = _mm512_cvtepi8_epi16(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + p)));
    acc = _mm512_add_epi32(acc, _mm512_madd_epi16(a16, b16));
  }
  int32_t dot = _mm512_reduce_add_epi32(acc);
  for (; p < k; ++p) {
    dot += static_cast<int32_t>(a[p]) * static_cast<int32_t>(b[p]);
  }
  return dot;
}

void Int8GemmRowsAvx512(const int8_t* a, const int8_t* b, int32_t* c,
                        int64_t i0, int64_t i1, int64_t k, int64_t n) {
  for (int64_t i = i0; i < i1; ++i) {
    const int8_t* arow = a + i * k;
    for (int64_t j = 0; j < n; ++j) {
      c[i * n + j] = DotInt8Avx512(arow, b + j * k, k);
    }
  }
}

// ------------------------------------------------------- block-quantized

/// Exact int32 dot of one 32-element q8 block pair: one extend+madd each.
inline int32_t DotQ8BlockAvx512(const int8_t* a, const int8_t* b) {
  const __m512i a16 = _mm512_cvtepi8_epi16(
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a)));
  const __m512i b16 = _mm512_cvtepi8_epi16(
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b)));
  return _mm512_reduce_add_epi32(_mm512_madd_epi16(a16, b16));
}

void Q8GemmRowsAvx512(const int8_t* a, const float* a_scales, const int8_t* b,
                      const float* b_scales, float* c, int64_t i0, int64_t i1,
                      int64_t kp, int64_t n) {
  const int64_t nb = kp / 32;
  for (int64_t i = i0; i < i1; ++i) {
    const int8_t* arow = a + i * kp;
    const float* as = a_scales + i * nb;
    for (int64_t j = 0; j < n; ++j) {
      const int8_t* brow = b + j * kp;
      const float* bs = b_scales + j * nb;
      float sum = 0.0f;
      for (int64_t bb = 0; bb < nb; ++bb) {
        const int32_t dot = DotQ8BlockAvx512(arow + bb * 32, brow + bb * 32);
        sum += static_cast<float>(dot) * (as[bb] * bs[bb]);
      }
      c[i * n + j] = sum;
    }
  }
}

/// Exact int32 dot of a q8 activation block against a nibble-packed q4
/// weight block (byte t = elements t and 16+t, code = q + 8).
inline int32_t DotQ4BlockAvx512(const int8_t* a, const uint8_t* b) {
  const __m128i packed = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b));
  const __m128i mask = _mm_set1_epi8(0x0F);
  const __m128i lo = _mm_and_si128(packed, mask);
  const __m128i hi = _mm_and_si128(_mm_srli_epi16(packed, 4), mask);
  const __m256i codes =
      _mm256_inserti128_si256(_mm256_castsi128_si256(lo), hi, 1);
  const __m512i b16 = _mm512_sub_epi16(_mm512_cvtepu8_epi16(codes),
                                       _mm512_set1_epi16(8));
  const __m512i a16 = _mm512_cvtepi8_epi16(
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a)));
  return _mm512_reduce_add_epi32(_mm512_madd_epi16(a16, b16));
}

void Q4GemmRowsAvx512(const int8_t* a, const float* a_scales,
                      const uint8_t* b, const float* b_scales, float* c,
                      int64_t i0, int64_t i1, int64_t kp, int64_t n) {
  const int64_t nb = kp / 32;
  for (int64_t i = i0; i < i1; ++i) {
    const int8_t* arow = a + i * kp;
    const float* as = a_scales + i * nb;
    for (int64_t j = 0; j < n; ++j) {
      const uint8_t* brow = b + j * (kp / 2);
      const float* bs = b_scales + j * nb;
      float sum = 0.0f;
      for (int64_t bb = 0; bb < nb; ++bb) {
        const int32_t dot = DotQ4BlockAvx512(arow + bb * 32, brow + bb * 16);
        sum += static_cast<float>(dot) * (as[bb] * bs[bb]);
      }
      c[i * n + j] = sum;
    }
  }
}

const KernelTable kAvx512Table = {
    Isa::kAvx512,
    "kernel.avx512",
    &MatMulRangeAvx512,
    &MatMulTransARangeAvx512,
    &MatMulTransBRangeAvx512,
    &ConvGemmBiasColsAvx512,
    &Int8GemmRowsAvx512,
    &Q8GemmRowsAvx512,
    &Q4GemmRowsAvx512,
    &MatMulBiasActRangeAvx512,
    &ConvGemmBiasActColsAvx512,
};

}  // namespace

const KernelTable* GetAvx512Table() { return &kAvx512Table; }

}  // namespace simd
}  // namespace dlsys

#else  // stub: SIMD off, non-x86, or AVX-512 F+BW+VL+DQ not all available

namespace dlsys {
namespace simd {
const KernelTable* GetAvx512Table() { return nullptr; }
}  // namespace simd
}  // namespace dlsys

#endif
